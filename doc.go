// Package ibox is a from-scratch Go reproduction of "iBox: Internet in a
// Box" (Ashok et al., HotNets 2020): data-informed network simulation that
// turns input–output packet traces into network models able to predict how
// a *different* protocol would have fared on the same path.
//
// The package is a thin public facade over the internal implementation:
//
//   - Fit learns an iBoxNet model (§3) — bottleneck bandwidth, propagation
//     delay, buffer size and a cross-traffic time series — from one trace;
//   - Model.Run replays any congestion-control protocol closed-loop on the
//     learnt model (the §2 instance test / counterfactual);
//   - EnsembleTest recreates flighting-style A/B tests inside the
//     simulator (§3.1.1);
//   - TrainML fits the iBoxML deep state-space delay model (§4);
//   - the internal packages provide the substrates: a discrete-event
//     network simulator (internal/netsim), congestion-control suite
//     (internal/cc), synthetic Pantheon corpus (internal/pantheon), neural
//     networks (internal/nn), SAX behaviour discovery (internal/sax) and a
//     statistics toolkit (internal/stats).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record of every table and
// figure.
package ibox

import (
	"ibox/internal/abr"
	"ibox/internal/core"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/pantheon"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Re-exported core types. Aliases keep the public surface small while the
// implementation lives in internal packages.
type (
	// Trace is an input–output packet trace (the unit of training data).
	Trace = trace.Trace
	// Packet is one packet record within a Trace.
	Packet = trace.Packet
	// Series is a regularly sampled time series (rates, delays, cross
	// traffic).
	Series = trace.Series
	// Model is a fitted iBoxNet model.
	Model = core.Model
	// Params are learnt iBoxNet parameters (b, d, B, C of Fig 1).
	Params = iboxnet.Params
	// Variant selects the iBoxNet flavour (Full, NoCT, StatLoss).
	Variant = iboxnet.Variant
	// Metrics summarizes one flow (throughput, p95 delay, loss).
	Metrics = core.Metrics
	// EnsembleResult is an A/B ensemble-test outcome.
	EnsembleResult = core.EnsembleResult
	// MLModel is a trained iBoxML deep state-space delay model.
	MLModel = iboxml.Model
	// MLConfig parameterizes iBoxML training.
	MLConfig = iboxml.Config
	// TrainingSample pairs a trace with its cross-traffic estimate.
	TrainingSample = iboxml.TrainingSample
	// Profile is a family of synthetic network paths.
	Profile = pantheon.Profile
	// Corpus is a set of instances plus one protocol's traces over them.
	Corpus = pantheon.Corpus
	// Time is a simulation timestamp in nanoseconds.
	Time = sim.Time
)

// iBoxNet variants (Fig 2 and the Fig 3 ablations).
const (
	Full     = iboxnet.Full
	NoCT     = iboxnet.NoCT
	StatLoss = iboxnet.StatLoss
)

// Common durations re-exported for configuring runs.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Fit learns an iBoxNet model from a single input–output trace.
func Fit(tr *Trace, v Variant) (*Model, error) { return core.Fit(tr, v) }

// Estimate learns raw iBoxNet parameters with default estimator settings.
func Estimate(tr *Trace) (Params, error) {
	return iboxnet.Estimate(tr, iboxnet.EstimatorConfig{})
}

// MetricsOf summarizes a trace.
func MetricsOf(tr *Trace) Metrics { return core.MetricsOf(tr) }

// EnsembleTest runs the §3.1.1 ensemble A/B test over a corpus of
// control-protocol traces.
func EnsembleTest(c *Corpus, treatment string, v Variant, dur Time, seed int64) (*EnsembleResult, error) {
	return core.EnsembleTest(c, treatment, v, dur, seed)
}

// TrainML fits an iBoxML deep state-space delay model (§4).
func TrainML(samples []TrainingSample, cfg MLConfig) (*MLModel, error) {
	return iboxml.Train(samples, cfg)
}

// IndiaCellular returns the synthetic cellular path profile used
// throughout the paper's evaluation.
func IndiaCellular() Profile { return pantheon.IndiaCellular() }

// Ethernet returns a wired path profile.
func Ethernet() Profile { return pantheon.Ethernet() }

// CellularReorder returns the cellular profile with multipath reordering
// (the Fig 5 / Fig 8 corpus).
func CellularReorder() Profile { return pantheon.CellularReorder() }

// GenerateCorpus samples n path instances from a profile and runs the
// named protocol over each, producing a training/evaluation corpus.
func GenerateCorpus(p Profile, n int, protocol string, dur Time, seed int64) (*Corpus, error) {
	return pantheon.Generate(p, n, protocol, dur, seed)
}

// ReorderPredictor predicts per-packet reordering probabilities (§5.1).
type ReorderPredictor = iboxml.ReorderPredictor

// TrainReorderLinear fits the lightweight linear logistic reordering
// predictor of §5.1 on (trace, cross-traffic estimate) samples.
func TrainReorderLinear(samples []TrainingSample, useCT bool, seed int64) (ReorderPredictor, error) {
	return iboxml.TrainLinearReorder(samples, useCT, seed)
}

// TrainReorderLSTM fits the LSTM reordering predictor of §5.1.
func TrainReorderLSTM(samples []TrainingSample, cfg iboxml.LSTMReorderConfig) (ReorderPredictor, error) {
	return iboxml.TrainLSTMReorder(samples, cfg)
}

// AugmentReordering grafts predicted reordering onto an (in-order)
// iBoxNet-simulated trace — the §5.1 melding of network model and ML.
func AugmentReordering(tr *Trace, pred ReorderPredictor, ct *Series, seed int64) *Trace {
	return iboxml.AugmentReordering(tr, pred, ct, seed)
}

// MergeTraces aggregates concurrent flows over the same path into one
// estimation input — §6's mitigation for the estimator's saturation and
// empty-queue assumptions.
func MergeTraces(traces []*Trace) (*Trace, error) { return trace.Merge(traces) }

// MLLossModel predicts per-window packet-loss probability — the loss half
// of Fig 6's "delay (or packet loss indicator)" output.
type MLLossModel = iboxml.LossModel

// TrainMLLoss fits the loss model on the same samples as TrainML.
func TrainMLLoss(samples []TrainingSample, cfg MLConfig) (*MLLossModel, error) {
	return iboxml.TrainLoss(samples, cfg)
}

// ABRConfig parameterizes an adaptive-bitrate video session (the §6
// realism workload).
type ABRConfig = abr.Config

// ABRResult summarizes a session (bitrate, rebuffering, QoE).
type ABRResult = abr.Result

// ABRSession is a running adaptive-bitrate client.
type ABRSession = abr.Session

// MLPacketModel is the per-packet iBoxML delay model — Fig 6's native
// granularity (one LSTM step per packet). The window-based MLModel is the
// CPU-friendly default.
type MLPacketModel = iboxml.PacketModel

// TrainMLPacket fits a per-packet iBoxML model.
func TrainMLPacket(samples []TrainingSample, cfg MLConfig) (*MLPacketModel, error) {
	return iboxml.TrainPacket(samples, cfg)
}
