// Command ibox-compare is the regression gate over the pipeline's
// structured outputs: it diffs two RUN_REPORT.json (written by
// ibox-experiments -report) or BENCH_*.json (written by ibox-bench)
// files, prints an aligned per-metric delta table, and exits non-zero
// when any metric worsened beyond its class threshold. CI runs it
// against the committed baselines under baselines/.
//
// Usage:
//
//	ibox-compare [flags] BASELINE NEW
//
//	ibox-compare baselines/RUN_REPORT.baseline.json RUN_REPORT.json
//	ibox-compare -tol-time 5 baselines/BENCH_parallel.json BENCH_parallel.json
//
// Exit codes: 0 no regressions, 1 regression detected, 2 usage or I/O
// error. See internal/regress for the metric classes and gate semantics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ibox/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	def := regress.DefaultThresholds()
	fs := flag.NewFlagSet("ibox-compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tolTime = fs.Float64("tol-time", def.Time,
			"allowed relative increase for time metrics (1 = +100%)")
		tolFloor = fs.Float64("tol-time-floor", def.TimeFloorSeconds,
			"absolute seconds a time metric must also worsen by to gate")
		tolCount = fs.Float64("tol-count", def.Count,
			"allowed relative change for counters (0 = exact)")
		tolFid = fs.Float64("tol-fidelity", def.Fidelity,
			"allowed relative NLL increase / absolute calibration worsening")
		skip = fs.String("skip", strings.Join(def.Skip, ","),
			"comma-separated substrings; matching metrics never gate")
		allowMissing = fs.Bool("allow-missing", false,
			"treat metrics missing from NEW as notes, not regressions")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ibox-compare [flags] BASELINE NEW\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	th := regress.Thresholds{
		Time:             *tolTime,
		TimeFloorSeconds: *tolFloor,
		Count:            *tolCount,
		Fidelity:         *tolFid,
		AllowMissing:     *allowMissing,
	}
	for _, pat := range strings.Split(*skip, ",") {
		if pat = strings.TrimSpace(pat); pat != "" {
			th.Skip = append(th.Skip, pat)
		}
	}

	res, err := regress.CompareFiles(fs.Arg(0), fs.Arg(1), th)
	if err != nil {
		fmt.Fprintf(stderr, "ibox-compare: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "base: %s\nnew:  %s\n\n%s", fs.Arg(0), fs.Arg(1), res.Table())
	if res.Failed() {
		return 1
	}
	return 0
}
