package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture is a minimal but representative run report.
const fixture = `{
  "generated_at": "2026-01-01T00:00:00Z",
  "gomaxprocs": 4,
  "wall_seconds": 2.0,
  "worker_utilization": 0.9,
  "stages": [
    {"name": "table1", "depth": 0, "start_ms": 0, "seconds": 1.8},
    {"name": "train", "depth": 1, "start_ms": 10, "seconds": 1.2}
  ],
  "fidelity": [
    {"label": "table1/with-ct", "epochs": 3, "final_loss": 1.1,
     "grad_norm_first": 4, "grad_norm_last": 1, "grad_norm_max": 5,
     "held_out_windows": 120, "held_out_nll": 1.3,
     "pit_deviation": 0.04, "coverage": {"p50": 0.51, "p90": 0.9}}
  ],
  "counters": {"pantheon.traces": 8},
  "gauges": {"par.workers": 4},
  "histograms": {
    "par.item_ns": {"count": 16, "mean_ns": 5e7, "p50_ns": 4e7, "p90_ns": 8e7, "p99_ns": 9e7}
  }
}`

func write(t *testing.T, dir, name, data string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalReportsExitZero(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", fixture)
	new := write(t, dir, "new.json", fixture)
	var out, errb strings.Builder
	if code := run([]string{base, new}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("missing ok verdict:\n%s", out.String())
	}
}

func TestRegressedReportExitsOne(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", fixture)
	// Synthetic regression: held-out NLL jumps 1.3 → 2.6 and the trace
	// counter drifts.
	bad := strings.Replace(fixture, `"held_out_nll": 1.3`, `"held_out_nll": 2.6`, 1)
	bad = strings.Replace(bad, `"pantheon.traces": 8`, `"pantheon.traces": 7`, 1)
	new := write(t, dir, "new.json", bad)
	var out, errb strings.Builder
	if code := run([]string{base, new}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fidelity.table1/with-ct.nll") {
		t.Fatalf("delta table missing nll row:\n%s", out.String())
	}
}

func TestLooseTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", fixture)
	slow := strings.Replace(fixture, `"wall_seconds": 2.0`, `"wall_seconds": 5.0`, 1)
	new := write(t, dir, "new.json", slow)
	var out, errb strings.Builder
	if code := run([]string{base, new}, &out, &errb); code != 1 {
		t.Fatalf("2.5x wall time under default tolerance: exit = %d, want 1", code)
	}
	out.Reset()
	if code := run([]string{"-tol-time", "5", base, new}, &out, &errb); code != 0 {
		t.Fatalf("2.5x wall time under -tol-time 5: exit = %d, want 0\n%s", code, out.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"only-one-arg"}, &out, &errb); code != 2 {
		t.Fatalf("one positional arg: exit = %d, want 2", code)
	}
	if code := run([]string{"no.json", "such.json"}, &out, &errb); code != 2 {
		t.Fatalf("missing files: exit = %d, want 2", code)
	}
}
