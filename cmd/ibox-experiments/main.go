// Command ibox-experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	ibox-experiments -run all -scale quick
//	ibox-experiments -run fig2,fig5 -scale paper
//	ibox-experiments -run all -parallel        # run the figures concurrently
//	ibox-experiments -run all -serial          # single-goroutine reference mode
//
// Observability (see internal/obs and DESIGN.md's Observability section):
//
//	ibox-experiments -run fig2 -report RUN_REPORT.json  # per-stage timings, worker
//	                                                    # utilization, histograms
//	ibox-experiments -run all -trace-out trace.json     # chrome://tracing / Perfetto
//	ibox-experiments -run all -log run.log -log-level debug  # structured JSON logs,
//	                                                    # each record tagged with the
//	                                                    # active span path and stage
//	ibox-experiments -run all -scale paper -debug-addr :6060  # live expvar + pprof
//
// Results are deterministic in the seed: serial and parallel runs print
// byte-identical experiment output (only timings differ), and enabling
// observability never changes any experiment output.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"ibox/internal/experiments"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/serve"
)

// serveDebug exposes expvar (including the live obs metric snapshot) and
// net/http/pprof on addr, in the standard /debug/... layout, on a mux of
// its own (shared with ibox-serve's -debug; see serve.DebugMux).
func serveDebug(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, serve.DebugMux()); err != nil {
			log.Printf("debug server: %v", err)
		}
	}()
}

// plotter is implemented by results that can emit CSV plot series.
type plotter interface {
	WritePlots(dir string) error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-experiments: ")
	var (
		runList   = flag.String("run", "all", "comma-separated experiments: fig2, fig3, fig4, fig5, fig7, fig8, table1, speed, adaptive, baselines, realism, all")
		scaleName = flag.String("scale", "quick", "experiment scale: quick (seconds) or paper (minutes, paper-sized corpora)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		plotDir   = flag.String("plot", "", "also write each figure's plottable series as CSV into this directory")
		parallel  = flag.Bool("parallel", false, "run the selected experiments concurrently (results print in the usual order)")
		serial    = flag.Bool("serial", false, "disable all intra-experiment parallelism (single goroutine; byte-identical results)")
		workers   = flag.Int("workers", 0, "bound the fan-out width; 0 = one worker per CPU")
		report    = flag.String("report", "", "write a structured end-of-run report (RUN_REPORT.json) to this path")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to this path")
		debugAddr = flag.String("debug-addr", "", "serve expvar and net/http/pprof on this address (e.g. :6060) while running")
		logPath   = flag.String("log", "", `write structured JSON run logs to this path ("-" or "stderr" for stderr)`)
		logLevel  = flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
	)
	flag.Parse()
	if *parallel && *serial {
		log.Fatalf("-parallel and -serial are mutually exclusive")
	}

	// Any observability output requested enables the layer; otherwise it
	// stays disabled and the pipeline runs exactly as before (no clock
	// reads, no atomics — see internal/obs).
	var reg *obs.Registry
	if *report != "" || *traceOut != "" || *debugAddr != "" || *logPath != "" {
		reg = obs.Enable()
	}
	var slogger *slog.Logger
	if *logPath != "" {
		w := io.Writer(os.Stderr)
		if *logPath != "-" && *logPath != "stderr" {
			f, err := os.Create(*logPath)
			if err != nil {
				log.Fatalf("opening -log file: %v", err)
			}
			defer f.Close()
			w = f
		}
		slogger = slog.New(obs.NewLogHandler(w, obs.ParseLogLevel(*logLevel)))
		obs.SetLogger(slogger)
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr)
		log.Printf("serving expvar and pprof on http://%s/debug/", *debugAddr)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed
	scale.Serial = *serial
	scale.Workers = *workers

	// One engine-wide worker pool for every fan-out in the process: the
	// per-experiment nested maps (variants × traces, train/eval) and the
	// -parallel whole-figure fan-out all share its concurrency budget
	// instead of each par.Map spinning up its own goroutines (see
	// par.PoolMap for the help-first nested-submission scheduler).
	// -serial bypasses it entirely.
	var enginePool *par.Pool
	if !*serial {
		w := *workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		enginePool = par.NewPool(w)
		defer enginePool.Close()
		scale.Pool = enginePool
	}

	type experiment struct {
		name string
		run  func(experiments.Scale) (fmt.Stringer, error)
	}
	all := []experiment{
		{"fig2", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig2(s) }},
		{"fig3", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig3(s) }},
		{"fig4", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig4(s) }},
		{"fig5", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig5(s) }},
		{"fig7", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig7(s) }},
		{"fig8", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig8(s) }},
		{"table1", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Table1(s) }},
		{"speed", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Speed(s) }},
		{"adaptive", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.AdaptiveCT(s) }},
		{"baselines", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Baselines(s) }},
		{"realism", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Realism(s) }},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var selected []experiment
	for _, e := range all {
		if want["all"] || want[e.name] {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		log.Fatalf("no experiments matched -run %q", *runList)
	}
	if slogger != nil {
		names := make([]string, len(selected))
		for i, e := range selected {
			names[i] = e.name
		}
		slogger.Info("run start",
			"experiments", strings.Join(names, ","), "scale", *scaleName,
			"seed", *seed, "parallel", *parallel, "serial", *serial)
	}

	// In -parallel mode the selected experiments run concurrently (on top
	// of each experiment's internal fan-out) but results are collected and
	// printed in the canonical order, so the output is identical to a
	// sequential invocation.
	expOpts := par.Options{Serial: !*parallel, Workers: *workers, Pool: enginePool}
	type outcome struct {
		res     fmt.Stringer
		err     error
		elapsed time.Duration
	}
	outs, _ := par.Map(len(selected), expOpts, func(i int) (outcome, error) {
		start := time.Now()
		res, err := selected[i].run(scale)
		elapsed := time.Since(start)
		if slogger != nil {
			if err != nil {
				slogger.Error("experiment failed", "experiment", selected[i].name,
					"seconds", elapsed.Seconds(), "error", err.Error())
			} else {
				slogger.Info("experiment done", "experiment", selected[i].name,
					"seconds", elapsed.Seconds())
			}
		}
		return outcome{res, err, elapsed}, nil
	})

	failed := false
	for i, e := range selected {
		o := outs[i]
		if o.err != nil {
			log.Printf("%s: %v", e.name, o.err)
			failed = true
			continue
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", e.name, o.elapsed.Seconds(), o.res)
		if *plotDir != "" {
			if p, ok := o.res.(plotter); ok {
				if err := p.WritePlots(*plotDir); err != nil {
					log.Printf("%s: writing plots: %v", e.name, err)
					failed = true
				}
			}
		}
	}
	if *report != "" {
		if err := reg.WriteReport(*report); err != nil {
			log.Printf("%v", err)
			failed = true
		} else {
			log.Printf("wrote %s", *report)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = reg.TraceJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Printf("writing trace: %v", err)
			failed = true
		} else {
			log.Printf("wrote %s (open in chrome://tracing or https://ui.perfetto.dev)", *traceOut)
		}
	}
	if failed {
		os.Exit(1)
	}
}
