// Command ibox-experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured).
//
// Usage:
//
//	ibox-experiments -run all -scale quick
//	ibox-experiments -run fig2,fig5 -scale paper
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ibox/internal/experiments"
)

// plotter is implemented by results that can emit CSV plot series.
type plotter interface {
	WritePlots(dir string) error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-experiments: ")
	var (
		runList   = flag.String("run", "all", "comma-separated experiments: fig2, fig3, fig4, fig5, fig7, fig8, table1, speed, adaptive, baselines, realism, all")
		scaleName = flag.String("scale", "quick", "experiment scale: quick (seconds) or paper (minutes, paper-sized corpora)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		plotDir   = flag.String("plot", "", "also write each figure's plottable series as CSV into this directory")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed

	type experiment struct {
		name string
		run  func(experiments.Scale) (fmt.Stringer, error)
	}
	all := []experiment{
		{"fig2", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig2(s) }},
		{"fig3", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig3(s) }},
		{"fig4", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig4(s) }},
		{"fig5", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig5(s) }},
		{"fig7", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig7(s) }},
		{"fig8", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Fig8(s) }},
		{"table1", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Table1(s) }},
		{"speed", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Speed(s) }},
		{"adaptive", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.AdaptiveCT(s) }},
		{"baselines", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Baselines(s) }},
		{"realism", func(s experiments.Scale) (fmt.Stringer, error) { return experiments.Realism(s) }},
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ranAny := false
	failed := false
	for _, e := range all {
		if !want["all"] && !want[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		res, err := e.run(scale)
		if err != nil {
			log.Printf("%s: %v", e.name, err)
			failed = true
			continue
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", e.name, time.Since(start).Seconds(), res)
		if *plotDir != "" {
			if p, ok := res.(plotter); ok {
				if err := p.WritePlots(*plotDir); err != nil {
					log.Printf("%s: writing plots: %v", e.name, err)
					failed = true
				}
			}
		}
	}
	if !ranAny {
		log.Fatalf("no experiments matched -run %q", *runList)
	}
	if failed {
		os.Exit(1)
	}
}
