package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/iboxnet"
	"ibox/internal/par"
	"ibox/internal/regress"
	"ibox/internal/serve"
	"ibox/internal/session"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// sessionSuite measures the live-session control plane (internal/session
// + the /v1/sessions routes) in two parts:
//
//   - SessionBurst/burst8 "live": eight concurrent sessions driven
//     through the full HTTP front door — create, attach to the SSE
//     telemetry stream, read 150 events, mutate the live path
//     (bandwidth ×0.5 + a loss burst), read the mutation echo plus 50
//     more events, close, and drain the stream to its terminal frame.
//     The burst wall time gates in CI; the aggregate SSE event rate
//     rides along informationally.
//
//   - SessionIdle/idle1000 "create"/"reap": a thousand paused sessions
//     at the manager layer — the population the idle-TTL reaper exists
//     for. The suite hard-fails if an idle session holds more than 1 MiB
//     of heap (a session leak) or if the reaper fails to empty the
//     population; per-session create cost and total reap wall time gate,
//     heap bytes per idle session ride along informationally.
func sessionSuite(seed int64, reps int) regress.BenchSummary {
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "session",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	sessionBurst(&sum, seed, reps)
	sessionIdleReap(&sum, seed)
	return sum
}

// benchPathParams is the learnt path the bench sessions emulate: 10 Mbps,
// 20 ms, a 30 kB buffer, and a gentle cross-traffic ramp (the serve test
// path, so the workload shape is pinned).
func benchPathParams() iboxnet.Params {
	ct := trace.NewSeries(0, 100*sim.Millisecond, 20)
	for i := range ct.Vals {
		ct.Vals[i] = float64(500 * i)
	}
	return iboxnet.Params{
		Bandwidth:    1.25e6,
		PropDelay:    20 * sim.Millisecond,
		BufferBytes:  30_000,
		CrossTraffic: ct,
		LossRate:     0.01,
	}
}

func sessionBurst(sum *regress.BenchSummary, seed int64, reps int) {
	dir, err := os.MkdirTemp("", "ibox-bench-session")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const id = "bench-path.json"
	if err := benchPathParams().Save(dir + "/" + id); err != nil {
		log.Fatal(err)
	}

	const burst = 8
	s, err := serve.NewServer(serve.Config{
		ModelDir:    dir,
		MaxSessions: 4 * burst,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	name := fmt.Sprintf("SessionBurst/burst%d", burst)
	var totalEvents atomic.Int64
	fire := func() time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				totalEvents.Add(driveSession(ts.URL, name, id, seed+int64(i)))
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	fire() // warm-up: model load, pool spin-up, HTTP keep-alives
	totalEvents.Store(0)
	var min, total time.Duration
	for r := 0; r < reps; r++ {
		d := fire()
		total += d
		if r == 0 || d < min {
			min = d
		}
	}
	sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
		Name: name, Mode: "live", Workers: runtime.GOMAXPROCS(0),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
	})
	rate := float64(totalEvents.Load()) / total.Seconds()
	sum.Speedups[name+"/events_per_s"] = rate
	fmt.Printf("%-24s %-10s %12d ns/burst  (%.3fs, %.0f SSE events/s)\n",
		name, "live", min.Nanoseconds(), min.Seconds(), rate)

	// The suite must leave the population empty: every driver closed its
	// session and drained the terminal frame.
	if n := s.LoadStats().SessionsActive; n != 0 {
		log.Fatalf("%s: %d sessions still active after the burst", name, n)
	}
}

// driveSession runs one session's full create → stream → mutate → close
// lifecycle through the HTTP API and returns how many SSE events it read.
func driveSession(base, name, model string, seed int64) int64 {
	body, _ := json.Marshal(serve.SessionRequest{
		Model: model, Protocol: "cubic", Seed: seed,
		// Fast-forwarded 50× against a 10-minute virtual bound (12 wall
		// seconds): the session visibly runs but cannot complete
		// mid-benchmark, so the mutation always lands on a live path.
		Speed: 50, DurationS: 600,
	})
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("%s: create: %v", name, err)
	}
	if resp.StatusCode != http.StatusCreated {
		log.Fatalf("%s: create: HTTP %d", name, resp.StatusCode)
	}
	var sr serve.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatalf("%s: create: %v", name, err)
	}
	resp.Body.Close()

	stream, err := http.Get(base + sr.EventsURL)
	if err != nil {
		log.Fatalf("%s: events: %v", name, err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	events := int64(0)
	readEvents := func(n int, untilMutate bool) {
		sawMutate := false
		for (n > 0 || (untilMutate && !sawMutate)) && sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				events++
				n--
				if strings.Contains(line, `"type":"mutate"`) {
					sawMutate = true
				}
			}
		}
	}
	readEvents(150, false)

	loss := 0.1
	mbody, _ := json.Marshal(serve.PathRequest{
		Mutation: session.Mutation{BandwidthScale: 0.5, LossRate: &loss, LossBurstS: 5},
	})
	mresp, err := http.Post(base+"/v1/sessions/"+sr.Session.ID+"/path", "application/json", bytes.NewReader(mbody))
	if err != nil {
		log.Fatalf("%s: mutate: %v", name, err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		log.Fatalf("%s: mutate: HTTP %d", name, mresp.StatusCode)
	}
	readEvents(50, true)

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sr.Session.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("%s: close: %v", name, err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		log.Fatalf("%s: close: HTTP %d", name, dresp.StatusCode)
	}
	// Drain to the terminal frame so the subscription detaches cleanly.
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: end") {
			break
		}
		if strings.HasPrefix(sc.Text(), "data: ") {
			events++
		}
	}
	return events
}

// sessionIdleReap measures the idle population: create 1000 paused
// sessions at the manager layer, check their heap cost, and time the
// idle-TTL reaper emptying them. Runs once (a population check, not a
// hot loop, so reps don't apply).
func sessionIdleReap(sum *regress.BenchSummary, seed int64) {
	const n = 1000
	pool := par.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	m := session.NewManager(session.Limits{
		MaxSessions:  n + 10,
		MaxPerTenant: n + 10,
		TTL:          250 * time.Millisecond,
		ReapEvery:    25 * time.Millisecond,
	}, pool)
	defer m.Shutdown()

	name := fmt.Sprintf("SessionIdle/idle%d", n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		s, err := m.Create(session.Config{
			Kind:     session.KindIBoxNet,
			Net:      benchPathParams(),
			Protocol: "cubic",
			Seed:     seed + int64(i),
			RingSize: 256,
		})
		if err != nil {
			log.Fatalf("%s: create %d: %v", name, i, err)
		}
		if err := s.Pause(); err != nil {
			log.Fatalf("%s: pause %d: %v", name, i, err)
		}
	}
	createDur := time.Since(start)
	runtime.GC()
	runtime.ReadMemStats(&after)
	perSession := float64(after.HeapAlloc-before.HeapAlloc) / n
	if perSession > 1<<20 {
		log.Fatalf("%s: %.0f heap bytes per idle session, want < 1 MiB — session state leak", name, perSession)
	}

	// The TTL clock started at each session's last interaction (the
	// pause); the reaper must empty the population on its own.
	reapStart := time.Now()
	for m.Active() > 0 {
		if time.Since(reapStart) > 30*time.Second {
			log.Fatalf("%s: reaper left %d of %d sessions after 30s", name, m.Active(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	reapDur := time.Since(reapStart)

	sum.Benchmarks = append(sum.Benchmarks,
		regress.BenchMeasurement{
			Name: name, Mode: "create", Workers: runtime.GOMAXPROCS(0),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NsPerOp:    createDur.Nanoseconds() / n, Seconds: createDur.Seconds(), Reps: 1,
		},
		regress.BenchMeasurement{
			Name: name, Mode: "reap", Workers: runtime.GOMAXPROCS(0),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NsPerOp:    reapDur.Nanoseconds(), Seconds: reapDur.Seconds(), Reps: 1,
		},
	)
	sum.Speedups[name+"/heap_bytes_per_session"] = perSession
	fmt.Printf("%-24s %-10s %12d ns/session (%.3fs for %d)\n", name, "create", createDur.Nanoseconds()/n, createDur.Seconds(), n)
	fmt.Printf("%-24s %-10s %12d ns total   (%.3fs, %.0f heap B/session)\n", name, "reap", reapDur.Nanoseconds(), reapDur.Seconds(), perSession)
}
