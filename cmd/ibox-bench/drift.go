package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/regress"
	"ibox/internal/serve"
	"ibox/internal/sim"
)

// driftSuite measures what online drift detection costs. It first
// asserts the sketch's hit-path contract — DriftSketch.Observe allocates
// zero bytes per call — then measures concurrent iBoxML replay bursts
// through the HTTP serving path with drift scoring disabled
// (DriftEvery -1) vs enabled at the production default sampling (every
// 8th eligible replay), against a calibrated checkpoint that carries its
// training-time baseline. The off/on wall-clock ratio lands in Speedups
// and both timings gate in CI via ibox-compare. The model's streaming
// drift scorecard over the bench input — deterministic given the
// checkpoint and trace — is attached as the fidelity record, so a
// scoring change that silently shifts the drift numbers trips the gate
// even when the timing stays flat.
func driftSuite(seed int64, reps int) regress.BenchSummary {
	// --- allocation self-check ---------------------------------------
	var sketch obs.DriftSketch
	if n := testing.AllocsPerRun(200, func() {
		sketch.Observe(0.42, 1.1)
	}); n != 0 {
		log.Fatalf("drift: DriftSketch.Observe allocates %.1f bytes/op, want 0", n)
	}
	fmt.Println("drift sketch contract holds: Observe 0 B/op on the hit path")

	// --- bench model: trained, calibrated, baseline embedded ----------
	dir, err := os.MkdirTemp("", "ibox-bench-drift")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	input := benchSynthTrace(seed+99, 4*sim.Second)
	var samples []iboxml.TrainingSample
	for i := int64(0); i < 2; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: benchSynthTrace(seed+i, 4*sim.Second)})
	}
	model, err := iboxml.Train(samples, iboxml.Config{Hidden: 96, Layers: 1, Epochs: 1, Seed: seed})
	if err != nil {
		log.Fatalf("training bench model: %v", err)
	}
	model.SetBaseline(model.Calibrate([]iboxml.TrainingSample{
		{Trace: benchSynthTrace(seed+50, 4*sim.Second)},
		{Trace: benchSynthTrace(seed+51, 4*sim.Second)},
	}))
	if err := model.Save(dir + "/bench.json"); err != nil {
		log.Fatal(err)
	}

	// The streaming scorecard the serving tier would accumulate over the
	// bench input: deterministic, so it doubles as the fidelity record.
	var stream obs.DriftSketch
	model.ScoreWindows(input, nil, func(pit, _, nll float64) { stream.Observe(pit, nll) })
	snap := stream.Snapshot()
	if snap.Windows == 0 {
		log.Fatal("drift: bench input scored zero windows")
	}
	fid := &regress.BenchFidelity{NLL: snap.NLL, PITDeviation: snap.PITDeviation}
	fmt.Printf("streaming scorecard: %d windows, NLL %.4f, PIT dev %.4f\n",
		snap.Windows, snap.NLL, snap.PITDeviation)

	reqBody, err := json.Marshal(serve.SimulateRequest{Model: "bench.json", Input: input, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "drift",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	const burst = 8
	modes := []struct {
		mode       string
		driftEvery int
	}{
		{"off", -1}, // scoring disabled entirely
		{"on", 0},   // production default: every 8th eligible replay
	}
	name := fmt.Sprintf("DriftOverhead/burst%d", burst)
	best := map[string]time.Duration{}
	for _, m := range modes {
		s, err := serve.NewServer(serve.Config{
			ModelDir: dir, Workers: 1, MaxConcurrent: 2 * burst,
			BatchWindow: 5 * time.Millisecond, BatchMax: burst,
			DriftEvery: m.driftEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Registry().Warm([]string{"bench.json"}); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		fire := func() time.Duration {
			start := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
					if err != nil {
						log.Fatalf("%s/%s: %v", name, m.mode, err)
					}
					defer resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body)
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
		fire() // warm-up: model load, pool spin-up, HTTP keep-alives
		var min time.Duration
		for r := 0; r < reps; r++ {
			if d := fire(); r == 0 || d < min {
				min = d
			}
		}
		ts.Close()
		if m.driftEvery >= 0 {
			// Loop closure: the healthy calibrated model must have been
			// scored and judged fine, or the overhead we measured is of a
			// path that silently stopped working.
			sts := s.DriftStatuses()
			if len(sts) != 1 || sts[0].Windows == 0 {
				log.Fatalf("drift: on-mode scored nothing: %+v", sts)
			}
			if v := sts[0].Verdict; v == "warn" || v == "failing" {
				log.Fatalf("drift: healthy bench model judged %s: %+v", v, sts[0])
			}
		}
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
		cancel()
		best[m.mode] = min
		sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
			Name: name, Mode: m.mode, Workers: 1,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			Fidelity: fid,
		})
		fmt.Printf("%-24s %-10s %12d ns/burst  (%.3fs)\n", name, m.mode, min.Nanoseconds(), min.Seconds())
	}
	if on := best["on"]; on > 0 {
		ratio := float64(best["off"]) / float64(on)
		sum.Speedups[name] = ratio
		fmt.Printf("%-24s off/on     %12.2fx (1.00 = free; below 1 = overhead)\n", name, ratio)
	}
	return sum
}
