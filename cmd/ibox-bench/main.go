// Command ibox-bench measures the repository's performance-critical
// paths and writes a machine-readable summary in the internal/regress
// schema, so ibox-compare can gate on it in CI.
//
// Three suites:
//
//   - experiments (default): serial-vs-parallel wall-clock of the two
//     hottest experiment paths — the Fig 2 ensemble test (per-trace
//     iBoxNet fit + counterfactual replay) and Table 1 (per-trace iBoxML
//     training + evaluation). The parallel mode runs on the shared
//     engine-wide par.Pool, as ibox-experiments does. Serial and
//     parallel results are byte-identical by construction (see
//     internal/par).
//   - serve: batched-vs-unbatched serving latency of concurrent iBoxML
//     replay bursts through the full HTTP path (see internal/serve). Both
//     modes run on a single-worker pool, so the batched win is the
//     micro-batched LSTM kernel, not extra parallelism — and both return
//     byte-identical responses.
//   - nested: per-call par.Map vs shared par.Pool on the Fig 3 shape
//     (variants × traces nested fan-outs) plus a synthetic nested tree,
//     measuring what the help-first shared-pool scheduler buys when
//     nested fan-outs would otherwise oversubscribe the cores. Both
//     modes produce byte-identical experiment output.
//
// Usage:
//
//	ibox-bench                         # quick scale, BENCH_parallel.json
//	ibox-bench -scale paper -reps 5 -out bench.json
//	ibox-bench -suite serve            # BENCH_serve.json
//	ibox-bench -suite nested           # BENCH_nested.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"ibox/internal/experiments"
	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/regress"
	"ibox/internal/serve"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-bench: ")
	var (
		suite     = flag.String("suite", "experiments", "benchmark suite: experiments, serve or nested")
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper (experiments suite)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		reps      = flag.Int("reps", 5, "repetitions per (benchmark, mode); the minimum is reported")
		out       = flag.String("out", "", "output path for the JSON summary (default BENCH_parallel.json or BENCH_serve.json per suite)")
	)
	flag.Parse()

	var sum regress.BenchSummary
	switch *suite {
	case "experiments":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		sum = experimentsSuite(*scaleName, *seed, *reps)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		sum = serveSuite(*seed, *reps)
	case "nested":
		if *out == "" {
			*out = "BENCH_nested.json"
		}
		sum = nestedSuite(*seed, *reps)
	default:
		log.Fatalf("unknown suite %q", *suite)
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func experimentsSuite(scaleName string, seed int64, reps int) regress.BenchSummary {
	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", scaleName)
	}
	scale.Seed = seed

	benchmarks := []struct {
		name string
		run  func(experiments.Scale) error
	}{
		{"Fig2Ensemble", func(s experiments.Scale) error { _, err := experiments.Fig2(s); return err }},
		{"Table1", func(s experiments.Scale) error { _, err := experiments.Table1(s); return err }},
	}
	modes := []struct {
		mode   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	}

	// The schema lives in internal/regress so ibox-compare can gate on
	// these files.
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	best := map[string]map[string]time.Duration{}
	for _, b := range benchmarks {
		best[b.name] = map[string]time.Duration{}
		for _, m := range modes {
			s := scale
			s.Serial = m.serial
			workers := 1
			// A fresh registry per measurement so the par.item_ns
			// histogram covers exactly this (benchmark, mode)'s reps.
			reg := obs.Enable()
			// The parallel mode runs on a shared engine pool, exactly as
			// ibox-experiments wires it, so the measured speedup is the
			// deployed configuration rather than per-call goroutine pools.
			var pool *par.Pool
			if !m.serial {
				workers = runtime.GOMAXPROCS(0)
				pool = par.NewPool(workers)
				s.Pool = pool
			}
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := b.run(s); err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
			}
			obs.Disable()
			if pool != nil {
				pool.Close()
			}
			best[b.name][m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if meas.ItemLatency != nil {
				fmt.Printf(", item p50=%.1fms p99=%.1fms",
					meas.ItemLatency.P50/1e6, meas.ItemLatency.P99/1e6)
			}
			fmt.Printf(")\n")
		}
		if p := best[b.name]["parallel"]; p > 0 {
			speedup := float64(best[b.name]["serial"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}
	return sum
}

// benchSynthTrace generates the deterministic synthetic input–output
// trace the iboxml tests train on.
func benchSynthTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 5)
	tr := &trace.Trace{Protocol: "synth"}
	ema := 0.0
	var now sim.Time
	seq := int64(0)
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase+float64(seed))) // bytes/s
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		ema = 0.98*ema + 0.02*rate
		delayMs := 20 + 60*(ema/312_500) + rng.NormFloat64()*1.0
		if delayMs < 1 {
			delayMs = 1
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now,
			RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
		})
		seq++
	}
	return tr
}

// serveSuite measures concurrent iBoxML replay bursts through the HTTP
// serving path, micro-batching on vs off, on a single-worker pool.
func serveSuite(seed int64, reps int) regress.BenchSummary {
	var samples []iboxml.TrainingSample
	for i := int64(0); i < 2; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: benchSynthTrace(seed+i, 4*sim.Second)})
	}
	model, err := iboxml.Train(samples, iboxml.Config{Hidden: 96, Layers: 1, Epochs: 1, Seed: seed})
	if err != nil {
		log.Fatalf("training bench model: %v", err)
	}
	dir, err := os.MkdirTemp("", "ibox-bench-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const id = "bench.json"
	if err := model.Save(dir + "/" + id); err != nil {
		log.Fatal(err)
	}
	input := benchSynthTrace(seed+99, 4*sim.Second)
	reqBody, err := json.Marshal(serve.SimulateRequest{Model: id, Input: input, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "serve",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	modes := []struct {
		mode    string
		noBatch bool
	}{
		{"unbatched", true},
		{"batched", false},
	}
	for _, burst := range []int{4, 8} {
		name := fmt.Sprintf("ServeIBoxML/burst%d", burst)
		best := map[string]time.Duration{}
		for _, m := range modes {
			s, err := serve.NewServer(serve.Config{
				ModelDir: dir,
				// One worker pins both modes to the same CPU budget: the
				// batched win below is the kernel, not parallel replay.
				Workers:       1,
				MaxConcurrent: 2 * burst,
				NoBatch:       m.noBatch,
				BatchWindow:   5 * time.Millisecond,
				BatchMax:      burst,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Registry().Warm([]string{id}); err != nil {
				log.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())

			fire := func() time.Duration {
				start := time.Now()
				var wg sync.WaitGroup
				for i := 0; i < burst; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
						if err != nil {
							log.Fatalf("%s/%s: %v", name, m.mode, err)
						}
						defer resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
						}
						var sr serve.SimulateResponse
						if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
							log.Fatalf("%s/%s: decode: %v", name, m.mode, err)
						}
					}()
				}
				wg.Wait()
				return time.Since(start)
			}
			fire() // warm-up: model load, pool spin-up, HTTP keep-alives
			var min time.Duration
			for r := 0; r < reps; r++ {
				if d := fire(); r == 0 || d < min {
					min = d
				}
			}
			ts.Close()
			best[m.mode] = min
			sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
				Name: name, Mode: m.mode, Workers: 1,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			})
			fmt.Printf("%-20s %-10s %12d ns/burst  (%.3fs)\n", name, m.mode, min.Nanoseconds(), min.Seconds())
		}
		if b := best["batched"]; b > 0 {
			speedup := float64(best["unbatched"]) / float64(b)
			sum.Speedups[name] = speedup
			fmt.Printf("%-20s speedup    %12.2fx\n", name, speedup)
		}
	}
	return sum
}

// nestedSuite measures nested fan-outs — the shape where the shared
// help-first pool earns its keep — in two modes:
//
//   - percall: every par.Map spins up its own goroutine pool, so a
//     variants × traces nesting oversubscribes the cores (the pre-pool
//     behaviour).
//   - pool: every par.Map runs on one shared par.Pool via par.PoolMap;
//     saturated nested submissions are inlined on the submitting worker,
//     so concurrency never exceeds the worker budget.
//
// Two benchmarks: Fig3Nested is the real Fig 3 pipeline (per-variant
// ensemble tests, each fanning out per-trace), SynthTree is a synthetic
// depth-3 fan-out tree that isolates scheduler overhead from model
// compute. Each benchmark's output is asserted byte-identical across
// modes before its timings are reported.
func nestedSuite(seed int64, reps int) regress.BenchSummary {
	scale := experiments.Quick()
	scale.Seed = seed
	workers := runtime.GOMAXPROCS(0)

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "nested",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	modes := []struct {
		mode   string
		shared bool
	}{
		{"percall", false},
		{"pool", true},
	}
	benchmarks := []struct {
		name string
		run  func(pool *par.Pool) (string, error)
	}{
		{"Fig3Nested", func(pool *par.Pool) (string, error) {
			s := scale
			s.Pool = pool
			res, err := experiments.Fig3(s)
			if err != nil {
				return "", err
			}
			return res.String(), nil
		}},
		{"SynthTree", func(pool *par.Pool) (string, error) {
			return synthTree(pool, seed)
		}},
	}

	for _, b := range benchmarks {
		best := map[string]time.Duration{}
		outputs := map[string]string{}
		for _, m := range modes {
			reg := obs.Enable()
			var pool *par.Pool
			if m.shared {
				pool = par.NewPool(workers)
			}
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				o, err := b.run(pool)
				if err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
				outputs[m.mode] = o
			}
			inlined := reg.Counter("par.pool_inline").Value()
			obs.Disable()
			if pool != nil {
				pool.Close()
			}
			best[m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if m.shared {
				fmt.Printf(", inlined=%d", inlined)
			}
			fmt.Printf(")\n")
		}
		if outputs["pool"] != outputs["percall"] {
			log.Fatalf("%s: pool output differs from percall output", b.name)
		}
		if p := best["pool"]; p > 0 {
			speedup := float64(best["percall"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}
	return sum
}

// synthTree runs a deterministic depth-3 nested fan-out (4 × 4 × 8
// leaves, a fixed slug of floating-point work per leaf) through par.Map
// and returns a digest of the results, so nestedSuite can assert the
// scheduler modes are byte-identical. With pool == nil each level's Map
// spawns its own goroutines (4·4·8 = 128 in flight at the leaves); with
// a shared pool, concurrency is capped at the pool's workers.
func synthTree(pool *par.Pool, seed int64) (string, error) {
	opts := par.Options{Pool: pool}
	top, err := par.Map(4, opts, func(i int) (float64, error) {
		mids, err := par.Map(4, opts, func(j int) (float64, error) {
			leaves, err := par.Map(8, opts, func(k int) (float64, error) {
				x := float64(seed) + float64(i*100+j*10+k)
				s := 0.0
				for n := 0; n < 20_000; n++ {
					s += math.Sin(x + float64(n))
				}
				return s, nil
			})
			if err != nil {
				return 0, err
			}
			t := 0.0
			for _, v := range leaves {
				t += v
			}
			return t, nil
		})
		if err != nil {
			return 0, err
		}
		t := 0.0
		for _, v := range mids {
			t += v
		}
		return t, nil
	})
	if err != nil {
		return "", err
	}
	total := 0.0
	for _, v := range top {
		total += v
	}
	return fmt.Sprintf("%.6f", total), nil
}
