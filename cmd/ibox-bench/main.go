// Command ibox-bench measures the repository's performance-critical
// paths and writes a machine-readable summary in the internal/regress
// schema, so ibox-compare can gate on it in CI.
//
// Seven suites:
//
//   - experiments (default): serial-vs-parallel wall-clock of the two
//     hottest experiment paths — the Fig 2 ensemble test (per-trace
//     iBoxNet fit + counterfactual replay) and Table 1 (per-trace iBoxML
//     training + evaluation). The parallel mode runs on the shared
//     engine-wide par.Pool, as ibox-experiments does. Serial and
//     parallel results are byte-identical by construction (see
//     internal/par).
//   - serve: batched-vs-unbatched serving latency of concurrent iBoxML
//     replay bursts through the full HTTP path (see internal/serve). Both
//     modes run on a single-worker pool, so the batched win is the
//     shared per-window kernel setup, not extra parallelism — and both
//     return byte-identical responses. A mixed-checkpoint section then
//     streams a paper-scale burst spread over several distinct same-shape
//     checkpoints through /v1/replay, comparing shape-keyed
//     cross-checkpoint batching against per-checkpoint-only grouping on
//     burst wall time and worst time-to-first-chunk, with every streamed
//     prediction asserted bitwise-identical to the unbatched replay first.
//   - nested: per-call par.Map vs shared par.Pool on the Fig 3 shape
//     (variants × traces nested fan-outs) plus a synthetic nested tree,
//     measuring what the help-first shared-pool scheduler buys when
//     nested fan-outs would otherwise oversubscribe the cores. Both
//     modes produce byte-identical experiment output.
//   - kernel: the LSTM inference kernels themselves (internal/nn), per
//     step: the training-path Step (the pre-kernel baseline), the
//     compiled StepInto, lockstep StepBatchInto, the pre-projected
//     window Forward, and the opt-in int8 path — on a typical shape and
//     the §4.2 paper-scale stack (~2M params). Float kernel outputs are
//     asserted bitwise-identical to the training path before timings are
//     reported, and each mode prints the implied emulation rate
//     (§4.2's packets-per-second budget as Mbps of 1500-byte packets).
//   - obs: the cost of observing. Self-checks first — the disabled
//     obs path and the labeled hot-path lookup must be zero-alloc
//     (testing.AllocsPerRun) — then concurrent serving bursts with
//     observability fully off vs fully on (metrics + labeled families +
//     access log + trace sampling), so a metrics-layer change that taxes
//     the request path gates in CI like any other regression.
//   - drift: the cost of online drift detection. Self-check first —
//     obs.DriftSketch.Observe must be zero-alloc on the hit path — then
//     concurrent serving bursts against a calibrated checkpoint with
//     drift scoring off vs on at the production sampling rate, plus the
//     deterministic streaming NLL / PIT-deviation scorecard over the
//     bench input attached as the fidelity record.
//   - session: the live-session control plane. A create/stream/mutate/
//     close burst of concurrent sessions through the full HTTP + SSE
//     path, then a 1000-idle-session population check at the manager
//     layer: heap bytes per idle session (hard cap 1 MiB) and the wall
//     time for the idle-TTL reaper to empty it.
//
// Usage:
//
//	ibox-bench                         # quick scale, BENCH_parallel.json
//	ibox-bench -scale paper -reps 5 -out bench.json
//	ibox-bench -suite serve            # BENCH_serve.json
//	ibox-bench -suite nested           # BENCH_nested.json
//	ibox-bench -suite kernel           # BENCH_kernel.json
//	ibox-bench -suite obs              # BENCH_obs.json
//	ibox-bench -suite drift            # BENCH_drift.json
//	ibox-bench -suite session          # BENCH_session.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"ibox/internal/experiments"
	"ibox/internal/iboxml"
	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/regress"
	"ibox/internal/serve"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-bench: ")
	var (
		suite     = flag.String("suite", "experiments", "benchmark suite: experiments, serve, nested, kernel, obs, drift or session")
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper (experiments suite)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		reps      = flag.Int("reps", 5, "repetitions per (benchmark, mode); the minimum is reported")
		out       = flag.String("out", "", "output path for the JSON summary (default BENCH_parallel.json or BENCH_serve.json per suite)")
	)
	flag.Parse()

	var sum regress.BenchSummary
	switch *suite {
	case "experiments":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		sum = experimentsSuite(*scaleName, *seed, *reps)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		sum = serveSuite(*seed, *reps)
	case "nested":
		if *out == "" {
			*out = "BENCH_nested.json"
		}
		sum = nestedSuite(*seed, *reps)
	case "kernel":
		if *out == "" {
			*out = "BENCH_kernel.json"
		}
		sum = kernelSuite(*seed, *reps)
	case "obs":
		if *out == "" {
			*out = "BENCH_obs.json"
		}
		sum = obsSuite(*seed, *reps)
	case "drift":
		if *out == "" {
			*out = "BENCH_drift.json"
		}
		sum = driftSuite(*seed, *reps)
	case "session":
		if *out == "" {
			*out = "BENCH_session.json"
		}
		sum = sessionSuite(*seed, *reps)
	default:
		log.Fatalf("unknown suite %q", *suite)
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func experimentsSuite(scaleName string, seed int64, reps int) regress.BenchSummary {
	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", scaleName)
	}
	scale.Seed = seed

	benchmarks := []struct {
		name string
		run  func(experiments.Scale) error
	}{
		{"Fig2Ensemble", func(s experiments.Scale) error { _, err := experiments.Fig2(s); return err }},
		{"Table1", func(s experiments.Scale) error { _, err := experiments.Table1(s); return err }},
	}
	modes := []struct {
		mode   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	}

	// The schema lives in internal/regress so ibox-compare can gate on
	// these files.
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	best := map[string]map[string]time.Duration{}
	for _, b := range benchmarks {
		best[b.name] = map[string]time.Duration{}
		for _, m := range modes {
			s := scale
			s.Serial = m.serial
			workers := 1
			// A fresh registry per measurement so the par.item_ns
			// histogram covers exactly this (benchmark, mode)'s reps.
			reg := obs.Enable()
			// The parallel mode runs on a shared engine pool, exactly as
			// ibox-experiments wires it, so the measured speedup is the
			// deployed configuration rather than per-call goroutine pools.
			var pool *par.Pool
			if !m.serial {
				workers = runtime.GOMAXPROCS(0)
				pool = par.NewPool(workers)
				s.Pool = pool
			}
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := b.run(s); err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
			}
			obs.Disable()
			if pool != nil {
				pool.Close()
			}
			best[b.name][m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if meas.ItemLatency != nil {
				fmt.Printf(", item p50=%.1fms p99=%.1fms",
					meas.ItemLatency.P50/1e6, meas.ItemLatency.P99/1e6)
			}
			fmt.Printf(")\n")
		}
		if p := best[b.name]["parallel"]; p > 0 {
			speedup := float64(best[b.name]["serial"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}
	return sum
}

// benchSynthTrace generates the deterministic synthetic input–output
// trace the iboxml tests train on.
func benchSynthTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 5)
	tr := &trace.Trace{Protocol: "synth"}
	ema := 0.0
	var now sim.Time
	seq := int64(0)
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase+float64(seed))) // bytes/s
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		ema = 0.98*ema + 0.02*rate
		delayMs := 20 + 60*(ema/312_500) + rng.NormFloat64()*1.0
		if delayMs < 1 {
			delayMs = 1
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now,
			RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
		})
		seq++
	}
	return tr
}

// serveSuite measures concurrent iBoxML replay bursts through the HTTP
// serving path, micro-batching on vs off, on a single-worker pool. Two
// served models: the historical quick shape (Hidden 96, one layer, where
// HTTP and JSON dominate) and the §4.2 paper-scale stack (Hidden 256,
// four layers, ~2M params, where the inference kernel dominates — the
// shape whose implied emulation rate the paper's speed analysis is
// about). Each model's held-out calibration is attached to its
// measurements, so a serving-speed win that costs model fidelity gates
// in CI. The implied emulation Mbps (input-trace bytes over per-request
// wall time) is reported per mode under speedup.*.implied_mbps_*.
func serveSuite(seed int64, reps int) regress.BenchSummary {
	dir, err := os.MkdirTemp("", "ibox-bench-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	input := benchSynthTrace(seed+99, 4*sim.Second)
	inputBits := 0.0
	for _, p := range input.Packets {
		inputBits += 8 * float64(p.Size)
	}

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "serve",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	modes := []struct {
		mode    string
		noBatch bool
	}{
		{"unbatched", true},
		{"batched", false},
	}
	specs := []struct {
		prefix         string
		id             string
		hidden, layers int
		bursts         []int
	}{
		{"ServeIBoxML", "bench.json", 96, 1, []int{4, 8}},
		{"ServeIBoxML/paper", "paper.json", 256, 4, []int{4}},
	}
	for _, spec := range specs {
		var samples []iboxml.TrainingSample
		for i := int64(0); i < 2; i++ {
			samples = append(samples, iboxml.TrainingSample{Trace: benchSynthTrace(seed+i, 4*sim.Second)})
		}
		model, err := iboxml.Train(samples, iboxml.Config{
			Hidden: spec.hidden, Layers: spec.layers, Epochs: 1, Seed: seed,
		})
		if err != nil {
			log.Fatalf("training bench model %s: %v", spec.id, err)
		}
		if err := model.Save(dir + "/" + spec.id); err != nil {
			log.Fatal(err)
		}
		cal := model.Calibrate([]iboxml.TrainingSample{
			{Trace: benchSynthTrace(seed+50, 4*sim.Second)},
			{Trace: benchSynthTrace(seed+51, 4*sim.Second)},
		})
		fid := &regress.BenchFidelity{NLL: cal.NLL, PITDeviation: cal.PITDeviation}
		reqBody, err := json.Marshal(serve.SimulateRequest{Model: spec.id, Input: input, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}

		for _, burst := range spec.bursts {
			name := fmt.Sprintf("%s/burst%d", spec.prefix, burst)
			best := map[string]time.Duration{}
			for _, m := range modes {
				s, err := serve.NewServer(serve.Config{
					ModelDir: dir,
					// One worker pins both modes to the same CPU budget: the
					// batched win below is the kernel setup sharing, not
					// parallel replay.
					Workers:       1,
					MaxConcurrent: 2 * burst,
					NoBatch:       m.noBatch,
					BatchWindow:   5 * time.Millisecond,
					BatchMax:      burst,
				})
				if err != nil {
					log.Fatal(err)
				}
				if err := s.Registry().Warm([]string{spec.id}); err != nil {
					log.Fatal(err)
				}
				ts := httptest.NewServer(s.Handler())

				fire := func() time.Duration {
					start := time.Now()
					var wg sync.WaitGroup
					for i := 0; i < burst; i++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
							if err != nil {
								log.Fatalf("%s/%s: %v", name, m.mode, err)
							}
							defer resp.Body.Close()
							if resp.StatusCode != http.StatusOK {
								log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
							}
							var sr serve.SimulateResponse
							if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
								log.Fatalf("%s/%s: decode: %v", name, m.mode, err)
							}
						}()
					}
					wg.Wait()
					return time.Since(start)
				}
				fire() // warm-up: model load, pool spin-up, HTTP keep-alives
				var min time.Duration
				for r := 0; r < reps; r++ {
					if d := fire(); r == 0 || d < min {
						min = d
					}
				}
				ts.Close()
				best[m.mode] = min
				sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
					Name: name, Mode: m.mode, Workers: 1,
					GoMaxProcs: runtime.GOMAXPROCS(0),
					NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
					Fidelity: fid,
				})
				// One worker serializes the burst, so per-request wall time
				// is burst wall over burst size; the input trace replayed
				// in that time is §4.2's implied emulation rate.
				mbps := inputBits / (min.Seconds() / float64(burst)) / 1e6
				sum.Speedups[name+"/implied_mbps_"+m.mode] = mbps
				fmt.Printf("%-24s %-10s %12d ns/burst  (%.3fs, implied %7.1f Mbit/s)\n",
					name, m.mode, min.Nanoseconds(), min.Seconds(), mbps)
			}
			if b := best["batched"]; b > 0 {
				speedup := float64(best["unbatched"]) / float64(b)
				sum.Speedups[name] = speedup
				fmt.Printf("%-24s speedup    %12.2fx\n", name, speedup)
			}
		}
	}
	serveMixedSection(&sum, dir, seed, reps, input)
	return sum
}

// serveMixedSection measures the multi-tenant paper-scale case the
// shape-keyed batcher exists for: a burst of streaming replays spread
// round-robin over several DISTINCT checkpoints that share the §4.2
// paper-scale shape (Hidden 256, four layers, ~2M params each). The
// checkpoints are derived from the suite's paper-scale model by
// deterministic weight perturbation, so every lane carries genuinely
// different weights. Two batching policies compete on the same
// single-worker pool:
//
//   - percheckpoint (Config.BatchPerCheckpoint): requests only co-batch
//     with their own artifact — the pre-shape-key behavior, where a mixed
//     burst fragments into per-checkpoint groups that run serially.
//   - crossckpt: the default shape-keyed grouping — the whole burst
//     coalesces into one lane batch, each lane stepping its own weights.
//
// Before any timing, every streamed mu sequence is asserted bitwise
// equal to its checkpoint's offline unbatched PredictWindows — the
// policies may differ only in latency, never in a single output bit.
// Reported: burst wall time per mode, plus the burst's worst
// time-to-first-chunk (speedup.*/ttfc_ms_*) — the structural win of
// lockstep cross-checkpoint batching is that every stream makes
// incremental progress instead of queueing behind whole replays, so the
// last client's first chunk arrives a small fraction into the burst
// rather than near its end.
func serveMixedSection(sum *regress.BenchSummary, dir string, seed int64, reps int, input *trace.Trace) {
	const (
		clones = 4
		burst  = 8
		chunk  = 8 // windows per streamed chunk: several flushes per 4s trace
	)
	ids := make([]string, clones)
	want := make([][]float64, clones)
	bodies := make([][]byte, clones)
	for c := 0; c < clones; c++ {
		m, err := iboxml.Load(dir + "/paper.json")
		if err != nil {
			log.Fatal(err)
		}
		// Perturb before the first inference compiles the kernel, so the
		// clone's compiled weights are the perturbed ones.
		scale := 1 + 0.01*float64(c+1)
		for _, p := range m.Net.Params() {
			for i := range p.W {
				p.W[i] *= scale
			}
		}
		ids[c] = fmt.Sprintf("mixed-%d.json", c)
		if err := m.Save(dir + "/" + ids[c]); err != nil {
			log.Fatal(err)
		}
		want[c], _ = m.PredictWindows(input, nil)
		bodies[c], err = json.Marshal(serve.ReplayRequest{Model: ids[c], Input: input, Seed: seed + int64(c)})
		if err != nil {
			log.Fatal(err)
		}
	}

	name := fmt.Sprintf("ServeMixed/paper%dx%d", clones, burst)
	modes := []struct {
		mode    string
		perCkpt bool
	}{
		{"percheckpoint", true},
		{"crossckpt", false},
	}
	best := map[string]time.Duration{}
	bestTTFC := map[string]time.Duration{}
	for _, m := range modes {
		s, err := serve.NewServer(serve.Config{
			ModelDir:           dir,
			Workers:            1, // same CPU budget for both policies
			MaxConcurrent:      2 * burst,
			BatchWindow:        5 * time.Millisecond,
			BatchMax:           burst,
			StreamChunk:        chunk,
			BatchPerCheckpoint: m.perCkpt,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Registry().Warm(ids); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		fire := func() (time.Duration, time.Duration) {
			start := time.Now()
			ttfc := make([]time.Duration, burst)
			mus := make([][]float64, burst)
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/v1/replay", "application/json", bytes.NewReader(bodies[i%clones]))
					if err != nil {
						log.Fatalf("%s/%s: %v", name, m.mode, err)
					}
					defer resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
					}
					sc := bufio.NewScanner(resp.Body)
					sc.Buffer(make([]byte, 1<<20), 1<<24)
					sawEnd := false
					for sc.Scan() {
						var frame struct {
							Type  string    `json:"type"`
							Mu    []float64 `json:"mu"`
							Error string    `json:"error"`
						}
						if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
							log.Fatalf("%s/%s: decode stream: %v", name, m.mode, err)
						}
						switch frame.Type {
						case "windows":
							if ttfc[i] == 0 {
								ttfc[i] = time.Since(start)
							}
							mus[i] = append(mus[i], frame.Mu...)
						case "end":
							sawEnd = true
						case "error":
							log.Fatalf("%s/%s: stream error: %s", name, m.mode, frame.Error)
						}
					}
					if err := sc.Err(); err != nil {
						log.Fatalf("%s/%s: read stream: %v", name, m.mode, err)
					}
					if !sawEnd {
						log.Fatalf("%s/%s: stream ended without end frame", name, m.mode)
					}
				}(i)
			}
			wg.Wait()
			wall := time.Since(start)
			// Equivalence gate: every streamed sequence must be bitwise
			// identical to its own checkpoint's unbatched replay (JSON
			// round-trips float64 exactly, so this is a real bit check).
			for i := range mus {
				w := want[i%clones]
				if len(mus[i]) != len(w) {
					log.Fatalf("%s/%s: request %d streamed %d windows, want %d", name, m.mode, i, len(mus[i]), len(w))
				}
				for k := range w {
					if math.Float64bits(mus[i][k]) != math.Float64bits(w[k]) {
						log.Fatalf("%s/%s: request %d window %d: streamed mu %v != offline unbatched %v",
							name, m.mode, i, k, mus[i][k], w[k])
					}
				}
			}
			maxTTFC := time.Duration(0)
			for _, d := range ttfc {
				if d > maxTTFC {
					maxTTFC = d
				}
			}
			return wall, maxTTFC
		}
		fire() // warm-up: model load, pool spin-up, HTTP keep-alives
		var minWall, minTTFC time.Duration
		for r := 0; r < reps; r++ {
			wall, t := fire()
			if r == 0 || wall < minWall {
				minWall = wall
			}
			if r == 0 || t < minTTFC {
				minTTFC = t
			}
		}
		ts.Close()
		best[m.mode], bestTTFC[m.mode] = minWall, minTTFC
		sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
			Name: name, Mode: m.mode, Workers: 1,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NsPerOp:    minWall.Nanoseconds(), Seconds: minWall.Seconds(), Reps: reps,
		})
		sum.Speedups[name+"/ttfc_ms_"+m.mode] = minTTFC.Seconds() * 1e3
		fmt.Printf("%-24s %-14s %12d ns/burst  (%.3fs, worst first-chunk %6.1f ms)\n",
			name, m.mode, minWall.Nanoseconds(), minWall.Seconds(), minTTFC.Seconds()*1e3)
	}
	if b := best["crossckpt"]; b > 0 {
		sum.Speedups[name] = float64(best["percheckpoint"]) / float64(b)
		sum.Speedups[name+"/ttfc"] = float64(bestTTFC["percheckpoint"]) / float64(bestTTFC["crossckpt"])
		fmt.Printf("%-24s wall       %12.2fx   first-chunk %.2fx\n",
			name, sum.Speedups[name], sum.Speedups[name+"/ttfc"])
	}
}

// kernelSuite measures the LSTM inference kernels in isolation, per
// step, so kernel-level regressions gate without the noise of the full
// serving or experiment paths. Two shapes: a typical replay model and
// the §4.2 paper-scale stack. Five modes per shape:
//
//   - step:     the training-path LSTM.Step — the pre-kernel baseline
//   - stepinto: the compiled zero-alloc InferModel.StepInto
//   - batch:    lockstep StepBatchInto over 8 members (ns per member-step)
//   - window:   the pre-projected whole-window Forward (ns per step)
//   - int8:     the opt-in quantized StepInto (documented: not bitwise)
//
// Before timing, every float mode's final hidden vector is asserted
// bitwise-identical to the training path's — the suite self-checks the
// kernel contract at both shapes on every run. Each mode also prints the
// implied emulation rate for 1500-byte packets at one inference per
// packet (§4.2's budget arithmetic); the Speedups entries are the
// improvement multiples over the training-path step.
func kernelSuite(seed int64, reps int) regress.BenchSummary {
	shapes := []struct {
		name               string
		in, hidden, layers int
		steps              int
	}{
		{"h48l2", 5, 48, 2, 3000},
		// Paper-scale: 4×(4·256·(261+256)) + biases ≈ 2.1M params.
		{"h256l4", 5, 256, 4, 120},
	}
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "kernel",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	for _, sh := range shapes {
		lstm := nn.NewLSTM(sh.in, sh.hidden, sh.layers, seed)
		im := lstm.Compile()
		qm := lstm.CompileQuantized()
		rng := sim.NewRand(seed+7, 13)
		xs := make([][]float64, sh.steps)
		for t := range xs {
			xs[t] = make([]float64, sh.in)
			for k := range xs[t] {
				xs[t][k] = rng.NormFloat64()
			}
		}

		// Contract self-check: every float kernel mode ends bitwise where
		// the training path ends.
		ref := lstm.NewState()
		var want []float64
		for _, x := range xs {
			want, ref = lstm.Step(ref, x)
		}
		checkTop := func(mode string, got []float64) {
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					log.Fatalf("Kernel/%s %s: h[%d] = %v, training path %v — kernel broke the bitwise contract",
						sh.name, mode, j, got[j], want[j])
				}
			}
		}
		ist := im.NewState()
		for _, x := range xs {
			im.StepInto(ist, x)
		}
		checkTop("stepinto", ist.Top())
		fwd := im.Forward(xs)
		checkTop("window", fwd[len(fwd)-1])

		const members = 8
		bsts := make([]*nn.InferState, members)
		brows := make([][]float64, members)
		for b := range bsts {
			bsts[b] = im.NewState()
		}
		modes := []struct {
			mode string
			run  func() // one rep: sh.steps kernel steps (per member)
		}{
			{"step", func() {
				st := lstm.NewState()
				for _, x := range xs {
					_, st = lstm.Step(st, x)
				}
			}},
			{"stepinto", func() {
				st := im.NewState()
				for _, x := range xs {
					im.StepInto(st, x)
				}
			}},
			{"batch", func() {
				for _, st := range bsts {
					st.Reset()
				}
				for _, x := range xs {
					for b := range brows {
						brows[b] = x
					}
					im.StepBatchInto(bsts, brows, nil, 0)
				}
			}},
			{"window", func() {
				im.Forward(xs)
			}},
			{"int8", func() {
				st := qm.NewState()
				for _, x := range xs {
					qm.StepInto(st, x)
				}
			}},
		}
		name := "Kernel/" + sh.name
		best := map[string]time.Duration{}
		for _, m := range modes {
			perRep := sh.steps
			if m.mode == "batch" {
				perRep *= members
			}
			m.run() // warm-up: page in weights, settle the branch predictors
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				m.run()
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
			}
			nsPerStep := min.Nanoseconds() / int64(perRep)
			best[m.mode] = time.Duration(nsPerStep)
			sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
				Name: name, Mode: m.mode, Workers: 1,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    nsPerStep, Seconds: min.Seconds(), Reps: reps,
			})
			// One inference per 1500-byte packet → implied emulation rate.
			mbps := 1500 * 8 / (float64(nsPerStep) / 1e9) / 1e6
			fmt.Printf("%-15s %-9s %9d ns/step  (implied %8.1f Mbit/s)\n",
				name, m.mode, nsPerStep, mbps)
		}
		for _, m := range []string{"stepinto", "batch", "window"} {
			if b := best[m]; b > 0 {
				sum.Speedups[name+"/"+m] = float64(best["step"]) / float64(b)
			}
		}
		fmt.Printf("%-15s stepinto speedup %6.2fx  window speedup %6.2fx\n",
			name, sum.Speedups[name+"/stepinto"], sum.Speedups[name+"/window"])
	}
	return sum
}

// obsSuite measures what observing costs. It first asserts the two
// allocation contracts the obs package is built around — the disabled
// path and the labeled hot-path lookup allocate zero bytes per call —
// and then measures concurrent iBoxML replay bursts through the full
// HTTP serving path with observability entirely off (no registry, no
// logger) vs entirely on (metrics, labeled families, JSON access log,
// 1-in-8 trace sampling). The off/on wall-clock ratio lands in
// Speedups, and both modes' timings gate in CI via ibox-compare: if a
// metrics-layer change taxes the request path beyond the noise floor,
// the gate trips.
func obsSuite(seed int64, reps int) regress.BenchSummary {
	// --- allocation self-checks -------------------------------------
	// Disabled registry: nil handles, including labeled ones, must cost
	// nothing per call.
	obs.Disable()
	obs.SetLogger(nil)
	var (
		nilCtr  *obs.Counter
		nilHist *obs.Histogram
		nilCV   *obs.CounterVec
		nilHV   *obs.HistogramVec
	)
	if n := testing.AllocsPerRun(200, func() {
		nilCtr.Add(1)
		nilHist.Observe(12345)
		nilCV.With("simulate", "2xx").Add(1)
		nilHV.With("simulate", "m.json", "2xx", "true").Observe(12345)
	}); n != 0 {
		log.Fatalf("obs: disabled path allocates %.1f bytes/op, want 0", n)
	}
	// Enabled hit path: after a label set's first use, every subsequent
	// With on the same values must hit the copy-on-write map without
	// allocating.
	reg := obs.Enable()
	cv := reg.CounterVec("bench.http_requests", "route", "status")
	hv := reg.HistogramVec("bench.request_ns", "route", "model", "status", "batched")
	cv.With("simulate", "2xx").Add(1)
	hv.With("simulate", "m.json", "2xx", "true").Observe(1)
	if n := testing.AllocsPerRun(200, func() {
		cv.With("simulate", "2xx").Add(1)
		hv.With("simulate", "m.json", "2xx", "true").Observe(12345)
	}); n != 0 {
		log.Fatalf("obs: labeled hot-path lookup allocates %.1f bytes/op, want 0", n)
	}
	obs.Disable()
	fmt.Println("obs allocation contracts hold: disabled path 0 B/op, labeled hit path 0 B/op")

	// --- serving overhead: observability off vs on -------------------
	dir, err := os.MkdirTemp("", "ibox-bench-obs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	input := benchSynthTrace(seed+99, 4*sim.Second)
	var samples []iboxml.TrainingSample
	for i := int64(0); i < 2; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: benchSynthTrace(seed+i, 4*sim.Second)})
	}
	model, err := iboxml.Train(samples, iboxml.Config{Hidden: 96, Layers: 1, Epochs: 1, Seed: seed})
	if err != nil {
		log.Fatalf("training bench model: %v", err)
	}
	if err := model.Save(dir + "/bench.json"); err != nil {
		log.Fatal(err)
	}
	reqBody, err := json.Marshal(serve.SimulateRequest{Model: "bench.json", Input: input, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "obs",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	const burst = 8
	modes := []struct {
		mode       string
		instrument bool
	}{
		{"off", false},
		{"on", true},
	}
	name := fmt.Sprintf("ObsOverhead/burst%d", burst)
	best := map[string]time.Duration{}
	for _, m := range modes {
		var spanLimited *obs.Registry
		if m.instrument {
			spanLimited = obs.Enable()
			spanLimited.SetSpanLimit(1024)
			obs.SetLogger(slog.New(obs.NewLogHandler(io.Discard, slog.LevelInfo)))
		} else {
			obs.Disable()
			obs.SetLogger(nil)
		}
		cfg := serve.Config{ModelDir: dir, Workers: 1, MaxConcurrent: 2 * burst,
			BatchWindow: 5 * time.Millisecond, BatchMax: burst}
		if m.instrument {
			cfg.TraceSample = 1.0 / 8
		}
		s, err := serve.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Registry().Warm([]string{"bench.json"}); err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		fire := func() time.Duration {
			start := time.Now()
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
					if err != nil {
						log.Fatalf("%s/%s: %v", name, m.mode, err)
					}
					defer resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
					}
					io.Copy(io.Discard, resp.Body)
				}()
			}
			wg.Wait()
			return time.Since(start)
		}
		fire() // warm-up: model load, pool spin-up, HTTP keep-alives
		var min time.Duration
		for r := 0; r < reps; r++ {
			if d := fire(); r == 0 || d < min {
				min = d
			}
		}
		ts.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
		cancel()
		obs.Disable()
		obs.SetLogger(nil)
		best[m.mode] = min
		sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
			Name: name, Mode: m.mode, Workers: 1,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
		})
		fmt.Printf("%-24s %-10s %12d ns/burst  (%.3fs)\n", name, m.mode, min.Nanoseconds(), min.Seconds())
	}
	if on := best["on"]; on > 0 {
		ratio := float64(best["off"]) / float64(on)
		sum.Speedups[name] = ratio
		fmt.Printf("%-24s off/on     %12.2fx (1.00 = free; below 1 = overhead)\n", name, ratio)
	}
	return sum
}

// nestedSuite measures nested fan-outs — the shape where the shared
// help-first pool earns its keep — in two modes:
//
//   - percall: every par.Map spins up its own goroutine pool, so a
//     variants × traces nesting oversubscribes the cores (the pre-pool
//     behaviour).
//   - pool: every par.Map runs on one shared par.Pool via par.PoolMap;
//     saturated nested submissions are inlined on the submitting worker,
//     so concurrency never exceeds the worker budget.
//
// Two benchmarks: Fig3Nested is the real Fig 3 pipeline (per-variant
// ensemble tests, each fanning out per-trace), SynthTree is a synthetic
// depth-3 fan-out tree that isolates scheduler overhead from model
// compute. Each benchmark's output is asserted byte-identical across
// modes before its timings are reported.
func nestedSuite(seed int64, reps int) regress.BenchSummary {
	scale := experiments.Quick()
	scale.Seed = seed
	workers := runtime.GOMAXPROCS(0)

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "nested",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	modes := []struct {
		mode   string
		shared bool
	}{
		{"percall", false},
		{"pool", true},
	}
	benchmarks := []struct {
		name string
		run  func(pool *par.Pool) (string, error)
	}{
		{"Fig3Nested", func(pool *par.Pool) (string, error) {
			s := scale
			s.Pool = pool
			res, err := experiments.Fig3(s)
			if err != nil {
				return "", err
			}
			return res.String(), nil
		}},
		{"SynthTree", func(pool *par.Pool) (string, error) {
			return synthTree(pool, seed)
		}},
	}

	for _, b := range benchmarks {
		best := map[string]time.Duration{}
		outputs := map[string]string{}
		for _, m := range modes {
			reg := obs.Enable()
			var pool *par.Pool
			if m.shared {
				pool = par.NewPool(workers)
			}
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				o, err := b.run(pool)
				if err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
				outputs[m.mode] = o
			}
			inlined := reg.Counter("par.pool_inline").Value()
			obs.Disable()
			if pool != nil {
				pool.Close()
			}
			best[m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if m.shared {
				fmt.Printf(", inlined=%d", inlined)
			}
			fmt.Printf(")\n")
		}
		if outputs["pool"] != outputs["percall"] {
			log.Fatalf("%s: pool output differs from percall output", b.name)
		}
		if p := best["pool"]; p > 0 {
			speedup := float64(best["percall"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}
	return sum
}

// synthTree runs a deterministic depth-3 nested fan-out (4 × 4 × 8
// leaves, a fixed slug of floating-point work per leaf) through par.Map
// and returns a digest of the results, so nestedSuite can assert the
// scheduler modes are byte-identical. With pool == nil each level's Map
// spawns its own goroutines (4·4·8 = 128 in flight at the leaves); with
// a shared pool, concurrency is capped at the pool's workers.
func synthTree(pool *par.Pool, seed int64) (string, error) {
	opts := par.Options{Pool: pool}
	top, err := par.Map(4, opts, func(i int) (float64, error) {
		mids, err := par.Map(4, opts, func(j int) (float64, error) {
			leaves, err := par.Map(8, opts, func(k int) (float64, error) {
				x := float64(seed) + float64(i*100+j*10+k)
				s := 0.0
				for n := 0; n < 20_000; n++ {
					s += math.Sin(x + float64(n))
				}
				return s, nil
			})
			if err != nil {
				return 0, err
			}
			t := 0.0
			for _, v := range leaves {
				t += v
			}
			return t, nil
		})
		if err != nil {
			return 0, err
		}
		t := 0.0
		for _, v := range mids {
			t += v
		}
		return t, nil
	})
	if err != nil {
		return "", err
	}
	total := 0.0
	for _, v := range top {
		total += v
	}
	return fmt.Sprintf("%.6f", total), nil
}
