// Command ibox-bench measures the repository's performance-critical
// paths and writes a machine-readable summary in the internal/regress
// schema, so ibox-compare can gate on it in CI.
//
// Two suites:
//
//   - experiments (default): serial-vs-parallel wall-clock of the two
//     hottest experiment paths — the Fig 2 ensemble test (per-trace
//     iBoxNet fit + counterfactual replay) and Table 1 (per-trace iBoxML
//     training + evaluation). Serial and parallel results are
//     byte-identical by construction (see internal/par).
//   - serve: batched-vs-unbatched serving latency of concurrent iBoxML
//     replay bursts through the full HTTP path (see internal/serve). Both
//     modes run on a single-worker pool, so the batched win is the
//     micro-batched LSTM kernel, not extra parallelism — and both return
//     byte-identical responses.
//
// Usage:
//
//	ibox-bench                         # quick scale, BENCH_parallel.json
//	ibox-bench -scale paper -reps 5 -out bench.json
//	ibox-bench -suite serve            # BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"ibox/internal/experiments"
	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/regress"
	"ibox/internal/serve"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-bench: ")
	var (
		suite     = flag.String("suite", "experiments", "benchmark suite: experiments or serve")
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper (experiments suite)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		reps      = flag.Int("reps", 5, "repetitions per (benchmark, mode); the minimum is reported")
		out       = flag.String("out", "", "output path for the JSON summary (default BENCH_parallel.json or BENCH_serve.json per suite)")
	)
	flag.Parse()

	var sum regress.BenchSummary
	switch *suite {
	case "experiments":
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		sum = experimentsSuite(*scaleName, *seed, *reps)
	case "serve":
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		sum = serveSuite(*seed, *reps)
	default:
		log.Fatalf("unknown suite %q", *suite)
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func experimentsSuite(scaleName string, seed int64, reps int) regress.BenchSummary {
	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", scaleName)
	}
	scale.Seed = seed

	benchmarks := []struct {
		name string
		run  func(experiments.Scale) error
	}{
		{"Fig2Ensemble", func(s experiments.Scale) error { _, err := experiments.Fig2(s); return err }},
		{"Table1", func(s experiments.Scale) error { _, err := experiments.Table1(s); return err }},
	}
	modes := []struct {
		mode   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	}

	// The schema lives in internal/regress so ibox-compare can gate on
	// these files.
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	best := map[string]map[string]time.Duration{}
	for _, b := range benchmarks {
		best[b.name] = map[string]time.Duration{}
		for _, m := range modes {
			s := scale
			s.Serial = m.serial
			workers := 1
			if !m.serial {
				workers = runtime.GOMAXPROCS(0)
			}
			// A fresh registry per measurement so the par.item_ns
			// histogram covers exactly this (benchmark, mode)'s reps.
			reg := obs.Enable()
			var min time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := b.run(s); err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
			}
			obs.Disable()
			best[b.name][m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if meas.ItemLatency != nil {
				fmt.Printf(", item p50=%.1fms p99=%.1fms",
					meas.ItemLatency.P50/1e6, meas.ItemLatency.P99/1e6)
			}
			fmt.Printf(")\n")
		}
		if p := best[b.name]["parallel"]; p > 0 {
			speedup := float64(best[b.name]["serial"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}
	return sum
}

// benchSynthTrace generates the deterministic synthetic input–output
// trace the iboxml tests train on.
func benchSynthTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 5)
	tr := &trace.Trace{Protocol: "synth"}
	ema := 0.0
	var now sim.Time
	seq := int64(0)
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase+float64(seed))) // bytes/s
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		ema = 0.98*ema + 0.02*rate
		delayMs := 20 + 60*(ema/312_500) + rng.NormFloat64()*1.0
		if delayMs < 1 {
			delayMs = 1
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now,
			RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
		})
		seq++
	}
	return tr
}

// serveSuite measures concurrent iBoxML replay bursts through the HTTP
// serving path, micro-batching on vs off, on a single-worker pool.
func serveSuite(seed int64, reps int) regress.BenchSummary {
	var samples []iboxml.TrainingSample
	for i := int64(0); i < 2; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: benchSynthTrace(seed+i, 4*sim.Second)})
	}
	model, err := iboxml.Train(samples, iboxml.Config{Hidden: 96, Layers: 1, Epochs: 1, Seed: seed})
	if err != nil {
		log.Fatalf("training bench model: %v", err)
	}
	dir, err := os.MkdirTemp("", "ibox-bench-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const id = "bench.json"
	if err := model.Save(dir + "/" + id); err != nil {
		log.Fatal(err)
	}
	input := benchSynthTrace(seed+99, 4*sim.Second)
	reqBody, err := json.Marshal(serve.SimulateRequest{Model: id, Input: input, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}

	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      "serve",
		Seed:       seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	modes := []struct {
		mode    string
		noBatch bool
	}{
		{"unbatched", true},
		{"batched", false},
	}
	for _, burst := range []int{4, 8} {
		name := fmt.Sprintf("ServeIBoxML/burst%d", burst)
		best := map[string]time.Duration{}
		for _, m := range modes {
			s, err := serve.NewServer(serve.Config{
				ModelDir: dir,
				// One worker pins both modes to the same CPU budget: the
				// batched win below is the kernel, not parallel replay.
				Workers:       1,
				MaxConcurrent: 2 * burst,
				NoBatch:       m.noBatch,
				BatchWindow:   5 * time.Millisecond,
				BatchMax:      burst,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := s.Registry().Warm([]string{id}); err != nil {
				log.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())

			fire := func() time.Duration {
				start := time.Now()
				var wg sync.WaitGroup
				for i := 0; i < burst; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
						if err != nil {
							log.Fatalf("%s/%s: %v", name, m.mode, err)
						}
						defer resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							log.Fatalf("%s/%s: HTTP %d", name, m.mode, resp.StatusCode)
						}
						var sr serve.SimulateResponse
						if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
							log.Fatalf("%s/%s: decode: %v", name, m.mode, err)
						}
					}()
				}
				wg.Wait()
				return time.Since(start)
			}
			fire() // warm-up: model load, pool spin-up, HTTP keep-alives
			var min time.Duration
			for r := 0; r < reps; r++ {
				if d := fire(); r == 0 || d < min {
					min = d
				}
			}
			ts.Close()
			best[m.mode] = min
			sum.Benchmarks = append(sum.Benchmarks, regress.BenchMeasurement{
				Name: name, Mode: m.mode, Workers: 1,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: reps,
			})
			fmt.Printf("%-20s %-10s %12d ns/burst  (%.3fs)\n", name, m.mode, min.Nanoseconds(), min.Seconds())
		}
		if b := best["batched"]; b > 0 {
			speedup := float64(best["unbatched"]) / float64(b)
			sum.Speedups[name] = speedup
			fmt.Printf("%-20s speedup    %12.2fx\n", name, speedup)
		}
	}
	return sum
}
