// Command ibox-bench measures the serial-vs-parallel wall-clock of the
// repository's two hottest experiment paths — the Fig 2 ensemble test
// (per-trace iBoxNet fit + counterfactual replay) and Table 1 (per-trace
// iBoxML training + evaluation) — and writes a machine-readable summary.
//
// The output seeds the repository's performance trajectory: each entry
// records ns/op for serial (Workers=1) and parallel (one worker per CPU)
// execution of the same experiment on the same seed, whose results are
// byte-identical by construction (see internal/par).
//
// Usage:
//
//	ibox-bench                         # quick scale, BENCH_parallel.json
//	ibox-bench -scale paper -reps 5 -out bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"ibox/internal/experiments"
	"ibox/internal/obs"
	"ibox/internal/regress"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-bench: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
		reps      = flag.Int("reps", 3, "repetitions per (benchmark, mode); the minimum is reported")
		out       = flag.String("out", "BENCH_parallel.json", "output path for the JSON summary")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "paper":
		scale = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed

	benchmarks := []struct {
		name string
		run  func(experiments.Scale) error
	}{
		{"Fig2Ensemble", func(s experiments.Scale) error { _, err := experiments.Fig2(s); return err }},
		{"Table1", func(s experiments.Scale) error { _, err := experiments.Table1(s); return err }},
	}
	modes := []struct {
		mode   string
		serial bool
	}{
		{"serial", true},
		{"parallel", false},
	}

	// The schema lives in internal/regress so ibox-compare can gate on
	// these files.
	sum := regress.BenchSummary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scaleName,
		Seed:       *seed,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Speedups:   map[string]float64{},
	}
	best := map[string]map[string]time.Duration{}
	for _, b := range benchmarks {
		best[b.name] = map[string]time.Duration{}
		for _, m := range modes {
			s := scale
			s.Serial = m.serial
			workers := 1
			if !m.serial {
				workers = runtime.GOMAXPROCS(0)
			}
			// A fresh registry per measurement so the par.item_ns
			// histogram covers exactly this (benchmark, mode)'s reps.
			reg := obs.Enable()
			var min time.Duration
			for r := 0; r < *reps; r++ {
				start := time.Now()
				if err := b.run(s); err != nil {
					log.Fatalf("%s/%s: %v", b.name, m.mode, err)
				}
				if d := time.Since(start); r == 0 || d < min {
					min = d
				}
			}
			obs.Disable()
			best[b.name][m.mode] = min
			meas := regress.BenchMeasurement{
				Name: b.name, Mode: m.mode, Workers: workers,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NsPerOp:    min.Nanoseconds(), Seconds: min.Seconds(), Reps: *reps,
			}
			if h := reg.Histogram(obs.MetricParItemNs); h.Count() > 0 {
				summ := h.Summary()
				meas.ItemLatency = &summ
			}
			sum.Benchmarks = append(sum.Benchmarks, meas)
			fmt.Printf("%-14s %-8s %12d ns/op  (%.2fs, workers=%d",
				b.name, m.mode, min.Nanoseconds(), min.Seconds(), workers)
			if meas.ItemLatency != nil {
				fmt.Printf(", item p50=%.1fms p99=%.1fms",
					meas.ItemLatency.P50/1e6, meas.ItemLatency.P99/1e6)
			}
			fmt.Printf(")\n")
		}
		if p := best[b.name]["parallel"]; p > 0 {
			speedup := float64(best[b.name]["serial"]) / float64(p)
			sum.Speedups[b.name] = speedup
			fmt.Printf("%-14s speedup  %12.2fx\n", b.name, speedup)
		}
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
