// Command ibox-emu runs a learnt iBoxNet model as a live UDP network
// emulator — Fig 1's "Internet in a Box" made literal: UDP datagrams sent
// to the listen address experience the learnt path's bandwidth, queueing,
// propagation delay, cross traffic and loss, then arrive at the forward
// address. Point a real application at it.
//
// Usage:
//
//	ibox-emu -profile profile.json -listen 127.0.0.1:5000 -forward 127.0.0.1:6000
//	ibox-emu -trace cubic-000.json -listen :5000 -forward 10.0.0.2:6000 -variant statloss
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"ibox/internal/emu"
	"ibox/internal/iboxnet"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-emu: ")
	var (
		profilePath = flag.String("profile", "", "iBoxNet profile (JSON, from iboxfit)")
		tracePath   = flag.String("trace", "", "alternatively: fit the model from this trace")
		listen      = flag.String("listen", "127.0.0.1:5000", "UDP address to accept traffic on")
		forward     = flag.String("forward", "", "UDP address to deliver traffic to")
		variantName = flag.String("variant", "full", "model variant: full, noct, statloss")
		statsEvery  = flag.Duration("stats", 5*time.Second, "stats print interval (0 = off)")
		seed        = flag.Int64("seed", 1, "randomness seed")
	)
	flag.Parse()
	if *forward == "" {
		log.Fatal("-forward is required")
	}

	var params iboxnet.Params
	switch {
	case *profilePath != "":
		var err error
		if params, err = iboxnet.LoadParams(*profilePath); err != nil {
			log.Fatal(err)
		}
	case *tracePath != "":
		tr, err := trace.LoadJSON(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if params, err = iboxnet.Estimate(tr, iboxnet.EstimatorConfig{}); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -profile or -trace is required")
	}

	var variant iboxnet.Variant
	switch *variantName {
	case "full":
		variant = iboxnet.Full
	case "noct":
		variant = iboxnet.NoCT
	case "statloss":
		variant = iboxnet.StatLoss
	default:
		log.Fatalf("unknown variant %q", *variantName)
	}

	e, err := emu.New(emu.Config{
		Listen: *listen, Forward: *forward,
		Params: params, Variant: variant, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulating %v (%s)\n", params, variant)
	fmt.Printf("listening on %s, delivering to %s — ctrl-c to stop\n", e.Addr(), *forward)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					s := e.Stats()
					fmt.Printf("rx=%d tx=%d dropped=%d\n", s.Received, s.Delivered, s.Dropped)
				}
			}
		}()
	}
	if err := e.Run(ctx); err != nil {
		log.Fatal(err)
	}
	s := e.Stats()
	fmt.Printf("final: rx=%d tx=%d dropped=%d\n", s.Received, s.Delivered, s.Dropped)
}
