package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"ibox/internal/obs"
	"ibox/internal/serve"
)

// The -watch mode: a live terminal dashboard over a running ibox-serve.
// Each refresh polls the worker's three observability surfaces —
// /statusz?format=json (the router-tier load signal), /healthz?format=json
// (judged health with per-objective SLO burn rates and per-model drift
// scorecards) and /metrics (cumulative counters via the Prometheus text
// exposition) — and redraws one screen. Transport errors render as a
// banner and the loop keeps polling, so a worker restart heals in place.
//
// -count bounds the number of refreshes (0 = until interrupted); CI
// smoke-checks the whole pipeline with -count 1 against a live server.

// watchClient polls one worker.
type watchClient struct {
	base string
	hc   *http.Client
}

func newWatchClient(addr string) *watchClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &watchClient{
		base: strings.TrimRight(addr, "/"),
		hc:   &http.Client{Timeout: 5 * time.Second},
	}
}

func (w *watchClient) getJSON(path string, v any) error {
	resp, err := w.hc.Get(w.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /healthz deliberately answers 503 when failing — the body is still
	// the payload we came for, so only transport-level failures bail.
	return json.NewDecoder(resp.Body).Decode(v)
}

func (w *watchClient) getMetrics() ([]obs.ExpoSample, error) {
	resp, err := w.hc.Get(w.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.ReadExposition(resp.Body)
}

// watchFrame is one polled snapshot of the worker.
type watchFrame struct {
	load    serve.LoadStats
	health  serve.HealthStatus
	samples []obs.ExpoSample
	err     error
}

func (w *watchClient) poll() watchFrame {
	var f watchFrame
	if f.err = w.getJSON("/statusz?format=json", &f.load); f.err != nil {
		return f
	}
	if f.err = w.getJSON("/healthz?format=json", &f.health); f.err != nil {
		return f
	}
	f.samples, f.err = w.getMetrics()
	return f
}

// counterPrefixes selects which cumulative samples the dashboard shows.
var counterPrefixes = []string{
	"serve_requests_total",
	"serve_errors_total",
	"serve_shed_total",
	"serve_drift_scored_total",
	"serve_drift_quarantined_total",
	"obs_slo_alerts_total",
}

// render draws one dashboard frame.
func render(out io.Writer, addr string, f watchFrame, refreshed time.Time) {
	var b strings.Builder
	fmt.Fprintf(&b, "ibox-serve %s  —  %s\n", addr, refreshed.Format("15:04:05"))
	if f.err != nil {
		fmt.Fprintf(&b, "\n  poll failed: %v\n", f.err)
		io.WriteString(out, b.String())
		return
	}

	ls, hs := f.load, f.health
	fmt.Fprintf(&b, "health: %-8s uptime: %-10s go: %s", hs.Status, fmtDur(ls.UptimeS), hs.GoVersion)
	if hs.Revision != "" {
		fmt.Fprintf(&b, "  rev: %.12s", hs.Revision)
	}
	if ls.Draining {
		fmt.Fprintf(&b, "  DRAINING")
	}
	fmt.Fprintf(&b, "\nload:   inflight=%d queued=%d models=%d drifted=%d\n\n",
		ls.Inflight, ls.QueueDepth, ls.ModelsLoaded, ls.ModelsDrifted)

	lt := newTextTable("window", "req/s", "p50", "p99", "shed/s", "err/s")
	lt.add("1s", fmt.Sprintf("%.1f", ls.Rate1s), "", "", "", "")
	lt.add("10s", fmt.Sprintf("%.1f", ls.Rate10s),
		fmt.Sprintf("%.2fms", ls.P50Ms10s), fmt.Sprintf("%.2fms", ls.P99Ms10s),
		fmt.Sprintf("%.2f", ls.ShedRate10s), fmt.Sprintf("%.2f", ls.ErrRate10s))
	fmt.Fprintf(&b, "%s\n", lt)

	if len(hs.SLO) > 0 {
		t := newTextTable("objective", "state", "burn10s", "burn60s", "value")
		for _, o := range hs.SLO {
			t.add(o.Name, o.State.String(),
				fmt.Sprintf("%.2f", o.BurnShort), fmt.Sprintf("%.2f", o.BurnLong),
				fmt.Sprintf("%.4f", o.Value))
		}
		fmt.Fprintf(&b, "slo objectives:\n%s\n", t)
	}

	if len(hs.Drift) > 0 {
		t := newTextTable("model", "verdict", "windows", "nll", "pit dev", "baseline nll")
		for _, d := range hs.Drift {
			base := "-"
			if d.Baseline != nil {
				base = fmt.Sprintf("%.4f", d.Baseline.NLL)
			}
			t.add(d.Model, d.Verdict, fmt.Sprintf("%d", d.Windows),
				fmt.Sprintf("%.4f", d.NLL), fmt.Sprintf("%.4f", d.PITDeviation), base)
		}
		fmt.Fprintf(&b, "model drift:\n%s\n", t)
	}

	if rows := pickCounters(f.samples); len(rows) > 0 {
		t := newTextTable("counter", "value")
		for _, r := range rows {
			t.add(r.name, fmt.Sprintf("%.0f", r.value))
		}
		fmt.Fprintf(&b, "cumulative:\n%s", t)
	}
	io.WriteString(out, b.String())
}

type counterRow struct {
	name  string
	value float64
}

// pickCounters filters the scrape down to the dashboard's counter set,
// keeping label bodies so per-model and per-objective series stay apart.
func pickCounters(samples []obs.ExpoSample) []counterRow {
	var rows []counterRow
	for _, s := range samples {
		for _, p := range counterPrefixes {
			if s.Name == p {
				name := s.Name
				if s.Labels != "" {
					name += "{" + s.Labels + "}"
				}
				rows = append(rows, counterRow{name: name, value: s.Value})
				break
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

func fmtDur(secs float64) string {
	return time.Duration(secs * float64(time.Second)).Round(time.Second).String()
}

// clearScreen is the ANSI erase-display + cursor-home sequence issued
// before each redraw.
const clearScreen = "\x1b[2J\x1b[H"

// runWatch polls addr every interval and redraws until count frames have
// rendered (count 0 = forever). With count 1 the screen is not cleared,
// so a CI smoke step captures one readable frame.
func runWatch(out io.Writer, addr string, interval time.Duration, count int) {
	w := newWatchClient(addr)
	for n := 0; ; {
		f := w.poll()
		if count != 1 {
			io.WriteString(out, clearScreen)
		}
		render(out, addr, f, time.Now())
		n++
		if count > 0 && n >= count {
			return
		}
		time.Sleep(interval)
	}
}
