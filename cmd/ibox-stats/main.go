// Command ibox-stats summarizes a trace file: throughput, delay
// percentiles, jitter, loss structure, reordering, burstiness and delay
// autocorrelation — the quick look a practitioner takes before feeding a
// trace to iboxfit/iboxml.
//
// Usage:
//
//	ibox-stats -trace corpus/cubic-000.json
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-stats: ")
	tracePath := flag.String("trace", "", "trace file (JSON)")
	flag.Parse()
	if *tracePath == "" {
		log.Fatal("-trace is required")
	}
	tr, err := trace.LoadJSON(*tracePath)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace:      %s (protocol=%s path=%s)\n", *tracePath, tr.Protocol, tr.PathID)
	fmt.Printf("packets:    %d sent over %v (%.0f pkt/s)\n",
		len(tr.Packets), tr.Duration(), float64(len(tr.Packets))/tr.Duration().Seconds())
	fmt.Printf("throughput: %.3f Mbps delivered\n", tr.Throughput()/1e6)
	fmt.Printf("loss:       %.2f%%", tr.LossRate()*100)
	if runs := tr.LossRuns(); len(runs) > 0 {
		var lens []int
		for l := range runs {
			lens = append(lens, l)
		}
		sort.Ints(lens)
		fmt.Printf("  (burst lengths:")
		for _, l := range lens {
			fmt.Printf(" %d×%d", runs[l], l)
		}
		fmt.Printf(")")
	}
	fmt.Println()
	fmt.Printf("delay ms:   min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		tr.DelayPercentile(0), tr.DelayPercentile(50), tr.DelayPercentile(95),
		tr.DelayPercentile(99), tr.DelayPercentile(100))
	fmt.Printf("jitter:     %.2f ms (RFC 3550 smoothed)\n", tr.Jitter())
	fmt.Printf("reordering: %.4f overall", tr.ReorderingRate())
	if rates := tr.ReorderingRateWindows(sim.Second); len(rates) > 0 {
		mx := 0.0
		for _, r := range rates {
			if r > mx {
				mx = r
			}
		}
		fmt.Printf(" (worst 1s window: %.4f)", mx)
	}
	fmt.Println()
	fmt.Printf("burstiness: CV(interarrival)=%.2f\n", tr.Burstiness())
	fmt.Printf("delay autocorrelation (100ms windows): lag1=%.2f lag5=%.2f lag20=%.2f\n",
		tr.DelayAutocorrelation(100*sim.Millisecond, 1),
		tr.DelayAutocorrelation(100*sim.Millisecond, 5),
		tr.DelayAutocorrelation(100*sim.Millisecond, 20))
}
