// Command ibox-stats summarizes a trace file: throughput, delay
// percentiles, jitter, loss structure, reordering, burstiness and delay
// autocorrelation — the quick look a practitioner takes before feeding a
// trace to iboxfit/iboxml. It also pretty-prints the structured run
// report that ibox-experiments -report writes (see internal/obs).
//
// Usage:
//
//	ibox-stats -trace corpus/cubic-000.json
//	ibox-stats -report RUN_REPORT.json
//	curl -s localhost:8080/metrics | ibox-stats -promcheck -
//	ibox-stats -watch localhost:8080
//
// -watch turns the tool into a live dashboard over a running ibox-serve:
// it polls /statusz, /healthz and /metrics every -interval and redraws
// the load, SLO burn-rate and model-drift tables in place. -count bounds
// the refreshes (CI smoke uses -count 1).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-stats: ")
	tracePath := flag.String("trace", "", "trace file (JSON)")
	reportPath := flag.String("report", "", "run report (RUN_REPORT.json from ibox-experiments -report)")
	promPath := flag.String("promcheck", "", "validate a Prometheus text-exposition scrape (a /metrics capture; \"-\" reads stdin)")
	watchAddr := flag.String("watch", "", "live dashboard over a running ibox-serve at this address (host:port or URL)")
	interval := flag.Duration("interval", time.Second, "refresh interval for -watch")
	count := flag.Int("count", 0, "number of -watch refreshes before exiting (0 = until interrupted)")
	flag.Parse()
	set := 0
	for _, f := range []string{*tracePath, *reportPath, *promPath, *watchAddr} {
		if f != "" {
			set++
		}
	}
	if set != 1 {
		log.Fatal("exactly one of -trace, -report, -promcheck or -watch is required")
	}
	if *watchAddr != "" {
		runWatch(os.Stdout, *watchAddr, *interval, *count)
		return
	}
	if *promPath != "" {
		var in io.Reader = os.Stdin
		if *promPath != "-" {
			f, err := os.Open(*promPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			in = f
		}
		families, samples, err := obs.ValidateExposition(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("valid Prometheus exposition: %d families, %d samples\n", families, samples)
		return
	}
	if *reportPath != "" {
		rep, err := obs.LoadReport(*reportPath)
		if err != nil {
			log.Fatal(err)
		}
		printReport(*reportPath, rep)
		return
	}
	tr, err := trace.LoadJSON(*tracePath)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace:      %s (protocol=%s path=%s)\n", *tracePath, tr.Protocol, tr.PathID)
	fmt.Printf("packets:    %d sent over %v (%.0f pkt/s)\n",
		len(tr.Packets), tr.Duration(), float64(len(tr.Packets))/tr.Duration().Seconds())
	fmt.Printf("throughput: %.3f Mbps delivered\n", tr.Throughput()/1e6)
	fmt.Printf("loss:       %.2f%%", tr.LossRate()*100)
	if runs := tr.LossRuns(); len(runs) > 0 {
		var lens []int
		for l := range runs {
			lens = append(lens, l)
		}
		sort.Ints(lens)
		fmt.Printf("  (burst lengths:")
		for _, l := range lens {
			fmt.Printf(" %d×%d", runs[l], l)
		}
		fmt.Printf(")")
	}
	fmt.Println()
	fmt.Printf("delay ms:   min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		tr.DelayPercentile(0), tr.DelayPercentile(50), tr.DelayPercentile(95),
		tr.DelayPercentile(99), tr.DelayPercentile(100))
	fmt.Printf("jitter:     %.2f ms (RFC 3550 smoothed)\n", tr.Jitter())
	fmt.Printf("reordering: %.4f overall", tr.ReorderingRate())
	if rates := tr.ReorderingRateWindows(sim.Second); len(rates) > 0 {
		mx := 0.0
		for _, r := range rates {
			if r > mx {
				mx = r
			}
		}
		fmt.Printf(" (worst 1s window: %.4f)", mx)
	}
	fmt.Println()
	fmt.Printf("burstiness: CV(interarrival)=%.2f\n", tr.Burstiness())
	fmt.Printf("delay autocorrelation (100ms windows): lag1=%.2f lag5=%.2f lag20=%.2f\n",
		tr.DelayAutocorrelation(100*sim.Millisecond, 1),
		tr.DelayAutocorrelation(100*sim.Millisecond, 5),
		tr.DelayAutocorrelation(100*sim.Millisecond, 20))
}

// printReport renders a RUN_REPORT.json as aligned text tables.
func printReport(path string, rep *obs.Report) {
	fmt.Printf("report:      %s (generated %s)\n", path, rep.GeneratedAt)
	fmt.Printf("wall:        %.2fs on GOMAXPROCS=%d\n", rep.WallSeconds, rep.GoMaxProcs)
	fmt.Printf("utilization: %.1f%% of fan-out worker capacity busy\n", rep.WorkerUtilization*100)

	if len(rep.Stages) > 0 {
		t := newTextTable("stage", "start", "wall", "items", "args")
		for _, s := range rep.Stages {
			items := ""
			if s.Items > 0 {
				items = fmt.Sprintf("%d", s.Items)
			}
			var args []string
			for _, k := range sortedKeys(s.Args) {
				args = append(args, k+"="+s.Args[k])
			}
			t.add(strings.Repeat("  ", s.Depth)+s.Name,
				fmt.Sprintf("%.0fms", s.StartMs),
				fmt.Sprintf("%.3fs", s.Seconds),
				items, strings.Join(args, " "))
		}
		fmt.Printf("\nstages:\n%s", t)
	}

	if len(rep.Fidelity) > 0 {
		t := newTextTable("model", "epochs", "loss", "grad 1st/last/max", "windows", "NLL", "pit dev", "cov p50", "cov p90")
		for _, f := range rep.Fidelity {
			nonFinite := ""
			if f.NonFiniteSeqs > 0 {
				nonFinite = fmt.Sprintf(" (%d non-finite seqs!)", f.NonFiniteSeqs)
			}
			t.add(f.Label,
				fmt.Sprintf("%d", f.Epochs),
				fmt.Sprintf("%.4f", f.FinalLoss),
				fmt.Sprintf("%.2f/%.2f/%.2f", f.GradNormFirst, f.GradNormLast, f.GradNormMax)+nonFinite,
				fmt.Sprintf("%d", f.HeldOutWindows),
				fmt.Sprintf("%.4f", f.HeldOutNLL),
				fmt.Sprintf("%.3f", f.PITDeviation),
				cov(f.Coverage, "p50"), cov(f.Coverage, "p90"))
		}
		fmt.Printf("\nmodel fidelity (held-out calibration of the Gaussian head):\n%s", t)
	}

	if len(rep.Histograms) > 0 {
		t := newTextTable("histogram", "count", "mean", "p50", "p90", "p99", "max")
		for _, name := range sortedKeys(rep.Histograms) {
			h := rep.Histograms[name]
			t.add(name, fmt.Sprintf("%d", h.Count),
				ms(h.Mean), ms(h.P50), ms(h.P90), ms(h.P99), ms(h.Max))
		}
		fmt.Printf("\nhistograms (ns observations, shown in ms):\n%s", t)
	}

	if len(rep.Counters) > 0 {
		t := newTextTable("counter", "value")
		for _, name := range sortedKeys(rep.Counters) {
			t.add(name, fmt.Sprintf("%d", rep.Counters[name]))
		}
		fmt.Printf("\ncounters:\n%s", t)
	}
	if len(rep.Gauges) > 0 {
		t := newTextTable("gauge", "value")
		for _, name := range sortedKeys(rep.Gauges) {
			t.add(name, fmt.Sprintf("%g", rep.Gauges[name]))
		}
		fmt.Printf("\ngauges:\n%s", t)
	}
}

// ms renders a nanosecond quantity as milliseconds.
func ms(ns float64) string {
	return fmt.Sprintf("%.3fms", ns/1e6)
}

// cov renders one coverage entry, "-" when the quantile wasn't recorded.
func cov(m map[string]float64, q string) string {
	v, ok := m[q]
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// textTable accumulates rows and renders them column-aligned.
type textTable struct {
	header []string
	rows   [][]string
}

func newTextTable(header ...string) *textTable {
	return &textTable{header: header}
}

func (t *textTable) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *textTable) String() string {
	// Widths cover the widest row, not just the header, so rows with more
	// cells than the header (or longer names than the column title) still
	// align instead of panicking or ragging.
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, c := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			fmt.Fprintf(&line, "%-*s", width[i], c)
		}
		// Trailing empty cells (a stage with no items/args) must not leave
		// padding spaces at end of line.
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
