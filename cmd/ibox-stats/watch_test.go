package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ibox/internal/obs"
	"ibox/internal/serve"
)

// TestWatchOneFrame drives the -watch loop for a single frame against a
// live server: the dashboard must assemble /statusz, /healthz and
// /metrics into one readable screen without clearing it (-count 1 is the
// CI smoke contract).
func TestWatchOneFrame(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, err := serve.NewServer(serve.Config{ModelDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The SLO table fills in after the server's first 1 s collector tick;
	// poll until it shows up.
	var frame string
	deadline := time.Now().Add(10 * time.Second)
	for {
		var out bytes.Buffer
		runWatch(&out, ts.URL, time.Millisecond, 1)
		frame = out.String()
		if strings.Contains(frame, "slo objectives:") || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if strings.Contains(frame, clearScreen) {
		t.Fatalf("-count 1 frame must not clear the screen:\n%q", frame)
	}
	for _, want := range []string{"health: ok", "uptime:", "inflight=0", "slo objectives:", "latency_p99", "drift"} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestWatchPollError: an unreachable worker renders a banner instead of
// exiting, so the dashboard heals across restarts.
func TestWatchPollError(t *testing.T) {
	var out bytes.Buffer
	runWatch(&out, "127.0.0.1:1", time.Millisecond, 1)
	if !strings.Contains(out.String(), "poll failed") {
		t.Fatalf("no error banner:\n%s", out.String())
	}
}

func TestPickCounters(t *testing.T) {
	samples := []obs.ExpoSample{
		{Name: "serve_requests_total", Value: 10},
		{Name: "serve_drift_quarantined_total", Labels: `model="m.json"`, Value: 2},
		{Name: "serve_win_p99_ns_10s", Value: 5}, // gauge: not shown
		{Name: "unrelated_total", Value: 3},      // not in the set
	}
	rows := pickCounters(samples)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2", rows)
	}
	if rows[0].name != `serve_drift_quarantined_total{model="m.json"}` || rows[0].value != 2 {
		t.Fatalf("row 0: %+v", rows[0])
	}
}
