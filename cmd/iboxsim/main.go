// Command iboxsim runs a congestion-control protocol closed-loop on a
// learnt iBoxNet model — the counterfactual machinery of §2: "what would
// protocol B have seen on this path at this time?". The model comes from
// an iboxfit profile (or is fitted on the fly from a trace).
//
// Usage:
//
//	iboxsim -profile profile.json -protocol vegas -dur 30s -out vegas.json
//	iboxsim -trace corpus/cubic-000.json -protocol vegas -dur 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ibox/internal/cc"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iboxsim: ")
	var (
		profilePath = flag.String("profile", "", "iBoxNet profile (JSON, from iboxfit)")
		tracePath   = flag.String("trace", "", "alternatively: fit the model from this trace")
		protocol    = flag.String("protocol", "vegas", "protocol to simulate: "+strings.Join(cc.Protocols(), ", "))
		variantName = flag.String("variant", "full", "model variant: full, noct, statloss")
		dur         = flag.Duration("dur", 30*time.Second, "flow duration")
		seed        = flag.Int64("seed", 1, "run seed")
		out         = flag.String("out", "", "write the simulated trace here (JSON)")
	)
	flag.Parse()

	var variant iboxnet.Variant
	switch *variantName {
	case "full":
		variant = iboxnet.Full
	case "noct":
		variant = iboxnet.NoCT
	case "statloss":
		variant = iboxnet.StatLoss
	default:
		log.Fatalf("unknown variant %q", *variantName)
	}

	var model *core.Model
	switch {
	case *profilePath != "":
		p, err := iboxnet.LoadParams(*profilePath)
		if err != nil {
			log.Fatal(err)
		}
		model = &core.Model{Params: p, Variant: variant, TrainTrace: *profilePath}
	case *tracePath != "":
		tr, err := trace.LoadJSON(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = core.Fit(tr, variant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("fitted:", model.Params)
	default:
		log.Fatal("one of -profile or -trace is required")
	}

	simTr, err := model.Run(*protocol, sim.Time(dur.Nanoseconds()), *seed)
	if err != nil {
		log.Fatal(err)
	}
	m := core.MetricsOf(simTr)
	fmt.Printf("%s on %s: tput=%.2f Mbps p95=%.1f ms loss=%.2f%% pkts=%d\n",
		*protocol, variant, m.ThroughputMbps, m.P95DelayMs, m.LossPct, len(simTr.Packets))
	if *out != "" {
		if err := simTr.SaveJSON(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *out)
	}
}
