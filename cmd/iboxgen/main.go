// Command iboxgen generates a synthetic Pantheon-style trace corpus: it
// samples network-path instances from a profile, runs a congestion-control
// protocol over the ground-truth simulator on each, and writes the
// input–output traces as JSON files.
//
// Usage:
//
//	iboxgen -profile india-cellular -n 20 -protocol cubic -dur 30s -out corpus/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ibox/internal/cc"
	"ibox/internal/pantheon"
	"ibox/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iboxgen: ")
	var (
		profileName = flag.String("profile", "india-cellular", "path profile: india-cellular, ethernet, cellular-reorder, satellite, wired-loss")
		n           = flag.Int("n", 10, "number of path instances")
		protocol    = flag.String("protocol", "cubic", "sender protocol: "+strings.Join(cc.Protocols(), ", "))
		dur         = flag.Duration("dur", 30*time.Second, "per-flow duration")
		seed        = flag.Int64("seed", 1, "corpus seed")
		out         = flag.String("out", "corpus", "output directory")
	)
	flag.Parse()

	var profile pantheon.Profile
	switch *profileName {
	case "india-cellular":
		profile = pantheon.IndiaCellular()
	case "ethernet":
		profile = pantheon.Ethernet()
	case "cellular-reorder":
		profile = pantheon.CellularReorder()
	case "satellite":
		profile = pantheon.Satellite()
	case "wired-loss":
		profile = pantheon.WiredLoss()
	default:
		log.Fatalf("unknown profile %q", *profileName)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	corpus, err := pantheon.Generate(profile, *n, *protocol, sim.Time(dur.Nanoseconds()), *seed)
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range corpus.Traces {
		path := filepath.Join(*out, fmt.Sprintf("%s-%03d.json", *protocol, i))
		if err := tr.SaveJSON(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  pkts=%d tput=%.2f Mbps p95=%.1f ms loss=%.2f%%\n",
			path, len(tr.Packets), tr.Throughput()/1e6, tr.DelayPercentile(95), tr.LossRate()*100)
	}
	fmt.Printf("wrote %d traces to %s\n", len(corpus.Traces), *out)
}
