// Command ibox-serve runs the model-serving daemon: trained iBox
// artifacts (iBoxNet parameter profiles, iBoxML checkpoints) behind a
// long-running HTTP/JSON API. See internal/serve and DESIGN.md's
// "Serving architecture" section.
//
// Usage:
//
//	ibox-serve -models ./models                        # serve on :8080
//	ibox-serve -models ./models -warm path-a.json      # preload a model
//	ibox-serve -models ./models -debug -addr :8080     # + expvar/pprof
//
// Query it:
//
//	curl localhost:8080/v1/models
//	curl -d '{"model":"path-a.json","protocol":"cubic","duration_s":10,"seed":1}' \
//	     localhost:8080/v1/simulate
//
// The daemon drains gracefully on SIGINT/SIGTERM: readiness flips to
// 503, in-flight requests finish (up to -drain-timeout), then it exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ibox/internal/obs"
	"ibox/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-serve: ")
	var (
		addr         = flag.String("addr", ":8080", "address to listen on")
		modelDir     = flag.String("models", "", "directory of trained model artifacts (required)")
		maxModels    = flag.Int("max-models", 16, "how many models to keep warm (LRU beyond)")
		warm         = flag.String("warm", "", "comma-separated model ids to preload at startup")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch dispatch window")
		batchMax     = flag.Int("batch-max", 16, "flush a micro-batch early at this many requests")
		noBatch      = flag.Bool("no-batch", false, "disable request micro-batching (responses are byte-identical either way)")
		workers      = flag.Int("workers", 0, "simulation pool width; 0 = one worker per CPU")
		maxConc      = flag.Int("max-concurrency", 0, "max simulate requests executing at once; 0 = 2x workers")
		maxQueue     = flag.Int("queue", 64, "max simulate requests waiting for a slot before shedding with 429")
		maxBody      = flag.Int64("max-body", 8<<20, "max request body bytes")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline (overridable per request via timeout_ms)")
		debug        = flag.Bool("debug", false, "also serve /debug/vars and /debug/pprof")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()
	if *modelDir == "" {
		log.Fatal("-models is required")
	}

	// Serving is long-running and observable by design: metrics are always
	// on, exported at /debug/vars when -debug is set.
	obs.Enable()

	s, err := serve.NewServer(serve.Config{
		ModelDir:       *modelDir,
		MaxModels:      *maxModels,
		Workers:        *workers,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		NoBatch:        *noBatch,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		Debug:          *debug,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *warm != "" {
		var ids []string
		for _, id := range strings.Split(*warm, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if err := s.Registry().Warm(ids); err != nil {
			log.Fatal(err)
		}
		log.Printf("warmed %d model(s)", len(ids))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(*addr) }()
	log.Printf("serving models from %s on %s", *modelDir, *addr)

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (up to %s)...", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
