// Command ibox-serve runs the model-serving daemon: trained iBox
// artifacts (iBoxNet parameter profiles, iBoxML checkpoints) behind a
// long-running HTTP/JSON API. See internal/serve and DESIGN.md's
// "Serving architecture" and "Serving observability" sections.
//
// Usage:
//
//	ibox-serve -models ./models                        # serve on :8080
//	ibox-serve -models ./models -warm path-a.json      # preload a model
//	ibox-serve -models ./models -debug -addr :8080     # + expvar/pprof
//	ibox-serve -models ./models -trace-sample 0.01 -trace-out trace.json
//
// Query it:
//
//	curl localhost:8080/v1/models
//	curl -d '{"model":"path-a.json","protocol":"cubic","duration_s":10,"seed":1}' \
//	     localhost:8080/v1/simulate
//	curl -N -H 'Accept: text/event-stream' \
//	     -d '{"model":"ml.json","seed":1,"input":...}' \
//	     localhost:8080/v1/replay    # window predictions stream as SSE
//	curl localhost:8080/metrics        # Prometheus exposition
//	curl localhost:8080/statusz        # rolling-window load view
//	curl localhost:8080/healthz?format=json  # judged health + SLO + drift
//
// Live emulation sessions (DESIGN.md "Session control plane"): create a
// stateful closed-loop emulation with POST /v1/sessions, stream its
// telemetry with `curl -N .../events` (SSE), and mutate the live path
// (POST .../path) like tc. -max-sessions / -max-sessions-per-tenant cap
// concurrency, -session-ttl reaps idle sessions, and -session-state
// checkpoints live sessions to disk during graceful drain.
//
// Model-health observability (DESIGN.md "Model-health observability"):
// replay requests with observed delays are sampled for online drift
// scoring against each checkpoint's embedded calibration baseline
// (-drift-every; -quarantine 503s failing models), and an SLO burn-rate
// engine judges p99 latency, error ratio and drift into the /healthz
// state (-slo-latency, -slo-latency-target, -slo-error-target). Watch it
// live with ibox-stats -watch localhost:8080.
//
// All output is structured JSON logs on stderr (one "access" line per
// /v1 request); -log-level tunes verbosity. The daemon drains
// gracefully on SIGINT/SIGTERM: readiness flips to 503, in-flight
// requests finish (up to -drain-timeout), then it exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ibox/internal/obs"
	"ibox/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "address to listen on")
		modelDir     = flag.String("models", "", "directory of trained model artifacts (required)")
		maxModels    = flag.Int("max-models", 16, "how many models to keep warm (LRU beyond)")
		warm         = flag.String("warm", "", "comma-separated model ids to preload at startup")
		batchWindow  = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch dispatch window")
		batchMax     = flag.Int("batch-max", 16, "flush a micro-batch early at this many requests")
		noBatch      = flag.Bool("no-batch", false, "disable request micro-batching (responses are byte-identical either way)")
		batchPerCkpt = flag.Bool("batch-per-checkpoint", false, "only co-batch requests hitting the same checkpoint (default groups by model shape across checkpoints)")
		streamChunk  = flag.Int("stream-chunk", 0, "windows per streamed /v1/replay chunk; 0 = default 64")
		workers      = flag.Int("workers", 0, "simulation pool width; 0 = one worker per CPU")
		maxConc      = flag.Int("max-concurrency", 0, "max simulate requests executing at once; 0 = 2x workers")
		maxQueue     = flag.Int("queue", 64, "max simulate requests waiting for a slot before shedding with 429")
		maxBody      = flag.Int64("max-body", 8<<20, "max request body bytes")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request deadline (overridable per request via timeout_ms)")
		debug        = flag.Bool("debug", false, "also serve /debug/vars and /debug/pprof")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		logLevel     = flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error")
		traceSample  = flag.Float64("trace-sample", 0, "record a trace span lane for this fraction of requests (0 disables)")
		traceOut     = flag.String("trace-out", "", "write sampled request spans as Chrome trace-event JSON here on shutdown")
		spanLimit    = flag.Int("span-limit", 4096, "retain at most this many finished spans (oldest overwritten)")
		driftEvery   = flag.Int("drift-every", 0, "score every Nth eligible replay for model drift (0 = default 8, negative disables)")
		quarantine   = flag.Bool("quarantine", false, "answer 503 for models whose drift verdict is failing")
		sloLatency   = flag.Duration("slo-latency", time.Second, "latency SLO threshold: this fraction of requests must finish under it")
		sloLatPct    = flag.Float64("slo-latency-target", 0.99, "good-event fraction the latency SLO promises")
		sloErrPct    = flag.Float64("slo-error-target", 0.99, "non-error fraction the error-ratio SLO promises")
		maxSessions  = flag.Int("max-sessions", 0, "max live emulation sessions across all tenants; 0 = default 256")
		maxSessTen   = flag.Int("max-sessions-per-tenant", 0, "max live sessions per tenant; 0 = the global cap")
		sessionTTL   = flag.Duration("session-ttl", 0, "reap sessions idle this long (no events read, no mutations); 0 = default 15m, negative disables")
		sessionState = flag.String("session-state", "", "checkpoint live-session state to this file during graceful drain")
	)
	flag.Parse()

	// Serving is long-running and observable by design: metrics are always
	// on (scrape /metrics; -debug adds expvar/pprof), and all process
	// output is structured JSON logs on stderr.
	reg := obs.Enable()
	logger := slog.New(obs.NewLogHandler(os.Stderr, obs.ParseLogLevel(*logLevel)))
	obs.SetLogger(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	if *modelDir == "" {
		fatal("missing flag", errors.New("-models is required"))
	}
	if *traceSample > 0 {
		// Bound span memory: sampled request spans overwrite the oldest
		// once the ring fills, so uptime doesn't grow the heap.
		reg.SetSpanLimit(*spanLimit)
	}

	s, err := serve.NewServer(serve.Config{
		ModelDir:             *modelDir,
		MaxModels:            *maxModels,
		Workers:              *workers,
		BatchWindow:          *batchWindow,
		BatchMax:             *batchMax,
		NoBatch:              *noBatch,
		BatchPerCheckpoint:   *batchPerCkpt,
		StreamChunk:          *streamChunk,
		MaxConcurrent:        *maxConc,
		MaxQueue:             *maxQueue,
		MaxBodyBytes:         *maxBody,
		DefaultTimeout:       *timeout,
		Debug:                *debug,
		TraceSample:          *traceSample,
		DriftEvery:           *driftEvery,
		Quarantine:           *quarantine,
		SLOLatency:           *sloLatency,
		SLOLatencyTarget:     *sloLatPct,
		SLOErrorTarget:       *sloErrPct,
		MaxSessions:          *maxSessions,
		MaxSessionsPerTenant: *maxSessTen,
		SessionTTL:           *sessionTTL,
		SessionStatePath:     *sessionState,
	})
	if err != nil {
		fatal("startup", err)
	}
	if *warm != "" {
		var ids []string
		for _, id := range strings.Split(*warm, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if err := s.Registry().Warm(ids); err != nil {
			fatal("warm", err)
		}
		logger.Info("warmed models", "count", len(ids))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(*addr) }()
	logger.Info("serving", "models", *modelDir, "addr", *addr,
		"log_level", *logLevel, "trace_sample", *traceSample)

	select {
	case err := <-done:
		fatal("listen", err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fatal("drain", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve", err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal("trace-out", err)
		}
		if err := reg.TraceJSON(f); err != nil {
			fatal("trace-out", err)
		}
		if err := f.Close(); err != nil {
			fatal("trace-out", err)
		}
		logger.Info("wrote trace", "path", *traceOut)
	}
	logger.Info("drained cleanly")
}
