// Command iboxfit learns an iBoxNet model (§3 of the paper) from an
// input–output packet trace: the bottleneck bandwidth, propagation delay,
// buffer size and the conservative cross-traffic time series. The learnt
// parameters — an "iBoxNet profile" — are written as JSON for use with
// iboxsim.
//
// Usage:
//
//	iboxfit -trace corpus/cubic-000.json -out profile.json
package main

import (
	"flag"
	"fmt"
	"log"

	"ibox/internal/iboxnet"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iboxfit: ")
	var (
		tracePath = flag.String("trace", "", "input trace (JSON, from iboxgen)")
		out       = flag.String("out", "", "output profile path (JSON); omit to just print")
		bwWindow  = flag.Duration("bw-window", 0, "bandwidth estimation sliding window (default 1s)")
		ctWindow  = flag.Duration("ct-window", 0, "cross-traffic discretization window (default 100ms)")
		knownBW   = flag.Float64("known-bandwidth", 0, "known bottleneck rate in bytes/sec (overrides estimation)")
	)
	flag.Parse()
	if *tracePath == "" {
		log.Fatal("-trace is required")
	}
	tr, err := trace.LoadJSON(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := iboxnet.EstimatorConfig{
		BandwidthWindow: sim.Time(bwWindow.Nanoseconds()),
		CTWindow:        sim.Time(ctWindow.Nanoseconds()),
		KnownBandwidth:  *knownBW,
	}
	p, err := iboxnet.Estimate(tr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p)
	fmt.Printf("trace: pkts=%d tput=%.2f Mbps p95=%.1f ms loss=%.2f%%\n",
		len(tr.Packets), tr.Throughput()/1e6, tr.DelayPercentile(95), tr.LossRate()*100)
	d := iboxnet.Diagnose(tr, p, cfg)
	fmt.Printf("assumptions: %s\n", d)
	if !d.Trustworthy() {
		fmt.Println("warning: estimator assumptions poorly supported — consider -known-bandwidth or merging concurrent flows")
	}
	if *out != "" {
		if err := p.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profile written to %s\n", *out)
	}
}
