// Command ibox-pcap2trace converts a pair of libpcap captures — one taken
// at the sender, one at the receiver — into the input–output trace JSON
// that iboxfit and iboxml consume. This is the ingestion path for learning
// iBox models from real networks (the role the Pantheon corpus plays in
// the paper).
//
// Usage:
//
//	ibox-pcap2trace -send sender.pcap -recv receiver.pcap -out trace.json
//	ibox-pcap2trace -send sender.pcap -list          # enumerate flows
//	ibox-pcap2trace ... -flow 'udp 10.0.0.1:4000>10.0.0.2:5000'
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ibox/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-pcap2trace: ")
	var (
		sendPath = flag.String("send", "", "sender-side capture (.pcap)")
		recvPath = flag.String("recv", "", "receiver-side capture (.pcap)")
		out      = flag.String("out", "trace.json", "output trace path")
		flowSpec = flag.String("flow", "", "flow to pair, as printed by -list (default: largest flow)")
		list     = flag.Bool("list", false, "list flows in the sender capture and exit")
	)
	flag.Parse()
	if *sendPath == "" {
		log.Fatal("-send is required")
	}
	sendPkts, link, err := pcap.Open(*sendPath)
	if err != nil {
		log.Fatal(err)
	}
	if link != 1 {
		log.Fatalf("unsupported link type %d (want Ethernet)", link)
	}
	flows := pcap.Flows(sendPkts)
	if *list {
		type fc struct {
			f pcap.Flow5
			n int
		}
		var sorted []fc
		for f, n := range flows {
			sorted = append(sorted, fc{f, n})
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].n > sorted[j].n })
		for _, e := range sorted {
			fmt.Printf("%8d  %s\n", e.n, e.f)
		}
		return
	}
	if *recvPath == "" {
		log.Fatal("-recv is required")
	}
	recvPkts, _, err := pcap.Open(*recvPath)
	if err != nil {
		log.Fatal(err)
	}

	var flow pcap.Flow5
	if *flowSpec != "" {
		found := false
		for f := range flows {
			if f.String() == *flowSpec {
				flow, found = f, true
				break
			}
		}
		if !found {
			log.Fatalf("flow %q not in sender capture (use -list)", *flowSpec)
		}
	} else {
		best := 0
		for f, n := range flows {
			if n > best {
				flow, best = f, n
			}
		}
		if best == 0 {
			log.Fatal("no decodable flows in sender capture")
		}
	}

	tr, err := pcap.PairCaptures(sendPkts, recvPkts, flow)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.SaveJSON(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %s: %d packets, loss=%.2f%%, p95 delay=%.1f ms → %s\n",
		flow, len(tr.Packets), tr.LossRate()*100, tr.DelayPercentile(95), *out)
}
