// Command iboxml trains and applies the ML-based network model of §4: a
// deep state-space (multi-layer LSTM) delay model learnt end-to-end from
// input–output traces.
//
// Usage:
//
//	iboxml train -traces 'corpus/*.json' -out model.json [-ct] [-hidden 24 -layers 2 -epochs 30]
//	iboxml predict -model model.json -trace test.json [-out predicted.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("iboxml: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: iboxml <train|predict> [flags]")
	}
	switch os.Args[1] {
	case "train":
		train(os.Args[2:])
	case "predict":
		predict(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want train or predict)", os.Args[1])
	}
}

func train(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var (
		glob   = fs.String("traces", "", "glob of training trace JSON files")
		out    = fs.String("out", "model.json", "output model path")
		useCT  = fs.Bool("ct", false, "feed the §3 cross-traffic estimate as an input feature (§5.2)")
		hidden = fs.Int("hidden", 24, "LSTM hidden size")
		layers = fs.Int("layers", 2, "LSTM layers")
		epochs = fs.Int("epochs", 30, "training epochs")
		seed   = fs.Int64("seed", 1, "training seed")
	)
	fs.Parse(args)
	if *glob == "" {
		log.Fatal("-traces is required")
	}
	paths, err := filepath.Glob(*glob)
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) == 0 {
		log.Fatalf("no traces match %q", *glob)
	}
	var samples []iboxml.TrainingSample
	for _, p := range paths {
		tr, err := trace.LoadJSON(p)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		s := iboxml.TrainingSample{Trace: tr}
		if *useCT {
			if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{}); err == nil {
				s.CT = params.CrossTraffic
			}
		}
		samples = append(samples, s)
	}
	fmt.Printf("training on %d traces (hidden=%d layers=%d epochs=%d ct=%v)...\n",
		len(samples), *hidden, *layers, *epochs, *useCT)
	model, err := iboxml.Train(samples, iboxml.Config{
		Hidden: *hidden, Layers: *layers, Epochs: *epochs,
		UseCrossTraffic: *useCT, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Embed the training-time calibration scorecard so the serving tier
	// can judge online drift against it (see internal/obs DriftSketch).
	cal := model.Calibrate(samples)
	model.SetBaseline(cal)
	fmt.Printf("calibration baseline: %d windows, NLL %.4f, PIT deviation %.4f\n",
		cal.Windows, cal.NLL, cal.PITDeviation)
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model with %d parameters written to %s\n", model.NumParams(), *out)
}

func predict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model path")
		tracePath = fs.String("trace", "", "test trace whose sending timeline is replayed")
		out       = fs.String("out", "", "write the predicted trace here (JSON)")
		seed      = fs.Int64("seed", 1, "sampling seed")
	)
	fs.Parse(args)
	if *tracePath == "" {
		log.Fatal("-trace is required")
	}
	model, err := iboxml.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.LoadJSON(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	var ct *trace.Series
	if model.Cfg.UseCrossTraffic {
		if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{}); err == nil {
			ct = params.CrossTraffic
		}
	}
	pred := model.SimulateTrace(tr, ct, *seed)
	fmt.Printf("ground truth: p95=%.1f ms mean tput=%.2f Mbps\n",
		tr.DelayPercentile(95), tr.Throughput()/1e6)
	fmt.Printf("predicted:    p95=%.1f ms reorder=%.4f\n",
		pred.DelayPercentile(95), pred.ReorderingRate())
	if *out != "" {
		if err := pred.SaveJSON(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted trace written to %s\n", *out)
	}
}
