// Command ibox-abtest runs the paper's §2 ensemble test on a user-supplied
// corpus: every control-protocol trace in the corpus trains one iBoxNet
// model, the treatment protocol runs on each learnt model, and the
// predicted metric distributions are printed — an A/B flight conducted
// entirely inside the simulator.
//
// Unlike cmd/ibox-experiments (which fabricates its corpus and so can also
// print ground truth), this tool consumes any traces you have — from
// iboxgen, or from real captures via ibox-pcap2trace.
//
// Usage:
//
//	ibox-abtest -traces 'corpus/*.json' -treatment vegas -dur 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ibox/internal/cc"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ibox-abtest: ")
	var (
		glob      = flag.String("traces", "", "glob of control-protocol trace JSON files")
		treatment = flag.String("treatment", "vegas", "treatment protocol: "+strings.Join(cc.Protocols(), ", "))
		dur       = flag.Duration("dur", 30*time.Second, "per-flow duration on the learnt models")
		seed      = flag.Int64("seed", 1, "run seed")
	)
	flag.Parse()
	if *glob == "" {
		log.Fatal("-traces is required")
	}
	paths, err := filepath.Glob(*glob)
	if err != nil {
		log.Fatal(err)
	}
	if len(paths) == 0 {
		log.Fatalf("no traces match %q", *glob)
	}
	sort.Strings(paths)

	var control, treat []core.Metrics
	skipped := 0
	for _, path := range paths {
		tr, err := trace.LoadJSON(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		model, err := core.Fit(tr, iboxnet.Full)
		if err != nil {
			log.Printf("%s: fit failed (%v), skipping", path, err)
			skipped++
			continue
		}
		ctrlProto := tr.Protocol
		if _, err := cc.NewSender(ctrlProto, 1500); err != nil {
			ctrlProto = "cubic" // trace protocol unknown to the registry
		}
		simA, err := model.Run(ctrlProto, sim.Time(dur.Nanoseconds()), *seed)
		if err != nil {
			log.Fatal(err)
		}
		simB, err := model.Run(*treatment, sim.Time(dur.Nanoseconds()), *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		control = append(control, core.MetricsOf(simA))
		treat = append(treat, core.MetricsOf(simB))
	}
	if len(control) == 0 {
		log.Fatal("no models fitted")
	}

	summarize := func(name string, ms []core.Metrics) {
		var tput, p95, loss []float64
		for _, m := range ms {
			tput = append(tput, m.ThroughputMbps)
			p95 = append(p95, m.P95DelayMs)
			loss = append(loss, m.LossPct)
		}
		st, sp, sl := stats.Summarize(tput), stats.Summarize(p95), stats.Summarize(loss)
		fmt.Printf("%-10s tput Mbps %5.2f (p25 %.2f / p50 %.2f / p75 %.2f)\n", name, st.Mean, st.P25, st.P50, st.P75)
		fmt.Printf("%-10s p95 ms    %5.0f (p25 %.0f / p50 %.0f / p75 %.0f)\n", "", sp.Mean, sp.P25, sp.P50, sp.P75)
		fmt.Printf("%-10s loss %%    %5.2f (p25 %.2f / p50 %.2f / p75 %.2f)\n", "", sl.Mean, sl.P25, sl.P50, sl.P75)
	}
	fmt.Printf("A/B flight over %d learnt models (%d skipped)\n", len(control), skipped)
	summarize("control", control)
	summarize(*treatment, treat)

	dTput := mean(treat, func(m core.Metrics) float64 { return m.ThroughputMbps }) -
		mean(control, func(m core.Metrics) float64 { return m.ThroughputMbps })
	dP95 := mean(treat, func(m core.Metrics) float64 { return m.P95DelayMs }) -
		mean(control, func(m core.Metrics) float64 { return m.P95DelayMs })
	fmt.Printf("verdict: %s vs control: throughput %+.2f Mbps, p95 delay %+.0f ms\n", *treatment, dTput, dP95)
}

func mean(ms []core.Metrics, f func(core.Metrics) float64) float64 {
	s := 0.0
	for _, m := range ms {
		s += f(m)
	}
	return s / float64(len(ms))
}
