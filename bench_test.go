package ibox

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation and substrate micro-benchmarks. Each
// table/figure benchmark regenerates the experiment at Quick scale and, on
// the first iteration, logs the same rows/series the paper reports (run
// with -v to see them). Absolute numbers come from our synthetic substrate
// rather than the authors' testbed; EXPERIMENTS.md records shape-vs-paper.
//
//	go test -bench=. -benchmem
//
// BenchmarkFig2Ensemble/{serial,parallel}       — Fig 2   ensemble A/B test, paired fan-out speedup
// BenchmarkFig3Ablations           — Fig 3   no-CT / statistical-loss ablations
// BenchmarkFig4Instance            — Fig 4   instance test (alignment + clustering)
// BenchmarkFig5Reordering          — Fig 5   reordering-rate CDFs
// BenchmarkFig7ControlLoopBias     — Fig 7   delay histograms ± CT input
// BenchmarkFig8BehaviourDiscovery  — Fig 8   SAX pattern tables
// BenchmarkTable1CrossTraffic/{serial,parallel} — Table 1 RTC p95-delay distribution error, paired fan-out speedup
// BenchmarkLSTMInferencePerPacket  — §4.2    per-packet deep inference cost
// BenchmarkHierarchicalPerPacket   — §4.2    group-amortized inference (extension)
// BenchmarkIBoxNetPerPacket        — §4.2    emulator per-packet cost
// BenchmarkBaselines               — §1      iBoxNet vs trace replay (extension)
// BenchmarkRealism                 — §6      ABR tuning transfer (extension)
// BenchmarkAblation*               — design-choice ablations (DESIGN.md)

import (
	"fmt"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/experiments"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.EnsembleTraces = 6
	s.TraceDur = 8 * sim.Second
	s.TrainTraces = 6
	s.TestTraces = 4
	s.RTCTraces = 18
	s.RunsPerPattern = 3
	return s
}

// benchSerialParallel runs the same experiment in serial (Workers=1) and
// parallel (one worker per CPU) modes as paired sub-benchmarks, so the
// fan-out speedup is measured rather than claimed. Results are
// byte-identical across modes (see internal/par and the determinism
// tests); only wall-clock differs.
func benchSerialParallel(b *testing.B, run func(experiments.Scale) (fmt.Stringer, error)) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"serial", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			s := benchScale()
			s.Serial = mode.serial
			for i := 0; i < b.N; i++ {
				r, err := run(s)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("\n%s", r)
				}
			}
		})
	}
}

func BenchmarkFig2Ensemble(b *testing.B) {
	benchSerialParallel(b, func(s experiments.Scale) (fmt.Stringer, error) {
		return experiments.Fig2(s)
	})
}

func BenchmarkFig3Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

func BenchmarkFig4Instance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

func BenchmarkFig5Reordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

func BenchmarkFig7ControlLoopBias(b *testing.B) {
	s := benchScale()
	s.TrainTraces = experiments.Quick().TrainTraces
	s.TraceDur = experiments.Quick().TraceDur
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

func BenchmarkFig8BehaviourDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

func BenchmarkTable1CrossTraffic(b *testing.B) {
	benchSerialParallel(b, func(s experiments.Scale) (fmt.Stringer, error) {
		return experiments.Table1(s)
	})
}

// benchTrainingTrace builds a small trace for throwaway speed models.
func benchTrainingTrace() *trace.Trace {
	tr := &trace.Trace{Protocol: "bench"}
	for i := 0; i < 400; i++ {
		send := sim.Time(i) * 5 * sim.Millisecond
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + 30*sim.Millisecond,
		})
	}
	return tr
}

// BenchmarkLSTMInferencePerPacket measures the §4.2 bottleneck: one LSTM
// step per packet, at the paper's depth (4 layers). The reported ns/op is
// the per-packet inference budget; divide 12 µs/op into 1500 B · 8 to get
// the implied maximum emulated rate.
func BenchmarkLSTMInferencePerPacket(b *testing.B) {
	m, err := iboxml.Train([]iboxml.TrainingSample{{Trace: benchTrainingTrace()}},
		iboxml.Config{Hidden: 64, Layers: 4, Epochs: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	step := m.PredictPacketDelay()
	feat := []float64{15000, 1.2, 1500, 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(feat)
	}
}

// BenchmarkHierarchicalPerPacket measures the §4.2 hybrid/hierarchical
// speedup: the same 4-layer LSTM advanced once per 100 ms group instead of
// per packet (compare with BenchmarkLSTMInferencePerPacket).
func BenchmarkHierarchicalPerPacket(b *testing.B) {
	m, err := iboxml.Train([]iboxml.TrainingSample{{Trace: benchTrainingTrace()}},
		iboxml.Config{Hidden: 64, Layers: 4, Epochs: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := m.NewHierarchical(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PacketDelay(sim.Time(i)*sim.Millisecond, 1500)
	}
}

// BenchmarkBaselines regenerates the §1 motivating comparison: iBoxNet vs
// trace-driven replay at predicting a treatment protocol.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Baselines(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkIBoxNetPerPacket measures the discrete-event emulator's cost
// per packet for contrast with deep inference.
func BenchmarkIBoxNetPerPacket(b *testing.B) {
	p := iboxnet.Params{
		Bandwidth:   1_250_000,
		PropDelay:   20 * sim.Millisecond,
		BufferBytes: 125_000,
	}
	sched := sim.NewScheduler()
	path := p.Emulate(sched, iboxnet.Full, 1)
	port := path.Port("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Send(1500, nil, nil)
		// Drain periodically so the queue doesn't just overflow.
		if i%32 == 31 {
			sched.RunUntil(sched.Now() + 50*sim.Millisecond)
		}
	}
	sched.RunUntil(sched.Now() + sim.Second)
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationCrossTraffic quantifies the cost/benefit of modelling
// cross traffic: full iBoxNet vs the no-CT variant on one ensemble corpus.
func BenchmarkAblationCrossTraffic(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sc := r.Scores()
			b.Logf("MAE tput: full=%.2f noct=%.2f Mbps", sc["iboxnet"].MAETput, sc["iboxnet-noct"].MAETput)
		}
	}
}

// BenchmarkAblationWindowSize sweeps the bandwidth-estimation sliding
// window (the paper fixes 1 s) and reports estimation error per width.
func BenchmarkAblationWindowSize(b *testing.B) {
	inst := benchInstance()
	gt, err := inst.run()
	if err != nil {
		b.Fatal(err)
	}
	for _, win := range []sim.Time{100 * sim.Millisecond, 500 * sim.Millisecond, sim.Second, 2 * sim.Second} {
		win := win
		b.Run(win.String(), func(b *testing.B) {
			var p iboxnet.Params
			for i := 0; i < b.N; i++ {
				var err error
				p, err = iboxnet.Estimate(gt, iboxnet.EstimatorConfig{BandwidthWindow: win})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.Bandwidth/1.25e6*100, "%of-true-bw")
		})
	}
}

type benchInst struct{}

func benchInstance() benchInst { return benchInst{} }

func (benchInst) run() (*trace.Trace, error) {
	sched := sim.NewScheduler()
	path := netsim.New(sched, netsim.Config{
		Rate: 1_250_000, BufferBytes: 125_000, PropDelay: 20 * sim.Millisecond, Seed: 5,
	})
	flow := cc.NewFlow(sched, path.Port("m"), cc.NewCubic(), cc.FlowConfig{
		Duration: 10 * sim.Second, AckDelay: 20 * sim.Millisecond,
	})
	flow.Start()
	sched.RunUntil(13 * sim.Second)
	return flow.Trace(), flow.Trace().Validate()
}

// BenchmarkAblationLSTMDepth reports training+inference cost against model
// size (the §4.2 hybrid-model argument: accuracy/speed trade-off).
func BenchmarkAblationLSTMDepth(b *testing.B) {
	tr := benchTrainingTrace()
	for _, cfg := range []struct{ layers, hidden int }{{1, 16}, {2, 32}, {4, 64}} {
		cfg := cfg
		b.Run(
			// e.g. "2x32"
			itoa(cfg.layers)+"x"+itoa(cfg.hidden),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := iboxml.Train([]iboxml.TrainingSample{{Trace: tr}},
						iboxml.Config{Hidden: cfg.hidden, Layers: cfg.layers, Epochs: 2, Seed: 2}); err != nil {
						b.Fatal(err)
					}
				}
			})
	}
}

// BenchmarkAblationReorderPredictor contrasts the LSTM and linear
// reordering predictors' training cost (Fig 5's "lightweight model
// suffices" claim; their accuracy comparison is in Fig 5 itself).
func BenchmarkAblationReorderPredictor(b *testing.B) {
	corpus, err := GenerateCorpus(CellularReorder(), 3, "vegas", 6*sim.Second, 9)
	if err != nil {
		b.Fatal(err)
	}
	var samples []iboxml.TrainingSample
	for _, tr := range corpus.Traces {
		samples = append(samples, iboxml.TrainingSample{Trace: tr})
	}
	b.Run("lstm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iboxml.TrainLSTMReorder(samples, iboxml.LSTMReorderConfig{
				Hidden: 12, Epochs: 5, MaxPacketsPerTrace: 1500, Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := iboxml.TrainLinearReorder(samples, false, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptiveCT quantifies the §6 adaptive-cross-traffic
// extension: replay vs competing-Cubic-flow emulation against a yielding
// treatment protocol.
func BenchmarkAblationAdaptiveCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AdaptiveCT(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkAblationCellKind compares the recurrent cell kinds (LSTM vs
// GRU) on one training epoch of identical size — the "cheaper recurrent
// models" direction of §4.2's speed discussion.
func BenchmarkAblationCellKind(b *testing.B) {
	xs := make([][]float64, 200)
	ys := make([]float64, 200)
	for t := range xs {
		xs[t] = []float64{float64(t % 7), float64(t % 3)}
		ys[t] = float64(t%5) / 5
	}
	b.Run("lstm", func(b *testing.B) {
		m := nn.NewLSTM(2, 32, 2, 1)
		head := nn.NewDense(32, 1, 2)
		for i := 0; i < b.N; i++ {
			outs, caches := m.ForwardSequence(xs)
			dOut := make([][]float64, len(xs))
			for t := range xs {
				d := head.Forward(outs[t])[0] - ys[t]
				dOut[t] = head.Backward(outs[t], []float64{d})
			}
			m.BackwardSequence(caches, dOut)
		}
	})
	b.Run("gru", func(b *testing.B) {
		m := nn.NewGRU(2, 32, 2, 1)
		head := nn.NewDense(32, 1, 2)
		for i := 0; i < b.N; i++ {
			outs, caches := m.ForwardSequence(xs)
			dOut := make([][]float64, len(xs))
			for t := range xs {
				d := head.Forward(outs[t])[0] - ys[t]
				dOut[t] = head.Backward(outs[t], []float64{d})
			}
			m.BackwardSequence(caches, dOut)
		}
	})
}

// BenchmarkRealism regenerates the §6 application-performance realism
// study (ABR tuning transfer).
func BenchmarkRealism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Realism(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// BenchmarkParMapObserved measures the observability layer's overhead on
// the fan-out hot path: the same par.Map workload with the obs registry
// disabled (the default: no clock reads, no atomics) and enabled (queue
// wait + per-item histograms). Run with -benchmem: the disabled mode must
// not allocate on behalf of obs, and the enabled/disabled gap is the whole
// cost of instrumentation.
func BenchmarkParMapObserved(b *testing.B) {
	const items = 64
	work := func(i int) (int, error) {
		v := i
		for j := 0; j < 2000; j++ {
			v = v*1664525 + 1013904223
		}
		return v, nil
	}
	for _, mode := range []struct {
		name   string
		enable bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.enable {
				obs.Enable()
				defer obs.Disable()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := par.Map(items, par.Options{Workers: 4}, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkNetsimPacketsPerSecond measures raw simulator throughput.
func BenchmarkNetsimPacketsPerSecond(b *testing.B) {
	sched := sim.NewScheduler()
	path := netsim.New(sched, netsim.Config{
		Rate: 125_000_000, BufferBytes: 10_000_000, PropDelay: sim.Millisecond, Seed: 1,
	})
	port := path.Port("m")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Send(1500, nil, nil)
		if i%64 == 63 {
			sched.RunUntil(sched.Now() + 10*sim.Millisecond)
		}
	}
}

// BenchmarkEstimate measures full iBoxNet parameter estimation on a
// 10-second Cubic trace.
func BenchmarkEstimate(b *testing.B) {
	gt, err := benchInstance().run()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := iboxnet.Estimate(gt, iboxnet.EstimatorConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
