package ibox

// Integration tests of the public facade: the workflows a downstream user
// would actually run, end to end, through the exported API only.

import (
	"math"
	"testing"
)

func TestPublicFitRunWorkflow(t *testing.T) {
	corpus, err := GenerateCorpus(Ethernet(), 2, "cubic", 6*Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Traces) != 2 {
		t.Fatalf("corpus size %d", len(corpus.Traces))
	}
	model, err := Fit(corpus.Traces[0], Full)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := model.Run("vegas", 6*Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m := MetricsOf(tr)
	if m.ThroughputMbps <= 0 || math.IsNaN(m.P95DelayMs) {
		t.Errorf("degenerate metrics: %+v", m)
	}
}

func TestPublicEstimate(t *testing.T) {
	corpus, err := GenerateCorpus(Ethernet(), 1, "cubic", 6*Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Estimate(corpus.Traces[0])
	if err != nil {
		t.Fatal(err)
	}
	inst := corpus.Instances[0]
	if math.Abs(p.Bandwidth-inst.Net.Rate)/inst.Net.Rate > 0.15 {
		t.Errorf("estimated bandwidth %.0f vs true %.0f", p.Bandwidth, inst.Net.Rate)
	}
}

func TestPublicEnsembleTest(t *testing.T) {
	corpus, err := GenerateCorpus(IndiaCellular(), 3, "cubic", 6*Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnsembleTest(corpus, "vegas", Full, 6*Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SimTreatment) != 3 {
		t.Fatalf("treatment results: %d", len(res.SimTreatment))
	}
	if len(res.KS) != 6 {
		t.Fatalf("KS entries: %d", len(res.KS))
	}
}

func TestPublicMLWorkflow(t *testing.T) {
	corpus, err := GenerateCorpus(IndiaCellular(), 3, "vegas", 6*Second, 9)
	if err != nil {
		t.Fatal(err)
	}
	var samples []TrainingSample
	for _, tr := range corpus.Traces {
		s := TrainingSample{Trace: tr}
		if p, err := Estimate(tr); err == nil {
			s.CT = p.CrossTraffic
		}
		samples = append(samples, s)
	}
	model, err := TrainML(samples, MLConfig{Hidden: 8, Layers: 1, Epochs: 3, UseCrossTraffic: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pred := model.SimulateTrace(corpus.Traces[0], samples[0].CT, 2)
	if err := pred.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pred.Packets) != len(corpus.Traces[0].Packets) {
		t.Error("prediction length mismatch")
	}
}

func TestPublicReorderingWorkflow(t *testing.T) {
	corpus, err := GenerateCorpus(CellularReorder(), 3, "vegas", 6*Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	var samples []TrainingSample
	for _, tr := range corpus.Traces[:2] {
		samples = append(samples, TrainingSample{Trace: tr})
	}
	pred, err := TrainReorderLinear(samples, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Fit(corpus.Traces[2], Full)
	if err != nil {
		t.Fatal(err)
	}
	inorder, err := model.Run("vegas", 6*Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inorder.ReorderingRate() != 0 {
		t.Fatal("iBoxNet replay reordered")
	}
	aug := AugmentReordering(inorder, pred, model.Params.CrossTraffic, 1)
	if err := aug.Validate(); err != nil {
		t.Fatal(err)
	}
	if aug.ReorderingRate() <= 0 {
		t.Error("augmentation produced no reordering")
	}
}

func TestPublicVariants(t *testing.T) {
	names := map[Variant]string{
		Full: "iboxnet", NoCT: "iboxnet-noct", StatLoss: "iboxnet-statloss",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}
