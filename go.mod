module ibox

go 1.22
