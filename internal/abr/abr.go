// Package abr implements an adaptive-bitrate video client — the
// application workload behind the paper's realism argument. §6 proposes
// defining realism "in terms of the application performance; e.g., whether
// the performance of an application that has been tuned using the
// simulator holds up in the actual network", and the paper's §1/§7 cite
// Pensieve's misleading trace-replay evaluation as the cautionary tale.
//
// The client is the classic buffer-based controller (BBA-style): it picks
// each chunk's bitrate from the current playback-buffer level, downloads
// the chunk over a closed-loop congestion-controlled transfer, and
// accounts playback, rebuffering and quality switches. Because downloads
// run over the same cc.Flow/Port machinery as everything else, the same
// ABR session runs unchanged on the ground-truth simulator and on a learnt
// iBoxNet model — enabling the tune-on-model, validate-on-truth experiment.
package abr

import (
	"fmt"

	"ibox/internal/cc"
	"ibox/internal/sim"
)

// Config parameterizes an ABR session.
type Config struct {
	// Bitrates are the available encoding rates, bits/sec, ascending.
	Bitrates []float64
	// ChunkDur is each chunk's media duration (default 2 s).
	ChunkDur sim.Time
	// Chunks is how many chunks the session plays (required).
	Chunks int
	// LowBuffer and HighBuffer are the buffer-based controller's knobs:
	// below LowBuffer the client picks the lowest bitrate; above
	// HighBuffer the highest; in between it interpolates linearly over the
	// bitrate ladder (Huang et al.'s BBA-0). Defaults 5 s / 15 s.
	LowBuffer, HighBuffer sim.Time
	// StartupBuffer is the buffer level at which playback starts
	// (default one chunk).
	StartupBuffer sim.Time
	// Protocol is the transport used for chunk downloads (default cubic).
	Protocol string
	// AckDelay is the return-path delay for the transfers.
	AckDelay sim.Time
}

func (c Config) withDefaults() Config {
	if c.ChunkDur <= 0 {
		c.ChunkDur = 2 * sim.Second
	}
	if c.LowBuffer <= 0 {
		c.LowBuffer = 5 * sim.Second
	}
	if c.HighBuffer <= c.LowBuffer {
		c.HighBuffer = c.LowBuffer + 10*sim.Second
	}
	if c.StartupBuffer <= 0 {
		c.StartupBuffer = c.ChunkDur
	}
	if c.Protocol == "" {
		c.Protocol = "cubic"
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 20 * sim.Millisecond
	}
	return c
}

// Result summarizes a session — the application-level metrics the §6
// realism test compares.
type Result struct {
	// MeanBitrateMbps is the average selected encoding rate.
	MeanBitrateMbps float64
	// RebufferSec is the total stall time after startup.
	RebufferSec float64
	// StartupSec is the time to first play.
	StartupSec float64
	// Switches counts bitrate changes between consecutive chunks.
	Switches int
	// QoE is the Pensieve-style linear score:
	// mean bitrate (Mbps) − 4.3·rebuffer fraction·maxBitrate − smoothness penalty.
	QoE float64
}

func (r Result) String() string {
	return fmt.Sprintf("abr.Result{bitrate=%.2f Mbps, rebuffer=%.1fs, startup=%.1fs, switches=%d, QoE=%.2f}",
		r.MeanBitrateMbps, r.RebufferSec, r.StartupSec, r.Switches, r.QoE)
}

// Network is the send-side contract chunk downloads run over (netsim.Port,
// netsim.ChainPort and the iBoxNet emulator's port all satisfy it).
type Network interface {
	Now() sim.Time
	Send(size int, onDeliver func(recv sim.Time), onDrop func())
}

// Run plays a session over the given network on the scheduler and returns
// the application metrics. The caller drives the scheduler; Run schedules
// everything and returns a handle whose Result is valid once Done.
func Run(sched *sim.Scheduler, net Network, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Bitrates) == 0 || cfg.Chunks <= 0 {
		return nil, fmt.Errorf("abr: need bitrates and a positive chunk count")
	}
	s := &Session{sched: sched, net: net, cfg: cfg}
	sched.At(sched.Now(), s.nextChunk)
	return s, nil
}

// Session is a running ABR client.
type Session struct {
	sched *sim.Scheduler
	net   Network
	cfg   Config

	chunk      int
	lastLevel  int
	buffer     sim.Time // media seconds buffered, as sim time
	lastUpdate sim.Time
	playing    bool
	started    bool
	startAt    sim.Time
	rebuffer   sim.Time
	bitrateSum float64
	switches   int
	done       bool
}

// Done reports whether the session has played all chunks' downloads.
func (s *Session) Done() bool { return s.done }

// advanceBuffer drains the playback buffer for elapsed wall time and
// accounts rebuffering.
func (s *Session) advanceBuffer() {
	now := s.sched.Now()
	elapsed := now - s.lastUpdate
	s.lastUpdate = now
	if !s.started {
		return
	}
	if s.playing {
		s.buffer -= elapsed
		if s.buffer < 0 {
			s.rebuffer += -s.buffer
			s.buffer = 0
			s.playing = false
		}
	} else {
		s.rebuffer += elapsed
	}
}

// pickLevel is the buffer-based (BBA-0) bitrate map.
func (s *Session) pickLevel() int {
	n := len(s.cfg.Bitrates)
	switch {
	case s.buffer <= s.cfg.LowBuffer:
		return 0
	case s.buffer >= s.cfg.HighBuffer:
		return n - 1
	default:
		frac := float64(s.buffer-s.cfg.LowBuffer) / float64(s.cfg.HighBuffer-s.cfg.LowBuffer)
		lvl := int(frac * float64(n-1))
		if lvl >= n {
			lvl = n - 1
		}
		return lvl
	}
}

// nextChunk starts the next chunk download (or finishes the session).
func (s *Session) nextChunk() {
	s.advanceBuffer()
	if s.chunk >= s.cfg.Chunks {
		s.done = true
		return
	}
	level := s.pickLevel()
	if s.chunk > 0 && level != s.lastLevel {
		s.switches++
	}
	s.lastLevel = level
	bitrate := s.cfg.Bitrates[level]
	s.bitrateSum += bitrate
	chunkBytes := int64(bitrate * s.cfg.ChunkDur.Seconds() / 8)
	if chunkBytes < 1500 {
		chunkBytes = 1500
	}
	sender, err := cc.NewSender(s.cfg.Protocol, 1500)
	if err != nil {
		// Config was validated at Run; an unknown protocol here is a bug.
		panic(err)
	}
	s.chunk++
	flow := cc.NewFlow(s.sched, s.net, sender, cc.FlowConfig{
		Duration: 10 * 60 * sim.Second, // byte limit governs
		Bytes:    chunkBytes,
		AckDelay: s.cfg.AckDelay,
		OnComplete: func(at sim.Time) {
			s.advanceBuffer()
			s.buffer += s.cfg.ChunkDur
			if !s.started && s.buffer >= s.cfg.StartupBuffer {
				s.started = true
				s.playing = true
				s.startAt = at
			}
			if s.started && !s.playing && s.buffer > 0 {
				s.playing = true
			}
			s.nextChunk()
		},
	})
	flow.Start()
}

// Result returns the session metrics; call once Done.
func (s *Session) Result() Result {
	maxMbps := s.cfg.Bitrates[len(s.cfg.Bitrates)-1] / 1e6
	mean := s.bitrateSum / float64(s.cfg.Chunks) / 1e6
	playSec := float64(s.cfg.Chunks) * s.cfg.ChunkDur.Seconds()
	rebufFrac := s.rebuffer.Seconds() / playSec
	qoe := mean - 4.3*rebufFrac*maxMbps - float64(s.switches)/float64(s.cfg.Chunks)*mean*0.5
	return Result{
		MeanBitrateMbps: mean,
		RebufferSec:     s.rebuffer.Seconds(),
		StartupSec:      s.startAt.Seconds(),
		Switches:        s.switches,
		QoE:             qoe,
	}
}
