package abr

import (
	"testing"

	"ibox/internal/netsim"
	"ibox/internal/sim"
)

var ladder = []float64{300_000, 750_000, 1_200_000, 2_850_000, 4_300_000} // bps

func playOn(t *testing.T, rate float64, cfg Config) Result {
	t.Helper()
	sched := sim.NewScheduler()
	path := netsim.New(sched, netsim.Config{
		Rate: rate, BufferBytes: int(rate / 4), PropDelay: 30 * sim.Millisecond, Seed: 5,
	})
	cfg.Bitrates = ladder
	if cfg.Chunks == 0 {
		cfg.Chunks = 30
	}
	s, err := Run(sched, path.Port("abr"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(20 * 60 * sim.Second)
	if !s.Done() {
		t.Fatal("session never finished")
	}
	return s.Result()
}

func TestFastLinkPlaysTopBitrateNoStalls(t *testing.T) {
	// 20 Mbps link ≫ 4.3 Mbps top rung: high bitrate, zero rebuffering.
	r := playOn(t, 2_500_000, Config{})
	if r.RebufferSec > 0.01 {
		t.Errorf("rebuffered %.2fs on a fast link", r.RebufferSec)
	}
	if r.MeanBitrateMbps < 3.0 {
		t.Errorf("mean bitrate %.2f Mbps, want near top of ladder", r.MeanBitrateMbps)
	}
	if r.StartupSec <= 0 || r.StartupSec > 5 {
		t.Errorf("startup %.2fs implausible", r.StartupSec)
	}
}

func TestSlowLinkAdaptsDown(t *testing.T) {
	// 800 kbps link: the client must sit on the lower rungs; stalls should
	// remain bounded because the controller adapts.
	r := playOn(t, 100_000, Config{})
	if r.MeanBitrateMbps > 1.1 {
		t.Errorf("mean bitrate %.2f Mbps on an 0.8 Mbps link", r.MeanBitrateMbps)
	}
	playSec := 30 * 2.0
	if r.RebufferSec > playSec/2 {
		t.Errorf("rebuffered %.1fs of %.0fs: controller not adapting", r.RebufferSec, playSec)
	}
}

func TestBufferKnobsTradeOff(t *testing.T) {
	// A conservative controller (high thresholds) picks lower bitrates but
	// rebuffers no more than an aggressive one on a tight link.
	aggressive := playOn(t, 150_000, Config{LowBuffer: 2 * sim.Second, HighBuffer: 6 * sim.Second})
	conservative := playOn(t, 150_000, Config{LowBuffer: 10 * sim.Second, HighBuffer: 30 * sim.Second})
	if conservative.MeanBitrateMbps >= aggressive.MeanBitrateMbps {
		t.Errorf("conservative bitrate %.2f not below aggressive %.2f",
			conservative.MeanBitrateMbps, aggressive.MeanBitrateMbps)
	}
	if conservative.RebufferSec > aggressive.RebufferSec+1 {
		t.Errorf("conservative rebuffered more: %.1fs vs %.1fs",
			conservative.RebufferSec, aggressive.RebufferSec)
	}
}

func TestRunValidation(t *testing.T) {
	sched := sim.NewScheduler()
	if _, err := Run(sched, nil, Config{Chunks: 5}); err == nil {
		t.Error("no bitrates accepted")
	}
	if _, err := Run(sched, nil, Config{Bitrates: ladder}); err == nil {
		t.Error("zero chunks accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{MeanBitrateMbps: 1.5, RebufferSec: 2, Switches: 3, QoE: 0.7}
	if s := r.String(); len(s) == 0 {
		t.Error("empty String")
	}
}
