package netsim

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func basicCfg() Config {
	return Config{
		Rate:        1_250_000, // 10 Mbps in bytes/sec
		BufferBytes: 150_000,
		PropDelay:   20 * sim.Millisecond,
		Seed:        1,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Rate: 0, BufferBytes: 1, PropDelay: 0},
		{Rate: 1, BufferBytes: 0, PropDelay: 0},
		{Rate: 1, BufferBytes: 1, PropDelay: -1},
		{Rate: 1, BufferBytes: 1, LossProb: 1.5},
		{Rate: 1, BufferBytes: 1, Reorder: &ReorderModel{Prob: 2}},
		{Rate: 1, BufferBytes: 1, Cellular: &CellularModel{Interval: 0, MinShare: 1, MaxShare: 1}},
		{Rate: 1, BufferBytes: 1, Cellular: &CellularModel{Interval: 1, MinShare: 2, MaxShare: 1}},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	good := basicCfg()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestUnloadedDelay(t *testing.T) {
	// A single packet on an empty path: delay = propagation + serialization.
	sched := sim.NewScheduler()
	p := New(sched, basicCfg())
	port := p.Port("main")
	var recv sim.Time = -1
	sched.At(0, func() {
		port.Send(1500, func(r sim.Time) { recv = r }, nil)
	})
	sched.Run()
	service := sim.Time(1500.0 / 1_250_000 * float64(sim.Second)) // 1.2 ms
	want := 20*sim.Millisecond + service
	if recv < want-sim.Microsecond || recv > want+sim.Microsecond {
		t.Errorf("unloaded delay = %v, want ≈%v", recv, want)
	}
}

func TestQueueBuildupDelaysPackets(t *testing.T) {
	// Burst 50 packets at t=0: k-th packet waits behind k-1 others.
	sched := sim.NewScheduler()
	p := New(sched, basicCfg())
	port := p.Port("main")
	recv := make([]sim.Time, 50)
	sched.At(0, func() {
		for i := 0; i < 50; i++ {
			i := i
			port.Send(1500, func(r sim.Time) { recv[i] = r }, nil)
		}
	})
	sched.Run()
	service := 1500.0 / 1_250_000 * float64(sim.Second)
	for i := 1; i < 50; i++ {
		gap := float64(recv[i] - recv[i-1])
		if math.Abs(gap-service) > float64(10*sim.Microsecond) {
			t.Fatalf("packet %d inter-arrival %v, want serialization %v", i, sim.Time(gap), sim.Time(service))
		}
	}
	// Last packet's queueing delay ≈ 49 * service.
	qd := float64(recv[49]-recv[0]) / service
	if math.Abs(qd-49) > 0.5 {
		t.Errorf("normalized last-packet queue delay = %v, want 49", qd)
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 15_000 // room for 10 × 1500B
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("main")
	delivered, dropped := 0, 0
	sched.At(0, func() {
		for i := 0; i < 30; i++ {
			port.Send(1500, func(sim.Time) { delivered++ }, func() { dropped++ })
		}
	})
	sched.Run()
	if delivered+dropped != 30 {
		t.Fatalf("delivered %d + dropped %d != 30", delivered, dropped)
	}
	// Exactly 10 fit at once; the queue drains slowly relative to the
	// instantaneous burst, so ~20 drop.
	if dropped < 15 || dropped > 22 {
		t.Errorf("dropped = %d, want ≈20", dropped)
	}
}

func TestRandomLoss(t *testing.T) {
	cfg := basicCfg()
	cfg.LossProb = 0.1
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("main")
	delivered, dropped := 0, 0
	for i := 0; i < 2000; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		sched.At(at, func() {
			port.Send(1500, func(sim.Time) { delivered++ }, func() { dropped++ })
		})
	}
	sched.Run()
	rate := float64(dropped) / float64(delivered+dropped)
	if math.Abs(rate-0.1) > 0.03 {
		t.Errorf("loss rate = %v, want ≈0.1", rate)
	}
}

func TestCallbacksMayBeNil(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 1500
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("main")
	sched.At(0, func() {
		port.Send(1500, nil, nil) // delivered, nil callback
		port.Send(1500, nil, nil) // dropped (buffer full), nil callback
	})
	sched.Run() // must not panic
}

func TestCellularRateVaries(t *testing.T) {
	cfg := basicCfg()
	cfg.Cellular = &CellularModel{
		Interval: 100 * sim.Millisecond,
		Sigma:    0.3,
		MinShare: 0.3,
		MaxShare: 1.5,
	}
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	seen := map[float64]bool{}
	for i := 1; i <= 50; i++ {
		sched.At(sim.Time(i)*100*sim.Millisecond+sim.Millisecond, func() {
			seen[p.CurrentRate()] = true
		})
	}
	sched.RunUntil(6 * sim.Second)
	if len(seen) < 10 {
		t.Errorf("cellular rate took only %d distinct values in 5s", len(seen))
	}
	for r := range seen {
		if r < 0.3*cfg.Rate-1 || r > 1.5*cfg.Rate+1 {
			t.Errorf("rate %v outside clamp [%v, %v]", r, 0.3*cfg.Rate, 1.5*cfg.Rate)
		}
	}
}

func TestReorderingOccursUnderCongestion(t *testing.T) {
	cfg := basicCfg()
	cfg.Reorder = &ReorderModel{Prob: 0.05, ExtraMin: 0, ExtraMax: 2 * sim.Millisecond}
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("main")
	type arrival struct {
		seq int
		at  sim.Time
	}
	var arrivals []arrival
	// Keep the queue loaded so alternate-path packets overtake.
	for i := 0; i < 1000; i++ {
		i := i
		sched.At(sim.Time(i)*800*sim.Microsecond, func() {
			port.Send(1500, func(r sim.Time) {
				arrivals = append(arrivals, arrival{i, r})
			}, nil)
		})
	}
	sched.Run()
	// Count inversions in arrival order relative to send order.
	byArrival := make([]arrival, len(arrivals))
	copy(byArrival, arrivals)
	// arrivals is already in delivery order because callbacks fire in time order.
	inversions := 0
	maxSeq := -1
	for _, a := range byArrival {
		if a.seq < maxSeq {
			inversions++
		}
		if a.seq > maxSeq {
			maxSeq = a.seq
		}
	}
	if inversions == 0 {
		t.Error("no reordering observed despite multipath + congestion")
	}
}

func TestNoReorderingWithoutModel(t *testing.T) {
	sched := sim.NewScheduler()
	p := New(sched, basicCfg())
	port := p.Port("main")
	var seqs []int
	for i := 0; i < 500; i++ {
		i := i
		sched.At(sim.Time(i)*900*sim.Microsecond, func() {
			port.Send(1500, func(sim.Time) { seqs = append(seqs, i) }, nil)
		})
	}
	sched.Run()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatal("FIFO path delivered out of order")
		}
	}
}

func TestCrossTrafficConsumesBandwidth(t *testing.T) {
	// 10 Mbps bottleneck; CBR cross traffic at 5 Mbps; a greedy main flow
	// paced at 10 Mbps should see growing queueing delay.
	cfg := basicCfg()
	cfg.BufferBytes = 10_000_000 // huge, no drops
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	p.AddCrossTraffic(ConstantBitRate{Rate: 625_000, From: 0, To: 5 * sim.Second})
	port := p.Port("main")
	var first, last sim.Time
	n := 2000
	got := 0
	for i := 0; i < n; i++ {
		i := i
		at := sim.Time(i) * 1200 * sim.Microsecond // 1500B/1.2ms = 10 Mbps
		sched.At(at, func() {
			send := sched.Now()
			port.Send(1500, func(r sim.Time) {
				d := r - send
				if i == 100 {
					first = d
				}
				if i == n-1 {
					last = d
				}
				got++
			}, nil)
		})
	}
	sched.Run()
	if got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if last < first+200*sim.Millisecond {
		t.Errorf("queue did not build under overload: first=%v last=%v", first, last)
	}
}

func TestOnOffCrossTraffic(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 10_000_000
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	// On for 1s at full bottleneck rate, off 1s.
	p.AddCrossTraffic(OnOff{Rate: 1_250_000, OnDur: sim.Second, OffDur: sim.Second, From: 0, To: 5 * sim.Second})
	// Probe with sparse packets; delays during ON should exceed OFF.
	type probe struct {
		at    sim.Time
		delay sim.Time
	}
	var probes []probe
	port := p.Port("probe")
	for i := 0; i < 40; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		sched.At(at, func() {
			send := sched.Now()
			port.Send(200, func(r sim.Time) {
				probes = append(probes, probe{send, r - send})
			}, nil)
		})
	}
	sched.Run()
	var onSum, offSum float64
	var onN, offN int
	for _, pr := range probes {
		phase := pr.at % (2 * sim.Second)
		if phase >= 100*sim.Millisecond && phase < 900*sim.Millisecond {
			onSum += pr.delay.Seconds()
			onN++
		} else if phase >= 1100*sim.Millisecond && phase < 1900*sim.Millisecond {
			offSum += pr.delay.Seconds()
			offN++
		}
	}
	if onN == 0 || offN == 0 {
		t.Fatal("probe phases empty")
	}
	if onSum/float64(onN) <= offSum/float64(offN) {
		t.Errorf("on-phase delay %.4f ≤ off-phase delay %.4f", onSum/float64(onN), offSum/float64(offN))
	}
}

func TestPoissonCrossTrafficMeanRate(t *testing.T) {
	cfg := basicCfg()
	cfg.Rate = 12_500_000 // fast link so queue stays empty
	cfg.BufferBytes = 10_000_000
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	p.AddCrossTraffic(Poisson{MeanRate: 625_000, From: 0, To: 10 * sim.Second, Seed: 3})
	// Count bytes by watching queue occupancy? Simpler: replace the check
	// with observing total service: run and verify sim completes; measure
	// indirectly via a probe seeing small delays (link is fast).
	sched.RunUntil(11 * sim.Second)
	// The process must have terminated by To.
	if p.QueueBytes() > 3000 {
		t.Errorf("queue not drained after cross traffic ended: %d bytes", p.QueueBytes())
	}
}

func TestReplayInjectsBytes(t *testing.T) {
	cfg := basicCfg()
	cfg.BufferBytes = 100_000_000
	cfg.Rate = 125_000_000 // very fast: service time negligible
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	// 3 windows of 100ms with 15000, 0, 7500 bytes.
	p.AddCrossTraffic(Replay{
		Start: 0, Step: 100 * sim.Millisecond,
		Bytes: []float64{15000, 0, 7500},
	})
	sched.Run()
	// All packets must have been enqueued and served; the link's byte
	// accounting must return to zero.
	if p.QueueBytes() != 0 {
		t.Errorf("leftover queue bytes: %d", p.QueueBytes())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []sim.Time {
		cfg := basicCfg()
		cfg.Cellular = &CellularModel{Interval: 50 * sim.Millisecond, Sigma: 0.4, MinShare: 0.2, MaxShare: 1.5}
		cfg.Reorder = &ReorderModel{Prob: 0.03, ExtraMax: 3 * sim.Millisecond}
		cfg.LossProb = 0.01
		sched := sim.NewScheduler()
		p := New(sched, cfg)
		port := p.Port("m")
		var recvs []sim.Time
		for i := 0; i < 500; i++ {
			sched.At(sim.Time(i)*2*sim.Millisecond, func() {
				port.Send(1500, func(r sim.Time) { recvs = append(recvs, r) }, nil)
			})
		}
		sched.RunUntil(5 * sim.Second)
		return recvs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at packet %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJitterSpreadsDelaysButPreservesOrder(t *testing.T) {
	cfg := basicCfg()
	cfg.Jitter = 3 * sim.Millisecond
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("m")
	type arrival struct {
		seq int
		d   sim.Time
	}
	var arr []arrival
	for i := 0; i < 500; i++ {
		i := i
		at := sim.Time(i) * 5 * sim.Millisecond
		sched.At(at, func() {
			send := sched.Now()
			port.Send(500, func(r sim.Time) { arr = append(arr, arrival{i, r - send}) }, nil)
		})
	}
	sched.Run()
	if len(arr) != 500 {
		t.Fatalf("delivered %d", len(arr))
	}
	// FIFO preserved.
	for i := 1; i < len(arr); i++ {
		if arr[i].seq < arr[i-1].seq {
			t.Fatal("jitter reordered packets")
		}
	}
	// Delays vary by multiple ms.
	var mn, mx sim.Time = arr[0].d, arr[0].d
	for _, a := range arr {
		if a.d < mn {
			mn = a.d
		}
		if a.d > mx {
			mx = a.d
		}
	}
	if mx-mn < 2*sim.Millisecond {
		t.Errorf("jitter spread %v too small", mx-mn)
	}
}

func TestJitterValidation(t *testing.T) {
	cfg := basicCfg()
	cfg.Jitter = -1
	if cfg.Validate() == nil {
		t.Error("negative jitter accepted")
	}
}
