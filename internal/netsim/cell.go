package netsim

import (
	"math"

	"ibox/internal/sim"
)

// This file implements a multi-user proportional-fair (PF) cellular cell —
// the scheduling discipline the paper names as what makes cellular paths
// hard for a simple network model ("despite the complexity of cellular
// networks (e.g., proportional fair scheduling [27])", §3.1.1). The
// simpler CellularModel random-walk share remains the default for corpus
// generation; PFCell exists for studies that need the real mechanism: per-
// user Rayleigh-fading channels, per-TTI rate selection by the PF metric
// instantRate/avgThroughput, and the resulting heavy-tailed per-user rate
// process.

// PFCellModel attaches the path's bottleneck to one user of a PF-scheduled
// cell shared with Background competing users.
type PFCellModel struct {
	// TTI is the scheduling interval (default 1 ms, as in LTE).
	TTI sim.Time
	// PeakRate is the cell's maximum single-user rate in bytes/sec when
	// the channel is at its mean quality.
	PeakRate float64
	// Background is the number of competing (always-backlogged) users.
	Background int
	// DopplerHz controls how fast each user's Rayleigh channel decorrelates
	// (default 5 Hz ≈ pedestrian).
	DopplerHz float64
	// Alpha is the PF averaging constant (default 0.01 ⇒ ~100 TTI memory).
	Alpha float64
}

func (m *PFCellModel) withDefaults() PFCellModel {
	out := *m
	if out.TTI <= 0 {
		out.TTI = sim.Millisecond
	}
	if out.DopplerHz <= 0 {
		out.DopplerHz = 5
	}
	if out.Alpha <= 0 {
		out.Alpha = 0.01
	}
	if out.Background < 0 {
		out.Background = 0
	}
	return out
}

// pfCell simulates the cell and drives the link's rate: on each TTI the
// scheduler picks the user maximizing instantaneous rate ÷ smoothed
// throughput; the path's user receives the cell's full rate on TTIs it
// wins and zero otherwise. The link rate is updated with the user's
// smoothed allocation over a short horizon so packet service times remain
// well-defined.
type pfCell struct {
	cfg   PFCellModel
	link  *link
	sched *sim.Scheduler
	rng   *randSource

	// Per-user state: Rayleigh channel (two Gaussian taps) and PF average.
	i, q  []float64 // in-phase / quadrature tap per user
	avg   []float64 // smoothed throughput per user (PF denominator)
	share float64   // smoothed rate of user 0 (ours), bytes/sec
}

// startPFCell begins the TTI loop. User 0 is the path's user.
func startPFCell(sched *sim.Scheduler, l *link, cfg PFCellModel, rng *randSource) {
	cfg = cfg.withDefaults()
	n := cfg.Background + 1
	c := &pfCell{
		cfg: cfg, link: l, sched: sched, rng: rng,
		i: make([]float64, n), q: make([]float64, n), avg: make([]float64, n),
	}
	for u := 0; u < n; u++ {
		c.i[u] = gaussian(rng)
		c.q[u] = gaussian(rng)
		c.avg[u] = cfg.PeakRate / float64(n)
	}
	c.share = cfg.PeakRate / float64(n)
	var tick func()
	tick = func() {
		c.step()
		sched.After(cfg.TTI, tick)
	}
	sched.After(cfg.TTI, tick)
}

// step advances the fading processes one TTI, runs the PF decision and
// updates the link rate.
func (c *pfCell) step() {
	// Jakes-like first-order Gauss-Markov fading: rho per TTI from the
	// Doppler frequency.
	rho := math.Exp(-2 * math.Pi * c.cfg.DopplerHz * c.cfg.TTI.Seconds())
	s := math.Sqrt(1 - rho*rho)
	best, bestMetric := 0, math.Inf(-1)
	n := len(c.i)
	rates := make([]float64, n)
	for u := 0; u < n; u++ {
		c.i[u] = rho*c.i[u] + s*gaussian(c.rng)
		c.q[u] = rho*c.q[u] + s*gaussian(c.rng)
		// Rayleigh power, mean 2 across the two taps; Shannon-ish mapping
		// keeps rates positive with diminishing returns.
		snr := (c.i[u]*c.i[u] + c.q[u]*c.q[u]) / 2
		rates[u] = c.cfg.PeakRate * math.Log2(1+2*snr) / math.Log2(3)
		metric := rates[u] / math.Max(c.avg[u], 1)
		if metric > bestMetric {
			best, bestMetric = u, metric
		}
	}
	for u := 0; u < n; u++ {
		got := 0.0
		if u == best {
			got = rates[u]
		}
		c.avg[u] = (1-c.cfg.Alpha)*c.avg[u] + c.cfg.Alpha*got
	}
	// Our user's effective service rate: the PF-smoothed allocation, with
	// a floor so service times stay finite.
	c.share = math.Max(c.avg[0], 0.01*c.cfg.PeakRate/float64(n))
	c.link.setRate(c.share)
}
