package netsim

import (
	"math"

	"ibox/internal/sim"
)

// REDModel parameterizes Random Early Detection (Floyd & Jacobson 1993) at
// the bottleneck queue: instead of pure drop-tail, arriving packets are
// dropped probabilistically as the EWMA of the queue length rises between
// MinBytes and MaxBytes, signalling congestion before the buffer fills.
// AQM changes loss-based protocols' dynamics qualitatively (losses arrive
// early and spread out instead of in tail bursts), broadening the
// ground-truth behaviours the learnt models must cope with.
type REDModel struct {
	// MinBytes/MaxBytes bound the early-drop region of the averaged queue.
	MinBytes, MaxBytes int
	// MaxP is the drop probability as the average reaches MaxBytes
	// (default 0.1). Above MaxBytes every arrival drops.
	MaxP float64
	// Weight is the EWMA weight for the averaged queue (default 0.002).
	Weight float64
}

func (m *REDModel) withDefaults() REDModel {
	out := *m
	if out.MaxP <= 0 {
		out.MaxP = 0.1
	}
	if out.Weight <= 0 {
		out.Weight = 0.002
	}
	return out
}

// redState tracks the averaged queue and the count since the last drop
// (the standard uniformization that spaces early drops out).
type redState struct {
	cfg    REDModel
	avg    float64
	count  int
	rng    *randSource
	idleAt sim.Time // when the queue went idle (avg decays while idle)
	rate   float64  // drain rate, for idle decay
}

// admit decides whether an arriving packet is dropped early. qBytes is the
// instantaneous backlog before this packet.
func (r *redState) admit(now sim.Time, qBytes int) bool {
	// Idle decay: while the queue sat empty, the average would have been
	// driven down by (idle time × rate) worth of departures.
	if qBytes == 0 && r.idleAt > 0 {
		idle := (now - r.idleAt).Seconds()
		m := idle * r.rate / 1500 // packets-worth of idle service
		r.avg *= math.Pow(1-r.cfg.Weight, m)
		r.idleAt = 0
	}
	r.avg = (1-r.cfg.Weight)*r.avg + r.cfg.Weight*float64(qBytes)
	switch {
	case r.avg < float64(r.cfg.MinBytes):
		r.count = 0
		return true
	case r.avg >= float64(r.cfg.MaxBytes):
		r.count = 0
		return false
	default:
		pb := r.cfg.MaxP * (r.avg - float64(r.cfg.MinBytes)) /
			float64(r.cfg.MaxBytes-r.cfg.MinBytes)
		// Uniformized drop probability: pa = pb / (1 − count·pb).
		pa := pb / math.Max(1-float64(r.count)*pb, 1e-9)
		r.count++
		if r.rng.Float64() < pa {
			r.count = 0
			return false
		}
		return true
	}
}

// markIdle records that the queue just drained empty.
func (r *redState) markIdle(now sim.Time) { r.idleAt = now }
