package netsim

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func threeHop() []HopConfig {
	return []HopConfig{
		{Rate: 12_500_000, BufferBytes: 1_000_000, PropDelay: 5 * sim.Millisecond},  // fast access
		{Rate: 1_250_000, BufferBytes: 125_000, PropDelay: 10 * sim.Millisecond},    // 10 Mbps bottleneck
		{Rate: 12_500_000, BufferBytes: 1_000_000, PropDelay: 15 * sim.Millisecond}, // fast core
	}
}

func TestChainUnloadedDelay(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewChain(sched, threeHop())
	port := c.Port("m")
	var recv sim.Time = -1
	sched.At(0, func() {
		port.Send(1500, func(r sim.Time) { recv = r }, nil)
	})
	sched.Run()
	// Sum of propagation (30 ms) plus three serializations (0.12+1.2+0.12 ms).
	want := 30*sim.Millisecond + sim.Time(1500.0/12.5e6*2e9) + sim.Time(1500.0/1.25e6*1e9)
	if recv < want-sim.Millisecond || recv > want+sim.Millisecond {
		t.Errorf("delay = %v, want ≈%v", recv, want)
	}
}

func TestChainBottleneckDominates(t *testing.T) {
	// Sustained overload: throughput is set by the slowest hop.
	sched := sim.NewScheduler()
	c := NewChain(sched, threeHop())
	port := c.Port("m")
	delivered := 0
	var last sim.Time
	n := 2000
	for i := 0; i < n; i++ {
		sched.At(sim.Time(i)*800*sim.Microsecond, func() { // 15 Mbps offered
			port.Send(1500, func(r sim.Time) {
				delivered++
				if r > last {
					last = r
				}
			}, func() {})
		})
	}
	sched.Run()
	rate := float64(delivered) * 1500 * 8 / last.Seconds()
	if math.Abs(rate-10e6)/10e6 > 0.1 {
		t.Errorf("chain throughput %.2f Mbps, want ≈10 (bottleneck)", rate/1e6)
	}
}

func TestChainFIFOAcrossHops(t *testing.T) {
	sched := sim.NewScheduler()
	c := NewChain(sched, threeHop())
	port := c.Port("m")
	var order []int
	for i := 0; i < 300; i++ {
		i := i
		sched.At(sim.Time(i)*900*sim.Microsecond, func() {
			port.Send(1500, func(sim.Time) { order = append(order, i) }, nil)
		})
	}
	sched.Run()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatal("chain reordered packets")
		}
	}
}

func TestChainInteriorCrossTraffic(t *testing.T) {
	// CT at the middle hop congests it; probes see extra queueing compared
	// to the same chain without CT.
	delayWith := func(ct bool) sim.Time {
		sched := sim.NewScheduler()
		c := NewChain(sched, threeHop())
		if ct {
			// Overload the 1.25 MB/s middle hop so a standing queue forms.
			c.AddCrossTraffic(1, ConstantBitRate{Rate: 1_400_000, From: 0, To: 3 * sim.Second})
		}
		port := c.Port("m")
		var total sim.Time
		var n int
		for i := 0; i < 20; i++ {
			sched.At(sim.Time(i)*100*sim.Millisecond+sim.Second, func() {
				send := sched.Now()
				port.Send(500, func(r sim.Time) {
					total += r - send
					n++
				}, nil)
			})
		}
		sched.Run()
		return total / sim.Time(n)
	}
	quiet := delayWith(false)
	busy := delayWith(true)
	if busy <= quiet+5*sim.Millisecond {
		t.Errorf("interior CT did not add queueing: quiet=%v busy=%v", quiet, busy)
	}
}

func TestChainDropsAtFullHop(t *testing.T) {
	hops := threeHop()
	hops[1].BufferBytes = 7_500 // 5 packets
	sched := sim.NewScheduler()
	c := NewChain(sched, hops)
	port := c.Port("m")
	delivered, dropped := 0, 0
	sched.At(0, func() {
		for i := 0; i < 50; i++ {
			port.Send(1500, func(sim.Time) { delivered++ }, func() { dropped++ })
		}
	})
	sched.Run()
	if delivered+dropped != 50 {
		t.Fatalf("accounting: %d + %d", delivered, dropped)
	}
	if dropped == 0 {
		t.Error("no drops at the shallow middle hop")
	}
}

func TestChainPanicsOnBadConfig(t *testing.T) {
	for _, hops := range [][]HopConfig{
		nil,
		{{Rate: 0, BufferBytes: 1, PropDelay: 0}},
		{{Rate: 1, BufferBytes: 0, PropDelay: 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", hops)
				}
			}()
			NewChain(sim.NewScheduler(), hops)
		}()
	}
	// Cross-traffic hop out of range panics too.
	c := NewChain(sim.NewScheduler(), threeHop())
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range hop")
		}
	}()
	c.AddCrossTraffic(9, ConstantBitRate{Rate: 1})
}
