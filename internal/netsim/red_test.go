package netsim

import (
	"testing"

	"ibox/internal/cc"
	"ibox/internal/sim"
)

func redCfg() Config {
	cfg := basicCfg() // 10 Mbps, 150 kB buffer, 20 ms
	cfg.BufferBytes = 150_000
	cfg.RED = &REDModel{MinBytes: 30_000, MaxBytes: 120_000}
	return cfg
}

func TestREDValidate(t *testing.T) {
	cfg := redCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid RED rejected: %v", err)
	}
	bad := redCfg()
	bad.RED.MaxBytes = bad.RED.MinBytes
	if bad.Validate() == nil {
		t.Error("max <= min accepted")
	}
	bad2 := redCfg()
	bad2.RED.MaxBytes = bad2.BufferBytes + 1
	if bad2.Validate() == nil {
		t.Error("max beyond buffer accepted")
	}
}

func TestREDNoDropsWhenQueueLow(t *testing.T) {
	// Light load keeps the averaged queue below MinBytes: zero early drops.
	sched := sim.NewScheduler()
	p := New(sched, redCfg())
	port := p.Port("m")
	dropped := 0
	for i := 0; i < 500; i++ {
		sched.At(sim.Time(i)*5*sim.Millisecond, func() { // 2.4 Mbps
			port.Send(1500, nil, func() { dropped++ })
		})
	}
	sched.Run()
	if dropped != 0 {
		t.Errorf("dropped %d at light load", dropped)
	}
}

// TestREDKeepsQueueShorterThanDropTail is the defining AQM property: under
// a loss-based sender, RED's early signals hold the standing queue (and so
// the delay) below what drop-tail allows, at similar throughput.
func TestREDKeepsQueueShorterThanDropTail(t *testing.T) {
	run := func(red bool) (p95 float64, tput float64) {
		cfg := redCfg()
		if !red {
			cfg.RED = nil
		}
		sched := sim.NewScheduler()
		path := New(sched, cfg)
		f := cc.NewFlow(sched, path.Port("m"), cc.NewReno(), cc.FlowConfig{
			Duration: 20 * sim.Second, AckDelay: cfg.PropDelay,
		})
		f.Start()
		sched.RunUntil(24 * sim.Second)
		return f.Trace().DelayPercentile(95), f.Trace().Throughput()
	}
	redP95, redTput := run(true)
	tailP95, tailTput := run(false)
	t.Logf("RED: p95=%.0fms tput=%.2fMbps | drop-tail: p95=%.0fms tput=%.2fMbps",
		redP95, redTput/1e6, tailP95, tailTput/1e6)
	if redP95 >= tailP95 {
		t.Errorf("RED p95 %.0f not below drop-tail %.0f", redP95, tailP95)
	}
	if redTput < 0.6*tailTput {
		t.Errorf("RED throughput %.2f collapsed vs drop-tail %.2f", redTput/1e6, tailTput/1e6)
	}
}

func TestREDCapsMaxQueueBelowBuffer(t *testing.T) {
	// A loss-based sender against drop-tail rides the queue to the full
	// buffer (150 kB ⇒ ≈120 ms max queueing); against RED the early drops
	// arrive around the threshold region, so the maximum observed delay
	// stays well below the buffer limit.
	run := func(red bool) sim.Time {
		cfg := redCfg()
		if !red {
			cfg.RED = nil
		}
		sched := sim.NewScheduler()
		path := New(sched, cfg)
		f := cc.NewFlow(sched, path.Port("m"), cc.NewReno(), cc.FlowConfig{
			Duration: 20 * sim.Second, AckDelay: cfg.PropDelay,
		})
		f.Start()
		sched.RunUntil(24 * sim.Second)
		// Steady state only: RED's slow EWMA cannot pre-empt the initial
		// slow-start spike, so skip the first 5 seconds.
		var mx sim.Time
		for _, p := range f.Trace().Packets {
			if p.Lost || p.SendTime < 5*sim.Second {
				continue
			}
			if d := p.Delay(); d > mx {
				mx = d
			}
		}
		return mx
	}
	redMax := run(true)
	tailMax := run(false)
	t.Logf("steady-state max one-way delay: RED=%v drop-tail=%v", redMax, tailMax)
	// Drop-tail must reach near the buffer limit (20 ms prop + ~120 ms).
	if tailMax < 120*sim.Millisecond {
		t.Fatalf("drop-tail max delay %v: buffer never filled, premise broken", tailMax)
	}
	if redMax >= tailMax-20*sim.Millisecond {
		t.Errorf("RED max delay %v not meaningfully below drop-tail %v", redMax, tailMax)
	}
}
