package netsim

import (
	"ibox/internal/sim"
)

// CrossTraffic is an open-loop competing traffic source attached to a
// bottleneck queue (a Path's single bottleneck or one hop of a Chain).
// Closed-loop cross traffic (e.g. a competing TCP Cubic flow, as in the
// paper's instance test) is built at a higher layer by attaching a second
// cc.Flow to its own Port.
type CrossTraffic interface {
	start(inj injector)
}

// injector is where a cross-traffic source drops its bytes.
type injector struct {
	sched   *sim.Scheduler
	enqueue func(size int)
}

// ConstantBitRate emits PacketSize-byte packets at Rate bytes/sec during
// [From, To).
type ConstantBitRate struct {
	Rate       float64  // bytes per second
	PacketSize int      // bytes; 1500 if zero
	From, To   sim.Time // active interval; To=0 means forever
}

func (c ConstantBitRate) start(p injector) {
	size := c.PacketSize
	if size <= 0 {
		size = 1500
	}
	if c.Rate <= 0 {
		return
	}
	gap := sim.Time(float64(size) / c.Rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	var tick func()
	tick = func() {
		now := p.sched.Now()
		if c.To > 0 && now >= c.To {
			return
		}
		if now >= c.From {
			p.enqueue(size)
		}
		p.sched.After(gap, tick)
	}
	at := c.From
	if at < p.sched.Now() {
		at = p.sched.Now()
	}
	p.sched.At(at, tick)
}

// Poisson emits PacketSize-byte packets as a Poisson process with the given
// mean rate during [From, To).
type Poisson struct {
	MeanRate   float64 // bytes per second
	PacketSize int     // bytes; 1500 if zero
	From, To   sim.Time
	Seed       int64
}

func (c Poisson) start(p injector) {
	size := c.PacketSize
	if size <= 0 {
		size = 1500
	}
	if c.MeanRate <= 0 {
		return
	}
	rng := sim.NewRand(c.Seed, 17)
	meanGap := float64(size) / c.MeanRate // seconds
	var tick func()
	tick = func() {
		now := p.sched.Now()
		if c.To > 0 && now >= c.To {
			return
		}
		if now >= c.From {
			p.enqueue(size)
		}
		gap := sim.FromSeconds(rng.ExpFloat64() * meanGap)
		if gap < 1 {
			gap = 1
		}
		p.sched.After(gap, tick)
	}
	at := c.From
	if at < p.sched.Now() {
		at = p.sched.Now()
	}
	p.sched.At(at, tick)
}

// OnOff alternates between bursting at Rate for OnDur and silence for
// OffDur, starting at From.
type OnOff struct {
	Rate       float64 // bytes per second while on
	PacketSize int
	OnDur      sim.Time
	OffDur     sim.Time
	From, To   sim.Time
}

func (c OnOff) start(p injector) {
	size := c.PacketSize
	if size <= 0 {
		size = 1500
	}
	if c.Rate <= 0 || c.OnDur <= 0 {
		return
	}
	gap := sim.Time(float64(size) / c.Rate * float64(sim.Second))
	if gap < 1 {
		gap = 1
	}
	period := c.OnDur + c.OffDur
	var tick func()
	tick = func() {
		now := p.sched.Now()
		if c.To > 0 && now >= c.To {
			return
		}
		if now >= c.From {
			phase := (now - c.From) % period
			if phase < c.OnDur {
				p.enqueue(size)
			}
		}
		p.sched.After(gap, tick)
	}
	at := c.From
	if at < p.sched.Now() {
		at = p.sched.Now()
	}
	p.sched.At(at, tick)
}

// Replay injects cross traffic following a recorded byte-count series:
// during window i of the series, Bytes[i] bytes are sent as evenly spaced
// PacketSize-byte packets. This is how the iBoxNet emulator recreates the
// estimated cross traffic (§3, Fig 1: "learns cross traffic and emulates it
// using a sender C").
type Replay struct {
	Start      sim.Time
	Step       sim.Time
	Bytes      []float64 // bytes per window
	PacketSize int
}

func (c Replay) start(p injector) {
	size := c.PacketSize
	if size <= 0 {
		size = 1500
	}
	if c.Step <= 0 {
		return
	}
	for i, b := range c.Bytes {
		n := int(b / float64(size))
		rem := int(b) - n*size
		winStart := c.Start + sim.Time(i)*c.Step
		if n == 0 && rem < 40 {
			continue
		}
		total := n
		if rem >= 40 {
			total++
		}
		gap := c.Step / sim.Time(total)
		for j := 0; j < total; j++ {
			at := winStart + sim.Time(j)*gap
			if at < p.sched.Now() {
				at = p.sched.Now()
			}
			sz := size
			if j == n { // the remainder packet
				sz = rem
			}
			p.sched.At(at, func() { p.enqueue(sz) })
		}
	}
}
