package netsim

import (
	"fmt"

	"ibox/internal/sim"
)

// Chain is a multi-hop network path: a sequence of store-and-forward hops,
// each with its own service rate, FIFO byte-limited queue and propagation
// delay. It exists to stress iBoxNet's single-bottleneck assumption
// (§3.2: the model family covers one bottleneck link; real paths have
// several queues, usually with one dominating) and to host cross traffic
// that joins or leaves at interior hops.
type Chain struct {
	sched *sim.Scheduler
	hops  []*link
	cfg   []HopConfig
}

// HopConfig describes one hop of a chain.
type HopConfig struct {
	Rate        float64  // bytes per second
	BufferBytes int      // FIFO capacity
	PropDelay   sim.Time // propagation after this hop's queue
}

// NewChain builds a chain on the scheduler; it panics on an invalid
// configuration (construction-time misuse).
func NewChain(sched *sim.Scheduler, hops []HopConfig) *Chain {
	if len(hops) == 0 {
		panic("netsim: chain needs at least one hop")
	}
	c := &Chain{sched: sched, cfg: hops}
	for i, h := range hops {
		if h.Rate <= 0 || h.BufferBytes <= 0 || h.PropDelay < 0 {
			panic(fmt.Sprintf("netsim: invalid hop %d: %+v", i, h))
		}
		c.hops = append(c.hops, newLink(sched, h.Rate, h.BufferBytes))
	}
	return c
}

// Hops returns the number of hops.
func (c *Chain) Hops() int { return len(c.hops) }

// QueueBytes returns hop i's current backlog.
func (c *Chain) QueueBytes(i int) int { return c.hops[i].queuedBytes }

// ChainPort is a flow's handle onto the chain (same contract as
// Path's Port: the cc.Network send side).
type ChainPort struct {
	chain *Chain
	name  string
}

// Port creates a named attachment point entering at the first hop.
func (c *Chain) Port(name string) *ChainPort { return &ChainPort{chain: c, name: name} }

// Now returns the current simulation time.
func (cp *ChainPort) Now() sim.Time { return cp.chain.sched.Now() }

// Send injects a packet at hop 0; it traverses every hop's queue and
// propagation in order. Exactly one of the callbacks eventually fires.
func (cp *ChainPort) Send(size int, onDeliver func(recv sim.Time), onDrop func()) {
	cp.chain.inject(0, size, onDeliver, onDrop)
}

// inject enqueues at hop i and forwards onward on service completion.
func (c *Chain) inject(i int, size int, onDeliver func(recv sim.Time), onDrop func()) {
	if i >= len(c.hops) {
		if onDeliver != nil {
			onDeliver(c.sched.Now())
		}
		return
	}
	ok := c.hops[i].enqueue(size, func() {
		c.sched.After(c.cfg[i].PropDelay, func() {
			c.inject(i+1, size, onDeliver, onDrop)
		})
	})
	if !ok {
		if onDrop != nil {
			onDrop()
		}
	}
}

// AddCrossTraffic attaches an open-loop source at the given hop; its bytes
// occupy that hop's queue only (they exit the path there, like traffic
// merging and diverging at an interior router).
func (c *Chain) AddCrossTraffic(hop int, src CrossTraffic) {
	if hop < 0 || hop >= len(c.hops) {
		panic(fmt.Sprintf("netsim: cross-traffic hop %d out of range", hop))
	}
	l := c.hops[hop]
	src.start(injector{sched: c.sched, enqueue: func(size int) {
		l.enqueue(size, func() {})
	}})
}
