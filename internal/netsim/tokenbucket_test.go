package netsim

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func TestTokenBucketValidate(t *testing.T) {
	cfg := basicCfg()
	cfg.TokenBucket = &TokenBucketModel{FillRate: 0, BurstBytes: 1000}
	if cfg.Validate() == nil {
		t.Error("zero fill rate accepted")
	}
	cfg.TokenBucket = &TokenBucketModel{FillRate: 1000, BurstBytes: 0}
	if cfg.Validate() == nil {
		t.Error("zero burst accepted")
	}
	cfg.TokenBucket = &TokenBucketModel{FillRate: 1000, BurstBytes: 1000}
	cfg.Cellular = &CellularModel{Interval: sim.Second, Sigma: 0.1, MinShare: 0.5, MaxShare: 1}
	if cfg.Validate() == nil {
		t.Error("token bucket + cellular accepted")
	}
}

func TestTokenBucketLimitsSustainedRate(t *testing.T) {
	// Link at 10 Mbps but shaped to 2 Mbps (250 kB/s) with a 30 kB bucket:
	// offered load at 8 Mbps must be delivered at ≈2 Mbps long-term.
	cfg := basicCfg()
	cfg.BufferBytes = 10_000_000
	cfg.TokenBucket = &TokenBucketModel{FillRate: 250_000, BurstBytes: 30_000}
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("m")
	var lastRecv sim.Time
	delivered := 0
	n := 4000
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 1500 * sim.Microsecond // 1 MB/s offered
		sched.At(at, func() {
			port.Send(1500, func(r sim.Time) {
				delivered++
				if r > lastRecv {
					lastRecv = r
				}
			}, nil)
		})
	}
	sched.Run()
	if delivered != n {
		t.Fatalf("delivered %d of %d", delivered, n)
	}
	// 6 MB delivered over lastRecv seconds at ≈250 kB/s ⇒ ≈24 s.
	gotRate := float64(n*1500) / lastRecv.Seconds()
	if math.Abs(gotRate-250_000)/250_000 > 0.05 {
		t.Errorf("sustained shaped rate = %.0f B/s, want ≈250000", gotRate)
	}
}

func TestTokenBucketAllowsBurst(t *testing.T) {
	// A burst within the bucket depth passes at full link speed.
	cfg := basicCfg() // 10 Mbps link
	cfg.BufferBytes = 10_000_000
	cfg.TokenBucket = &TokenBucketModel{FillRate: 125_000, BurstBytes: 30_000}
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("m")
	var recvs []sim.Time
	sched.At(0, func() {
		for i := 0; i < 20; i++ { // 30 kB: exactly the bucket
			port.Send(1500, func(r sim.Time) { recvs = append(recvs, r) }, nil)
		}
	})
	sched.Run()
	if len(recvs) != 20 {
		t.Fatalf("delivered %d", len(recvs))
	}
	// First 20 packets: tokens are available, so spacing = serialization
	// at the 10 Mbps link rate (1.2 ms), not the 12 ms shaped spacing.
	for i := 1; i < 20; i++ {
		gap := recvs[i] - recvs[i-1]
		if gap > 2*sim.Millisecond {
			t.Fatalf("packet %d gap %v: burst not passed at line rate", i, gap)
		}
	}
}

func TestTokenBucketPostBurstShaped(t *testing.T) {
	// After the bucket empties, spacing = size/fillRate.
	cfg := basicCfg()
	cfg.BufferBytes = 10_000_000
	cfg.TokenBucket = &TokenBucketModel{FillRate: 125_000, BurstBytes: 3_000}
	sched := sim.NewScheduler()
	p := New(sched, cfg)
	port := p.Port("m")
	var recvs []sim.Time
	sched.At(0, func() {
		for i := 0; i < 30; i++ {
			port.Send(1500, func(r sim.Time) { recvs = append(recvs, r) }, nil)
		}
	})
	sched.Run()
	want := sim.Time(1500.0 / 125_000 * float64(sim.Second)) // 12 ms
	for i := 10; i < 30; i++ {
		gap := recvs[i] - recvs[i-1]
		if math.Abs(float64(gap-want)) > float64(sim.Millisecond) {
			t.Fatalf("packet %d shaped gap %v, want ≈%v", i, gap, want)
		}
	}
}
