// Package netsim is a from-scratch discrete-event simulator of a network
// path: access link → single bottleneck (FIFO, byte-limited, drop-tail) →
// receiver, with competing cross-traffic, optional time-varying (cellular)
// bottleneck rate, optional random loss, and optional multipath reordering.
//
// netsim plays the role of the *real network* in this reproduction: it
// generates the ground-truth input–output traces that iBoxNet (internal/
// iboxnet) and iBoxML (internal/iboxml) must learn to imitate. It is
// deliberately richer than the single-bottleneck model family iBoxNet
// assumes (variable rate, reordering), so the model-mismatch phenomena the
// paper studies in Figs 3, 5 and 8 arise naturally.
package netsim

import (
	"fmt"
	"math"

	"ibox/internal/sim"
)

// Config describes a network path.
type Config struct {
	// Rate is the base bottleneck service rate in bytes per second.
	Rate float64
	// BufferBytes is the bottleneck FIFO capacity in bytes (drop-tail).
	BufferBytes int
	// PropDelay is the one-way propagation delay, split evenly before and
	// after the bottleneck queue.
	PropDelay sim.Time
	// LossProb is an optional i.i.d. random packet-loss probability applied
	// on the wire (after the queue), independent of buffer overflow.
	LossProb float64
	// Cellular, when non-nil, modulates the bottleneck rate over time, as in
	// a cellular link with proportional-fair scheduling (§3.1.1).
	Cellular *CellularModel
	// Reorder, when non-nil, gives some packets an alternate path that
	// bypasses the bottleneck queue, producing realistic reordering (§5.1).
	Reorder *ReorderModel
	// TokenBucket, when non-nil, regulates the bottleneck like a shaper:
	// packets are released only when enough tokens (accumulating at
	// FillRate up to BurstBytes) are available, and are then serialized at
	// the full link Rate. §3.2 names token-bucket regulators as a
	// variable-bandwidth behaviour outside iBoxNet's single-FIFO model
	// family. Mutually exclusive with Cellular.
	TokenBucket *TokenBucketModel
	// PFCell, when non-nil, replaces the bottleneck's rate process with a
	// multi-user proportional-fair cellular cell (per-TTI Rayleigh fading
	// and PF scheduling, §3.1.1's citation [27]). Mutually exclusive with
	// Cellular and TokenBucket; Rate is ignored in favour of the cell's
	// allocation.
	PFCell *PFCellModel
	// RED, when non-nil, applies Random Early Detection at the bottleneck
	// instead of pure drop-tail (see REDModel).
	RED *REDModel
	// Jitter, when positive, adds NetEm-style random delay variation: each
	// packet's post-queue propagation is perturbed by |N(0, Jitter²)|,
	// clamped so delivery order is preserved (FIFO jitter cannot reorder;
	// use Reorder for that).
	Jitter sim.Time
	// Seed drives all stochastic behaviour of the path.
	Seed int64
}

// TokenBucketModel parameterizes a token-bucket shaper at the bottleneck.
type TokenBucketModel struct {
	FillRate   float64 // bytes per second of token accrual
	BurstBytes int     // bucket depth
}

// CellularModel modulates the bottleneck rate with a bounded geometric
// random walk: every Interval the multiplicative share is perturbed by
// exp(N(0, Sigma²)) and clamped to [MinShare, MaxShare]. This mimics the
// time-varying per-user allocation of a proportional-fair cellular
// scheduler without simulating the whole cell.
type CellularModel struct {
	Interval sim.Time // share update period (e.g. 100 ms)
	Sigma    float64  // volatility of the log share per step
	MinShare float64  // lower clamp on share of base rate
	MaxShare float64  // upper clamp on share of base rate
}

// ReorderModel sends each packet, with probability Prob, down an alternate
// path that skips the bottleneck queue and instead experiences an extra
// delay uniform in [ExtraMin, ExtraMax] on top of the propagation delay.
// When the queue is deep, alternate-path packets overtake queued ones,
// producing reordering correlated with congestion — the behaviour Fig 5 and
// Fig 8 study.
type ReorderModel struct {
	Prob     float64
	ExtraMin sim.Time
	ExtraMax sim.Time
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("netsim: rate must be positive, got %v", c.Rate)
	}
	if c.BufferBytes <= 0 {
		return fmt.Errorf("netsim: buffer must be positive, got %d", c.BufferBytes)
	}
	if c.PropDelay < 0 {
		return fmt.Errorf("netsim: negative propagation delay")
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("netsim: loss probability %v outside [0,1)", c.LossProb)
	}
	if c.Reorder != nil && (c.Reorder.Prob < 0 || c.Reorder.Prob > 1) {
		return fmt.Errorf("netsim: reorder probability %v outside [0,1]", c.Reorder.Prob)
	}
	if c.Cellular != nil {
		cm := c.Cellular
		if cm.Interval <= 0 || cm.MinShare <= 0 || cm.MaxShare < cm.MinShare {
			return fmt.Errorf("netsim: invalid cellular model %+v", *cm)
		}
	}
	if tb := c.TokenBucket; tb != nil {
		if tb.FillRate <= 0 || tb.BurstBytes <= 0 {
			return fmt.Errorf("netsim: invalid token bucket %+v", *tb)
		}
		if c.Cellular != nil {
			return fmt.Errorf("netsim: token bucket and cellular model are mutually exclusive")
		}
	}
	if pf := c.PFCell; pf != nil {
		if pf.PeakRate <= 0 {
			return fmt.Errorf("netsim: PF cell needs a positive peak rate")
		}
		if c.Cellular != nil || c.TokenBucket != nil {
			return fmt.Errorf("netsim: PF cell is mutually exclusive with cellular/token-bucket models")
		}
	}
	if r := c.RED; r != nil {
		if r.MinBytes <= 0 || r.MaxBytes <= r.MinBytes || r.MaxBytes > c.BufferBytes {
			return fmt.Errorf("netsim: invalid RED thresholds %+v (buffer %d)", *r, c.BufferBytes)
		}
	}
	if c.Jitter < 0 {
		return fmt.Errorf("netsim: negative jitter")
	}
	return nil
}

// Path is an instantiated network path bound to a scheduler. Flows send
// through Ports; open-loop cross traffic attaches via AddCrossTraffic.
type Path struct {
	sched *sim.Scheduler
	cfg   Config
	link  *link
	rng   *randState
	// lastDeliver is the latest scheduled main-path delivery, used to keep
	// jittered deliveries FIFO.
	lastDeliver sim.Time
}

type randState struct {
	loss    *randSource
	reorder *randSource
	cell    *randSource
	jitter  *randSource
}

// randSource is a tiny wrapper so the three stochastic subsystems consume
// independent streams.
type randSource struct {
	r interface{ Float64() float64 }
}

func (s *randSource) Float64() float64 { return s.r.Float64() }

// New creates a path on the given scheduler. It panics on an invalid
// configuration (construction-time misuse, not a runtime condition).
//
// A path with a Cellular model keeps a recurring rate-update event
// scheduled forever; drive such simulations with Scheduler.RunUntil rather
// than Run.
func New(sched *sim.Scheduler, cfg Config) *Path {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Path{
		sched: sched,
		cfg:   cfg,
		rng: &randState{
			loss:    &randSource{sim.NewRand(cfg.Seed, 1)},
			reorder: &randSource{sim.NewRand(cfg.Seed, 2)},
			cell:    &randSource{sim.NewRand(cfg.Seed, 3)},
			jitter:  &randSource{sim.NewRand(cfg.Seed, 5)},
		},
	}
	p.link = newLink(sched, cfg.Rate, cfg.BufferBytes)
	if tb := cfg.TokenBucket; tb != nil {
		p.link.tb = &tokenBucket{
			fillRate: tb.FillRate,
			burst:    float64(tb.BurstBytes),
			tokens:   float64(tb.BurstBytes), // starts full
		}
	}
	if pf := cfg.PFCell; pf != nil {
		startPFCell(sched, p.link, *pf, p.rng.cell)
	}
	if r := cfg.RED; r != nil {
		p.link.red = &redState{
			cfg:  r.withDefaults(),
			rng:  &randSource{sim.NewRand(cfg.Seed, 4)},
			rate: cfg.Rate,
		}
	}
	if cm := cfg.Cellular; cm != nil {
		share := 1.0
		var step func()
		step = func() {
			// Geometric random walk on the share, clamped.
			g := gaussian(p.rng.cell)
			share *= math.Exp(cm.Sigma * g)
			if share < cm.MinShare {
				share = cm.MinShare
			}
			if share > cm.MaxShare {
				share = cm.MaxShare
			}
			p.link.setRate(cfg.Rate * share)
			sched.After(cm.Interval, step)
		}
		sched.After(cm.Interval, step)
	}
	return p
}

// gaussian draws a standard normal via Box–Muller from a uniform source.
func gaussian(u *randSource) float64 {
	a := u.Float64()
	for a == 0 {
		a = u.Float64()
	}
	b := u.Float64()
	return math.Sqrt(-2*math.Log(a)) * math.Cos(2*math.Pi*b)
}

// Scheduler returns the scheduler the path runs on.
func (p *Path) Scheduler() *sim.Scheduler { return p.sched }

// Config returns the path's configuration.
func (p *Path) Config() Config { return p.cfg }

// CurrentRate returns the instantaneous bottleneck rate in bytes/sec.
func (p *Path) CurrentRate() float64 { return p.link.rate }

// QueueBytes returns the current bottleneck backlog in bytes.
func (p *Path) QueueBytes() int { return p.link.queuedBytes }

// Port is a flow's handle onto the path; it implements the send side of
// the cc.Network contract.
type Port struct {
	path *Path
	name string
}

// Port creates a named attachment point for one flow.
func (p *Path) Port(name string) *Port { return &Port{path: p, name: name} }

// Now returns the current simulation time.
func (pt *Port) Now() sim.Time { return pt.path.sched.Now() }

// Send injects a packet of the given size. Exactly one of onDeliver (with
// the receiver-side timestamp) or onDrop is eventually invoked, via the
// scheduler. Either callback may be nil.
func (pt *Port) Send(size int, onDeliver func(recv sim.Time), onDrop func()) {
	p := pt.path
	half := p.cfg.PropDelay / 2
	deliver := func() {
		if onDeliver != nil {
			onDeliver(p.sched.Now())
		}
	}
	drop := func() {
		if onDrop != nil {
			onDrop()
		}
	}

	// Multipath: some packets bypass the bottleneck entirely.
	if rm := p.cfg.Reorder; rm != nil && p.rng.reorder.Float64() < rm.Prob {
		extra := rm.ExtraMin
		if rm.ExtraMax > rm.ExtraMin {
			extra += sim.Time(p.rng.reorder.Float64() * float64(rm.ExtraMax-rm.ExtraMin))
		}
		p.sched.After(p.cfg.PropDelay+extra, deliver)
		return
	}

	// Main path: pre-propagation, queue, post-propagation (+ optional
	// jitter and random loss).
	p.sched.After(half, func() {
		ok := p.link.enqueue(size, func() {
			if p.cfg.LossProb > 0 && p.rng.loss.Float64() < p.cfg.LossProb {
				drop()
				return
			}
			post := half
			if p.cfg.Jitter > 0 {
				post += sim.Time(math.Abs(gaussian(p.rng.jitter)) * float64(p.cfg.Jitter))
			}
			at := p.sched.Now() + post
			// FIFO clamp: a small jitter draw must not overtake an earlier
			// large one.
			if at <= p.lastDeliver {
				at = p.lastDeliver + 1
			}
			p.lastDeliver = at
			p.sched.At(at, deliver)
		})
		if !ok {
			drop()
		}
	})
}

// AddCrossTraffic attaches an open-loop cross-traffic source whose packets
// enter the same bottleneck queue (and are discarded at the far end).
// Cross traffic originates adjacent to the bottleneck, so it skips the
// access propagation; overflowing cross-traffic packets drop silently.
func (p *Path) AddCrossTraffic(src CrossTraffic) {
	src.start(injector{sched: p.sched, enqueue: func(size int) {
		p.link.enqueue(size, func() {})
	}})
}

// link is the bottleneck: a FIFO byte-limited queue drained at rate
// bytes/sec. Rate changes take effect at the next packet's service start.
// With a token bucket attached, each packet additionally waits until the
// bucket holds its size in tokens before serialization begins.
type link struct {
	sched       *sim.Scheduler
	rate        float64
	capacity    int
	queuedBytes int
	queue       []queued
	busy        bool
	tb          *tokenBucket
	red         *redState
}

// tokenBucket tracks shaper state; tokens refill lazily on access.
type tokenBucket struct {
	fillRate float64
	burst    float64
	tokens   float64
	last     sim.Time
}

// take refills the bucket to now, then either consumes size tokens and
// returns 0, or returns how long until size tokens will be available.
func (tb *tokenBucket) take(now sim.Time, size int) sim.Time {
	tb.tokens += tb.fillRate * (now - tb.last).Seconds()
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	need := float64(size) - tb.tokens
	if need <= 0 {
		tb.tokens -= float64(size)
		return 0
	}
	wait := sim.Time(need / tb.fillRate * float64(sim.Second))
	if wait < 1 {
		wait = 1
	}
	return wait
}

type queued struct {
	size int
	done func() // invoked when the packet finishes service
}

func newLink(sched *sim.Scheduler, rate float64, capacity int) *link {
	return &link{sched: sched, rate: rate, capacity: capacity}
}

func (l *link) setRate(r float64) {
	if r > 0 {
		l.rate = r
	}
}

// enqueue adds a packet; returns false on drop (RED early drop or
// drop-tail overflow).
func (l *link) enqueue(size int, done func()) bool {
	if l.red != nil && !l.red.admit(l.sched.Now(), l.queuedBytes) {
		return false
	}
	if l.queuedBytes+size > l.capacity {
		return false
	}
	l.queuedBytes += size
	l.queue = append(l.queue, queued{size, done})
	if !l.busy {
		l.serveNext()
	}
	return true
}

func (l *link) serveNext() {
	if len(l.queue) == 0 {
		l.busy = false
		if l.red != nil {
			l.red.markIdle(l.sched.Now())
		}
		return
	}
	l.busy = true
	head := l.queue[0]
	if l.tb != nil {
		if wait := l.tb.take(l.sched.Now(), head.size); wait > 0 {
			// Not enough tokens yet: hold the head until the bucket refills.
			l.sched.After(wait, l.serveNext)
			return
		}
	}
	l.queue = l.queue[1:]
	service := sim.Time(float64(head.size) / l.rate * float64(sim.Second))
	if service < 1 {
		service = 1
	}
	l.sched.After(service, func() {
		l.queuedBytes -= head.size
		head.done()
		l.serveNext()
	})
}
