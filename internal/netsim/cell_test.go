package netsim

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func pfCfg(background int, seed int64) Config {
	return Config{
		Rate:        1_250_000, // ignored by PF cell but must validate
		BufferBytes: 1_000_000,
		PropDelay:   20 * sim.Millisecond,
		PFCell: &PFCellModel{
			PeakRate:   1_250_000,
			Background: background,
		},
		Seed: seed,
	}
}

func TestPFCellValidate(t *testing.T) {
	cfg := pfCfg(3, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid PF config rejected: %v", err)
	}
	bad := pfCfg(3, 1)
	bad.PFCell.PeakRate = 0
	if bad.Validate() == nil {
		t.Error("zero peak rate accepted")
	}
	both := pfCfg(3, 1)
	both.Cellular = &CellularModel{Interval: sim.Second, Sigma: 0.1, MinShare: 0.5, MaxShare: 1}
	if both.Validate() == nil {
		t.Error("PF + cellular accepted")
	}
}

func TestPFCellRateVariesAndStaysPositive(t *testing.T) {
	sched := sim.NewScheduler()
	p := New(sched, pfCfg(4, 7))
	seen := map[float64]bool{}
	minRate := math.Inf(1)
	for i := 1; i <= 200; i++ {
		sched.At(sim.Time(i)*50*sim.Millisecond, func() {
			r := p.CurrentRate()
			seen[r] = true
			if r < minRate {
				minRate = r
			}
		})
	}
	sched.RunUntil(11 * sim.Second)
	if len(seen) < 50 {
		t.Errorf("PF rate took only %d distinct values", len(seen))
	}
	if minRate <= 0 {
		t.Errorf("rate dropped to %v", minRate)
	}
}

func TestPFCellShareDecreasesWithUsers(t *testing.T) {
	meanRate := func(background int) float64 {
		sched := sim.NewScheduler()
		p := New(sched, pfCfg(background, 3))
		sum, n := 0.0, 0
		for i := 1; i <= 400; i++ {
			sched.At(sim.Time(i)*25*sim.Millisecond, func() {
				sum += p.CurrentRate()
				n++
			})
		}
		sched.RunUntil(11 * sim.Second)
		return sum / float64(n)
	}
	alone := meanRate(0)
	shared := meanRate(4)
	if !(shared < alone) {
		t.Errorf("share with 4 competitors (%.0f) not below solo (%.0f)", shared, alone)
	}
	// PF with 5 homogeneous users: roughly a fifth of solo, with
	// multi-user diversity gain allowed (factor 2 slack).
	if shared < alone/15 || shared > alone/2 {
		t.Errorf("5-user share %.0f vs solo %.0f outside plausible PF range", shared, alone)
	}
}

func TestPFCellCarriesTraffic(t *testing.T) {
	sched := sim.NewScheduler()
	p := New(sched, pfCfg(2, 9))
	port := p.Port("m")
	delivered := 0
	// Offer 0.2 Mbps — far below any plausible share — and expect ~all
	// packets through with bounded delay.
	for i := 0; i < 200; i++ {
		sched.At(sim.Time(i)*60*sim.Millisecond, func() {
			port.Send(1500, func(sim.Time) { delivered++ }, nil)
		})
	}
	sched.RunUntil(20 * sim.Second)
	if delivered < 195 {
		t.Errorf("delivered %d of 200 at light load", delivered)
	}
}

func TestPFCellDeterministic(t *testing.T) {
	run := func() float64 {
		sched := sim.NewScheduler()
		p := New(sched, pfCfg(3, 21))
		var last float64
		sched.At(5*sim.Second, func() { last = p.CurrentRate() })
		sched.RunUntil(6 * sim.Second)
		return last
	}
	if a, b := run(), run(); a != b {
		t.Errorf("PF cell not deterministic: %v vs %v", a, b)
	}
}
