package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ibox/internal/sim"
)

func TestWasserstein1Identical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if w := Wasserstein1(a, a); w != 0 {
		t.Errorf("W1(a,a) = %v", w)
	}
}

func TestWasserstein1Shift(t *testing.T) {
	// Shifting a distribution by c moves all mass by c: W1 = c.
	rng := sim.NewRand(1, 0)
	var a, b []float64
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()
		a = append(a, v)
		b = append(b, v+2.5)
	}
	if w := Wasserstein1(a, b); math.Abs(w-2.5) > 1e-9 {
		t.Errorf("W1 of 2.5-shift = %v", w)
	}
}

func TestWasserstein1UnequalSizes(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1}
	if w := Wasserstein1(a, b); math.Abs(w-1) > 1e-9 {
		t.Errorf("W1 = %v, want 1", w)
	}
	if !math.IsNaN(Wasserstein1(nil, b)) {
		t.Error("empty input should give NaN")
	}
}

// Property: W1 is symmetric, non-negative, and bounded by the range of the
// combined support.
func TestWasserstein1Property(t *testing.T) {
	prop := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		clampSlice(a)
		clampSlice(b)
		w1 := Wasserstein1(a, b)
		w2 := Wasserstein1(b, a)
		if math.Abs(w1-w2) > 1e-9*(1+math.Abs(w1)) {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range append(append([]float64{}, a...), b...) {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return w1 >= -1e-12 && w1 <= hi-lo+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clampSlice(xs []float64) {
	for i := range xs {
		if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
			xs[i] = 0
		}
		xs[i] = math.Mod(xs[i], 1e6)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// y = exp(x) is a nonlinear but monotone map: Spearman = 1 exactly.
	var a, b []float64
	for i := 0; i < 50; i++ {
		a = append(a, float64(i))
		b = append(b, math.Exp(float64(i)/10))
	}
	if s := Spearman(a, b); math.Abs(s-1) > 1e-12 {
		t.Errorf("Spearman of monotone map = %v", s)
	}
	// Reverse: -1.
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	if s := Spearman(a, b); math.Abs(s+1) > 1e-12 {
		t.Errorf("Spearman of reversed = %v", s)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{10, 20, 20, 30}
	if s := Spearman(a, b); math.Abs(s-1) > 1e-12 {
		t.Errorf("Spearman with ties = %v", s)
	}
	if !math.IsNaN(Spearman([]float64{1}, []float64{2})) {
		t.Error("n<2 should give NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 2}, []float64{1})) {
		t.Error("length mismatch should give NaN")
	}
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{5, 1, 5, 3})
	want := []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
