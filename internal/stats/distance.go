package stats

import (
	"math"
	"sort"
)

// Wasserstein1 computes the first Wasserstein (earth mover's) distance
// between two one-dimensional empirical distributions: the area between
// their quantile functions. Unlike the KS statistic it weighs *how far*
// mass must move, which makes it the better scalar for comparing delay
// distributions whose supports overlap but whose tails differ.
func Wasserstein1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)
	// Integrate |F⁻¹_a(q) − F⁻¹_b(q)| over the merged quantile grid.
	total := 0.0
	i, j := 0, 0
	qi, qj := 0.0, 0.0
	for i < len(x) && j < len(y) {
		nqi := float64(i+1) / float64(len(x))
		nqj := float64(j+1) / float64(len(y))
		step := math.Min(nqi, nqj) - math.Max(qi, qj)
		if step > 0 {
			total += step * math.Abs(x[i]-y[j])
		}
		if nqi <= nqj {
			qi = nqi
			i++
		}
		if nqj <= nqi {
			qj = nqj
			j++
		}
	}
	return total
}

// Spearman returns the Spearman rank-correlation coefficient of two
// equal-length samples: Pearson correlation of their ranks, robust to
// monotone transformations (useful for rate/delay series whose
// relationship is monotone but not linear). Ties get average ranks.
func Spearman(a, b []float64) float64 {
	n := len(a)
	if len(b) != n || n < 2 {
		return math.NaN()
	}
	return CrossCorrelation(ranks(a), ranks(b))
}

// ranks returns average ranks (1-based) of xs.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
