package stats

import (
	"math"

	"ibox/internal/sim"
)

// KMeansResult holds a clustering of points into k clusters.
type KMeansResult struct {
	Centroids  [][]float64
	Assignment []int   // cluster index per input point
	Inertia    float64 // sum of squared distances to assigned centroids
}

// KMeans clusters points (each a d-dimensional vector) into k clusters
// using k-means++ seeding and Lloyd iterations. The seed makes the run
// deterministic. It panics if k exceeds the number of points (caller bug).
func KMeans(points [][]float64, k int, seed int64) KMeansResult {
	n := len(points)
	if k <= 0 || n < k {
		panic("stats: KMeans requires 0 < k <= len(points)")
	}
	d := len(points[0])
	rng := sim.NewRand(seed, 99)

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	dist2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if dd := sq(L2(p, c)); dd < best {
					best = dd
				}
			}
			dist2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, dd := range dist2 {
				acc += dd
				if acc >= r {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestJ := math.Inf(1), 0
			for j, c := range centroids {
				if dd := sq(L2(p, c)); dd < best {
					best, bestJ = dd, j
				}
			}
			if assign[i] != bestJ {
				assign[i] = bestJ
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for j := range sums {
			sums[j] = make([]float64, d)
		}
		for i, p := range points {
			counts[assign[i]]++
			for dd, v := range p {
				sums[assign[i]][dd] += v
			}
		}
		for j := range centroids {
			if counts[j] == 0 {
				continue // keep the old centroid for an empty cluster
			}
			for dd := range centroids[j] {
				centroids[j][dd] = sums[j][dd] / float64(counts[j])
			}
		}
	}

	inertia := 0.0
	for i, p := range points {
		inertia += sq(L2(p, centroids[assign[i]]))
	}
	return KMeansResult{Centroids: centroids, Assignment: assign, Inertia: inertia}
}

func sq(x float64) float64 { return x * x }

// ClusterPurity measures how well a clustering recovers known labels: for
// each cluster it counts the majority true label, and returns the fraction
// of points covered by their cluster's majority. 1.0 means the clustering
// is perfect up to relabelling — the paper's "clustering ... is perfect,
// i.e., with no mistakes" criterion for the instance test.
func ClusterPurity(assignment, truth []int) float64 {
	if len(assignment) != len(truth) || len(assignment) == 0 {
		return 0
	}
	counts := map[int]map[int]int{}
	for i, c := range assignment {
		if counts[c] == nil {
			counts[c] = map[int]int{}
		}
		counts[c][truth[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assignment))
}
