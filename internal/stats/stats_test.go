package stats

import (
	"math"
	"testing"
	"testing/quick"

	"ibox/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty slice should give NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %v, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v, want 5", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Errorf("p25 = %v, want 2", p)
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("bad summary: %+v", s)
	}
	if !almost(s.P50, 50.5, 1e-9) || !almost(s.Mean, 50.5, 1e-9) {
		t.Errorf("P50=%v Mean=%v, want 50.5", s.P50, s.Mean)
	}
	if !almost(s.P25, 25.75, 1e-9) || !almost(s.P75, 75.25, 1e-9) {
		t.Errorf("P25=%v P75=%v", s.P25, s.P75)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty summary should be NaN")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	rng := sim.NewRand(1, 0)
	var a []float64
	for i := 0; i < 500; i++ {
		a = append(a, rng.NormFloat64())
	}
	r := KSTest(a, a)
	if r.Statistic != 0 {
		t.Errorf("KS statistic of identical samples = %v, want 0", r.Statistic)
	}
	if r.PValue < 0.99 {
		t.Errorf("p-value = %v, want ≈1", r.PValue)
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := sim.NewRand(2, 0)
	var a, b []float64
	for i := 0; i < 800; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64())
	}
	r := KSTest(a, b)
	if r.PValue < 0.01 {
		t.Errorf("same-distribution samples rejected: D=%v p=%v", r.Statistic, r.PValue)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := sim.NewRand(3, 0)
	var a, b []float64
	for i := 0; i < 500; i++ {
		a = append(a, rng.NormFloat64())
		b = append(b, rng.NormFloat64()+1) // shifted
	}
	r := KSTest(a, b)
	if r.PValue > 1e-6 {
		t.Errorf("shifted distributions not detected: D=%v p=%v", r.Statistic, r.PValue)
	}
	if r.Statistic < 0.2 {
		t.Errorf("KS statistic %v too small for unit shift", r.Statistic)
	}
}

func TestKSEmpty(t *testing.T) {
	r := KSTest(nil, []float64{1})
	if !math.IsNaN(r.Statistic) {
		t.Error("empty sample should give NaN")
	}
}

func TestKSStatisticExact(t *testing.T) {
	// a = {1,2,3,4}, b = {3,4,5,6}: max CDF gap is 0.5 at value 2..3.
	r := KSTest([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if !almost(r.Statistic, 0.5, 1e-12) {
		t.Errorf("KS statistic = %v, want 0.5", r.Statistic)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	at := []float64{0, 1, 2.5, 4, 10}
	got := ECDF(xs, at)
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Errorf("ECDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, -5, 100}
	h := Histogram(xs, 0, 3, 3)
	// Bins: [0,1): 0.5 and clamped -5 → 2 samples; [1,2): 1.5,1.6 → 2;
	// [2,3): 2.5 and clamped 100 → 2.
	for i, v := range h {
		if !almost(v, 1.0/3, 1e-12) {
			t.Errorf("bin %d = %v, want 1/3", i, v)
		}
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if !almost(sum, 1, 1e-12) {
		t.Errorf("histogram mass = %v, want 1", sum)
	}
}

func TestCrossCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if c := CrossCorrelation(a, a); !almost(c, 1, 1e-12) {
		t.Errorf("self correlation = %v", c)
	}
	b := []float64{5, 4, 3, 2, 1}
	if c := CrossCorrelation(a, b); !almost(c, -1, 1e-12) {
		t.Errorf("anti correlation = %v", c)
	}
	if c := CrossCorrelation(a, []float64{2, 2, 2, 2, 2}); c != 0 {
		t.Errorf("constant series correlation = %v, want 0", c)
	}
	// Unequal lengths truncate.
	if c := CrossCorrelation(a, []float64{1, 2, 3}); !almost(c, 1, 1e-12) {
		t.Errorf("truncated correlation = %v", c)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := sim.NewRand(5, 0)
	var pts [][]float64
	var truth []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			pts = append(pts, []float64{ctr[0] + rng.NormFloat64(), ctr[1] + rng.NormFloat64()})
			truth = append(truth, c)
		}
	}
	res := KMeans(pts, 3, 1)
	if purity := ClusterPurity(res.Assignment, truth); purity != 1 {
		t.Errorf("purity = %v, want 1 for well-separated clusters", purity)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v, want > 0", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := sim.NewRand(6, 0)
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{rng.Float64(), rng.Float64()})
	}
	a := KMeans(pts, 4, 9)
	b := KMeans(pts, 4, 9)
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > n did not panic")
		}
	}()
	KMeans([][]float64{{1}}, 2, 0)
}

func TestClusterPurity(t *testing.T) {
	if p := ClusterPurity([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); p != 1 {
		t.Errorf("purity = %v, want 1", p)
	}
	if p := ClusterPurity([]int{0, 0, 0, 0}, []int{0, 0, 1, 1}); p != 0.5 {
		t.Errorf("purity = %v, want 0.5", p)
	}
	if p := ClusterPurity([]int{0}, []int{0, 1}); p != 0 {
		t.Errorf("mismatched lengths purity = %v, want 0", p)
	}
}

func TestTSNEPreservesClusters(t *testing.T) {
	rng := sim.NewRand(8, 0)
	var pts [][]float64
	var truth []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 12; i++ {
			pts = append(pts, []float64{
				float64(c)*20 + rng.NormFloat64(),
				float64(c)*-15 + rng.NormFloat64(),
				rng.NormFloat64(),
			})
			truth = append(truth, c)
		}
	}
	emb := TSNE(pts, TSNEConfig{Seed: 2, Iterations: 400})
	if len(emb) != len(pts) {
		t.Fatalf("embedding length %d", len(emb))
	}
	// Clusters must remain separable in the embedding: k-means on the 2-D
	// output recovers the labels.
	pts2 := make([][]float64, len(emb))
	for i, e := range emb {
		pts2[i] = []float64{e[0], e[1]}
	}
	res := KMeans(pts2, 3, 3)
	if purity := ClusterPurity(res.Assignment, truth); purity < 0.9 {
		t.Errorf("t-SNE purity = %v, want ≥ 0.9", purity)
	}
}

func TestTSNEEmpty(t *testing.T) {
	if out := TSNE(nil, TSNEConfig{}); out != nil {
		t.Error("TSNE(nil) should be nil")
	}
}

// Property: KS statistic is symmetric and within [0,1].
func TestKSProperty(t *testing.T) {
	prop := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		r1 := KSTest(a, b)
		r2 := KSTest(b, a)
		return almost(r1.Statistic, r2.Statistic, 1e-12) &&
			r1.Statistic >= 0 && r1.Statistic <= 1 &&
			r1.PValue >= 0 && r1.PValue <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cross-correlation is bounded in [-1, 1] and symmetric.
func TestCrossCorrelationProperty(t *testing.T) {
	clamp := func(xs []float64) {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			// Keep magnitudes small enough that squared sums cannot overflow.
			xs[i] = math.Mod(xs[i], 1e6)
		}
	}
	prop := func(a, b []float64) bool {
		clamp(a)
		clamp(b)
		c1 := CrossCorrelation(a, b)
		c2 := CrossCorrelation(b, a)
		if len(a) != len(b) {
			// Truncation makes asymmetric inputs incomparable; only check bounds.
			return c1 >= -1-1e-9 && c1 <= 1+1e-9
		}
		return almost(c1, c2, 1e-9) && c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram mass sums to 1 for nonempty input.
func TestHistogramMassProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		h := Histogram(xs, -1, 1, 7)
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		return almost(sum, 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
