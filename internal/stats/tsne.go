package stats

import (
	"math"

	"ibox/internal/sim"
)

// TSNEConfig parameterizes a t-SNE embedding. Zero values pick defaults
// suitable for the paper's Fig 4(b) scale (tens of points).
type TSNEConfig struct {
	Perplexity float64 // default 10
	Iterations int     // default 500
	LearnRate  float64 // default 100
	Seed       int64
}

// TSNE computes a 2-D t-SNE embedding (van der Maaten & Hinton 2008, exact
// O(n²) variant) of the given points. It is used to visualize the
// instance-test clusters of Fig 4(b). The implementation follows the
// original: binary-search per-point bandwidths to match the target
// perplexity, symmetrized affinities, early exaggeration for the first
// quarter of iterations, and gradient descent with momentum.
func TSNE(points [][]float64, cfg TSNEConfig) [][2]float64 {
	n := len(points)
	if n == 0 {
		return nil
	}
	if cfg.Perplexity <= 0 {
		cfg.Perplexity = 10
	}
	if cfg.Perplexity > float64(n-1) {
		cfg.Perplexity = math.Max(1, float64(n-1)/3)
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 500
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 100
	}

	// Pairwise squared distances in the input space.
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
		for j := range d2[i] {
			if i != j {
				d2[i][j] = sq(L2(points[i], points[j]))
			}
		}
	}

	// Conditional affinities with per-point bandwidth found by binary
	// search on entropy = log(perplexity).
	p := make([][]float64, n)
	target := math.Log(cfg.Perplexity)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0
		for iter := 0; iter < 60; iter++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] = math.Exp(-d2[i][j] * beta)
				sum += p[i][j]
			}
			if sum == 0 {
				sum = 1e-300
			}
			h := 0.0
			for j := 0; j < n; j++ {
				if j == i || p[i][j] == 0 {
					continue
				}
				pj := p[i][j] / sum
				h -= pj * math.Log(pj)
			}
			for j := 0; j < n; j++ {
				p[i][j] /= sum
			}
			if math.Abs(h-target) < 1e-5 {
				break
			}
			if h > target {
				lo = beta
				if hi >= 1e20 {
					beta *= 2
				} else {
					beta = (beta + hi) / 2
				}
			} else {
				hi = beta
				beta = (beta + lo) / 2
			}
		}
	}
	// Symmetrize.
	pij := make([][]float64, n)
	for i := range pij {
		pij[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pij[i][j] = math.Max((p[i][j]+p[j][i])/(2*float64(n)), 1e-12)
		}
	}

	// Initialize embedding with small Gaussian noise.
	rng := sim.NewRand(cfg.Seed, 7)
	y := make([][2]float64, n)
	for i := range y {
		y[i][0] = rng.NormFloat64() * 1e-2
		y[i][1] = rng.NormFloat64() * 1e-2
	}
	vel := make([][2]float64, n)
	grad := make([][2]float64, n)
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		if iter < cfg.Iterations/4 {
			exag = 4
		}
		momentum := 0.5
		if iter >= 250 {
			momentum = 0.8
		}
		// Student-t affinities in the embedding.
		sumQ := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := y[i][0] - y[j][0]
				dy := y[i][1] - y[j][1]
				v := 1 / (1 + dx*dx + dy*dy)
				q[i][j], q[j][i] = v, v
				sumQ += 2 * v
			}
		}
		if sumQ == 0 {
			sumQ = 1e-300
		}
		for i := 0; i < n; i++ {
			grad[i][0], grad[i][1] = 0, 0
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := (exag*pij[i][j] - q[i][j]/sumQ) * q[i][j]
				grad[i][0] += 4 * mult * (y[i][0] - y[j][0])
				grad[i][1] += 4 * mult * (y[i][1] - y[j][1])
			}
		}
		for i := 0; i < n; i++ {
			vel[i][0] = momentum*vel[i][0] - cfg.LearnRate*grad[i][0]
			vel[i][1] = momentum*vel[i][1] - cfg.LearnRate*grad[i][1]
			y[i][0] += vel[i][0]
			y[i][1] += vel[i][1]
		}
	}
	return y
}
