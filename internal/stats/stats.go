// Package stats is a from-scratch statistics toolkit covering exactly what
// the paper's evaluation needs: percentiles and summary statistics, the
// two-sample Kolmogorov–Smirnov test (used to verify iBoxNet's match with
// ground truth in §3.1.1), k-means++ clustering and t-SNE embedding (the
// instance-test analysis of Fig 4), normalized cross-correlation (the
// clustering features), and histograms/CDFs (Figs 5 and 7).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile for an already-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary captures the quartile summary the paper reports (mean, P25, P50,
// P75) plus min/max.
type Summary struct {
	N                  int
	Mean               float64
	P25, P50, P75, P95 float64
	Min, Max           float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, P25: nan, P50: nan, P75: nan, P95: nan, Min: nan, Max: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Mean: Mean(s),
		P25:  PercentileSorted(s, 25),
		P50:  PercentileSorted(s, 50),
		P75:  PercentileSorted(s, 75),
		P95:  PercentileSorted(s, 95),
		Min:  s[0],
		Max:  s[len(s)-1],
	}
}

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Statistic float64 // sup |F1 - F2|
	PValue    float64 // asymptotic two-sided p-value
}

// KSTest performs the two-sample Kolmogorov–Smirnov test (as referenced by
// the paper via scipy.stats.kstest): the statistic is the supremum
// difference between the two empirical CDFs, and the p-value uses the
// asymptotic Kolmogorov distribution with the standard effective-sample
// correction.
func KSTest(a, b []float64) KSResult {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{Statistic: math.NaN(), PValue: math.NaN()}
	}
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		v := math.Min(x[i], y[j])
		for i < len(x) && x[i] <= v {
			i++
		}
		for j < len(y) && y[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(x)) - float64(j)/float64(len(y)))
		if diff > d {
			d = diff
		}
	}
	n := float64(len(x))
	m := float64(len(y))
	en := math.Sqrt(n * m / (n + m))
	return KSResult{Statistic: d, PValue: ksPValue((en + 0.12 + 0.11/en) * d)}
}

// ksPValue evaluates the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2k²λ²).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ECDF returns the empirical CDF of xs evaluated at the given points:
// out[i] = fraction of xs ≤ at[i].
func ECDF(xs, at []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(at))
	for i, v := range at {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(v, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// Histogram bins xs into nbins equal-width bins over [lo, hi] and returns
// the fraction of samples per bin (values outside the range clamp to the
// edge bins).
func Histogram(xs []float64, lo, hi float64, nbins int) []float64 {
	out := make([]float64, nbins)
	if len(xs) == 0 || nbins <= 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		out[b]++
	}
	for i := range out {
		out[i] /= float64(len(xs))
	}
	return out
}

// CrossCorrelation returns the normalized (Pearson) correlation of a and b
// truncated to their common length. It is the feature extractor the paper
// uses for instance-test clustering: "the cross-correlation between the
// iBoxNet rate and delay time series and their respective ground truth time
// series". Returns 0 when either side is constant.
func CrossCorrelation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	a, b = a[:n], b[:n]
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
