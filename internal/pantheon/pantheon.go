// Package pantheon generates the synthetic trace corpus that stands in for
// the Pantheon testbed data the paper evaluates on (Yan et al., USENIX ATC
// 2018). The real corpus — tens of thousands of 30-second traces between
// AWS and clients in 8 countries — is proprietary data we cannot ship, so
// this package recreates its role: families of network-path instances
// ("profiles", e.g. an India-cellular-like path) are sampled from
// parameterized distributions, real congestion-control implementations are
// run over the ground-truth simulator (internal/netsim) on each instance,
// and the resulting input–output traces form the training/evaluation
// corpus that iBoxNet and iBoxML consume.
//
// Because each instance's true configuration is retained, the package also
// provides what a real testbed cannot: the ability to re-run a *different*
// protocol on the *same* instance (identical path and cross-traffic
// workload), which is the ground truth that the paper's instance and
// ensemble tests (§2) are judged against.
package pantheon

import (
	"fmt"
	"math/rand"
	"time"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Profile is a family of network paths: each Sample draws one concrete
// instance from the family's parameter distributions.
type Profile struct {
	Name string
	// Rate bounds, bytes/sec.
	RateMin, RateMax float64
	// One-way propagation delay bounds.
	DelayMin, DelayMax sim.Time
	// Buffer depth bounds, expressed in milliseconds at the sampled rate
	// (the common bufferbloat parameterization).
	BufferMsMin, BufferMsMax float64
	// Cellular, when true, adds a time-varying rate share (proportional-
	// fair-like), as on the paper's India Cellular path.
	Cellular bool
	// CellularSigma is the volatility of the cellular rate walk.
	CellularSigma float64
	// ReorderProbMax, when positive, enables multipath reordering with a
	// per-instance probability drawn from [0, ReorderProbMax].
	ReorderProbMax float64
	// RandomLossMax, when positive, enables non-congestive random loss
	// with a per-instance probability drawn from [0, RandomLossMax].
	RandomLossMax float64
	// CrossTraffic toggles the random competing-workload mixture.
	CrossTraffic bool
}

// IndiaCellular approximates the paper's stress-test path: a few-Mbps,
// highly variable cellular bottleneck with moderate delay, deep buffers
// and bursty competing traffic.
func IndiaCellular() Profile {
	return Profile{
		Name:          "india-cellular",
		RateMin:       375_000,   // 3 Mbps
		RateMax:       1_500_000, // 12 Mbps
		DelayMin:      30 * sim.Millisecond,
		DelayMax:      70 * sim.Millisecond,
		BufferMsMin:   150,
		BufferMsMax:   500,
		Cellular:      true,
		CellularSigma: 0.25,
		CrossTraffic:  true,
	}
}

// Ethernet approximates a wired path: fast, stable, shallow-buffered.
func Ethernet() Profile {
	return Profile{
		Name:         "ethernet",
		RateMin:      6_250_000,  // 50 Mbps
		RateMax:      12_500_000, // 100 Mbps
		DelayMin:     10 * sim.Millisecond,
		DelayMax:     40 * sim.Millisecond,
		BufferMsMin:  30,
		BufferMsMax:  100,
		CrossTraffic: true,
	}
}

// Satellite approximates a GEO satellite path: high propagation delay,
// moderate rate, deep buffers — the regime where delay-based protocols'
// base-RTT filters and the estimator's min-delay assumption are stressed.
func Satellite() Profile {
	return Profile{
		Name:         "satellite",
		RateMin:      1_250_000, // 10 Mbps
		RateMax:      2_500_000, // 20 Mbps
		DelayMin:     250 * sim.Millisecond,
		DelayMax:     320 * sim.Millisecond,
		BufferMsMin:  400,
		BufferMsMax:  1000,
		CrossTraffic: true,
	}
}

// WiredLoss approximates a wired path with residual random loss (e.g. a
// noisy last-mile): stable rate but non-congestive packet loss, the
// environment the statistical-loss variant was built for.
func WiredLoss() Profile {
	p := Ethernet()
	p.Name = "wired-loss"
	p.RandomLossMax = 0.02
	return p
}

// CellularReorder is the India-cellular profile with multipath reordering
// enabled — the corpus behind the reordering studies of Fig 5 and Fig 8
// (iBoxNet's single FIFO bottleneck cannot produce reordering, so these
// paths expose exactly the behaviour-discovery gap §5.1 studies).
func CellularReorder() Profile {
	p := IndiaCellular()
	p.Name = "cellular-reorder"
	p.ReorderProbMax = 0.06
	return p
}

// Instance is one concrete sampled network path plus its competing
// workload — the "particular path at a particular time" of §2.
type Instance struct {
	ID           string
	Net          netsim.Config
	CrossTraffic []netsim.CrossTraffic
	// CTDescription summarizes the sampled workload for diagnostics.
	CTDescription string
}

// Sample draws instance i of the profile, deterministically in (profile,
// seed, i).
func (pr Profile) Sample(seed int64, i int) Instance {
	rng := sim.NewRand(seed, int64(i)*1000+7)
	rate := pr.RateMin + rng.Float64()*(pr.RateMax-pr.RateMin)
	delay := pr.DelayMin + sim.Time(rng.Float64()*float64(pr.DelayMax-pr.DelayMin))
	bufMs := pr.BufferMsMin + rng.Float64()*(pr.BufferMsMax-pr.BufferMsMin)
	cfg := netsim.Config{
		Rate:        rate,
		BufferBytes: int(rate * bufMs / 1000),
		PropDelay:   delay,
		Seed:        seed*1_000_003 + int64(i),
	}
	if pr.Cellular {
		cfg.Cellular = &netsim.CellularModel{
			Interval: 100 * sim.Millisecond,
			Sigma:    pr.CellularSigma,
			MinShare: 0.4,
			MaxShare: 1.3,
		}
	}
	if pr.ReorderProbMax > 0 {
		cfg.Reorder = &netsim.ReorderModel{
			Prob:     0.01 + rng.Float64()*(pr.ReorderProbMax-0.01),
			ExtraMin: 0,
			ExtraMax: 4 * sim.Millisecond,
		}
	}
	if pr.RandomLossMax > 0 {
		cfg.LossProb = rng.Float64() * pr.RandomLossMax
	}
	inst := Instance{
		ID:  fmt.Sprintf("%s-%d", pr.Name, i),
		Net: cfg,
	}
	if pr.CrossTraffic {
		inst.CrossTraffic, inst.CTDescription = sampleCrossTraffic(rng, rate, cfg.Seed)
	}
	return inst
}

// sampleCrossTraffic draws a random competing workload: a Poisson
// background (0–40% of capacity) and possibly an on/off burst component.
func sampleCrossTraffic(rng *rand.Rand, rate float64, seed int64) ([]netsim.CrossTraffic, string) {
	var cts []netsim.CrossTraffic
	desc := ""
	bg := rng.Float64() * 0.4 * rate
	if bg > 0.02*rate {
		cts = append(cts, netsim.Poisson{MeanRate: bg, Seed: seed + 1})
		desc += fmt.Sprintf("poisson=%.0fB/s ", bg)
	}
	if rng.Float64() < 0.6 {
		burst := (0.2 + rng.Float64()*0.5) * rate
		on := sim.Time(1+rng.Intn(4)) * sim.Second
		off := sim.Time(2+rng.Intn(6)) * sim.Second
		from := sim.Time(rng.Intn(5)) * sim.Second
		cts = append(cts, netsim.OnOff{Rate: burst, OnDur: on, OffDur: off, From: from})
		desc += fmt.Sprintf("onoff=%.0fB/s on=%v off=%v from=%v", burst, on, off, from)
	}
	return cts, desc
}

// Run executes one protocol over the instance's ground-truth path for the
// given duration and returns its trace. Distinct runSeed values give
// independent runs on the same instance (the paper's repeated Vegas runs
// in the instance test).
func (inst Instance) Run(protocol string, dur sim.Time, runSeed int64) (*trace.Trace, error) {
	sender, err := cc.NewSender(protocol, 1500)
	if err != nil {
		return nil, err
	}
	return inst.RunSender(sender, dur, runSeed)
}

// RunSender is Run with a caller-constructed sender.
func (inst Instance) RunSender(sender cc.Sender, dur sim.Time, runSeed int64) (*trace.Trace, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("pantheon: non-positive duration %v", dur)
	}
	sched := sim.NewScheduler()
	cfg := inst.Net
	// Perturb the path seed per run so repeated runs differ slightly, as
	// repeated testbed runs would.
	cfg.Seed = cfg.Seed*31 + runSeed
	path := netsim.New(sched, cfg)
	for _, ct := range inst.CrossTraffic {
		path.AddCrossTraffic(ct)
	}
	flow := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: dur,
		AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + 3*sim.Second)
	tr := flow.Trace()
	tr.PathID = inst.ID
	return tr, nil
}

// Corpus is a set of instances and the traces of one protocol over them.
type Corpus struct {
	Profile   Profile
	Protocol  string
	Duration  sim.Time
	Instances []Instance
	Traces    []*trace.Trace
}

// Generate samples n instances of the profile and runs the given protocol
// over each, producing the training/evaluation corpus. Instance runs fan
// out over all CPUs; see GenerateOpts for the execution knob.
func Generate(pr Profile, n int, protocol string, dur sim.Time, seed int64) (*Corpus, error) {
	return GenerateOpts(pr, n, protocol, dur, seed, par.Options{})
}

// GenerateOpts is Generate with explicit execution options. Sampling and
// running instance i is deterministic in (profile, seed, i) — each
// instance builds its own scheduler and RNG streams — so serial and
// parallel generation produce byte-identical corpora.
func GenerateOpts(pr Profile, n int, protocol string, dur sim.Time, seed int64, opts par.Options) (*Corpus, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pantheon: need n > 0, got %d", n)
	}
	// Instrumentation handles are hoisted out of the per-instance loop;
	// all are nil no-ops when observability is disabled.
	reg := obs.Get()
	traces := reg.Counter("pantheon.traces")
	instHist := reg.Histogram("pantheon.instance_ns")
	c := &Corpus{Profile: pr, Protocol: protocol, Duration: dur}
	type sampled struct {
		inst Instance
		tr   *trace.Trace
	}
	rows, err := par.Map(n, opts, func(i int) (sampled, error) {
		var t0 time.Time
		if instHist != nil {
			t0 = time.Now()
		}
		inst := pr.Sample(seed, i)
		tr, err := inst.Run(protocol, dur, int64(i))
		if instHist != nil {
			instHist.ObserveSince(t0)
			traces.Add(1)
		}
		if err != nil {
			return sampled{}, fmt.Errorf("pantheon: instance %d: %w", i, err)
		}
		tr.Protocol = protocol
		return sampled{inst, tr}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		c.Instances = append(c.Instances, row.inst)
		c.Traces = append(c.Traces, row.tr)
	}
	return c, nil
}

// Split partitions the corpus into train and test subsets: the first
// nTrain instances train, the rest test.
func (c *Corpus) Split(nTrain int) (train, test *Corpus) {
	if nTrain > len(c.Traces) {
		nTrain = len(c.Traces)
	}
	train = &Corpus{Profile: c.Profile, Protocol: c.Protocol, Duration: c.Duration,
		Instances: c.Instances[:nTrain], Traces: c.Traces[:nTrain]}
	test = &Corpus{Profile: c.Profile, Protocol: c.Protocol, Duration: c.Duration,
		Instances: c.Instances[nTrain:], Traces: c.Traces[nTrain:]}
	return train, test
}
