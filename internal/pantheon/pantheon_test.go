package pantheon

import (
	"strings"
	"testing"

	"ibox/internal/sim"
)

func TestSampleDeterministic(t *testing.T) {
	pr := IndiaCellular()
	a := pr.Sample(42, 3)
	b := pr.Sample(42, 3)
	if a.Net.Rate != b.Net.Rate || a.Net.PropDelay != b.Net.PropDelay ||
		a.Net.BufferBytes != b.Net.BufferBytes || a.ID != b.ID {
		t.Error("sampling not deterministic")
	}
	c := pr.Sample(42, 4)
	if a.Net.Rate == c.Net.Rate && a.Net.PropDelay == c.Net.PropDelay {
		t.Error("different indices produced identical instances")
	}
}

func TestSampleWithinProfileBounds(t *testing.T) {
	pr := IndiaCellular()
	for i := 0; i < 20; i++ {
		inst := pr.Sample(7, i)
		if inst.Net.Rate < pr.RateMin || inst.Net.Rate > pr.RateMax {
			t.Errorf("instance %d rate %v outside [%v, %v]", i, inst.Net.Rate, pr.RateMin, pr.RateMax)
		}
		if inst.Net.PropDelay < pr.DelayMin || inst.Net.PropDelay > pr.DelayMax {
			t.Errorf("instance %d delay %v outside bounds", i, inst.Net.PropDelay)
		}
		if inst.Net.Cellular == nil {
			t.Errorf("instance %d missing cellular model", i)
		}
		if err := inst.Net.Validate(); err != nil {
			t.Errorf("instance %d invalid: %v", i, err)
		}
		if !strings.HasPrefix(inst.ID, "india-cellular-") {
			t.Errorf("instance ID %q", inst.ID)
		}
	}
}

func TestCellularReorderProfile(t *testing.T) {
	pr := CellularReorder()
	found := false
	for i := 0; i < 10; i++ {
		inst := pr.Sample(1, i)
		if inst.Net.Reorder == nil {
			t.Fatalf("instance %d missing reorder model", i)
		}
		if inst.Net.Reorder.Prob > 0.01 {
			found = true
		}
	}
	if !found {
		t.Error("no instance with non-trivial reorder probability")
	}
}

func TestRunProducesValidTrace(t *testing.T) {
	inst := IndiaCellular().Sample(5, 0)
	tr, err := inst.Run("cubic", 8*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) < 500 {
		t.Errorf("only %d packets in 8s cellular cubic trace", len(tr.Packets))
	}
	if tr.PathID != inst.ID || tr.Protocol != "cubic" {
		t.Errorf("metadata: %q %q", tr.PathID, tr.Protocol)
	}
	// Throughput bounded by sampled capacity (shares can push to 1.3×).
	if tr.Throughput() > inst.Net.Rate*8*1.4 {
		t.Errorf("throughput %.0f exceeds capacity %.0f", tr.Throughput(), inst.Net.Rate*8)
	}
}

func TestRunSeedVariesRuns(t *testing.T) {
	inst := IndiaCellular().Sample(9, 0)
	a, err := inst.Run("vegas", 5*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.Run("vegas", 5*sim.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() == b.Throughput() && a.DelayPercentile(95) == b.DelayPercentile(95) {
		t.Error("different run seeds produced identical runs")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	inst := Ethernet().Sample(1, 0)
	if _, err := inst.Run("nope", sim.Second, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := inst.Run("cubic", 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestGenerateAndSplit(t *testing.T) {
	c, err := Generate(Ethernet(), 6, "cubic", 4*sim.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Traces) != 6 || len(c.Instances) != 6 {
		t.Fatalf("corpus size %d/%d", len(c.Traces), len(c.Instances))
	}
	for i, tr := range c.Traces {
		if err := tr.Validate(); err != nil {
			t.Errorf("trace %d invalid: %v", i, err)
		}
	}
	train, test := c.Split(4)
	if len(train.Traces) != 4 || len(test.Traces) != 2 {
		t.Errorf("split sizes %d/%d", len(train.Traces), len(test.Traces))
	}
	// Overflowing split clamps.
	tr2, te2 := c.Split(100)
	if len(tr2.Traces) != 6 || len(te2.Traces) != 0 {
		t.Errorf("clamped split sizes %d/%d", len(tr2.Traces), len(te2.Traces))
	}
	if _, err := Generate(Ethernet(), 0, "cubic", sim.Second, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestReorderCorpusActuallyReorders(t *testing.T) {
	c, err := Generate(CellularReorder(), 3, "vegas", 6*sim.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, tr := range c.Traces {
		if tr.ReorderingRate() > 0 {
			any = true
		}
	}
	if !any {
		t.Error("reorder corpus produced zero reordering")
	}
}

func TestSatelliteProfile(t *testing.T) {
	inst := Satellite().Sample(2, 0)
	if inst.Net.PropDelay < 250*sim.Millisecond {
		t.Errorf("satellite delay %v too low", inst.Net.PropDelay)
	}
	tr, err := inst.Run("cubic", 8*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := tr.MinDelay(); min < 250*sim.Millisecond {
		t.Errorf("min delay %v below propagation", min)
	}
}

func TestWiredLossProfile(t *testing.T) {
	pr := WiredLoss()
	sawLoss := false
	for i := 0; i < 6; i++ {
		inst := pr.Sample(3, i)
		if inst.Net.LossProb < 0 || inst.Net.LossProb > 0.02 {
			t.Fatalf("loss prob %v out of range", inst.Net.LossProb)
		}
		if inst.Net.LossProb > 0.005 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Error("no instance with meaningful random loss")
	}
	inst := pr.Sample(3, 1)
	tr, err := inst.Run("vegas", 6*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
