package sax

import (
	"math"
	"sort"
)

// This file implements the sliding-window subsequence machinery of the
// cited motif-finding work (Lin, Keogh, Lonardi & Patel 2002): long series
// are cut into overlapping windows, each window is PAA-reduced and
// SAX-discretized into a word, consecutive duplicate words are collapsed
// (numerosity reduction — otherwise trivial matches between overlapping
// windows dominate), and the most frequent words are the motifs.

// Word is one SAX word with the series offsets (window start indices) at
// which it occurs after numerosity reduction.
type Word struct {
	Text    string
	Offsets []int
}

// Words symbolizes a series into SAX words: sliding windows of winLen
// samples (step 1), PAA to segments values, per-window z-normalized
// discretization with the given alphabet, and numerosity reduction.
func Words(xs []float64, winLen, segments, alphabet int) []Word {
	if winLen <= 0 || winLen > len(xs) || segments <= 0 || alphabet < 2 {
		return nil
	}
	var out []Word
	index := map[string]int{}
	prev := ""
	for i := 0; i+winLen <= len(xs); i++ {
		word := string(Discretize(PAA(xs[i:i+winLen], segments), alphabet))
		if word == prev {
			continue // numerosity reduction
		}
		prev = word
		if j, ok := index[word]; ok {
			out[j].Offsets = append(out[j].Offsets, i)
			continue
		}
		index[word] = len(out)
		out = append(out, Word{Text: word, Offsets: []int{i}})
	}
	return out
}

// TopMotifs returns the k most frequent words, most frequent first (ties
// broken lexicographically for determinism).
func TopMotifs(words []Word, k int) []Word {
	sorted := append([]Word(nil), words...)
	sort.Slice(sorted, func(i, j int) bool {
		if len(sorted[i].Offsets) != len(sorted[j].Offsets) {
			return len(sorted[i].Offsets) > len(sorted[j].Offsets)
		}
		return sorted[i].Text < sorted[j].Text
	})
	if k < len(sorted) {
		sorted = sorted[:k]
	}
	return sorted
}

// MinDist returns the SAX lower-bounding distance between two equal-length
// words under the given alphabet (Lin et al. 2003): symbols at distance
// ≤ 1 contribute zero; farther pairs contribute the gap between the
// enclosing Gaussian breakpoints. The result lower-bounds the Euclidean
// distance of the (z-normalized, PAA'd) originals up to the standard
// sqrt(n/w) scaling, which callers apply themselves.
func MinDist(a, b string, alphabet int) float64 {
	if len(a) != len(b) {
		return -1
	}
	bps := GaussianBreakpoints(alphabet)
	total := 0.0
	for i := 0; i < len(a); i++ {
		ca, cb := int(a[i]-'a'), int(b[i]-'a')
		if ca < 0 || ca >= alphabet || cb < 0 || cb >= alphabet {
			return -1
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		if cb-ca <= 1 {
			continue
		}
		d := bps[cb-1] - bps[ca]
		total += d * d
	}
	return math.Sqrt(total)
}
