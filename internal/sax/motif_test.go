package sax

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func TestWordsFindsRepeatedMotif(t *testing.T) {
	// A series with a planted motif: a sharp V-shape at offsets 100, 300,
	// 500 on a noisy baseline.
	rng := sim.NewRand(4, 0)
	xs := make([]float64, 700)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 0.1
	}
	plant := func(at int) {
		for i := 0; i < 16; i++ {
			depth := 8.0 - math.Abs(float64(i)-8)
			xs[at+i] -= depth
		}
	}
	plant(100)
	plant(300)
	plant(500)
	words := Words(xs, 16, 4, 4)
	if len(words) == 0 {
		t.Fatal("no words")
	}
	top := TopMotifs(words, 3)
	// The motif word should include occurrences near all three plants.
	found := 0
	for _, w := range top {
		near := map[int]bool{}
		for _, off := range w.Offsets {
			for _, at := range []int{100, 300, 500} {
				if off >= at-4 && off <= at+4 {
					near[at] = true
				}
			}
		}
		if len(near) == 3 {
			found++
		}
	}
	if found == 0 {
		t.Errorf("planted motif not recovered in top words: %+v", top[:min(3, len(top))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestWordsNumerosityReduction(t *testing.T) {
	// A constant series produces the same word in every window; numerosity
	// reduction must collapse it to a single occurrence.
	xs := make([]float64, 100)
	words := Words(xs, 10, 2, 3)
	if len(words) != 1 {
		t.Fatalf("words: %d, want 1", len(words))
	}
	if len(words[0].Offsets) != 1 {
		t.Errorf("offsets: %v, want single occurrence after reduction", words[0].Offsets)
	}
}

func TestWordsDegenerateInputs(t *testing.T) {
	if Words(nil, 4, 2, 3) != nil {
		t.Error("nil series")
	}
	if Words([]float64{1, 2}, 4, 2, 3) != nil {
		t.Error("window longer than series")
	}
	if Words([]float64{1, 2, 3}, 2, 2, 1) != nil {
		t.Error("alphabet < 2")
	}
}

func TestTopMotifsOrderingAndTies(t *testing.T) {
	words := []Word{
		{Text: "bb", Offsets: []int{1}},
		{Text: "aa", Offsets: []int{2, 5}},
		{Text: "ab", Offsets: []int{3}},
	}
	top := TopMotifs(words, 2)
	if top[0].Text != "aa" {
		t.Errorf("most frequent first: %v", top)
	}
	if top[1].Text != "ab" { // tie with "bb" broken lexicographically
		t.Errorf("tie break: %v", top)
	}
	if len(TopMotifs(words, 10)) != 3 {
		t.Error("k beyond length should return all")
	}
}

func TestMinDist(t *testing.T) {
	// Adjacent symbols contribute zero.
	if d := MinDist("ab", "ba", 4); d != 0 {
		t.Errorf("adjacent dist = %v", d)
	}
	// 'a' vs 'd' under alphabet 4: gap between bp[2] and bp[0] = 1.349.
	d := MinDist("a", "d", 4)
	if math.Abs(d-1.349) > 1e-3 {
		t.Errorf("a-d dist = %v, want ≈1.349", d)
	}
	// Symmetry.
	if MinDist("ad", "da", 4) != MinDist("da", "ad", 4) {
		t.Error("asymmetric")
	}
	// Errors.
	if MinDist("ab", "abc", 4) >= 0 {
		t.Error("length mismatch accepted")
	}
	if MinDist("az", "aa", 4) >= 0 {
		t.Error("out-of-alphabet symbol accepted")
	}
}
