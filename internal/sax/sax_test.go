package sax

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"ibox/internal/sim"
)

func TestGaussianBreakpoints(t *testing.T) {
	// Classic SAX table for a=4: {-0.6745, 0, 0.6745}.
	bps := GaussianBreakpoints(4)
	want := []float64{-0.6745, 0, 0.6745}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 1e-3 {
			t.Errorf("bp[%d] = %v, want %v", i, bps[i], want[i])
		}
	}
	// a=3: {-0.4307, 0.4307}.
	bps3 := GaussianBreakpoints(3)
	if math.Abs(bps3[0]+0.4307) > 1e-3 || math.Abs(bps3[1]-0.4307) > 1e-3 {
		t.Errorf("a=3 breakpoints = %v", bps3)
	}
	if GaussianBreakpoints(1) != nil {
		t.Error("a=1 should give nil")
	}
}

func TestProbitRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		x := probit(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-8 {
			t.Errorf("probit(%v) = %v, Φ back = %v", p, x, back)
		}
	}
	if !math.IsInf(probit(0), -1) || !math.IsInf(probit(1), 1) {
		t.Error("probit edge cases")
	}
}

func TestPAA(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	got := PAA(xs, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("PAA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Non-divisible: 5 samples → 2 segments of 2.5 samples each.
	xs2 := []float64{1, 1, 1, 3, 3}
	got2 := PAA(xs2, 2)
	if math.Abs(got2[0]-1) > 1e-12 {
		t.Errorf("PAA frac[0] = %v, want 1", got2[0])
	}
	if math.Abs(got2[1]-(1*0.5+3+3)/2.5) > 1e-12 {
		t.Errorf("PAA frac[1] = %v", got2[1])
	}
	// segments >= n returns a copy.
	got3 := PAA(xs, 10)
	if len(got3) != len(xs) {
		t.Errorf("PAA over-segmented length %d", len(got3))
	}
}

// Property: PAA preserves the overall mean.
func TestPAAMeanProperty(t *testing.T) {
	prop := func(raw []float64, segRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
			raw[i] = math.Mod(raw[i], 1e6)
		}
		seg := int(segRaw%16) + 1
		out := PAA(raw, seg)
		min := seg
		if len(raw) < seg {
			min = len(raw)
		}
		if len(out) != min && len(out) != len(raw) {
			return false
		}
		// Mean preservation (exact for the fractional PAA).
		var ma, mo float64
		for _, v := range raw {
			ma += v
		}
		ma /= float64(len(raw))
		if len(out) == 0 {
			return false
		}
		for _, v := range out {
			mo += v
		}
		mo /= float64(len(out))
		return math.Abs(ma-mo) < 1e-6*math.Max(1, math.Abs(ma))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiscretizeEquiprobable(t *testing.T) {
	rng := sim.NewRand(1, 0)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sym := Discretize(xs, 4)
	counts := map[byte]int{}
	for _, s := range sym {
		counts[s]++
	}
	for _, c := range []byte{'a', 'b', 'c', 'd'} {
		frac := float64(counts[c]) / float64(len(xs))
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("symbol %c frequency %.3f, want ≈0.25", c, frac)
		}
	}
}

func TestDiscretizeConstant(t *testing.T) {
	sym := Discretize([]float64{5, 5, 5}, 6)
	for _, s := range sym {
		if s != 'd' {
			t.Errorf("constant series symbol %c, want middle 'd'", s)
		}
	}
}

func TestArrivalSymbolizer(t *testing.T) {
	// Reference: positives uniform over (0, 10).
	var ref []float64
	rng := sim.NewRand(2, 0)
	for i := 0; i < 5000; i++ {
		ref = append(ref, rng.Float64()*10)
	}
	s := FitArrivalSymbolizer(ref, 6) // 'a' + 5 positive bins
	sym := s.Symbols([]float64{-1, 0.5, 3, 5, 7, 9.9})
	if sym[0] != 'a' {
		t.Errorf("negative → %c, want a", sym[0])
	}
	if sym[1] != 'b' {
		t.Errorf("small positive → %c, want b", sym[1])
	}
	if sym[5] != 'f' {
		t.Errorf("large positive → %c, want f", sym[5])
	}
	// Monotone: larger values never get smaller symbols.
	for i := 1; i < len(sym); i++ {
		if sym[i] < sym[i-1] {
			t.Errorf("non-monotone symbolization: %s", string(sym))
		}
	}
}

func TestArrivalSymbolizerEmptyRef(t *testing.T) {
	s := FitArrivalSymbolizer(nil, 6)
	sym := s.Symbols([]float64{-1, 0.5, 100})
	if sym[0] != 'a' {
		t.Error("negative must map to 'a' even with empty reference")
	}
}

func TestPatternFrequencies(t *testing.T) {
	sym := []byte("ababab")
	f1 := PatternFrequencies(sym, 1)
	if math.Abs(f1["a"]-0.5) > 1e-12 || math.Abs(f1["b"]-0.5) > 1e-12 {
		t.Errorf("length-1 frequencies: %v", f1)
	}
	f2 := PatternFrequencies(sym, 2)
	// Subsequences: ab ba ab ba ab → ab:3/5, ba:2/5.
	if math.Abs(f2["ab"]-0.6) > 1e-12 || math.Abs(f2["ba"]-0.4) > 1e-12 {
		t.Errorf("length-2 frequencies: %v", f2)
	}
	if len(PatternFrequencies([]byte("a"), 2)) != 0 {
		t.Error("too-short string should give empty map")
	}
	// Frequencies sum to 1.
	sum := 0.0
	for _, v := range f2 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("frequency mass %v", sum)
	}
}

func TestMergeFrequencies(t *testing.T) {
	syms := [][]byte{[]byte("aaaa"), []byte("bbbb")}
	m := MergeFrequencies(syms, 1)
	if math.Abs(m["a"]-0.5) > 1e-12 || math.Abs(m["b"]-0.5) > 1e-12 {
		t.Errorf("merged: %v", m)
	}
	// Weighting by length: "aaaa" (4 patterns) + "bb" (2 patterns).
	m2 := MergeFrequencies([][]byte{[]byte("aaaa"), []byte("bb")}, 1)
	if math.Abs(m2["a"]-4.0/6) > 1e-12 {
		t.Errorf("weighted merge: %v", m2)
	}
	if len(MergeFrequencies(nil, 1)) != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestDiff(t *testing.T) {
	a := map[string]float64{"a": 0.02, "b": 0.5, "c": 0.48}
	b := map[string]float64{"b": 0.6, "c": 0.39, "d": 0.01}
	res := Diff(a, b, 0.005)
	if len(res.OnlyA) != 1 || res.OnlyA[0] != "a" {
		t.Errorf("OnlyA = %v", res.OnlyA)
	}
	if len(res.OnlyB) != 1 || res.OnlyB[0] != "d" {
		t.Errorf("OnlyB = %v", res.OnlyB)
	}
	both := sort.StringsAreSorted(res.Both)
	if !both || len(res.Both) != 2 {
		t.Errorf("Both = %v", res.Both)
	}
	// Threshold filters.
	res2 := Diff(a, b, 0.1)
	if len(res2.OnlyA) != 0 || len(res2.OnlyB) != 0 {
		t.Errorf("thresholded diff: %+v", res2)
	}
}

// The Fig 8 scenario in miniature: a reordering trace's symbols contain
// 'a'; an in-order trace's do not; Diff discovers exactly that.
func TestBehaviourDiscoveryScenario(t *testing.T) {
	rng := sim.NewRand(3, 0)
	var gt, sim_ []float64
	for i := 0; i < 2000; i++ {
		v := rng.Float64() * 5
		gt = append(gt, v)
		sim_ = append(sim_, v)
	}
	// 2% reordering in ground truth only.
	for i := 0; i < len(gt); i += 50 {
		gt[i] = -1
	}
	s := FitArrivalSymbolizer(gt, 6)
	fGT := PatternFrequencies(s.Symbols(gt), 1)
	fSim := PatternFrequencies(s.Symbols(sim_), 1)
	res := Diff(fGT, fSim, 0.001)
	if len(res.OnlyA) != 1 || res.OnlyA[0] != "a" {
		t.Errorf("discovery failed: OnlyA=%v", res.OnlyA)
	}
	if math.Abs(fGT["a"]-0.02) > 0.002 {
		t.Errorf("'a' frequency %v, want ≈0.02", fGT["a"])
	}
}
