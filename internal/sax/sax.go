// Package sax implements Symbolic Aggregate approXimation (Lin, Keogh,
// Lonardi & Chiu 2003) and the motif/pattern frequency analysis the paper
// uses for behaviour discovery (§5.1): transformed traces (e.g. inter-
// packet arrival-time differences) are discretized into symbol strings,
// frequently occurring patterns are counted, and a "diff" between the
// pattern sets of real and simulated traces surfaces behaviours the
// simulator fails to reproduce — in Fig 8, the symbol 'a' (negative
// inter-arrival, i.e. reordering) present in ground truth but absent from
// iBoxNet.
package sax

import (
	"math"
	"sort"
)

// GaussianBreakpoints returns the a−1 breakpoints that divide the standard
// normal distribution into a equiprobable regions (the classic SAX table,
// computed here via the probit function so any alphabet size works).
func GaussianBreakpoints(a int) []float64 {
	if a < 2 {
		return nil
	}
	bps := make([]float64, a-1)
	for i := 1; i < a; i++ {
		bps[i-1] = probit(float64(i) / float64(a))
	}
	return bps
}

// probit is the inverse standard-normal CDF (Acklam's rational
// approximation refined with one Newton step; |error| < 1e-9 over (0,1)).
func probit(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	var x float64
	switch {
	case p < 0.02425:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-0.02425:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Newton refinement on Φ(x) − p.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// PAA computes the Piecewise Aggregate Approximation of xs with the given
// number of segments: each output value is the mean of (len/segments)
// consecutive samples, handling non-divisible lengths fractionally.
func PAA(xs []float64, segments int) []float64 {
	n := len(xs)
	if segments <= 0 || n == 0 {
		return nil
	}
	if segments >= n {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, segments)
	for i := 0; i < segments; i++ {
		// Fractional segment boundaries.
		lo := float64(i) * float64(n) / float64(segments)
		hi := float64(i+1) * float64(n) / float64(segments)
		sum := 0.0
		for j := int(lo); j < int(math.Ceil(hi)) && j < n; j++ {
			l := math.Max(lo, float64(j))
			h := math.Min(hi, float64(j+1))
			sum += xs[j] * (h - l)
		}
		out[i] = sum / (hi - lo)
	}
	return out
}

// Discretize performs classic SAX symbolization: z-normalize, then map
// each value to a symbol 'a'.. by the Gaussian breakpoints. A constant
// series maps to the middle symbol.
func Discretize(xs []float64, alphabet int) []byte {
	if len(xs) == 0 || alphabet < 2 {
		return nil
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	sd := math.Sqrt(v / float64(len(xs)))
	out := make([]byte, len(xs))
	if sd == 0 {
		mid := byte('a' + alphabet/2)
		for i := range out {
			out[i] = mid
		}
		return out
	}
	bps := GaussianBreakpoints(alphabet)
	for i, x := range xs {
		z := (x - m) / sd
		s := sort.SearchFloat64s(bps, z)
		out[i] = byte('a' + s)
	}
	return out
}

// ArrivalSymbolizer is the Fig 8 symbolization of inter-packet arrival
// times: symbol 'a' is reserved for negative values (reordering events),
// and the positive range is divided into alphabet−1 equiprobable bins
// ('b' = small positive … last = large positive) using quantile
// breakpoints fitted on reference data.
type ArrivalSymbolizer struct {
	Alphabet    int
	breakpoints []float64 // len alphabet−2, ascending, over positives
}

// FitArrivalSymbolizer fits the positive-value quantile breakpoints on the
// reference sample (typically the ground-truth traces' inter-arrivals).
func FitArrivalSymbolizer(ref []float64, alphabet int) *ArrivalSymbolizer {
	if alphabet < 3 {
		alphabet = 3
	}
	var pos []float64
	for _, v := range ref {
		if v >= 0 {
			pos = append(pos, v)
		}
	}
	sort.Float64s(pos)
	bins := alphabet - 1
	bps := make([]float64, bins-1)
	for i := 1; i < bins; i++ {
		if len(pos) == 0 {
			bps[i-1] = float64(i)
		} else {
			idx := i * len(pos) / bins
			if idx >= len(pos) {
				idx = len(pos) - 1
			}
			bps[i-1] = pos[idx]
		}
	}
	return &ArrivalSymbolizer{Alphabet: alphabet, breakpoints: bps}
}

// Symbols maps inter-arrival values to symbols: negatives → 'a',
// positives → 'b'.. by the fitted breakpoints.
func (s *ArrivalSymbolizer) Symbols(xs []float64) []byte {
	out := make([]byte, len(xs))
	for i, v := range xs {
		if v < 0 {
			out[i] = 'a'
			continue
		}
		idx := sort.SearchFloat64s(s.breakpoints, v)
		out[i] = byte('b' + idx)
	}
	return out
}

// PatternFrequencies counts the relative frequency of every length-k
// subsequence (the motif-finding step of Lin et al. 2002 specialized to
// exhaustive counting, which is exact for the short patterns Fig 8 uses).
func PatternFrequencies(sym []byte, k int) map[string]float64 {
	out := map[string]float64{}
	if k <= 0 || len(sym) < k {
		return out
	}
	total := len(sym) - k + 1
	for i := 0; i+k <= len(sym); i++ {
		out[string(sym[i:i+k])]++
	}
	for key := range out {
		out[key] /= float64(total)
	}
	return out
}

// MergeFrequencies averages pattern frequencies across multiple symbol
// strings, weighting by each string's pattern count.
func MergeFrequencies(syms [][]byte, k int) map[string]float64 {
	out := map[string]float64{}
	total := 0
	for _, s := range syms {
		if len(s) < k {
			continue
		}
		n := len(s) - k + 1
		total += n
		for i := 0; i+k <= len(s); i++ {
			out[string(s[i:i+k])]++
		}
	}
	if total == 0 {
		return out
	}
	for key := range out {
		out[key] /= float64(total)
	}
	return out
}

// DiffResult partitions patterns by presence: OnlyA are behaviours in A
// (ground truth) missing from B (simulator) — the discovery output of
// §5.1; OnlyB the reverse; Both the intersection.
type DiffResult struct {
	OnlyA []string
	OnlyB []string
	Both  []string
}

// Diff compares two pattern-frequency tables with a minimum frequency
// threshold below which a pattern counts as absent.
func Diff(a, b map[string]float64, threshold float64) DiffResult {
	var res DiffResult
	seen := map[string]bool{}
	for p, fa := range a {
		seen[p] = true
		fb := b[p]
		switch {
		case fa >= threshold && fb >= threshold:
			res.Both = append(res.Both, p)
		case fa >= threshold:
			res.OnlyA = append(res.OnlyA, p)
		case fb >= threshold:
			res.OnlyB = append(res.OnlyB, p)
		}
	}
	for p, fb := range b {
		if !seen[p] && fb >= threshold {
			res.OnlyB = append(res.OnlyB, p)
		}
	}
	sort.Strings(res.OnlyA)
	sort.Strings(res.OnlyB)
	sort.Strings(res.Both)
	return res
}
