package cc

import (
	"math"

	"ibox/internal/sim"
)

// Reno implements classic TCP Reno congestion control: slow start,
// congestion avoidance (AIMD), and one multiplicative decrease per loss
// event (fast-recovery-like suppression of further reactions within the
// same window of data).
type Reno struct {
	cwnd     float64 // packets
	ssthresh float64
	// lastCut is when the window was last reduced; losses of packets sent
	// before that moment belong to the same congestion event (they were in
	// flight when we reacted) and are ignored.
	lastCut sim.Time
}

// NewReno returns a Reno sender with a 10-packet initial window.
func NewReno() *Reno {
	return &Reno{cwnd: 10, ssthresh: math.Inf(1), lastCut: -1}
}

func (r *Reno) Name() string { return "reno" }

func (r *Reno) OnAck(now sim.Time, ack Ack) {
	if r.cwnd < r.ssthresh {
		r.cwnd++ // slow start: +1 per ack
	} else {
		r.cwnd += 1 / r.cwnd // congestion avoidance: +1 per RTT
	}
}

func (r *Reno) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	if sendTime <= r.lastCut {
		return // already reacted to this loss event
	}
	r.lastCut = now
	r.ssthresh = math.Max(r.cwnd/2, 2)
	r.cwnd = r.ssthresh
}

func (r *Reno) Window() int         { return windowInt(r.cwnd) }
func (r *Reno) PacingRate() float64 { return 0 }

// Cubic implements TCP CUBIC (RFC 8312-style window growth): after a loss
// the window follows W(t) = C·(t−K)³ + Wmax, giving the concave-then-convex
// probing that dominates the Internet — the paper's "control" protocol A.
type Cubic struct {
	cwnd       float64
	ssthresh   float64
	wMax       float64
	epochStart sim.Time
	k          float64 // seconds
	lastCut    sim.Time
	inEpoch    bool
}

// Cubic constants per RFC 8312: C scales growth, beta is the
// multiplicative-decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// maxWindow bounds every sender's congestion window (in packets): far above
// any simulated BDP, low enough that float windows always convert to int
// safely.
const maxWindow = 1 << 20

// windowInt converts a float window to packets, clamped to [1, maxWindow].
func windowInt(w float64) int {
	if !(w > 1) { // also catches NaN
		return 1
	}
	if w > maxWindow {
		return maxWindow
	}
	return int(w)
}

// NewCubic returns a CUBIC sender with a 10-packet initial window.
func NewCubic() *Cubic {
	return &Cubic{cwnd: 10, ssthresh: math.Inf(1), lastCut: -1}
}

func (c *Cubic) Name() string { return "cubic" }

func (c *Cubic) OnAck(now sim.Time, ack Ack) {
	if c.cwnd < c.ssthresh {
		c.cwnd++
		return
	}
	if !c.inEpoch {
		c.inEpoch = true
		c.epochStart = now
		if c.wMax < c.cwnd {
			c.wMax = c.cwnd
		}
		c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	}
	t := (now - c.epochStart).Seconds()
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax
	if target > c.cwnd {
		// Approach the cubic target over one RTT's worth of acks.
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		c.cwnd += 0.01 / c.cwnd // minimal growth in the concave plateau
	}
}

func (c *Cubic) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	if sendTime <= c.lastCut {
		return
	}
	c.lastCut = now
	c.wMax = c.cwnd
	c.cwnd = math.Max(c.cwnd*cubicBeta, 2)
	c.ssthresh = c.cwnd
	c.inEpoch = false
}

func (c *Cubic) Window() int         { return windowInt(c.cwnd) }
func (c *Cubic) PacingRate() float64 { return 0 }

// Vegas implements TCP Vegas, the delay-based "treatment" protocol B of the
// paper's A/B tests: it compares expected and actual throughput and keeps
// between alpha and beta packets queued at the bottleneck, backing off on
// rising delay rather than on loss.
type Vegas struct {
	cwnd        float64
	baseRTT     sim.Time
	alpha       float64 // lower bound on queued packets
	beta        float64 // upper bound on queued packets
	gamma       float64 // slow-start exit threshold
	slowStart   bool
	lastAdjust  sim.Time
	minRTTEpoch sim.Time // min RTT seen in the current adjustment epoch
	lastCut     sim.Time
}

// NewVegas returns a Vegas sender with standard (α=2, β=4, γ=1) parameters.
func NewVegas() *Vegas {
	return &Vegas{cwnd: 2, alpha: 2, beta: 4, gamma: 1, slowStart: true, lastCut: -1}
}

func (v *Vegas) Name() string { return "vegas" }

func (v *Vegas) OnAck(now sim.Time, ack Ack) {
	rtt := ack.RTT()
	if v.baseRTT == 0 || rtt < v.baseRTT {
		v.baseRTT = rtt
	}
	if v.minRTTEpoch == 0 || rtt < v.minRTTEpoch {
		v.minRTTEpoch = rtt
	}
	// Adjust once per RTT.
	if now-v.lastAdjust < v.baseRTT {
		return
	}
	v.lastAdjust = now
	sampleRTT := v.minRTTEpoch
	v.minRTTEpoch = 0
	if sampleRTT <= 0 {
		return
	}
	// diff = cwnd · (1 − baseRTT/RTT): estimated packets queued at the
	// bottleneck by this flow.
	diff := v.cwnd * (1 - float64(v.baseRTT)/float64(sampleRTT))
	if v.slowStart {
		if diff > v.gamma {
			v.slowStart = false
			v.cwnd = math.Max(v.cwnd*3/4, 2)
		} else {
			// Vegas doubles every other RTT; per-RTT is close enough. The
			// clamp guards against float blow-up when RTT never rises (a
			// pathological fixed-delay network).
			v.cwnd = math.Min(v.cwnd*2, maxWindow)
		}
		return
	}
	switch {
	case diff < v.alpha:
		v.cwnd++
	case diff > v.beta:
		v.cwnd--
	}
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

func (v *Vegas) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	if sendTime <= v.lastCut {
		return
	}
	v.lastCut = now
	v.cwnd = math.Max(v.cwnd/2, 2)
	v.slowStart = false
}

func (v *Vegas) Window() int         { return windowInt(v.cwnd) }
func (v *Vegas) PacingRate() float64 { return 0 }
