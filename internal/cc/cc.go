// Package cc implements the congestion-control protocols used throughout
// the paper's evaluation — TCP Cubic (the paper's "control" protocol A),
// TCP Vegas (the delay-sensitive "treatment" protocol B), TCP Reno, a
// simplified BBR, a constant-bit-rate sender, and an RTC-style delay-
// gradient rate controller — together with the ACK-clocked transport
// harness (Flow) that runs any of them over any network path.
//
// The central property this package provides is the counterfactual
// machinery of §2: the same Sender implementation runs closed-loop both on
// the ground-truth simulator (internal/netsim) and on the learnt iBoxNet
// emulator (internal/iboxnet), because both expose the Network interface.
package cc

import (
	"fmt"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Network is the one-way data path a flow sends over. Packets are injected
// with Send; for each packet exactly one of the callbacks eventually fires
// on the simulation scheduler: onDeliver with the receiver-side timestamp,
// or onDrop. The return (ACK) path is modelled by the Flow itself as a
// fixed delay, matching the iBoxNet abstraction where the learnt
// parameters describe the one-way data direction.
type Network interface {
	Now() sim.Time
	Send(size int, onDeliver func(recv sim.Time), onDrop func())
}

// Ack carries the receiver feedback for one delivered packet.
type Ack struct {
	Seq      int64
	Size     int
	SendTime sim.Time // when the packet left the sender
	RecvTime sim.Time // receiver timestamp (one-way delay = RecvTime−SendTime)
	AckTime  sim.Time // when the ack reached the sender (RTT = AckTime−SendTime)
	// DeliveredAtSend is the flow's cumulative delivered byte count at the
	// moment this packet was sent; with Delivered it enables BBR-style
	// delivery-rate sampling.
	DeliveredAtSend int64
	Delivered       int64 // cumulative delivered bytes including this packet
}

// RTT returns the measured round-trip time for the acked packet.
func (a Ack) RTT() sim.Time { return a.AckTime - a.SendTime }

// OWD returns the measured one-way delay for the acked packet.
func (a Ack) OWD() sim.Time { return a.RecvTime - a.SendTime }

// Sender is a congestion-control algorithm. The Flow harness drives it
// with acknowledgment and loss events and consults Window (in packets)
// and/or PacingRate (bytes/sec) to decide when to transmit.
//
// Window-based senders (Cubic, Vegas, Reno) return PacingRate() == 0 and a
// positive Window(). Rate-based senders (CBR, RTC) return Window() == 0
// and a positive PacingRate(). Hybrid senders (BBR) return both: sends are
// paced at PacingRate and additionally capped by Window.
type Sender interface {
	// Name identifies the algorithm, e.g. "cubic".
	Name() string
	// OnAck is invoked when an acknowledgment arrives at the sender.
	OnAck(now sim.Time, ack Ack)
	// OnLoss is invoked once per packet the harness declares lost (by
	// duplicate-ack reordering threshold or retransmission timeout).
	OnLoss(now sim.Time, seq int64, sendTime sim.Time)
	// Window returns the congestion window in packets (0 = unlimited/not
	// window-controlled).
	Window() int
	// PacingRate returns the send rate in bytes/sec (0 = ack-clocked only).
	PacingRate() float64
}

// FlowConfig parameterizes a transport harness run.
type FlowConfig struct {
	PacketSize int      // bytes per packet; default 1500
	AckDelay   sim.Time // return-path delay; default 10 ms
	Start      sim.Time // when the flow begins sending
	Duration   sim.Time // how long the flow sends; required
	// DupAckThreshold is the reordering tolerance before a gap is declared
	// a loss; default 3 (TCP's classic dupack threshold).
	DupAckThreshold int
	// MinRTO bounds the retransmission-timeout fallback; default 200 ms.
	MinRTO sim.Time
	// MaxInflight caps outstanding packets as a safety net; default 10000.
	MaxInflight int
	// Bytes, when positive, ends the flow after that many bytes have been
	// sent (an application-limited transfer, e.g. one video chunk) — the
	// flow still also respects Duration as an upper bound.
	Bytes int64
	// OnComplete, when non-nil, fires once when every sent packet has been
	// acked or declared lost after the flow stopped sending — the moment a
	// byte-limited transfer is finished.
	OnComplete func(at sim.Time)
	// OnAck, when non-nil, observes every acknowledgment the harness
	// processes, after the sender's own OnAck ran — the per-packet
	// telemetry tap used by live emulation sessions (internal/session).
	// The flow's accessors (Inflight, SRTT, …) are valid inside the hook.
	OnAck func(ack Ack)
	// OnLossDetected, when non-nil, observes every packet the harness
	// declares lost (dupack gap or RTO), after the sender's OnLoss ran.
	OnLossDetected func(at sim.Time, seq int64)
}

func (c *FlowConfig) withDefaults() FlowConfig {
	out := *c
	if out.PacketSize <= 0 {
		out.PacketSize = 1500
	}
	if out.AckDelay <= 0 {
		out.AckDelay = 10 * sim.Millisecond
	}
	if out.DupAckThreshold <= 0 {
		out.DupAckThreshold = 3
	}
	if out.MinRTO <= 0 {
		out.MinRTO = 200 * sim.Millisecond
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 10000
	}
	return out
}

// Flow is the transport harness: it ack-clocks or paces a Sender over a
// Network, detects losses, and records the input–output packet trace.
type Flow struct {
	sched  *sim.Scheduler
	net    Network
	sender Sender
	cfg    FlowConfig

	nextSeq     int64
	outstanding map[int64]*outPacket
	// sendOrder lists sequence numbers in send order; front is the index
	// of the oldest possibly-outstanding entry. Gap-based loss detection
	// scans from front, which is amortized O(1) per packet regardless of
	// window size (a naive per-ack scan of the outstanding map is
	// quadratic for large windows).
	sendOrder   []int64
	front       int
	inflight    int
	highestAck  int64
	delivered   int64 // cumulative delivered bytes
	srtt        sim.Time
	rttvar      sim.Time
	rtoTimer    sim.EventID
	rtoArmed    bool
	pacingNext  sim.Time
	pacingArmed bool
	done        bool

	trace trace.Trace
}

type outPacket struct {
	seq      int64
	size     int
	sendTime sim.Time
	delAtSnd int64
	traceIdx int
}

// NewFlow builds a harness for one sender over one network.
func NewFlow(sched *sim.Scheduler, net Network, sender Sender, cfg FlowConfig) *Flow {
	if cfg.Duration <= 0 {
		panic(fmt.Sprintf("cc: flow duration must be positive, got %v", cfg.Duration))
	}
	f := &Flow{
		sched:       sched,
		net:         net,
		sender:      sender,
		cfg:         cfg.withDefaults(),
		outstanding: map[int64]*outPacket{},
		highestAck:  -1,
	}
	f.trace.Protocol = sender.Name()
	return f
}

// Start schedules the flow's first transmission opportunity.
func (f *Flow) Start() {
	at := f.cfg.Start
	if at < f.sched.Now() {
		at = f.sched.Now()
	}
	f.sched.At(at, func() {
		f.pacingNext = f.sched.Now()
		f.trySend()
	})
}

// Trace returns the packet trace recorded so far. The returned pointer
// aliases the flow's internal state; read it only after the simulation has
// been driven past the flow's end.
func (f *Flow) Trace() *trace.Trace { return &f.trace }

// Done reports whether the flow has finished sending and has no packets
// outstanding.
func (f *Flow) Done() bool { return f.done && f.inflight == 0 }

// Inflight reports the number of packets currently outstanding.
func (f *Flow) Inflight() int { return f.inflight }

// SRTT reports the current smoothed round-trip estimate (0 before the
// first ack).
func (f *Flow) SRTT() sim.Time { return f.srtt }

// DeliveredBytes reports the cumulative bytes acknowledged so far.
func (f *Flow) DeliveredBytes() int64 { return f.delivered }

// Sent reports how many packets the flow has transmitted so far.
func (f *Flow) Sent() int64 { return f.nextSeq }

// Sender returns the congestion-control algorithm driving the flow.
func (f *Flow) Sender() Sender { return f.sender }

// sendingOver reports whether the sending window of the flow has ended.
func (f *Flow) sendingOver() bool {
	if f.cfg.Bytes > 0 && f.nextSeq*int64(f.cfg.PacketSize) >= f.cfg.Bytes {
		return true
	}
	return f.sched.Now() >= f.cfg.Start+f.cfg.Duration
}

// maybeComplete fires OnComplete once the flow has stopped sending and
// nothing is outstanding.
func (f *Flow) maybeComplete() {
	if f.cfg.OnComplete == nil || !f.done || f.inflight != 0 {
		return
	}
	cb := f.cfg.OnComplete
	f.cfg.OnComplete = nil
	cb(f.sched.Now())
}

// trySend transmits as many packets as the sender's window and pacing rate
// currently allow.
func (f *Flow) trySend() {
	if f.sendingOver() {
		f.done = true
		f.maybeComplete()
		return
	}
	now := f.sched.Now()
	rate := f.sender.PacingRate()
	win := f.sender.Window()

	if rate > 0 {
		// Paced mode: one packet per size/rate interval, window as a cap if
		// the sender provides one. At most one pacing timer is ever armed.
		if now < f.pacingNext {
			f.armPacing()
			return
		}
		if win > 0 && f.inflight >= win {
			// Window-limited; the next ack will re-trigger sending.
			return
		}
		if f.inflight < f.cfg.MaxInflight {
			f.transmit()
		}
		gap := sim.Time(float64(f.cfg.PacketSize) / rate * float64(sim.Second))
		if gap < 1 {
			gap = 1
		}
		f.pacingNext = now + gap
		f.armPacing()
		return
	}

	// Pure window mode: fill the window now; acks clock further sends.
	for f.inflight < win && f.inflight < f.cfg.MaxInflight && !f.sendingOver() {
		f.transmit()
	}
}

// armPacing schedules the next paced transmission opportunity, ensuring a
// single pending pacing event regardless of how many acks call trySend in
// between.
func (f *Flow) armPacing() {
	if f.pacingArmed {
		return
	}
	f.pacingArmed = true
	f.sched.At(f.pacingNext, func() {
		f.pacingArmed = false
		f.trySend()
	})
}

// transmit sends one packet and records it.
func (f *Flow) transmit() {
	now := f.sched.Now()
	seq := f.nextSeq
	f.nextSeq++
	pkt := &outPacket{
		seq:      seq,
		size:     f.cfg.PacketSize,
		sendTime: now,
		delAtSnd: f.delivered,
		traceIdx: len(f.trace.Packets),
	}
	f.outstanding[seq] = pkt
	f.sendOrder = append(f.sendOrder, seq)
	f.inflight++
	f.trace.Packets = append(f.trace.Packets, trace.Packet{
		Seq: seq, Size: pkt.size, SendTime: now, Lost: true, // until delivered
	})
	f.armRTO()
	f.net.Send(pkt.size, func(recv sim.Time) {
		// The packet reached the receiver; the ack returns after AckDelay.
		f.trace.Packets[pkt.traceIdx].RecvTime = recv
		f.trace.Packets[pkt.traceIdx].Lost = false
		f.sched.After(f.cfg.AckDelay, func() { f.onAckArrived(pkt, recv) })
	}, func() {
		// Dropped in the network. The trace already marks it lost; the
		// sender finds out via dupacks or RTO, not via this callback.
	})
}

// onAckArrived processes the receiver's acknowledgment for pkt.
func (f *Flow) onAckArrived(pkt *outPacket, recv sim.Time) {
	now := f.sched.Now()
	if _, ok := f.outstanding[pkt.seq]; !ok {
		return // already declared lost by RTO
	}
	delete(f.outstanding, pkt.seq)
	f.inflight--
	f.delivered += int64(pkt.size)
	if pkt.seq > f.highestAck {
		f.highestAck = pkt.seq
	}
	f.updateRTT(now - pkt.sendTime)

	ack := Ack{
		Seq: pkt.seq, Size: pkt.size,
		SendTime: pkt.sendTime, RecvTime: recv, AckTime: now,
		DeliveredAtSend: pkt.delAtSnd, Delivered: f.delivered,
	}
	f.sender.OnAck(now, ack)
	if f.cfg.OnAck != nil {
		f.cfg.OnAck(ack)
	}
	f.detectLosses(now)
	f.rearmRTO()
	f.trySend()
	f.maybeComplete()
}

// detectLosses declares packets lost once DupAckThreshold higher-sequence
// packets have been acked (SACK-style gap detection). Because sequence
// numbers are sent in order and the threshold only advances, scanning from
// the front of the send-order list visits each packet once over the
// flow's lifetime.
func (f *Flow) detectLosses(now sim.Time) {
	thresh := f.highestAck - int64(f.cfg.DupAckThreshold)
	for f.front < len(f.sendOrder) {
		seq := f.sendOrder[f.front]
		pkt, ok := f.outstanding[seq]
		if !ok {
			f.front++ // already acked or declared lost
			continue
		}
		if seq >= thresh {
			break
		}
		f.front++
		delete(f.outstanding, seq)
		f.inflight--
		f.sender.OnLoss(now, pkt.seq, pkt.sendTime)
		if f.cfg.OnLossDetected != nil {
			f.cfg.OnLossDetected(now, pkt.seq)
		}
	}
	// Reclaim consumed prefix occasionally so memory stays bounded.
	if f.front > 4096 && f.front*2 > len(f.sendOrder) {
		f.sendOrder = append([]int64(nil), f.sendOrder[f.front:]...)
		f.front = 0
	}
}

// updateRTT maintains the smoothed RTT estimate (RFC 6298 coefficients).
func (f *Flow) updateRTT(rtt sim.Time) {
	if f.srtt == 0 {
		f.srtt = rtt
		f.rttvar = rtt / 2
		return
	}
	diff := f.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + rtt) / 8
}

// rto returns the current retransmission timeout.
func (f *Flow) rto() sim.Time {
	rto := f.srtt + 4*f.rttvar
	if rto < f.cfg.MinRTO {
		rto = f.cfg.MinRTO
	}
	return rto
}

func (f *Flow) armRTO() {
	if f.rtoArmed {
		return
	}
	f.rtoArmed = true
	f.rtoTimer = f.sched.After(f.rto(), f.onRTO)
}

func (f *Flow) rearmRTO() {
	if f.rtoArmed {
		f.sched.Cancel(f.rtoTimer)
		f.rtoArmed = false
	}
	if len(f.outstanding) > 0 {
		f.armRTO()
	}
}

// onRTO fires when no ack has arrived for a full RTO: every outstanding
// packet is declared lost (tail-loss recovery).
func (f *Flow) onRTO() {
	f.rtoArmed = false
	now := f.sched.Now()
	var seqs []int64
	for seq := range f.outstanding {
		seqs = append(seqs, seq)
	}
	for i := 1; i < len(seqs); i++ {
		for j := i; j > 0 && seqs[j] < seqs[j-1]; j-- {
			seqs[j], seqs[j-1] = seqs[j-1], seqs[j]
		}
	}
	for _, seq := range seqs {
		pkt := f.outstanding[seq]
		delete(f.outstanding, seq)
		f.inflight--
		f.sender.OnLoss(now, pkt.seq, pkt.sendTime)
		if f.cfg.OnLossDetected != nil {
			f.cfg.OnLossDetected(now, pkt.seq)
		}
	}
	f.trySend()
	f.maybeComplete()
}
