package cc

import (
	"math"

	"ibox/internal/sim"
)

// BBR is a simplified BBRv1: it estimates the bottleneck bandwidth with a
// windowed-max filter over delivery-rate samples and the propagation RTT
// with a windowed-min filter, paces at gain × btlBw, and caps inflight at
// 2×BDP. The startup phase uses a high gain until bandwidth growth
// plateaus; steady state cycles pacing gains to probe for bandwidth and
// drain the queue.
type BBR struct {
	packetSize int

	btlBw    float64 // bytes/sec, windowed max
	bwWindow []bwSample
	minRTT   sim.Time
	rttStamp sim.Time

	state      bbrState
	fullBwSeen float64
	fullBwCnt  int
	cycleIdx   int
	cycleStamp sim.Time
}

type bwSample struct {
	at sim.Time
	bw float64
}

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
)

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const (
	bbrStartupGain = 2.885 // 2/ln(2)
	bbrDrainGain   = 1 / 2.885
	bbrBwWindowDur = 10 * sim.Second
)

// NewBBR returns a simplified BBR sender; packetSize must match the flow's.
func NewBBR(packetSize int) *BBR {
	if packetSize <= 0 {
		packetSize = 1500
	}
	return &BBR{packetSize: packetSize, btlBw: 1e5} // modest initial rate estimate
}

func (b *BBR) Name() string { return "bbr" }

func (b *BBR) OnAck(now sim.Time, ack Ack) {
	// Delivery-rate sample: bytes delivered between this packet's send and
	// now, over that interval.
	elapsed := ack.AckTime - ack.SendTime
	if elapsed > 0 {
		bw := float64(ack.Delivered-ack.DeliveredAtSend) / elapsed.Seconds()
		b.bwWindow = append(b.bwWindow, bwSample{now, bw})
	}
	// Expire old samples and recompute the max filter.
	cut := now - bbrBwWindowDur
	keep := b.bwWindow[:0]
	maxBw := 0.0
	for _, s := range b.bwWindow {
		if s.at >= cut {
			keep = append(keep, s)
			if s.bw > maxBw {
				maxBw = s.bw
			}
		}
	}
	b.bwWindow = keep
	if maxBw > 0 {
		b.btlBw = maxBw
	}

	rtt := ack.RTT()
	if b.minRTT == 0 || rtt < b.minRTT || now-b.rttStamp > 10*sim.Second {
		b.minRTT = rtt
		b.rttStamp = now
	}

	switch b.state {
	case bbrStartup:
		// Exit startup when bandwidth stops growing 25% per round (three
		// consecutive non-growing samples).
		if b.btlBw > b.fullBwSeen*1.25 {
			b.fullBwSeen = b.btlBw
			b.fullBwCnt = 0
		} else {
			b.fullBwCnt++
			if b.fullBwCnt >= 3 {
				b.state = bbrDrain
			}
		}
	case bbrDrain:
		// Drain until inflight ≲ BDP, approximated by one minRTT of draining.
		if now-b.rttStamp > b.minRTT {
			b.state = bbrProbeBW
			b.cycleStamp = now
		}
	case bbrProbeBW:
		if b.minRTT > 0 && now-b.cycleStamp > b.minRTT {
			b.cycleIdx = (b.cycleIdx + 1) % len(bbrCycleGains)
			b.cycleStamp = now
		}
	}
}

func (b *BBR) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	// BBRv1 largely ignores individual losses; rate adapts via the filters.
}

// Window caps inflight at 2×BDP (in packets).
func (b *BBR) Window() int {
	if b.minRTT == 0 || b.btlBw == 0 {
		return 64
	}
	bdpBytes := b.btlBw * b.minRTT.Seconds()
	w := int(math.Ceil(2 * bdpBytes / float64(b.packetSize)))
	if w < 4 {
		w = 4
	}
	return w
}

// PacingRate is gain × estimated bottleneck bandwidth.
func (b *BBR) PacingRate() float64 {
	gain := 1.0
	switch b.state {
	case bbrStartup:
		gain = bbrStartupGain
	case bbrDrain:
		gain = bbrDrainGain
	case bbrProbeBW:
		gain = bbrCycleGains[b.cycleIdx]
	}
	return gain * b.btlBw
}
