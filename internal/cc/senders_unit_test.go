package cc

import (
	"testing"

	"ibox/internal/sim"
)

// ackAt builds a simple ack with the given timing.
func ackAt(seq int64, send, owd, rtt sim.Time) Ack {
	return Ack{
		Seq: seq, Size: 1500,
		SendTime: send, RecvTime: send + owd, AckTime: send + rtt,
	}
}

func TestRenoSlowStartDoublesPerRTT(t *testing.T) {
	r := NewReno()
	w0 := r.Window()
	// One ack per outstanding packet: slow start adds 1 per ack.
	for i := 0; i < w0; i++ {
		r.OnAck(sim.Second, ackAt(int64(i), 0, 20*sim.Millisecond, 40*sim.Millisecond))
	}
	if got := r.Window(); got != 2*w0 {
		t.Errorf("after one slow-start round: cwnd %d, want %d", got, 2*w0)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	// Leave slow start via a loss.
	r.OnLoss(sim.Second, 5, 900*sim.Millisecond)
	w := r.Window()
	// Two rounds' worth of acks: roughly +2 packets (1/cwnd per ack; the
	// harmonic growth plus integer truncation makes the bound one-sided).
	for i := 0; i < 2*w; i++ {
		r.OnAck(2*sim.Second, ackAt(int64(100+i), sim.Second, 20*sim.Millisecond, 40*sim.Millisecond))
	}
	if got := r.Window(); got < w+1 || got > w+3 {
		t.Errorf("two CA rounds grew cwnd %d → %d, want ≈+2", w, got)
	}
}

func TestRenoOneDecreasePerLossEvent(t *testing.T) {
	r := NewReno()
	for i := 0; i < 100; i++ {
		r.OnAck(sim.Second, ackAt(int64(i), 0, 20*sim.Millisecond, 40*sim.Millisecond))
	}
	w := r.Window()
	// Three losses of packets all sent before the first cut: one decrease.
	r.OnLoss(2*sim.Second, 200, 1900*sim.Millisecond)
	after1 := r.Window()
	r.OnLoss(2*sim.Second+sim.Millisecond, 201, 1901*sim.Millisecond)
	r.OnLoss(2*sim.Second+2*sim.Millisecond, 202, 1902*sim.Millisecond)
	if got := r.Window(); got != after1 {
		t.Errorf("same-event losses decreased again: %d → %d", after1, got)
	}
	if after1 >= w {
		t.Errorf("no decrease: %d → %d", w, after1)
	}
	// A loss of a packet sent after the cut is a new event.
	r.OnLoss(3*sim.Second, 300, 2500*sim.Millisecond)
	if got := r.Window(); got >= after1 {
		t.Errorf("new-event loss did not decrease: %d → %d", after1, got)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	c := NewCubic()
	// Reach congestion avoidance with a healthy window.
	for i := 0; i < 200; i++ {
		c.OnAck(sim.Second, ackAt(int64(i), 0, 20*sim.Millisecond, 40*sim.Millisecond))
	}
	c.OnLoss(2*sim.Second, 500, 1900*sim.Millisecond)
	wCut := float64(c.Window())
	// Feed acks over simulated time and record the window trajectory.
	var traj []float64
	now := 2 * sim.Second
	// K = cbrt(Wmax·0.3/0.4) ≈ 5.4 s for Wmax ≈ 210, so run well past it
	// to see the convex region.
	for step := 0; step < 300; step++ {
		now += 50 * sim.Millisecond
		for k := 0; k < 20; k++ {
			c.OnAck(now, ackAt(int64(1000+step*20+k), now-40*sim.Millisecond, 20*sim.Millisecond, 40*sim.Millisecond))
		}
		traj = append(traj, float64(c.Window()))
	}
	// The window must regain the pre-cut level (concave approach to Wmax)…
	reached := false
	for _, w := range traj {
		if w >= wCut/cubicBeta*0.95 {
			reached = true
		}
	}
	if !reached {
		t.Errorf("cubic never re-approached Wmax: cut at %.0f, max %v", wCut, max64(traj))
	}
	// …and then keep growing past it (convex probing).
	if last := traj[len(traj)-1]; last <= wCut/cubicBeta+2 {
		t.Errorf("cubic stalled at plateau: final %f ≤ Wmax %f", last, wCut/cubicBeta)
	}
	// Monotone non-decreasing absent losses.
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1] {
			t.Fatalf("window decreased without loss at step %d", i)
		}
	}
}

func max64(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func TestVegasBacksOffOnRisingRTT(t *testing.T) {
	v := NewVegas()
	// Warm up with base RTT 40 ms until slow start exits.
	now := sim.Time(0)
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, ackAt(int64(i), now-40*sim.Millisecond, 20*sim.Millisecond, 40*sim.Millisecond))
	}
	wLow := v.Window()
	// RTT jumps to 120 ms (deep queue): Vegas must shrink its window.
	for i := 0; i < 400; i++ {
		now += 10 * sim.Millisecond
		v.OnAck(now, ackAt(int64(1000+i), now-120*sim.Millisecond, 100*sim.Millisecond, 120*sim.Millisecond))
	}
	if got := v.Window(); got >= wLow {
		t.Errorf("vegas window %d did not shrink from %d under rising RTT", got, wLow)
	}
}

func TestBBRStartupExitsOnPlateau(t *testing.T) {
	b := NewBBR(1500)
	if b.PacingRate() <= b.btlBw {
		t.Fatal("startup gain not applied")
	}
	// Feed acks with a fixed delivery rate: bandwidth stops growing, so
	// startup must exit within a few samples.
	now := sim.Time(0)
	delivered := int64(0)
	for i := 0; i < 50 && b.state == bbrStartup; i++ {
		now += 10 * sim.Millisecond
		delivered += 1500
		b.OnAck(now, Ack{
			Seq: int64(i), Size: 1500,
			SendTime: now - 40*sim.Millisecond, RecvTime: now - 20*sim.Millisecond, AckTime: now,
			DeliveredAtSend: delivered - 6000, Delivered: delivered,
		})
	}
	if b.state == bbrStartup {
		t.Error("BBR never exited startup on a bandwidth plateau")
	}
}

func TestBBRWindowTracksBDP(t *testing.T) {
	b := NewBBR(1500)
	now := sim.Time(0)
	delivered := int64(0)
	for i := 0; i < 200; i++ {
		now += 10 * sim.Millisecond
		delivered += 1500
		b.OnAck(now, Ack{
			Seq: int64(i), Size: 1500,
			SendTime: now - 40*sim.Millisecond, RecvTime: now - 20*sim.Millisecond, AckTime: now,
			DeliveredAtSend: delivered - 6000, Delivered: delivered,
		})
	}
	// Delivery-rate samples: 6000 B per 40 ms = 150 kB/s; BDP at 40 ms RTT
	// = 6 kB = 4 packets; window = 2×BDP = 8 (floored at 4).
	w := b.Window()
	if w < 4 || w > 16 {
		t.Errorf("BBR window %d implausible for 150 kB/s × 40 ms", w)
	}
}

func TestRTCIncreasesWhenStableDecreasesOnGradient(t *testing.T) {
	r := NewRTC(RTCConfig{InitialRate: 100_000, MaxRate: 1_000_000})
	now := sim.Time(0)
	// Stable delay: rate must grow.
	for i := 0; i < 100; i++ {
		now += 10 * sim.Millisecond
		r.OnAck(now, ackAt(int64(i), now-40*sim.Millisecond, 30*sim.Millisecond, 40*sim.Millisecond))
	}
	grown := r.Rate()
	if grown <= 100_000 {
		t.Errorf("rate %f did not grow under stable delay", grown)
	}
	// Rising delay: rate must fall.
	owd := 30 * sim.Millisecond
	for i := 0; i < 100; i++ {
		now += 10 * sim.Millisecond
		owd += 2 * sim.Millisecond
		r.OnAck(now, ackAt(int64(1000+i), now-owd-10*sim.Millisecond, owd, owd+10*sim.Millisecond))
	}
	if got := r.Rate(); got >= grown {
		t.Errorf("rate %f did not fall under rising delay (was %f)", got, grown)
	}
}
