package cc

import "fmt"

// NewSender constructs a sender by protocol name. Supported names:
// "cubic", "vegas", "reno", "bbr", "cbr" and "rtc". CBR's rate and RTC's
// configuration take library defaults; construct those directly when the
// defaults do not fit.
func NewSender(name string, packetSize int) (Sender, error) {
	switch name {
	case "cubic":
		return NewCubic(), nil
	case "vegas":
		return NewVegas(), nil
	case "reno":
		return NewReno(), nil
	case "bbr":
		return NewBBR(packetSize), nil
	case "cbr":
		return NewCBR(125_000), nil // 1 Mbps default
	case "rtc":
		return NewRTC(RTCConfig{}), nil
	case "ledbat":
		return NewLEDBAT(LEDBATConfig{}), nil
	}
	return nil, fmt.Errorf("cc: unknown protocol %q", name)
}

// Protocols lists the names NewSender accepts.
func Protocols() []string {
	return []string{"cubic", "vegas", "reno", "bbr", "cbr", "rtc", "ledbat"}
}
