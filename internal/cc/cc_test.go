package cc

import (
	"math"
	"testing"

	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// runFlow runs a sender over a netsim path for dur and returns the trace.
func runFlow(t *testing.T, sender Sender, cfg netsim.Config, dur sim.Time) *trace.Trace {
	t.Helper()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	flow := NewFlow(sched, path.Port("main"), sender, FlowConfig{
		Duration: dur,
		AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + 5*sim.Second)
	tr := flow.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace from %s: %v", sender.Name(), err)
	}
	return tr
}

func tenMbps() netsim.Config {
	return netsim.Config{
		Rate:        1_250_000,
		BufferBytes: 125_000, // 100 ms of buffering
		PropDelay:   20 * sim.Millisecond,
		Seed:        42,
	}
}

func TestCubicSaturatesBottleneck(t *testing.T) {
	tr := runFlow(t, NewCubic(), tenMbps(), 20*sim.Second)
	// Cubic should achieve most of the 10 Mbps bottleneck.
	util := tr.Throughput() / 10e6
	if util < 0.7 {
		t.Errorf("cubic utilization = %.2f, want ≥ 0.7", util)
	}
	if util > 1.02 {
		t.Errorf("cubic utilization = %.2f exceeds link rate", util)
	}
	// A loss-based protocol against a drop-tail buffer must see some loss.
	if tr.LossRate() == 0 {
		t.Error("cubic saw no loss on a saturated drop-tail queue")
	}
}

func TestRenoSaturatesBottleneck(t *testing.T) {
	tr := runFlow(t, NewReno(), tenMbps(), 20*sim.Second)
	util := tr.Throughput() / 10e6
	if util < 0.6 {
		t.Errorf("reno utilization = %.2f, want ≥ 0.6", util)
	}
}

func TestVegasLowDelayVsCubic(t *testing.T) {
	// The paper picks Vegas as treatment because its delay sensitivity makes
	// it behave very differently from Cubic: lower queueing delay and
	// (near-)zero loss on the same path.
	cubic := runFlow(t, NewCubic(), tenMbps(), 20*sim.Second)
	vegas := runFlow(t, NewVegas(), tenMbps(), 20*sim.Second)
	cp95 := cubic.DelayPercentile(95)
	vp95 := vegas.DelayPercentile(95)
	if !(vp95 < cp95) {
		t.Errorf("vegas p95 delay %.1fms not below cubic %.1fms", vp95, cp95)
	}
	if vegas.LossRate() > cubic.LossRate() {
		t.Errorf("vegas loss %.4f exceeds cubic loss %.4f", vegas.LossRate(), cubic.LossRate())
	}
	// Vegas should still get reasonable throughput.
	if vegas.Throughput() < 2e6 {
		t.Errorf("vegas throughput %.0f too low", vegas.Throughput())
	}
}

func TestBBRTracksBandwidth(t *testing.T) {
	tr := runFlow(t, NewBBR(1500), tenMbps(), 20*sim.Second)
	util := tr.Throughput() / 10e6
	if util < 0.6 {
		t.Errorf("bbr utilization = %.2f, want ≥ 0.6", util)
	}
	if util > 1.05 {
		t.Errorf("bbr utilization = %.2f exceeds link rate", util)
	}
}

func TestCBRHoldsConstantRate(t *testing.T) {
	// 2 Mbps CBR over a 10 Mbps link: ~no queueing, rate equals target.
	tr := runFlow(t, NewCBR(250_000), tenMbps(), 10*sim.Second)
	if math.Abs(tr.Throughput()-2e6)/2e6 > 0.05 {
		t.Errorf("CBR throughput = %.0f, want ≈2e6", tr.Throughput())
	}
	// Delay should stay near propagation (no persistent queue).
	if p95 := tr.DelayPercentile(95); p95 > 30 {
		t.Errorf("CBR p95 delay = %.1fms, want near propagation 20ms", p95)
	}
}

func TestCBROverloadedSeesLossAndDelay(t *testing.T) {
	// 20 Mbps CBR into a 10 Mbps link: heavy loss, delay pinned at buffer.
	tr := runFlow(t, NewCBR(2_500_000), tenMbps(), 10*sim.Second)
	if tr.LossRate() < 0.3 {
		t.Errorf("overloaded CBR loss = %.2f, want ≥ 0.3", tr.LossRate())
	}
	// Queueing delay should approach buffer/rate = 100 ms + 20 ms prop.
	if p95 := tr.DelayPercentile(95); p95 < 90 {
		t.Errorf("overloaded CBR p95 delay = %.1fms, want ≈120ms", p95)
	}
}

func TestRTCBacksOffUnderCongestion(t *testing.T) {
	// RTC shares a 10 Mbps link with 8 Mbps of cross traffic; it must
	// converge to roughly the residual capacity and keep delay moderate.
	cfg := tenMbps()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	path.AddCrossTraffic(netsim.ConstantBitRate{Rate: 1_000_000, From: 0, To: 30 * sim.Second})
	rtc := NewRTC(RTCConfig{InitialRate: 250_000, MaxRate: 2_500_000})
	flow := NewFlow(sched, path.Port("main"), rtc, FlowConfig{
		Duration: 30 * sim.Second,
		AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(35 * sim.Second)
	tr := flow.Trace()
	// Residual capacity is 2 Mbps; RTC should be in its neighbourhood and
	// must not sit at its 20 Mbps max.
	tput := tr.Throughput()
	if tput > 4e6 {
		t.Errorf("RTC throughput %.0f far above residual capacity 2e6", tput)
	}
	if tput < 0.5e6 {
		t.Errorf("RTC throughput %.0f collapsed below 0.5 Mbps", tput)
	}
	if tr.LossRate() > 0.2 {
		t.Errorf("RTC loss rate %.2f too high for a delay-based controller", tr.LossRate())
	}
}

func TestTwoCubicFlowsShare(t *testing.T) {
	// Two closed-loop Cubic flows on one path split the bottleneck.
	cfg := tenMbps()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	f1 := NewFlow(sched, path.Port("a"), NewCubic(), FlowConfig{Duration: 20 * sim.Second, AckDelay: cfg.PropDelay})
	f2 := NewFlow(sched, path.Port("b"), NewCubic(), FlowConfig{Duration: 20 * sim.Second, AckDelay: cfg.PropDelay})
	f1.Start()
	f2.Start()
	sched.RunUntil(25 * sim.Second)
	t1, t2 := f1.Trace().Throughput(), f2.Trace().Throughput()
	total := t1 + t2
	if total < 7e6 || total > 10.5e6 {
		t.Errorf("aggregate of two cubic flows = %.1f Mbps, want ≈10", total/1e6)
	}
	// Rough fairness: neither flow starved.
	if t1 < 1e6 || t2 < 1e6 {
		t.Errorf("unfair split: %.1f / %.1f Mbps", t1/1e6, t2/1e6)
	}
}

func TestFlowTraceAccounting(t *testing.T) {
	tr := runFlow(t, NewCubic(), tenMbps(), 5*sim.Second)
	if len(tr.Packets) == 0 {
		t.Fatal("no packets recorded")
	}
	// Seqs contiguous from 0.
	for i, p := range tr.Packets {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
		if p.Size != 1500 {
			t.Fatalf("packet %d has size %d", i, p.Size)
		}
	}
	// All sends inside [0, duration].
	last := tr.Packets[len(tr.Packets)-1].SendTime
	if last > 5*sim.Second {
		t.Errorf("packet sent at %v after duration", last)
	}
}

func TestFlowRespectsStartTime(t *testing.T) {
	cfg := tenMbps()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	flow := NewFlow(sched, path.Port("m"), NewCubic(), FlowConfig{
		Start: 2 * sim.Second, Duration: 3 * sim.Second, AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(10 * sim.Second)
	tr := flow.Trace()
	if len(tr.Packets) == 0 {
		t.Fatal("no packets")
	}
	if tr.Packets[0].SendTime < 2*sim.Second {
		t.Errorf("first packet at %v, before start time", tr.Packets[0].SendTime)
	}
}

func TestFlowDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero duration did not panic")
		}
	}()
	NewFlow(sim.NewScheduler(), nil, NewCubic(), FlowConfig{})
}

func TestRTODetectsTailLoss(t *testing.T) {
	// A path that black-holes everything: the sender must detect losses via
	// RTO rather than hang, and the trace must mark all packets lost.
	sched := sim.NewScheduler()
	net := &blackhole{sched: sched}
	sender := NewReno()
	flow := NewFlow(sched, net, sender, FlowConfig{Duration: 2 * sim.Second})
	flow.Start()
	sched.RunUntil(10 * sim.Second)
	tr := flow.Trace()
	if len(tr.Packets) == 0 {
		t.Fatal("no packets sent")
	}
	if tr.LossRate() != 1 {
		t.Errorf("loss rate = %v, want 1", tr.LossRate())
	}
	if !flow.Done() {
		t.Error("flow not done after RTO drained outstanding packets")
	}
}

// blackhole drops every packet.
type blackhole struct{ sched *sim.Scheduler }

func (b *blackhole) Now() sim.Time { return b.sched.Now() }
func (b *blackhole) Send(size int, onDeliver func(sim.Time), onDrop func()) {
	if onDrop != nil {
		b.sched.After(sim.Millisecond, onDrop)
	}
}

func TestDupAckLossDetection(t *testing.T) {
	// Drop exactly one mid-stream packet; the sender must see exactly one
	// OnLoss (via dupacks) and the trace must mark exactly that packet.
	sched := sim.NewScheduler()
	net := &dropNth{sched: sched, n: 30}
	rec := &recordingSender{win: 10}
	flow := NewFlow(sched, net, rec, FlowConfig{Duration: sim.Second})
	flow.Start()
	sched.RunUntil(5 * sim.Second)
	if len(rec.losses) != 1 {
		t.Fatalf("sender saw %d losses, want 1 (%v)", len(rec.losses), rec.losses)
	}
	if rec.losses[0] != 30 {
		t.Errorf("lost seq = %d, want 30", rec.losses[0])
	}
	tr := flow.Trace()
	for _, p := range tr.Packets {
		if p.Lost != (p.Seq == 30) {
			t.Errorf("packet %d lost=%v", p.Seq, p.Lost)
		}
	}
}

// dropNth delivers everything except the n-th packet, with fixed delay.
type dropNth struct {
	sched *sim.Scheduler
	n     int
	count int
}

func (d *dropNth) Now() sim.Time { return d.sched.Now() }
func (d *dropNth) Send(size int, onDeliver func(sim.Time), onDrop func()) {
	i := d.count
	d.count++
	if i == d.n {
		d.sched.After(sim.Millisecond, onDrop)
		return
	}
	d.sched.After(10*sim.Millisecond, func() { onDeliver(d.sched.Now()) })
}

// recordingSender is a fixed-window sender that records loss callbacks.
type recordingSender struct {
	win    int
	losses []int64
}

func (r *recordingSender) Name() string        { return "recording" }
func (r *recordingSender) OnAck(sim.Time, Ack) {}
func (r *recordingSender) OnLoss(_ sim.Time, seq int64, _ sim.Time) {
	r.losses = append(r.losses, seq)
}
func (r *recordingSender) Window() int         { return r.win }
func (r *recordingSender) PacingRate() float64 { return 0 }

func TestRegistry(t *testing.T) {
	for _, name := range Protocols() {
		s, err := NewSender(name, 1500)
		if err != nil {
			t.Errorf("NewSender(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("NewSender(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := NewSender("nope", 1500); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestDeterministicFlows(t *testing.T) {
	run := func() float64 {
		cfg := tenMbps()
		cfg.Cellular = &netsim.CellularModel{Interval: 100 * sim.Millisecond, Sigma: 0.3, MinShare: 0.3, MaxShare: 1.2}
		sched := sim.NewScheduler()
		path := netsim.New(sched, cfg)
		flow := NewFlow(sched, path.Port("m"), NewCubic(), FlowConfig{Duration: 10 * sim.Second, AckDelay: cfg.PropDelay})
		flow.Start()
		sched.RunUntil(12 * sim.Second)
		return flow.Trace().Throughput()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestAckFields(t *testing.T) {
	a := Ack{SendTime: sim.Second, RecvTime: sim.Second + 30*sim.Millisecond, AckTime: sim.Second + 50*sim.Millisecond}
	if a.OWD() != 30*sim.Millisecond {
		t.Errorf("OWD = %v", a.OWD())
	}
	if a.RTT() != 50*sim.Millisecond {
		t.Errorf("RTT = %v", a.RTT())
	}
}

func TestByteLimitedFlowCompletes(t *testing.T) {
	cfg := tenMbps()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	var doneAt sim.Time = -1
	flow := NewFlow(sched, path.Port("m"), NewCubic(), FlowConfig{
		Duration: 60 * sim.Second, // generous upper bound
		Bytes:    750_000,         // 500 × 1500 B
		AckDelay: cfg.PropDelay,
		OnComplete: func(at sim.Time) {
			if doneAt >= 0 {
				t.Error("OnComplete fired twice")
			}
			doneAt = at
		},
	})
	flow.Start()
	sched.RunUntil(30 * sim.Second)
	if doneAt < 0 {
		t.Fatal("transfer never completed")
	}
	tr := flow.Trace()
	if got := int64(len(tr.Packets)) * 1500; got != 750_000 {
		t.Errorf("sent %d bytes, want exactly 750000", got)
	}
	// 750 kB minus drop-tail losses at ≤10 Mbps: a few hundred ms minimum.
	if doneAt < 300*sim.Millisecond || doneAt > 10*sim.Second {
		t.Errorf("completion at %v implausible", doneAt)
	}
	if !flow.Done() {
		t.Error("flow not done")
	}
}

func TestByteLimitedFlowCompletesDespiteLoss(t *testing.T) {
	// A lossy path: OnComplete must still fire (losses resolved by dupack
	// or RTO, not hanging the inflight count).
	cfg := tenMbps()
	cfg.LossProb = 0.05
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	fired := false
	flow := NewFlow(sched, path.Port("m"), NewCubic(), FlowConfig{
		Duration: 60 * sim.Second, Bytes: 300_000, AckDelay: cfg.PropDelay,
		OnComplete: func(sim.Time) { fired = true },
	})
	flow.Start()
	sched.RunUntil(30 * sim.Second)
	if !fired {
		t.Error("OnComplete never fired on a lossy path")
	}
}
