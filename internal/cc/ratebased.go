package cc

import (
	"math"

	"ibox/internal/sim"
)

// CBR is a constant-bit-rate sender: it paces packets at a fixed rate and
// never reacts to the network. §4.2 uses a high-rate CBR sender to expose
// the control-loop bias of models trained only on adaptive traffic.
type CBR struct {
	rate float64 // bytes per second
}

// NewCBR returns a sender pacing at rate bytes/sec.
func NewCBR(rate float64) *CBR {
	if rate <= 0 {
		panic("cc: CBR rate must be positive")
	}
	return &CBR{rate: rate}
}

func (c *CBR) Name() string                                      { return "cbr" }
func (c *CBR) OnAck(now sim.Time, ack Ack)                       {}
func (c *CBR) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {}
func (c *CBR) Window() int                                       { return 0 }
func (c *CBR) PacingRate() float64                               { return c.rate }

// RTC is a real-time-conferencing-style rate controller in the spirit of
// Google Congestion Control: it watches the gradient of one-way delay,
// multiplicatively decreasing when delay is rising (congestion building)
// and gently increasing while delay is stable. Its tight delay-sensitive
// control loop is exactly the trace source that induces the control-loop
// bias studied in §4.2 and Table 1.
type RTC struct {
	rate    float64 // bytes per second
	minRate float64
	maxRate float64

	lastOWD      sim.Time
	gradient     float64 // filtered d(OWD)/dt, ms per ms
	lastAckTime  sim.Time
	lastAdjust   sim.Time
	overuseCount int
	lossWindow   int
	ackWindow    int
}

// RTCConfig parameterizes the controller. Zero values select defaults.
type RTCConfig struct {
	InitialRate float64 // bytes/sec; default 62500 (500 kbps)
	MinRate     float64 // default 12500 (100 kbps)
	MaxRate     float64 // default 2.5e6 (20 Mbps)
}

// NewRTC returns a delay-gradient rate controller.
func NewRTC(cfg RTCConfig) *RTC {
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = 62_500
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = 12_500
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = 2_500_000
	}
	return &RTC{rate: cfg.InitialRate, minRate: cfg.MinRate, maxRate: cfg.MaxRate}
}

func (r *RTC) Name() string { return "rtc" }

// rtcOveruseThreshold is the filtered delay-gradient (dimensionless,
// ms delay growth per ms wall time) above which the controller declares
// overuse.
const rtcOveruseThreshold = 0.01

func (r *RTC) OnAck(now sim.Time, ack Ack) {
	r.ackWindow++
	owd := ack.OWD()
	if r.lastAckTime > 0 && now > r.lastAckTime {
		instGrad := float64(owd-r.lastOWD) / float64(now-r.lastAckTime)
		// Exponentially weighted filter over the instantaneous gradient.
		r.gradient = 0.9*r.gradient + 0.1*instGrad
	}
	r.lastOWD = owd
	r.lastAckTime = now

	// Rate decisions at 100 ms cadence.
	if now-r.lastAdjust < 100*sim.Millisecond {
		return
	}
	r.lastAdjust = now
	lossFrac := 0.0
	if r.ackWindow+r.lossWindow > 0 {
		lossFrac = float64(r.lossWindow) / float64(r.ackWindow+r.lossWindow)
	}
	r.ackWindow, r.lossWindow = 0, 0

	switch {
	case r.gradient > rtcOveruseThreshold || lossFrac > 0.1:
		r.overuseCount++
		r.rate *= 0.85
	case r.gradient < -rtcOveruseThreshold/2:
		// Delay falling: hold, let the queue drain.
	default:
		r.rate *= 1.05
	}
	r.rate = math.Max(r.minRate, math.Min(r.maxRate, r.rate))
}

func (r *RTC) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	r.lossWindow++
}

func (r *RTC) Window() int { return 0 }

func (r *RTC) PacingRate() float64 { return r.rate }

// Rate exposes the controller's current target rate (for tests and
// diagnostics).
func (r *RTC) Rate() float64 { return r.rate }
