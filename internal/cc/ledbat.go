package cc

import (
	"math"

	"ibox/internal/sim"
)

// LEDBAT implements the Low Extra Delay Background Transport controller
// (RFC 6817), the scavenger class used by BitTorrent/µTP and OS update
// services: it targets a fixed small amount of *extra* one-way queueing
// delay and backs off proportionally as the measurement approaches the
// target, so it yields to any loss- or delay-based foreground flow while
// consuming spare capacity otherwise. Including it broadens the treatment-
// protocol diversity available to the A/B machinery (§2): LEDBAT is even
// more delay-averse than Vegas.
type LEDBAT struct {
	cwnd    float64 // packets
	target  sim.Time
	gain    float64
	base    sim.Time // base (propagation) one-way delay estimate
	baseAt  sim.Time // when base was last reset
	lastCut sim.Time
}

// LEDBATConfig parameterizes the controller; zero values pick RFC-style
// defaults scaled to simulation (Target 25 ms, Gain 1).
type LEDBATConfig struct {
	Target sim.Time // target extra queueing delay; default 25 ms
	Gain   float64  // cwnd gain per off-target RTT; default 1
}

// NewLEDBAT returns a LEDBAT sender.
func NewLEDBAT(cfg LEDBATConfig) *LEDBAT {
	if cfg.Target <= 0 {
		cfg.Target = 25 * sim.Millisecond
	}
	if cfg.Gain <= 0 {
		cfg.Gain = 1
	}
	return &LEDBAT{cwnd: 2, target: cfg.Target, gain: cfg.Gain, lastCut: -1}
}

func (l *LEDBAT) Name() string { return "ledbat" }

func (l *LEDBAT) OnAck(now sim.Time, ack Ack) {
	owd := ack.OWD()
	// Base-delay filter with a 2-minute reset horizon (route changes).
	if l.base == 0 || owd < l.base || now-l.baseAt > 2*60*sim.Second {
		l.base = owd
		l.baseAt = now
	}
	queuing := owd - l.base
	offTarget := float64(l.target-queuing) / float64(l.target)
	// RFC 6817 §2.4.2 controller, per-ack form.
	l.cwnd += l.gain * offTarget / l.cwnd
	if l.cwnd < 2 {
		l.cwnd = 2
	}
}

func (l *LEDBAT) OnLoss(now sim.Time, seq int64, sendTime sim.Time) {
	if sendTime <= l.lastCut {
		return
	}
	l.lastCut = now
	l.cwnd = math.Max(l.cwnd/2, 2)
}

func (l *LEDBAT) Window() int         { return windowInt(l.cwnd) }
func (l *LEDBAT) PacingRate() float64 { return 0 }
