package cc

import (
	"testing"

	"ibox/internal/netsim"
	"ibox/internal/sim"
)

func TestLEDBATKeepsQueueNearTarget(t *testing.T) {
	// Alone on a 10 Mbps path, LEDBAT should hold queueing delay near its
	// 25 ms target — far below the 100 ms the buffer allows — while still
	// using most of the link.
	tr := runFlow(t, NewLEDBAT(LEDBATConfig{}), tenMbps(), 20*sim.Second)
	minD, _ := tr.MinDelay()
	p95 := tr.DelayPercentile(95)
	queuing95 := p95 - minD.Millis()
	if queuing95 > 60 {
		t.Errorf("p95 queueing delay = %.1f ms, want near 25 ms target", queuing95)
	}
	if queuing95 < 5 {
		t.Errorf("p95 queueing delay = %.1f ms: not using the queue at all?", queuing95)
	}
	if util := tr.Throughput() / 10e6; util < 0.6 {
		t.Errorf("solo utilization = %.2f, want ≥ 0.6", util)
	}
	if tr.LossRate() > 0.01 {
		t.Errorf("loss rate %.4f: LEDBAT should stay under the buffer", tr.LossRate())
	}
}

func TestLEDBATYieldsToCubic(t *testing.T) {
	// The scavenger property: sharing with Cubic, LEDBAT should end up
	// with a small share.
	cfg := tenMbps()
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	fg := NewFlow(sched, path.Port("fg"), NewCubic(), FlowConfig{Duration: 20 * sim.Second, AckDelay: cfg.PropDelay})
	bg := NewFlow(sched, path.Port("bg"), NewLEDBAT(LEDBATConfig{}), FlowConfig{Duration: 20 * sim.Second, AckDelay: cfg.PropDelay})
	fg.Start()
	bg.Start()
	sched.RunUntil(25 * sim.Second)
	cubicT := fg.Trace().Throughput()
	ledbatT := bg.Trace().Throughput()
	if ledbatT > cubicT/2 {
		t.Errorf("scavenger took %.2f Mbps vs cubic %.2f: not yielding", ledbatT/1e6, cubicT/1e6)
	}
	if cubicT < 6e6 {
		t.Errorf("cubic got only %.2f Mbps against a scavenger", cubicT/1e6)
	}
}

func TestLEDBATInRegistry(t *testing.T) {
	s, err := NewSender("ledbat", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "ledbat" {
		t.Errorf("name %q", s.Name())
	}
}
