// Package leakcheck is a dependency-free goroutine-leak detector for
// TestMain. After a package's tests finish it snapshots every goroutine
// stack and fails the run if any stack mentions one of the package's own
// import paths — a pool worker that Close never reaped, a batcher
// goroutine stuck on a channel, a dispatcher blocked on a dead pool.
//
// The filter is substring-on-stack rather than a baseline diff, so
// runtime and testing goroutines (and idle net/http connections, whose
// parked stacks contain no frames from the package under test) never
// false-positive. Goroutines need a moment to unwind after the last
// test, so the check polls until a short deadline before declaring a
// leak.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// stacks returns every goroutine stack, the current goroutine first
// (runtime.Stack's order), growing the buffer until the dump fits.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(string(buf[:n]), "\n\n")
		}
		buf = make([]byte, 2*len(buf))
	}
}

// Check reports an error if, after polling for up to two seconds, any
// goroutine other than the caller's has a stack containing one of the
// given substrings. Substrings are typically import paths
// ("ibox/internal/par"); matching is plain strings.Contains on the full
// stack text, so function names work too.
func Check(substrings ...string) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		var leaked []string
		for i, s := range stacks() {
			if i == 0 {
				continue // the goroutine running the check
			}
			for _, sub := range substrings {
				if strings.Contains(s, sub) {
					leaked = append(leaked, s)
					break
				}
			}
		}
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d leaked goroutine(s) matching %q:\n\n%s",
				len(leaked), substrings, strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Main runs the package's tests and then Check, returning the exit code
// for os.Exit. Use from TestMain:
//
//	func TestMain(m *testing.M) {
//		os.Exit(leakcheck.Main(m, "ibox/internal/par"))
//	}
//
// A leak turns a passing run into a failing one; a failing run keeps its
// own exit code (the leak is still printed, since a hung goroutine often
// explains the failure).
func Main(m *testing.M, substrings ...string) int {
	code := m.Run()
	if err := Check(substrings...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	return code
}
