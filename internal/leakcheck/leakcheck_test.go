package leakcheck

import (
	"strings"
	"testing"
)

func TestCheckDetectsAndClears(t *testing.T) {
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop
	}()
	<-started
	err := Check("TestCheckDetectsAndClears.func")
	if err == nil {
		t.Fatal("Check missed a parked goroutine")
	}
	if !strings.Contains(err.Error(), "1 leaked goroutine") {
		t.Fatalf("unexpected report: %v", err)
	}
	close(stop)
	// Check polls, so it sees the goroutine exit without an explicit sync.
	if err := Check("TestCheckDetectsAndClears.func"); err != nil {
		t.Fatalf("goroutine exited but Check still reports: %v", err)
	}
}

func TestCheckIgnoresSelf(t *testing.T) {
	// The calling goroutine's own stack contains the substring; only other
	// goroutines may trip the check.
	if err := Check("TestCheckIgnoresSelf"); err != nil {
		t.Fatalf("Check flagged its own goroutine: %v", err)
	}
}
