// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Scale (how much
// data/compute to spend) to a structured result whose String method prints
// the same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Index (see DESIGN.md for the full mapping):
//
//	Fig2  — ensemble A/B test on the synthetic India-Cellular corpus
//	Fig3  — ablations: no cross-traffic; statistical loss
//	Fig4  — instance test: time-series alignment + k-means clustering
//	Fig5  — CDF of reordering rate: GT / iBoxML / iBoxNet+LSTM / +Linear
//	Fig7  — control-loop bias: delay histograms ± cross-traffic input
//	Fig8  — SAX behaviour discovery pattern tables
//	Table1 — iBoxML ± cross-traffic on RTC traces: p95-delay distribution error
//	Speed — §4.2 per-packet inference cost and implied emulation rate
package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/par"
	"ibox/internal/sim"
)

// Scale controls how much data and compute an experiment uses. The Quick
// scale keeps every experiment in CI-friendly territory; Paper approaches
// the paper's data sizes (minutes of CPU).
type Scale struct {
	// EnsembleTraces is the number of corpus instances for Figs 2–3.
	EnsembleTraces int
	// TraceDur is the per-flow duration (the paper's Pantheon traces are 30 s).
	TraceDur sim.Time
	// TrainTraces/TestTraces are the Fig 5/Fig 8 corpus split sizes (paper:
	// 100 train / 60 test).
	TrainTraces, TestTraces int
	// RTCTraces is the Table 1 corpus size (paper: ≈540).
	RTCTraces int
	// MLEpochs is the iBoxML training epoch count.
	MLEpochs int
	// RunsPerPattern is the Fig 4 repeat count (paper: 10).
	RunsPerPattern int
	// SpeedWarmup/SpeedSamples are the §4.2 per-packet timing loop sizes
	// (warm-up steps discarded, then timed steps).
	SpeedWarmup, SpeedSamples int
	// Seed drives all sampling.
	Seed int64
	// Serial disables the per-trace fan-out (results are byte-identical
	// either way; the knob exists for determinism tests and paired
	// benchmarks). Serial also bypasses Pool.
	Serial bool
	// Workers bounds the fan-out width; 0 means one worker per CPU.
	// Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, runs every fan-out in the experiment — the
	// corpus generation, the per-variant and per-trace maps, the model
	// trainings — on one shared engine-wide worker pool instead of
	// per-call goroutine pools, so nested fan-outs (Fig 3's variants ×
	// traces) share a single concurrency budget rather than
	// oversubscribing the cores. Results are byte-identical with or
	// without it (see par.PoolMap); ibox-experiments and ibox-bench own
	// the pool and set it here.
	Pool *par.Pool
}

// Par resolves the scale's execution options for the par fan-out
// primitive.
func (s Scale) Par() par.Options {
	return par.Options{Serial: s.Serial, Workers: s.Workers, Pool: s.Pool}
}

// Quick returns a scale that runs every experiment in seconds.
func Quick() Scale {
	return Scale{
		EnsembleTraces: 8,
		TraceDur:       10 * sim.Second,
		TrainTraces:    8,
		TestTraces:     6,
		RTCTraces:      24,
		MLEpochs:       12,
		RunsPerPattern: 4,
		SpeedWarmup:    50,
		SpeedSamples:   500,
		Seed:           1,
	}
}

// Paper returns a scale close to the paper's data sizes. Expect minutes of
// CPU per experiment.
func Paper() Scale {
	return Scale{
		EnsembleTraces: 40,
		TraceDur:       30 * sim.Second,
		TrainTraces:    100,
		TestTraces:     60,
		RTCTraces:      540,
		MLEpochs:       30,
		RunsPerPattern: 10,
		SpeedWarmup:    200,
		SpeedSamples:   3000,
		Seed:           1,
	}
}

// table renders an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
