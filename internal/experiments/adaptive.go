package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/cc"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// AdaptiveResult evaluates the §6 extension ("Learning adaptive cross
// traffic"): on an instance whose competing workload is a closed-loop TCP
// Cubic flow, compare the counterfactual quality of (a) replaying the
// estimated cross-traffic byte series (the paper's iBoxNet) against (b)
// expressing it as competing Cubic flows (this repository's extension).
// The treatment protocol is Vegas, which yields to competition — exactly
// the case where non-adaptive replay fails, as §6 anticipates.
type AdaptiveResult struct {
	Scale Scale
	// BurstTput holds the mean Vegas throughput (bits/sec) inside the
	// cross-traffic burst window for ground truth, replay and adaptive.
	GTBurstTput, ReplayBurstTput, AdaptiveBurstTput float64
	// Overall per-run metrics (throughput Mbps, GT first).
	GTTput, ReplayTput, AdaptiveTput float64
	// DelayCorr is the cross-correlation of each emulation's delay series
	// with ground truth.
	ReplayDelayCorr, AdaptiveDelayCorr float64
}

// adaptiveRunCfg is the known controlled path for the extension study.
func adaptiveRunCfg(seed int64) netsim.Config {
	return netsim.Config{
		Rate: 1_250_000, BufferBytes: 187_500, PropDelay: 30 * sim.Millisecond, Seed: seed,
	}
}

// adaptiveGT runs a main flow against one closed-loop Cubic cross flow
// during the middle third of the run.
func adaptiveGT(sender cc.Sender, dur sim.Time, seed int64) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := adaptiveRunCfg(seed)
	path := netsim.New(sched, cfg)
	main := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: dur, AckDelay: cfg.PropDelay,
	})
	ct := cc.NewFlow(sched, path.Port("ct"), cc.NewCubic(), cc.FlowConfig{
		Start: dur / 3, Duration: dur / 3, AckDelay: cfg.PropDelay,
	})
	main.Start()
	ct.Start()
	sched.RunUntil(dur + 3*sim.Second)
	return main.Trace()
}

// AdaptiveCT runs the extension study.
func AdaptiveCT(s Scale) (*AdaptiveResult, error) {
	sp := obs.StartSpan("adaptive")
	defer sp.End()
	dur := s.TraceDur
	if dur < 30*sim.Second {
		dur = 30 * sim.Second // the burst needs room to dominate dynamics
	}
	train := adaptiveGT(cc.NewCubic(), dur, s.Seed)
	p, err := iboxnet.Estimate(train, iboxnet.EstimatorConfig{})
	if err != nil {
		return nil, fmt.Errorf("adaptive: estimate: %w", err)
	}
	gt := adaptiveGT(cc.NewVegas(), dur, s.Seed+1)

	runOn := func(v iboxnet.Variant) *trace.Trace {
		sched := sim.NewScheduler()
		path := p.Emulate(sched, v, s.Seed+2)
		flow := cc.NewFlow(sched, path.Port("main"), cc.NewVegas(), cc.FlowConfig{
			Duration: dur, AckDelay: p.PropDelay,
		})
		flow.Start()
		sched.RunUntil(dur + 3*sim.Second)
		return flow.Trace()
	}
	replay := runOn(iboxnet.Full)
	adaptive := runOn(iboxnet.Adaptive)

	burst := func(tr *trace.Trace) float64 {
		series := tr.RecvRateSeries(sim.Second)
		lo := dur/3 + sim.Second
		hi := 2*dur/3 - sim.Second
		sum, n := 0.0, 0
		for i := 0; i < series.Len(); i++ {
			if at := series.TimeAt(i); at >= lo && at < hi {
				sum += series.Vals[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	step := sim.Second
	res := &AdaptiveResult{
		Scale:             s,
		GTBurstTput:       burst(gt),
		ReplayBurstTput:   burst(replay),
		AdaptiveBurstTput: burst(adaptive),
		GTTput:            gt.Throughput() / 1e6,
		ReplayTput:        replay.Throughput() / 1e6,
		AdaptiveTput:      adaptive.Throughput() / 1e6,
		ReplayDelayCorr:   stats.CrossCorrelation(replay.DelaySeries(step).Vals, gt.DelaySeries(step).Vals),
		AdaptiveDelayCorr: stats.CrossCorrelation(adaptive.DelaySeries(step).Vals, gt.DelaySeries(step).Vals),
	}
	return res, nil
}

func (r *AdaptiveResult) String() string {
	var b strings.Builder
	b.WriteString("§6 extension: adaptive cross traffic (Cubic CT vs yielding Vegas treatment)\n")
	t := &table{header: []string{"emulation", "burst-window tput Mbps", "overall tput Mbps", "delay-series corr"}}
	t.add("ground truth", f2(r.GTBurstTput/1e6), f2(r.GTTput), "-")
	t.add("replay (paper §3)", f2(r.ReplayBurstTput/1e6), f2(r.ReplayTput), f3(r.ReplayDelayCorr))
	t.add("adaptive (§6 ext.)", f2(r.AdaptiveBurstTput/1e6), f2(r.AdaptiveTput), f3(r.AdaptiveDelayCorr))
	b.WriteString(t.String())
	b.WriteString("(replay cannot push back against a yielding sender; competing Cubic flows can)\n")
	return b.String()
}
