package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/cc"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// Table1Result reproduces Table 1 (§5.2): on a corpus of real-time-
// conferencing traces, feeding the §3 cross-traffic estimate into iBoxML
// reduces the deviation between the distribution of per-call 95th-
// percentile delays under the model and under ground truth. The paper
// reports, for each of P25/P50/P75/mean of that distribution, the absolute
// error in ms and as a percentage, with and without the CT input.
type Table1Result struct {
	Scale Scale
	// GTP95/NoCTP95/WithCTP95 are the distributions of per-call p95 delay.
	GTP95, NoCTP95, WithCTP95 []float64
	// Rows are the paper's table cells: error at each distribution
	// statistic, without and with CT input.
	Rows []Table1Row
}

// Table1Row is one column of the paper's table (P25, P50, P75 or mean).
type Table1Row struct {
	Stat       string
	GT         float64 // the statistic of the GT distribution (ms)
	ErrNoCT    float64 // |stat(model) − stat(GT)| without CT, ms
	ErrNoCTPct float64
	ErrCT      float64 // with CT, ms
	ErrCTPct   float64
}

// rtcTrace runs one RTC call over a randomized path with randomized cross
// traffic — the stand-in for the paper's ~540 conferencing-service traces.
//
// Crucially, most calls are rate-capped well below the path capacity (an
// audio call or a small video tile does not probe for bandwidth). On such
// calls the sender's own rate trajectory carries no information about
// congestion — delay is driven by the competing traffic — which is exactly
// the regime where the cross-traffic input earns its keep. If every call
// probed aggressively, the delay-sensitive control loop would leak the
// delay into the sending rate and a no-CT model could decode it back.
func rtcTrace(seed int64, i int, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, int64(i)*77+3)
	rate := 625_000 + rng.Float64()*1_250_000 // 5–15 Mbps
	cfg := netsim.Config{
		Rate:        rate,
		BufferBytes: int(rate * (0.1 + rng.Float64()*0.3)), // 100–400 ms
		PropDelay:   sim.Time(20+rng.Intn(60)) * sim.Millisecond,
		Seed:        seed*131 + int64(i),
	}
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	// Random bursty CT, reaching past capacity during bursts, plus a
	// possible constant background.
	if rng.Float64() < 0.8 {
		path.AddCrossTraffic(netsim.OnOff{
			Rate:   (0.4 + rng.Float64()*0.8) * rate,
			OnDur:  sim.Time(1+rng.Intn(3)) * sim.Second,
			OffDur: sim.Time(1+rng.Intn(4)) * sim.Second,
			From:   sim.Time(rng.Intn(3)) * sim.Second,
			To:     dur,
		})
	}
	bg := rng.Float64() * 0.3 * rate
	if bg > 0.05*rate {
		path.AddCrossTraffic(netsim.ConstantBitRate{Rate: bg, From: 0, To: dur})
	}
	// Call mix: 60% capped (audio / small video: 3–25% of capacity), 40%
	// adaptive large-video calls.
	maxRate := rate
	if rng.Float64() < 0.6 {
		maxRate = (0.03 + rng.Float64()*0.22) * rate
	}
	flow := cc.NewFlow(sched, path.Port("main"),
		cc.NewRTC(cc.RTCConfig{
			InitialRate: maxRate / 2,
			MinRate:     maxRate / 4,
			MaxRate:     maxRate,
		}), cc.FlowConfig{
			Duration: dur, AckDelay: cfg.PropDelay,
		})
	flow.Start()
	sched.RunUntil(dur + 3*sim.Second)
	tr := flow.Trace()
	tr.PathID = fmt.Sprintf("rtc-%d", i)
	return tr
}

// Table1 runs the comparison. Each stage fans out over all CPUs: trace
// generation + cross-traffic estimation per call, the two (independent)
// model trainings, and per-call evaluation. Every RNG seed is derived
// from the call index or config before dispatch, so serial and parallel
// runs produce byte-identical tables.
func Table1(s Scale) (*Table1Result, error) {
	sp := obs.StartSpan("table1")
	defer sp.End()
	n := s.RTCTraces
	if n < 6 {
		n = 6
	}
	type call struct {
		tr *trace.Trace
		ct *trace.Series
	}
	gen := sp.Start("generate")
	gen.SetItems(n)
	gen.SetArg("corpus", "rtc")
	calls, err := par.Map(n, s.Par(), func(i int) (call, error) {
		tr := rtcTrace(s.Seed, i, s.TraceDur)
		var ct *trace.Series
		if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{}); err == nil {
			ct = params.CrossTraffic
		}
		return call{tr, ct}, nil
	})
	gen.End()
	if err != nil {
		return nil, err
	}
	all := make([]*trace.Trace, n)
	cts := make([]*trace.Series, n)
	for i, c := range calls {
		all[i], cts[i] = c.tr, c.ct
	}
	nTrain := n * 2 / 3
	var samples []iboxml.TrainingSample
	for i := 0; i < nTrain; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: all[i], CT: cts[i]})
	}
	useCT := []bool{false, true}
	tsp := sp.Start("train")
	tsp.SetItems(len(useCT))
	models, err := par.Map(len(useCT), s.Par(), func(i int) (*iboxml.Model, error) {
		m, err := iboxml.Train(samples, iboxml.Config{
			Hidden: 16, Layers: 2, Epochs: 3 * s.MLEpochs, PrevDelayNoise: 1.0,
			UseCrossTraffic: useCT[i], Seed: s.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("table1: train (CT=%v): %w", useCT[i], err)
		}
		return m, nil
	})
	tsp.End()
	if err != nil {
		return nil, err
	}
	noCT, withCT := models[0], models[1]
	if l := obs.Logger(); l != nil {
		l.Info("table1 models trained",
			"train_calls", nTrain, "no_ct_loss", noCT.Diag.FinalLoss, "with_ct_loss", withCT.Diag.FinalLoss)
	}

	// Held-out calibration of both Gaussian heads — the run report's
	// fidelity section. Gated on observability (RecordFidelity is a pure
	// read), so an unobserved run does no extra work.
	if obs.Enabled() {
		fsp := sp.Start("fidelity")
		fsp.SetItems(len(useCT))
		var heldOut []iboxml.TrainingSample
		for i := nTrain; i < n; i++ {
			heldOut = append(heldOut, iboxml.TrainingSample{Trace: all[i], CT: cts[i]})
		}
		noCT.RecordFidelity("table1/no-ct", heldOut)
		withCT.RecordFidelity("table1/with-ct", heldOut)
		fsp.End()
	}

	res := &Table1Result{Scale: s}
	eval := sp.Start("evaluate")
	eval.SetItems(n - nTrain)
	defer eval.End()
	type evalRow struct{ gt, noCT, withCT float64 }
	evals, err := par.Map(n-nTrain, s.Par(), func(k int) (evalRow, error) {
		i := nTrain + k
		gt := all[i]
		simNo := noCT.SimulateTrace(gt, nil, s.Seed+int64(i))
		simCT := withCT.SimulateTrace(gt, cts[i], s.Seed+int64(i))
		return evalRow{
			gt:     gt.DelayPercentile(95),
			noCT:   simNo.DelayPercentile(95),
			withCT: simCT.DelayPercentile(95),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, e := range evals {
		res.GTP95 = append(res.GTP95, e.gt)
		res.NoCTP95 = append(res.NoCTP95, e.noCT)
		res.WithCTP95 = append(res.WithCTP95, e.withCT)
	}

	gtS := stats.Summarize(res.GTP95)
	noS := stats.Summarize(res.NoCTP95)
	ctS := stats.Summarize(res.WithCTP95)
	mk := func(name string, gt, no, ct float64) Table1Row {
		row := Table1Row{Stat: name, GT: gt,
			ErrNoCT: abs64(no - gt), ErrCT: abs64(ct - gt)}
		if gt != 0 {
			row.ErrNoCTPct = 100 * row.ErrNoCT / gt
			row.ErrCTPct = 100 * row.ErrCT / gt
		}
		return row
	}
	res.Rows = []Table1Row{
		mk("P25", gtS.P25, noS.P25, ctS.P25),
		mk("P50", gtS.P50, noS.P50, ctS.P50),
		mk("P75", gtS.P75, noS.P75, ctS.P75),
		mk("mean", gtS.Mean, noS.Mean, ctS.Mean),
	}
	return res, nil
}

// MeanErrNoCT and MeanErrCT aggregate the table for quick comparison.
func (r *Table1Result) MeanErrNoCT() float64 {
	s := 0.0
	for _, row := range r.Rows {
		s += row.ErrNoCT
	}
	return s / float64(len(r.Rows))
}

// MeanErrCT is the with-cross-traffic counterpart of MeanErrNoCT.
func (r *Table1Result) MeanErrCT() float64 {
	s := 0.0
	for _, row := range r.Rows {
		s += row.ErrCT
	}
	return s / float64(len(r.Rows))
}

func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: error in distribution of per-call 95th-percentile delay (RTC corpus, n=%d calls)\n",
		len(r.GTP95))
	t := &table{header: []string{"cross traffic", "P25", "P50", "P75", "mean"}}
	cell := func(err, pct float64) string { return fmt.Sprintf("%.0f (%.0f%%)", err, pct) }
	noCells := []string{"No"}
	ctCells := []string{"Yes"}
	for _, row := range r.Rows {
		noCells = append(noCells, cell(row.ErrNoCT, row.ErrNoCTPct))
		ctCells = append(ctCells, cell(row.ErrCT, row.ErrCTPct))
	}
	t.add(noCells...)
	t.add(ctCells...)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "(paper: No = 20(32%%) 34(36%%) 63(45%%) 51(44%%); Yes = 3(5%%) 19(19%%) 35(25%%) 30(26%%))\n")
	return b.String()
}
