package experiments

import (
	"fmt"
	"math"
	"strings"

	"ibox/internal/cc"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// Fig4Result reproduces the instance test of §3.1.2 / Fig 4: a known,
// fixed network configuration carries a main Cubic flow and one Cubic
// cross-traffic flow of fixed level and duration but different timing in
// three "instances". An iBoxNet model is learnt from a single Cubic run
// per instance (configuration and cross traffic treated as unknown), then
// Vegas is run repeatedly on both the true emulator and each learnt model.
// k-means (k=3) over cross-correlation features must cluster the runs by
// instance with no mistakes, and the learnt models' rate time series must
// align with ground truth (Fig 4(a)).
type Fig4Result struct {
	Scale Scale
	// Purity is the k-means cluster purity over all GT+model Vegas runs
	// (paper: 1.0, "perfect, i.e., with no mistakes").
	Purity float64
	// ModelPurity restricts purity to the model runs: do runs on the
	// Cubic-derived models land in their instance's GT cluster?
	ModelPurity float64
	// RateAlignment is Fig 4(a): per-instance cross-correlation between
	// the ground-truth Cubic rate series and the learnt model's Cubic rate
	// series.
	RateAlignment [3]float64
	// Embedding is the t-SNE projection of all runs (for plotting), with
	// Labels giving (instance, isModel) per point.
	Embedding [][2]float64
	Labels    []int // 0..2 GT instance k; 3..5 model instance k−3
}

// fig4Config is the "known and fixed network configuration" of §3.1.2.
func fig4Config(seed int64) netsim.Config {
	return netsim.Config{
		Rate:        1_250_000, // 10 Mbps
		BufferBytes: 187_500,   // 150 ms
		PropDelay:   30 * sim.Millisecond,
		Seed:        seed,
	}
}

// runInstance runs one main flow plus a closed-loop Cubic cross-traffic
// flow active during [ctStart, ctStart+ctDur). jitter staggers the main
// flow's start: it models the "slight timing variations in the emulator
// execution" that make the paper's repeated runs differ (our simulator is
// otherwise perfectly deterministic, so without it repeated runs would be
// bit-identical points).
func runInstance(sender cc.Sender, dur sim.Time, ctStart, ctDur sim.Time, pathSeed int64, jitter sim.Time) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := fig4Config(pathSeed)
	path := netsim.New(sched, cfg)
	main := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Start: jitter, Duration: dur, AckDelay: cfg.PropDelay,
	})
	ct := cc.NewFlow(sched, path.Port("ct"), cc.NewCubic(), cc.FlowConfig{
		Start: ctStart, Duration: ctDur, AckDelay: cfg.PropDelay,
	})
	main.Start()
	ct.Start()
	sched.RunUntil(dur + jitter + 3*sim.Second)
	return main.Trace()
}

// runOnModel runs a sender over a learnt model with a start jitter (same
// rationale as runInstance).
func runOnModel(m *core.Model, sender cc.Sender, dur sim.Time, seed int64, jitter sim.Time) *trace.Trace {
	sched := sim.NewScheduler()
	path := m.Params.Emulate(sched, m.Variant, seed)
	flow := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Start: jitter, Duration: dur, AckDelay: m.Params.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + jitter + 3*sim.Second)
	return flow.Trace()
}

// normalize scales a vector to unit L2 norm (in place) so that k-means
// distances reflect *which* reference a run correlates with rather than
// the overall correlation magnitude (model runs correlate less strongly
// than GT runs but with the same pattern).
func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	s = 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= s
	}
}

// Fig4 runs the full instance test. The timing protocol is pinned to the
// paper's: a 60 s main flow with a 10 s cross-traffic burst at 0–10 s,
// 20–30 s or 40–50 s (shorter bursts blur the instances' correlation
// signatures and clustering degrades); only RunsPerPattern scales.
func Fig4(s Scale) (*Fig4Result, error) {
	sp := obs.StartSpan("fig4")
	defer sp.End()
	dur := 60 * sim.Second
	burst := 10 * sim.Second
	offsets := [3]sim.Time{0, 2 * burst, 4 * burst}
	res := &Fig4Result{Scale: s}

	rng := sim.NewRand(s.Seed, 1234)
	jit := func() sim.Time { return sim.Time(rng.Float64() * float64(40*sim.Millisecond)) }

	// Learn one iBoxNet model per instance from a single Cubic run.
	fit := sp.Start("fit-instances")
	fit.SetItems(3)
	models := make([]*core.Model, 3)
	gtCubic := make([]*trace.Trace, 3)
	for k := 0; k < 3; k++ {
		tr := runInstance(cc.NewCubic(), dur, offsets[k], burst, s.Seed+int64(k), 0)
		gtCubic[k] = tr
		m, err := core.Fit(tr, iboxnet.Full)
		if err != nil {
			return nil, fmt.Errorf("fig4: fit instance %d: %w", k, err)
		}
		models[k] = m
	}
	fit.End()

	runs4 := sp.Start("runs")
	runs4.SetItems(3 * 2 * s.RunsPerPattern)
	// Fig 4(a): the model replays Cubic; its rate series must align with GT.
	step := 200 * sim.Millisecond
	for k := 0; k < 3; k++ {
		sim1 := runOnModel(models[k], cc.NewCubic(), dur, s.Seed+50+int64(k), 0)
		res.RateAlignment[k] = stats.CrossCorrelation(
			gtCubic[k].RecvRateSeries(step).Vals,
			sim1.RecvRateSeries(step).Vals)
	}

	// Vegas runs: RunsPerPattern ground-truth and model runs per instance.
	var runs []*trace.Trace
	var labels []int
	refs := make([]*trace.Trace, 3)
	for k := 0; k < 3; k++ {
		for r := 0; r < s.RunsPerPattern; r++ {
			j := sim.Time(0)
			if r > 0 {
				j = jit() // reference run (r=0) is unjittered
			}
			tr := runInstance(cc.NewVegas(), dur, offsets[k], burst, s.Seed+int64(k)+int64(r+1)*977, j)
			if r == 0 {
				refs[k] = tr
			}
			runs = append(runs, tr)
			labels = append(labels, k)
		}
	}
	for k := 0; k < 3; k++ {
		for r := 0; r < s.RunsPerPattern; r++ {
			tr := runOnModel(models[k], cc.NewVegas(), dur, s.Seed+int64(k)*31+int64(r)*7, jit())
			runs = append(runs, tr)
			labels = append(labels, k+3)
		}
	}

	runs4.End()

	cluster := sp.Start("cluster")
	defer cluster.End()
	// Features: cross-correlation of each run's rate and delay series
	// against the per-instance GT reference runs (§3.1.2), normalized to
	// unit length so pattern identity rather than correlation magnitude
	// drives the clustering.
	points := make([][]float64, len(runs))
	for i, tr := range runs {
		points[i] = core.RunFeatures(tr, refs, step)
		normalize(points[i])
	}
	km := stats.KMeans(points, 3, s.Seed)
	truth := make([]int, len(labels))
	for i, l := range labels {
		truth[i] = l % 3 // instance identity, GT and model pooled
	}
	res.Purity = stats.ClusterPurity(km.Assignment, truth)

	// Model-run purity: assign each model run to the majority cluster of
	// its instance's GT runs.
	gtCluster := make(map[int]int) // instance → majority GT cluster
	for k := 0; k < 3; k++ {
		counts := map[int]int{}
		for i, l := range labels {
			if l == k {
				counts[km.Assignment[i]]++
			}
		}
		best, bestN := 0, -1
		for c, n := range counts {
			if n > bestN {
				best, bestN = c, n
			}
		}
		gtCluster[k] = best
	}
	correct, total := 0, 0
	for i, l := range labels {
		if l >= 3 {
			total++
			if km.Assignment[i] == gtCluster[l-3] {
				correct++
			}
		}
	}
	if total > 0 {
		res.ModelPurity = float64(correct) / float64(total)
	}

	res.Embedding = stats.TSNE(points, stats.TSNEConfig{Seed: s.Seed, Iterations: 300})
	res.Labels = labels
	return res, nil
}

func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: iBoxNet instance test, 60s main flow, 10s CT bursts, %d runs/pattern\n", r.Scale.RunsPerPattern)
	fmt.Fprintf(&b, "(a) Cubic rate-series alignment (xcorr GT vs model): %s %s %s\n",
		f3(r.RateAlignment[0]), f3(r.RateAlignment[1]), f3(r.RateAlignment[2]))
	fmt.Fprintf(&b, "(b) k-means (k=3) cluster purity over all Vegas runs: %s (paper: 1.000)\n", f3(r.Purity))
	fmt.Fprintf(&b, "    model runs landing in their instance's GT cluster: %s\n", f3(r.ModelPurity))
	return b.String()
}
