package experiments

import (
	"math"
	"strings"
	"testing"

	"ibox/internal/sim"
)

// tiny returns the smallest scale at which the paper's qualitative
// findings still reproduce; the assertions below are the findings.
func tiny() Scale {
	s := Quick()
	s.EnsembleTraces = 6
	s.TraceDur = 8 * sim.Second
	s.TrainTraces = 6
	s.TestTraces = 4
	s.RTCTraces = 18
	s.RunsPerPattern = 3
	return s
}

func TestScalePresets(t *testing.T) {
	q, p := Quick(), Paper()
	if q.EnsembleTraces >= p.EnsembleTraces || q.RTCTraces >= p.RTCTraces {
		t.Error("Paper scale should exceed Quick scale")
	}
	if p.TrainTraces != 100 || p.TestTraces != 60 || p.RTCTraces != 540 {
		t.Error("Paper scale should match the paper's corpus sizes")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("xxxxxx", "1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("table lines: %d", len(lines))
	}
	if !strings.Contains(lines[0], "long-header") || !strings.Contains(lines[1], "xxxxxx") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestFig2EnsembleShape(t *testing.T) {
	r, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	g := r.Groups()
	// The A/B contrast that makes Vegas a challenging treatment: lower
	// delay and far less loss than Cubic, in both GT and simulation.
	if !(g["Vegas GT"].P95.Mean < g["Cubic GT"].P95.Mean) {
		t.Errorf("GT: Vegas p95 %.0f not below Cubic %.0f", g["Vegas GT"].P95.Mean, g["Cubic GT"].P95.Mean)
	}
	if !(g["Vegas iBoxNet"].P95.Mean < g["Cubic iBoxNet"].P95.Mean) {
		t.Error("simulated A/B contrast lost")
	}
	if !(g["Vegas GT"].Loss.Mean < g["Cubic GT"].Loss.Mean) {
		t.Error("GT loss contrast lost")
	}
	// The simulator must track GT per group within a factor.
	for _, proto := range []string{"Cubic", "Vegas"} {
		gt := g[proto+" GT"]
		sm := g[proto+" iBoxNet"]
		if relErr(sm.Tput.Mean, gt.Tput.Mean) > 0.6 {
			t.Errorf("%s: sim tput %.2f vs GT %.2f", proto, sm.Tput.Mean, gt.Tput.Mean)
		}
		if relErr(sm.P95.Mean, gt.P95.Mean) > 0.8 {
			t.Errorf("%s: sim p95 %.0f vs GT %.0f", proto, sm.P95.Mean, gt.P95.Mean)
		}
	}
	if !strings.Contains(r.String(), "KS") {
		t.Error("String() missing KS table")
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFig3AblationOrdering(t *testing.T) {
	r, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	sc := r.Scores()
	full := sc["iboxnet"]
	noct := sc["iboxnet-noct"]
	stat := sc["iboxnet-statloss"]
	// The paper's finding: full iBoxNet matches GT better than both
	// ablations. Compare on the throughput MAE (the most stable signal at
	// small corpus sizes) with modest slack.
	if full.MAETput > noct.MAETput+0.2 {
		t.Errorf("full MAE tput %.2f worse than no-CT %.2f", full.MAETput, noct.MAETput)
	}
	if full.MAETput > stat.MAETput+0.2 {
		t.Errorf("full MAE tput %.2f worse than stat-loss %.2f", full.MAETput, stat.MAETput)
	}
	if full.KSP95 > noct.KSP95+0.25 || full.KSP95 > stat.KSP95+0.25 {
		t.Errorf("full KS %.2f vs noct %.2f statloss %.2f", full.KSP95, noct.KSP95, stat.KSP95)
	}
	_ = r.String()
}

func TestFig4InstanceTest(t *testing.T) {
	r, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: clustering is perfect. Allow a single straggler at test scale.
	if r.Purity < 0.9 {
		t.Errorf("cluster purity = %.3f, want ≥ 0.9 (paper: 1.0)", r.Purity)
	}
	if r.ModelPurity < 0.9 {
		t.Errorf("model-run purity = %.3f, want ≥ 0.9", r.ModelPurity)
	}
	// Fig 4(a): the learnt model's Cubic rate series aligns with GT.
	for k, a := range r.RateAlignment {
		if a < 0.8 {
			t.Errorf("rate alignment[%d] = %.3f, want ≥ 0.8", k, a)
		}
	}
	if len(r.Embedding) != len(r.Labels) || len(r.Embedding) != 6*tiny().RunsPerPattern {
		t.Errorf("embedding size %d, labels %d", len(r.Embedding), len(r.Labels))
	}
}

func TestFig5ReorderingCurves(t *testing.T) {
	r, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// iBoxNet alone cannot reorder (single FIFO bottleneck).
	for _, v := range r.Rates["iboxnet"] {
		if v != 0 {
			t.Fatalf("plain iBoxNet produced reordering rate %v", v)
		}
	}
	gtMean := mean(r.Rates["ground-truth"])
	if gtMean <= 0 {
		t.Fatal("ground truth has no reordering")
	}
	// Every ML-assisted curve must produce nonzero reordering in the right
	// ballpark (within 4× of GT either way — the paper's "reasonable
	// match"), and must beat plain iBoxNet's KS distance.
	ks := r.KSAgainstGT()
	for _, name := range []string{"iboxml", "iboxnet+lstm", "iboxnet+linear"} {
		m := mean(r.Rates[name])
		if m <= 0 {
			t.Errorf("%s produced no reordering", name)
			continue
		}
		if m < gtMean/4 || m > gtMean*4 {
			t.Errorf("%s mean reorder rate %.4f vs GT %.4f outside 4×", name, m, gtMean)
		}
		if ks[name] >= ks["iboxnet"] {
			t.Errorf("%s KS %.3f not better than plain iBoxNet %.3f", name, ks[name], ks["iboxnet"])
		}
	}
	// CDF sanity: monotone from ~0 to 1 on the shared grid.
	for name, cdf := range r.CDFs {
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				t.Fatalf("%s CDF not monotone", name)
			}
		}
	}
}

func TestFig7ControlLoopBias(t *testing.T) {
	// Fig 7 needs the Quick-scale training corpus: with fewer/shorter RTC
	// traces the no-CT model's closed-loop fixed point is not anchored in
	// the low-delay regime and the bias contrast washes out.
	s := tiny()
	s.TrainTraces = Quick().TrainTraces
	s.TraceDur = Quick().TraceDur
	s.MLEpochs = Quick().MLEpochs
	r, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's three-way contrast: GT frequently high; model without CT
	// rarely high; with CT the bias is mitigated.
	if r.HighGT < 0.15 {
		t.Fatalf("GT high-delay mass %.3f too small to exercise the bias", r.HighGT)
	}
	if r.HighNoCT > r.HighGT/2 {
		t.Errorf("no-CT model high mass %.3f; control-loop bias did not manifest (GT %.3f)", r.HighNoCT, r.HighGT)
	}
	if !(r.HighWithCT > r.HighNoCT) {
		t.Errorf("CT input did not raise high-delay mass: with=%.3f without=%.3f", r.HighWithCT, r.HighNoCT)
	}
	if !(r.L1WithCT < r.L1NoCT) {
		t.Errorf("CT input did not improve histogram match: L1 with=%.3f without=%.3f", r.L1WithCT, r.L1NoCT)
	}
	// Histograms are distributions.
	for _, h := range [][]float64{r.GT, r.NoCT, r.WithCT} {
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram mass %v", sum)
		}
	}
}

func TestFig8BehaviourDiscovery(t *testing.T) {
	r, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 'a' (reordering) must be among the GT-only length-1 patterns.
	foundA := false
	for _, p := range r.Diff1.OnlyA {
		if p == "a" {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("'a' not discovered as missing: %v", r.Diff1.OnlyA)
	}
	// iBoxNet must have zero 'a'; the augmented model must restore it near
	// the GT frequency.
	if f := r.Freq["iboxnet/1"]["a"]; f != 0 {
		t.Errorf("iBoxNet 'a' frequency %v, want 0", f)
	}
	gtA := r.Freq["gt/1"]["a"]
	mlA := r.Freq["iboxnet+ml/1"]["a"]
	if gtA <= 0 {
		t.Fatal("GT has no 'a' patterns")
	}
	if mlA < gtA/4 || mlA > gtA*4 {
		t.Errorf("augmented 'a' frequency %.4f vs GT %.4f", mlA, gtA)
	}
	if len(r.APatterns) == 0 || r.APatterns[0] != "a" {
		t.Errorf("APatterns = %v, want 'a' first", r.APatterns)
	}
	_ = r.String()
}

func TestTable1CrossTrafficHelps(t *testing.T) {
	// The RTC call mix (capped and adaptive calls over varied paths) makes
	// tiny test sets noisy; use a Quick-sized corpus so the distribution
	// statistics stabilize.
	s := tiny()
	s.RTCTraces = 60
	s.TraceDur = Quick().TraceDur
	r, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GTP95) < 4 {
		t.Fatalf("only %d test calls", len(r.GTP95))
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if math.IsNaN(row.ErrNoCT) || math.IsNaN(row.ErrCT) {
			t.Fatalf("NaN error in row %s", row.Stat)
		}
	}
	// The paper's headline: CT input reduces the deviation. At small test
	// sizes individual quantiles are noisy, so assert on the mean error
	// with slack.
	if r.MeanErrCT() > r.MeanErrNoCT()*1.3+2 {
		t.Errorf("CT input did not help: mean err with=%.1f without=%.1f", r.MeanErrCT(), r.MeanErrNoCT())
	}
	_ = r.String()
}

func TestSpeedScaling(t *testing.T) {
	r, err := Speed(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Per-packet cost must grow with model size; implied rate must fall.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Params <= r.Rows[i-1].Params {
			t.Errorf("params not increasing: %v", r.Rows)
		}
		if r.Rows[i].PerPacket <= r.Rows[i-1].PerPacket {
			t.Errorf("per-packet cost not increasing at row %d", i)
		}
	}
	// §4.2's architectural point: the largest LSTM's implied emulation
	// rate is far below the iBoxNet emulator's.
	last := r.Rows[len(r.Rows)-1]
	if last.ImpliedMbps*5 > r.IBoxNetImplied {
		t.Errorf("deep model implied %.1f Mbps not ≪ emulator %.1f Mbps", last.ImpliedMbps, r.IBoxNetImplied)
	}
	_ = r.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
