package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ibox/internal/obs"
	"ibox/internal/sax"
	"ibox/internal/trace"
)

// Fig8Result reproduces the behaviour-discovery analysis of §5.1 / Fig 8:
// SAX symbolization of inter-packet arrival times ('a' = negative values,
// i.e. reordering; 'b'..'f' = increasing positive values), pattern
// frequency tables, and the diff between ground-truth and simulated
// traces. The paper's findings: (a) 'a' is the only length-1 pattern in
// the GT∖iBoxNet diff, and every length-2 pattern involving 'a' is also
// missing from iBoxNet while all others are preserved; (b) the
// ML-augmented iBoxNet restores 'a'-patterns at close to GT frequency.
type Fig8Result struct {
	Scale Scale
	// Diff1/Diff2 are the length-1 and length-2 pattern diffs between GT
	// and plain iBoxNet.
	Diff1, Diff2 sax.DiffResult
	// Freq maps curve → pattern → frequency, for the table of Fig 8(b).
	Freq map[string]map[string]float64
	// APatterns lists the 'a'-involving patterns reported in Fig 8(b),
	// ordered by GT frequency.
	APatterns []string
}

// Fig8 runs behaviour discovery on the reordering corpus.
func Fig8(s Scale) (*Fig8Result, error) {
	sp := obs.StartSpan("fig8")
	defer sp.End()
	p, err := runReorderPipeline(s)
	if err != nil {
		return nil, err
	}
	sym := sp.Start("symbolize")
	defer sym.End()
	// Fit the symbolizer on ground-truth inter-arrivals (the domain
	// transform of §5.1: Δᵢ over the test traces).
	var ref []float64
	for _, tr := range p.GT {
		ref = append(ref, tr.InterArrivalsBySeq()...)
	}
	symbolizer := sax.FitArrivalSymbolizer(ref, 6)

	symbolsOf := func(trs []*trace.Trace) [][]byte {
		var out [][]byte
		for _, tr := range trs {
			out = append(out, symbolizer.Symbols(tr.InterArrivalsBySeq()))
		}
		return out
	}
	gtSym := symbolsOf(p.GT)
	netSym := symbolsOf(p.IBoxNet)
	mlSym := symbolsOf(p.IBoxNetLSTM)

	res := &Fig8Result{Scale: s, Freq: map[string]map[string]float64{}}
	const thresh = 1e-4
	gt1 := sax.MergeFrequencies(gtSym, 1)
	net1 := sax.MergeFrequencies(netSym, 1)
	ml1 := sax.MergeFrequencies(mlSym, 1)
	gt2 := sax.MergeFrequencies(gtSym, 2)
	net2 := sax.MergeFrequencies(netSym, 2)
	ml2 := sax.MergeFrequencies(mlSym, 2)
	res.Diff1 = sax.Diff(gt1, net1, thresh)
	res.Diff2 = sax.Diff(gt2, net2, thresh)

	res.Freq["gt/1"] = gt1
	res.Freq["iboxnet/1"] = net1
	res.Freq["iboxnet+ml/1"] = ml1
	res.Freq["gt/2"] = gt2
	res.Freq["iboxnet/2"] = net2
	res.Freq["iboxnet+ml/2"] = ml2

	// 'a'-involving patterns ordered by GT frequency (Fig 8(b) rows).
	var aPat []string
	for pat := range gt1 {
		if strings.Contains(pat, "a") {
			aPat = append(aPat, pat)
		}
	}
	for pat := range gt2 {
		if strings.Contains(pat, "a") {
			aPat = append(aPat, pat)
		}
	}
	sort.Slice(aPat, func(i, j int) bool {
		fi := res.gtFreq(aPat[i])
		fj := res.gtFreq(aPat[j])
		if fi != fj {
			return fi > fj
		}
		return aPat[i] < aPat[j]
	})
	res.APatterns = aPat
	return res, nil
}

func (r *Fig8Result) gtFreq(pat string) float64 {
	if len(pat) == 1 {
		return r.Freq["gt/1"][pat]
	}
	return r.Freq["gt/2"][pat]
}

func (r *Fig8Result) freqOf(curve, pat string) float64 {
	k := "1"
	if len(pat) == 2 {
		k = "2"
	}
	return r.Freq[curve+"/"+k][pat]
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: SAX behaviour discovery on inter-packet arrival times (alphabet a–f)\n")
	fmt.Fprintf(&b, "(a) length-1 patterns in GT missing from iBoxNet: %v (paper: ['a'])\n", r.Diff1.OnlyA)
	var missing2 []string
	for _, p := range r.Diff2.OnlyA {
		if strings.Contains(p, "a") {
			missing2 = append(missing2, p)
		}
	}
	fmt.Fprintf(&b, "    length-2 'a'-patterns missing from iBoxNet: %d of %d GT 'a'-patterns\n",
		len(missing2), countA(r.Freq["gt/2"]))
	b.WriteString("(b) pattern frequencies (%):\n")
	t := &table{header: []string{"pattern", "ground truth", "iBoxNet", "iBoxNet+ML"}}
	limit := 8
	for i, pat := range r.APatterns {
		if i >= limit {
			break
		}
		t.add(pat,
			fmt.Sprintf("%.2f%%", 100*r.freqOf("gt", pat)),
			fmt.Sprintf("%.2f%%", 100*r.freqOf("iboxnet", pat)),
			fmt.Sprintf("%.2f%%", 100*r.freqOf("iboxnet+ml", pat)))
	}
	b.WriteString(t.String())
	b.WriteString("(paper: 'a' ≈2% in GT, 0 in iBoxNet, ≈1.67% in iBoxNet+ML; length-2 'a'-patterns reasonably preserved)\n")
	return b.String()
}

func countA(freqs map[string]float64) int {
	n := 0
	for p, f := range freqs {
		if f >= 1e-4 && strings.Contains(p, "a") {
			n++
		}
	}
	return n
}
