package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/abr"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/replay"
	"ibox/internal/sim"
	"ibox/internal/stats"
)

// RealismResult evaluates §6's second definition of realism — "whether the
// performance of an application that has been tuned using the simulator
// holds up in the actual network" — with an adaptive-bitrate video client
// (the Pensieve cautionary tale of §1/§7 recast constructively):
//
//  1. measure a Cubic trace on a real (ground-truth) cellular path and
//     learn an iBoxNet model from it;
//  2. sweep the ABR controller's buffer thresholds on (a) the learnt
//     model and (b) the trace-replay baseline;
//  3. deploy each simulator's chosen configuration on the real path and
//     compare its QoE against the oracle (tuning directly on the truth).
//
// A realistic simulator has low tuning regret; replay — which cannot
// reflect the client's own downloads congesting the path — should not.
type RealismResult struct {
	Scale Scale
	// Configs lists the swept (low, high) buffer thresholds in seconds.
	Configs []string
	// QoE per config per environment, from the first instance (for the
	// displayed table).
	GTQoE, ModelQoE, ReplayQoE []float64
	// Mean tuning regret across instances: QoE lost on the real path by
	// deploying the simulator's winner instead of the oracle's.
	ModelRegret, ReplayRegret float64
	// Mean Spearman rank correlation between each simulator's config
	// ordering and the ground truth's — the "does tuning transfer"
	// statistic.
	ModelRankCorr, ReplayRankCorr float64
	// Instances is how many ground-truth paths were averaged.
	Instances int
}

// realismKnobs is the swept controller grid.
var realismKnobs = []struct{ low, high sim.Time }{
	{2 * sim.Second, 6 * sim.Second},   // aggressive
	{4 * sim.Second, 12 * sim.Second},  // balanced
	{8 * sim.Second, 20 * sim.Second},  // conservative
	{12 * sim.Second, 35 * sim.Second}, // very conservative
}

var realismLadder = []float64{300_000, 750_000, 1_200_000, 2_850_000, 4_300_000}

// Realism runs the experiment over several ground-truth instances and
// averages the tuning-transfer statistics.
func Realism(s Scale) (*RealismResult, error) {
	sp := obs.StartSpan("realism")
	defer sp.End()
	res := &RealismResult{Scale: s}
	for _, knob := range realismKnobs {
		res.Configs = append(res.Configs,
			fmt.Sprintf("low=%.0fs high=%.0fs", knob.low.Seconds(), knob.high.Seconds()))
	}
	nInst := 4
	var sumModelRegret, sumReplayRegret, sumModelCorr, sumReplayCorr float64
	for ii := 0; ii < nInst; ii++ {
		inst := pantheon.IndiaCellular().Sample(s.Seed+55, ii)
		train, err := inst.Run("cubic", s.TraceDur, int64(ii))
		if err != nil {
			return nil, err
		}
		model, err := core.Fit(train, iboxnet.Full)
		if err != nil {
			return nil, err
		}
		var gtQ, mdlQ, rplQ []float64
		for k := range realismKnobs {
			sched := sim.NewScheduler()
			path := netsim.New(sched, inst.Net)
			for _, ct := range inst.CrossTraffic {
				path.AddCrossTraffic(ct)
			}
			gt, err := playABR(sched, path.Port("abr"), k)
			if err != nil {
				return nil, err
			}
			sched = sim.NewScheduler()
			mdl, err := playABR(sched, model.Params.Emulate(sched, iboxnet.Full, 9).Port("abr"), k)
			if err != nil {
				return nil, err
			}
			sched = sim.NewScheduler()
			rn, err := replay.New(sched, train)
			if err != nil {
				return nil, err
			}
			rpl, err := playABR(sched, rn, k)
			if err != nil {
				return nil, err
			}
			gtQ = append(gtQ, gt)
			mdlQ = append(mdlQ, mdl)
			rplQ = append(rplQ, rpl)
		}
		if ii == 0 {
			res.GTQoE, res.ModelQoE, res.ReplayQoE = gtQ, mdlQ, rplQ
		}
		oracle := gtQ[argmax(gtQ)]
		sumModelRegret += oracle - gtQ[argmax(mdlQ)]
		sumReplayRegret += oracle - gtQ[argmax(rplQ)]
		sumModelCorr += stats.Spearman(mdlQ, gtQ)
		sumReplayCorr += stats.Spearman(rplQ, gtQ)
	}
	res.Instances = nInst
	res.ModelRegret = sumModelRegret / float64(nInst)
	res.ReplayRegret = sumReplayRegret / float64(nInst)
	res.ModelRankCorr = sumModelCorr / float64(nInst)
	res.ReplayRankCorr = sumReplayCorr / float64(nInst)
	return res, nil
}

// playABR runs one session with knob k and returns its QoE.
func playABR(sched *sim.Scheduler, net abr.Network, k int) (float64, error) {
	knob := realismKnobs[k]
	session, err := abr.Run(sched, net, abr.Config{
		Bitrates:  realismLadder,
		Chunks:    20,
		LowBuffer: knob.low, HighBuffer: knob.high,
		Protocol: "cubic",
		AckDelay: 30 * sim.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	sched.RunUntil(20 * 60 * sim.Second)
	if !session.Done() {
		return 0, fmt.Errorf("realism: ABR session did not finish")
	}
	return session.Result().QoE, nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func (r *RealismResult) String() string {
	var b strings.Builder
	b.WriteString("§6 realism: ABR client tuned on simulators, deployed on the real path\n")
	t := &table{header: []string{"controller (instance 0)", "QoE on GT", "QoE on iBoxNet", "QoE on replay"}}
	for i, cfg := range r.Configs {
		t.add(cfg, f2(r.GTQoE[i]), f2(r.ModelQoE[i]), f2(r.ReplayQoE[i]))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "across %d instances: mean tuning regret iBoxNet=%.2f replay=%.2f QoE; "+
		"config rank corr vs GT: iBoxNet=%.2f replay=%.2f\n",
		r.Instances, r.ModelRegret, r.ReplayRegret, r.ModelRankCorr, r.ReplayRankCorr)
	b.WriteString("(a realistic simulator picks a configuration that holds up in the actual network)\n")
	return b.String()
}
