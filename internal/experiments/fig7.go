package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/cc"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Fig7Result reproduces the control-loop-bias demonstration of §4.2 /
// Fig 7: iBoxML is trained on traces of a delay-sensitive RTC control loop
// over a simple topology, then asked to predict delays for a high-rate CBR
// sender under varying cross traffic. Because the RTC training data never
// shows sustained high delay at high sending rates (the control loop
// prevents it), the model without cross-traffic input rarely predicts high
// delay even though the ground truth is full of it; adding the §3
// cross-traffic estimate as an input mitigates the bias.
type Fig7Result struct {
	Scale Scale
	// Histograms over delay (ms) for (a) ground truth, (b) iBoxML without
	// CT input, (c) iBoxML with CT input; Bins give the bin left edges.
	Bins   []float64
	GT     []float64
	NoCT   []float64
	WithCT []float64
	// HighDelayFrac is the mass above the high-delay threshold per curve —
	// the headline comparison of Fig 7.
	Threshold  float64
	HighGT     float64
	HighNoCT   float64
	HighWithCT float64
	// L1NoCT/L1WithCT are total-variation-style distances to the GT
	// histogram.
	L1NoCT, L1WithCT float64
}

// fig7Config is the simple ns-like topology the RTC traces come from.
func fig7Config(seed int64) netsim.Config {
	return netsim.Config{
		Rate:        1_250_000, // 10 Mbps
		BufferBytes: 187_500,   // 150 ms
		PropDelay:   30 * sim.Millisecond,
		Seed:        seed,
	}
}

// fig7Run runs a sender under bursty cross traffic (rate ctRate while on)
// for dur. Bursty rather than constant cross traffic matters twice over:
// the off-periods let the sender saturate the link so the §3 bandwidth
// estimator is sound (the paper's stated assumption), and the on-periods
// build real queues so the training data contains high-delay states at
// all.
func fig7Run(sender cc.Sender, ctRate float64, onDur, offDur sim.Time, dur sim.Time, seed int64) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := fig7Config(seed)
	path := netsim.New(sched, cfg)
	if ctRate > 0 {
		path.AddCrossTraffic(netsim.OnOff{
			Rate: ctRate, OnDur: onDur, OffDur: offDur, From: 0, To: dur,
		})
	}
	flow := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: dur, AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + 3*sim.Second)
	return flow.Trace()
}

// Fig7 runs the control-loop-bias experiment.
func Fig7(s Scale) (*Fig7Result, error) {
	sp := obs.StartSpan("fig7")
	defer sp.End()
	rng := sim.NewRand(s.Seed, 404)
	// Training: RTC flows under varying bursty CT (30–110% of capacity
	// while on, so queues genuinely build during bursts). The burst
	// parameters are drawn serially from the shared stream *before*
	// dispatch (the seed-derivation rule: never share a *rand.Rand across
	// goroutines), so the fan-out below leaves the draws — and hence the
	// result — identical to a serial run.
	nTrain := s.TrainTraces
	type burst struct {
		ctRate  float64
		on, off sim.Time
	}
	bursts := make([]burst, nTrain)
	for i := range bursts {
		// Burst levels reach past capacity: overload bursts pin the queue
		// regardless of the RTC sender's back-off, giving the training set
		// genuine high-delay states tied to high cross traffic.
		bursts[i].ctRate = (0.4 + rng.Float64()*1.2) * 1_250_000
		bursts[i].on = sim.Time(1+rng.Intn(3)) * sim.Second
		bursts[i].off = sim.Time(1+rng.Intn(3)) * sim.Second
	}
	gen := sp.Start("generate")
	gen.SetItems(nTrain)
	samples, err := par.Map(nTrain, s.Par(), func(i int) (iboxml.TrainingSample, error) {
		// MinRate models a conferencing app's sustained floor (audio + base
		// video layer); it also keeps the probe stream dense enough for the
		// queue to stay observable during bursts.
		tr := fig7Run(cc.NewRTC(cc.RTCConfig{InitialRate: 500_000, MinRate: 125_000, MaxRate: 2_000_000}),
			bursts[i].ctRate, bursts[i].on, bursts[i].off, s.TraceDur, s.Seed+int64(i))
		var ct *trace.Series
		// The Fig 7 topology is known ("a simple ns-like topology"), so the
		// estimator is given the true bottleneck rate; a backed-off RTC flow
		// never saturates the link, which would otherwise bias b̂ low.
		if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{KnownBandwidth: 1_250_000}); err == nil {
			ct = params.CrossTraffic
		}
		return iboxml.TrainingSample{Trace: tr, CT: ct}, nil
	})
	gen.End()
	if err != nil {
		return nil, err
	}
	// Heavy prev-delay perturbation (and a large epoch budget — the corpus
	// is small) forces the model to explain delay from the exogenous
	// features; see iboxml.Config.PrevDelayNoise. The two trainings are
	// independent and run concurrently.
	useCT := []bool{false, true}
	tsp := sp.Start("train")
	tsp.SetItems(len(useCT))
	models, err := par.Map(len(useCT), s.Par(), func(i int) (*iboxml.Model, error) {
		m, err := iboxml.Train(samples, iboxml.Config{
			Hidden: 16, Layers: 2, Epochs: 10 * s.MLEpochs, PrevDelayNoise: 1.0,
			UseCrossTraffic: useCT[i], Seed: s.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7: train (CT=%v) model: %w", useCT[i], err)
		}
		return m, nil
	})
	tsp.End()
	if err != nil {
		return nil, err
	}
	noCTModel, ctModel := models[0], models[1]

	// Held-out calibration: fresh RTC traces on unseen seeds and burst
	// parameters drawn from a dedicated RNG stream. Generated only when
	// observability is on; all RNG state here is local, so an unobserved
	// run's results are byte-identical.
	if obs.Enabled() {
		fsp := sp.Start("fidelity")
		const nHeld = 4
		fsp.SetItems(nHeld)
		held := make([]iboxml.TrainingSample, 0, nHeld)
		for i := 0; i < nHeld; i++ {
			hrng := sim.NewRand(s.Seed, 9000+int64(i))
			ctRate := (0.4 + hrng.Float64()*1.2) * 1_250_000
			on := sim.Time(1+hrng.Intn(3)) * sim.Second
			off := sim.Time(1+hrng.Intn(3)) * sim.Second
			tr := fig7Run(cc.NewRTC(cc.RTCConfig{InitialRate: 500_000, MinRate: 125_000, MaxRate: 2_000_000}),
				ctRate, on, off, s.TraceDur, s.Seed+7000+int64(i))
			var ct *trace.Series
			if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{KnownBandwidth: 1_250_000}); err == nil {
				ct = params.CrossTraffic
			}
			held = append(held, iboxml.TrainingSample{Trace: tr, CT: ct})
		}
		noCTModel.RecordFidelity("fig7/no-ct", held)
		ctModel.RecordFidelity("fig7/with-ct", held)
		fsp.End()
	}

	// Test: high-rate CBR (8 Mbps) under varying bursty cross traffic,
	// including levels that overload the bottleneck while on. Levels are
	// independent; per-level delay slices concatenate in level order.
	ctLevels := []float64{0, 500_000, 937_500} // 0 / 4 / 7.5 Mbps during bursts
	eval := sp.Start("evaluate")
	eval.SetItems(len(ctLevels))
	defer eval.End()
	type levelRow struct {
		gt, noCT, withCT []float64
	}
	levels, err := par.Map(len(ctLevels), s.Par(), func(i int) (levelRow, error) {
		var row levelRow
		gt := fig7Run(cc.NewCBR(1_000_000), ctLevels[i], 2*sim.Second, 2*sim.Second, s.TraceDur, s.Seed+900+int64(i))
		// Ground truth: per-window mean delays (same granularity as the
		// model predictions).
		_, ys, mask := iboxml.WindowFeatures(gt, nil, 100*sim.Millisecond)
		for w := range ys {
			if mask[w] {
				row.gt = append(row.gt, ys[w])
			}
		}
		// Cross-traffic estimate from the CBR trace itself (§3 estimator,
		// with the known topology's bandwidth).
		var ct *trace.Series
		if params, err := iboxnet.Estimate(gt, iboxnet.EstimatorConfig{KnownBandwidth: 1_250_000}); err == nil {
			ct = params.CrossTraffic
		}
		row.noCT, _ = noCTModel.PredictWindows(gt, nil)
		row.withCT, _ = ctModel.PredictWindows(gt, ct)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var gtDelays, noCTDelays, withCTDelays []float64
	for _, row := range levels {
		gtDelays = append(gtDelays, row.gt...)
		noCTDelays = append(noCTDelays, row.noCT...)
		withCTDelays = append(withCTDelays, row.withCT...)
	}

	res := &Fig7Result{Scale: s}
	// Histogram over [0, max GT delay].
	maxD := 0.0
	for _, d := range gtDelays {
		if d > maxD {
			maxD = d
		}
	}
	if maxD <= 0 {
		maxD = 1
	}
	nbins := 20
	res.Bins = make([]float64, nbins)
	for i := range res.Bins {
		res.Bins[i] = maxD * float64(i) / float64(nbins)
	}
	res.GT = histFrac(gtDelays, 0, maxD, nbins)
	res.NoCT = histFrac(noCTDelays, 0, maxD, nbins)
	res.WithCT = histFrac(withCTDelays, 0, maxD, nbins)

	res.Threshold = 0.6 * maxD
	res.HighGT = fracAbove(gtDelays, res.Threshold)
	res.HighNoCT = fracAbove(noCTDelays, res.Threshold)
	res.HighWithCT = fracAbove(withCTDelays, res.Threshold)
	res.L1NoCT = l1(res.GT, res.NoCT)
	res.L1WithCT = l1(res.GT, res.WithCT)
	return res, nil
}

func histFrac(xs []float64, lo, hi float64, nbins int) []float64 {
	out := make([]float64, nbins)
	if len(xs) == 0 {
		return out
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		out[b]++
	}
	for i := range out {
		out[i] /= float64(len(xs))
	}
	return out
}

func fracAbove(xs []float64, thr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > thr {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func l1(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += abs64(a[i] - b[i])
	}
	return s
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: control-loop bias (trained on RTC, tested on high-rate CBR)\n")
	t := &table{header: []string{"curve", fmt.Sprintf("mass above %.0f ms", r.Threshold), "L1 dist to GT hist"}}
	t.add("(a) ground truth", f3(r.HighGT), "-")
	t.add("(b) iBoxML w/o CT", f3(r.HighNoCT), f3(r.L1NoCT))
	t.add("(c) iBoxML with CT", f3(r.HighWithCT), f3(r.L1WithCT))
	b.WriteString(t.String())
	b.WriteString("(paper: GT exhibits high delay frequently; w/o CT the model rarely outputs high delay;\n with CT input the bias is mitigated)\n")
	return b.String()
}
