package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/core"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// reorderPipeline holds the trace sets shared by Fig 5 and Fig 8: for each
// test flow on the reordering cellular corpus — the ground truth, the
// plain iBoxNet replay (structurally incapable of reordering), the
// ML-augmented iBoxNet replays (LSTM and linear predictors), and the
// iBoxML simulation.
type reorderPipeline struct {
	GT          []*trace.Trace
	IBoxNet     []*trace.Trace
	IBoxNetLSTM []*trace.Trace
	IBoxNetLin  []*trace.Trace
	IBoxML      []*trace.Trace
	TrainCorpus *pantheon.Corpus
	TestCorpus  *pantheon.Corpus
}

// runReorderPipeline builds the corpus (Vegas flows on reordering cellular
// paths, as the paper trains on 100 and tests on 60 Pantheon Vegas flows),
// trains the iBoxML delay model and both reordering predictors on the
// training split, and produces every simulated trace set for the test
// split.
func runReorderPipeline(s Scale) (*reorderPipeline, error) {
	sp := obs.StartSpan("reorder-pipeline")
	defer sp.End()
	total := s.TrainTraces + s.TestTraces
	gen := sp.Start("generate")
	gen.SetItems(total)
	gen.SetArg("profile", "cellular-reorder")
	corpus, err := pantheon.GenerateOpts(pantheon.CellularReorder(), total, "vegas", s.TraceDur, s.Seed+7, s.Par())
	gen.End()
	if err != nil {
		return nil, err
	}
	train, test := corpus.Split(s.TrainTraces)
	p := &reorderPipeline{TrainCorpus: train, TestCorpus: test}

	// Training samples with cross-traffic estimates from §3's estimator,
	// estimated per trace in parallel.
	est := sp.Start("estimate")
	est.SetItems(len(train.Traces))
	samples, err := par.Map(len(train.Traces), s.Par(), func(i int) (iboxml.TrainingSample, error) {
		tr := train.Traces[i]
		var ct *trace.Series
		if params, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{}); err == nil {
			ct = params.CrossTraffic
		}
		return iboxml.TrainingSample{Trace: tr, CT: ct}, nil
	})
	est.End()
	if err != nil {
		return nil, err
	}

	// The three model trainings are independent (each owns its seed) and
	// run concurrently; each writes only its own slot.
	tsp := sp.Start("train")
	tsp.SetItems(3)
	var delayModel *iboxml.Model
	var lstmPred, linPred iboxml.ReorderPredictor
	if err := par.ForEach(3, s.Par(), func(i int) error {
		var err error
		switch i {
		case 0:
			delayModel, err = iboxml.Train(samples, iboxml.Config{
				Hidden: 16, Layers: 2, Epochs: s.MLEpochs, Seed: s.Seed,
			})
			if err != nil {
				return fmt.Errorf("fig5: train iBoxML: %w", err)
			}
		case 1:
			lstmPred, err = iboxml.TrainLSTMReorder(samples, iboxml.LSTMReorderConfig{
				Hidden: 12, Epochs: s.MLEpochs / 2, UseCT: true, Seed: s.Seed + 1,
			})
			if err != nil {
				return fmt.Errorf("fig5: train LSTM reorder: %w", err)
			}
		case 2:
			linPred, err = iboxml.TrainLinearReorder(samples, true, s.Seed+2)
			if err != nil {
				return fmt.Errorf("fig5: train linear reorder: %w", err)
			}
		}
		return nil
	}); err != nil {
		tsp.End()
		return nil, err
	}
	tsp.End()
	if l := obs.Logger(); l != nil {
		l.Info("reorder pipeline models trained",
			"train_traces", len(train.Traces), "delay_loss", delayModel.Diag.FinalLoss)
	}

	// Held-out calibration of the delay head on the test split (the model
	// trains without the CT feature here, so plain traces suffice). Gated
	// on observability; pure reads either way.
	if obs.Enabled() {
		fsp := sp.Start("fidelity")
		fsp.SetItems(len(test.Traces))
		heldOut := make([]iboxml.TrainingSample, 0, len(test.Traces))
		for _, tr := range test.Traces {
			heldOut = append(heldOut, iboxml.TrainingSample{Trace: tr})
		}
		delayModel.RecordFidelity("fig5/delay", heldOut)
		fsp.End()
	}

	// Per-test-trace fit + replay + augmentation: independent across
	// traces, all seeds derived from the trace index before dispatch.
	eval := sp.Start("evaluate")
	eval.SetItems(len(test.Traces))
	defer eval.End()
	type testRow struct {
		net, lstm, lin, ml *trace.Trace
	}
	rows, err := par.Map(len(test.Traces), s.Par(), func(i int) (testRow, error) {
		gt := test.Traces[i]

		// iBoxNet: fit on the test trace, replay Vegas on the model.
		model, err := core.Fit(gt, iboxnet.Full)
		if err != nil {
			return testRow{}, fmt.Errorf("fig5: fit test trace %d: %w", i, err)
		}
		netTr, err := model.Run("vegas", s.TraceDur, s.Seed+int64(i)*13)
		if err != nil {
			return testRow{}, err
		}

		// Augmented variants graft predicted reordering onto iBoxNet output.
		ct := model.Params.CrossTraffic
		return testRow{
			net:  netTr,
			lstm: iboxml.AugmentReordering(netTr, lstmPred, ct, s.Seed+int64(i)*17),
			lin:  iboxml.AugmentReordering(netTr, linPred, ct, s.Seed+int64(i)*19),
			// iBoxML: replay the test flow's sending timeline through the
			// delay model (the paper "tested by replaying the sending rate
			// time series from the test set", §4.1).
			ml: delayModel.SimulateTrace(gt, ct, s.Seed+int64(i)*23),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		p.GT = append(p.GT, test.Traces[i])
		p.IBoxNet = append(p.IBoxNet, row.net)
		p.IBoxNetLSTM = append(p.IBoxNetLSTM, row.lstm)
		p.IBoxNetLin = append(p.IBoxNetLin, row.lin)
		p.IBoxML = append(p.IBoxML, row.ml)
	}
	return p, nil
}

// Fig5Result reproduces Fig 5: the CDF of per-1s-window reordering rates
// on the test set, for ground truth, iBoxML, iBoxNet+LSTM and
// iBoxNet+Linear (plain iBoxNet produces identically zero reordering).
type Fig5Result struct {
	Scale Scale
	// Rates holds the pooled per-window reordering rates per curve.
	Rates map[string][]float64
	// Grid and CDFs give each curve evaluated on a shared grid for
	// plotting.
	Grid []float64
	CDFs map[string][]float64
}

// Fig5Curves is the plotting order of the paper's legend.
var Fig5Curves = []string{"ground-truth", "iboxml", "iboxnet+lstm", "iboxnet+linear", "iboxnet"}

// Fig5 runs the reordering comparison.
func Fig5(s Scale) (*Fig5Result, error) {
	sp := obs.StartSpan("fig5")
	defer sp.End()
	p, err := runReorderPipeline(s)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Scale: s, Rates: map[string][]float64{}, CDFs: map[string][]float64{}}
	collect := func(name string, trs []*trace.Trace) {
		var all []float64
		for _, tr := range trs {
			all = append(all, tr.ReorderingRateWindows(sim.Second)...)
		}
		res.Rates[name] = all
	}
	collect("ground-truth", p.GT)
	collect("iboxml", p.IBoxML)
	collect("iboxnet+lstm", p.IBoxNetLSTM)
	collect("iboxnet+linear", p.IBoxNetLin)
	collect("iboxnet", p.IBoxNet)

	// Shared grid over [0, 0.1] as in the paper's x-axis.
	for x := 0.0; x <= 0.1001; x += 0.005 {
		res.Grid = append(res.Grid, x)
	}
	for name, rates := range res.Rates {
		res.CDFs[name] = stats.ECDF(rates, res.Grid)
	}
	return res, nil
}

// KSAgainstGT reports each simulated curve's KS distance from the ground
// truth reordering-rate distribution (smaller = better match).
func (r *Fig5Result) KSAgainstGT() map[string]float64 {
	out := map[string]float64{}
	gt := r.Rates["ground-truth"]
	for _, name := range Fig5Curves[1:] {
		out[name] = stats.KSTest(gt, r.Rates[name]).Statistic
	}
	return out
}

func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5: CDF of reordering rate over 1s windows (test set, Vegas), train=%d test=%d\n",
		r.Scale.TrainTraces, r.Scale.TestTraces)
	t := &table{header: []string{"curve", "mean rate", "p50", "p95", "frac>0", "KS vs GT"}}
	ks := r.KSAgainstGT()
	for _, name := range Fig5Curves {
		rates := r.Rates[name]
		sum := stats.Summarize(rates)
		nz := 0
		for _, v := range rates {
			if v > 0 {
				nz++
			}
		}
		frac := 0.0
		if len(rates) > 0 {
			frac = float64(nz) / float64(len(rates))
		}
		ksCell := "-"
		if name != "ground-truth" {
			ksCell = f3(ks[name])
		}
		t.add(name, fmt.Sprintf("%.4f", sum.Mean), fmt.Sprintf("%.4f", sum.P50),
			fmt.Sprintf("%.4f", sum.P95), f3(frac), ksCell)
	}
	b.WriteString(t.String())
	b.WriteString("(paper: iBoxML, iBoxNet+LSTM and iBoxNet+Linear match GT; iBoxNet produces no reordering)\n")
	return b.String()
}
