package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/cc"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/replay"
	"ibox/internal/sim"
	"ibox/internal/stats"
)

// BaselinesResult evaluates the paper's §1 motivation quantitatively: on
// the ensemble corpus, compare iBoxNet against trace-driven replay
// (Cellsim/mahimahi-style) as predictors of the *treatment* protocol's
// behaviour. Replay applies the control protocol's recorded delays to
// whatever the treatment sends, so it inherits the control protocol's
// bufferbloat and cannot credit a delay-avoiding treatment with the low
// queues it would actually achieve — "trace-driven replay ... does not
// capture the impact on the network of the application or protocol under
// test".
type BaselinesResult struct {
	Scale Scale
	// Per-flow means for the treatment protocol (Vegas).
	GT, IBoxNet, Replay struct {
		TputMbps, P95Ms float64
	}
	// W1P95 is the Wasserstein-1 distance of each predictor's p95-delay
	// distribution from ground truth (ms; smaller = better).
	IBoxNetW1, ReplayW1 float64
}

// Baselines runs the comparison.
func Baselines(s Scale) (*BaselinesResult, error) {
	sp := obs.StartSpan("baselines")
	defer sp.End()
	gen := sp.Start("generate")
	gen.SetItems(s.EnsembleTraces)
	corpus, err := pantheon.Generate(pantheon.IndiaCellular(), s.EnsembleTraces, "cubic", s.TraceDur, s.Seed)
	gen.End()
	if err != nil {
		return nil, err
	}
	eval := sp.Start("evaluate")
	eval.SetItems(len(corpus.Traces))
	defer eval.End()
	res := &BaselinesResult{Scale: s}
	var gtP95, netP95, repP95 []float64
	var gtT, netT, repT []float64
	for i, rec := range corpus.Traces {
		inst := corpus.Instances[i]
		// Ground truth: Vegas on the real instance.
		gt, err := inst.Run("vegas", s.TraceDur, s.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		// iBoxNet: learn from the Cubic trace, run Vegas.
		model, err := core.Fit(rec, iboxnet.Full)
		if err != nil {
			return nil, err
		}
		netTr, err := model.Run("vegas", s.TraceDur, s.Seed+int64(i)*3)
		if err != nil {
			return nil, err
		}
		// Replay baseline: Vegas over the recorded Cubic delays.
		sched := sim.NewScheduler()
		rn, err := replay.New(sched, rec)
		if err != nil {
			return nil, err
		}
		flow := cc.NewFlow(sched, rn, cc.NewVegas(), cc.FlowConfig{
			Duration: s.TraceDur, AckDelay: model.Params.PropDelay, MaxInflight: 2000,
		})
		flow.Start()
		sched.RunUntil(s.TraceDur + 3*sim.Second)
		repTr := flow.Trace()

		gtP95 = append(gtP95, gt.DelayPercentile(95))
		netP95 = append(netP95, netTr.DelayPercentile(95))
		repP95 = append(repP95, repTr.DelayPercentile(95))
		gtT = append(gtT, gt.Throughput()/1e6)
		netT = append(netT, netTr.Throughput()/1e6)
		repT = append(repT, repTr.Throughput()/1e6)
	}
	res.GT.TputMbps, res.GT.P95Ms = stats.Mean(gtT), stats.Mean(gtP95)
	res.IBoxNet.TputMbps, res.IBoxNet.P95Ms = stats.Mean(netT), stats.Mean(netP95)
	res.Replay.TputMbps, res.Replay.P95Ms = stats.Mean(repT), stats.Mean(repP95)
	res.IBoxNetW1 = stats.Wasserstein1(gtP95, netP95)
	res.ReplayW1 = stats.Wasserstein1(gtP95, repP95)
	return res, nil
}

func (r *BaselinesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Baselines: predicting Vegas from Cubic traces (N=%d) — iBoxNet vs trace replay\n", r.Scale.EnsembleTraces)
	t := &table{header: []string{"predictor", "mean tput Mbps", "mean p95 delay ms", "W1(p95) vs GT ms"}}
	t.add("ground truth", f2(r.GT.TputMbps), f1(r.GT.P95Ms), "-")
	t.add("iBoxNet", f2(r.IBoxNet.TputMbps), f1(r.IBoxNet.P95Ms), f1(r.IBoxNetW1))
	t.add("trace replay", f2(r.Replay.TputMbps), f1(r.Replay.P95Ms), f1(r.ReplayW1))
	b.WriteString(t.String())
	b.WriteString("(§1: replay hands the delay-avoiding treatment the control protocol's bufferbloat)\n")
	return b.String()
}
