package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWritePlots(t *testing.T) {
	dir := t.TempDir()
	s := tiny()

	f2, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.WritePlots(dir); err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f5.WritePlots(dir); err != nil {
		t.Fatal(err)
	}

	checks := map[string][]string{
		"fig2_scatter.csv": {"group,tput_mbps", "Vegas iBoxNet"},
		"fig5_cdf.csv":     {"reordering_rate,ground-truth", "0.05"},
	}
	for name, wants := range checks {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		content := string(data)
		lines := strings.Count(content, "\n")
		if lines < 3 {
			t.Errorf("%s has only %d lines", name, lines)
		}
		for _, w := range wants {
			if !strings.Contains(content, w) {
				t.Errorf("%s missing %q", name, w)
			}
		}
	}
}

func TestWritePlotsFigures478(t *testing.T) {
	dir := t.TempDir()
	s := tiny()
	f4, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f4.WritePlots(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4_tsne.csv"))
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per run.
	if got := strings.Count(string(data), "\n"); got != 1+6*s.RunsPerPattern {
		t.Errorf("fig4_tsne.csv rows = %d, want %d", got, 1+6*s.RunsPerPattern)
	}
	if !strings.Contains(string(data), "model") || !strings.Contains(string(data), "gt") {
		t.Error("fig4 plot missing kind labels")
	}
}

func TestWritePlotsFig7Table1(t *testing.T) {
	dir := t.TempDir()
	s := tiny()
	s.TrainTraces = Quick().TrainTraces
	s.TraceDur = Quick().TraceDur
	f7, err := Fig7(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f7.WritePlots(dir); err != nil {
		t.Fatal(err)
	}
	t1, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.WritePlots(dir); err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := f8.WritePlots(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7_hist.csv", "table1_p95.csv", "fig8_patterns.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if strings.Count(string(data), "\n") < 2 {
			t.Errorf("%s nearly empty", name)
		}
	}
}
