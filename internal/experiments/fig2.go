package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/stats"
)

// Fig2Result reproduces Fig 2: the ensemble test on the (synthetic) India
// Cellular corpus. The paper plots throughput vs 95th-percentile delay (a)
// and vs packet loss (b) for Cubic GT / Cubic iBoxNet / Vegas GT / Vegas
// iBoxNet, with per-group mean/p25/p50/p75 markers, and verifies the match
// via a two-sample KS test.
type Fig2Result struct {
	Ensemble *core.EnsembleResult
	Scale    Scale
}

// groupSummary computes the distribution markers the paper plots.
type groupSummary struct {
	Tput, P95, Loss stats.Summary
}

func summarizeGroup(ms []core.Metrics) groupSummary {
	var t, p, l []float64
	for _, m := range ms {
		t = append(t, m.ThroughputMbps)
		p = append(p, m.P95DelayMs)
		l = append(l, m.LossPct)
	}
	return groupSummary{stats.Summarize(t), stats.Summarize(p), stats.Summarize(l)}
}

// Fig2 runs the ensemble test: a corpus of Cubic (control) traces on
// cellular paths trains one iBoxNet per trace; Cubic and the never-seen
// Vegas run on each model and are compared against ground truth.
func Fig2(s Scale) (*Fig2Result, error) {
	sp := obs.StartSpan("fig2")
	defer sp.End()

	gen := sp.Start("generate")
	gen.SetItems(s.EnsembleTraces)
	gen.SetArg("profile", "india-cellular")
	corpus, err := pantheon.GenerateOpts(pantheon.IndiaCellular(), s.EnsembleTraces, "cubic", s.TraceDur, s.Seed, s.Par())
	gen.End()
	if err != nil {
		return nil, err
	}

	ens := sp.Start("ensemble")
	ens.SetItems(s.EnsembleTraces)
	res, err := core.EnsembleTestOpts(corpus, "vegas", iboxnet.Full, s.TraceDur, s.Seed+100, s.Par())
	ens.End()
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Ensemble: res, Scale: s}, nil
}

// Groups returns the four plotted groups in the paper's order.
func (r *Fig2Result) Groups() map[string]groupSummary {
	return map[string]groupSummary{
		"Cubic GT":      summarizeGroup(r.Ensemble.GTControl),
		"Cubic iBoxNet": summarizeGroup(r.Ensemble.SimControl),
		"Vegas GT":      summarizeGroup(r.Ensemble.GTTreatment),
		"Vegas iBoxNet": summarizeGroup(r.Ensemble.SimTreatment),
	}
}

func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: iBoxNet ensemble test (India Cellular synthetic), N=%d, dur=%v\n",
		r.Scale.EnsembleTraces, r.Scale.TraceDur)
	t := &table{header: []string{"group", "tput Mbps (mean/p25/p50/p75)", "p95 delay ms (mean/p25/p50/p75)", "loss % (mean/p25/p50/p75)"}}
	for _, name := range []string{"Cubic GT", "Cubic iBoxNet", "Vegas GT", "Vegas iBoxNet"} {
		g := r.Groups()[name]
		t.add(name,
			fmt.Sprintf("%s/%s/%s/%s", f2(g.Tput.Mean), f2(g.Tput.P25), f2(g.Tput.P50), f2(g.Tput.P75)),
			fmt.Sprintf("%s/%s/%s/%s", f1(g.P95.Mean), f1(g.P95.P25), f1(g.P95.P50), f1(g.P95.P75)),
			fmt.Sprintf("%s/%s/%s/%s", f2(g.Loss.Mean), f2(g.Loss.P25), f2(g.Loss.P50), f2(g.Loss.P75)))
	}
	b.WriteString(t.String())
	b.WriteString("two-sample KS (sim vs GT):\n")
	kt := &table{header: []string{"metric", "control D", "control p", "treatment D", "treatment p"}}
	for _, m := range []string{"tput", "p95", "loss"} {
		kc := r.Ensemble.KS["control/"+m]
		kt2 := r.Ensemble.KS["treatment/"+m]
		kt.add(m, f3(kc.Statistic), f3(kc.PValue), f3(kt2.Statistic), f3(kt2.PValue))
	}
	b.WriteString(kt.String())
	return b.String()
}
