package experiments

import (
	"fmt"
	"strings"

	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/par"
)

// Fig3Result reproduces Fig 3: the same ensemble test as Fig 2 but with
// (a) the cross-traffic input removed and (b) a simple statistical
// packet-loss model in place of cross traffic (the calibrated-emulator
// baseline). The paper's finding: both ablations match ground truth worse
// than full iBoxNet, underscoring that cross traffic must be modelled, and
// modelled with care.
type Fig3Result struct {
	Full     *core.EnsembleResult
	NoCT     *core.EnsembleResult
	StatLoss *core.EnsembleResult
	Scale    Scale
}

// Fig3 runs the ablation comparison on one shared corpus. The three
// variant ensemble tests are independent given the corpus, so they fan
// out alongside the per-trace parallelism inside each test.
func Fig3(s Scale) (*Fig3Result, error) {
	sp := obs.StartSpan("fig3")
	defer sp.End()

	gen := sp.Start("generate")
	gen.SetItems(s.EnsembleTraces)
	corpus, err := pantheon.GenerateOpts(pantheon.IndiaCellular(), s.EnsembleTraces, "cubic", s.TraceDur, s.Seed, s.Par())
	gen.End()
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Scale: s}
	variants := []iboxnet.Variant{iboxnet.Full, iboxnet.NoCT, iboxnet.StatLoss}
	ab := sp.Start("ablations")
	ab.SetItems(len(variants))
	ensembles, err := par.Map(len(variants), s.Par(), func(i int) (*core.EnsembleResult, error) {
		vsp := sp.Start("ensemble(" + variants[i].String() + ")")
		defer vsp.End()
		return core.EnsembleTestOpts(corpus, "vegas", variants[i], s.TraceDur, s.Seed+100, s.Par())
	})
	ab.End()
	if err != nil {
		return nil, err
	}
	res.Full, res.NoCT, res.StatLoss = ensembles[0], ensembles[1], ensembles[2]
	return res, nil
}

// variantScore extracts the comparison metrics for one variant: the KS
// distance of the treatment p95-delay distribution vs GT (the paper's
// Fig 3 axis) and mean absolute errors.
type variantScore struct {
	KSP95, KSTput   float64
	MAETput, MAEP95 float64
}

func scoreOf(e *core.EnsembleResult) variantScore {
	t, p, _ := e.MeanAbsError()
	return variantScore{
		KSP95:   e.KS["treatment/p95"].Statistic,
		KSTput:  e.KS["treatment/tput"].Statistic,
		MAETput: t,
		MAEP95:  p,
	}
}

// Scores returns per-variant comparison scores keyed by variant name.
func (r *Fig3Result) Scores() map[string]variantScore {
	return map[string]variantScore{
		"iboxnet":          scoreOf(r.Full),
		"iboxnet-noct":     scoreOf(r.NoCT),
		"iboxnet-statloss": scoreOf(r.StatLoss),
	}
}

func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: cross-traffic ablations (treatment = Vegas), N=%d, dur=%v\n",
		r.Scale.EnsembleTraces, r.Scale.TraceDur)
	t := &table{header: []string{"variant", "KS(p95 delay)", "KS(tput)", "MAE tput Mbps", "MAE p95 ms"}}
	for _, name := range []string{"iboxnet", "iboxnet-noct", "iboxnet-statloss"} {
		sc := r.Scores()[name]
		t.add(name, f3(sc.KSP95), f3(sc.KSTput), f2(sc.MAETput), f1(sc.MAEP95))
	}
	b.WriteString(t.String())
	b.WriteString("(paper: both ablations yield a worse match with ground truth than full iBoxNet)\n")
	return b.String()
}
