package experiments

import (
	"fmt"
	"testing"

	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/sim"
)

// tinyScale keeps the serial/parallel A/B runs fast: the point of these
// tests is bit-equality, not statistical fidelity.
func tinyScale() Scale {
	return Scale{
		EnsembleTraces: 4,
		TraceDur:       4 * sim.Second,
		TrainTraces:    4,
		TestTraces:     3,
		RTCTraces:      6,
		MLEpochs:       2,
		RunsPerPattern: 2,
		SpeedWarmup:    10,
		SpeedSamples:   50,
		Seed:           7,
	}
}

// TestFig2SerialParallelIdentical is the tentpole's determinism contract:
// the ensemble test must produce byte-identical output whether it runs on
// one goroutine or fans out over eight. Every per-trace RNG seed is
// derived from the trace index before dispatch, so goroutine scheduling
// cannot perturb any stochastic component (race-safe RNG usage is the
// thing being proven here; run with -race).
func TestFig2SerialParallelIdentical(t *testing.T) {
	serial := tinyScale()
	serial.Serial = true
	parallel := tinyScale()
	parallel.Workers = 8

	rs, err := Fig2(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.String(), rs.String(); got != want {
		t.Errorf("parallel Fig2 output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	// Compare the raw distributions too, not just the formatted table.
	for i := range rs.Ensemble.SimTreatment {
		if rs.Ensemble.SimTreatment[i] != rp.Ensemble.SimTreatment[i] {
			t.Errorf("SimTreatment[%d]: serial %+v != parallel %+v",
				i, rs.Ensemble.SimTreatment[i], rp.Ensemble.SimTreatment[i])
		}
	}
}

// TestTable1SerialParallelIdentical proves the same for the iBoxML
// training pipeline: trace generation, the two model trainings and the
// per-call evaluation all fan out, and the resulting table is identical
// to a single-goroutine run on the same seed.
func TestTable1SerialParallelIdentical(t *testing.T) {
	serial := tinyScale()
	serial.Serial = true
	parallel := tinyScale()
	parallel.Workers = 8

	rs, err := Table1(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Table1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.String(), rs.String(); got != want {
		t.Errorf("parallel Table1 output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	for i := range rs.GTP95 {
		if rs.GTP95[i] != rp.GTP95[i] || rs.NoCTP95[i] != rp.NoCTP95[i] || rs.WithCTP95[i] != rp.WithCTP95[i] {
			t.Errorf("call %d: serial (%.6f %.6f %.6f) != parallel (%.6f %.6f %.6f)",
				i, rs.GTP95[i], rs.NoCTP95[i], rs.WithCTP95[i],
				rp.GTP95[i], rp.NoCTP95[i], rp.WithCTP95[i])
		}
	}
}

// TestFig2ObservedIdentical is the observability half of the determinism
// contract (see internal/obs): enabling metrics and spans must not change
// any experiment output. The instrumentation only ever writes clock
// readings into obs state — nothing reads them back into the pipeline —
// so an observed run is byte-identical to an unobserved one.
func TestFig2ObservedIdentical(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs registry unexpectedly installed at test start")
	}
	plain, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	defer obs.Disable()
	observed, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := observed.String(), plain.String(); got != want {
		t.Errorf("observed Fig2 output differs from unobserved:\n--- unobserved ---\n%s\n--- observed ---\n%s", want, got)
	}
	// The run must actually have been observed, or this test proves
	// nothing.
	if n := obs.Get().Counter("pantheon.traces").Value(); n == 0 {
		t.Error("observed run recorded no pantheon.traces — instrumentation not active?")
	}
	if len(obs.Get().BuildReport().Stages) == 0 {
		t.Error("observed run recorded no stages")
	}
}

// TestTable1ObservedIdentical proves the same over the iBoxML training
// pipeline, whose instrumentation (per-epoch loss gauges and timings)
// sits inside the training loop itself.
func TestTable1ObservedIdentical(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs registry unexpectedly installed at test start")
	}
	plain, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	defer obs.Disable()
	observed, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := observed.String(), plain.String(); got != want {
		t.Errorf("observed Table1 output differs from unobserved:\n--- unobserved ---\n%s\n--- observed ---\n%s", want, got)
	}
	if n := obs.Get().Counter("iboxml.epochs").Value(); n == 0 {
		t.Error("observed run recorded no iboxml.epochs — instrumentation not active?")
	}
}

// TestFig3SerialParallelIdentical covers the variant-level fan-out layered
// on the per-trace fan-out.
func TestFig3SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	serial := tinyScale()
	serial.Serial = true
	parallel := tinyScale()
	parallel.Workers = 8

	rs, err := Fig3(serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.String(), rs.String(); got != want {
		t.Errorf("parallel Fig3 output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// TestSharedPoolSerialIdentical is the scheduler half of the determinism
// contract: running an experiment's fan-outs on one shared engine pool
// (nested maps dispatched help-first through par.PoolMap, exactly as
// ibox-experiments wires it) must produce output byte-identical to a
// single-goroutine run. All four experiments with nested fan-outs share
// ONE pool across subtests, so later experiments run against a pool
// that earlier ones already exercised — the deployment shape.
func TestSharedPoolSerialIdentical(t *testing.T) {
	pool := par.NewPool(8)
	defer pool.Close()
	for _, e := range []struct {
		name string
		run  func(Scale) (fmt.Stringer, error)
		slow bool
	}{
		{"fig3", func(s Scale) (fmt.Stringer, error) { return Fig3(s) }, true},
		{"fig5", func(s Scale) (fmt.Stringer, error) { return Fig5(s) }, true},
		{"fig7", func(s Scale) (fmt.Stringer, error) { return Fig7(s) }, true},
		{"table1", func(s Scale) (fmt.Stringer, error) { return Table1(s) }, false},
	} {
		t.Run(e.name, func(t *testing.T) {
			if e.slow && testing.Short() {
				t.Skip("short mode")
			}
			serial := tinyScale()
			serial.Serial = true
			pooled := tinyScale()
			pooled.Pool = pool
			rs, err := e.run(serial)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := e.run(pooled)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := rp.String(), rs.String(); got != want {
				t.Errorf("shared-pool %s output differs from serial:\n--- serial ---\n%s\n--- pool ---\n%s", e.name, want, got)
			}
		})
	}
}

// TestSharedPoolRoutesFanouts proves Scale.Pool actually routes the
// fan-outs through the pool (a silently ignored Pool field would make
// TestSharedPoolSerialIdentical pass vacuously).
func TestSharedPoolRoutesFanouts(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("obs registry unexpectedly installed at test start")
	}
	obs.Enable()
	defer obs.Disable()
	pool := par.NewPool(4)
	defer pool.Close()
	s := tinyScale()
	s.Pool = pool
	if _, err := Table1(s); err != nil {
		t.Fatal(err)
	}
	if n := obs.Get().Counter("par.pool_maps").Value(); n == 0 {
		t.Error("pooled Table1 run dispatched no PoolMap calls — Options.Pool routing broken?")
	}
}
