package experiments

import (
	"fmt"
	"strings"
	"time"

	"ibox/internal/cc"
	"ibox/internal/iboxml"
	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// SpeedResult reproduces the §4.2 simulation-speed analysis: the paper
// measures 2.2 ms per packet for a 4-layer ≈2M-parameter LSTM on a V100,
// implying a maximum emulated rate of just 5.5 Mbps with 1500-byte
// packets. We measure per-packet inference cost of iBoxML configurations
// of increasing size (pure Go on CPU) and, for contrast, the per-packet
// cost of the iBoxNet discrete-event emulator — the architectural point
// being that per-packet deep inference is orders of magnitude too slow for
// line-rate emulation while the simple network model is not.
type SpeedResult struct {
	Rows []SpeedRow
	// IBoxNetPerPacket is the ground-truth-emulator cost per packet.
	IBoxNetPerPacket time.Duration
	IBoxNetImplied   float64 // Mbps at 1500-byte packets
}

// SpeedRow is one model size's measurement.
type SpeedRow struct {
	Layers, Hidden int
	Params         int
	PerPacket      time.Duration
	ImpliedMbps    float64 // 1500-byte packets
}

// impliedMbps converts a per-packet budget into the maximum sustainable
// emulated data rate for 1500-byte packets.
func impliedMbps(perPacket time.Duration) float64 {
	if perPacket <= 0 {
		return 0
	}
	pktsPerSec := float64(time.Second) / float64(perPacket)
	return pktsPerSec * 1500 * 8 / 1e6
}

// Speed measures per-packet inference cost for several iBoxML sizes and
// for the iBoxNet emulator. The timing-loop sizes come from the Scale
// (SpeedWarmup/SpeedSamples) so Quick-scale runs stay CI-fast; zero
// values fall back to the paper-scale loop sizes.
func Speed(s Scale) (*SpeedResult, error) {
	sp := obs.StartSpan("speed")
	defer sp.End()
	warm, n := s.SpeedWarmup, s.SpeedSamples
	if warm <= 0 {
		warm = 200
	}
	if n <= 0 {
		n = 3000
	}
	res := &SpeedResult{}
	// A tiny training run to obtain a usable model of each size.
	samples := []iboxml.TrainingSample{{Trace: speedTrace(s.Seed)}}
	configs := []struct{ layers, hidden int }{
		{1, 16}, {2, 32}, {4, 64}, {4, 128},
	}
	for _, c := range configs {
		m, err := iboxml.Train(samples, iboxml.Config{
			Hidden: c.hidden, Layers: c.layers, Epochs: 1, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Self-calibration (the throwaway model's own training trace) so a
		// -run speed -report run still carries a fidelity section.
		m.RecordFidelity(fmt.Sprintf("speed/%dx%d", c.layers, c.hidden), samples)
		step := m.PredictPacketDelay()
		feat := []float64{15000, 1.2, 1500, 30}
		for i := 0; i < warm; i++ {
			step(feat)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			step(feat)
		}
		per := time.Since(start) / time.Duration(n)
		res.Rows = append(res.Rows, SpeedRow{
			Layers: c.layers, Hidden: c.hidden, Params: m.NumParams(),
			PerPacket: per, ImpliedMbps: impliedMbps(per),
		})
	}

	// iBoxNet emulator cost per packet: run a paced CBR flow through a
	// discrete-event path and divide wall time by packets processed.
	sched := sim.NewScheduler()
	path := netsim.New(sched, netsim.Config{
		Rate: 12_500_000, BufferBytes: 1_250_000, PropDelay: 20 * sim.Millisecond, Seed: 1,
	})
	flow := cc.NewFlow(sched, path.Port("m"), cc.NewCBR(6_250_000), cc.FlowConfig{
		Duration: 10 * sim.Second, AckDelay: 20 * sim.Millisecond,
	})
	flow.Start()
	start := time.Now()
	sched.RunUntil(12 * sim.Second)
	elapsed := time.Since(start)
	if n := len(flow.Trace().Packets); n > 0 {
		res.IBoxNetPerPacket = elapsed / time.Duration(n)
		res.IBoxNetImplied = impliedMbps(res.IBoxNetPerPacket)
	}
	return res, nil
}

// speedTrace is a minimal training trace for the throwaway speed models.
func speedTrace(seed int64) *trace.Trace {
	tr := &trace.Trace{Protocol: "speed"}
	for i := 0; i < 500; i++ {
		send := sim.Time(i) * 5 * sim.Millisecond
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + 30*sim.Millisecond,
		})
	}
	return tr
}

func (r *SpeedResult) String() string {
	var b strings.Builder
	b.WriteString("§4.2 simulation speed: per-packet inference cost (CPU, pure Go)\n")
	t := &table{header: []string{"model", "params", "per-packet", "implied Mbps (1500B pkts)"}}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("iBoxML %dx%d", row.Layers, row.Hidden),
			fmt.Sprintf("%d", row.Params),
			row.PerPacket.String(),
			f2(row.ImpliedMbps))
	}
	t.add("iBoxNet emulator", "-", r.IBoxNetPerPacket.String(), f2(r.IBoxNetImplied))
	b.WriteString(t.String())
	b.WriteString("(paper: 4-layer ≈2M-param LSTM = 2.2 ms/pkt on a V100 ⇒ 5.5 Mbps max emulated rate)\n")
	return b.String()
}
