package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ibox/internal/core"
)

// This file writes each experiment's plottable series as CSV files, so the
// harness regenerates the paper's *figures* (feed the CSVs to any plotting
// tool), not just their summary rows.

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
}

func fs(v float64) string { return fmt.Sprintf("%g", v) }

// WritePlots emits fig2_scatter.csv: one point per flow per group, the
// paper's throughput-vs-p95 / throughput-vs-loss scatter.
func (r *Fig2Result) WritePlots(dir string) error {
	rows := [][]string{{"group", "tput_mbps", "p95_delay_ms", "loss_pct"}}
	groups := []struct {
		name string
		ms   []core.Metrics
	}{
		{"Cubic GT", r.Ensemble.GTControl},
		{"Cubic iBoxNet", r.Ensemble.SimControl},
		{"Vegas GT", r.Ensemble.GTTreatment},
		{"Vegas iBoxNet", r.Ensemble.SimTreatment},
	}
	for _, g := range groups {
		for _, m := range g.ms {
			rows = append(rows, []string{g.name, fs(m.ThroughputMbps), fs(m.P95DelayMs), fs(m.LossPct)})
		}
	}
	return writeCSV(dir, "fig2_scatter.csv", rows)
}

// WritePlots emits fig4_tsne.csv: the t-SNE embedding with labels
// (0–2 ground-truth instance k; 3–5 model instance k−3), the paper's
// Fig 4(b) point cloud.
func (r *Fig4Result) WritePlots(dir string) error {
	rows := [][]string{{"x", "y", "label", "kind", "instance"}}
	for i, p := range r.Embedding {
		kind := "gt"
		inst := r.Labels[i]
		if inst >= 3 {
			kind = "model"
			inst -= 3
		}
		rows = append(rows, []string{
			fs(p[0]), fs(p[1]), fmt.Sprintf("%d", r.Labels[i]), kind, fmt.Sprintf("%d", inst),
		})
	}
	return writeCSV(dir, "fig4_tsne.csv", rows)
}

// WritePlots emits fig5_cdf.csv: reordering-rate CDFs per curve on the
// shared grid — the paper's Fig 5.
func (r *Fig5Result) WritePlots(dir string) error {
	rows := [][]string{append([]string{"reordering_rate"}, Fig5Curves...)}
	for i, x := range r.Grid {
		row := []string{fs(x)}
		for _, c := range Fig5Curves {
			row = append(row, fs(r.CDFs[c][i]))
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, "fig5_cdf.csv", rows)
}

// WritePlots emits fig7_hist.csv: the three delay histograms of Fig 7.
func (r *Fig7Result) WritePlots(dir string) error {
	rows := [][]string{{"delay_ms", "ground_truth", "iboxml_no_ct", "iboxml_with_ct"}}
	for i := range r.Bins {
		rows = append(rows, []string{fs(r.Bins[i]), fs(r.GT[i]), fs(r.NoCT[i]), fs(r.WithCT[i])})
	}
	return writeCSV(dir, "fig7_hist.csv", rows)
}

// WritePlots emits fig8_patterns.csv: the Fig 8(b) frequency table.
func (r *Fig8Result) WritePlots(dir string) error {
	rows := [][]string{{"pattern", "ground_truth", "iboxnet", "iboxnet_ml"}}
	for _, pat := range r.APatterns {
		rows = append(rows, []string{
			pat,
			fs(r.freqOf("gt", pat)),
			fs(r.freqOf("iboxnet", pat)),
			fs(r.freqOf("iboxnet+ml", pat)),
		})
	}
	return writeCSV(dir, "fig8_patterns.csv", rows)
}

// WritePlots emits table1.csv: per-call p95 delays under each model.
func (r *Table1Result) WritePlots(dir string) error {
	rows := [][]string{{"call", "gt_p95_ms", "no_ct_p95_ms", "with_ct_p95_ms"}}
	for i := range r.GTP95 {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i), fs(r.GTP95[i]), fs(r.NoCTP95[i]), fs(r.WithCTP95[i]),
		})
	}
	return writeCSV(dir, "table1_p95.csv", rows)
}
