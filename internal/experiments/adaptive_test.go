package experiments

import (
	"math"
	"testing"
)

func TestAdaptiveCTExtension(t *testing.T) {
	r, err := AdaptiveCT(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The §6 story: GT Vegas yields heavily during the Cubic burst; replay
	// cannot reproduce that; the adaptive emulation can.
	if r.GTBurstTput > 0.5*r.ReplayBurstTput {
		t.Skipf("scenario did not induce yielding (GT %.2f vs replay %.2f Mbps)",
			r.GTBurstTput/1e6, r.ReplayBurstTput/1e6)
	}
	errReplay := math.Abs(r.ReplayBurstTput - r.GTBurstTput)
	errAdaptive := math.Abs(r.AdaptiveBurstTput - r.GTBurstTput)
	if errAdaptive >= errReplay {
		t.Errorf("adaptive burst error %.2f Mbps not below replay %.2f Mbps",
			errAdaptive/1e6, errReplay/1e6)
	}
	if r.AdaptiveDelayCorr <= r.ReplayDelayCorr {
		t.Errorf("adaptive delay corr %.3f not above replay %.3f",
			r.AdaptiveDelayCorr, r.ReplayDelayCorr)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestBaselinesReplayFails(t *testing.T) {
	r, err := Baselines(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// iBoxNet must beat trace replay at predicting the treatment's p95
	// distribution (the §1 motivation).
	if r.IBoxNetW1 >= r.ReplayW1 {
		t.Errorf("iBoxNet W1 %.1f not below replay %.1f", r.IBoxNetW1, r.ReplayW1)
	}
	// Replay's characteristic failure: the delay-avoiding treatment is
	// stuck with the recorded bufferbloat, so its predicted p95 delay is
	// far above ground truth.
	if r.Replay.P95Ms < 1.3*r.GT.P95Ms {
		t.Errorf("replay p95 %.0f not inflated vs GT %.0f", r.Replay.P95Ms, r.GT.P95Ms)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRealismTuningTransfers(t *testing.T) {
	r, err := Realism(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// §6's realism criterion: tuning on iBoxNet transfers to the real path
	// better than tuning on trace replay — both in regret and in how the
	// simulator *orders* the candidate configurations.
	// The robust statistic is how the simulator *orders* the candidate
	// configurations; argmax regret over four noisy configs is
	// high-variance, so it is reported but not asserted.
	if r.ModelRankCorr <= r.ReplayRankCorr {
		t.Errorf("rank corr: iBoxNet %.2f not above replay %.2f", r.ModelRankCorr, r.ReplayRankCorr)
	}
	t.Logf("regret: iBoxNet %.2f, replay %.2f; rank corr: iBoxNet %.2f, replay %.2f",
		r.ModelRegret, r.ReplayRegret, r.ModelRankCorr, r.ReplayRankCorr)
	if len(r.Configs) != len(r.GTQoE) || len(r.GTQoE) == 0 {
		t.Fatalf("result shape: %d configs, %d QoE", len(r.Configs), len(r.GTQoE))
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}
