// Package regress is the regression gate over the pipeline's structured
// outputs: it diffs two RUN_REPORT.json (internal/obs) or BENCH_*.json
// (cmd/ibox-bench) files metric by metric, applies per-class relative
// thresholds, renders an aligned delta table, and reports whether
// anything regressed. cmd/ibox-compare is the CLI; CI runs it against
// the committed baselines so a perf or model-fidelity regression fails
// the build instead of scrolling past in a log.
//
// Metric classes and their gate semantics:
//
//   - time — wall/stage seconds, histogram latency quantiles, bench
//     ns/op. Regression: the new value exceeds the base by more than the
//     relative tolerance AND by more than an absolute floor (timing noise
//     on small quantities must not flap the gate). Decreases never gate.
//   - count — counters and histogram counts. These are deterministic in
//     the seed (items processed, epochs run), so the default tolerance is
//     exact; ANY drift means the pipeline did different work.
//   - fidelity — held-out NLL gates like a time metric (lower is
//     better, relative); PIT deviation and per-quantile coverage gate on
//     absolute worsening of their distance from the ideal (uniform bins,
//     nominal coverage).
//   - info — machine-dependent values (gauges like par.workers,
//     gomaxprocs, worker utilization) are reported but never gate.
//
// A metric present in the base but missing from the new file is a
// regression by default (a vanished fidelity section is exactly the kind
// of silent break the gate exists for); metrics new in the new file are
// informational.
package regress

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ibox/internal/obs"
)

// Thresholds are the per-class gate tolerances.
type Thresholds struct {
	// Time is the allowed relative increase for time-class metrics
	// (0.5 = +50%).
	Time float64
	// TimeFloorSeconds is the absolute increase a time-class metric must
	// also exceed to gate, in seconds.
	TimeFloorSeconds float64
	// Count is the allowed relative change (either direction) for
	// count-class metrics; 0 demands exact equality.
	Count float64
	// Fidelity is the allowed relative NLL increase and the allowed
	// absolute worsening of PIT deviation / coverage error.
	Fidelity float64
	// Skip lists substring patterns; matching metric names are reported
	// as skipped and never gate.
	Skip []string
	// AllowMissing downgrades base-only metrics from regression to note.
	AllowMissing bool
}

// DefaultThresholds returns the stock gate: exact counters, +100% wall
// clock (CI runners vary widely; the floor keeps micro-stages quiet),
// 10% fidelity, and the known machine-dependent metrics skipped.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Time:             1.0,
		TimeFloorSeconds: 0.05,
		Count:            0,
		Fidelity:         0.10,
		Skip: []string{
			"gomaxprocs", "worker_utilization", "pool_utilization",
			"par.workers", "par.queue_wait",
			// Shared-pool scheduler metrics: the inline/dispatched split,
			// queue depths and nesting high-water marks depend on
			// scheduling timing, not on the work done, so none of them can
			// gate (the deterministic work counts gate via par.items and
			// par.map_calls instead).
			"par.pool",
			// Rolling-window serving gauges (serve.win.*): rates and
			// windowed quantiles measure the recent past of one process on
			// one machine — machine- and timing-dependent by construction,
			// like pool_utilization. The cumulative serve.* counters and
			// histograms they are derived from gate normally.
			"serve.win",
			// SLO burn rates and drift scorecards: derived from the same
			// rolling windows (burn) or from how many requests a timing-
			// dependent sampler happened to score (drift windows, NLL
			// means over them), so they cannot gate either. Deterministic
			// drift numbers gate through the bench fidelity records.
			"obs.slo", "serve.drift",
		},
	}
}

// class is a metric's gate semantics.
type class int

const (
	classTime class = iota
	classCount
	classNLL      // lower-better, relative tolerance (Fidelity)
	classDistance // distance-from-ideal, absolute worsening tolerance (Fidelity)
	classInfo     // never gates
)

// metric is one comparable scalar extracted from a report or bench file.
type metric struct {
	name  string
	value float64
	class class
	// unit scales the TimeFloorSeconds for time metrics: 1 for seconds,
	// 1e9 for nanoseconds.
	unit float64
}

// Status of one delta row.
type Status int

const (
	StatusOK Status = iota
	StatusRegressed
	StatusImproved // markedly better than base — celebrated, never gates
	StatusSkipped
	StatusInfo
	StatusMissing // in base, not in new
	StatusNew     // in new, not in base
)

// improveFrac is the relative improvement a gating metric must beat
// (alongside the class's absolute floor) to be celebrated as IMPROVED
// rather than quietly ok — the mirror image of a regression, so genuine
// wins are as loud in the table as genuine losses.
const improveFrac = 0.25

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRegressed:
		return "REGRESSED"
	case StatusImproved:
		return "IMPROVED"
	case StatusSkipped:
		return "skipped"
	case StatusInfo:
		return "info"
	case StatusMissing:
		return "MISSING"
	case StatusNew:
		return "new"
	}
	return "?"
}

// Delta is one metric's comparison row.
type Delta struct {
	Metric string
	Base   float64
	New    float64
	// Rel is (New−Base)/Base; NaN when Base is 0.
	Rel    float64
	Limit  string // human-readable gate bound ("≤ +100%", "exact", "-")
	Status Status
}

// Result is a full comparison: every delta row plus the regression and
// improvement counts.
type Result struct {
	Deltas       []Delta
	Regressions  int
	Improvements int
}

// Failed reports whether the gate should fail (any regression or missing
// metric counted as one).
func (r *Result) Failed() bool { return r.Regressions > 0 }

func skipped(name string, skip []string) bool {
	for _, pat := range skip {
		if pat != "" && strings.Contains(name, pat) {
			return true
		}
	}
	return false
}

// compareMetrics diffs two extracted metric maps under the thresholds.
func compareMetrics(base, new map[string]metric, th Thresholds) *Result {
	names := make([]string, 0, len(base)+len(new))
	seen := map[string]bool{}
	for n := range base {
		names = append(names, n)
		seen[n] = true
	}
	for n := range new {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	res := &Result{}
	for _, name := range names {
		b, inBase := base[name]
		nw, inNew := new[name]
		d := Delta{Metric: name, Base: b.value, New: nw.value}
		switch {
		case skipped(name, th.Skip):
			d.Status = StatusSkipped
			d.Limit = "-"
		case !inNew:
			d.Status = StatusMissing
			d.Limit = "present"
			if !th.AllowMissing && b.class != classInfo {
				res.Regressions++
			}
		case !inBase:
			d.Status = StatusNew
			d.Limit = "-"
		default:
			d.Rel = rel(b.value, nw.value)
			d.Status, d.Limit = gate(b, nw, th)
			switch d.Status {
			case StatusRegressed:
				res.Regressions++
			case StatusImproved:
				res.Improvements++
			}
		}
		res.Deltas = append(res.Deltas, d)
	}
	return res
}

func rel(base, new float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (new - base) / base
}

// gate applies one metric's class semantics.
func gate(b, nw metric, th Thresholds) (Status, string) {
	switch b.class {
	case classInfo:
		return StatusInfo, "-"
	case classTime:
		limit := fmt.Sprintf("<= +%.0f%%", th.Time*100)
		floor := th.TimeFloorSeconds * b.unit
		if nw.value > b.value*(1+th.Time) && nw.value-b.value > floor {
			return StatusRegressed, limit
		}
		if nw.value < b.value*(1-improveFrac) && b.value-nw.value > floor {
			return StatusImproved, limit
		}
		return StatusOK, limit
	case classCount:
		if th.Count == 0 {
			if nw.value != b.value {
				return StatusRegressed, "exact"
			}
			return StatusOK, "exact"
		}
		limit := fmt.Sprintf("±%.0f%%", th.Count*100)
		if b.value == 0 {
			if nw.value != 0 {
				return StatusRegressed, limit
			}
			return StatusOK, limit
		}
		if math.Abs(rel(b.value, nw.value)) > th.Count {
			return StatusRegressed, limit
		}
		return StatusOK, limit
	case classNLL:
		limit := fmt.Sprintf("<= +%.0f%%", th.Fidelity*100)
		// Absolute floor mirrors the time gate: NLL near zero must not
		// flap on float jitter.
		if nw.value > b.value*(1+th.Fidelity) && nw.value-b.value > 0.05 {
			return StatusRegressed, limit
		}
		if nw.value < b.value*(1-improveFrac) && b.value-nw.value > 0.05 {
			return StatusImproved, limit
		}
		return StatusOK, limit
	case classDistance:
		// Values are distances from ideal (0 is perfect); gate on
		// absolute worsening.
		limit := fmt.Sprintf("<= +%.2f abs", th.Fidelity)
		if nw.value > b.value+th.Fidelity {
			return StatusRegressed, limit
		}
		if nw.value < b.value-th.Fidelity {
			return StatusImproved, limit
		}
		return StatusOK, limit
	}
	return StatusInfo, "-"
}

// reportMetrics flattens a run report into comparable scalars.
func reportMetrics(rep *obs.Report) map[string]metric {
	out := map[string]metric{}
	add := func(name string, v float64, c class, unit float64) {
		out[name] = metric{name: name, value: v, class: c, unit: unit}
	}
	add("wall_seconds", rep.WallSeconds, classTime, 1)
	add("gomaxprocs", float64(rep.GoMaxProcs), classInfo, 1)
	add("worker_utilization", rep.WorkerUtilization, classInfo, 1)
	add("pool_utilization", rep.PoolUtilization, classInfo, 1)

	// Stage wall times, keyed by span path. Duplicate paths (a stage that
	// ran more than once, e.g. under -parallel) accumulate.
	var stack []string
	for _, st := range rep.Stages {
		if st.Depth < len(stack) {
			stack = stack[:st.Depth]
		}
		stack = append(stack, st.Name)
		name := "stage." + strings.Join(stack, "/") + ".seconds"
		if prev, ok := out[name]; ok {
			add(name, prev.value+st.Seconds, classTime, 1)
		} else {
			add(name, st.Seconds, classTime, 1)
		}
	}

	for name, c := range rep.Counters {
		// Counters with an _ns suffix accumulate wall time (par.capacity_ns
		// = Σ map-wall × workers), so they vary run to run like any timing
		// and gate as time, not as exact work counts.
		if strings.HasSuffix(name, "_ns") {
			add("counter."+name, float64(c), classTime, 1e9)
		} else {
			add("counter."+name, float64(c), classCount, 1)
		}
	}
	for name, g := range rep.Gauges {
		add("gauge."+name, g, classInfo, 1)
	}
	for name, h := range rep.Histograms {
		add("hist."+name+".count", float64(h.Count), classCount, 1)
		add("hist."+name+".mean", h.Mean, classTime, 1e9)
		add("hist."+name+".p50", h.P50, classTime, 1e9)
		add("hist."+name+".p90", h.P90, classTime, 1e9)
		add("hist."+name+".p99", h.P99, classTime, 1e9)
	}

	for _, f := range rep.Fidelity {
		p := "fidelity." + f.Label + "."
		add(p+"epochs", float64(f.Epochs), classCount, 1)
		add(p+"held_out_windows", float64(f.HeldOutWindows), classCount, 1)
		add(p+"nll", f.HeldOutNLL, classNLL, 1)
		add(p+"final_loss", f.FinalLoss, classNLL, 1)
		add(p+"pit_deviation", f.PITDeviation, classDistance, 1)
		add(p+"grad_norm_max", f.GradNormMax, classInfo, 1)
		add(p+"non_finite_seqs", float64(f.NonFiniteSeqs), classCount, 1)
		for _, q := range sortedKeys(f.Coverage) {
			target, ok := coverageTarget(q)
			if !ok {
				continue
			}
			// Gate the coverage *error* so "closer to nominal" can never
			// regress the gate.
			add(p+"coverage_err_"+q, math.Abs(f.Coverage[q]-target), classDistance, 1)
		}
	}
	return out
}

// coverageTarget parses "p90" into 0.90.
func coverageTarget(q string) (float64, bool) {
	if len(q) < 2 || q[0] != 'p' {
		return 0, false
	}
	var pct int
	if _, err := fmt.Sscanf(q[1:], "%d", &pct); err != nil || pct < 0 || pct > 100 {
		return 0, false
	}
	return float64(pct) / 100, true
}

// CompareReports diffs two run reports.
func CompareReports(base, new *obs.Report, th Thresholds) *Result {
	return compareMetrics(reportMetrics(base), reportMetrics(new), th)
}

// Table renders the delta rows as an aligned text table, most severe
// first (regressions and missing metrics at the top), with a one-line
// verdict footer.
func (r *Result) Table() string {
	rows := append([]Delta(nil), r.Deltas...)
	sevRank := func(s Status) int {
		switch s {
		case StatusRegressed:
			return 0
		case StatusMissing:
			return 1
		case StatusImproved:
			return 2
		case StatusOK:
			return 3
		case StatusNew:
			return 4
		case StatusInfo:
			return 5
		}
		return 6
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return sevRank(rows[i].Status) < sevRank(rows[j].Status)
	})

	var b strings.Builder
	widths := []int{6, 12, 12, 8, 10, 9}
	header := []string{"metric", "base", "new", "delta", "limit", "status"}
	cells := make([][]string, 0, len(rows))
	for _, d := range rows {
		delta := "-"
		if !math.IsNaN(d.Rel) && d.Status != StatusMissing && d.Status != StatusNew {
			delta = fmt.Sprintf("%+.1f%%", d.Rel*100)
		}
		baseCell, newCell := num(d.Base), num(d.New)
		if d.Status == StatusMissing {
			newCell = "-"
		}
		if d.Status == StatusNew {
			baseCell = "-"
		}
		row := []string{d.Metric, baseCell, newCell, delta, d.Limit, d.Status.String()}
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
		cells = append(cells, row)
	}
	for i, h := range header {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(row)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	b.WriteByte('\n')
	if r.Improvements > 0 {
		// Celebrate wins as loudly as losses: name the biggest one.
		bestName, bestRel := "", 0.0
		for _, d := range r.Deltas {
			if d.Status == StatusImproved && !math.IsNaN(d.Rel) && d.Rel < bestRel {
				bestName, bestRel = d.Metric, d.Rel
			}
		}
		fmt.Fprintf(&b, "IMPROVED: %d metric(s) markedly better than base", r.Improvements)
		if bestName != "" {
			fmt.Fprintf(&b, " (best: %s %+.1f%%)", bestName, bestRel*100)
		}
		b.WriteString(" 🎉\n")
	}
	if r.Regressions > 0 {
		fmt.Fprintf(&b, "REGRESSED: %d metric(s) beyond threshold\n", r.Regressions)
	} else {
		fmt.Fprintf(&b, "ok: no regressions across %d metric(s)\n", len(r.Deltas))
	}
	return b.String()
}

// num formats a metric value compactly: integers plain, large magnitudes
// in scientific notation, everything else with 4 significant digits.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	if math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3) {
		return fmt.Sprintf("%.3e", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
