package regress

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ibox/internal/obs"
)

// sampleReport is a representative run report covering every metric class.
func sampleReport() *obs.Report {
	return &obs.Report{
		GoMaxProcs:        4,
		WallSeconds:       2.5,
		WorkerUtilization: 0.8,
		Stages: []obs.StageReport{
			{Name: "fig2", Depth: 0, Seconds: 1.5},
			{Name: "generate", Depth: 1, Seconds: 0.5},
			{Name: "evaluate", Depth: 1, Seconds: 1.0},
		},
		Counters: map[string]int64{"pantheon.traces": 12, "par.capacity_ns": 2_000_000_000},
		Gauges:   map[string]float64{"par.workers": 4},
		Histograms: map[string]obs.HistogramSummary{
			"par.item_ns": {Count: 24, Mean: 5e7, P50: 4e7, P90: 9e7, P99: 1.2e8},
		},
		Fidelity: []obs.Fidelity{{
			Label: "table1/with-ct", Epochs: 3, FinalLoss: 1.2,
			GradNormFirst: 4.0, GradNormLast: 1.0, GradNormMax: 4.5,
			HeldOutWindows: 200, HeldOutNLL: 1.4,
			PITDeviation: 0.03,
			Coverage:     map[string]float64{"p50": 0.52, "p90": 0.88},
		}},
	}
}

func TestIdenticalReportsPass(t *testing.T) {
	res := CompareReports(sampleReport(), sampleReport(), DefaultThresholds())
	if res.Failed() {
		t.Fatalf("identical reports regressed:\n%s", res.Table())
	}
	if res.Regressions != 0 {
		t.Fatalf("Regressions = %d, want 0", res.Regressions)
	}
}

// findDelta returns the row for a metric, failing the test if absent.
func findDelta(t *testing.T, res *Result, name string) Delta {
	t.Helper()
	for _, d := range res.Deltas {
		if d.Metric == name {
			return d
		}
	}
	t.Fatalf("metric %q not in result", name)
	return Delta{}
}

func TestCounterDriftRegresses(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Counters["pantheon.traces"] = 11
	res := CompareReports(base, new, DefaultThresholds())
	if !res.Failed() {
		t.Fatal("counter drift did not regress the gate")
	}
	if d := findDelta(t, res, "counter.pantheon.traces"); d.Status != StatusRegressed {
		t.Fatalf("counter delta status = %v, want REGRESSED", d.Status)
	}
}

// TestTimeCounterJitterTolerated: _ns-suffixed counters accumulate wall
// time, so run-to-run jitter within the time tolerance must not gate.
func TestTimeCounterJitterTolerated(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Counters["par.capacity_ns"] = 2_200_000_000 // +10% timing noise
	res := CompareReports(base, new, DefaultThresholds())
	if res.Failed() {
		t.Fatalf("capacity_ns jitter regressed the gate:\n%s", res.Table())
	}
	if d := findDelta(t, res, "counter.par.capacity_ns"); d.Status != StatusOK || d.Limit == "exact" {
		t.Fatalf("capacity_ns gated as %v/%s, want time-class ok", d.Status, d.Limit)
	}
}

func TestNLLWorseningRegresses(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Fidelity[0].HeldOutNLL = 2.2 // +57%, well past the 10% tolerance
	res := CompareReports(base, new, DefaultThresholds())
	if d := findDelta(t, res, "fidelity.table1/with-ct.nll"); d.Status != StatusRegressed {
		t.Fatalf("nll delta status = %v, want REGRESSED\n%s", d.Status, res.Table())
	}
}

func TestNLLImprovementPasses(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Fidelity[0].HeldOutNLL = 0.9
	res := CompareReports(base, new, DefaultThresholds())
	if res.Failed() {
		t.Fatalf("improved NLL regressed the gate:\n%s", res.Table())
	}
}

func TestCoverageGatesOnErrorNotValue(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	// Moving coverage from 0.88 to 0.90 is CLOSER to nominal p90 — the
	// gate must not flag it even though the raw value changed.
	new.Fidelity[0].Coverage["p90"] = 0.90
	res := CompareReports(base, new, DefaultThresholds())
	if res.Failed() {
		t.Fatalf("coverage moving toward nominal regressed the gate:\n%s", res.Table())
	}
	// Moving far from nominal must flag.
	new.Fidelity[0].Coverage["p90"] = 0.60
	res = CompareReports(base, new, DefaultThresholds())
	if d := findDelta(t, res, "fidelity.table1/with-ct.coverage_err_p90"); d.Status != StatusRegressed {
		t.Fatalf("coverage err status = %v, want REGRESSED", d.Status)
	}
}

func TestTimeRegressionNeedsBothRelAndAbs(t *testing.T) {
	th := DefaultThresholds()
	base, new := sampleReport(), sampleReport()
	// Tiny stage doubling: +100%+ relative but under the absolute floor.
	base.Stages[1].Seconds = 0.01
	new.Stages[1].Seconds = 0.03
	res := CompareReports(base, new, th)
	if res.Failed() {
		t.Fatalf("sub-floor time jitter regressed the gate:\n%s", res.Table())
	}
	// Large stage blowing past both bounds must flag.
	new.Stages[2].Seconds = 5.0
	res = CompareReports(base, new, th)
	if d := findDelta(t, res, "stage.fig2/evaluate.seconds"); d.Status != StatusRegressed {
		t.Fatalf("stage time status = %v, want REGRESSED\n%s", d.Status, res.Table())
	}
}

func TestMissingMetricRegresses(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Fidelity = nil // the silent-break case the gate exists for
	res := CompareReports(base, new, DefaultThresholds())
	if !res.Failed() {
		t.Fatalf("vanished fidelity section passed the gate:\n%s", res.Table())
	}
	if d := findDelta(t, res, "fidelity.table1/with-ct.nll"); d.Status != StatusMissing {
		t.Fatalf("missing metric status = %v, want MISSING", d.Status)
	}
	th := DefaultThresholds()
	th.AllowMissing = true
	if res := CompareReports(base, new, th); res.Failed() {
		t.Fatal("AllowMissing did not downgrade missing metrics")
	}
}

func TestSkippedMetricsNeverGate(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Gauges["par.workers"] = 16
	new.GoMaxProcs = 16
	res := CompareReports(base, new, DefaultThresholds())
	if res.Failed() {
		t.Fatalf("machine-dependent metrics regressed the gate:\n%s", res.Table())
	}
	if d := findDelta(t, res, "gauge.par.workers"); d.Status != StatusSkipped {
		t.Fatalf("par.workers status = %v, want skipped", d.Status)
	}
}

func TestBenchCompare(t *testing.T) {
	mk := func(ns int64) *BenchSummary {
		return &BenchSummary{
			GoMaxProcs: 4,
			Benchmarks: []BenchMeasurement{
				{Name: "Fig2Ensemble", Mode: "parallel", Workers: 4, NsPerOp: ns,
					ItemLatency: &obs.HistogramSummary{Count: 36, P50: 4e7, P99: 1e8}},
			},
			Speedups: map[string]float64{"Fig2Ensemble": 3.1},
		}
	}
	if res := CompareBench(mk(1e9), mk(1e9), DefaultThresholds()); res.Failed() {
		t.Fatalf("identical bench summaries regressed:\n%s", res.Table())
	}
	// 3x slowdown past the floor must flag.
	res := CompareBench(mk(1e9), mk(3e9), DefaultThresholds())
	if d := findDelta(t, res, "bench.Fig2Ensemble.parallel.ns_per_op"); d.Status != StatusRegressed {
		t.Fatalf("ns_per_op status = %v, want REGRESSED\n%s", d.Status, res.Table())
	}
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFilesSniffsKind(t *testing.T) {
	dir := t.TempDir()
	rep, bench := filepath.Join(dir, "rep.json"), filepath.Join(dir, "bench.json")
	writeJSON(t, rep, sampleReport())
	writeJSON(t, bench, &BenchSummary{Benchmarks: []BenchMeasurement{{Name: "X", Mode: "serial"}}})

	if res, err := CompareFiles(rep, rep, DefaultThresholds()); err != nil || res.Failed() {
		t.Fatalf("report self-compare: err=%v failed=%v", err, res != nil && res.Failed())
	}
	if res, err := CompareFiles(bench, bench, DefaultThresholds()); err != nil || res.Failed() {
		t.Fatalf("bench self-compare: err=%v failed=%v", err, res != nil && res.Failed())
	}
	if _, err := CompareFiles(rep, bench, DefaultThresholds()); err == nil {
		t.Fatal("mixed kinds did not error")
	}
}

func TestTableRendering(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Fidelity[0].HeldOutNLL = 2.2
	res := CompareReports(base, new, DefaultThresholds())
	tab := res.Table()
	if !strings.Contains(tab, "REGRESSED") {
		t.Fatalf("table lacks REGRESSED marker:\n%s", tab)
	}
	lines := strings.Split(tab, "\n")
	// Regressions sort first: the row after the header must be the NLL row.
	if !strings.Contains(lines[1], "fidelity.table1/with-ct.nll") {
		t.Fatalf("regressed row not sorted first:\n%s", tab)
	}
	for _, l := range lines {
		if l != strings.TrimRight(l, " ") {
			t.Fatalf("trailing whitespace in table line %q", l)
		}
	}
}

// TestImprovementCelebrated: a marked speedup must surface as IMPROVED —
// counted, distinctly marked in the table, and summarized — while never
// failing the gate.
func TestImprovementCelebrated(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Stages[2].Seconds = 0.4 // evaluate: 1.0s → 0.4s, a 2.5x win
	res := CompareReports(base, new, DefaultThresholds())
	if res.Failed() {
		t.Fatalf("an improvement failed the gate:\n%s", res.Table())
	}
	if res.Improvements == 0 {
		t.Fatalf("Improvements = 0, want > 0:\n%s", res.Table())
	}
	if d := findDelta(t, res, "stage.fig2/evaluate.seconds"); d.Status != StatusImproved {
		t.Fatalf("evaluate status = %v, want IMPROVED", d.Status)
	}
	tbl := res.Table()
	if !strings.Contains(tbl, "IMPROVED") {
		t.Fatalf("table lacks IMPROVED marker:\n%s", tbl)
	}
	if !strings.Contains(tbl, "markedly better") {
		t.Fatalf("table lacks improvement summary line:\n%s", tbl)
	}
}

// TestSmallWinStaysOK: improvements inside the noise band (below the
// celebrate fraction or the absolute floor) stay plain ok.
func TestSmallWinStaysOK(t *testing.T) {
	base, new := sampleReport(), sampleReport()
	new.Stages[2].Seconds = 0.9 // evaluate: -10%, within jitter
	res := CompareReports(base, new, DefaultThresholds())
	if d := findDelta(t, res, "stage.fig2/evaluate.seconds"); d.Status != StatusOK {
		t.Fatalf("evaluate status = %v, want ok", d.Status)
	}
	if res.Improvements != 0 {
		t.Fatalf("Improvements = %d, want 0", res.Improvements)
	}
}

// TestBenchFidelityGates: a fidelity block on a bench measurement gates
// like a run report's — a speed win that costs accuracy must regress.
func TestBenchFidelityGates(t *testing.T) {
	mk := func(nll, pit float64) *BenchSummary {
		return &BenchSummary{
			GoMaxProcs: 4,
			Benchmarks: []BenchMeasurement{
				{Name: "Kernel/h48l2", Mode: "int8", Workers: 1, NsPerOp: 5e4,
					Fidelity: &BenchFidelity{NLL: nll, PITDeviation: pit}},
			},
		}
	}
	if res := CompareBench(mk(1.4, 0.03), mk(1.4, 0.03), DefaultThresholds()); res.Failed() {
		t.Fatalf("identical bench fidelity regressed:\n%s", res.Table())
	}
	res := CompareBench(mk(1.4, 0.03), mk(2.4, 0.03), DefaultThresholds())
	if d := findDelta(t, res, "bench.Kernel/h48l2.int8.fidelity.nll"); d.Status != StatusRegressed {
		t.Fatalf("nll status = %v, want REGRESSED\n%s", d.Status, res.Table())
	}
	res = CompareBench(mk(1.4, 0.03), mk(1.4, 0.30), DefaultThresholds())
	if d := findDelta(t, res, "bench.Kernel/h48l2.int8.fidelity.pit_deviation"); d.Status != StatusRegressed {
		t.Fatalf("pit status = %v, want REGRESSED\n%s", d.Status, res.Table())
	}
}
