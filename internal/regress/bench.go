package regress

import (
	"encoding/json"
	"fmt"
	"os"

	"ibox/internal/obs"
)

// BenchMeasurement is one (benchmark, mode) timing from cmd/ibox-bench:
// the minimum over reps of one full experiment run, in the style of
// go test -bench ns/op, plus the distribution of per-item fan-out
// latencies across all reps.
type BenchMeasurement struct {
	Name        string                `json:"name"`
	Mode        string                `json:"mode"` // "serial" or "parallel"
	Workers     int                   `json:"workers"`
	GoMaxProcs  int                   `json:"gomaxprocs"`
	NsPerOp     int64                 `json:"ns_per_op"`
	Seconds     float64               `json:"seconds"`
	Reps        int                   `json:"reps"`
	ItemLatency *obs.HistogramSummary `json:"item_latency,omitempty"`
	// Fidelity ties a speed measurement to model quality, so a bench
	// "win" that silently trades accuracy away (e.g. the int8 kernel)
	// gates on the same fidelity classes as a run report.
	Fidelity *BenchFidelity `json:"fidelity,omitempty"`
}

// BenchFidelity is the model-quality scorecard attached to a benchmark
// mode that runs real inference: held-out NLL (lower better, gates like
// a time metric) and PIT deviation (distance from the uniform ideal,
// gates on absolute worsening).
type BenchFidelity struct {
	NLL          float64 `json:"nll"`
	PITDeviation float64 `json:"pit_deviation"`
}

// BenchSummary is the BENCH_parallel.json schema.
type BenchSummary struct {
	GoMaxProcs int                `json:"gomaxprocs"`
	Scale      string             `json:"scale"`
	Seed       int64              `json:"seed"`
	Timestamp  string             `json:"timestamp"`
	Benchmarks []BenchMeasurement `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

// LoadBench reads a BENCH_*.json written by cmd/ibox-bench.
func LoadBench(path string) (*BenchSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("regress: read bench %s: %w", path, err)
	}
	var s BenchSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("regress: parse bench %s: %w", path, err)
	}
	return &s, nil
}

// benchMetrics flattens a bench summary into comparable scalars.
// Speedups are machine-dependent (worker count varies across runners) so
// they report as info unless the skip list is cleared AND both files came
// from the same GOMAXPROCS — simpler to keep them informational always.
func benchMetrics(s *BenchSummary) map[string]metric {
	out := map[string]metric{}
	add := func(name string, v float64, c class, unit float64) {
		out[name] = metric{name: name, value: v, class: c, unit: unit}
	}
	add("gomaxprocs", float64(s.GoMaxProcs), classInfo, 1)
	for _, b := range s.Benchmarks {
		p := "bench." + b.Name + "." + b.Mode + "."
		add(p+"ns_per_op", float64(b.NsPerOp), classTime, 1e9)
		add(p+"workers", float64(b.Workers), classInfo, 1)
		if b.ItemLatency != nil {
			add(p+"item.count", float64(b.ItemLatency.Count), classCount, 1)
			add(p+"item.p50", b.ItemLatency.P50, classTime, 1e9)
			add(p+"item.p99", b.ItemLatency.P99, classTime, 1e9)
		}
		if b.Fidelity != nil {
			add(p+"fidelity.nll", b.Fidelity.NLL, classNLL, 1)
			add(p+"fidelity.pit_deviation", b.Fidelity.PITDeviation, classDistance, 1)
		}
	}
	for name, v := range s.Speedups {
		add("speedup."+name, v, classInfo, 1)
	}
	return out
}

// CompareBench diffs two bench summaries.
func CompareBench(base, new *BenchSummary, th Thresholds) *Result {
	return compareMetrics(benchMetrics(base), benchMetrics(new), th)
}

// CompareFiles sniffs the two files' kind (bench summary vs run report)
// and dispatches. Both files must be the same kind.
func CompareFiles(basePath, newPath string, th Thresholds) (*Result, error) {
	baseKind, err := sniff(basePath)
	if err != nil {
		return nil, err
	}
	newKind, err := sniff(newPath)
	if err != nil {
		return nil, err
	}
	if baseKind != newKind {
		return nil, fmt.Errorf("regress: %s is a %s but %s is a %s", basePath, baseKind, newPath, newKind)
	}
	switch baseKind {
	case "bench":
		b, err := LoadBench(basePath)
		if err != nil {
			return nil, err
		}
		n, err := LoadBench(newPath)
		if err != nil {
			return nil, err
		}
		return CompareBench(b, n, th), nil
	default:
		b, err := obs.LoadReport(basePath)
		if err != nil {
			return nil, err
		}
		n, err := obs.LoadReport(newPath)
		if err != nil {
			return nil, err
		}
		return CompareReports(b, n, th), nil
	}
}

// sniff decides whether a file is a bench summary or a run report by its
// top-level keys.
func sniff(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("regress: read %s: %w", path, err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return "", fmt.Errorf("regress: parse %s: %w", path, err)
	}
	if _, ok := top["benchmarks"]; ok {
		return "bench", nil
	}
	if _, ok := top["stages"]; ok {
		return "report", nil
	}
	return "", fmt.Errorf("regress: %s is neither a bench summary nor a run report", path)
}
