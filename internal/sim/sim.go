// Package sim provides a deterministic discrete-event simulation kernel.
//
// It is the foundation for every simulator in this repository: the
// ground-truth network simulator (internal/netsim), the iBoxNet replay
// emulator (internal/iboxnet), and the congestion-control transport harness
// (internal/cc). The kernel is single-threaded and fully deterministic:
// events at equal timestamps fire in insertion order, and all randomness is
// drawn from explicitly seeded sources (see NewRand).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in nanoseconds since the start of the run.
// Using a fixed-point integer representation (rather than float64 seconds)
// makes event ordering exact and runs bit-for-bit reproducible.
type Time int64

// Common durations, usable as both Time offsets and Duration-like constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the timestamp with millisecond resolution, e.g. "12.345s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts floating-point seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: insertion order for equal timestamps
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 once popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// eventQueue is a min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a discrete-event scheduler. The zero value is not usable;
// call NewScheduler.
type Scheduler struct {
	now   Time
	queue eventQueue
	seq   uint64
}

// NewScheduler returns a scheduler with the clock at zero and no events.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a simulator bug rather than a recoverable condition.
func (s *Scheduler) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d nanoseconds from now.
func (s *Scheduler) After(d Time, fn func()) EventID {
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	ev := id.ev
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&s.queue, ev.idx)
	}
}

// Pending reports the number of live scheduled events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is empty or
// the next event would fire after the deadline. The clock is left at the
// deadline if it was reached, so successive RunUntil calls see monotonic
// time.
func (s *Scheduler) RunUntil(deadline Time) {
	for len(s.queue) > 0 {
		// Peek at the earliest live event.
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		if ev.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Run executes events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}
