package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %d, want %d", got, 1500*Millisecond)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds() = %v, want 0.25", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2.0 {
		t.Errorf("Millis() = %v, want 2", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Errorf("String() = %q, want 1.500s", got)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30*Millisecond {
		t.Errorf("final clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-timestamp events not FIFO: %v", order)
		}
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler()
	var fired Time = -1
	s.At(Second, func() {
		s.After(500*Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 1500*Millisecond {
		t.Errorf("After fired at %v, want 1.5s", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	id := s.At(Second, func() { fired = true })
	s.Cancel(id)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and cancel-after-run are no-ops.
	s.Cancel(id)
	s.Cancel(EventID{})
}

func TestSchedulerCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var order []int
	var ids []EventID
	for i := 0; i < 5; i++ {
		i := i
		ids = append(ids, s.At(Time(i+1)*Millisecond, func() { order = append(order, i) }))
	}
	s.Cancel(ids[2])
	s.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Second, func() { count++ })
	}
	s.RunUntil(5 * Second)
	if count != 5 {
		t.Errorf("RunUntil(5s) ran %d events, want 5", count)
	}
	if s.Now() != 5*Second {
		t.Errorf("clock = %v, want 5s", s.Now())
	}
	s.RunUntil(20 * Second)
	if count != 10 {
		t.Errorf("RunUntil(20s) ran %d events total, want 10", count)
	}
	if s.Now() != 20*Second {
		t.Errorf("clock left at %v, want deadline 20s", s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(500*Millisecond, func() {})
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			s.After(Millisecond, schedule)
		}
	}
	s.At(0, schedule)
	s.Run()
	if depth != 100 {
		t.Errorf("chained scheduling depth = %d, want 100", depth)
	}
	if s.Now() != 99*Millisecond {
		t.Errorf("clock = %v, want 99ms", s.Now())
	}
}

// TestSchedulerOrderProperty: for any set of event times, firing order is
// sorted by time, and the clock is monotonically non-decreasing.
func TestSchedulerOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Microsecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42, 1)
	b := NewRand(42, 1)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("identical (seed, stream) produced different sequences")
		}
	}
}

func TestNewRandStreamsDiffer(t *testing.T) {
	seen := map[int64]bool{}
	for stream := int64(0); stream < 50; stream++ {
		v := NewRand(7, stream).Int63()
		if seen[v] {
			t.Fatalf("stream %d collided with an earlier stream", stream)
		}
		seen[v] = true
	}
}

func TestNewRandZeroSeedUsable(t *testing.T) {
	// The mix of (0,0) must not yield the degenerate all-zero source state.
	r := NewRand(0, 0)
	var _ *rand.Rand = r
	allSame := true
	first := r.Int63()
	for i := 0; i < 10; i++ {
		if r.Int63() != first {
			allSame = false
		}
	}
	if allSame {
		t.Error("NewRand(0,0) produced a constant stream")
	}
}
