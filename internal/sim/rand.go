package sim

import "math/rand"

// NewRand returns a deterministic random source for a simulation component.
//
// Every stochastic component in the repository (cross-traffic arrival
// processes, cellular rate variation, weight initialization, data-set
// shuffles) derives its stream from an explicit (seed, stream) pair so that
// experiments are reproducible bit-for-bit, and so that changing one
// component's consumption of randomness does not perturb another's.
func NewRand(seed int64, stream int64) *rand.Rand {
	// splitmix64-style mixing keeps nearby (seed, stream) pairs uncorrelated.
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return rand.New(rand.NewSource(int64(x)))
}
