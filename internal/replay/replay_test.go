package replay

import (
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func recordedTrace() *trace.Trace {
	tr := &trace.Trace{Protocol: "recorded"}
	for i := 0; i < 1000; i++ {
		send := sim.Time(i) * 10 * sim.Millisecond
		d := 30 * sim.Millisecond
		if i >= 400 && i < 600 {
			d = 150 * sim.Millisecond // recorded congestion epoch
		}
		p := trace.Packet{Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + d}
		if i%100 == 50 {
			p.Lost = true
		}
		tr.Packets = append(tr.Packets, p)
	}
	return tr
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(sim.NewScheduler(), &trace.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestReplayReproducesRecordedDelays(t *testing.T) {
	sched := sim.NewScheduler()
	n, err := New(sched, recordedTrace())
	if err != nil {
		t.Fatal(err)
	}
	var gotDelay sim.Time
	// Probe at t=4.51s: inside the recorded congestion epoch (and not on a
	// recorded-lost packet).
	sched.At(4510*sim.Millisecond, func() {
		send := sched.Now()
		n.Send(1500, func(r sim.Time) { gotDelay = r - send }, nil)
	})
	sched.Run()
	if gotDelay != 150*sim.Millisecond {
		t.Errorf("delay = %v, want recorded 150ms", gotDelay)
	}
}

func TestReplayReproducesRecordedLoss(t *testing.T) {
	sched := sim.NewScheduler()
	n, err := New(sched, recordedTrace())
	if err != nil {
		t.Fatal(err)
	}
	dropped := false
	// Packet 50's send time (t=0.5s) was recorded lost.
	sched.At(500*sim.Millisecond, func() {
		n.Send(1500, nil, func() { dropped = true })
	})
	sched.Run()
	if !dropped {
		t.Error("recorded loss not replayed")
	}
}

func TestReplayIgnoresOfferedLoad(t *testing.T) {
	// The defining failure (§1): delays do not depend on what the sender
	// does. A 10× overload sees exactly the same delays as a trickle.
	rec := recordedTrace()
	measure := func(pps int) sim.Time {
		sched := sim.NewScheduler()
		n, _ := New(sched, rec)
		var maxDelay sim.Time
		gap := sim.Second / sim.Time(pps)
		for i := 0; i < pps; i++ { // one second of probes at t≈1s (calm epoch)
			sched.At(sim.Second+sim.Time(i)*gap, func() {
				send := sched.Now()
				n.Send(1500, func(r sim.Time) {
					if d := r - send; d > maxDelay {
						maxDelay = d
					}
				}, nil)
			})
		}
		sched.Run()
		return maxDelay
	}
	if low, high := measure(10), measure(1000); low != high {
		t.Errorf("replay delays changed with load: %v vs %v", low, high)
	}
}

func TestReplayDriesACubicFlow(t *testing.T) {
	// Integration: a cc.Flow can run over the replay network; it sees the
	// recorded congestion epoch as delay but its behaviour cannot affect it.
	sched := sim.NewScheduler()
	n, err := New(sched, recordedTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Replay never pushes back, so an unbounded Cubic window would balloon;
	// cap inflight to keep the test light (the capped window still carries
	// the recorded delays).
	flow := cc.NewFlow(sched, n, cc.NewCubic(), cc.FlowConfig{Duration: 9 * sim.Second, MaxInflight: 300})
	flow.Start()
	sched.RunUntil(12 * sim.Second)
	tr := flow.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) < 100 {
		t.Fatalf("flow stalled: %d packets", len(tr.Packets))
	}
	// The recorded epoch delays must show up in the flow's trace.
	if p95 := tr.DelayPercentile(95); p95 < 100 {
		t.Errorf("p95 = %.1f ms: recorded congestion epoch not visible", p95)
	}
}

// TestReplayVsGroundTruthForNewProtocol is the paper's §1 argument in
// miniature: record Cubic on a real path, replay it for Vegas, and compare
// with what Vegas actually gets on that path. Replay hands Vegas cubic's
// bufferbloat delays even though real Vegas would keep the queue short.
func TestReplayVsGroundTruthForNewProtocol(t *testing.T) {
	cfg := netsim.Config{
		Rate: 1_250_000, BufferBytes: 187_500, PropDelay: 20 * sim.Millisecond, Seed: 2,
	}
	run := func(sender cc.Sender, net cc.Network, sched *sim.Scheduler) *trace.Trace {
		flow := cc.NewFlow(sched, net, sender, cc.FlowConfig{
			Duration: 10 * sim.Second, AckDelay: cfg.PropDelay, MaxInflight: 500,
		})
		flow.Start()
		sched.RunUntil(13 * sim.Second)
		return flow.Trace()
	}
	// Record Cubic on the true path.
	s1 := sim.NewScheduler()
	rec := run(cc.NewCubic(), netsim.New(s1, cfg).Port("m"), s1)
	// Vegas ground truth on the same path.
	s2 := sim.NewScheduler()
	gtVegas := run(cc.NewVegas(), netsim.New(s2, cfg).Port("m"), s2)
	// Vegas over replay of the Cubic recording.
	s3 := sim.NewScheduler()
	rn, err := New(s3, rec)
	if err != nil {
		t.Fatal(err)
	}
	replayVegas := run(cc.NewVegas(), rn, s3)

	gtP95 := gtVegas.DelayPercentile(95)
	rpP95 := replayVegas.DelayPercentile(95)
	recP95 := rec.DelayPercentile(95)
	t.Logf("p95 delay: cubic recording=%.0f ms, vegas GT=%.0f ms, vegas-over-replay=%.0f ms",
		recP95, gtP95, rpP95)
	// Replay hands Vegas roughly Cubic's delays; ground truth is far lower.
	if rpP95 < 2*gtP95 {
		t.Errorf("replay p95 %.0f ms unexpectedly close to Vegas GT %.0f ms", rpP95, gtP95)
	}
}
