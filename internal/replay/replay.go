// Package replay implements the trace-driven replay baseline the paper
// argues against (§1, §7: Cellsim/mahimahi-style record-and-replay): the
// recorded per-packet delays and losses of an earlier flow are applied to
// whatever the sender under test transmits, with no network model in
// between.
//
// The approach looks data-informed — every number comes from a real
// measurement — but, as §1 puts it, "does not capture the impact on the
// network of the application or protocol under test (e.g., it might
// congest the network, invalidating the delay measurements)". A protocol
// that sends less than the recorded flow still sees the recorded queueing
// delays; one that sends more sees no additional queueing at all. The
// baseline exists here so that the experiments can demonstrate exactly
// that failure against iBoxNet, which learns the queue rather than
// memorizing its symptoms.
package replay

import (
	"fmt"
	"sort"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Network replays a recorded trace's delay/loss process: a packet sent at
// time t receives the delay of the recorded packet whose send time is
// nearest t (and is dropped if that packet was lost). It implements the
// same contract as netsim.Port, so cc.Flow runs on it unchanged.
type Network struct {
	sched *sim.Scheduler
	sends []sim.Time
	delay []sim.Time // delay of the recorded packet; -1 = lost
}

// New builds a replay network from a recorded trace.
func New(sched *sim.Scheduler, recorded *trace.Trace) (*Network, error) {
	if len(recorded.Packets) == 0 {
		return nil, fmt.Errorf("replay: empty recorded trace")
	}
	n := &Network{sched: sched}
	for _, p := range recorded.Packets {
		n.sends = append(n.sends, p.SendTime)
		if p.Lost {
			n.delay = append(n.delay, -1)
		} else {
			n.delay = append(n.delay, p.Delay())
		}
	}
	return n, nil
}

// Now returns the current simulation time.
func (n *Network) Now() sim.Time { return n.sched.Now() }

// Send applies the recorded fate of the nearest-in-time recorded packet.
func (n *Network) Send(size int, onDeliver func(recv sim.Time), onDrop func()) {
	now := n.sched.Now()
	i := sort.Search(len(n.sends), func(i int) bool { return n.sends[i] >= now })
	if i > 0 && (i == len(n.sends) || now-n.sends[i-1] <= n.sends[i]-now) {
		i--
	}
	d := n.delay[i]
	if d < 0 {
		if onDrop != nil {
			n.sched.After(sim.Millisecond, onDrop)
		}
		return
	}
	if onDeliver != nil {
		n.sched.After(d, func() { onDeliver(n.sched.Now()) })
	}
}
