package iboxnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Validate checks that parameters — typically ones just deserialized from
// disk — describe a physically plausible bottleneck, so a truncated or
// hand-edited profile is rejected at load time instead of driving the
// emulator with NaN rates or a negative buffer.
func (p Params) Validate() error {
	if !(p.Bandwidth > 0) || math.IsInf(p.Bandwidth, 0) {
		return fmt.Errorf("iboxnet: bandwidth %v bytes/s, want finite > 0", p.Bandwidth)
	}
	if p.BufferBytes <= 0 {
		return fmt.Errorf("iboxnet: buffer %d bytes, want > 0", p.BufferBytes)
	}
	if p.PropDelay < 0 {
		return fmt.Errorf("iboxnet: negative propagation delay %v", p.PropDelay)
	}
	if math.IsNaN(p.LossRate) || p.LossRate < 0 || p.LossRate > 1 {
		return fmt.Errorf("iboxnet: loss rate %v outside [0,1]", p.LossRate)
	}
	if ct := p.CrossTraffic; ct != nil {
		if ct.Step <= 0 {
			return fmt.Errorf("iboxnet: cross-traffic series step %v, want > 0", ct.Step)
		}
		if len(ct.Vals) == 0 {
			return fmt.Errorf("iboxnet: cross-traffic series has no windows")
		}
		for i, v := range ct.Vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("iboxnet: cross-traffic window %d is %v, want finite >= 0", i, v)
			}
		}
	}
	return nil
}

// Write serializes the parameters as JSON (the "iBoxNet profile" the paper
// planned to release for the community).
func (p Params) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(p)
}

// ReadParams restores parameters serialized by Write.
func ReadParams(r io.Reader) (Params, error) {
	var p Params
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Params{}, fmt.Errorf("iboxnet: decode params: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("decoded params invalid: %w", err)
	}
	return p, nil
}

// Save writes the parameters to a file.
func (p Params) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := p.Write(w); err != nil {
		return err
	}
	return w.Flush()
}

// LoadParams reads parameters from a file.
func LoadParams(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, err
	}
	defer f.Close()
	return ReadParams(bufio.NewReader(f))
}
