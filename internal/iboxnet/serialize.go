package iboxnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Write serializes the parameters as JSON (the "iBoxNet profile" the paper
// planned to release for the community).
func (p Params) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(p)
}

// ReadParams restores parameters serialized by Write.
func ReadParams(r io.Reader) (Params, error) {
	var p Params
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return Params{}, fmt.Errorf("iboxnet: decode params: %w", err)
	}
	if p.Bandwidth <= 0 || p.BufferBytes <= 0 {
		return Params{}, fmt.Errorf("iboxnet: decoded params invalid: %s", p)
	}
	return p, nil
}

// Save writes the parameters to a file.
func (p Params) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := p.Write(w); err != nil {
		return err
	}
	return w.Flush()
}

// LoadParams reads parameters from a file.
func LoadParams(path string) (Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, err
	}
	defer f.Close()
	return ReadParams(bufio.NewReader(f))
}
