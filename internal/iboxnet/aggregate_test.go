package iboxnet

import (
	"math"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// TestAggregationImprovesBandwidthEstimate reproduces §6's mitigation: one
// rate-capped flow alone cannot saturate the bottleneck, so its bandwidth
// estimate is badly biased low; merging several concurrent capped flows
// (whose sum does saturate) recovers the true rate.
func TestAggregationImprovesBandwidthEstimate(t *testing.T) {
	cfg := netsim.Config{
		Rate: 1_250_000, BufferBytes: 187_500, PropDelay: 30 * sim.Millisecond, Seed: 8,
	}
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	// Four concurrent CBR flows at 3 Mbps each: individually 30% of the
	// link; together 120% — enough to saturate (and queue).
	var flows []*cc.Flow
	for i := 0; i < 4; i++ {
		f := cc.NewFlow(sched, path.Port(string(rune('a'+i))), cc.NewCBR(375_000), cc.FlowConfig{
			Duration: 15 * sim.Second, AckDelay: cfg.PropDelay,
		})
		f.Start()
		flows = append(flows, f)
	}
	sched.RunUntil(20 * sim.Second)

	soloParams, err := Estimate(flows[0].Trace(), EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var trs []*trace.Trace
	for _, f := range flows {
		trs = append(trs, f.Trace())
	}
	merged, err := trace.Merge(trs)
	if err != nil {
		t.Fatal(err)
	}
	aggParams, err := Estimate(merged, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	soloErr := math.Abs(soloParams.Bandwidth-cfg.Rate) / cfg.Rate
	aggErr := math.Abs(aggParams.Bandwidth-cfg.Rate) / cfg.Rate
	t.Logf("bandwidth: true=%.0f solo=%.0f (err %.0f%%) aggregated=%.0f (err %.0f%%)",
		cfg.Rate, soloParams.Bandwidth, soloErr*100, aggParams.Bandwidth, aggErr*100)
	// The solo capped flow must be badly biased; aggregation must fix it.
	if soloErr < 0.3 {
		t.Fatalf("solo estimate unexpectedly good (%.0f%% err): test premise broken", soloErr*100)
	}
	if aggErr > 0.15 {
		t.Errorf("aggregated bandwidth error %.0f%%, want ≤ 15%%", aggErr*100)
	}
	if aggErr >= soloErr {
		t.Errorf("aggregation did not improve: solo %.0f%% vs agg %.0f%%", soloErr*100, aggErr*100)
	}
}

// TestAggregationImprovesPropagationEstimate: a single heavily-queueing
// flow may never see an empty queue, biasing d̂ high; adding a sparse
// late-starting probe flow whose first packets meet a drained queue fixes
// it. (Build the queue with open-loop overload, then probe during a lull.)
func TestAggregationImprovesPropagationEstimate(t *testing.T) {
	cfg := netsim.Config{
		Rate: 1_250_000, BufferBytes: 250_000, PropDelay: 30 * sim.Millisecond, Seed: 9,
	}
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	// Heavy CT keeps the queue deep during [0, 12 s); nothing afterwards.
	// The observed flow starts at 2 s, once the queue is already standing,
	// so none of its packets ever meets an empty queue.
	path.AddCrossTraffic(netsim.ConstantBitRate{Rate: 1_300_000, From: 0, To: 12 * sim.Second})
	busy := cc.NewFlow(sched, path.Port("busy"), cc.NewCBR(400_000), cc.FlowConfig{
		Start: 2 * sim.Second, Duration: 10 * sim.Second, AckDelay: cfg.PropDelay,
	})
	busy.Start()
	// Probe flow runs after the storm, seeing the empty queue.
	probe := cc.NewFlow(sched, path.Port("probe"), cc.NewCBR(100_000), cc.FlowConfig{
		Start: 13 * sim.Second, Duration: 2 * sim.Second, AckDelay: cfg.PropDelay,
	})
	probe.Start()
	sched.RunUntil(20 * sim.Second)

	soloParams, err := Estimate(busy.Trace(), EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.Merge([]*trace.Trace{busy.Trace(), probe.Trace()})
	if err != nil {
		t.Fatal(err)
	}
	aggParams, err := Estimate(merged, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	trueD := cfg.PropDelay
	soloErr := soloParams.PropDelay - trueD
	aggErr := aggParams.PropDelay - trueD
	t.Logf("prop delay: true=%v solo=%v agg=%v", trueD, soloParams.PropDelay, aggParams.PropDelay)
	if soloErr < 20*sim.Millisecond {
		t.Fatalf("solo estimate unexpectedly good (+%v): test premise broken", soloErr)
	}
	if aggErr > 5*sim.Millisecond {
		t.Errorf("aggregated propagation estimate off by %v, want ≤ 5 ms", aggErr)
	}
}

func TestMergeBasics(t *testing.T) {
	a := &trace.Trace{Protocol: "cbr", PathID: "p"}
	b := &trace.Trace{Protocol: "cbr"}
	for i := 0; i < 5; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		a.Packets = append(a.Packets, trace.Packet{Seq: int64(i), Size: 100, SendTime: at, RecvTime: at + sim.Millisecond})
		b.Packets = append(b.Packets, trace.Packet{Seq: int64(i), Size: 100, SendTime: at + 5*sim.Millisecond, RecvTime: at + 6*sim.Millisecond})
	}
	m, err := trace.Merge([]*trace.Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Packets) != 10 {
		t.Fatalf("merged %d packets", len(m.Packets))
	}
	for i := 1; i < len(m.Packets); i++ {
		if m.Packets[i].SendTime < m.Packets[i-1].SendTime {
			t.Fatal("not time-sorted")
		}
		if m.Packets[i].Seq != int64(i) {
			t.Fatal("seqs not reassigned")
		}
	}
	if _, err := trace.Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
}
