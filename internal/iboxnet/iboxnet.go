// Package iboxnet implements the paper's network-model-based approach
// (§3): it learns a parameterized single-bottleneck network model — the
// mostly static bottleneck bandwidth b, propagation delay d and buffer
// size B, plus the dynamic competing cross-traffic time series C — from an
// input–output packet trace, and instantiates the learnt model as an
// emulator on which a different protocol can then be run (the instance and
// ensemble tests of §2).
//
// Estimation follows §3 exactly:
//
//   - bandwidth: the peak receiving rate over 1-second sliding windows;
//   - propagation delay: the minimum delay observed (some packet meets an
//     empty queue);
//   - buffer size: bandwidth × (max delay − min delay) (some packet meets
//     an almost-full queue; byte-based buffer);
//   - cross traffic: a conservative (lower-bound) estimate from the three
//     "forces" acting on the bottleneck queue — sender inflow (known),
//     cross-traffic inflow (estimated), and dequeue drain (active only
//     while the queue is provably non-empty).
package iboxnet

import (
	"fmt"
	"sort"
	"time"

	"ibox/internal/netsim"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Params is a learnt iBoxNet model: the (b, d, B, C) of Fig 1 plus the
// observed loss rate used by the statistical-loss ablation (Fig 3(b)).
type Params struct {
	// Bandwidth is the estimated bottleneck rate in bytes per second.
	Bandwidth float64
	// PropDelay is the estimated one-way propagation delay.
	PropDelay sim.Time
	// BufferBytes is the estimated bottleneck buffer size in bytes.
	BufferBytes int
	// CrossTraffic is the estimated competing cross-traffic in bytes per
	// window (conservative lower bound), aligned to the training trace's
	// timeline.
	CrossTraffic *trace.Series
	// LossRate is the packet-loss rate observed in the training trace; the
	// statistical-loss variant replays it as i.i.d. random loss, as in the
	// calibrated-emulator baseline the paper compares against.
	LossRate float64
}

// String summarizes the learnt parameters.
func (p Params) String() string {
	ct := 0.0
	if p.CrossTraffic != nil {
		ct = p.CrossTraffic.Mean() * 8 / p.CrossTraffic.Step.Seconds()
	}
	return fmt.Sprintf("iboxnet.Params{b=%.2f Mbps, d=%.1f ms, B=%d B, meanCT=%.2f Mbps, loss=%.3f}",
		p.Bandwidth*8/1e6, p.PropDelay.Millis(), p.BufferBytes, ct/1e6, p.LossRate)
}

// EstimatorConfig tunes the estimation procedure. Zero values select the
// paper's settings.
type EstimatorConfig struct {
	// BandwidthWindow is the sliding-window width for the peak-receive-rate
	// bandwidth estimator; default 1 s (§3).
	BandwidthWindow sim.Time
	// CTWindow is the discretization step for the cross-traffic series;
	// default 100 ms.
	CTWindow sim.Time
	// QueueEpsilon is the queueing delay above which the bottleneck queue
	// is considered provably non-empty; default 2 ms.
	QueueEpsilon sim.Time
	// MinBufferBytes floors the buffer estimate so that a low-delay-spread
	// trace still yields a workable emulator; default 2 packets (3000 B).
	MinBufferBytes int
	// KnownBandwidth, when positive, overrides the peak-receive-rate
	// bandwidth estimator with a known bottleneck rate (bytes/sec). The
	// peak-rate estimator assumes "the sender tries to saturate the
	// bottleneck" (§6); for traces from senders that never do (e.g. a
	// backed-off RTC flow) on a *known* topology — such as the controlled
	// setups of Figs 4 and 7 — the true rate is available and should be
	// used. It stands in for the paper's multi-flow aggregation mitigation.
	KnownBandwidth float64
}

func (c EstimatorConfig) withDefaults() EstimatorConfig {
	if c.BandwidthWindow <= 0 {
		c.BandwidthWindow = sim.Second
	}
	if c.CTWindow <= 0 {
		c.CTWindow = 100 * sim.Millisecond
	}
	if c.QueueEpsilon <= 0 {
		c.QueueEpsilon = 2 * sim.Millisecond
	}
	if c.MinBufferBytes <= 0 {
		c.MinBufferBytes = 3000
	}
	return c
}

// Estimate learns iBoxNet parameters from one input–output trace.
func Estimate(tr *trace.Trace, cfg EstimatorConfig) (Params, error) {
	if h := obs.Get().Histogram("iboxnet.estimate_ns"); h != nil {
		defer h.ObserveSince(time.Now())
		obs.Get().Counter("iboxnet.estimates").Add(1)
	}
	cfg = cfg.withDefaults()
	if err := tr.Validate(); err != nil {
		return Params{}, err
	}
	del := tr.Delivered()
	if len(del) < 10 {
		return Params{}, fmt.Errorf("iboxnet: trace has only %d delivered packets; need ≥ 10", len(del))
	}

	bw := tr.PeakRecvRate(cfg.BandwidthWindow) / 8 // bits/s → bytes/s
	if cfg.KnownBandwidth > 0 {
		bw = cfg.KnownBandwidth
	}
	if bw <= 0 {
		return Params{}, fmt.Errorf("iboxnet: estimated bandwidth is zero")
	}
	minD, _ := tr.MinDelay()
	maxD, _ := tr.MaxDelay()
	buf := int(bw * (maxD - minD).Seconds())
	if buf < cfg.MinBufferBytes {
		buf = cfg.MinBufferBytes
	}

	p := Params{
		Bandwidth:   bw,
		PropDelay:   minD,
		BufferBytes: buf,
		LossRate:    tr.LossRate(),
	}
	p.CrossTraffic = estimateCrossTraffic(tr, p, cfg)
	return p, nil
}

// estimateCrossTraffic implements §3's three-force queue analysis.
//
// For each delivered packet we infer the bottleneck backlog it observed:
// queueing delay × bandwidth. Over each window [t, t+Δ) where the queue is
// provably non-empty throughout (every backlog sample in and adjacent to
// the window exceeds ε·b̂), conservation gives
//
//	backlog(t+Δ) − backlog(t) = inflowS + inflowCT − b̂·Δ
//
// so inflowCT = Δbacklog − inflowS + b̂·Δ. Windows where the queue may
// have emptied contribute the conservative lower bound 0 (the drain term
// is unknown there).
func estimateCrossTraffic(tr *trace.Trace, p Params, cfg EstimatorConfig) *trace.Series {
	del := tr.Delivered()
	start := tr.Packets[0].SendTime
	end := start + tr.Duration()
	n := int((end - start) / cfg.CTWindow)
	if n <= 0 {
		n = 1
	}
	ct := trace.NewSeries(start, cfg.CTWindow, n)

	// Backlog samples in send-time order: (sendTime, backlogBytes).
	type sample struct {
		at      sim.Time
		backlog float64
	}
	samples := make([]sample, 0, len(del))
	for _, pkt := range del {
		q := pkt.Delay() - p.PropDelay
		if q < 0 {
			q = 0
		}
		samples = append(samples, sample{pkt.SendTime, q.Seconds() * p.Bandwidth})
	}

	// Sender inflow per window (delivered bytes only: drop-tail losses
	// never occupied the queue).
	inflow := make([]float64, n)
	for _, pkt := range del {
		w := int((pkt.SendTime - start) / cfg.CTWindow)
		if w >= 0 && w < n {
			inflow[w] += float64(pkt.Size)
		}
	}

	epsBytes := cfg.QueueEpsilon.Seconds() * p.Bandwidth

	// backlogAt interpolates the backlog at time t from the nearest
	// samples; ok is false when no sample is within one window of t.
	backlogAt := func(t sim.Time) (float64, bool) {
		i := sort.Search(len(samples), func(i int) bool { return samples[i].at >= t })
		switch {
		case i == 0:
			if samples[0].at-t > cfg.CTWindow {
				return 0, false
			}
			return samples[0].backlog, true
		case i == len(samples):
			if t-samples[i-1].at > cfg.CTWindow {
				return 0, false
			}
			return samples[i-1].backlog, true
		default:
			lo, hi := samples[i-1], samples[i]
			if hi.at == lo.at {
				return hi.backlog, true
			}
			if t-lo.at > cfg.CTWindow && hi.at-t > cfg.CTWindow {
				return 0, false
			}
			frac := float64(t-lo.at) / float64(hi.at-lo.at)
			return lo.backlog*(1-frac) + hi.backlog*frac, true
		}
	}

	// minBacklogIn returns the smallest backlog sample in [t0, t1), or +∞
	// when the window has no samples.
	minBacklogIn := func(t0, t1 sim.Time) (float64, bool) {
		i := sort.Search(len(samples), func(i int) bool { return samples[i].at >= t0 })
		best, found := 0.0, false
		for ; i < len(samples) && samples[i].at < t1; i++ {
			if !found || samples[i].backlog < best {
				best, found = samples[i].backlog, true
			}
		}
		return best, found
	}

	for w := 0; w < n; w++ {
		t0 := start + sim.Time(w)*cfg.CTWindow
		t1 := t0 + cfg.CTWindow
		b0, ok0 := backlogAt(t0)
		b1, ok1 := backlogAt(t1)
		if !ok0 || !ok1 {
			continue // no observations: conservative 0
		}
		minB, any := minBacklogIn(t0, t1)
		if !any {
			minB = (b0 + b1) / 2
		}
		// The queue must have been non-empty throughout for the drain term
		// to be exactly b̂·Δ.
		if b0 <= epsBytes || b1 <= epsBytes || minB <= epsBytes {
			continue
		}
		drain := p.Bandwidth * cfg.CTWindow.Seconds()
		est := (b1 - b0) - inflow[w] + drain
		if est > 0 {
			ct.Vals[w] = est
		}
	}
	return ct
}

// Variant selects which learnt components the emulator uses.
type Variant int

const (
	// Full uses bandwidth, delay, buffer and the replayed cross traffic —
	// the complete iBoxNet of Fig 2.
	Full Variant = iota
	// NoCT drops the cross-traffic input (the ablation of Fig 3(a)).
	NoCT
	// StatLoss drops cross traffic and instead applies the observed loss
	// rate as i.i.d. random loss — the calibrated-emulator baseline the
	// paper compares against in Fig 3(b).
	StatLoss
	// Adaptive replaces the cross-traffic replay with closed-loop TCP
	// Cubic flows learnt from the byte series — the §6 "learning adaptive
	// cross traffic" extension (see LearnAdaptiveCT).
	Adaptive
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Full:
		return "iboxnet"
	case NoCT:
		return "iboxnet-noct"
	case StatLoss:
		return "iboxnet-statloss"
	case Adaptive:
		return "iboxnet-adaptive"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Emulate instantiates the learnt model as a network path on the given
// scheduler — Fig 1's "iBoxNet ... sets them on the NetEm emulator". The
// returned path implements the cc.Network contract via Port, so any
// congestion-control sender runs closed-loop against the learnt model.
func (p Params) Emulate(sched *sim.Scheduler, v Variant, seed int64) *netsim.Path {
	if v == Adaptive {
		return p.EmulateAdaptive(sched, seed)
	}
	cfg := netsim.Config{
		Rate:        p.Bandwidth,
		BufferBytes: p.BufferBytes,
		PropDelay:   p.PropDelay,
		Seed:        seed,
	}
	if v == StatLoss {
		// Guard: Validate requires LossProb < 1.
		if p.LossRate < 1 {
			cfg.LossProb = p.LossRate
		} else {
			cfg.LossProb = 0.99
		}
	}
	path := netsim.New(sched, cfg)
	if v == Full && p.CrossTraffic != nil {
		path.AddCrossTraffic(netsim.Replay{
			Start: p.CrossTraffic.Start,
			Step:  p.CrossTraffic.Step,
			Bytes: p.CrossTraffic.Vals,
		})
	}
	return path
}
