package iboxnet

import (
	"fmt"
	"math"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
)

// This file implements the §6 research direction the paper sketches:
// "Learning adaptive cross traffic ... say by expressing it in terms of a
// certain number of flows of TCP Cubic (the dominant transport protocol in
// the Internet)". Replaying the estimated cross-traffic byte series is a
// lower bound — it cannot push back when the protocol under test yields,
// nor yield when it pushes. Expressing the same evidence as competing
// closed-loop Cubic flows restores that adaptivity.

// CTInterval is one learnt busy period of the cross traffic: during
// [Start, End) the competing workload behaved like Flows TCP Cubic flows.
type CTInterval struct {
	Start sim.Time
	End   sim.Time
	Flows int
}

// AdaptiveCT is a learnt adaptive cross-traffic model.
type AdaptiveCT struct {
	Intervals []CTInterval
}

// String summarizes the model.
func (a AdaptiveCT) String() string {
	return fmt.Sprintf("AdaptiveCT{%d intervals}", len(a.Intervals))
}

// LearnAdaptiveCT converts the conservative cross-traffic byte series into
// an adaptive model. Windows where estimated cross traffic exceeds
// activityFrac of the link capacity are "busy"; contiguous busy runs
// (bridging gaps up to two windows) become intervals. Within an interval,
// if the cross traffic held a fraction f of capacity against our
// (presumed saturating) training flow, k competing Cubic flows would hold
// f ≈ k/(k+1), so k ≈ f/(1−f), clamped to [1, 8].
//
// The estimate is conservative twice over (the byte series is a lower
// bound, and the flow-count inversion assumes the training sender competed
// at full strength), matching the paper's bias: better to under- than
// over-state competition.
func (p Params) LearnAdaptiveCT() AdaptiveCT {
	const activityFrac = 0.05
	ct := p.CrossTraffic
	if ct == nil || ct.Len() == 0 || p.Bandwidth <= 0 {
		return AdaptiveCT{}
	}
	capBytesPerWin := p.Bandwidth * ct.Step.Seconds()
	busy := make([]bool, ct.Len())
	for i, v := range ct.Vals {
		busy[i] = v > activityFrac*capBytesPerWin
	}
	// Bridge gaps of up to 2 windows.
	for i := 1; i < len(busy)-1; i++ {
		if !busy[i] && busy[i-1] && (busy[i+1] || (i+2 < len(busy) && busy[i+2])) {
			busy[i] = true
		}
	}
	var out AdaptiveCT
	i := 0
	for i < len(busy) {
		if !busy[i] {
			i++
			continue
		}
		j := i
		sum := 0.0
		for j < len(busy) && busy[j] {
			sum += ct.Vals[j]
			j++
		}
		meanRate := sum / (float64(j-i) * ct.Step.Seconds()) // bytes/sec
		f := meanRate / p.Bandwidth
		if f > 0.9 {
			f = 0.9
		}
		k := int(math.Round(f / (1 - f)))
		if k < 1 {
			k = 1
		}
		if k > 8 {
			k = 8
		}
		out.Intervals = append(out.Intervals, CTInterval{
			Start: ct.TimeAt(i),
			End:   ct.TimeAt(j-1) + ct.Step,
			Flows: k,
		})
		i = j
	}
	return out
}

// EmulateAdaptive instantiates the learnt model with *adaptive* cross
// traffic: instead of replaying the byte series, each learnt busy interval
// attaches that many closed-loop TCP Cubic flows to the emulated
// bottleneck. The returned path carries live competing flows that react to
// whatever protocol the caller attaches — the behaviour replay cannot
// provide.
func (p Params) EmulateAdaptive(sched *sim.Scheduler, seed int64) *netsim.Path {
	cfg := netsim.Config{
		Rate:        p.Bandwidth,
		BufferBytes: p.BufferBytes,
		PropDelay:   p.PropDelay,
		Seed:        seed,
	}
	path := netsim.New(sched, cfg)
	act := p.LearnAdaptiveCT()
	for ii, iv := range act.Intervals {
		dur := iv.End - iv.Start
		if dur <= 0 {
			continue
		}
		for f := 0; f < iv.Flows; f++ {
			flow := cc.NewFlow(sched, path.Port(fmt.Sprintf("ct-%d-%d", ii, f)),
				cc.NewCubic(), cc.FlowConfig{
					Start:    iv.Start,
					Duration: dur,
					AckDelay: p.PropDelay,
				})
			flow.Start()
		}
	}
	return path
}
