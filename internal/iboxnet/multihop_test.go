package iboxnet

import (
	"math"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
)

// TestEstimateOnMultiHopPathDegradesGracefully checks §6's claim that
// violating iBoxNet's single-bottleneck assumption yields "a graceful
// degradation, rather than full invalidation": on a three-hop path the
// estimator should still recover the *dominant* bottleneck's rate and the
// *total* propagation delay, and an emulator built from those parameters
// should reproduce the end-to-end throughput of a new protocol.
func TestEstimateOnMultiHopPathDegradesGracefully(t *testing.T) {
	hops := []netsim.HopConfig{
		{Rate: 12_500_000, BufferBytes: 1_000_000, PropDelay: 5 * sim.Millisecond},
		{Rate: 1_250_000, BufferBytes: 125_000, PropDelay: 10 * sim.Millisecond}, // dominant bottleneck
		{Rate: 3_125_000, BufferBytes: 250_000, PropDelay: 15 * sim.Millisecond}, // secondary constriction
	}
	run := func(sender cc.Sender, seed int64) *cc.Flow {
		sched := sim.NewScheduler()
		c := netsim.NewChain(sched, hops)
		f := cc.NewFlow(sched, c.Port("m"), sender, cc.FlowConfig{
			Duration: 15 * sim.Second, AckDelay: 30 * sim.Millisecond,
		})
		f.Start()
		sched.RunUntil(18 * sim.Second)
		return f
	}
	gt := run(cc.NewCubic(), 1).Trace()
	p, err := Estimate(gt, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Dominant bottleneck rate within 10%.
	if math.Abs(p.Bandwidth-1_250_000)/1_250_000 > 0.10 {
		t.Errorf("bandwidth = %.0f, want ≈1.25e6 (dominant bottleneck)", p.Bandwidth)
	}
	// Total propagation (30 ms) within a few serializations.
	if p.PropDelay < 30*sim.Millisecond || p.PropDelay > 40*sim.Millisecond {
		t.Errorf("prop delay = %v, want ≈30–34 ms (sum of hops)", p.PropDelay)
	}
	// Counterfactual quality: Vegas on the learnt single-bottleneck model
	// vs Vegas on the true chain.
	gtVegas := run(cc.NewVegas(), 2).Trace()
	sched := sim.NewScheduler()
	path := p.Emulate(sched, Full, 3)
	f := cc.NewFlow(sched, path.Port("m"), cc.NewVegas(), cc.FlowConfig{
		Duration: 15 * sim.Second, AckDelay: 30 * sim.Millisecond,
	})
	f.Start()
	sched.RunUntil(18 * sim.Second)
	simVegas := f.Trace()
	if relErr := math.Abs(simVegas.Throughput()-gtVegas.Throughput()) / gtVegas.Throughput(); relErr > 0.25 {
		t.Errorf("multi-hop counterfactual throughput error %.0f%%: GT %.2f vs sim %.2f Mbps",
			relErr*100, gtVegas.Throughput()/1e6, simVegas.Throughput()/1e6)
	}
}
