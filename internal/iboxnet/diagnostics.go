package iboxnet

import (
	"fmt"
	"strings"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Diagnostics reports how well a trace satisfied the estimator's
// assumptions (§6: "iBoxNet is also limited by the assumptions it makes
// about the traces"). Each field maps to one assumption; low values mean
// the corresponding parameter estimate is less trustworthy. Violations
// degrade gracefully rather than invalidating the model, but a caller
// (or operator) should know.
type Diagnostics struct {
	// SaturationFraction is the share of 1-second windows in which the
	// receive rate reached ≥90% of the estimated bandwidth — evidence for
	// "the sender tries to saturate the bottleneck". Near zero means the
	// bandwidth estimate is likely a lower bound (consider
	// EstimatorConfig.KnownBandwidth or trace.Merge).
	SaturationFraction float64
	// EmptyQueueFraction is the share of delivered packets within 20% of
	// the minimum delay — evidence that "at some point a packet traverses
	// an empty queue", backing the propagation estimate.
	EmptyQueueFraction float64
	// FullBufferSeen reports whether any packet's delay approached the
	// implied buffer limit while losses occurred nearby — evidence for the
	// buffer-size estimate ("a packet traverses an almost full queue").
	FullBufferSeen bool
	// ObservableQueueFraction is the share of cross-traffic windows where
	// the queue was provably non-empty, i.e. where the CT estimate is an
	// actual measurement rather than the conservative zero.
	ObservableQueueFraction float64
}

// String summarizes the report.
func (d Diagnostics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "saturation=%.0f%% empty-queue=%.1f%% observable-CT=%.0f%% full-buffer=%v",
		100*d.SaturationFraction, 100*d.EmptyQueueFraction,
		100*d.ObservableQueueFraction, d.FullBufferSeen)
	return b.String()
}

// Trustworthy reports whether every estimator assumption had at least
// minimal support in the trace.
func (d Diagnostics) Trustworthy() bool {
	return d.SaturationFraction > 0.05 && d.EmptyQueueFraction > 0.001
}

// Diagnose evaluates the estimator's assumptions on a trace against the
// learnt parameters.
func Diagnose(tr *trace.Trace, p Params, cfg EstimatorConfig) Diagnostics {
	cfg = cfg.withDefaults()
	var d Diagnostics
	del := tr.Delivered()
	if len(del) == 0 || p.Bandwidth <= 0 {
		return d
	}

	// Saturation: receive rate per 1s window vs estimated bandwidth.
	recv := tr.RecvRateSeries(sim.Second)
	sat := 0
	for _, v := range recv.Vals {
		if v/8 >= 0.9*p.Bandwidth {
			sat++
		}
	}
	if recv.Len() > 0 {
		d.SaturationFraction = float64(sat) / float64(recv.Len())
	}

	// Empty queue: packets whose delay is within 20% of the minimum.
	minD, _ := tr.MinDelay()
	near := 0
	for _, pk := range del {
		if float64(pk.Delay()) <= 1.2*float64(minD) {
			near++
		}
	}
	d.EmptyQueueFraction = float64(near) / float64(len(del))

	// Full buffer: a delay within 10% of the implied maximum plus at least
	// one loss in the trace.
	maxImplied := minD + sim.Time(float64(p.BufferBytes)/p.Bandwidth*float64(sim.Second))
	sawDeep := false
	for _, pk := range del {
		if float64(pk.Delay()) >= 0.9*float64(maxImplied) {
			sawDeep = true
			break
		}
	}
	d.FullBufferSeen = sawDeep && p.LossRate > 0

	// Observable CT windows: nonzero entries of the conservative series
	// over windows spanned by the trace.
	if p.CrossTraffic != nil && p.CrossTraffic.Len() > 0 {
		nz := 0
		for _, v := range p.CrossTraffic.Vals {
			if v > 0 {
				nz++
			}
		}
		d.ObservableQueueFraction = float64(nz) / float64(p.CrossTraffic.Len())
	}
	return d
}
