package iboxnet

import (
	"strings"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func TestDiagnosticsOnSaturatingTrace(t *testing.T) {
	// A greedy Cubic flow satisfies every assumption: saturation, empty
	// queue early on, full buffer at loss events.
	cfg := knownPath()
	tr := genTrace(cc.NewCubic(), cfg, nil, 20*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(tr, p, EstimatorConfig{})
	if d.SaturationFraction < 0.5 {
		t.Errorf("saturation fraction %.2f, want high for greedy cubic", d.SaturationFraction)
	}
	if d.EmptyQueueFraction <= 0 {
		t.Errorf("empty-queue fraction %.4f, want > 0", d.EmptyQueueFraction)
	}
	if !d.FullBufferSeen {
		t.Error("full buffer not seen despite drop-tail losses")
	}
	if !d.Trustworthy() {
		t.Errorf("greedy trace not trustworthy: %s", d)
	}
	if !strings.Contains(d.String(), "saturation=") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDiagnosticsFlagNonSaturatingTrace(t *testing.T) {
	// A 1.6 Mbps CBR on a 10 Mbps link: bandwidth assumption violated.
	cfg := knownPath()
	tr := genTrace(cc.NewCBR(200_000), cfg, nil, 15*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(tr, p, EstimatorConfig{})
	// The estimator thinks b̂ ≈ the CBR rate, so windows look "saturated"
	// against the (wrong) estimate — unless we diagnose against a known
	// rate. Re-diagnose against the true bandwidth.
	pTrue := p
	pTrue.Bandwidth = cfg.Rate
	dTrue := Diagnose(tr, pTrue, EstimatorConfig{})
	if dTrue.SaturationFraction > 0.05 {
		t.Errorf("saturation vs true rate = %.2f, want ≈0", dTrue.SaturationFraction)
	}
	if dTrue.Trustworthy() {
		t.Error("non-saturating trace marked trustworthy against true rate")
	}
	_ = d
}

func TestDiagnosticsEmptyTrace(t *testing.T) {
	d := Diagnose(&trace.Trace{}, Params{}, EstimatorConfig{})
	if d.SaturationFraction != 0 || d.FullBufferSeen {
		t.Errorf("empty trace diagnostics: %+v", d)
	}
}

func TestDiagnosticsObservableCT(t *testing.T) {
	cfg := knownPath()
	ct := netsim.ConstantBitRate{Rate: 625_000, From: 5 * sim.Second, To: 10 * sim.Second}
	tr := genTrace(cc.NewCubic(), cfg, ct, 20*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnose(tr, p, EstimatorConfig{})
	if d.ObservableQueueFraction <= 0 {
		t.Error("no observable CT windows despite a 5-second burst")
	}
	if d.ObservableQueueFraction > 0.9 {
		t.Errorf("observable fraction %.2f implausibly high for a 25%%-duty burst", d.ObservableQueueFraction)
	}
}
