package iboxnet

import (
	"math"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// adaptiveScenario runs a main flow against one competing closed-loop
// Cubic cross flow during [20s, 30s) of a 60s run on a known path.
func adaptiveScenario(sender cc.Sender, seed int64) *trace.Trace {
	sched := sim.NewScheduler()
	cfg := netsim.Config{
		Rate: 1_250_000, BufferBytes: 187_500, PropDelay: 30 * sim.Millisecond, Seed: seed,
	}
	path := netsim.New(sched, cfg)
	main := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: 60 * sim.Second, AckDelay: cfg.PropDelay,
	})
	ct := cc.NewFlow(sched, path.Port("ct"), cc.NewCubic(), cc.FlowConfig{
		Start: 20 * sim.Second, Duration: 10 * sim.Second, AckDelay: cfg.PropDelay,
	})
	main.Start()
	ct.Start()
	sched.RunUntil(65 * sim.Second)
	return main.Trace()
}

func TestLearnAdaptiveCTFindsInterval(t *testing.T) {
	gt := adaptiveScenario(cc.NewCubic(), 3)
	p, err := Estimate(gt, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	act := p.LearnAdaptiveCT()
	if len(act.Intervals) == 0 {
		t.Fatal("no busy intervals learnt")
	}
	// The dominant interval must overlap [20s, 30s).
	var best CTInterval
	for _, iv := range act.Intervals {
		if iv.End-iv.Start > best.End-best.Start {
			best = iv
		}
	}
	if best.Start > 25*sim.Second || best.End < 25*sim.Second {
		t.Errorf("dominant interval [%v, %v) does not cover the burst midpoint", best.Start, best.End)
	}
	if best.Flows < 1 || best.Flows > 8 {
		t.Errorf("flow count %d out of range", best.Flows)
	}
	if act.String() == "" {
		t.Error("empty String()")
	}
}

func TestLearnAdaptiveCTEmptyInputs(t *testing.T) {
	var p Params
	if act := p.LearnAdaptiveCT(); len(act.Intervals) != 0 {
		t.Error("nil CT series produced intervals")
	}
	p.Bandwidth = 1e6
	p.CrossTraffic = trace.NewSeries(0, 100*sim.Millisecond, 10) // all zeros
	if act := p.LearnAdaptiveCT(); len(act.Intervals) != 0 {
		t.Error("zero CT series produced intervals")
	}
}

// TestAdaptiveBeatsReplayAgainstYieldingSender is the §6 motivation made
// concrete: the cross traffic in the scenario is a closed-loop Cubic flow.
// Against a delay-yielding Vegas sender it grabs most of the link — but a
// non-adaptive replay of the (tiny, because the training sender fought
// back) byte series cannot reproduce that. The adaptive variant, competing
// with live Cubic flows, must predict Vegas's burst-window throughput far
// better than replay does.
func TestAdaptiveBeatsReplayAgainstYieldingSender(t *testing.T) {
	train := adaptiveScenario(cc.NewCubic(), 3)
	p, err := Estimate(train, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gtVegas := adaptiveScenario(cc.NewVegas(), 4)

	run := func(v Variant) *trace.Trace {
		sched := sim.NewScheduler()
		path := p.Emulate(sched, v, 9)
		flow := cc.NewFlow(sched, path.Port("main"), cc.NewVegas(), cc.FlowConfig{
			Duration: 60 * sim.Second, AckDelay: p.PropDelay,
		})
		flow.Start()
		sched.RunUntil(65 * sim.Second)
		return flow.Trace()
	}
	replay := run(Full)
	adaptive := run(Adaptive)

	burstTput := func(tr *trace.Trace) float64 {
		s := tr.RecvRateSeries(sim.Second)
		sum, n := 0.0, 0
		for i := 0; i < s.Len(); i++ {
			at := s.TimeAt(i)
			if at >= 21*sim.Second && at < 29*sim.Second {
				sum += s.Vals[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	gt := burstTput(gtVegas)
	rp := burstTput(replay)
	ad := burstTput(adaptive)
	t.Logf("vegas burst-window throughput: GT=%.2f Mbps replay=%.2f adaptive=%.2f", gt/1e6, rp/1e6, ad/1e6)
	// Replay barely dents Vegas; GT is far lower. Adaptive must land
	// closer to GT than replay does.
	if math.Abs(ad-gt) >= math.Abs(rp-gt) {
		t.Errorf("adaptive error %.2f Mbps not better than replay error %.2f Mbps",
			math.Abs(ad-gt)/1e6, math.Abs(rp-gt)/1e6)
	}
	// And Vegas must actually yield on the adaptive emulator.
	if ad > 0.7*rp {
		t.Errorf("adaptive emulation did not push Vegas down: %.2f vs replay %.2f Mbps", ad/1e6, rp/1e6)
	}
}

func TestAdaptiveVariantName(t *testing.T) {
	if Adaptive.String() != "iboxnet-adaptive" {
		t.Errorf("got %q", Adaptive.String())
	}
}
