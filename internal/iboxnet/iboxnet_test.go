package iboxnet

import (
	"math"
	"strings"
	"testing"

	"ibox/internal/cc"
	"ibox/internal/netsim"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// genTrace runs a sender over a known netsim path and returns its trace.
func genTrace(sender cc.Sender, cfg netsim.Config, ct netsim.CrossTraffic, dur sim.Time) *trace.Trace {
	sched := sim.NewScheduler()
	path := netsim.New(sched, cfg)
	if ct != nil {
		path.AddCrossTraffic(ct)
	}
	flow := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: dur, AckDelay: cfg.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + 3*sim.Second)
	return flow.Trace()
}

func knownPath() netsim.Config {
	return netsim.Config{
		Rate:        1_250_000, // 10 Mbps
		BufferBytes: 125_000,   // 100 ms
		PropDelay:   20 * sim.Millisecond,
		Seed:        11,
	}
}

func TestEstimateStaticParams(t *testing.T) {
	cfg := knownPath()
	tr := genTrace(cc.NewCubic(), cfg, nil, 20*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth within 10% of truth (Cubic saturates the link).
	if math.Abs(p.Bandwidth-cfg.Rate)/cfg.Rate > 0.10 {
		t.Errorf("bandwidth = %.0f B/s, want ≈%.0f", p.Bandwidth, cfg.Rate)
	}
	// Propagation delay: min delay includes one serialization (1.2 ms).
	wantD := cfg.PropDelay + 1200*sim.Microsecond
	if p.PropDelay < cfg.PropDelay || p.PropDelay > wantD+3*sim.Millisecond {
		t.Errorf("prop delay = %v, want ≈%v", p.PropDelay, wantD)
	}
	// Buffer within 30% (Cubic fills the buffer before its drops).
	if math.Abs(float64(p.BufferBytes-cfg.BufferBytes))/float64(cfg.BufferBytes) > 0.3 {
		t.Errorf("buffer = %d B, want ≈%d", p.BufferBytes, cfg.BufferBytes)
	}
	if p.LossRate <= 0 || p.LossRate > 0.2 {
		t.Errorf("loss rate = %v, want small positive", p.LossRate)
	}
	if !strings.Contains(p.String(), "Mbps") {
		t.Errorf("String() = %q", p.String())
	}
}

func TestEstimateCrossTrafficTiming(t *testing.T) {
	// Cross traffic at 5 Mbps during [5s, 10s) of a 20s Cubic flow. The
	// estimate must place most cross-traffic mass inside the burst window.
	cfg := knownPath()
	ct := netsim.ConstantBitRate{Rate: 625_000, From: 5 * sim.Second, To: 10 * sim.Second}
	tr := genTrace(cc.NewCubic(), cfg, ct, 20*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossTraffic == nil {
		t.Fatal("no cross-traffic series")
	}
	var inBurst, outBurst float64
	for i, v := range p.CrossTraffic.Vals {
		at := p.CrossTraffic.TimeAt(i)
		if at >= 5*sim.Second && at < 10*sim.Second {
			inBurst += v
		} else {
			outBurst += v
		}
	}
	total := inBurst + outBurst
	if total == 0 {
		t.Fatal("estimator found no cross traffic at all")
	}
	if inBurst/total < 0.6 {
		t.Errorf("only %.0f%% of estimated CT inside the true burst window", 100*inBurst/total)
	}
	// Conservative lower bound: total estimated CT must not wildly exceed
	// the true 5 Mbps × 5 s = 3.125 MB.
	trueBytes := 625_000.0 * 5
	if total > 1.5*trueBytes {
		t.Errorf("estimated CT %.0f B overshoots truth %.0f B", total, trueBytes)
	}
	if inBurst < 0.2*trueBytes {
		t.Errorf("estimated CT %.0f B far below truth %.0f B in burst", inBurst, trueBytes)
	}
}

func TestEstimateNoCrossTrafficIsQuiet(t *testing.T) {
	// Without cross traffic, the estimator should attribute little: the
	// queue dynamics are fully explained by the sender's own inflow.
	cfg := knownPath()
	tr := genTrace(cc.NewCubic(), cfg, nil, 20*sim.Second)
	p, err := Estimate(tr, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	totalCT := 0.0
	for _, v := range p.CrossTraffic.Vals {
		totalCT += v
	}
	sentBytes := float64(len(tr.Packets) * 1500)
	if totalCT > 0.15*sentBytes {
		t.Errorf("phantom cross traffic: %.0f B vs %.0f B sent", totalCT, sentBytes)
	}
}

func TestEstimateRejectsBadTraces(t *testing.T) {
	if _, err := Estimate(&trace.Trace{}, EstimatorConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
	short := &trace.Trace{}
	for i := 0; i < 5; i++ {
		short.Packets = append(short.Packets, trace.Packet{
			Seq: int64(i), Size: 100, SendTime: sim.Time(i), RecvTime: sim.Time(i) + 1,
		})
	}
	if _, err := Estimate(short, EstimatorConfig{}); err == nil {
		t.Error("too-short trace accepted")
	}
	bad := &trace.Trace{Packets: []trace.Packet{{Seq: 0, Size: 0, SendTime: 0, RecvTime: 1}}}
	if _, err := Estimate(bad, EstimatorConfig{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestEmulatorReproducesControlProtocol(t *testing.T) {
	// The A→A sanity check behind Fig 4(a): learn from Cubic, replay Cubic
	// on the emulator, and the gross metrics must match the ground truth.
	cfg := knownPath()
	gt := genTrace(cc.NewCubic(), cfg, nil, 20*sim.Second)
	p, err := Estimate(gt, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	path := p.Emulate(sched, Full, 1)
	flow := cc.NewFlow(sched, path.Port("main"), cc.NewCubic(), cc.FlowConfig{
		Duration: 20 * sim.Second, AckDelay: p.PropDelay,
	})
	flow.Start()
	sched.RunUntil(25 * sim.Second)
	em := flow.Trace()

	if gtT, emT := gt.Throughput(), em.Throughput(); math.Abs(gtT-emT)/gtT > 0.15 {
		t.Errorf("throughput: GT %.2f Mbps vs emulated %.2f Mbps", gtT/1e6, emT/1e6)
	}
	gtP95, emP95 := gt.DelayPercentile(95), em.DelayPercentile(95)
	if math.Abs(gtP95-emP95)/gtP95 > 0.35 {
		t.Errorf("p95 delay: GT %.1f ms vs emulated %.1f ms", gtP95, emP95)
	}
}

func TestVariantBehaviours(t *testing.T) {
	cfg := knownPath()
	ct := netsim.ConstantBitRate{Rate: 500_000, From: 2 * sim.Second, To: 18 * sim.Second}
	gt := genTrace(cc.NewCubic(), cfg, ct, 20*sim.Second)
	p, err := Estimate(gt, EstimatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(v Variant) *trace.Trace {
		sched := sim.NewScheduler()
		path := p.Emulate(sched, v, 2)
		flow := cc.NewFlow(sched, path.Port("main"), cc.NewCubic(), cc.FlowConfig{
			Duration: 20 * sim.Second, AckDelay: p.PropDelay,
		})
		flow.Start()
		sched.RunUntil(25 * sim.Second)
		return flow.Trace()
	}
	full := run(Full)
	noct := run(NoCT)
	stat := run(StatLoss)

	// Without cross traffic the emulator's residual capacity is higher, so
	// the sender should achieve at least the full variant's throughput.
	if noct.Throughput() < full.Throughput()*0.95 {
		t.Errorf("NoCT throughput %.2f < Full %.2f Mbps", noct.Throughput()/1e6, full.Throughput()/1e6)
	}
	// StatLoss must actually lose packets at roughly the observed rate.
	if p.LossRate > 0.005 {
		if stat.LossRate() < p.LossRate*0.3 {
			t.Errorf("StatLoss loss %.4f far below observed %.4f", stat.LossRate(), p.LossRate)
		}
	}
	// Full should match GT throughput better than NoCT does.
	gtT := gt.Throughput()
	errFull := math.Abs(full.Throughput() - gtT)
	errNoCT := math.Abs(noct.Throughput() - gtT)
	if errFull > errNoCT {
		t.Errorf("Full variant (err %.2f Mbps) worse than NoCT (err %.2f Mbps)", errFull/1e6, errNoCT/1e6)
	}
}

func TestVariantString(t *testing.T) {
	if Full.String() != "iboxnet" || NoCT.String() != "iboxnet-noct" || StatLoss.String() != "iboxnet-statloss" {
		t.Error("variant names changed")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still format")
	}
}

func TestStatLossClampsPathologicalRate(t *testing.T) {
	p := Params{Bandwidth: 1e6, PropDelay: sim.Millisecond, BufferBytes: 10000, LossRate: 1.0}
	sched := sim.NewScheduler()
	path := p.Emulate(sched, StatLoss, 0) // must not panic on LossProb=1
	if path == nil {
		t.Fatal("nil path")
	}
}
