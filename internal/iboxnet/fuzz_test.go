package iboxnet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

func corpusParams() Params {
	ct := trace.NewSeries(0, 100*sim.Millisecond, 5)
	for i := range ct.Vals {
		ct.Vals[i] = float64(1000 * i)
	}
	return Params{
		Bandwidth:    1.25e6,
		PropDelay:    20 * sim.Millisecond,
		BufferBytes:  30000,
		CrossTraffic: ct,
		LossRate:     0.01,
	}
}

// FuzzReadParams checks the profile deserializer never panics and that
// anything it accepts passes Validate — the registry's guarantee that a
// loaded iBoxNet profile can always drive the emulator.
func FuzzReadParams(f *testing.F) {
	var good bytes.Buffer
	if err := corpusParams().Write(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"Bandwidth":-1,"BufferBytes":100}`)
	f.Add(`{"Bandwidth":1e6,"BufferBytes":100,"LossRate":1.5}`)
	f.Add(`{"Bandwidth":1e6,"BufferBytes":100,"CrossTraffic":{"Step":0,"Vals":[1]}}`)
	f.Add("IBOX1\x00\x01 not json")
	f.Add(good.String()[:good.Len()/2])
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ReadParams(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadParams accepted params that fail Validate: %v", err)
		}
	})
}

// TestReadParamsRejectsCorrupt covers the corruption taxonomy for iBoxNet
// profiles: truncation, wrong format, non-physical values, and broken
// cross-traffic series.
func TestReadParamsRejectsCorrupt(t *testing.T) {
	var good bytes.Buffer
	if err := corpusParams().Write(&good); err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(map[string]any)) []byte {
		var doc map[string]any
		if err := json.Unmarshal(good.Bytes(), &doc); err != nil {
			t.Fatalf("unmarshal corpus params: %v", err)
		}
		fn(doc)
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal mutated params: %v", err)
		}
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not-json", []byte("IBOX1\x00binary junk")},
		{"truncated", good.Bytes()[:good.Len()/2]},
		{"empty-object", []byte("{}")},
		{"negative-bandwidth", mutate(func(d map[string]any) { d["Bandwidth"] = -1.0 })},
		{"bandwidth-as-string", mutate(func(d map[string]any) { d["Bandwidth"] = "fast" })},
		{"zero-buffer", mutate(func(d map[string]any) { d["BufferBytes"] = 0 })},
		{"negative-prop-delay", mutate(func(d map[string]any) { d["PropDelay"] = -5 })},
		{"loss-above-one", mutate(func(d map[string]any) { d["LossRate"] = 1.5 })},
		{"ct-zero-step", mutate(func(d map[string]any) {
			d["CrossTraffic"].(map[string]any)["Step"] = 0
		})},
		{"ct-no-windows", mutate(func(d map[string]any) {
			d["CrossTraffic"].(map[string]any)["Vals"] = []any{}
		})},
		{"ct-negative-window", mutate(func(d map[string]any) {
			d["CrossTraffic"].(map[string]any)["Vals"].([]any)[2] = -1.0
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadParams(bytes.NewReader(tc.data)); err == nil {
				t.Fatal("ReadParams accepted corrupt params")
			}
		})
	}
	if _, err := ReadParams(bytes.NewReader(good.Bytes())); err != nil {
		t.Fatalf("ReadParams rejected the pristine params: %v", err)
	}
}
