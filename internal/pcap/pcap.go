// Package pcap reads and writes classic libpcap capture files (the
// pre-pcapng format every capture tool still emits) and pairs a
// sender-side with a receiver-side capture into the input–output trace
// representation iBox learns from.
//
// This is the ingestion path a production deployment would use: tcpdump on
// both ends of a path (the paper's Pantheon corpus is exactly such paired
// captures), then PairCaptures to match packets end to end. The decoder
// covers what that job needs — Ethernet/IPv4/UDP-TCP framing with the
// standard magic-number/endianness and nanosecond-variant handling — and
// nothing more.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ibox/internal/sim"
)

// File-format constants (https://wiki.wireshark.org/Development/LibpcapFileFormat).
const (
	magicMicros      = 0xa1b2c3d4
	magicNanos       = 0xa1b23c4d
	versionMajor     = 2
	versionMinor     = 4
	linkTypeEthernet = 1
	headerLen        = 24
	recordHeaderLen  = 16
)

// Packet is one captured frame with its timestamp and raw bytes.
type Packet struct {
	Time sim.Time // capture timestamp (ns since the capture epoch)
	Data []byte   // captured bytes (may be truncated to SnapLen)
	// OrigLen is the packet's original length on the wire.
	OrigLen int
}

// Reader decodes a libpcap stream.
type Reader struct {
	r     *bufio.Reader
	nanos bool
	order binary.ByteOrder
	// LinkType is the capture's link-layer type (1 = Ethernet).
	LinkType uint32
}

// NewReader parses the global header and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short global header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	rd := &Reader{r: br}
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", magicLE)
	}
	major := rd.order.Uint16(hdr[4:6])
	if major != versionMajor {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, rd.order.Uint16(hdr[6:8]))
	}
	rd.LinkType = rd.order.Uint32(hdr[20:24])
	return rd, nil
}

// Next returns the next packet, or io.EOF at the end of the capture.
func (rd *Reader) Next() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: short record header: %w", err)
	}
	sec := rd.order.Uint32(hdr[0:4])
	frac := rd.order.Uint32(hdr[4:8])
	incl := rd.order.Uint32(hdr[8:12])
	orig := rd.order.Uint32(hdr[12:16])
	if incl > 1<<26 {
		return Packet{}, fmt.Errorf("pcap: implausible capture length %d", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(rd.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: truncated packet body: %w", err)
	}
	ts := sim.Time(sec) * sim.Second
	if rd.nanos {
		ts += sim.Time(frac)
	} else {
		ts += sim.Time(frac) * sim.Microsecond
	}
	return Packet{Time: ts, Data: data, OrigLen: int(orig)}, nil
}

// ReadAll drains the capture.
func (rd *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

// Writer encodes a libpcap stream (little-endian, nanosecond timestamps,
// Ethernet link type).
type Writer struct {
	w       *bufio.Writer
	snapLen uint32
	started bool
}

// NewWriter returns a Writer; the global header is emitted on first use.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), snapLen: 65535}
}

func (wr *Writer) writeHeader() error {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNanos)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], wr.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	_, err := wr.w.Write(hdr[:])
	return err
}

// WritePacket appends one packet record.
func (wr *Writer) WritePacket(p Packet) error {
	if !wr.started {
		if err := wr.writeHeader(); err != nil {
			return err
		}
		wr.started = true
	}
	var hdr [recordHeaderLen]byte
	sec := uint32(p.Time / sim.Second)
	nsec := uint32(p.Time % sim.Second)
	binary.LittleEndian.PutUint32(hdr[0:4], sec)
	binary.LittleEndian.PutUint32(hdr[4:8], nsec)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
	orig := p.OrigLen
	if orig == 0 {
		orig = len(p.Data)
	}
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(orig))
	if _, err := wr.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := wr.w.Write(p.Data)
	return err
}

// Flush writes buffered data to the underlying writer.
func (wr *Writer) Flush() error {
	if !wr.started {
		if err := wr.writeHeader(); err != nil {
			return err
		}
		wr.started = true
	}
	return wr.w.Flush()
}

// Open reads an entire capture file.
func Open(path string) ([]Packet, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	rd, err := NewReader(f)
	if err != nil {
		return nil, 0, err
	}
	pkts, err := rd.ReadAll()
	return pkts, rd.LinkType, err
}
