package pcap

import (
	"encoding/binary"
	"fmt"

	"ibox/internal/trace"
)

// Flow5 identifies a flow by its 5-tuple.
type Flow5 struct {
	Proto            byte // 6 = TCP, 17 = UDP
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
}

// String formats the tuple for diagnostics.
func (f Flow5) String() string {
	p := "proto"
	switch f.Proto {
	case 6:
		p = "tcp"
	case 17:
		p = "udp"
	}
	return fmt.Sprintf("%s %d.%d.%d.%d:%d>%d.%d.%d.%d:%d", p,
		f.SrcIP[0], f.SrcIP[1], f.SrcIP[2], f.SrcIP[3], f.SrcPort,
		f.DstIP[0], f.DstIP[1], f.DstIP[2], f.DstIP[3], f.DstPort)
}

// Decoded is the parsed view of one captured packet: enough to match it
// between the sender-side and receiver-side captures.
type Decoded struct {
	Flow Flow5
	// ID is the matching key: the TCP sequence number, or for UDP the
	// first 4 payload bytes interpreted big-endian (Pantheon-style test
	// tools stamp a counter there).
	ID uint32
	// Len is the IP total length (wire bytes independent of snap).
	Len int
}

// Decode parses Ethernet/IPv4/{TCP,UDP} framing. It returns ok=false for
// frames that are not IPv4 TCP/UDP (ARP, IPv6, ICMP, truncated captures) —
// those are skipped, not errors, as real captures always contain them.
func Decode(data []byte) (Decoded, bool) {
	const ethLen = 14
	if len(data) < ethLen+20 {
		return Decoded{}, false
	}
	etherType := binary.BigEndian.Uint16(data[12:14])
	if etherType != 0x0800 { // IPv4
		return Decoded{}, false
	}
	ip := data[ethLen:]
	if ip[0]>>4 != 4 {
		return Decoded{}, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl+8 {
		return Decoded{}, false
	}
	var d Decoded
	d.Flow.Proto = ip[9]
	copy(d.Flow.SrcIP[:], ip[12:16])
	copy(d.Flow.DstIP[:], ip[16:20])
	d.Len = int(binary.BigEndian.Uint16(ip[2:4]))
	l4 := ip[ihl:]
	switch d.Flow.Proto {
	case 6: // TCP: need ports + seq
		if len(l4) < 8 {
			return Decoded{}, false
		}
		d.Flow.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		d.Flow.DstPort = binary.BigEndian.Uint16(l4[2:4])
		d.ID = binary.BigEndian.Uint32(l4[4:8])
	case 17: // UDP: ports + 4-byte payload counter
		if len(l4) < 12 {
			return Decoded{}, false
		}
		d.Flow.SrcPort = binary.BigEndian.Uint16(l4[0:2])
		d.Flow.DstPort = binary.BigEndian.Uint16(l4[2:4])
		d.ID = binary.BigEndian.Uint32(l4[8:12])
	default:
		return Decoded{}, false
	}
	return d, true
}

// PairCaptures matches a sender-side capture against a receiver-side
// capture for one flow and produces the input–output trace iBox consumes:
// every sender packet of the flow becomes a trace packet; those found in
// the receiver capture (same flow + ID) get their receive timestamp, the
// rest are marked lost. Duplicate IDs (retransmissions) keep the first
// send and the first arrival.
func PairCaptures(senderSide, receiverSide []Packet, flow Flow5) (*trace.Trace, error) {
	recv := map[uint32]*Packet{}
	for i := range receiverSide {
		d, ok := Decode(receiverSide[i].Data)
		if !ok || d.Flow != flow {
			continue
		}
		if _, dup := recv[d.ID]; !dup {
			recv[d.ID] = &receiverSide[i]
		}
	}
	tr := &trace.Trace{Protocol: "pcap", PathID: flow.String()}
	seen := map[uint32]bool{}
	seq := int64(0)
	for i := range senderSide {
		d, ok := Decode(senderSide[i].Data)
		if !ok || d.Flow != flow {
			continue
		}
		if seen[d.ID] {
			continue // retransmission: keep first send only
		}
		seen[d.ID] = true
		p := trace.Packet{
			Seq:      seq,
			Size:     d.Len,
			SendTime: senderSide[i].Time,
			Lost:     true,
		}
		if r, ok := recv[d.ID]; ok && r.Time >= p.SendTime {
			p.RecvTime = r.Time
			p.Lost = false
		}
		tr.Packets = append(tr.Packets, p)
		seq++
	}
	if len(tr.Packets) == 0 {
		return nil, fmt.Errorf("pcap: no packets of flow %v in sender capture", flow)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("pcap: paired trace invalid: %w", err)
	}
	return tr, nil
}

// Flows enumerates the distinct 5-tuples in a capture with their packet
// counts, so callers can pick the flow to pair.
func Flows(pkts []Packet) map[Flow5]int {
	out := map[Flow5]int{}
	for i := range pkts {
		if d, ok := Decode(pkts[i].Data); ok {
			out[d.Flow]++
		}
	}
	return out
}
