package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"ibox/internal/sim"
)

// mkUDP builds an Ethernet/IPv4/UDP frame with a 4-byte counter payload.
func mkUDP(src, dst [4]byte, sport, dport uint16, id uint32, payloadLen int) []byte {
	if payloadLen < 4 {
		payloadLen = 4
	}
	udpLen := 8 + payloadLen
	ipLen := 20 + udpLen
	frame := make([]byte, 14+ipLen)
	// Ethernet
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)
	ip := frame[14:]
	ip[0] = 0x45 // v4, ihl 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = 64
	ip[9] = 17 // UDP
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	udp := ip[20:]
	binary.BigEndian.PutUint16(udp[0:2], sport)
	binary.BigEndian.PutUint16(udp[2:4], dport)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpLen))
	binary.BigEndian.PutUint32(udp[8:12], id)
	return frame
}

// mkTCP builds an Ethernet/IPv4/TCP frame with the given sequence number.
func mkTCP(src, dst [4]byte, sport, dport uint16, seq uint32) []byte {
	ipLen := 20 + 20
	frame := make([]byte, 14+ipLen)
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)
	ip := frame[14:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[9] = 6 // TCP
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	tcp := ip[20:]
	binary.BigEndian.PutUint16(tcp[0:2], sport)
	binary.BigEndian.PutUint16(tcp[2:4], dport)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	tcp[12] = 5 << 4
	return frame
}

var (
	hostA = [4]byte{10, 0, 0, 1}
	hostB = [4]byte{10, 0, 0, 2}
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		err := w.WritePacket(Packet{
			Time: sim.Time(i) * 123456789,
			Data: mkUDP(hostA, hostB, 4000, 5000, uint32(i), 100),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != linkTypeEthernet {
		t.Errorf("link type %d", r.LinkType)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 10 {
		t.Fatalf("read %d packets", len(pkts))
	}
	for i, p := range pkts {
		if p.Time != sim.Time(i)*123456789 {
			t.Errorf("packet %d time %d (nanosecond precision lost)", i, p.Time)
		}
		if d, ok := Decode(p.Data); !ok || d.ID != uint32(i) {
			t.Errorf("packet %d decode failed", i)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all!!"))); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	// Valid header but truncated record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WritePacket(Packet{Data: mkUDP(hostA, hostB, 1, 2, 3, 50)})
	w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated body gave %v", err)
	}
}

func TestReaderMicrosecondVariant(t *testing.T) {
	// Hand-build a microsecond-magic big-endian header + one record.
	var buf bytes.Buffer
	hdr := make([]byte, headerLen)
	binary.BigEndian.PutUint32(hdr[0:4], magicMicros)
	binary.BigEndian.PutUint16(hdr[4:6], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:8], versionMinor)
	binary.BigEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(rec[0:4], 5)   // sec
	binary.BigEndian.PutUint32(rec[4:8], 250) // µs
	data := mkUDP(hostA, hostB, 1, 2, 9, 20)
	binary.BigEndian.PutUint32(rec[8:12], uint32(len(data)))
	binary.BigEndian.PutUint32(rec[12:16], uint32(len(data)))
	buf.Write(rec)
	buf.Write(data)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := 5*sim.Second + 250*sim.Microsecond
	if p.Time != want {
		t.Errorf("time %v, want %v", p.Time, want)
	}
}

func TestDecodeSkipsNonIPv4(t *testing.T) {
	arp := make([]byte, 60)
	binary.BigEndian.PutUint16(arp[12:14], 0x0806)
	if _, ok := Decode(arp); ok {
		t.Error("ARP decoded")
	}
	if _, ok := Decode([]byte{1, 2, 3}); ok {
		t.Error("runt decoded")
	}
	icmp := mkUDP(hostA, hostB, 0, 0, 0, 20)
	icmp[14+9] = 1 // ICMP proto
	if _, ok := Decode(icmp); ok {
		t.Error("ICMP decoded")
	}
}

func TestDecodeTCP(t *testing.T) {
	d, ok := Decode(mkTCP(hostA, hostB, 333, 444, 12345))
	if !ok {
		t.Fatal("TCP not decoded")
	}
	if d.Flow.Proto != 6 || d.Flow.SrcPort != 333 || d.Flow.DstPort != 444 || d.ID != 12345 {
		t.Errorf("decoded %+v", d)
	}
}

func TestPairCaptures(t *testing.T) {
	flow := Flow5{Proto: 17, SrcIP: hostA, DstIP: hostB, SrcPort: 4000, DstPort: 5000}
	var send, recv []Packet
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		send = append(send, Packet{Time: at, Data: mkUDP(hostA, hostB, 4000, 5000, uint32(i), 1000)})
		if i%10 == 7 {
			continue // lost on the wire
		}
		recv = append(recv, Packet{Time: at + 30*sim.Millisecond, Data: mkUDP(hostA, hostB, 4000, 5000, uint32(i), 1000)})
	}
	// Noise: a reverse-direction ack stream that must be ignored.
	for i := 0; i < 50; i++ {
		recv = append(recv, Packet{Time: sim.Time(i) * 20 * sim.Millisecond,
			Data: mkUDP(hostB, hostA, 5000, 4000, uint32(i), 10)})
	}
	tr, err := PairCaptures(send, recv, flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 100 {
		t.Fatalf("paired %d packets", len(tr.Packets))
	}
	lost := 0
	for _, p := range tr.Packets {
		if p.Lost {
			lost++
			continue
		}
		if p.Delay() != 30*sim.Millisecond {
			t.Fatalf("delay %v", p.Delay())
		}
	}
	if lost != 10 {
		t.Errorf("lost %d, want 10", lost)
	}
	if tr.Packets[5].Size != 1028 { // 20 IP + 8 UDP + 1000 payload
		t.Errorf("size %d", tr.Packets[5].Size)
	}
}

func TestPairCapturesRetransmissions(t *testing.T) {
	flow := Flow5{Proto: 6, SrcIP: hostA, DstIP: hostB, SrcPort: 1, DstPort: 2}
	send := []Packet{
		{Time: 0, Data: mkTCP(hostA, hostB, 1, 2, 100)},
		{Time: sim.Second, Data: mkTCP(hostA, hostB, 1, 2, 100)}, // retransmit
		{Time: 2 * sim.Second, Data: mkTCP(hostA, hostB, 1, 2, 200)},
	}
	recv := []Packet{
		{Time: sim.Second + 30*sim.Millisecond, Data: mkTCP(hostA, hostB, 1, 2, 100)},
		{Time: 2*sim.Second + 30*sim.Millisecond, Data: mkTCP(hostA, hostB, 1, 2, 200)},
	}
	tr, err := PairCaptures(send, recv, flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 2 {
		t.Fatalf("paired %d, want 2 (retransmit collapsed)", len(tr.Packets))
	}
	// The first send paired with the (late) first arrival.
	if tr.Packets[0].Delay() != sim.Second+30*sim.Millisecond {
		t.Errorf("delay %v", tr.Packets[0].Delay())
	}
}

func TestPairCapturesNoFlow(t *testing.T) {
	flow := Flow5{Proto: 17, SrcIP: hostA, DstIP: hostB, SrcPort: 9, DstPort: 9}
	if _, err := PairCaptures(nil, nil, flow); err == nil {
		t.Error("empty captures accepted")
	}
}

func TestFlows(t *testing.T) {
	pkts := []Packet{
		{Data: mkUDP(hostA, hostB, 1, 2, 0, 10)},
		{Data: mkUDP(hostA, hostB, 1, 2, 1, 10)},
		{Data: mkTCP(hostB, hostA, 2, 1, 0)},
	}
	fs := Flows(pkts)
	if len(fs) != 2 {
		t.Fatalf("flows: %v", fs)
	}
	udpFlow := Flow5{Proto: 17, SrcIP: hostA, DstIP: hostB, SrcPort: 1, DstPort: 2}
	if fs[udpFlow] != 2 {
		t.Errorf("udp flow count %d", fs[udpFlow])
	}
}

func TestFlow5String(t *testing.T) {
	f := Flow5{Proto: 6, SrcIP: hostA, DstIP: hostB, SrcPort: 80, DstPort: 81}
	if f.String() != "tcp 10.0.0.1:80>10.0.0.2:81" {
		t.Errorf("got %q", f.String())
	}
}
