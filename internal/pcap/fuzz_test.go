package pcap

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader checks that arbitrary bytes never panic the pcap decoder and
// that every successfully parsed capture re-encodes losslessly enough to
// parse again. (The seed corpus runs as part of ordinary `go test`.)
func FuzzReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewWriter(&seed)
	w.WritePacket(Packet{Time: 123, Data: mkUDP(hostA, hostB, 1, 2, 3, 64)})
	w.WritePacket(Packet{Time: 456, Data: mkTCP(hostA, hostB, 8, 9, 77)})
	w.Flush()
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is not pcap"))
	f.Add(seed.Bytes()[:headerLen+3]) // truncated record header

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for {
			p, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			Decode(p.Data) // must not panic either
			n++
			if n > 10000 {
				t.Fatal("runaway packet count from bounded input")
			}
		}
	})
}

// FuzzDecode checks the frame decoder on raw frames.
func FuzzDecode(f *testing.F) {
	f.Add(mkUDP(hostA, hostB, 1, 2, 3, 64))
	f.Add(mkTCP(hostA, hostB, 1, 2, 3))
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Fuzz(func(t *testing.T, data []byte) {
		if d, ok := Decode(data); ok {
			if d.Len < 0 {
				t.Fatal("negative decoded length")
			}
		}
	})
}
