package trace

import (
	"math"

	"ibox/internal/sim"
)

// This file holds second-order trace analyses used by behaviour discovery
// and diagnostics: jitter, autocorrelation, and burstiness measures.

// Jitter returns the RFC 3550-style smoothed interarrival jitter estimate
// in milliseconds: J += (|D| − J)/16 over consecutive delivered packets,
// where D is the difference in one-way delay.
func (t *Trace) Jitter() float64 {
	del := t.Delivered()
	if len(del) < 2 {
		return 0
	}
	j := 0.0
	for i := 1; i < len(del); i++ {
		d := math.Abs((del[i].Delay() - del[i-1].Delay()).Millis())
		j += (d - j) / 16
	}
	return j
}

// DelayAutocorrelation returns the lag-k autocorrelation of the per-window
// delay series — a measure of how persistent congestion episodes are
// (white-noise delays ≈ 0, long queue epochs ≈ 1).
func (t *Trace) DelayAutocorrelation(window sim.Time, lag int) float64 {
	s := t.DelaySeries(window)
	return autocorr(s.Vals, lag)
}

// autocorr computes the lag-k sample autocorrelation.
func autocorr(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || n <= lag {
		return 0
	}
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// Burstiness returns the coefficient of variation of receiver inter-
// arrival times (CV = std/mean): ≈1 for Poisson arrivals, ≫1 for bursty
// delivery, ≈0 for perfectly paced delivery.
func (t *Trace) Burstiness() float64 {
	del := t.Delivered()
	if len(del) < 3 {
		return 0
	}
	// Sort arrivals by receive time (reordering perturbs seq order).
	arr := make([]sim.Time, len(del))
	for i, p := range del {
		arr[i] = p.RecvTime
	}
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j] < arr[j-1]; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	gaps := make([]float64, len(arr)-1)
	mean := 0.0
	for i := 1; i < len(arr); i++ {
		gaps[i-1] = (arr[i] - arr[i-1]).Seconds()
		mean += gaps[i-1]
	}
	mean /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	v := 0.0
	for _, g := range gaps {
		d := g - mean
		v += d * d
	}
	v /= float64(len(gaps))
	return math.Sqrt(v) / mean
}

// LossRuns returns the distribution of consecutive-loss burst lengths: a
// map from run length to occurrence count. Random (Bernoulli) loss gives
// geometrically decaying runs; drop-tail overflow gives long runs.
func (t *Trace) LossRuns() map[int]int {
	out := map[int]int{}
	run := 0
	for _, p := range t.Packets {
		if p.Lost {
			run++
			continue
		}
		if run > 0 {
			out[run]++
			run = 0
		}
	}
	if run > 0 {
		out[run]++
	}
	return out
}
