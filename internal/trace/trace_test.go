package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ibox/internal/sim"
)

// mkTrace builds a simple delivered-in-order trace: packet i of size sz sent
// at i*gap with constant delay.
func mkTrace(n int, sz int, gap, delay sim.Time) *Trace {
	t := &Trace{Protocol: "test", PathID: "p0"}
	for i := 0; i < n; i++ {
		send := sim.Time(i) * gap
		t.Packets = append(t.Packets, Packet{
			Seq: int64(i), Size: sz, SendTime: send, RecvTime: send + delay,
		})
	}
	return t
}

func TestValidate(t *testing.T) {
	tr := mkTrace(10, 1500, sim.Millisecond, 20*sim.Millisecond)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := mkTrace(3, 1500, sim.Millisecond, sim.Millisecond)
	bad.Packets[2].Seq = bad.Packets[1].Seq
	if bad.Validate() == nil {
		t.Error("duplicate seq accepted")
	}
	bad2 := mkTrace(3, 1500, sim.Millisecond, sim.Millisecond)
	bad2.Packets[1].RecvTime = bad2.Packets[1].SendTime - 1
	if bad2.Validate() == nil {
		t.Error("recv before send accepted")
	}
	bad3 := mkTrace(2, 1500, sim.Millisecond, sim.Millisecond)
	bad3.Packets[0].Size = 0
	if bad3.Validate() == nil {
		t.Error("zero size accepted")
	}
}

func TestDurationAndThroughput(t *testing.T) {
	// 100 packets of 1250 bytes sent 10ms apart, delay 20ms.
	tr := mkTrace(100, 1250, 10*sim.Millisecond, 20*sim.Millisecond)
	wantDur := 99*10*sim.Millisecond + 20*sim.Millisecond
	if tr.Duration() != wantDur {
		t.Errorf("Duration = %v, want %v", tr.Duration(), wantDur)
	}
	// 125000 bytes over 1.01s ≈ 990099 bps.
	tput := tr.Throughput()
	want := float64(100*1250*8) / wantDur.Seconds()
	if math.Abs(tput-want) > 1 {
		t.Errorf("Throughput = %v, want %v", tput, want)
	}
}

func TestLossRate(t *testing.T) {
	tr := mkTrace(10, 1500, sim.Millisecond, sim.Millisecond)
	tr.Packets[3].Lost = true
	tr.Packets[7].Lost = true
	if got := tr.LossRate(); got != 0.2 {
		t.Errorf("LossRate = %v, want 0.2", got)
	}
	empty := &Trace{}
	if empty.LossRate() != 0 {
		t.Error("empty trace loss rate should be 0")
	}
}

func TestDelayPercentile(t *testing.T) {
	tr := &Trace{}
	// Delays 1..100 ms.
	for i := 0; i < 100; i++ {
		tr.Packets = append(tr.Packets, Packet{
			Seq: int64(i), Size: 100,
			SendTime: sim.Time(i) * sim.Millisecond,
			RecvTime: sim.Time(i)*sim.Millisecond + sim.Time(i+1)*sim.Millisecond,
		})
	}
	if p50 := tr.DelayPercentile(50); math.Abs(p50-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", p50)
	}
	if p95 := tr.DelayPercentile(95); math.Abs(p95-95.05) > 0.2 {
		t.Errorf("p95 = %v, want ≈95", p95)
	}
	if p0 := tr.DelayPercentile(0); p0 != 1 {
		t.Errorf("p0 = %v, want 1", p0)
	}
	if p100 := tr.DelayPercentile(100); p100 != 100 {
		t.Errorf("p100 = %v, want 100", p100)
	}
	empty := &Trace{}
	if !math.IsNaN(empty.DelayPercentile(50)) {
		t.Error("empty trace percentile should be NaN")
	}
}

func TestReordering(t *testing.T) {
	tr := mkTrace(5, 1000, 10*sim.Millisecond, 20*sim.Millisecond)
	// Make packet 2 arrive after packet 3 was sent but before 3 arrives? No:
	// reorder = packet 3 (seq 3) arrives before packet 2.
	tr.Packets[2].RecvTime = tr.Packets[3].RecvTime + 5*sim.Millisecond // seq 2 arrives late
	flags := tr.ReorderedFlags()
	// Packet with seq 3 arrives at 50ms; packet seq 2 at 55ms... wait: flags
	// mark packets whose recv < running max. Seq 2 recv=55, seq3 recv=50 < 55 → seq 3 flagged.
	if !flags[3] {
		t.Errorf("expected seq-3 packet flagged as reordered, flags=%v", flags)
	}
	if got := tr.ReorderingRate(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("ReorderingRate = %v, want 0.2", got)
	}
	// Inter-arrival in seq order contains one negative value.
	ia := tr.InterArrivalsBySeq()
	neg := 0
	for _, v := range ia {
		if v < 0 {
			neg++
		}
	}
	if neg != 1 {
		t.Errorf("want exactly 1 negative inter-arrival, got %d (%v)", neg, ia)
	}
}

func TestReorderingRateWindows(t *testing.T) {
	tr := mkTrace(2000, 1000, sim.Millisecond, 10*sim.Millisecond)
	rates := tr.ReorderingRateWindows(sim.Second)
	if len(rates) < 2 {
		t.Fatalf("want ≥2 windows, got %d", len(rates))
	}
	for _, r := range rates {
		if r != 0 {
			t.Errorf("in-order trace has nonzero window reordering rate %v", r)
		}
	}
	// Swap two arrivals in the second window.
	tr.Packets[1500].RecvTime, tr.Packets[1501].RecvTime = tr.Packets[1501].RecvTime, tr.Packets[1500].RecvTime
	rates = tr.ReorderingRateWindows(sim.Second)
	nz := 0
	for _, r := range rates {
		if r > 0 {
			nz++
		}
	}
	if nz != 1 {
		t.Errorf("want exactly one window with reordering, got %d", nz)
	}
}

func TestSendRecvRateSeries(t *testing.T) {
	// 1250-byte packets every 10ms → 1 Mbps steady.
	tr := mkTrace(500, 1250, 10*sim.Millisecond, 20*sim.Millisecond)
	s := tr.SendRateSeries(sim.Second)
	if s.Len() < 5 {
		t.Fatalf("series too short: %d", s.Len())
	}
	// Interior windows should be 1 Mbps.
	if got := s.Vals[2]; math.Abs(got-1e6) > 1e5 {
		t.Errorf("send rate window = %v, want ≈1e6", got)
	}
	r := tr.RecvRateSeries(sim.Second)
	if got := r.Vals[2]; math.Abs(got-1e6) > 1e5 {
		t.Errorf("recv rate window = %v, want ≈1e6", got)
	}
}

func TestDelaySeriesCarriesForward(t *testing.T) {
	tr := &Trace{}
	tr.Packets = append(tr.Packets,
		Packet{Seq: 0, Size: 100, SendTime: 0, RecvTime: 30 * sim.Millisecond},
		// Gap: nothing sent between 0.1s and 2.9s.
		Packet{Seq: 1, Size: 100, SendTime: 3 * sim.Second, RecvTime: 3*sim.Second + 60*sim.Millisecond},
	)
	s := tr.DelaySeries(sim.Second)
	if s.Vals[0] != 30 {
		t.Errorf("window 0 delay = %v, want 30", s.Vals[0])
	}
	if s.Vals[1] != 30 || s.Vals[2] != 30 {
		t.Errorf("empty windows should carry forward: %v", s.Vals)
	}
	if s.Vals[3] != 60 {
		t.Errorf("window 3 delay = %v, want 60", s.Vals[3])
	}
}

func TestPeakRecvRate(t *testing.T) {
	// Burst: 100 × 1250B packets arriving 1ms apart = 10 Mbps for 0.1s,
	// then silence. Peak over 100ms sliding windows should be ≈10 Mbps... but
	// over 1s windows only ≈1 Mbps.
	tr := &Trace{}
	for i := 0; i < 100; i++ {
		tr.Packets = append(tr.Packets, Packet{
			Seq: int64(i), Size: 1250,
			SendTime: sim.Time(i) * sim.Millisecond,
			RecvTime: sim.Time(i)*sim.Millisecond + 10*sim.Millisecond,
		})
	}
	p100 := tr.PeakRecvRate(100 * sim.Millisecond)
	if math.Abs(p100-10e6) > 1.5e6 {
		t.Errorf("peak over 100ms = %v, want ≈10e6", p100)
	}
	p1s := tr.PeakRecvRate(sim.Second)
	if p1s > 2e6 {
		t.Errorf("peak over 1s = %v, want ≈1e6", p1s)
	}
}

func TestMinMaxDelay(t *testing.T) {
	tr := mkTrace(10, 100, sim.Millisecond, 20*sim.Millisecond)
	tr.Packets[5].RecvTime = tr.Packets[5].SendTime + 80*sim.Millisecond
	mn, ok := tr.MinDelay()
	if !ok || mn != 20*sim.Millisecond {
		t.Errorf("MinDelay = %v,%v want 20ms,true", mn, ok)
	}
	mx, ok := tr.MaxDelay()
	if !ok || mx != 80*sim.Millisecond {
		t.Errorf("MaxDelay = %v,%v want 80ms,true", mx, ok)
	}
	empty := &Trace{}
	if _, ok := empty.MinDelay(); ok {
		t.Error("empty trace MinDelay ok=true")
	}
}

func TestSeriesIndexAndAt(t *testing.T) {
	s := NewSeries(sim.Second, 100*sim.Millisecond, 10)
	for i := range s.Vals {
		s.Vals[i] = float64(i)
	}
	if i, ok := s.Index(1500 * sim.Millisecond); !ok || i != 5 {
		t.Errorf("Index(1.5s) = %d,%v want 5,true", i, ok)
	}
	if v := s.At(500 * sim.Millisecond); v != 0 {
		t.Errorf("At before start = %v, want clamp to 0", v)
	}
	if v := s.At(10 * sim.Second); v != 9 {
		t.Errorf("At past end = %v, want clamp to 9", v)
	}
	if s.TimeAt(3) != 1300*sim.Millisecond {
		t.Errorf("TimeAt(3) = %v", s.TimeAt(3))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := mkTrace(50, 1500, sim.Millisecond, 15*sim.Millisecond)
	tr.Packets[10].Lost = true
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != len(tr.Packets) || got.Protocol != tr.Protocol {
		t.Fatal("round trip mismatch")
	}
	if !got.Packets[10].Lost {
		t.Error("lost flag dropped in round trip")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mkTrace(50, 1500, sim.Millisecond, 15*sim.Millisecond)
	tr.Packets[7].Lost = true
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != "test" || got.PathID != "p0" {
		t.Errorf("metadata lost: %q %q", got.Protocol, got.PathID)
	}
	if len(got.Packets) != 50 {
		t.Fatalf("want 50 packets, got %d", len(got.Packets))
	}
	for i := range got.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d mismatch: %+v vs %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("seq,size,send_ns,recv_ns,lost\n1,2,3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("x,y,z,w,v\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	prop := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tr := &Trace{}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			v = math.Mod(v, 1e6)
			d := sim.Time(math.Abs(v)*1e6) + 1
			tr.Packets = append(tr.Packets, Packet{
				Seq: int64(i), Size: 100,
				SendTime: sim.Time(i) * sim.Millisecond,
				RecvTime: sim.Time(i)*sim.Millisecond + d,
			})
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := tr.DelayPercentile(p1), tr.DelayPercentile(p2)
		lo, hi := tr.DelayPercentile(0), tr.DelayPercentile(100)
		return v1 <= v2+1e-12 && v1 >= lo-1e-12 && v2 <= hi+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: rate series conserves bytes — the sum over windows of
// rate*window equals total bytes sent (within float tolerance).
func TestRateSeriesConservesBytes(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		tr := &Trace{}
		total := 0
		for i, sz := range sizes {
			size := int(sz%1400) + 100
			total += size
			send := sim.Time(i) * 7 * sim.Millisecond
			tr.Packets = append(tr.Packets, Packet{
				Seq: int64(i), Size: size, SendTime: send, RecvTime: send + 5*sim.Millisecond,
			})
		}
		s := tr.SendRateSeries(100 * sim.Millisecond)
		sum := 0.0
		for _, v := range s.Vals {
			sum += v * 0.1 / 8
		}
		return math.Abs(sum-float64(total)) < 1e-6*float64(total)+1e-3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
