package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV trace parser never panics and that anything
// it accepts satisfies the trace invariants.
func FuzzReadCSV(f *testing.F) {
	var good bytes.Buffer
	tr := mkTrace(5, 100, 1000, 500)
	tr.WriteCSV(&good)
	f.Add(good.String())
	f.Add("")
	f.Add("seq,size,send_ns,recv_ns,lost\n1,2,3\n")
	f.Add("# protocol=x path=y\n0,100,0,50,0\n")
	f.Add("0,100,0,50,2\n0,100,-5,50,0\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
	})
}

// FuzzReadJSON does the same for the JSON form.
func FuzzReadJSON(f *testing.F) {
	var good bytes.Buffer
	mkTrace(3, 100, 1000, 500).WriteJSON(&good)
	f.Add(good.String())
	f.Add("{}")
	f.Add(`{"packets":[{"seq":0,"size":1,"send":0,"recv":0}]}`)
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", err)
		}
	})
}
