package trace

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

func TestJitterConstantDelay(t *testing.T) {
	tr := mkTrace(100, 1000, sim.Millisecond, 20*sim.Millisecond)
	if j := tr.Jitter(); j != 0 {
		t.Errorf("constant-delay jitter = %v, want 0", j)
	}
}

func TestJitterAlternatingDelay(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 200; i++ {
		d := 20 * sim.Millisecond
		if i%2 == 1 {
			d = 30 * sim.Millisecond
		}
		send := sim.Time(i) * sim.Millisecond
		tr.Packets = append(tr.Packets, Packet{Seq: int64(i), Size: 100, SendTime: send, RecvTime: send + d})
	}
	// |D| = 10ms every step; the filter converges to 10.
	if j := tr.Jitter(); math.Abs(j-10) > 0.5 {
		t.Errorf("alternating jitter = %v, want ≈10", j)
	}
}

func TestJitterShortTrace(t *testing.T) {
	tr := mkTrace(1, 100, sim.Millisecond, sim.Millisecond)
	if tr.Jitter() != 0 {
		t.Error("single-packet jitter should be 0")
	}
}

func TestDelayAutocorrelation(t *testing.T) {
	// Slowly varying (sine) delay: high lag-1 autocorrelation.
	smooth := &Trace{}
	for i := 0; i < 3000; i++ {
		send := sim.Time(i) * 10 * sim.Millisecond
		d := 50 + 30*math.Sin(2*math.Pi*float64(i)/1000)
		smooth.Packets = append(smooth.Packets, Packet{
			Seq: int64(i), Size: 100, SendTime: send,
			RecvTime: send + sim.Time(d*float64(sim.Millisecond)),
		})
	}
	if ac := smooth.DelayAutocorrelation(100*sim.Millisecond, 1); ac < 0.9 {
		t.Errorf("smooth-delay lag-1 autocorr = %v, want ≥ 0.9", ac)
	}
	// Alternating per-window delay: strong negative lag-1 autocorrelation.
	noisy := &Trace{}
	for i := 0; i < 3000; i++ {
		send := sim.Time(i) * 10 * sim.Millisecond
		d := 30.0
		if (i/10)%2 == 0 { // alternates every 100ms window
			d = 80.0
		}
		noisy.Packets = append(noisy.Packets, Packet{
			Seq: int64(i), Size: 100, SendTime: send,
			RecvTime: send + sim.Time(d*float64(sim.Millisecond)),
		})
	}
	if ac := noisy.DelayAutocorrelation(100*sim.Millisecond, 1); ac > -0.5 {
		t.Errorf("alternating-delay lag-1 autocorr = %v, want ≤ -0.5", ac)
	}
}

func TestAutocorrEdgeCases(t *testing.T) {
	if autocorr(nil, 1) != 0 {
		t.Error("nil autocorr")
	}
	if autocorr([]float64{1, 2}, 5) != 0 {
		t.Error("lag beyond length")
	}
	if autocorr([]float64{3, 3, 3, 3}, 1) != 0 {
		t.Error("constant series autocorr should be 0")
	}
}

func TestBurstiness(t *testing.T) {
	// Perfectly paced arrivals: CV ≈ 0.
	paced := mkTrace(500, 100, 10*sim.Millisecond, 20*sim.Millisecond)
	if b := paced.Burstiness(); b > 0.01 {
		t.Errorf("paced burstiness = %v, want ≈0", b)
	}
	// Clumped arrivals: groups of 10 packets arriving together, long gaps
	// between groups — CV well above 1.
	bursty := &Trace{}
	seq := int64(0)
	for g := 0; g < 50; g++ {
		base := sim.Time(g) * sim.Second
		for i := 0; i < 10; i++ {
			at := base + sim.Time(i)*100*sim.Microsecond
			bursty.Packets = append(bursty.Packets, Packet{
				Seq: seq, Size: 100, SendTime: at, RecvTime: at + 10*sim.Millisecond,
			})
			seq++
		}
	}
	if b := bursty.Burstiness(); b < 2 {
		t.Errorf("bursty CV = %v, want ≥ 2", b)
	}
}

func TestLossRuns(t *testing.T) {
	tr := mkTrace(20, 100, sim.Millisecond, sim.Millisecond)
	// Losses at 3; 7,8,9; 19.
	for _, i := range []int{3, 7, 8, 9, 19} {
		tr.Packets[i].Lost = true
	}
	runs := tr.LossRuns()
	if runs[1] != 2 || runs[3] != 1 {
		t.Errorf("loss runs = %v, want map[1:2 3:1]", runs)
	}
	clean := mkTrace(5, 100, sim.Millisecond, sim.Millisecond)
	if len(clean.LossRuns()) != 0 {
		t.Error("lossless trace has runs")
	}
}
