package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ibox/internal/sim"
)

// WriteJSON encodes the trace as a single JSON object.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadJSON decodes a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// SaveJSON writes the trace to a file.
func (t *Trace) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := t.WriteJSON(w); err != nil {
		return err
	}
	return w.Flush()
}

// LoadJSON reads a trace from a file.
func LoadJSON(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(bufio.NewReader(f))
}

// WriteCSV writes the trace in a simple line format compatible with
// spreadsheet tools: header then seq,size,send_ns,recv_ns,lost.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# protocol=%s path=%s\n", t.Protocol, t.PathID); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "seq,size,send_ns,recv_ns,lost"); err != nil {
		return err
	}
	for _, p := range t.Packets {
		lost := 0
		if p.Lost {
			lost = 1
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d\n", p.Seq, p.Size, int64(p.SendTime), int64(p.RecvTime), lost); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, kv := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if k, v, ok := strings.Cut(kv, "="); ok {
					switch k {
					case "protocol":
						t.Protocol = v
					case "path":
						t.PathID = v
					}
				}
			}
			continue
		}
		if strings.HasPrefix(line, "seq,") {
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: csv line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		var p Packet
		var err error
		if p.Seq, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: csv line %d seq: %w", lineNo, err)
		}
		if p.Size, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: csv line %d size: %w", lineNo, err)
		}
		send, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d send: %w", lineNo, err)
		}
		recv, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d recv: %w", lineNo, err)
		}
		lost, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d lost: %w", lineNo, err)
		}
		p.SendTime, p.RecvTime, p.Lost = sim.Time(send), sim.Time(recv), lost != 0
		t.Packets = append(t.Packets, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
