package trace

import (
	"fmt"
	"math"

	"ibox/internal/sim"
)

// Series is a regularly sampled time series: Values[i] is the value of the
// window beginning at Start + i*Step. It is the common currency between
// trace analysis, cross-traffic estimation, and the iBoxML feature pipeline.
type Series struct {
	Start sim.Time
	Step  sim.Time
	Vals  []float64
}

// NewSeries allocates a zero-valued series with n windows.
func NewSeries(start, step sim.Time, n int) *Series {
	return &Series{Start: start, Step: step, Vals: make([]float64, n)}
}

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Vals) }

// TimeAt returns the start time of window i.
func (s *Series) TimeAt(i int) sim.Time { return s.Start + sim.Time(i)*s.Step }

// Index returns the window index containing time t, clamped to the valid
// range; ok is false when t falls outside the series entirely.
func (s *Series) Index(t sim.Time) (i int, ok bool) {
	if s.Step <= 0 || len(s.Vals) == 0 {
		return 0, false
	}
	i = int((t - s.Start) / s.Step)
	if t < s.Start {
		return 0, false
	}
	if i >= len(s.Vals) {
		return len(s.Vals) - 1, false
	}
	return i, true
}

// At returns the value of the window containing time t. Times before the
// series clamp to the first window and times after to the last.
func (s *Series) At(t sim.Time) float64 {
	i, _ := s.Index(t)
	return s.Vals[i]
}

// Mean returns the arithmetic mean of the values (NaN for empty).
func (s *Series) Mean() float64 {
	if len(s.Vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Vals {
		sum += v
	}
	return sum / float64(len(s.Vals))
}

// Max returns the maximum value (NaN for empty).
func (s *Series) Max() float64 {
	if len(s.Vals) == 0 {
		return math.NaN()
	}
	m := s.Vals[0]
	for _, v := range s.Vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String summarizes the series for debugging.
func (s *Series) String() string {
	return fmt.Sprintf("Series{start=%v step=%v n=%d mean=%.3g}", s.Start, s.Step, len(s.Vals), s.Mean())
}

// numWindows returns how many windows of the given step cover [start, end].
func numWindows(start, end, step sim.Time) int {
	if end <= start || step <= 0 {
		return 0
	}
	return int((end-start+step-1)/step) + 1
}

// SendRateSeries returns the sender's offered rate in bits per second per
// window: bytes sent during each window × 8 ÷ window length.
func (t *Trace) SendRateSeries(step sim.Time) *Series {
	if len(t.Packets) == 0 {
		return NewSeries(0, step, 0)
	}
	start := t.Packets[0].SendTime
	end := start + t.Duration()
	s := NewSeries(start, step, numWindows(start, end, step))
	for _, p := range t.Packets {
		if i, ok := s.Index(p.SendTime); ok {
			s.Vals[i] += float64(p.Size)
		}
	}
	scale := 8 / step.Seconds()
	for i := range s.Vals {
		s.Vals[i] *= scale
	}
	return s
}

// RecvRateSeries returns the receiver's delivered rate in bits per second
// per window.
func (t *Trace) RecvRateSeries(step sim.Time) *Series {
	if len(t.Packets) == 0 {
		return NewSeries(0, step, 0)
	}
	start := t.Packets[0].SendTime
	end := start + t.Duration()
	s := NewSeries(start, step, numWindows(start, end, step))
	for _, p := range t.Packets {
		if p.Lost {
			continue
		}
		if i, ok := s.Index(p.RecvTime); ok {
			s.Vals[i] += float64(p.Size)
		}
	}
	scale := 8 / step.Seconds()
	for i := range s.Vals {
		s.Vals[i] *= scale
	}
	return s
}

// DelaySeries returns the mean delivered one-way delay in milliseconds per
// window (indexed by send time). Windows with no delivered packets carry
// the previous window's value forward, so the series is defined everywhere.
func (t *Trace) DelaySeries(step sim.Time) *Series {
	if len(t.Packets) == 0 {
		return NewSeries(0, step, 0)
	}
	start := t.Packets[0].SendTime
	end := start + t.Duration()
	s := NewSeries(start, step, numWindows(start, end, step))
	counts := make([]int, len(s.Vals))
	for _, p := range t.Packets {
		if p.Lost {
			continue
		}
		if i, ok := s.Index(p.SendTime); ok {
			s.Vals[i] += p.Delay().Millis()
			counts[i]++
		}
	}
	last := 0.0
	for i := range s.Vals {
		if counts[i] > 0 {
			s.Vals[i] /= float64(counts[i])
			last = s.Vals[i]
		} else {
			s.Vals[i] = last
		}
	}
	return s
}

// PeakRecvRate returns the peak delivered rate in bits per second over
// sliding windows of the given width, computed at packet-arrival
// granularity. This is the paper's bottleneck-bandwidth estimator input
// (§3: "the peak receiving rate, over 1s sliding windows").
func (t *Trace) PeakRecvRate(window sim.Time) float64 {
	del := t.Delivered()
	if len(del) == 0 || window <= 0 {
		return 0
	}
	// Sort arrivals by receive time; a true sliding window over arrivals.
	arr := make([]Packet, len(del))
	copy(arr, del)
	for i := 1; i < len(arr); i++ {
		for j := i; j > 0 && arr[j].RecvTime < arr[j-1].RecvTime; j-- {
			arr[j], arr[j-1] = arr[j-1], arr[j]
		}
	}
	best := 0.0
	lo := 0
	bytes := 0
	for hi := 0; hi < len(arr); hi++ {
		bytes += arr[hi].Size
		for arr[hi].RecvTime-arr[lo].RecvTime > window {
			bytes -= arr[lo].Size
			lo++
		}
		if r := float64(bytes) * 8 / window.Seconds(); r > best {
			best = r
		}
	}
	return best
}

// MinDelay returns the minimum delivered one-way delay (the paper's
// propagation-delay estimator) and MaxDelay the maximum. Both return
// (0, false) when nothing was delivered.
func (t *Trace) MinDelay() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, p := range t.Packets {
		if p.Lost {
			continue
		}
		if !found || p.Delay() < best {
			best = p.Delay()
			found = true
		}
	}
	return best, found
}

// MaxDelay returns the maximum delivered one-way delay.
func (t *Trace) MaxDelay() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, p := range t.Packets {
		if p.Lost {
			continue
		}
		if !found || p.Delay() > best {
			best = p.Delay()
			found = true
		}
	}
	return best, found
}
