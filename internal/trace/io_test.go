package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"ibox/internal/sim"
)

func TestSaveLoadJSONFile(t *testing.T) {
	tr := mkTrace(20, 1000, sim.Millisecond, 10*sim.Millisecond)
	tr.Protocol = "cubic"
	path := filepath.Join(t.TempDir(), "t.json")
	if err := tr.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Protocol != "cubic" || len(got.Packets) != 20 {
		t.Errorf("round trip: %q %d", got.Protocol, len(got.Packets))
	}
	if _, err := LoadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Structurally valid JSON but semantically invalid trace.
	bad := `{"protocol":"x","path_id":"y","packets":[
		{"seq":1,"size":100,"send":0,"recv":10},
		{"seq":1,"size":100,"send":5,"recv":15}]}`
	if _, err := ReadJSON(bytes.NewBufferString(bad)); err == nil {
		t.Error("duplicate seq accepted")
	}
}

func TestReadCSVValidatesSemantics(t *testing.T) {
	// recv < send must be rejected by the Validate pass.
	csv := "seq,size,send_ns,recv_ns,lost\n0,100,1000,500,0\n"
	if _, err := ReadCSV(bytes.NewBufferString(csv)); err == nil {
		t.Error("recv<send accepted")
	}
}

func TestTraceStart(t *testing.T) {
	tr := mkTrace(3, 100, sim.Millisecond, sim.Millisecond)
	tr.Packets[0].SendTime = 7 * sim.Millisecond
	tr.Packets[1].SendTime = 8 * sim.Millisecond
	tr.Packets[2].SendTime = 9 * sim.Millisecond
	tr.Packets[0].RecvTime = 8 * sim.Millisecond
	tr.Packets[1].RecvTime = 9 * sim.Millisecond
	tr.Packets[2].RecvTime = 10 * sim.Millisecond
	start, err := tr.Start()
	if err != nil || start != 7*sim.Millisecond {
		t.Errorf("Start = %v, %v", start, err)
	}
	if _, err := (&Trace{}).Start(); err == nil {
		t.Error("empty trace Start accepted")
	}
}

func TestSeriesString(t *testing.T) {
	s := NewSeries(0, sim.Second, 3)
	s.Vals = []float64{1, 2, 3}
	if out := s.String(); out == "" {
		t.Error("empty Series.String")
	}
	if m := s.Max(); m != 3 {
		t.Errorf("Max = %v", m)
	}
	empty := NewSeries(0, sim.Second, 0)
	if !isNaN(empty.Max()) || !isNaN(empty.Mean()) {
		t.Error("empty series Max/Mean should be NaN")
	}
}

func isNaN(f float64) bool { return f != f }

func TestMergeMixedProtocols(t *testing.T) {
	a := mkTrace(3, 100, sim.Millisecond, sim.Millisecond)
	a.Protocol = "cubic"
	b := mkTrace(3, 100, sim.Millisecond, sim.Millisecond)
	b.Protocol = "vegas"
	m, err := Merge([]*Trace{a, b, nil})
	if err != nil {
		t.Fatal(err)
	}
	if m.Protocol != "mixed" {
		t.Errorf("protocol = %q, want mixed", m.Protocol)
	}
}
