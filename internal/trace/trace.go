// Package trace defines the input–output packet trace representation that
// iBox learns from, together with the derived time series and summary
// metrics used throughout the paper's evaluation.
//
// A Trace records, for every packet a sender injected into a network path,
// when it was sent, whether it was delivered, and when it arrived at the
// receiver. As §2 of the paper observes, this single formulation captures
// queue buildup (increasing delay), packet loss (infinite delay), and
// reordering (a drop in delay between successive packets).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ibox/internal/sim"
)

// Packet is one sender-to-receiver packet record.
type Packet struct {
	Seq      int64    `json:"seq"`
	Size     int      `json:"size"` // bytes, including headers
	SendTime sim.Time `json:"send"` // sender timestamp
	RecvTime sim.Time `json:"recv"` // receiver timestamp; meaningless if Lost
	Lost     bool     `json:"lost,omitempty"`
}

// Delay returns the one-way delay experienced by a delivered packet.
func (p Packet) Delay() sim.Time { return p.RecvTime - p.SendTime }

// Trace is the input–output record of one flow over one network path.
// Packets are ordered by send time (and therefore by Seq).
type Trace struct {
	Protocol string   `json:"protocol"` // e.g. "cubic", "vegas"
	PathID   string   `json:"path_id"`  // e.g. "india-cellular-3"
	Packets  []Packet `json:"packets"`
}

// Validate checks the structural invariants of a trace: sequence numbers
// strictly increasing, send times non-decreasing, and every delivered
// packet's receive time at or after its send time.
func (t *Trace) Validate() error {
	for i, p := range t.Packets {
		if p.Size <= 0 {
			return fmt.Errorf("trace: packet %d has non-positive size %d", i, p.Size)
		}
		if p.SendTime < 0 {
			return fmt.Errorf("trace: packet %d has negative send time", i)
		}
		if !p.Lost && p.RecvTime < p.SendTime {
			return fmt.Errorf("trace: packet %d received before sent", i)
		}
		if i > 0 {
			if p.Seq <= t.Packets[i-1].Seq {
				return fmt.Errorf("trace: packet %d seq %d not increasing", i, p.Seq)
			}
			if p.SendTime < t.Packets[i-1].SendTime {
				return fmt.Errorf("trace: packet %d sent before predecessor", i)
			}
		}
	}
	return nil
}

// Duration is the span from the first send to the latest of the last send
// or last delivery. An empty trace has zero duration.
func (t *Trace) Duration() sim.Time {
	if len(t.Packets) == 0 {
		return 0
	}
	start := t.Packets[0].SendTime
	end := t.Packets[len(t.Packets)-1].SendTime
	for _, p := range t.Packets {
		if !p.Lost && p.RecvTime > end {
			end = p.RecvTime
		}
	}
	return end - start
}

// Delivered returns the delivered packets in send (sequence) order.
func (t *Trace) Delivered() []Packet {
	out := make([]Packet, 0, len(t.Packets))
	for _, p := range t.Packets {
		if !p.Lost {
			out = append(out, p)
		}
	}
	return out
}

// LossRate is the fraction of sent packets that were lost, in [0, 1].
func (t *Trace) LossRate() float64 {
	if len(t.Packets) == 0 {
		return 0
	}
	lost := 0
	for _, p := range t.Packets {
		if p.Lost {
			lost++
		}
	}
	return float64(lost) / float64(len(t.Packets))
}

// Throughput is the delivered goodput in bits per second over the trace
// duration.
func (t *Trace) Throughput() float64 {
	d := t.Duration()
	if d <= 0 {
		return 0
	}
	bytes := 0
	for _, p := range t.Packets {
		if !p.Lost {
			bytes += p.Size
		}
	}
	return float64(bytes) * 8 / d.Seconds()
}

// Delays returns the one-way delays of delivered packets, in milliseconds,
// in send order.
func (t *Trace) Delays() []float64 {
	var out []float64
	for _, p := range t.Packets {
		if !p.Lost {
			out = append(out, p.Delay().Millis())
		}
	}
	return out
}

// DelayPercentile returns the p-th percentile (p in [0,100]) of delivered
// one-way delay in milliseconds, or NaN if nothing was delivered.
func (t *Trace) DelayPercentile(p float64) float64 {
	d := t.Delays()
	if len(d) == 0 {
		return math.NaN()
	}
	sort.Float64s(d)
	return percentileSorted(d, p)
}

// percentileSorted computes the p-th percentile of a sorted slice using
// linear interpolation between closest ranks.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// InterArrivalsBySeq returns, for consecutive delivered packets in sequence
// order, the receiver inter-arrival times in milliseconds. Negative values
// indicate reordering: a later-sequenced packet arrived earlier (§5.1's
// SAX symbol 'a').
func (t *Trace) InterArrivalsBySeq() []float64 {
	del := t.Delivered()
	if len(del) < 2 {
		return nil
	}
	out := make([]float64, 0, len(del)-1)
	for i := 1; i < len(del); i++ {
		out = append(out, (del[i].RecvTime - del[i-1].RecvTime).Millis())
	}
	return out
}

// ReorderedFlags reports, for each delivered packet in sequence order,
// whether it arrived before some earlier-sequenced delivered packet
// (i.e. its receive time is below the running maximum).
func (t *Trace) ReorderedFlags() []bool {
	del := t.Delivered()
	flags := make([]bool, len(del))
	var maxRecv sim.Time = -1
	for i, p := range del {
		if i > 0 && p.RecvTime < maxRecv {
			flags[i] = true
		}
		if p.RecvTime > maxRecv {
			maxRecv = p.RecvTime
		}
	}
	return flags
}

// ReorderingRate is the overall fraction of delivered packets that arrived
// out of order.
func (t *Trace) ReorderingRate() float64 {
	flags := t.ReorderedFlags()
	if len(flags) == 0 {
		return 0
	}
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return float64(n) / float64(len(flags))
}

// ReorderingRateWindows computes the per-window reordering rate (reordered
// delivered packets ÷ delivered packets) over fixed windows of the given
// width, as in Fig 5's "reordering rate over 1-sec windows". Windows with
// no delivered packets are skipped.
func (t *Trace) ReorderingRateWindows(window sim.Time) []float64 {
	del := t.Delivered()
	flags := t.ReorderedFlags()
	if len(del) == 0 || window <= 0 {
		return nil
	}
	start := t.Packets[0].SendTime
	counts := map[int]int{}
	reord := map[int]int{}
	maxIdx := 0
	for i, p := range del {
		w := int((p.RecvTime - start) / window)
		if w < 0 {
			w = 0
		}
		counts[w]++
		if flags[i] {
			reord[w]++
		}
		if w > maxIdx {
			maxIdx = w
		}
	}
	var rates []float64
	for w := 0; w <= maxIdx; w++ {
		if counts[w] > 0 {
			rates = append(rates, float64(reord[w])/float64(counts[w]))
		}
	}
	return rates
}

var errEmptyTrace = errors.New("trace: empty trace")

// Start returns the first send time, or an error for an empty trace.
func (t *Trace) Start() (sim.Time, error) {
	if len(t.Packets) == 0 {
		return 0, errEmptyTrace
	}
	return t.Packets[0].SendTime, nil
}
