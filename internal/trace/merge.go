package trace

import (
	"fmt"
	"sort"
)

// Merge combines several traces of concurrent flows over the same path
// into one aggregate trace, reassigning sequence numbers in send order.
//
// This is §6's estimator mitigation made concrete: "we aggregate data from
// multiple flows from around the same time between two nodes, which
// increases the likelihood of these assumptions being satisfied" — a
// single flow may never saturate the bottleneck (biasing the bandwidth
// estimate low) or never meet an empty queue (biasing the propagation
// estimate high), but the union of several flows' packets probes the path
// far more densely.
func Merge(traces []*Trace) (*Trace, error) {
	var all []Packet
	proto := ""
	pathID := ""
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		all = append(all, tr.Packets...)
		if proto == "" {
			proto = tr.Protocol
		} else if tr.Protocol != "" && tr.Protocol != proto {
			proto = "mixed"
		}
		if pathID == "" {
			pathID = tr.PathID
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].SendTime < all[j].SendTime })
	out := &Trace{Protocol: proto, PathID: pathID + "+merged"}
	for i := range all {
		p := all[i]
		p.Seq = int64(i)
		out.Packets = append(out.Packets, p)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: merged trace invalid: %w", err)
	}
	return out, nil
}
