package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/obs"
)

// Pool is a long-lived shared worker pool for engine-wide concurrency
// budgeting. Map/ForEach spin up goroutines per call, which is right for
// one-shot batch scripts; a long-running process instead owns ONE Pool
// sized to the machine and funnels every CPU-bound job through it, so
// concurrent requests — and any nested fan-outs they trigger — share a
// single concurrency budget instead of oversubscribing the cores. The
// serving path submits individual jobs with Do; the offline experiment
// drivers run whole fan-outs on the pool with PoolMap (reached through
// Options.Pool), whose help-first nested submission keeps recursive
// fan-outs deadlock-free (see PoolMap).
//
// Determinism note: a Pool schedules *independent* jobs; each job's
// result must depend only on its own inputs (the same contract as Map).
// Scheduling keeps byte-determinism because every simulation derives its
// randomness from an explicit seed fixed before dispatch, never from
// which goroutine ran the job or in what order.
type Pool struct {
	jobs    chan poolJob
	workers int

	// workerIDs maps each worker goroutine's runtime id to its state.
	// Populated before NewPool returns and never mutated afterwards, so
	// PoolMap's am-I-on-a-worker lookup is a lock-free map read.
	workerIDs map[uint64]*workerState

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	queued   *obs.Gauge     // jobs submitted but not yet picked up
	wait     *obs.Histogram // submit → pickup latency, ns
	jobsC    *obs.Counter   // jobs executed by workers
	busy     *obs.Histogram // per-job worker occupancy, ns (see PoolUtilization)
	maps     *obs.Counter   // PoolMap calls (deterministic in the workload)
	inlined  *obs.Counter   // items run inline by their own dispatcher
	depthMax *obs.Gauge     // deepest nested PoolMap observed
}

// workerState is scheduler state owned by exactly one worker goroutine:
// it is only ever read or written by the goroutine it belongs to (the
// worker sets depth around each job; a dispatcher running *on* that
// worker adjusts it around inline help).
type workerState struct {
	// depth is the PoolMap nesting depth of the frame the worker is
	// currently executing: 0 for a plain Do job, d for a sub-job
	// dispatched by a depth-d PoolMap.
	depth int
}

type poolJob struct {
	fn    func()
	enq   time.Time
	inst  bool
	depth int // PoolMap nesting depth of this job; 0 for Do jobs
}

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 [running]: …"). The same trick the net/http2 goroutine
// tracker uses; ~1 µs, paid once per PoolMap call (never per item).
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	id := uint64(0)
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// ErrPoolClosed is returned by Do after Close.
var ErrPoolClosed = errors.New("par: pool closed")

// NewPool starts a pool with the given number of workers (<=0 selects
// one). Close it when done.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{
		jobs:      make(chan poolJob),
		workers:   workers,
		workerIDs: make(map[uint64]*workerState, workers),
		done:      make(chan struct{}),
	}
	if r := obs.Get(); r != nil {
		r.Gauge("par.pool_workers").Set(float64(workers))
		p.queued = r.Gauge("par.pool_queue")
		p.wait = r.Histogram("par.pool_wait_ns")
		p.jobsC = r.Counter("par.pool_jobs")
		p.busy = r.Histogram(obs.MetricPoolBusyNs)
		p.maps = r.Counter("par.pool_maps")
		p.inlined = r.Counter("par.pool_inline")
		p.depthMax = r.Gauge("par.pool_depth_max")
	}
	// Workers register their goroutine ids before NewPool returns, so
	// workerIDs is immutable (and safely lock-free) from then on.
	var registered sync.WaitGroup
	registered.Add(workers)
	var regMu sync.Mutex
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			ws := &workerState{}
			regMu.Lock()
			p.workerIDs[goroutineID()] = ws
			regMu.Unlock()
			registered.Done()
			for {
				// jobs is unbuffered, so nothing can be stranded inside
				// the channel at shutdown: every submitted job is either
				// picked up here (and runs to completion) or its submitter
				// sees done and returns ErrPoolClosed.
				select {
				case j := <-p.jobs:
					if j.inst {
						p.wait.Observe(int64(time.Since(j.enq)))
						p.queued.Add(-1)
					}
					ws.depth = j.depth
					var t0 time.Time
					if p.busy != nil {
						t0 = time.Now()
					}
					j.fn()
					if p.busy != nil {
						p.busy.ObserveSince(t0)
					}
					ws.depth = 0
					if j.inst {
						p.jobsC.Add(1)
					}
				case <-p.done:
					return
				}
			}
		}()
	}
	registered.Wait()
	return p
}

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Do runs fn on a pool worker and waits for it to finish. If ctx expires
// while the job is still queued, Do returns ctx.Err() without running fn;
// if it expires while fn is running, Do returns ctx.Err() immediately but
// fn runs to completion on the worker (jobs are not preemptible — keep
// them short and check ctx inside long jobs).
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	inst := p.queued != nil
	var enq time.Time
	if inst {
		enq = time.Now()
		p.queued.Add(1)
	}
	ran := make(chan error, 1)
	j := poolJob{enq: enq, inst: inst, fn: func() {
		// The submitter may have given up (ctx expired after pickup);
		// the buffered channel lets the job finish regardless.
		ran <- fn()
	}}
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		if inst {
			p.queued.Add(-1)
		}
		return ctx.Err()
	case <-p.done:
		if inst {
			p.queued.Add(-1)
		}
		return ErrPoolClosed
	}
	select {
	case err := <-ran:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PoolMap applies fn to every index in [0, n) on the shared pool p, with
// exactly Map's contract: results land in input order (out[i] = fn(i)),
// a failure returns a nil slice and the error of the lowest failing
// index, and after a failure no new items are dispatched. It would be a
// method named Pool.Map if Go allowed generic methods; Options.Pool lets
// existing par.Map call sites route here without changing shape.
//
// Scheduling is help-first: execution rights belong exclusively to the
// pool's worker goroutines, so at most Workers() items run at any
// moment, no matter how deeply Maps nest.
//
//   - A caller that is NOT a pool worker first enters the pool (Do),
//     so its dispatch loop itself occupies a worker slot. It holds no
//     slot while waiting, so entry can always be granted.
//   - The dispatcher offers each item to the pool with a non-blocking
//     send on the unbuffered job channel. A successful send proves a
//     parked worker received the item and is running it right now —
//     nothing is ever queued — and when no worker is free the
//     dispatcher runs the item inline on its own goroutine (helping
//     first with its own work rather than blocking on a channel no one
//     may ever drain).
//
// Deadlock-freedom follows: blocking happens only (a) at pool entry,
// where the caller holds no worker, and (b) waiting for dispatched
// items, each of which is actively running on some worker; wait-for
// edges only point parent → child, and the nesting is finite. The
// budget follows from execution rights: there are exactly Workers()
// worker goroutines, each runs one frame at a time, and a parent paused
// inside a nested PoolMap is executing only through its inline child.
//
// Byte-determinism is Map's: out[i] depends only on fn(i), so whether an
// item ran inline, on worker 3, or after its siblings is unobservable in
// the results as long as items derive any randomness from their index
// before dispatch (the repository's seed-derivation rule).
func PoolMap[R any](p *Pool, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if p == nil {
		return Map(n, Options{}, fn)
	}
	if ws := p.workerIDs[goroutineID()]; ws != nil {
		// Already on a pool worker: dispatch directly, nested one deeper.
		return poolMapDispatch(p, ws, n, fn)
	}
	// External caller: enter the pool so the dispatch loop itself holds a
	// worker slot (the concurrency budget stays ≤ Workers()), then
	// dispatch from inside. Do returns ErrPoolClosed after Close.
	var out []R
	var err error
	if doErr := p.Do(context.Background(), func() error {
		out, err = poolMapDispatch(p, p.workerIDs[goroutineID()], n, fn)
		return nil
	}); doErr != nil {
		return nil, doErr
	}
	return out, err
}

// poolMapDispatch is PoolMap's dispatch loop. It always runs on a pool
// worker goroutine; ws is that worker's state.
func poolMapDispatch[R any](p *Pool, ws *workerState, n int, fn func(i int) (R, error)) ([]R, error) {
	depth := ws.depth + 1
	m := parMetrics(p.workers)
	instrumented := m.items != nil
	if instrumented {
		p.maps.Add(1)
		p.depthMax.SetMax(float64(depth))
		mapStart := time.Now()
		defer func() {
			m.capacity.Add(int64(time.Since(mapStart)) * int64(p.workers))
		}()
	}

	out := make([]R, n)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		failMu   sync.Mutex
		firstIdx int
		firstErr error
	)
	record := func(i int, err error) {
		logItemError(i, err)
		failed.Store(true)
		failMu.Lock()
		if firstErr == nil || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		failMu.Unlock()
	}
	runItem := func(i int) {
		var t0 time.Time
		if instrumented {
			t0 = time.Now()
		}
		r, err := fn(i)
		if instrumented {
			m.busy.ObserveSince(t0)
			m.items.Add(1)
		}
		if err != nil {
			record(i, err)
			return
		}
		out[i] = r
	}

	for i := 0; i < n; i++ {
		if failed.Load() {
			// Same stop rule as Map: dispatch is in input order, so every
			// index below the eventual lowest failure has already been
			// dispatched (or inlined) and runs to completion.
			break
		}
		wg.Add(1)
		j := poolJob{depth: depth, fn: func() { defer wg.Done(); runItem(i) }}
		if instrumented {
			j.inst, j.enq = true, time.Now()
			p.queued.Add(1)
		}
		select {
		case p.jobs <- j:
			// Rendezvous on the unbuffered channel: a parked worker has the
			// item and is running it now.
		default:
			// All workers saturated — help first: run the item here, at the
			// child depth, on this worker's own goroutine.
			wg.Done()
			if instrumented {
				p.queued.Add(-1)
				p.inlined.Add(1)
			}
			ws.depth = depth
			runItem(i)
			ws.depth = depth - 1
		}
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstErr
	}
	return out, nil
}

// Close stops accepting jobs and waits for in-flight ones to finish.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
}
