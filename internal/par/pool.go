package par

import (
	"context"
	"errors"
	"sync"
	"time"

	"ibox/internal/obs"
)

// Pool is a long-lived shared worker pool for engine-wide concurrency
// budgeting. Map/ForEach spin up goroutines per call, which is right for
// batch experiments; a serving process instead owns ONE Pool sized to the
// machine and funnels every CPU-bound job through it, so concurrent
// requests — and any nested fan-outs they trigger — share a single
// concurrency budget instead of oversubscribing the cores.
//
// Determinism note: a Pool schedules *independent* jobs; each job's
// result must depend only on its own inputs (the same contract as Map).
// Serving keeps byte-determinism because every simulation derives its
// randomness from the request's explicit seed, never from scheduling.
type Pool struct {
	jobs    chan poolJob
	workers int

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup

	queued *obs.Gauge     // jobs submitted but not yet picked up
	wait   *obs.Histogram // submit → pickup latency, ns
	jobsC  *obs.Counter   // jobs executed
}

type poolJob struct {
	fn   func()
	enq  time.Time
	inst bool
}

// ErrPoolClosed is returned by Do after Close.
var ErrPoolClosed = errors.New("par: pool closed")

// NewPool starts a pool with the given number of workers (<=0 selects
// one). Close it when done.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{
		jobs:    make(chan poolJob),
		workers: workers,
		done:    make(chan struct{}),
	}
	if r := obs.Get(); r != nil {
		r.Gauge("par.pool_workers").Set(float64(workers))
		p.queued = r.Gauge("par.pool_queue")
		p.wait = r.Histogram("par.pool_wait_ns")
		p.jobsC = r.Counter("par.pool_jobs")
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				// jobs is unbuffered, so nothing can be stranded inside
				// the channel at shutdown: every submitted job is either
				// picked up here (and runs to completion) or its submitter
				// sees done and returns ErrPoolClosed.
				select {
				case j := <-p.jobs:
					if j.inst {
						p.wait.Observe(int64(time.Since(j.enq)))
						p.queued.Add(-1)
					}
					j.fn()
					if j.inst {
						p.jobsC.Add(1)
					}
				case <-p.done:
					return
				}
			}
		}()
	}
	return p
}

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Do runs fn on a pool worker and waits for it to finish. If ctx expires
// while the job is still queued, Do returns ctx.Err() without running fn;
// if it expires while fn is running, Do returns ctx.Err() immediately but
// fn runs to completion on the worker (jobs are not preemptible — keep
// them short and check ctx inside long jobs).
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	inst := p.queued != nil
	var enq time.Time
	if inst {
		enq = time.Now()
		p.queued.Add(1)
	}
	ran := make(chan error, 1)
	j := poolJob{enq: enq, inst: inst, fn: func() {
		// The submitter may have given up (ctx expired after pickup);
		// the buffered channel lets the job finish regardless.
		ran <- fn()
	}}
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		if inst {
			p.queued.Add(-1)
		}
		return ctx.Err()
	case <-p.done:
		if inst {
			p.queued.Add(-1)
		}
		return ErrPoolClosed
	}
	select {
	case err := <-ran:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops accepting jobs and waits for in-flight ones to finish.
// Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
}
