package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ibox/internal/sim"
)

// TestMapOrder verifies results land at their input index regardless of
// completion order (later items finish first via decreasing sleeps).
func TestMapOrder(t *testing.T) {
	n := 32
	out, err := Map(n, Options{Workers: 8}, func(i int) (int, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapSerialParallelIdentical is the package's core contract: with
// per-index derived seeds, serial and parallel runs are byte-identical.
func TestMapSerialParallelIdentical(t *testing.T) {
	work := func(i int) (float64, error) {
		// Seed derived from the index before dispatch — the repository's
		// seed-derivation rule.
		rng := sim.NewRand(42, int64(i))
		s := 0.0
		for k := 0; k < 100; k++ {
			s += rng.Float64()
		}
		return s, nil
	}
	serial, err := Map(64, Options{Serial: true}, work)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		parallel, err := Map(64, Options{Workers: w}, work)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, parallel[i], serial[i])
			}
		}
	}
}

// TestMapLowestIndexError verifies the error contract: the returned error
// is the one a serial loop would have stopped at.
func TestMapLowestIndexError(t *testing.T) {
	for _, opts := range []Options{{Serial: true}, {Workers: 4}, {Workers: 16}} {
		out, err := Map(40, opts, func(i int) (int, error) {
			if i == 7 || i == 23 {
				// The higher index fails faster; lowest must still win.
				if i == 7 {
					time.Sleep(20 * time.Millisecond)
				}
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i, nil
		})
		if out != nil {
			t.Errorf("opts=%+v: expected nil results on error", opts)
		}
		if err == nil || err.Error() != "item 7 failed" {
			t.Errorf("opts=%+v: err = %v, want item 7's", opts, err)
		}
	}
}

// TestMapBoundedConcurrency verifies the pool never exceeds Workers
// simultaneous calls.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(24, Options{Workers: workers}, func(i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds Workers=%d", p, workers)
	}
}

// TestForEach verifies index-disjoint writes and error propagation.
func TestForEach(t *testing.T) {
	out := make([]int, 50)
	if err := ForEach(50, Options{Workers: 5}, func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Errorf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
	sentinel := errors.New("boom")
	if err := ForEach(10, Options{Workers: 2}, func(i int) error {
		if i >= 4 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want %v", err, sentinel)
	}
}

// TestMapEmpty covers the degenerate sizes.
func TestMapEmpty(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("n=0: got (%v, %v), want (nil, nil)", out, err)
	}
	out, err = Map(1, Options{Workers: 8}, func(i int) (int, error) { return 9, nil })
	if err != nil || len(out) != 1 || out[0] != 9 {
		t.Errorf("n=1: got (%v, %v)", out, err)
	}
}

// TestWorkersFor pins the knob semantics.
func TestWorkersFor(t *testing.T) {
	if w := (Options{Serial: true, Workers: 16}).WorkersFor(100); w != 1 {
		t.Errorf("Serial: workers = %d, want 1", w)
	}
	if w := (Options{Workers: 4}).WorkersFor(2); w != 2 {
		t.Errorf("n<workers: workers = %d, want 2", w)
	}
	if w := (Options{Workers: -3}).WorkersFor(8); w < 1 {
		t.Errorf("negative Workers resolved to %d", w)
	}
}
