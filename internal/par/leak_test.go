package par

import (
	"os"
	"testing"

	"ibox/internal/leakcheck"
)

// TestMain fails the package if any pool worker or fan-out goroutine
// outlives the tests: every NewPool must be Closed, every Map must join
// its workers before returning.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m, "ibox/internal/par"))
}
