// Package par is the repository's deterministic fan-out primitive: a
// bounded worker pool that applies a function to every index of a work
// list and collects the results in input order.
//
// The paper's workloads — fit one iBoxNet per trace, train per-trace
// iBoxML models, replay counterfactual protocols over each (§3–§5) — are
// embarrassingly parallel across traces, but reproducibility is
// non-negotiable: an experiment must produce byte-identical output
// whether it runs on one core or sixty-four. par makes that contract
// structural rather than accidental:
//
//   - results land at out[i] for input i, so collection order never
//     depends on goroutine scheduling;
//   - work items must not share mutable state — in this repository every
//     stochastic component derives its RNG from an explicit (seed,
//     stream) pair (see sim.NewRand), and callers derive each item's
//     seed from its index *before* dispatch;
//   - on failure the error of the lowest-index failing item is returned,
//     which is the same error a serial loop would have stopped at,
//     because dispatch is in input order (any item preceding a failure
//     has already been dispatched and runs to completion).
//
// The Serial and Workers knobs exist so experiments can assert
// serial ≡ parallel equality in tests and so benchmarks can measure the
// speedup rather than claim it.
package par

import (
	"runtime"
	"sync"
	"time"

	"ibox/internal/obs"
)

// metrics bundles the fan-out instrumentation handles. All fields are
// nil when observability is disabled (obs.Get() == nil), in which case
// every record call below is a no-op and — crucially — no clock is ever
// read, so a disabled run does literally the same work as before the
// instrumentation existed. Handles are resolved once per Map call, never
// per item.
type metrics struct {
	items    *obs.Counter   // work items completed
	busy     *obs.Histogram // per-item fn duration, ns (sum = busy time)
	wait     *obs.Histogram // queue wait: dispatch-ready → worker pickup, ns
	capacity *obs.Counter   // Σ per-Map wall × workers, ns (utilization denominator)
}

// parMetrics resolves the instrumentation handles, or all-nil when
// disabled.
func parMetrics(workers int) metrics {
	r := obs.Get()
	if r == nil {
		return metrics{}
	}
	r.Counter("par.map_calls").Add(1)
	r.Gauge("par.workers").Set(float64(workers))
	return metrics{
		items:    r.Counter("par.items"),
		busy:     r.Histogram(obs.MetricParItemNs),
		wait:     r.Histogram("par.queue_wait_ns"),
		capacity: r.Counter(obs.MetricParCapacityNs),
	}
}

// logItemError reports a failed work item to the structured run log (see
// obs.Logger). Every failing item logs — not just the lowest-index one
// Map returns — because concurrent failures the caller never sees are
// exactly what a post-mortem needs. One nil check when logging is
// disabled.
func logItemError(i int, err error) {
	if l := obs.Logger(); l != nil {
		l.Error("par: work item failed", "item", i, "error", err.Error())
	}
}

// Options control how a fan-out executes. The zero value is the default:
// parallel with one worker per available CPU.
type Options struct {
	// Serial forces in-place execution on the calling goroutine (exactly
	// equivalent to a plain loop). It exists for A/B determinism tests
	// and benchmarks; results are identical either way. Serial bypasses
	// Pool entirely.
	Serial bool
	// Workers bounds the number of concurrent goroutines. Zero or
	// negative selects runtime.GOMAXPROCS(0). Ignored when Pool is set —
	// the pool's width is the budget.
	Workers int
	// Pool, when non-nil (and Serial is false), runs the fan-out on this
	// shared worker pool via PoolMap instead of spawning per-call
	// goroutines, so nested fan-outs across an entire process share one
	// concurrency budget. Results are byte-identical to the per-call
	// path — only scheduling changes.
	Pool *Pool
}

// WorkersFor resolves the effective worker count for n work items.
func (o Options) WorkersFor(n int) int {
	if o.Serial {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map applies fn to every index in [0, n) with bounded parallelism and
// returns the results in input order: out[i] = fn(i). If any call fails,
// Map returns a nil slice and the error of the lowest failing index —
// the same error a serial loop would surface, since dispatch is in input
// order and in-flight items run to completion. After a failure no new
// items are dispatched.
func Map[R any](n int, opts Options, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if opts.Pool != nil && !opts.Serial {
		return PoolMap(opts.Pool, n, fn)
	}
	out := make([]R, n)
	workers := opts.WorkersFor(n)
	m := parMetrics(workers)
	instrumented := m.items != nil
	if instrumented {
		mapStart := time.Now()
		defer func() {
			m.capacity.Add(int64(time.Since(mapStart)) * int64(workers))
		}()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			var t0 time.Time
			if instrumented {
				t0 = time.Now()
			}
			r, err := fn(i)
			if instrumented {
				m.busy.ObserveSince(t0)
				m.items.Add(1)
			}
			if err != nil {
				logItemError(i, err)
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	type failure struct {
		idx int
		err error
	}
	// job carries the dispatch-ready timestamp so workers can report how
	// long the item waited for a free worker (zero when uninstrumented).
	type job struct {
		i   int
		enq time.Time
	}
	jobCh := make(chan job)
	// Buffered so workers never block reporting: each sends at most one
	// failure before exiting.
	failCh := make(chan failure, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				var t0 time.Time
				if instrumented {
					t0 = time.Now()
					m.wait.Observe(int64(t0.Sub(j.enq)))
				}
				r, err := fn(j.i)
				if instrumented {
					m.busy.ObserveSince(t0)
					m.items.Add(1)
				}
				if err != nil {
					logItemError(j.i, err)
					failCh <- failure{j.i, err}
					return
				}
				out[j.i] = r
			}
		}()
	}

	failed := false
	var first failure
dispatch:
	for i := 0; i < n; i++ {
		var enq time.Time
		if instrumented {
			enq = time.Now()
		}
		select {
		case jobCh <- job{i, enq}:
		case f := <-failCh:
			failed, first = true, f
			break dispatch
		}
	}
	close(jobCh)
	wg.Wait()
	close(failCh)
	for f := range failCh {
		if !failed || f.idx < first.idx {
			failed, first = true, f
		}
	}
	if failed {
		return nil, first.err
	}
	return out, nil
}

// ForEach is Map without result collection: it applies fn to every index
// in [0, n) and returns the lowest-index error, if any. fn typically
// writes into caller-owned, index-disjoint storage.
func ForEach(n int, opts Options, fn func(i int) error) error {
	_, err := Map(n, opts, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
