package par

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// highWater tracks the number of concurrently running compute segments
// and the maximum ever observed. Tests assert the maximum never exceeds
// the pool's worker count: that is the scheduler's budget invariant.
type highWater struct {
	cur, max atomic.Int64
}

func (h *highWater) enter() {
	c := h.cur.Add(1)
	for {
		m := h.max.Load()
		if c <= m || h.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (h *highWater) exit() { h.cur.Add(-1) }

// spinWork is a small deterministic busy loop that widens the race
// window between dispatch and completion without adding noise.
func spinWork(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i * i
	}
	return s
}

var spinSink atomic.Int64

// leafValue is the deterministic per-leaf payload; any change shows up
// in the serial-reference comparison.
func leafValue(id int) int { return id*id%9973 + 1 }

// refTree computes the serial reference value of a nested fan-out tree:
// the node at level has widths[level:] levels of children below it
// (level == len(widths) is a leaf). Child ids append a base-64 digit to
// the parent id, so every node's id encodes its path.
func refTree(widths []int, level, id int) int {
	if level == len(widths) {
		return leafValue(id)
	}
	sum := id
	for i := 0; i < widths[level]; i++ {
		sum += refTree(widths, level+1, id*64+i+1)
	}
	return sum
}

// poolTree evaluates the same tree through nested PoolMap calls,
// counting compute segments on hw. A frame exits its segment for the
// duration of its nested PoolMap call — during that window the frame is
// not computing, it is dispatching and helping, and any compute it does
// (inline children) is counted by the children themselves.
func poolTree(p *Pool, hw *highWater, widths []int, level, id int, failID int) (int, error) {
	hw.enter()
	if level == len(widths) {
		spinSink.Add(int64(spinWork(300)))
		v := leafValue(id)
		hw.exit()
		if id == failID {
			return 0, fmt.Errorf("leaf %d failed", id)
		}
		return v, nil
	}
	hw.exit()
	children, err := PoolMap(p, widths[level], func(i int) (int, error) {
		return poolTree(p, hw, widths, level+1, id*64+i+1, failID)
	})
	hw.enter()
	defer hw.exit()
	if err != nil {
		return 0, err
	}
	sum := id
	for _, c := range children {
		sum += c
	}
	return sum, nil
}

// runPoolTree runs the whole tree from an external (non-worker) caller,
// mirroring how the experiment drivers call in. The virtual root is not
// itself a compute segment.
func runPoolTree(p *Pool, hw *highWater, widths []int, failID int) (int, error) {
	out, err := PoolMap(p, widths[0], func(i int) (int, error) {
		return poolTree(p, hw, widths, 1, i+1, failID)
	})
	if err != nil {
		return 0, err
	}
	sum := 0
	for _, v := range out {
		sum += v
	}
	return sum, nil
}

func refRoot(widths []int) int {
	sum := 0
	for i := 0; i < widths[0]; i++ {
		sum += refTree(widths, 1, i+1)
	}
	return sum
}

func TestPoolMapOrdering(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out, err := PoolMap(p, 100, func(i int) (int, error) {
		spinSink.Add(int64(spinWork(100)))
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("PoolMap: %v", err)
	}
	if len(out) != 100 {
		t.Fatalf("len(out) = %d, want 100", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestPoolMapZeroAndNil(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if out, err := PoolMap(p, 0, func(i int) (int, error) { return i, nil }); out != nil || err != nil {
		t.Fatalf("PoolMap(n=0) = %v, %v; want nil, nil", out, err)
	}
	// A nil pool falls back to the per-call Map, same contract.
	out, err := PoolMap[int](nil, 5, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatalf("PoolMap(nil pool): %v", err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
}

// TestPoolMapErrorLowestIndex checks Map's error contract on the pool:
// a failure yields a nil slice and the error of the lowest failing
// index, even when higher indexes also fail.
func TestPoolMapErrorLowestIndex(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	failAt := map[int]bool{7: true, 3: true, 12: true}
	out, err := PoolMap(p, 20, func(i int) (int, error) {
		spinSink.Add(int64(spinWork(200)))
		if failAt[i] {
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("err = %v, want item 3 failed", err)
	}
}

// TestPoolMapNestedError checks that the lowest-index rule composes
// through nesting: the root error is the leftmost failing leaf's.
func TestPoolMapNestedError(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	widths := []int{3, 4, 2}
	// Leftmost leaf of the second top-level subtree: id path 2 → 2·64+1 → ….
	failID := (2*64+1)*64 + 1
	var hw highWater
	_, err := runPoolTree(p, &hw, widths, failID)
	want := fmt.Sprintf("leaf %d failed", failID)
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
}

func TestPoolMapClosedPool(t *testing.T) {
	p := NewPool(2)
	p.Close()
	out, err := PoolMap(p, 4, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil", out)
	}
}

// TestPoolMapNestedStress runs randomized fan-out trees (depth ≤ 4,
// width ≤ 32) through nested PoolMap on pools of various sizes and
// asserts, under -race:
//
//   - no deadlock (the test finishes),
//   - the result equals the serial reference (input-ordered results),
//   - concurrently running compute segments never exceed workers.
func TestPoolMapNestedStress(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			p := NewPool(workers)
			defer p.Close()
			rng := rand.New(rand.NewSource(int64(42 + workers)))
			rounds := 10
			if testing.Short() {
				rounds = 4
			}
			for round := 0; round < rounds; round++ {
				depth := 1 + rng.Intn(4)
				widths := make([]int, depth)
				prod := 1
				for i := range widths {
					maxW := 32
					if c := 2048 / prod; c < maxW {
						maxW = c
					}
					if maxW < 1 {
						maxW = 1
					}
					widths[i] = 1 + rng.Intn(maxW)
					prod *= widths[i]
				}
				var hw highWater
				got, err := runPoolTree(p, &hw, widths, -1)
				if err != nil {
					t.Fatalf("round %d widths %v: %v", round, widths, err)
				}
				if want := refRoot(widths); got != want {
					t.Fatalf("round %d widths %v: got %d, want %d", round, widths, got, want)
				}
				if m := hw.max.Load(); m > int64(workers) {
					t.Fatalf("round %d widths %v: %d concurrent jobs, budget %d", round, widths, m, workers)
				}
			}
		})
	}
}

// TestPoolMapConcurrentExternalCallers hammers one pool from many
// external goroutines at once — the ibox-experiments -parallel shape,
// where whole-figure fan-outs and their nested maps all share the pool.
// The budget must hold across callers, not just within one tree.
func TestPoolMapConcurrentExternalCallers(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()
	var hw highWater
	widths := []int{4, 3, 2}
	want := refRoot(widths)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for c := 0; c < len(errs); c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got, err := runPoolTree(p, &hw, widths, -1)
			if err != nil {
				errs[c] = err
				return
			}
			if got != want {
				errs[c] = fmt.Errorf("caller %d: got %d, want %d", c, got, want)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if m := hw.max.Load(); m > workers {
		t.Fatalf("%d concurrent jobs across callers, budget %d", m, workers)
	}
}

// FuzzPoolMapTree fuzzes the tree shape, worker count and error
// injection point, checking the pooled result (or error) against the
// serial reference every time. `go test` runs the seed corpus; `go test
// -fuzz=FuzzPoolMapTree` explores further.
func FuzzPoolMapTree(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(1), uint8(0), uint16(0))
	f.Add(uint8(3), uint8(4), uint8(4), uint8(4), uint8(4), uint16(9999))
	f.Add(uint8(7), uint8(1), uint8(1), uint8(1), uint8(1), uint16(1))
	f.Add(uint8(2), uint8(3), uint8(0), uint8(0), uint8(0), uint16(40))
	f.Fuzz(func(t *testing.T, w, a, b, c, d uint8, errSel uint16) {
		workers := 1 + int(w)%4
		var widths []int
		for _, x := range []uint8{a, b, c, d} {
			if x == 0 {
				break
			}
			widths = append(widths, 1+int(x)%4)
		}
		if len(widths) == 0 {
			return
		}
		// Enumerate leaf ids so errSel can deterministically pick one (or
		// none) to fail; the expected error is the leftmost failing leaf.
		var leaves []int
		var walk func(level, id int)
		walk = func(level, id int) {
			if level == len(widths) {
				leaves = append(leaves, id)
				return
			}
			for i := 0; i < widths[level]; i++ {
				walk(level+1, id*64+i+1)
			}
		}
		for i := 0; i < widths[0]; i++ {
			walk(1, i+1)
		}
		failID := -1
		if int(errSel) < len(leaves) {
			failID = leaves[errSel]
		}

		p := NewPool(workers)
		defer p.Close()
		var hw highWater
		got, err := runPoolTree(p, &hw, widths, failID)
		if failID >= 0 {
			want := fmt.Sprintf("leaf %d failed", failID)
			if err == nil || err.Error() != want {
				t.Fatalf("widths %v failID %d: err = %v, want %q", widths, failID, err, want)
			}
		} else {
			if err != nil {
				t.Fatalf("widths %v: %v", widths, err)
			}
			if want := refRoot(widths); got != want {
				t.Fatalf("widths %v: got %d, want %d", widths, got, want)
			}
		}
		if m := hw.max.Load(); m > int64(workers) {
			t.Fatalf("widths %v: %d concurrent jobs, budget %d", widths, m, workers)
		}
	})
}
