package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() error {
				n.Add(1)
				return nil
			}); err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", n.Load())
	}
}

func TestPoolPropagatesJobError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	want := errors.New("boom")
	if err := p.Do(context.Background(), func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do returned %v, want %v", err, want)
	}
}

// TestPoolContextWhileQueued checks a job whose context expires before a
// worker picks it up never runs.
func TestPoolContextWhileQueued(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), func() error {
		close(started)
		<-block
		return nil
	})
	<-started // the only worker is now occupied
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Do(ctx, func() error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("job ran despite expired context")
	}
	close(block)
}

// TestPoolContextWhileRunning checks Do returns promptly when the context
// expires mid-job, while the job itself still completes on the worker.
func TestPoolContextWhileRunning(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	finished := make(chan struct{})
	entered := make(chan struct{})
	err := p.Do(ctx, func() error {
		close(entered)
		cancel()
		// Simulate work that outlives the caller's deadline.
		time.Sleep(10 * time.Millisecond)
		close(finished)
		return nil
	})
	<-entered
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do returned %v, want context.Canceled", err)
	}
	select {
	case <-finished:
	case <-time.After(time.Second):
		t.Fatal("job did not run to completion after caller gave up")
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	if err := p.Do(context.Background(), func() error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Do after Close returned %v, want ErrPoolClosed", err)
	}
}

// TestPoolCloseWaitsForInFlight checks Close blocks until running jobs
// finish.
func TestPoolCloseWaitsForInFlight(t *testing.T) {
	p := NewPool(1)
	var done atomic.Bool
	started := make(chan struct{})
	go p.Do(context.Background(), func() error {
		close(started)
		time.Sleep(20 * time.Millisecond)
		done.Store(true)
		return nil
	})
	<-started
	p.Close()
	if !done.Load() {
		t.Fatal("Close returned before the in-flight job finished")
	}
}

func TestPoolWorkers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", p.Workers())
	}
	q := NewPool(0)
	defer q.Close()
	if q.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1 for non-positive request", q.Workers())
	}
}
