package iboxml

import (
	"fmt"
	"math"

	"ibox/internal/nn"
)

// Validate checks that a model — typically one just deserialized from
// disk — is structurally sound and numerically finite, so the serving
// registry can never warm-load garbage into memory: a truncated or
// hand-edited checkpoint is rejected at load time instead of producing
// NaN delays (or a panic) on the first request.
func (m *Model) Validate() error {
	if m.Net == nil {
		return fmt.Errorf("iboxml: model has no network")
	}
	if m.Net.Kind != nn.GaussianHead {
		return fmt.Errorf("iboxml: model head kind %d is not a Gaussian delay head", m.Net.Kind)
	}
	if m.Net.LSTM == nil || len(m.Net.LSTM.Layers) == 0 || m.Net.Head == nil {
		return fmt.Errorf("iboxml: model network is missing layers")
	}
	if m.Cfg.Window <= 0 {
		return fmt.Errorf("iboxml: non-positive feature window %v", m.Cfg.Window)
	}
	dim := 4
	if m.Cfg.UseCrossTraffic {
		dim = 5
	}
	if in := m.Net.LSTM.Layers[0].In; in != dim {
		return fmt.Errorf("iboxml: network input dim %d does not match the %d-dim feature config", in, dim)
	}
	if m.Net.Head.Out != 2 {
		return fmt.Errorf("iboxml: Gaussian head output dim %d, want 2", m.Net.Head.Out)
	}
	if len(m.xScale.Mean) != dim || len(m.xScale.Std) != dim {
		return fmt.Errorf("iboxml: feature scaler has %d/%d entries, want %d",
			len(m.xScale.Mean), len(m.xScale.Std), dim)
	}
	for j, v := range m.xScale.Mean {
		if !finite(v) {
			return fmt.Errorf("iboxml: non-finite feature mean[%d]", j)
		}
	}
	for j, v := range m.xScale.Std {
		if !finite(v) || v <= 0 {
			return fmt.Errorf("iboxml: feature std[%d] = %v, want finite > 0", j, v)
		}
	}
	if !finite(m.yMean) {
		return fmt.Errorf("iboxml: non-finite target mean")
	}
	if !finite(m.yStd) || m.yStd <= 0 {
		return fmt.Errorf("iboxml: target std %v, want finite > 0", m.yStd)
	}
	if !finite(m.outlierRate) || m.outlierRate < 0 || m.outlierRate > 1 {
		return fmt.Errorf("iboxml: outlier rate %v outside [0,1]", m.outlierRate)
	}
	if !finite(m.minDelayMs) || m.minDelayMs < 0 {
		return fmt.Errorf("iboxml: minimum delay %v ms, want finite >= 0", m.minDelayMs)
	}
	if len(m.env.Min) != len(m.env.Max) {
		return fmt.Errorf("iboxml: envelope min/max lengths differ (%d vs %d)",
			len(m.env.Min), len(m.env.Max))
	}
	if !paramsFinite(m.Net.Params()) {
		return fmt.Errorf("iboxml: network contains non-finite weights")
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
