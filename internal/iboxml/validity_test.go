package iboxml

import (
	"math"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

func TestValidityInDistribution(t *testing.T) {
	m, err := Train(trainSamples(4, 8*sim.Second), Config{Hidden: 8, Layers: 1, Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A held-out trace from the same generator: should be almost entirely
	// inside the envelope.
	test := synthTrace(200, 8*sim.Second)
	rep := m.Validity(test, nil)
	if rep.Windows == 0 {
		t.Fatal("no windows examined")
	}
	if rep.WorstFraction > 0.1 {
		t.Errorf("in-distribution input flagged: %s", rep)
	}
	if !rep.Valid(0.1) {
		t.Errorf("Valid(0.1) = false for in-distribution input")
	}
}

func TestValidityDetectsRateExcursion(t *testing.T) {
	// §6's example verbatim: train at ≤2 Mbps, test at 20 Mbps — the
	// send-rate feature must be flagged as out of the validity region.
	m, err := Train(trainSamples(4, 8*sim.Second), Config{Hidden: 8, Layers: 1, Epochs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast := &trace.Trace{Protocol: "fast-cbr"}
	for i := 0; i < 5000; i++ {
		send := sim.Time(i) * 600 * sim.Microsecond // 1500B/0.6ms = 20 Mbps
		fast.Packets = append(fast.Packets, trace.Packet{
			Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + 40*sim.Millisecond,
		})
	}
	rep := m.Validity(fast, nil)
	if rep.OutOfRange["send-rate"] < 0.8 {
		t.Errorf("20 Mbps test vs ≤2 Mbps training not flagged: %s", rep)
	}
	if rep.WorstFeature != "send-rate" {
		t.Errorf("worst feature = %q, want send-rate", rep.WorstFeature)
	}
	if rep.Valid(0.1) {
		t.Error("Valid(0.1) = true for a gross excursion")
	}
}

func TestValiditySurvivesSerialization(t *testing.T) {
	m, err := Train(trainSamples(2, 5*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.json"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(300, 5*sim.Second)
	a := m.Validity(test, nil)
	b := got.Validity(test, nil)
	if a.WorstFraction != b.WorstFraction || a.Windows != b.Windows {
		t.Errorf("validity changed across serialization: %v vs %v", a, b)
	}
}

func TestValidityStringAndEmptyEnvelope(t *testing.T) {
	rep := ValidityReport{Windows: 10, OutOfRange: map[string]float64{"send-rate": 0.5}}
	if s := rep.String(); !containsAll(s, "10", "send-rate", "50.0%") {
		t.Errorf("String() = %q", s)
	}
	if math.IsNaN(rep.WorstFraction) {
		t.Error("NaN worst fraction")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
