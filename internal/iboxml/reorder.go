package iboxml

import (
	"fmt"

	"ibox/internal/nn"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// ReorderPredictor predicts, per packet, the probability that the packet
// is reordered (arrives before an earlier-sequenced packet). It is the ML
// augmentation of §5.1 that grafts discovered behaviours onto the iBoxNet
// simulator's output.
type ReorderPredictor interface {
	// Probs returns the per-packet reordering probability for a trace's
	// send-side features. ct may be nil.
	Probs(tr *trace.Trace, ct *trace.Series) []float64
	// Name identifies the predictor ("lstm" or "linear").
	Name() string
}

// reorderSample is one trace's packet features and labels.
func reorderSample(tr *trace.Trace, ct *trace.Series) (xs [][]float64, ys []float64) {
	feats := PacketFeatures(tr, ct)
	flags := tr.ReorderedFlags()
	// ReorderedFlags covers delivered packets in sequence order; map back
	// to all packets (lost packets get label 0 and are kept: the predictor
	// sees the same feature stream the augmenter will).
	labels := make([]float64, len(tr.Packets))
	di := 0
	for i, p := range tr.Packets {
		if p.Lost {
			continue
		}
		if flags[di] {
			labels[i] = 1
		}
		di++
	}
	return feats, labels
}

// LSTMReorder is the LSTM-based reordering predictor of §5.1 ("we train an
// LSTM model (similar to that in Fig 6) to predict whether a packet should
// be reordered").
type LSTMReorder struct {
	net    *nn.SequenceModel
	xScale scaler
	useCT  bool
}

// LSTMReorderConfig parameterizes training; zero values pick defaults.
type LSTMReorderConfig struct {
	Hidden int // default 16
	Layers int // default 1
	Epochs int // default 15
	LR     float64
	UseCT  bool
	Seed   int64
	// MaxPacketsPerTrace truncates long traces for tractable CPU training;
	// default 3000.
	MaxPacketsPerTrace int
}

func (c LSTMReorderConfig) withDefaults() LSTMReorderConfig {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Layers <= 0 {
		c.Layers = 1
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	if c.MaxPacketsPerTrace <= 0 {
		c.MaxPacketsPerTrace = 3000
	}
	return c
}

// TrainLSTMReorder fits the LSTM reordering predictor.
func TrainLSTMReorder(samples []TrainingSample, cfg LSTMReorderConfig) (*LSTMReorder, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("iboxml: no reorder training samples")
	}
	dim := 3
	if cfg.UseCT {
		dim = 4
	}
	type seq struct {
		xs [][]float64
		ys []float64
	}
	var seqs []seq
	var allX [][]float64
	for _, s := range samples {
		ct := s.CT
		if !cfg.UseCT {
			ct = nil
		}
		xs, ys := reorderSample(s.Trace, ct)
		if cfg.UseCT && s.CT == nil {
			for i := range xs {
				xs[i] = append(xs[i], 0)
			}
		}
		if len(xs) > cfg.MaxPacketsPerTrace {
			xs, ys = xs[:cfg.MaxPacketsPerTrace], ys[:cfg.MaxPacketsPerTrace]
		}
		if len(xs) == 0 {
			continue
		}
		seqs = append(seqs, seq{xs, ys})
		allX = append(allX, xs...)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("iboxml: reorder training data empty")
	}
	r := &LSTMReorder{useCT: cfg.UseCT, xScale: fitScaler(allX)}
	r.net = nn.NewSequenceModel(nn.BinaryHead, dim, cfg.Hidden, cfg.Layers, cfg.Seed)
	opt := nn.NewAdam(cfg.LR, r.net.Params())
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, s := range seqs {
			xs := make([][]float64, len(s.xs))
			for t := range s.xs {
				xs[t] = r.xScale.apply(s.xs[t])
			}
			r.net.TrainSequence(xs, s.ys, nil)
			opt.Step()
		}
	}
	return r, nil
}

// Name implements ReorderPredictor.
func (r *LSTMReorder) Name() string { return "lstm" }

// Probs implements ReorderPredictor.
func (r *LSTMReorder) Probs(tr *trace.Trace, ct *trace.Series) []float64 {
	if !r.useCT {
		ct = nil
	}
	feats := PacketFeatures(tr, ct)
	if r.useCT && ct == nil {
		for i := range feats {
			feats[i] = append(feats[i], 0)
		}
	}
	pred := r.net.NewPredictor()
	out := make([]float64, len(feats))
	for i, f := range feats {
		out[i] = pred.StepProb(r.xScale.apply(f))
	}
	return out
}

// LinearReorder is §5.1's "lightweight and much faster linear logistic
// regression model", with the paper's exact feature set: instantaneous
// sending rate, inter-packet spacing and the cross-traffic estimate.
type LinearReorder struct {
	model *nn.Logistic
	useCT bool
}

// TrainLinearReorder fits the logistic reordering predictor.
func TrainLinearReorder(samples []TrainingSample, useCT bool, seed int64) (*LinearReorder, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("iboxml: no reorder training samples")
	}
	dim := 3
	if useCT {
		dim = 4
	}
	var xs [][]float64
	var ys []float64
	for _, s := range samples {
		ct := s.CT
		if !useCT {
			ct = nil
		}
		fx, fy := reorderSample(s.Trace, ct)
		if useCT && s.CT == nil {
			for i := range fx {
				fx[i] = append(fx[i], 0)
			}
		}
		xs = append(xs, fx...)
		ys = append(ys, fy...)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("iboxml: reorder training data empty")
	}
	m := nn.NewLogistic(dim)
	m.Fit(xs, ys, 200, 0.5, seed)
	return &LinearReorder{model: m, useCT: useCT}, nil
}

// Name implements ReorderPredictor.
func (l *LinearReorder) Name() string { return "linear" }

// Probs implements ReorderPredictor.
func (l *LinearReorder) Probs(tr *trace.Trace, ct *trace.Series) []float64 {
	if !l.useCT {
		ct = nil
	}
	feats := PacketFeatures(tr, ct)
	if l.useCT && ct == nil {
		for i := range feats {
			feats[i] = append(feats[i], 0)
		}
	}
	out := make([]float64, len(feats))
	for i, f := range feats {
		out[i] = l.model.Prob(f)
	}
	return out
}

// AugmentReordering applies a reordering predictor to an iBoxNet-simulated
// (in-order) trace: packets whose predicted probability exceeds a
// Bernoulli draw get their delivery time pulled ahead of the previous
// packet's, recreating the overtaking that iBoxNet's single FIFO queue
// cannot produce ("we use this prediction to suitably modify the delay
// output by iBoxNet", §5.1). The input trace is not modified.
func AugmentReordering(tr *trace.Trace, pred ReorderPredictor, ct *trace.Series, seed int64) *trace.Trace {
	probs := pred.Probs(tr, ct)
	rng := sim.NewRand(seed, 41)
	out := &trace.Trace{Protocol: tr.Protocol + "+" + pred.Name(), PathID: tr.PathID}
	out.Packets = append([]trace.Packet(nil), tr.Packets...)
	var prevRecv sim.Time = -1
	for i := range out.Packets {
		p := &out.Packets[i]
		if p.Lost {
			continue
		}
		if prevRecv >= 0 && rng.Float64() < probs[i] {
			// Deliver just before the previous packet: a reordering event
			// (negative inter-arrival, SAX symbol 'a').
			jitter := sim.Time(rng.Float64() * float64(2*sim.Millisecond))
			newRecv := prevRecv - jitter - sim.Microsecond
			if newRecv > p.SendTime {
				p.RecvTime = newRecv
			}
		}
		if p.RecvTime > prevRecv {
			prevRecv = p.RecvTime
		}
	}
	return out
}
