package iboxml

import (
	"bytes"
	"path/filepath"
	"testing"

	"ibox/internal/sim"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	m, err := Train(trainSamples(2, 5*sim.Second), Config{Hidden: 8, Layers: 2, Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be identical.
	test := synthTrace(200, 5*sim.Second)
	mu1, s1 := m.PredictWindows(test, nil)
	mu2, s2 := got.PredictWindows(test, nil)
	for i := range mu1 {
		if mu1[i] != mu2[i] || s1[i] != s2[i] {
			t.Fatalf("prediction mismatch at window %d: %v vs %v", i, mu1[i], mu2[i])
		}
	}
	// SimulateTrace (uses outlierRate/minDelayMs) must match too.
	a := m.SimulateTrace(test, nil, 5)
	b := got.SimulateTrace(test, nil, 5)
	for i := range a.Packets {
		if a.Packets[i].RecvTime != b.Packets[i].RecvTime {
			t.Fatalf("simulate mismatch at packet %d", i)
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m, err := Train(trainSamples(1, 4*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() {
		t.Errorf("params %d vs %d", got.NumParams(), m.NumParams())
	}
}

func TestSerializeUntrainedFails(t *testing.T) {
	m := &Model{}
	var buf bytes.Buffer
	if err := m.Write(&buf); err == nil {
		t.Error("untrained model serialized")
	}
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty model accepted")
	}
}
