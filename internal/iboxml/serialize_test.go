package iboxml

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"ibox/internal/sim"
)

func TestModelSerializationRoundTrip(t *testing.T) {
	m, err := Train(trainSamples(2, 5*sim.Second), Config{Hidden: 8, Layers: 2, Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be identical.
	test := synthTrace(200, 5*sim.Second)
	mu1, s1 := m.PredictWindows(test, nil)
	mu2, s2 := got.PredictWindows(test, nil)
	for i := range mu1 {
		if mu1[i] != mu2[i] || s1[i] != s2[i] {
			t.Fatalf("prediction mismatch at window %d: %v vs %v", i, mu1[i], mu2[i])
		}
	}
	// SimulateTrace (uses outlierRate/minDelayMs) must match too.
	a := m.SimulateTrace(test, nil, 5)
	b := got.SimulateTrace(test, nil, 5)
	for i := range a.Packets {
		if a.Packets[i].RecvTime != b.Packets[i].RecvTime {
			t.Fatalf("simulate mismatch at packet %d", i)
		}
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	m, err := Train(trainSamples(1, 4*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParams() != m.NumParams() {
		t.Errorf("params %d vs %d", got.NumParams(), m.NumParams())
	}
}

func TestSerializeUntrainedFails(t *testing.T) {
	m := &Model{}
	var buf bytes.Buffer
	if err := m.Write(&buf); err == nil {
		t.Error("untrained model serialized")
	}
}

func TestReadGarbageFails(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty model accepted")
	}
}

// TestBaselineRoundTrip: a calibration baseline embedded via SetBaseline
// survives serialization, and artifacts written without one (or by
// older builds, which lack the field entirely) load with a nil baseline.
func TestBaselineRoundTrip(t *testing.T) {
	m, err := Train(trainSamples(1, 4*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Baseline() != nil {
		t.Fatal("fresh model should have no baseline")
	}
	cal := m.Calibrate(trainSamples(2, 4*sim.Second))
	m.SetBaseline(cal)
	if b := m.Baseline(); b == nil || b.NLL != cal.NLL || b.PITDeviation != cal.PITDeviation {
		t.Fatalf("baseline after set: %+v, want %+v", m.Baseline(), cal)
	}

	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.Contains(raw, []byte(`"calibration"`)) {
		t.Fatal("serialized artifact missing calibration field")
	}
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	b := got.Baseline()
	if b == nil || b.NLL != cal.NLL || b.PITDeviation != cal.PITDeviation || b.Windows != cal.Windows {
		t.Fatalf("baseline after round trip: %+v, want %+v", b, cal)
	}

	// A legacy artifact — the same document with the calibration field
	// deleted — still loads, with no baseline.
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "calibration")
	legacy, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Read(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy artifact rejected: %v", err)
	}
	if old.Baseline() != nil {
		t.Fatal("legacy artifact should have nil baseline")
	}
}

// TestScoreWindowsMatchesCalibrate: the streaming scorer and the batch
// Calibrate fold the same per-window numbers, so their aggregates agree
// exactly — the property the serving tier's drift sketch relies on.
func TestScoreWindowsMatchesCalibrate(t *testing.T) {
	m, err := Train(trainSamples(1, 4*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	held := trainSamples(2, 4*sim.Second)
	cal := m.Calibrate(held)

	var nllSum float64
	n := 0
	bins := make([]float64, len(cal.PIT))
	for _, s := range held {
		n += m.ScoreWindows(s.Trace, s.CT, func(pit, _, nll float64) {
			nllSum += nll
			b := int(pit * float64(len(bins)))
			if b >= len(bins) {
				b = len(bins) - 1
			}
			bins[b]++
		})
	}
	if n != cal.Windows {
		t.Fatalf("windows %d vs Calibrate %d", n, cal.Windows)
	}
	if got := nllSum / float64(n); got != cal.NLL {
		t.Fatalf("mean NLL %v vs Calibrate %v", got, cal.NLL)
	}
	for b := range bins {
		if got := bins[b] / float64(n); got != cal.PIT[b] {
			t.Fatalf("PIT bin %d: %v vs Calibrate %v", b, got, cal.PIT[b])
		}
	}
}
