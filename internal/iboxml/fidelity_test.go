package iboxml

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// degenerateTrace has identical, constant delays — zero target variance,
// the classic recipe for a collapsing sigma head and, with a hostile
// learning rate, numerical blow-up.
func degenerateTrace() *trace.Trace {
	tr := &trace.Trace{Protocol: "degenerate"}
	for i := 0; i < 400; i++ {
		send := sim.Time(i) * 10 * sim.Millisecond
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + 30*sim.Millisecond,
		})
	}
	return tr
}

// TestTrainDivergenceGuard pins the NaN/Inf guard: an exploding learning
// rate on a zero-variance trace must abort training with a loud
// diagnostic error, not return a model full of garbage weights.
func TestTrainDivergenceGuard(t *testing.T) {
	_, err := Train([]TrainingSample{{Trace: degenerateTrace()}}, Config{
		Hidden: 8, Layers: 1, Epochs: 5, Seed: 1,
		LR: 1e30, // hostile: each Adam step moves weights by ~LR
	})
	if err == nil {
		t.Fatal("training with LR=1e30 on a zero-variance trace returned no error")
	}
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want errors.Is(err, ErrDiverged)", err)
	}
	// The message must carry enough diagnosis to act on (epoch and a
	// numeric symptom), not just "diverged".
	if msg := err.Error(); !strings.Contains(msg, "epoch") {
		t.Errorf("diagnostic error lacks epoch context: %q", msg)
	}
}

// TestTrainHealthyDiag: a normal run populates the training-trajectory
// diagnostics with finite, ordered values.
func TestTrainHealthyDiag(t *testing.T) {
	m, err := Train(trainSamples(3, 4*sim.Second), Config{
		Hidden: 8, Layers: 1, Epochs: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diag
	if d.Epochs != 3 {
		t.Errorf("Diag.Epochs = %d, want 3", d.Epochs)
	}
	for name, v := range map[string]float64{
		"FinalLoss": d.FinalLoss, "GradNormFirst": d.GradNormFirst,
		"GradNormLast": d.GradNormLast, "GradNormMax": d.GradNormMax,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Diag.%s = %v, want finite", name, v)
		}
	}
	if d.GradNormFirst <= 0 || d.GradNormMax < d.GradNormLast {
		t.Errorf("grad norm trajectory inconsistent: %+v", d)
	}
	if d.NonFiniteSeqs != 0 {
		t.Errorf("healthy run reported %d non-finite sequences", d.NonFiniteSeqs)
	}
}

// TestCalibrateSanity: on held-out traces from the training distribution,
// a trained head must produce usable calibration — every window scored,
// PIT a probability distribution, coverage monotone in the quantile, NLL
// finite and in the ballpark of the training loss.
func TestCalibrateSanity(t *testing.T) {
	samples := trainSamples(4, 4*sim.Second)
	m, err := Train(samples, Config{Hidden: 12, Layers: 1, Epochs: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	heldOut := []TrainingSample{
		{Trace: synthTrace(100, 4*sim.Second)},
		{Trace: synthTrace(101, 4*sim.Second)},
	}
	cal := m.Calibrate(heldOut)
	if cal.Windows < 40 {
		t.Fatalf("only %d held-out windows scored", cal.Windows)
	}
	if math.IsNaN(cal.NLL) || math.IsInf(cal.NLL, 0) {
		t.Fatalf("NLL = %v", cal.NLL)
	}
	sum := 0.0
	for _, p := range cal.PIT {
		if p < 0 {
			t.Fatalf("negative PIT bin: %v", cal.PIT)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PIT sums to %v, want 1", sum)
	}
	if cal.PITDeviation < 0 || cal.PITDeviation > 1 {
		t.Errorf("PITDeviation = %v outside [0,1]", cal.PITDeviation)
	}
	// Coverage is a CDF evaluated at increasing quantiles: monotone, in
	// [0,1], and p50 not wildly far from one half on in-distribution data.
	prev := -1.0
	for _, q := range []string{"p10", "p25", "p50", "p75", "p90"} {
		c, ok := cal.Coverage[q]
		if !ok {
			t.Fatalf("coverage %s missing: %v", q, cal.Coverage)
		}
		if c < prev || c < 0 || c > 1 {
			t.Fatalf("coverage not a monotone CDF: %v", cal.Coverage)
		}
		prev = c
	}
	if p50 := cal.Coverage["p50"]; p50 < 0.1 || p50 > 0.9 {
		t.Errorf("p50 coverage = %v, head badly biased", p50)
	}

	// No held-out data: a zero scorecard, not a panic or NaNs.
	empty := m.Calibrate(nil)
	if empty.Windows != 0 || empty.NLL != 0 || empty.PITDeviation != 0 {
		t.Errorf("empty calibration = %+v", empty)
	}
}

// TestRecordFidelityGating: RecordFidelity is a no-op without a registry
// and lands one labeled record with one.
func TestRecordFidelityGating(t *testing.T) {
	defer obs.Disable()
	obs.Disable()
	samples := trainSamples(2, 3*sim.Second)
	m, err := Train(samples, Config{Hidden: 8, Layers: 1, Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m.RecordFidelity("test/off", samples) // must not panic, records nowhere

	r := obs.Enable()
	m.RecordFidelity("test/on", samples)
	recs := r.FidelityRecords()
	if len(recs) != 1 || recs[0].Label != "test/on" {
		t.Fatalf("records = %+v", recs)
	}
	f := recs[0]
	if f.Epochs != 2 || f.HeldOutWindows == 0 || len(f.PIT) != 10 {
		t.Errorf("fidelity record incomplete: %+v", f)
	}
	if f.GradNormMax <= 0 {
		t.Errorf("training diagnostics not merged into record: %+v", f)
	}
}
