package iboxml

import (
	"fmt"
	"math"

	"ibox/internal/nn"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// This file implements the paper's native granularity: Fig 6's model steps
// once per *packet* ("let d_t denote the delay suffered at R by a packet
// sent from S"), with features "instantaneous sending rate …, inter-packet
// spacing, packet size, and previous delay d_{t−1}". The window-based
// Model is the tractable default for pure-Go CPU training; PacketModel is
// the faithful formulation, usable when traces (or budgets) are small.

// PacketModel is a per-packet iBoxML delay model.
type PacketModel struct {
	Cfg     Config
	Net     *nn.SequenceModel
	xScale  scaler
	yMean   float64
	yStd    float64
	trained bool
	// MaxSeqLen bounds BPTT length: longer traces are split into segments.
	MaxSeqLen int
}

// packetXY builds the per-packet feature/target arrays: features
// [instantaneous rate, spacing, size, prevDelay(, ct)], target = delay ms,
// mask = delivered.
func packetXY(tr *trace.Trace, ct *trace.Series) (xs [][]float64, ys []float64, mask []bool) {
	base := PacketFeatures(tr, ct) // [rate, spacing, size(, ct)]
	n := len(base)
	xs = make([][]float64, n)
	ys = make([]float64, n)
	mask = make([]bool, n)
	prev := 0.0
	for i, p := range tr.Packets {
		row := make([]float64, 0, len(base[i])+1)
		row = append(row, base[i][0], base[i][1], base[i][2], prev)
		if len(base[i]) == 4 {
			row = append(row, base[i][3]) // ct column last
		}
		xs[i] = row
		if !p.Lost {
			ys[i] = p.Delay().Millis()
			mask[i] = true
			prev = ys[i]
		} else {
			ys[i] = prev
		}
	}
	return xs, ys, mask
}

// TrainPacket fits a per-packet model. cfg.Window is ignored; the other
// Config fields keep their meaning.
func TrainPacket(samples []TrainingSample, cfg Config) (*PacketModel, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("iboxml: no training samples")
	}
	dim := 4
	if cfg.UseCrossTraffic {
		dim = 5
	}
	const maxSeqLen = 600
	type seq struct {
		xs   [][]float64
		ys   []float64
		mask []bool
	}
	var seqs []seq
	var allX [][]float64
	var allY []float64
	for _, s := range samples {
		ct := s.CT
		if !cfg.UseCrossTraffic {
			ct = nil
		}
		xs, ys, mask := packetXY(s.Trace, ct)
		if cfg.UseCrossTraffic && s.CT == nil {
			for i := range xs {
				xs[i] = append(xs[i], 0)
			}
		}
		// Split into BPTT segments.
		for lo := 0; lo < len(xs); lo += maxSeqLen {
			hi := lo + maxSeqLen
			if hi > len(xs) {
				hi = len(xs)
			}
			if hi-lo < 10 {
				break
			}
			seqs = append(seqs, seq{xs[lo:hi], ys[lo:hi], mask[lo:hi]})
		}
		allX = append(allX, xs...)
		for i, m := range mask {
			if m {
				allY = append(allY, ys[i])
			}
		}
	}
	if len(seqs) == 0 || len(allY) == 0 {
		return nil, fmt.Errorf("iboxml: per-packet training data empty")
	}
	m := &PacketModel{Cfg: cfg, MaxSeqLen: maxSeqLen}
	m.xScale = fitScaler(allX)
	m.yMean = mean(allY)
	m.yStd = std(allY, m.yMean)
	if m.yStd == 0 {
		m.yStd = 1
	}
	m.Net = nn.NewSequenceModel(nn.GaussianHead, dim, cfg.Hidden, cfg.Layers, cfg.Seed+9000)
	opt := nn.NewAdam(cfg.LR, m.Net.Params())
	noise := sim.NewRand(cfg.Seed, 717)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, s := range seqs {
			xs := make([][]float64, len(s.xs))
			ys := make([]float64, len(s.ys))
			for t := range s.xs {
				xs[t] = m.xScale.apply(s.xs[t])
				ys[t] = (s.ys[t] - m.yMean) / m.yStd
				if cfg.PrevDelayNoise > 0 {
					xs[t][3] += cfg.PrevDelayNoise * noise.NormFloat64()
				}
			}
			loss := m.Net.TrainSequence(xs, ys, s.mask)
			if math.IsNaN(loss) {
				continue
			}
			opt.Step()
		}
	}
	m.trained = true
	return m, nil
}

// NumParams reports the scalar parameter count.
func (m *PacketModel) NumParams() int { return m.Net.NumParams() }

// PredictPackets replays a trace's send-side timeline through the model
// closed-loop, one LSTM step per packet, returning the predicted per-
// packet delay mean and standard deviation in milliseconds.
func (m *PacketModel) PredictPackets(tr *trace.Trace, ct *trace.Series) (mu, sigma []float64) {
	if !m.trained {
		panic("iboxml: packet model not trained")
	}
	var ctArg *trace.Series
	if m.Cfg.UseCrossTraffic {
		ctArg = ct
	}
	xs, _, _ := packetXY(tr, ctArg)
	if m.Cfg.UseCrossTraffic && ctArg == nil {
		for i := range xs {
			xs[i] = append(xs[i], 0)
		}
	}
	pred := m.Net.NewPredictor()
	mu = make([]float64, len(xs))
	sigma = make([]float64, len(xs))
	prev := 0.0
	for i := range xs {
		if i > 0 {
			xs[i][3] = prev // closed loop: feed back our own prediction
		}
		out := pred.StepGaussian(m.xScale.apply(xs[i]))
		mu[i] = out.Mu*m.yStd + m.yMean
		if mu[i] < 0 {
			mu[i] = 0
		}
		sigma[i] = out.Sigma * m.yStd
		prev = mu[i]
	}
	return mu, sigma
}

// SimulateTrace produces a predicted output trace at per-packet
// granularity: the closed-loop per-packet means are used directly (Fig 6's
// formulation needs no window-to-packet sampling stage — temporal
// structure comes from the recurrent state).
func (m *PacketModel) SimulateTrace(tr *trace.Trace, ct *trace.Series, seed int64) *trace.Trace {
	mu, sigma := m.PredictPackets(tr, ct)
	rng := sim.NewRand(seed, 719)
	out := &trace.Trace{Protocol: tr.Protocol + "-iboxml-pkt", PathID: tr.PathID}
	for i, p := range tr.Packets {
		q := p
		if !p.Lost {
			// Small per-packet sampling: a fraction of the predicted sigma,
			// keeping FIFO-plausible smoothness.
			d := mu[i] + 0.1*sigma[i]*rng.NormFloat64()
			if d < 0.1 {
				d = 0.1
			}
			q.RecvTime = p.SendTime + sim.Time(d*float64(sim.Millisecond))
		}
		out.Packets = append(out.Packets, q)
	}
	return out
}
