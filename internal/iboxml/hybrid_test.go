package iboxml

import (
	"math"
	"testing"
	"time"

	"ibox/internal/sim"
	"ibox/internal/stats"
)

func TestHierarchicalMatchesWindowPredictions(t *testing.T) {
	m, err := Train(trainSamples(4, 10*sim.Second), Config{Hidden: 12, Layers: 1, Epochs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(77, 10*sim.Second)
	hier := m.SimulateTraceHierarchical(test, 5)
	if err := hier.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(hier.Packets) != len(test.Packets) {
		t.Fatal("length mismatch")
	}
	// The hierarchical output's window-delay series must track the ground
	// truth about as well as the full path (both are driven by the same
	// LSTM; hierarchical just amortizes it).
	_, gtY, _ := WindowFeatures(test, nil, m.Cfg.Window)
	_, hierY, _ := WindowFeatures(hier, nil, m.Cfg.Window)
	corr := stats.CrossCorrelation(hierY, gtY)
	if corr < 0.5 {
		t.Errorf("hierarchical/GT window-delay correlation = %.3f", corr)
	}
	// Mean delay in the right ballpark.
	if math.Abs(stats.Mean(hierY)-stats.Mean(gtY)) > 0.4*stats.Mean(gtY) {
		t.Errorf("mean delay %.1f vs GT %.1f", stats.Mean(hierY), stats.Mean(gtY))
	}
}

func TestHierarchicalAmortizesLSTMCost(t *testing.T) {
	// §4.2's budget arithmetic: one LSTM step per 100 ms group instead of
	// per packet must cut per-packet cost by roughly the packets-per-group
	// factor. With 1500-byte packets every 1 ms (12 Mbps), that is ~100×;
	// demand at least 10× to stay robust on noisy CI machines.
	m, err := Train(trainSamples(1, 4*sim.Second), Config{Hidden: 64, Layers: 4, Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	// Per-packet (the slow path of the Speed experiment).
	perPacket := m.PredictPacketDelay()
	feat := []float64{15000, 1.0, 1500, 30}
	start := time.Now()
	for i := 0; i < n; i++ {
		perPacket(feat)
	}
	slow := time.Since(start)

	h := m.NewHierarchical(2)
	start = time.Now()
	for i := 0; i < n; i++ {
		h.PacketDelay(sim.Time(i)*sim.Millisecond, 1500)
	}
	fast := time.Since(start)

	speedup := float64(slow) / float64(fast)
	t.Logf("per-packet %v vs hierarchical %v for %d packets: %.0f× speedup", slow, fast, n, speedup)
	if speedup < 10 {
		t.Errorf("hierarchical speedup %.1f×, want ≥ 10×", speedup)
	}
}

func TestHierarchicalDeterministic(t *testing.T) {
	m, err := Train(trainSamples(1, 3*sim.Second), Config{Hidden: 4, Layers: 1, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(50, 3*sim.Second)
	a := m.SimulateTraceHierarchical(test, 9)
	b := m.SimulateTraceHierarchical(test, 9)
	for i := range a.Packets {
		if a.Packets[i].RecvTime != b.Packets[i].RecvTime {
			t.Fatal("hierarchical simulation not deterministic")
		}
	}
}

func TestHierarchicalPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("untrained model did not panic")
		}
	}()
	(&Model{}).NewHierarchical(0)
}
