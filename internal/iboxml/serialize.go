package iboxml

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ibox/internal/nn"
)

// modelJSON is the on-disk form of a trained Model.
type modelJSON struct {
	Cfg         Config            `json:"config"`
	Net         *nn.SequenceModel `json:"net"`
	XMean       []float64         `json:"x_mean"`
	XStd        []float64         `json:"x_std"`
	YMean       float64           `json:"y_mean"`
	YStd        float64           `json:"y_std"`
	OutlierRate float64           `json:"outlier_rate"`
	MinDelayMs  float64           `json:"min_delay_ms"`
	Envelope    envelope          `json:"envelope"`
	// Calibration is the optional training-time baseline (SetBaseline).
	// Omitted when absent; decoders ignore unknown fields, so artifacts
	// round-trip across versions in both directions.
	Calibration *Calibration `json:"calibration,omitempty"`
}

// Write serializes the trained model as JSON.
func (m *Model) Write(w io.Writer) error {
	if !m.trained {
		return fmt.Errorf("iboxml: cannot serialize an untrained model")
	}
	return json.NewEncoder(w).Encode(modelJSON{
		Cfg: m.Cfg, Net: m.Net,
		XMean: m.xScale.Mean, XStd: m.xScale.Std,
		YMean: m.yMean, YStd: m.yStd,
		OutlierRate: m.outlierRate, MinDelayMs: m.minDelayMs,
		Envelope: m.env, Calibration: m.baseline,
	})
}

// Read restores a model serialized by Write.
func Read(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("iboxml: decode model: %w", err)
	}
	m := &Model{
		Cfg: in.Cfg, Net: in.Net,
		xScale:      scaler{Mean: in.XMean, Std: in.XStd},
		yMean:       in.YMean,
		yStd:        in.YStd,
		outlierRate: in.OutlierRate,
		minDelayMs:  in.MinDelayMs,
		env:         in.Envelope,
		baseline:    in.Calibration,
		trained:     true,
	}
	// Reject corrupt or hand-edited checkpoints at load time rather than
	// letting them produce NaN delays (or panic) on first use.
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Save writes the model to a file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := m.Write(w); err != nil {
		return err
	}
	return w.Flush()
}

// Load reads a model from a file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
