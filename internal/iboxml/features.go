// Package iboxml implements the paper's ML-based approach (§4): a deep
// state-space model — a multi-layer LSTM encoding the "network state" h_t
// from packet-stream features, with a Gaussian head P(d_t | h_t) =
// N(w₁ᵀh_t, w₂ᵀh_t) — trained on input–output traces and unrolled
// closed-loop at inference (predicted delays fed back, Fig 6's blue dashed
// lines). It also implements the §5 meldings: the optional cross-traffic
// input feature (mitigating control-loop bias, §4.2/§5.2) and the
// reordering predictors (LSTM and linear logistic) that graft discovered
// behaviours onto iBoxNet output (§5.1).
package iboxml

import (
	"math"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

// WindowFeatures extracts per-window features from a trace's *send side*
// plus the optional cross-traffic estimate:
//
//	[0] sending rate (bytes sent in the window)
//	[1] mean inter-packet spacing within the window (ms)
//	[2] mean packet size (bytes)
//	[3] previous window's delay (ms) — filled by the caller (teacher
//	    forcing during training, fed back during closed-loop inference)
//	[4] cross-traffic estimate for the window (bytes), when ct != nil
//
// These are exactly §4.1's inputs x_t: "instantaneous sending rate …,
// inter-packet spacing, packet size, and previous delay d_{t−1}",
// augmented with §5.2's cross-traffic estimate.
//
// The returned target ys holds the mean delivered one-way delay per window
// (ms) and mask marks windows with at least one delivered packet (lost
// packets have unobserved delay, §4.1).
func WindowFeatures(tr *trace.Trace, ct *trace.Series, window sim.Time) (xs [][]float64, ys []float64, mask []bool) {
	if len(tr.Packets) == 0 {
		return nil, nil, nil
	}
	start := tr.Packets[0].SendTime
	end := start + tr.Duration()
	n := int((end - start) / window)
	if n <= 0 {
		n = 1
	}
	dim := 4
	if ct != nil {
		dim = 5
	}
	xs = make([][]float64, n)
	ys = make([]float64, n)
	mask = make([]bool, n)
	counts := make([]int, n)
	sizes := make([]float64, n)
	sends := make([]int, n)
	var lastSend sim.Time = -1
	spacing := make([]float64, n)
	spacingN := make([]int, n)
	for i := range xs {
		xs[i] = make([]float64, dim)
	}
	for _, p := range tr.Packets {
		w := int((p.SendTime - start) / window)
		if w < 0 {
			w = 0
		}
		if w >= n {
			w = n - 1
		}
		xs[w][0] += float64(p.Size)
		sizes[w] += float64(p.Size)
		sends[w]++
		if lastSend >= 0 {
			spacing[w] += (p.SendTime - lastSend).Millis()
			spacingN[w]++
		}
		lastSend = p.SendTime
		if !p.Lost {
			ys[w] += p.Delay().Millis()
			counts[w]++
		}
	}
	lastDelay := 0.0
	for w := 0; w < n; w++ {
		if sends[w] > 0 {
			xs[w][2] = sizes[w] / float64(sends[w])
		}
		if spacingN[w] > 0 {
			xs[w][1] = spacing[w] / float64(spacingN[w])
		} else {
			xs[w][1] = window.Millis()
		}
		if counts[w] > 0 {
			ys[w] /= float64(counts[w])
			mask[w] = true
			lastDelay = ys[w]
		} else {
			ys[w] = lastDelay
		}
		if ct != nil {
			xs[w][4] = ct.At(start + sim.Time(w)*window)
		}
	}
	// Previous-delay feature (teacher forcing): d_{t−1} from the target.
	for w := 1; w < n; w++ {
		xs[w][3] = ys[w-1]
	}
	xs[0][3] = ys[0]
	return xs, ys, mask
}

// PacketFeatures extracts per-packet features (send side only):
//
//	[0] instantaneous sending rate: bytes sent during the second
//	    preceding the packet's timestamp (§4.1's definition)
//	[1] inter-packet spacing from the previous packet (ms)
//	[2] packet size (bytes)
//	[3] cross-traffic estimate at the send time (bytes/window), when
//	    ct != nil
//
// This is the feature set of the §5.1 reordering predictors and the
// per-packet inference mode used by the §4.2 speed analysis.
func PacketFeatures(tr *trace.Trace, ct *trace.Series) [][]float64 {
	n := len(tr.Packets)
	dim := 3
	if ct != nil {
		dim = 4
	}
	out := make([][]float64, n)
	lo := 0
	bytesInWin := 0
	for i, p := range tr.Packets {
		for lo < i && p.SendTime-tr.Packets[lo].SendTime > sim.Second {
			bytesInWin -= tr.Packets[lo].Size
			lo++
		}
		f := make([]float64, dim)
		f[0] = float64(bytesInWin) // bytes in the preceding second
		if i > 0 {
			f[1] = (p.SendTime - tr.Packets[i-1].SendTime).Millis()
		}
		f[2] = float64(p.Size)
		if ct != nil {
			f[3] = ct.At(p.SendTime)
		}
		out[i] = f
		bytesInWin += p.Size
	}
	return out
}

// scaler standardizes features and targets to zero mean, unit variance,
// using statistics accumulated from training data.
type scaler struct {
	Mean []float64
	Std  []float64
}

func fitScaler(rows [][]float64) scaler {
	if len(rows) == 0 {
		return scaler{}
	}
	d := len(rows[0])
	s := scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, r := range rows {
		for j, v := range r {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(rows))
	}
	for _, r := range rows {
		for j, v := range r {
			dd := v - s.Mean[j]
			s.Std[j] += dd * dd
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(rows)))
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

func (s scaler) apply(row []float64) []float64 {
	out := make([]float64, len(row))
	s.applyInto(row, out)
	return out
}

// applyInto standardizes row into dst without allocating; identical
// arithmetic to apply. dst must have len(row); aliasing row is fine
// (the transform is elementwise).
func (s scaler) applyInto(row, dst []float64) {
	for j, v := range row {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
}
