package iboxml

import (
	"math"

	"ibox/internal/nn"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// This file implements the speedups §4.2 proposes for making deep models
// usable in emulation: "iBoxML could be sped up significantly using hybrid
// models (e.g., combining an accurate but expensive model with a less
// expensive, even if less accurate, model) and a hierarchical approach
// (e.g., making a decision for a group of packets instead of each
// individually)."
//
// HierarchicalPredictor is both at once: the expensive LSTM advances once
// per *group* (time window), producing the group's delay distribution; a
// cheap closed-form per-packet stage (linear interpolation between group
// means plus the per-packet residual model from SimulateTrace) prices
// individual packets. The LSTM cost is amortized over every packet in the
// group, multiplying the implied emulation rate by the group's packet
// count (§4.2's budget arithmetic).

// HierarchicalPredictor prices packets in amortized O(1) LSTM work.
type HierarchicalPredictor struct {
	model *Model
	rng   interface{ NormFloat64() float64 }

	window   sim.Time
	groupEnd sim.Time
	// Current and previous group outputs, for interpolation.
	curMu, curSigma   float64
	prevMu, prevSigma float64
	started           bool
	pred              interface {
		StepGaussian(x []float64) nn.GaussianOutput
	}
	// Running send-side features for the current group.
	bytes   float64
	count   int
	lastOut float64
	// OU state for the per-packet residual.
	z        float64
	lastSend sim.Time
	// Reusable group-feature buffers (raw and standardized) so the
	// per-group LSTM advance allocates nothing.
	x, row []float64
}

// NewHierarchical returns a per-packet predictor that advances the
// underlying LSTM only once per feature window.
func (m *Model) NewHierarchical(seed int64) *HierarchicalPredictor {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	dim := 4
	if m.Cfg.UseCrossTraffic {
		dim = 5
	}
	return &HierarchicalPredictor{
		model:    m,
		rng:      sim.NewRand(seed, 83),
		window:   m.Cfg.Window,
		pred:     m.newPredictor(),
		lastSend: -1,
		x:        make([]float64, dim),
		row:      make([]float64, dim),
	}
}

// PacketDelay prices one packet sent at sendTime with the given size,
// returning the predicted one-way delay in milliseconds. Packets must be
// offered in non-decreasing send-time order.
func (h *HierarchicalPredictor) PacketDelay(sendTime sim.Time, size int) float64 {
	for !h.started || sendTime >= h.groupEnd {
		h.advanceGroup(sendTime)
	}
	// Interpolate between the previous and current group means by position
	// within the group (the hierarchical "decision for a group" smoothed).
	frac := 1 - float64(h.groupEnd-sendTime)/float64(h.window)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	mu := h.prevMu*(1-frac) + h.curMu*frac
	sigma := h.prevSigma*(1-frac) + h.curSigma*frac

	// Cheap per-packet residual: same OU + outlier structure as
	// SimulateTrace, without any LSTM work.
	dt := 0.0
	if h.lastSend >= 0 {
		dt = (sendTime - h.lastSend).Seconds()
	}
	h.lastSend = sendTime
	tau := 3 * h.window.Seconds()
	rho := math.Exp(-dt / tau)
	h.z = rho*h.z + math.Sqrt(1-rho*rho)*h.rng.NormFloat64()
	var d float64
	if u, ok := h.rng.(interface{ Float64() float64 }); ok && u.Float64() < h.model.outlierRate {
		d = h.model.minDelayMs * (1 + 0.1*math.Abs(h.rng.NormFloat64()))
	} else {
		amp := 0.15 * sigma
		d = mu + amp*h.z
	}
	if d < 0.1 {
		d = 0.1
	}
	h.bytes += float64(size)
	h.count++
	return d
}

// Group returns the current group's predicted delay distribution
// (mean, sigma in milliseconds) — the reference a live drift scorer
// compares sampled per-packet delays against.
func (h *HierarchicalPredictor) Group() (mu, sigma float64) {
	return h.curMu, h.curSigma
}

// advanceGroup runs one LSTM step for the group ending at groupEnd and
// rolls the window forward.
func (h *HierarchicalPredictor) advanceGroup(now sim.Time) {
	// h.x starts zeroed; on the first (pre-start) advance it stays all
	// zero, afterwards every feature it carries is reassigned per group.
	x := h.x
	if h.started {
		x[0] = h.bytes
		if h.count > 1 {
			x[1] = h.window.Millis() / float64(h.count)
		} else {
			x[1] = h.window.Millis()
		}
		if h.count > 0 {
			x[2] = h.bytes / float64(h.count)
		} else {
			x[2] = 0
		}
		x[3] = h.lastOut
	}
	h.model.xScale.applyInto(x, h.row)
	out := h.pred.StepGaussian(h.row)
	h.prevMu, h.prevSigma = h.curMu, h.curSigma
	h.curMu = out.Mu*h.model.yStd + h.model.yMean
	if h.curMu < 0 {
		h.curMu = 0
	}
	h.curSigma = out.Sigma * h.model.yStd
	h.lastOut = h.curMu
	if !h.started {
		h.started = true
		h.prevMu, h.prevSigma = h.curMu, h.curSigma
		h.groupEnd = now + h.window
	} else {
		h.groupEnd += h.window
	}
	h.bytes, h.count = 0, 0
}

// SimulateTraceHierarchical is SimulateTrace built on the amortized
// predictor: identical output contract, one LSTM step per window instead
// of closed-loop per-window prediction plus separate sampling.
func (m *Model) SimulateTraceHierarchical(tr *trace.Trace, seed int64) *trace.Trace {
	h := m.NewHierarchical(seed)
	out := &trace.Trace{Protocol: tr.Protocol + "-iboxml-hier", PathID: tr.PathID}
	for _, p := range tr.Packets {
		q := p
		if !p.Lost {
			d := h.PacketDelay(p.SendTime, p.Size)
			q.RecvTime = p.SendTime + sim.Time(d*float64(sim.Millisecond))
		}
		out.Packets = append(out.Packets, q)
	}
	return out
}
