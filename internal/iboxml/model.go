package iboxml

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Config parameterizes the iBoxML delay model. Zero values select small
// CPU-friendly defaults (the paper used a 4-layer ≈2M-parameter LSTM on a
// V100; this reproduction trains pure-Go on CPU, so the defaults are
// modest — the architecture, loss and inference procedure are identical).
type Config struct {
	Hidden int      // LSTM hidden size; default 24
	Layers int      // LSTM layers; default 2
	Window sim.Time // feature window; default 100 ms
	// UseCrossTraffic appends the domain-knowledge cross-traffic estimate
	// (§3) as an input feature — the §5.2 melding that mitigates
	// control-loop bias.
	UseCrossTraffic bool
	Epochs          int     // training passes over the corpus; default 30
	LR              float64 // Adam learning rate; default 0.005
	// PrevDelayNoise perturbs the teacher-forced d_{t−1} feature during
	// training by Gaussian noise of this many target standard deviations.
	// Without it the model learns the shortcut d_t ≈ d_{t−1} and collapses
	// toward a fixed point when unrolled closed-loop (the exposure-bias
	// face of §4.2's control-loop problem). Default 0.3; negative disables.
	PrevDelayNoise float64
	Seed           int64
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 24
	}
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Window <= 0 {
		c.Window = 100 * sim.Millisecond
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.LR <= 0 {
		c.LR = 0.005
	}
	if c.PrevDelayNoise == 0 {
		c.PrevDelayNoise = 0.3
	}
	if c.PrevDelayNoise < 0 {
		c.PrevDelayNoise = 0
	}
	return c
}

// TrainDiag is the training-trajectory record Train leaves on the model:
// gradient norms (pre-clip global L2, one reading per optimizer step),
// the converged loss, and how many sequences were skipped for non-finite
// loss. It feeds the run report's fidelity section (see RecordFidelity).
type TrainDiag struct {
	Epochs        int
	FinalLoss     float64
	GradNormFirst float64
	GradNormLast  float64
	GradNormMax   float64
	NonFiniteSeqs int64
}

// ErrDiverged marks a training run aborted by the NaN/Inf guard: the loss
// or the parameters became non-finite, or the loss exploded past any
// plausible value. Callers match it with errors.Is; the wrapped message
// carries the epoch and the offending quantities.
var ErrDiverged = errors.New("iboxml: training diverged")

// lossDivergenceLimit is the mean-epoch-loss ceiling of the divergence
// guard. The Gaussian NLL on standardized targets is O(1–10) for any
// model that is even vaguely tracking the data; a mean loss beyond this
// means the head is predicting garbage (typically an exploding learning
// rate) and every further epoch would be wasted work.
const lossDivergenceLimit = 1e8

// Model is a trained iBoxML delay model.
type Model struct {
	Cfg Config
	Net *nn.SequenceModel
	// Diag records the training trajectory (gradient norms, final loss);
	// zero for deserialized models.
	Diag    TrainDiag
	xScale  scaler
	yMean   float64
	yStd    float64
	trained bool
	// outlierRate is the fraction of packets in the training traces that
	// arrived out of order — early arrivals whose delay dropped below the
	// neighbourhood's (e.g. a multipath shortcut). SimulateTrace samples
	// this fraction of packets from a low-delay outlier component; the
	// paper's per-packet LSTM absorbs the same information from the delay
	// stream itself ("the model was trained only to match delays and no
	// explicit knowledge of reordering was provided").
	outlierRate float64
	// minDelayMs is the training corpus' 5th-percentile window delay — the
	// near-propagation floor that outlier (queue-skipping) packets see.
	minDelayMs float64
	// env is the training feature envelope backing the §6 model-validity
	// analysis (see Validity).
	env envelope
	// useInt8 switches inference onto the opt-in int8-quantized kernel.
	// Off by default; see EnableInt8.
	useInt8 bool
	// baseline is the training-time calibration scorecard embedded in
	// the artifact (SetBaseline/Baseline); nil when never calibrated or
	// when the artifact predates baselines.
	baseline *Calibration
}

// EnableInt8 toggles the int8-quantized inference kernel for every
// prediction path of this model (replay, hierarchical, per-packet,
// open-loop). It trades exactness for an 8× smaller weight working set:
// quantized predictions are NOT bitwise-identical to the float path
// (weights round to 8 bits per value with per-row scales), so downstream
// byte-identity guarantees no longer hold across the toggle. Re-validate
// fidelity on held-out traces via Calibrate before serving with it.
// Training is unaffected — quantization applies at kernel compile time.
func (m *Model) EnableInt8(on bool) { m.useInt8 = on }

// Int8Enabled reports whether the int8 inference kernel is active.
func (m *Model) Int8Enabled() bool { return m.useInt8 }

// inferModel returns the compiled inference kernel honoring the int8
// toggle.
func (m *Model) inferModel() *nn.InferModel {
	if m.useInt8 {
		return m.Net.InferQuantized()
	}
	return m.Net.Infer()
}

// newPredictor returns a stateful handle on the active kernel.
func (m *Model) newPredictor() *nn.Predictor {
	if m.useInt8 {
		return m.Net.NewPredictorQuantized()
	}
	return m.Net.NewPredictor()
}

// TrainingSample pairs a trace with its (optional) cross-traffic estimate.
type TrainingSample struct {
	Trace *trace.Trace
	CT    *trace.Series // used only when Config.UseCrossTraffic
}

// Train fits an iBoxML model on the given traces. When cfg.UseCrossTraffic
// is set, each sample's CT series is appended as an input feature (samples
// with a nil CT use zeros).
func Train(samples []TrainingSample, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("iboxml: no training samples")
	}
	dim := 4
	if cfg.UseCrossTraffic {
		dim = 5
	}

	type seq struct {
		xs   [][]float64
		ys   []float64
		mask []bool
	}
	var seqs []seq
	var allX [][]float64
	var allY []float64
	for _, s := range samples {
		ct := s.CT
		if !cfg.UseCrossTraffic {
			ct = nil
		}
		xs, ys, mask := WindowFeatures(s.Trace, ct, cfg.Window)
		if len(xs) == 0 {
			continue
		}
		if cfg.UseCrossTraffic && s.CT == nil {
			// WindowFeatures returned 4-dim rows; widen with a zero column.
			// Each widened row is a fresh copy: append on a full-capacity
			// slice usually reallocates, but that is an implementation
			// detail — an explicit copy guarantees the rows shared between
			// seqs and allX below can never alias a partially-mutated
			// buffer when scaler fitting reads them.
			for i := range xs {
				row := make([]float64, len(xs[i])+1)
				copy(row, xs[i])
				xs[i] = row
			}
		}
		seqs = append(seqs, seq{xs, ys, mask})
		allX = append(allX, xs...)
		for i, m := range mask {
			if m {
				allY = append(allY, ys[i])
			}
		}
	}
	if len(seqs) == 0 || len(allY) == 0 {
		return nil, fmt.Errorf("iboxml: training data contains no delivered packets")
	}

	m := &Model{Cfg: cfg}
	m.xScale = fitScaler(allX)
	m.env = fitEnvelope(allX)
	m.yMean = mean(allY)
	m.yStd = std(allY, m.yMean)
	if m.yStd == 0 {
		m.yStd = 1
	}
	// Delay-structure statistics for per-packet sampling (SimulateTrace).
	reordered, delivered := 0, 0
	for _, s := range samples {
		flags := s.Trace.ReorderedFlags()
		for _, f := range flags {
			if f {
				reordered++
			}
		}
		delivered += len(flags)
	}
	if delivered > 0 {
		m.outlierRate = float64(reordered) / float64(delivered)
	}
	sortedY := append([]float64(nil), allY...)
	sortFloats(sortedY)
	m.minDelayMs = sortedY[len(sortedY)/20]
	m.Net = nn.NewSequenceModel(nn.GaussianHead, dim, cfg.Hidden, cfg.Layers, cfg.Seed)
	opt := nn.NewAdam(cfg.LR, m.Net.Params())

	// Per-epoch training telemetry: mean sequence loss (gauge; the last
	// value is the converged loss), gradient norm and epoch wall time. All
	// handles are nil no-ops when observability is disabled, and nothing
	// recorded here feeds back into training, so enabling the layer cannot
	// perturb the learnt weights. The NaN/Inf divergence guard below, by
	// contrast, is always on: it reads only quantities training computes
	// anyway, so it is identical with observability on or off.
	reg := obs.Get()
	lossGauge := reg.Gauge("iboxml.epoch_loss")
	gradGauge := reg.Gauge("iboxml.grad_norm")
	epochHist := reg.Histogram("iboxml.epoch_ns")
	epochs := reg.Counter("iboxml.epochs")
	reg.Counter("iboxml.trainings").Add(1)
	logger := obs.Logger()

	noiseRng := sim.NewRand(cfg.Seed, 313)
	firstStep := true
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochStart time.Time
		if epochHist != nil || logger != nil {
			epochStart = time.Now()
		}
		lossSum, lossN := 0.0, 0
		for _, s := range seqs {
			xs := make([][]float64, len(s.xs))
			ys := make([]float64, len(s.ys))
			for t := range s.xs {
				xs[t] = m.xScale.apply(s.xs[t])
				ys[t] = (s.ys[t] - m.yMean) / m.yStd
				if cfg.PrevDelayNoise > 0 {
					// Perturb the (standardized) teacher-forced d_{t−1} so
					// the model cannot rely on it exclusively.
					xs[t][3] += cfg.PrevDelayNoise * noiseRng.NormFloat64()
				}
			}
			loss := m.Net.TrainSequence(xs, ys, s.mask)
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				m.Diag.NonFiniteSeqs++
				continue
			}
			lossSum += loss
			lossN++
			gn := opt.Step()
			if firstStep {
				m.Diag.GradNormFirst = gn
				firstStep = false
			}
			m.Diag.GradNormLast = gn
			if gn > m.Diag.GradNormMax {
				m.Diag.GradNormMax = gn
			}
		}
		// NaN/Inf guard: abort with a diagnostic instead of grinding out a
		// poisoned model. Three trips: every sequence's loss non-finite,
		// the mean loss non-finite or exploded, or the weights themselves
		// no longer finite.
		if lossN == 0 {
			return nil, fmt.Errorf("%w: all %d sequence losses non-finite at epoch %d/%d (grad norm %.3g); lower the learning rate (lr=%g) or check the training data",
				ErrDiverged, len(seqs), epoch+1, cfg.Epochs, m.Diag.GradNormLast, cfg.LR)
		}
		meanLoss := lossSum / float64(lossN)
		if math.IsNaN(meanLoss) || math.IsInf(meanLoss, 0) || meanLoss > lossDivergenceLimit {
			return nil, fmt.Errorf("%w: mean loss %.3g at epoch %d/%d (grad norm %.3g, %d/%d sequences non-finite); lower the learning rate (lr=%g)",
				ErrDiverged, meanLoss, epoch+1, cfg.Epochs, m.Diag.GradNormLast, len(seqs)-lossN, len(seqs), cfg.LR)
		}
		if !paramsFinite(m.Net.Params()) {
			return nil, fmt.Errorf("%w: non-finite parameters after epoch %d/%d (mean loss %.3g, grad norm %.3g); lower the learning rate (lr=%g)",
				ErrDiverged, epoch+1, cfg.Epochs, meanLoss, m.Diag.GradNormLast, cfg.LR)
		}
		m.Diag.Epochs = epoch + 1
		m.Diag.FinalLoss = meanLoss
		if epochHist != nil {
			epochHist.ObserveSince(epochStart)
			epochs.Add(1)
			lossGauge.Set(meanLoss)
			gradGauge.Set(m.Diag.GradNormLast)
		}
		if logger != nil {
			logger.Debug("iboxml epoch",
				"epoch", epoch+1, "epochs", cfg.Epochs,
				"loss", meanLoss, "grad_norm", m.Diag.GradNormLast,
				"ms", float64(time.Since(epochStart).Microseconds())/1e3)
		}
	}
	m.trained = true
	if logger != nil {
		logger.Info("iboxml trained",
			"epochs", m.Diag.Epochs, "loss", m.Diag.FinalLoss,
			"grad_norm_max", m.Diag.GradNormMax, "params", m.NumParams(),
			"sequences", len(seqs), "non_finite_seqs", m.Diag.NonFiniteSeqs)
	}
	return m, nil
}

// paramsFinite reports whether every scalar parameter is finite.
func paramsFinite(params []*nn.Param) bool {
	for _, p := range params {
		for _, w := range p.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
	}
	return true
}

// NumParams reports the scalar parameter count of the underlying network.
func (m *Model) NumParams() int { return m.Net.NumParams() }

// PredictWindows replays a test trace's sending-rate timeline through the
// model closed-loop (§4.1: "we feed the predicted delays as we unroll the
// LSTM network over time") and returns the predicted per-window delay
// means and standard deviations in milliseconds. ct may be nil.
func (m *Model) PredictWindows(tr *trace.Trace, ct *trace.Series) (mu, sigma []float64) {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	useCT := m.Cfg.UseCrossTraffic
	var ctArg *trace.Series
	if useCT {
		ctArg = ct
	}
	xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
	if useCT && ctArg == nil {
		for i := range xs {
			xs[i] = append(xs[i], 0)
		}
	}
	pred := m.newPredictor()
	mu = make([]float64, len(xs))
	sigma = make([]float64, len(xs))
	var row []float64
	if len(xs) > 0 {
		row = make([]float64, len(xs[0]))
	}
	prevDelay := 0.0
	first := true
	for t := range xs {
		// Closed loop: overwrite the teacher-forced d_{t−1} feature with
		// the model's own previous prediction.
		if !first {
			xs[t][3] = prevDelay
		}
		m.xScale.applyInto(xs[t], row)
		out := pred.StepGaussian(row)
		mu[t] = out.Mu*m.yStd + m.yMean
		sigma[t] = out.Sigma * m.yStd
		if mu[t] < 0 {
			mu[t] = 0
		}
		prevDelay = mu[t]
		if first {
			// The t=0 feature used the teacher value; subsequent steps are
			// fully closed-loop.
			first = false
		}
	}
	return mu, sigma
}

// SimulateTrace produces a full predicted output trace for the given input
// (send-side) timeline, turning the per-window closed-loop delay
// distributions into per-packet delays with realistic temporal structure:
//
//   - a smooth component — the window mean plus an AR(1) (Ornstein–
//     Uhlenbeck) deviation with a multi-window correlation time, because a
//     queue's delay evolves smoothly and i.i.d. per-packet sampling would
//     invert nearly half of all packet pairs;
//   - an outlier component — with the training corpus' observed early-
//     arrival rate, a packet's delay collapses toward the near-propagation
//     floor, recreating queue-skipping (multipath) arrivals. This is how
//     reordering emerges from a model "trained only to match delays"
//     (Fig 5).
//
// Lost packets in the input are echoed as lost.
func (m *Model) SimulateTrace(tr *trace.Trace, ct *trace.Series, seed int64) *trace.Trace {
	mu, sigma := m.PredictWindows(tr, ct)
	return m.samplePackets(tr, mu, sigma, seed)
}

// samplePackets turns per-window closed-loop delay distributions into the
// per-packet output trace (the sampling half of SimulateTrace). It is
// shared between the single-trace path and SimulateTraceBatch so both
// produce identical bytes for identical (mu, sigma, seed).
func (m *Model) samplePackets(tr *trace.Trace, mu, sigma []float64, seed int64) *trace.Trace {
	rng := sim.NewRand(seed, 71)
	out := &trace.Trace{Protocol: tr.Protocol + "-iboxml", PathID: tr.PathID}
	if len(tr.Packets) == 0 {
		return out
	}
	// jitterFrac scales the predicted window sigma down to a per-packet
	// jitter magnitude. The amplitude is additionally capped at a few send
	// gaps: a FIFO queue's jitter cannot reorder packets, so the smooth
	// component must (almost) never invert arrivals — reordering is the
	// outlier component's job.
	const jitterFrac = 0.15
	start := tr.Packets[0].SendTime
	meanGapMs := tr.Duration().Millis() / float64(len(tr.Packets))
	tau := 3 * m.Cfg.Window.Seconds() // OU correlation time, seconds
	z := 0.0                          // standardized smooth-deviation state
	var lastSend sim.Time = -1
	for _, p := range tr.Packets {
		w := int((p.SendTime - start) / m.Cfg.Window)
		if w < 0 {
			w = 0
		}
		if w >= len(mu) {
			w = len(mu) - 1
		}
		q := p
		if !p.Lost {
			dt := 0.0
			if lastSend >= 0 {
				dt = (p.SendTime - lastSend).Seconds()
			}
			lastSend = p.SendTime
			rho := math.Exp(-dt / tau)
			z = rho*z + math.Sqrt(1-rho*rho)*rng.NormFloat64()
			var d float64
			if rng.Float64() < m.outlierRate {
				// Queue-skipping outlier: near the propagation floor.
				d = m.minDelayMs * (1 + 0.1*math.Abs(rng.NormFloat64()))
			} else {
				// The head's sigma is the *window-aggregate* uncertainty;
				// per-packet jitter around the smooth queue trajectory is a
				// small fraction of it, capped at a few send gaps.
				amp := jitterFrac * sigma[w]
				if cap := 3 * meanGapMs; amp > cap {
					amp = cap
				}
				d = mu[w] + amp*z
			}
			if d < 0.1 {
				d = 0.1
			}
			q.RecvTime = p.SendTime + sim.Time(d*float64(sim.Millisecond))
		}
		out.Packets = append(out.Packets, q)
	}
	return out
}

// PredictWindowsOpenLoop predicts per-window delays with the true previous
// delay (teacher forcing) rather than the model's own feedback. It
// measures one-step-ahead accuracy, isolating model quality from the
// closed-loop compounding of §4.1's unrolling; the trace must contain
// receive timestamps.
func (m *Model) PredictWindowsOpenLoop(tr *trace.Trace, ct *trace.Series) (mu, sigma []float64) {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	var ctArg *trace.Series
	if m.Cfg.UseCrossTraffic {
		ctArg = ct
	}
	xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
	if m.Cfg.UseCrossTraffic && ctArg == nil {
		for i := range xs {
			xs[i] = append(xs[i], 0)
		}
	}
	// Teacher forcing means the whole window is known up front, so the
	// input projections run as one blocked pass per layer instead of per
	// step (InferModel.Forward) — bitwise-identical to stepping.
	rows := make([][]float64, len(xs))
	for t := range xs {
		rows[t] = m.xScale.apply(xs[t])
	}
	outs := m.Net.PredictSequenceOn(m.inferModel(), rows)
	mu = make([]float64, len(xs))
	sigma = make([]float64, len(xs))
	for t, out := range outs {
		mu[t] = out.Mu*m.yStd + m.yMean
		sigma[t] = out.Sigma * m.yStd
		if mu[t] < 0 {
			mu[t] = 0
		}
	}
	return mu, sigma
}

// PredictPacketDelay is the per-packet inference mode used by the §4.2
// speed analysis: one LSTM step per packet. The returned function advances
// the model one packet at a time and reports the predicted delay (ms).
// The closure performs no per-call allocation — all scratch (input
// buffers, kernel state) is owned by the closure and reused.
func (m *Model) PredictPacketDelay() func(features []float64) float64 {
	pred := m.newPredictor()
	dim := 4
	if m.Cfg.UseCrossTraffic {
		dim = 5
	}
	buf := make([]float64, dim)
	row := make([]float64, dim)
	return func(features []float64) float64 {
		copy(buf, features)
		m.xScale.applyInto(buf, row)
		out := pred.StepGaussian(row)
		return out.Mu*m.yStd + m.yMean
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func std(xs []float64, m float64) float64 {
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

func sortFloats(xs []float64) {
	sort.Float64s(xs)
}
