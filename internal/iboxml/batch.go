package iboxml

import (
	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/trace"
)

// Batched closed-loop inference: unroll several independent traces through
// the same trained model in lockstep, one window-step per member per
// round, on the compiled inference kernel (nn.InferModel). This is the
// amortization behind request micro-batching in internal/serve: the
// per-window setup — feature extraction, standardization, and the layer-0
// pre-projection below — is paid once per call for the whole group, and
// the lockstep loop itself is allocation-free (member states, standardized
// rows, and the head scratch are set up once per call and reused every
// step).
//
// Two kernel-level savings apply on top of batching:
//
//   - every feature column except the closed-loop d_{t−1} feedback is
//     known before the unroll starts, so those columns are standardized
//     once up front and the layer-0 projection of the known prefix is
//     pre-computed for the whole window in blocked passes
//     (nn.PreProjectInput); the sequential step only adds the feedback
//     and cross-traffic terms plus the recurrent matvec;
//   - each member steps through the packed inference layout, where a
//     unit's four gate rows run as four parallel accumulator chains off
//     one weight stream (SIMD lanes where available; see internal/nn).
//
// Correctness contract: each member's arithmetic — feature extraction,
// standardization, the closed-loop d_{t−1} feedback, and the de-
// standardized mu/sigma clamping — is the exact operation sequence of
// PredictWindows. Standardization is elementwise, so standardizing known
// columns early is identical; pre-projection resumes each gate row's
// accumulator mid-sum without reordering any addition (bias first, then
// input terms ascending k, then recurrent terms ascending k). Batched
// results therefore equal unbatched results float-for-float regardless
// of batch composition. (With EnableInt8 the kernel itself is not
// bitwise-exact and pre-projection is skipped, but batched still equals
// unbatched on the same kernel.)

// feedbackCol is the index of the closed-loop d_{t−1} feature — the only
// input column not known before the unroll begins.
const feedbackCol = 3

// PredictWindowsBatch runs the closed-loop window prediction of
// PredictWindows for several traces at once. cts may be nil (no
// cross-traffic estimate for any member) or must have one (possibly nil)
// entry per trace. The returned mu/sigma slices are per-trace and bitwise
// identical to calling PredictWindows on each (trace, ct) pair.
func (m *Model) PredictWindowsBatch(trs []*trace.Trace, cts []*trace.Series) (mus, sigmas [][]float64) {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	if cts != nil && len(cts) != len(trs) {
		panic("iboxml: PredictWindowsBatch traces/cross-traffic length mismatch")
	}
	n := len(trs)
	useCT := m.Cfg.UseCrossTraffic
	xss := make([][][]float64, n)
	maxT := 0
	for i, tr := range trs {
		var ctArg *trace.Series
		if useCT && cts != nil {
			ctArg = cts[i]
		}
		xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
		if useCT && ctArg == nil {
			for t := range xs {
				xs[t] = append(xs[t], 0)
			}
		}
		xss[i] = xs
		if len(xs) > maxT {
			maxT = len(xs)
		}
	}
	im := m.inferModel()
	sts := make([]*nn.InferState, n)
	mus = make([][]float64, n)
	sigmas = make([][]float64, n)
	for i := range sts {
		sts[i] = im.NewState()
		mus[i] = make([]float64, len(xss[i]))
		sigmas[i] = make([]float64, len(xss[i]))
	}
	obs.Get().Histogram("iboxml.batch_members").Observe(int64(n))

	// Standardize every known column of every member's window once.
	// Column feedbackCol is rewritten per step with the member's own
	// standardized previous prediction (t=0 keeps the teacher value,
	// exactly as PredictWindows does).
	rowsStd := make([][][]float64, n)
	for i := range xss {
		T := len(xss[i])
		if T == 0 {
			continue
		}
		d := len(xss[i][0])
		slab := make([]float64, T*d)
		rs := make([][]float64, T)
		for t := 0; t < T; t++ {
			rs[t] = slab[t*d : (t+1)*d]
			m.xScale.applyInto(xss[i][t], rs[t])
		}
		rowsStd[i] = rs
	}

	// Pre-project the known input prefix (columns k < feedbackCol) of
	// every member's whole window through layer 0 in blocked passes; the
	// step loop resumes from the partials with tailOff = feedbackCol.
	// The quantized kernel has no pre-projection support.
	var pres [][]float64
	tailOff := 0
	rowsPer := im.InputRowsPerStep()
	if !im.Quantized() {
		tailOff = feedbackCol
		pres = make([][]float64, n)
		for i := range rowsStd {
			if len(rowsStd[i]) == 0 {
				continue
			}
			pres[i] = make([]float64, len(rowsStd[i])*rowsPer)
			im.PreProjectInput(pres[i], rowsStd[i], tailOff)
		}
	}

	// Lockstep unroll. Members whose traces span fewer windows drop out of
	// the active set as their sequences end; each member's state advances
	// through exactly its own inputs, so membership never changes results.
	prevDelay := make([]float64, n)
	active := make([]int, 0, n)
	batchSts := make([]*nn.InferState, 0, n)
	batchRows := make([][]float64, 0, n)
	batchPres := make([][]float64, 0, n)
	head := make([]float64, m.Net.Head.Out)
	for t := 0; t < maxT; t++ {
		active = active[:0]
		batchSts = batchSts[:0]
		batchRows = batchRows[:0]
		batchPres = batchPres[:0]
		for i := range xss {
			if t >= len(xss[i]) {
				continue
			}
			r := rowsStd[i][t]
			if t > 0 {
				// Closed loop: the standardized d_{t−1} feedback.
				// Elementwise, so identical to standardizing the raw row.
				r[feedbackCol] = (prevDelay[i] - m.xScale.Mean[feedbackCol]) / m.xScale.Std[feedbackCol]
			}
			active = append(active, i)
			batchSts = append(batchSts, sts[i])
			batchRows = append(batchRows, r)
			if pres != nil {
				batchPres = append(batchPres, pres[i][t*rowsPer:(t+1)*rowsPer])
			}
		}
		var bp [][]float64
		if pres != nil {
			bp = batchPres
		}
		im.StepBatchInto(batchSts, batchRows, bp, tailOff)
		for k, i := range active {
			out := m.Net.HeadGaussian(batchSts[k].Top(), head)
			mu := out.Mu*m.yStd + m.yMean
			sg := out.Sigma * m.yStd
			if mu < 0 {
				mu = 0
			}
			mus[i][t] = mu
			sigmas[i][t] = sg
			prevDelay[i] = mu
		}
	}
	return mus, sigmas
}

// SimulateTraceBatch produces one predicted output trace per input, with
// the closed-loop window predictions computed in one lockstep batch and
// the per-packet sampling done per member from its own seed. cts may be
// nil; seeds must have one entry per trace. Outputs are bitwise identical
// to calling SimulateTrace(trs[i], cts[i], seeds[i]) one at a time.
func (m *Model) SimulateTraceBatch(trs []*trace.Trace, cts []*trace.Series, seeds []int64) []*trace.Trace {
	if len(seeds) != len(trs) {
		panic("iboxml: SimulateTraceBatch traces/seeds length mismatch")
	}
	mus, sigmas := m.PredictWindowsBatch(trs, cts)
	out := make([]*trace.Trace, len(trs))
	for i, tr := range trs {
		out[i] = m.samplePackets(tr, mus[i], sigmas[i], seeds[i])
	}
	return out
}
