package iboxml

import (
	"fmt"
	"time"

	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Batched closed-loop inference: unroll several independent traces in
// lockstep, one window-step per member per round, on the compiled
// inference kernel (nn.InferModel). Lanes need not share a checkpoint —
// each lane carries its own trained Model and the kernel steps it through
// its own compiled weights (nn.StepBatchLanesInto) — they only have to
// share a Shape: architecture plus windowing. This is the amortization
// behind cross-checkpoint request micro-batching in internal/serve: the
// per-window setup — feature extraction, standardization, and the layer-0
// pre-projection below — is paid once per lane per call instead of once
// per request round-trip, and the lockstep loop itself is allocation-free
// (lane states, standardized rows, and the head scratch are set up once
// per call and reused every step).
//
// Two kernel-level savings apply on top of batching:
//
//   - every feature column except the closed-loop d_{t−1} feedback is
//     known before the unroll starts, so those columns are standardized
//     once up front and the layer-0 projection of the known prefix is
//     pre-computed for the whole window in blocked passes
//     (nn.PreProjectInput); the sequential step only adds the feedback
//     and cross-traffic terms plus the recurrent matvec;
//   - each lane steps through the packed inference layout, where a
//     unit's four gate rows run as four parallel accumulator chains off
//     one weight stream (SIMD lanes where available; see internal/nn).
//
// Correctness contract: each lane's arithmetic — feature extraction,
// standardization, the closed-loop d_{t−1} feedback, and the de-
// standardized mu/sigma clamping — is the exact operation sequence of
// PredictWindows against that lane's own model. Standardization is
// elementwise, so standardizing known columns early is identical;
// pre-projection resumes each gate row's accumulator mid-sum without
// reordering any addition (bias first, then input terms ascending k, then
// recurrent terms ascending k). Batched results therefore equal unbatched
// results float-for-float regardless of batch composition or order —
// including across distinct checkpoints in one batch. (With EnableInt8
// the kernel itself is not bitwise-exact and pre-projection is skipped,
// but batched still equals unbatched on the same kernel; quantization is
// part of the Shape, so float and int8 lanes never mix.)

// feedbackCol is the index of the closed-loop d_{t−1} feature — the only
// input column not known before the unroll begins.
const feedbackCol = 3

// defaultLaneChunk is the streaming emission granularity, in windows,
// when a caller passes chunk <= 0 to the lane entry points.
const defaultLaneChunk = 64

// Shape is the co-batching compatibility key for cross-checkpoint lane
// batching: two models whose Shapes are equal can advance side by side in
// one lockstep batch (different weights are fine — that is the point).
// In/Hidden/Layers pin the compiled kernel architecture, Window pins the
// feature extraction cadence, and Quantized separates the opt-in int8
// kernel from the bitwise-exact float path.
type Shape struct {
	In        int
	Hidden    int
	Layers    int
	Window    sim.Time
	Quantized bool
}

// String renders the shape as a compact label, e.g. "in4_h96_l1_w100ms"
// (with an "_int8" suffix on the quantized kernel) — used as the metric
// label of the serving layer's per-shape batch-occupancy histogram.
func (s Shape) String() string {
	q := ""
	if s.Quantized {
		q = "_int8"
	}
	return fmt.Sprintf("in%d_h%d_l%d_w%s%s", s.In, s.Hidden, s.Layers, time.Duration(s.Window), q)
}

// Shape returns the model's co-batching key. The architecture part is
// read from the trained network itself (not the config), so it is the
// ground truth of what the compiled kernel will execute.
func (m *Model) Shape() Shape {
	ls := m.Net.LSTM.Layers
	return Shape{
		In:        ls[0].In,
		Hidden:    ls[0].Hidden,
		Layers:    len(ls),
		Window:    m.Cfg.Window,
		Quantized: m.useInt8,
	}
}

// ReplayLane is one member of a cross-checkpoint lane batch: a trained
// model replaying one send-side input trace.
type ReplayLane struct {
	Model *Model
	Input *trace.Trace
	// CT optionally carries the lane's cross-traffic estimate; ignored
	// unless the lane's model was trained with UseCrossTraffic.
	CT *trace.Series
	// Seed drives the lane's per-packet sampling (SimulateTraceLanes).
	Seed int64
	// Emit, when non-nil, streams the lane's closed-loop predictions
	// incrementally: it is called with each computed chunk of windows —
	// mu/sigma for windows [t0, t0+len(mu)) — every `chunk` lockstep
	// rounds and at the lane's end. The slices alias internal buffers and
	// are only valid during the call; copy to retain. Returning false
	// abandons the lane: its remaining windows are never computed, its
	// results come back nil, and no other lane is affected.
	Emit func(t0 int, mu, sigma []float64) bool
}

// PredictWindowsLanes runs the closed-loop window prediction of
// PredictWindows for several (model, trace) lanes at once, in lockstep.
// All lane models must be trained and share one Shape; mixing shapes
// panics rather than corrupting state. chunk sets the Emit granularity in
// windows (<= 0 selects a default; irrelevant when no lane has an Emit).
// The returned mu/sigma slices are per-lane and bitwise identical to
// calling lanes[i].Model.PredictWindows(lanes[i].Input, lanes[i].CT);
// a lane abandoned by its Emit returns nil slices instead.
func PredictWindowsLanes(lanes []ReplayLane, chunk int) (mus, sigmas [][]float64) {
	n := len(lanes)
	mus = make([][]float64, n)
	sigmas = make([][]float64, n)
	if n == 0 {
		return mus, sigmas
	}
	if chunk <= 0 {
		chunk = defaultLaneChunk
	}
	shape := laneShape(lanes)

	// Per-lane setup, each against the lane's own model parameters:
	// feature extraction first.
	xss := make([][][]float64, n)
	maxT := 0
	for i := range lanes {
		m := lanes[i].Model
		var ctArg *trace.Series
		if m.Cfg.UseCrossTraffic {
			ctArg = lanes[i].CT
		}
		xs, _, _ := WindowFeatures(lanes[i].Input, ctArg, m.Cfg.Window)
		if m.Cfg.UseCrossTraffic && ctArg == nil {
			for t := range xs {
				xs[t] = append(xs[t], 0)
			}
		}
		xss[i] = xs
		if len(xs) > maxT {
			maxT = len(xs)
		}
	}
	ims := make([]*nn.InferModel, n)
	sts := make([]*nn.InferState, n)
	maxHead := 0
	for i := range lanes {
		ims[i] = lanes[i].Model.inferModel()
		sts[i] = ims[i].NewState()
		mus[i] = make([]float64, len(xss[i]))
		sigmas[i] = make([]float64, len(xss[i]))
		if o := lanes[i].Model.Net.Head.Out; o > maxHead {
			maxHead = o
		}
	}
	obs.Get().Histogram("iboxml.batch_members").Observe(int64(n))

	// Standardize every known column of every lane's window once, with
	// the lane's own scaler. Column feedbackCol is rewritten per step
	// with the lane's own standardized previous prediction (t=0 keeps
	// the teacher value, exactly as PredictWindows does).
	rowsStd := make([][][]float64, n)
	for i := range xss {
		T := len(xss[i])
		if T == 0 {
			continue
		}
		d := len(xss[i][0])
		slab := make([]float64, T*d)
		rs := make([][]float64, T)
		for t := 0; t < T; t++ {
			rs[t] = slab[t*d : (t+1)*d]
			lanes[i].Model.xScale.applyInto(xss[i][t], rs[t])
		}
		rowsStd[i] = rs
	}

	// Pre-project the known input prefix (columns k < feedbackCol) of
	// every lane's whole window through that lane's layer 0 in blocked
	// passes; the step loop resumes from the partials with tailOff =
	// feedbackCol. The quantized kernel has no pre-projection support
	// (Quantized is part of the Shape, so the group is uniform).
	var pres [][]float64
	tailOff := 0
	rowsPer := ims[0].InputRowsPerStep()
	if !shape.Quantized {
		tailOff = feedbackCol
		pres = make([][]float64, n)
		for i := range rowsStd {
			if len(rowsStd[i]) == 0 {
				continue
			}
			pres[i] = make([]float64, len(rowsStd[i])*rowsPer)
			ims[i].PreProjectInput(pres[i], rowsStd[i], tailOff)
		}
	}

	// Lockstep unroll. Lanes whose traces span fewer windows — or whose
	// Emit abandoned them — drop out of the active set; each lane's state
	// advances through exactly its own inputs on its own weights, so
	// membership never changes results.
	prevDelay := make([]float64, n)
	aborted := make([]bool, n)
	emitted := make([]int, n) // per lane: first window not yet streamed
	active := make([]int, 0, n)
	batchIms := make([]*nn.InferModel, 0, n)
	batchSts := make([]*nn.InferState, 0, n)
	batchRows := make([][]float64, 0, n)
	batchPres := make([][]float64, 0, n)
	head := make([]float64, maxHead)
	for t := 0; t < maxT; t++ {
		active = active[:0]
		batchIms = batchIms[:0]
		batchSts = batchSts[:0]
		batchRows = batchRows[:0]
		batchPres = batchPres[:0]
		for i := range xss {
			if aborted[i] || t >= len(xss[i]) {
				continue
			}
			r := rowsStd[i][t]
			if t > 0 {
				// Closed loop: the standardized d_{t−1} feedback.
				// Elementwise, so identical to standardizing the raw row.
				sc := lanes[i].Model.xScale
				r[feedbackCol] = (prevDelay[i] - sc.Mean[feedbackCol]) / sc.Std[feedbackCol]
			}
			active = append(active, i)
			batchIms = append(batchIms, ims[i])
			batchSts = append(batchSts, sts[i])
			batchRows = append(batchRows, r)
			if pres != nil {
				batchPres = append(batchPres, pres[i][t*rowsPer:(t+1)*rowsPer])
			}
		}
		var bp [][]float64
		if pres != nil {
			bp = batchPres
		}
		nn.StepBatchLanesInto(batchIms, batchSts, batchRows, bp, tailOff)
		for k, i := range active {
			m := lanes[i].Model
			out := m.Net.HeadGaussian(batchSts[k].Top(), head[:m.Net.Head.Out])
			mu := out.Mu*m.yStd + m.yMean
			sg := out.Sigma * m.yStd
			if mu < 0 {
				mu = 0
			}
			mus[i][t] = mu
			sigmas[i][t] = sg
			prevDelay[i] = mu
			if lanes[i].Emit != nil && (t+1 == len(xss[i]) || (t+1)%chunk == 0) {
				lo := emitted[i]
				if lanes[i].Emit(lo, mus[i][lo:t+1], sigmas[i][lo:t+1]) {
					emitted[i] = t + 1
				} else {
					aborted[i] = true
					mus[i], sigmas[i] = nil, nil
				}
			}
		}
	}
	return mus, sigmas
}

// laneShape validates the batch — every lane model trained, one shared
// Shape — and returns that shape.
func laneShape(lanes []ReplayLane) Shape {
	for i := range lanes {
		if lanes[i].Model == nil || !lanes[i].Model.trained {
			panic("iboxml: model not trained")
		}
	}
	shape := lanes[0].Model.Shape()
	for i := range lanes {
		if s := lanes[i].Model.Shape(); s != shape {
			panic(fmt.Sprintf("iboxml: lane %d shape %s incompatible with %s — lanes must share one shape", i, s, shape))
		}
	}
	return shape
}

// SimulateTraceLanes produces one predicted output trace per lane, with
// the closed-loop window predictions computed in one lockstep batch and
// the per-packet sampling done per lane from its own model and Seed.
// Outputs are bitwise identical to calling
// lanes[i].Model.SimulateTrace(lanes[i].Input, lanes[i].CT, lanes[i].Seed)
// one at a time; a lane abandoned by its Emit returns nil.
func SimulateTraceLanes(lanes []ReplayLane, chunk int) []*trace.Trace {
	mus, sigmas := PredictWindowsLanes(lanes, chunk)
	out := make([]*trace.Trace, len(lanes))
	for i := range lanes {
		if mus[i] == nil { // abandoned mid-unroll by its Emit
			continue
		}
		out[i] = lanes[i].Model.samplePackets(lanes[i].Input, mus[i], sigmas[i], lanes[i].Seed)
	}
	return out
}

// PredictWindowsBatch runs the closed-loop window prediction of
// PredictWindows for several traces at once through one model — the
// single-checkpoint special case of PredictWindowsLanes. cts may be nil
// (no cross-traffic estimate for any member) or must have one (possibly
// nil) entry per trace. The returned mu/sigma slices are per-trace and
// bitwise identical to calling PredictWindows on each (trace, ct) pair.
func (m *Model) PredictWindowsBatch(trs []*trace.Trace, cts []*trace.Series) (mus, sigmas [][]float64) {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	if cts != nil && len(cts) != len(trs) {
		panic("iboxml: PredictWindowsBatch traces/cross-traffic length mismatch")
	}
	lanes := make([]ReplayLane, len(trs))
	for i := range trs {
		lanes[i] = ReplayLane{Model: m, Input: trs[i]}
		if cts != nil {
			lanes[i].CT = cts[i]
		}
	}
	return PredictWindowsLanes(lanes, 0)
}

// SimulateTraceBatch produces one predicted output trace per input, with
// the closed-loop window predictions computed in one lockstep batch and
// the per-packet sampling done per member from its own seed. cts may be
// nil; seeds must have one entry per trace. Outputs are bitwise identical
// to calling SimulateTrace(trs[i], cts[i], seeds[i]) one at a time.
func (m *Model) SimulateTraceBatch(trs []*trace.Trace, cts []*trace.Series, seeds []int64) []*trace.Trace {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	if len(seeds) != len(trs) {
		panic("iboxml: SimulateTraceBatch traces/seeds length mismatch")
	}
	if cts != nil && len(cts) != len(trs) {
		panic("iboxml: PredictWindowsBatch traces/cross-traffic length mismatch")
	}
	lanes := make([]ReplayLane, len(trs))
	for i := range trs {
		lanes[i] = ReplayLane{Model: m, Input: trs[i], Seed: seeds[i]}
		if cts != nil {
			lanes[i].CT = cts[i]
		}
	}
	return SimulateTraceLanes(lanes, 0)
}
