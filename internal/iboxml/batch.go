package iboxml

import (
	"ibox/internal/nn"
	"ibox/internal/obs"
	"ibox/internal/trace"
)

// Batched closed-loop inference: unroll several independent traces through
// the same trained model in lockstep, one window-step per member per
// round, on top of nn.StepGaussianBatch. This is the amortization behind
// request micro-batching in internal/serve — the LSTM weights stream
// through the cache once per step for the whole batch instead of once per
// request.
//
// Correctness contract: each member's arithmetic — feature extraction,
// standardization, the closed-loop d_{t−1} feedback, and the de-
// standardized mu/sigma clamping — is the exact operation sequence of
// PredictWindows, and nn.StepBatch is bitwise-identical to nn.Step, so
// batched results equal unbatched results float-for-float regardless of
// batch composition.

// PredictWindowsBatch runs the closed-loop window prediction of
// PredictWindows for several traces at once. cts may be nil (no
// cross-traffic estimate for any member) or must have one (possibly nil)
// entry per trace. The returned mu/sigma slices are per-trace and bitwise
// identical to calling PredictWindows on each (trace, ct) pair.
func (m *Model) PredictWindowsBatch(trs []*trace.Trace, cts []*trace.Series) (mus, sigmas [][]float64) {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	if cts != nil && len(cts) != len(trs) {
		panic("iboxml: PredictWindowsBatch traces/cross-traffic length mismatch")
	}
	n := len(trs)
	useCT := m.Cfg.UseCrossTraffic
	xss := make([][][]float64, n)
	maxT := 0
	for i, tr := range trs {
		var ctArg *trace.Series
		if useCT && cts != nil {
			ctArg = cts[i]
		}
		xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
		if useCT && ctArg == nil {
			for t := range xs {
				xs[t] = append(xs[t], 0)
			}
		}
		xss[i] = xs
		if len(xs) > maxT {
			maxT = len(xs)
		}
	}
	preds := make([]*nn.Predictor, n)
	mus = make([][]float64, n)
	sigmas = make([][]float64, n)
	for i := range preds {
		preds[i] = m.Net.NewPredictor()
		mus[i] = make([]float64, len(xss[i]))
		sigmas[i] = make([]float64, len(xss[i]))
	}
	obs.Get().Histogram("iboxml.batch_members").Observe(int64(n))
	// Lockstep unroll. Members whose traces span fewer windows drop out of
	// the active set as their sequences end; each member's state advances
	// through exactly its own inputs, so membership never changes results.
	prevDelay := make([]float64, n)
	active := make([]int, 0, n)
	batchPreds := make([]*nn.Predictor, 0, n)
	rows := make([][]float64, 0, n)
	for t := 0; t < maxT; t++ {
		active = active[:0]
		batchPreds = batchPreds[:0]
		rows = rows[:0]
		for i := range xss {
			if t >= len(xss[i]) {
				continue
			}
			x := xss[i][t]
			// Closed loop: overwrite the teacher-forced d_{t−1} feature
			// with the member's own previous prediction (t=0 keeps the
			// teacher value, exactly as PredictWindows does).
			if t > 0 {
				x[3] = prevDelay[i]
			}
			active = append(active, i)
			batchPreds = append(batchPreds, preds[i])
			rows = append(rows, m.xScale.apply(x))
		}
		outs := nn.StepGaussianBatch(batchPreds, rows)
		for k, i := range active {
			mu := outs[k].Mu*m.yStd + m.yMean
			sg := outs[k].Sigma * m.yStd
			if mu < 0 {
				mu = 0
			}
			mus[i][t] = mu
			sigmas[i][t] = sg
			prevDelay[i] = mu
		}
	}
	return mus, sigmas
}

// SimulateTraceBatch produces one predicted output trace per input, with
// the closed-loop window predictions computed in one lockstep batch and
// the per-packet sampling done per member from its own seed. cts may be
// nil; seeds must have one entry per trace. Outputs are bitwise identical
// to calling SimulateTrace(trs[i], cts[i], seeds[i]) one at a time.
func (m *Model) SimulateTraceBatch(trs []*trace.Trace, cts []*trace.Series, seeds []int64) []*trace.Trace {
	if len(seeds) != len(trs) {
		panic("iboxml: SimulateTraceBatch traces/seeds length mismatch")
	}
	mus, sigmas := m.PredictWindowsBatch(trs, cts)
	out := make([]*trace.Trace, len(trs))
	for i, tr := range trs {
		out[i] = m.samplePackets(tr, mus[i], sigmas[i], seeds[i])
	}
	return out
}
