package iboxml

import (
	"math"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// synthTrace builds a trace whose delay follows the sending rate with a
// lag, mimicking queue buildup: rate oscillates, delay = base + k·ema(rate).
func synthTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 5)
	tr := &trace.Trace{Protocol: "synth"}
	ema := 0.0
	var now sim.Time
	seq := int64(0)
	for now < dur {
		// Rate oscillates between 0.5 and 2 Mbps over ~4s periods.
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase+float64(seed))) // bytes/s
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		ema = 0.98*ema + 0.02*rate
		delayMs := 20 + 60*(ema/312_500) + rng.NormFloat64()*1.0
		if delayMs < 1 {
			delayMs = 1
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now,
			RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
		})
		seq++
	}
	return tr
}

func trainSamples(n int, dur sim.Time) []TrainingSample {
	var out []TrainingSample
	for i := 0; i < n; i++ {
		out = append(out, TrainingSample{Trace: synthTrace(int64(i), dur)})
	}
	return out
}

func TestWindowFeaturesShape(t *testing.T) {
	tr := synthTrace(1, 5*sim.Second)
	xs, ys, mask := WindowFeatures(tr, nil, 100*sim.Millisecond)
	if len(xs) != len(ys) || len(xs) != len(mask) {
		t.Fatalf("lengths %d/%d/%d", len(xs), len(ys), len(mask))
	}
	if len(xs) < 40 {
		t.Fatalf("too few windows: %d", len(xs))
	}
	for i, x := range xs {
		if len(x) != 4 {
			t.Fatalf("window %d dim %d, want 4", i, len(x))
		}
		if x[0] < 0 || x[1] < 0 || x[2] < 0 {
			t.Fatalf("window %d has negative features: %v", i, x)
		}
	}
	// Teacher forcing: x[t][3] == ys[t-1].
	for i := 1; i < len(xs); i++ {
		if xs[i][3] != ys[i-1] {
			t.Fatalf("window %d prev-delay feature %v != %v", i, xs[i][3], ys[i-1])
		}
	}
}

func TestWindowFeaturesWithCT(t *testing.T) {
	tr := synthTrace(2, 3*sim.Second)
	ct := trace.NewSeries(0, 100*sim.Millisecond, 30)
	for i := range ct.Vals {
		ct.Vals[i] = float64(i * 100)
	}
	xs, _, _ := WindowFeatures(tr, ct, 100*sim.Millisecond)
	if len(xs[0]) != 5 {
		t.Fatalf("dim %d, want 5 with CT", len(xs[0]))
	}
	// CT column should be nonconstant and pulled from the series.
	varying := false
	for i := 1; i < len(xs); i++ {
		if xs[i][4] != xs[0][4] {
			varying = true
		}
	}
	if !varying {
		t.Error("CT feature constant")
	}
}

func TestWindowFeaturesEmptyTrace(t *testing.T) {
	xs, ys, mask := WindowFeatures(&trace.Trace{}, nil, sim.Second)
	if xs != nil || ys != nil || mask != nil {
		t.Error("empty trace should give nil features")
	}
}

func TestPacketFeaturesRateWindow(t *testing.T) {
	// 1500B packets every 100ms: after the first second, the preceding-1s
	// byte count should be 10×1500.
	tr := &trace.Trace{}
	for i := 0; i < 30; i++ {
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1500,
			SendTime: sim.Time(i) * 100 * sim.Millisecond,
			RecvTime: sim.Time(i)*100*sim.Millisecond + 10*sim.Millisecond,
		})
	}
	f := PacketFeatures(tr, nil)
	if len(f) != 30 {
		t.Fatalf("feature rows %d", len(f))
	}
	if f[0][0] != 0 {
		t.Errorf("first packet preceding bytes = %v, want 0", f[0][0])
	}
	if f[20][0] != 10*1500 {
		t.Errorf("steady-state preceding bytes = %v, want 15000", f[20][0])
	}
	if f[20][1] != 100 {
		t.Errorf("spacing = %v ms, want 100", f[20][1])
	}
	if f[20][2] != 1500 {
		t.Errorf("size = %v", f[20][2])
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]TrainingSample{{Trace: &trace.Trace{}}}, Config{}); err == nil {
		t.Error("all-empty traces accepted")
	}
}

func TestModelLearnsDelayDynamics(t *testing.T) {
	// Train on 6 synthetic congestion traces, test on a held-out one: the
	// predicted window-delay series must correlate strongly with truth.
	m, err := Train(trainSamples(6, 12*sim.Second), Config{
		Hidden: 16, Layers: 1, Epochs: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(100, 12*sim.Second)
	mu, sigma := m.PredictWindows(test, nil)
	_, ys, mask := WindowFeatures(test, nil, m.Cfg.Window)
	var p, g []float64
	for i := range mu {
		if mask[i] {
			p = append(p, mu[i])
			g = append(g, ys[i])
		}
	}
	corr := stats.CrossCorrelation(p, g)
	if corr < 0.6 {
		t.Errorf("prediction/GT correlation = %.3f, want ≥ 0.6", corr)
	}
	// Mean prediction in the right ballpark (true delays ∈ [20, ~90] ms).
	pm := stats.Mean(p)
	gm := stats.Mean(g)
	if math.Abs(pm-gm) > 0.35*gm {
		t.Errorf("mean predicted delay %.1f vs true %.1f", pm, gm)
	}
	for i := range sigma {
		if sigma[i] < 0 {
			t.Fatal("negative sigma")
		}
	}
}

func TestSimulateTraceValidAndStochastic(t *testing.T) {
	m, err := Train(trainSamples(3, 6*sim.Second), Config{Hidden: 8, Layers: 1, Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := synthTrace(55, 6*sim.Second)
	in.Packets[10].Lost = true
	out := m.SimulateTrace(in, nil, 7)
	if len(out.Packets) != len(in.Packets) {
		t.Fatalf("packet count %d vs %d", len(out.Packets), len(in.Packets))
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("invalid simulated trace: %v", err)
	}
	if !out.Packets[10].Lost {
		t.Error("lost packet not echoed")
	}
	// Same seed reproduces; different seed varies.
	out2 := m.SimulateTrace(in, nil, 7)
	out3 := m.SimulateTrace(in, nil, 8)
	if out.Packets[5].RecvTime != out2.Packets[5].RecvTime {
		t.Error("same seed differs")
	}
	same := true
	for i := range out.Packets {
		if out.Packets[i].RecvTime != out3.Packets[i].RecvTime {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestPredictPacketDelayStateful(t *testing.T) {
	m, err := Train(trainSamples(2, 4*sim.Second), Config{Hidden: 8, Layers: 1, Epochs: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	step := m.PredictPacketDelay()
	a := step([]float64{1500, 10, 1500, 20})
	b := step([]float64{1500, 10, 1500, 20})
	if a == b {
		t.Error("per-packet predictor state not advancing")
	}
}

// reorderTrace yields reordering correlated with high send rate.
func reorderTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 9)
	tr := &trace.Trace{Protocol: "synth-reorder"}
	var now sim.Time
	seq := int64(0)
	var prevRecv sim.Time
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 5
		rate := 156_250 * (1.25 + math.Sin(phase))
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		delay := 20*sim.Millisecond + sim.Time(rng.Float64()*float64(2*sim.Millisecond))
		recv := now + delay
		// High rate ⇒ 15% chance of overtaking (arrive before predecessor).
		if rate > 280_000 && rng.Float64() < 0.15 && prevRecv > now {
			recv = prevRecv - sim.Millisecond
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now, RecvTime: recv,
		})
		if recv > prevRecv {
			prevRecv = recv
		}
		seq++
	}
	return tr
}

func reorderSamples(n int) []TrainingSample {
	var out []TrainingSample
	for i := 0; i < n; i++ {
		out = append(out, TrainingSample{Trace: reorderTrace(int64(i), 10*sim.Second)})
	}
	return out
}

func TestLinearReorderLearnsRateCorrelation(t *testing.T) {
	lr, err := TrainLinearReorder(reorderSamples(4), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	test := reorderTrace(50, 10*sim.Second)
	probs := lr.Probs(test, nil)
	flags := test.ReorderedFlags()
	// Mean predicted probability on truly-reordered packets must exceed
	// that on in-order packets (discrimination).
	var pr, pn float64
	var nr, nn2 int
	di := 0
	for i, p := range test.Packets {
		if p.Lost {
			continue
		}
		if flags[di] {
			pr += probs[i]
			nr++
		} else {
			pn += probs[i]
			nn2++
		}
		di++
	}
	if nr == 0 {
		t.Fatal("test trace has no reordering")
	}
	pr /= float64(nr)
	pn /= float64(nn2)
	if pr <= pn {
		t.Errorf("no discrimination: P(reordered)=%.3f vs P(in-order)=%.3f", pr, pn)
	}
}

func TestLSTMReorderTrains(t *testing.T) {
	r, err := TrainLSTMReorder(reorderSamples(2), LSTMReorderConfig{
		Hidden: 8, Epochs: 5, MaxPacketsPerTrace: 800, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	test := reorderTrace(60, 5*sim.Second)
	probs := r.Probs(test, nil)
	if len(probs) != len(test.Packets) {
		t.Fatalf("probs length %d", len(probs))
	}
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("invalid probability %v", p)
		}
	}
}

func TestAugmentReorderingCreatesNegativeInterArrivals(t *testing.T) {
	// A constant predictor at p=0.05 applied to an in-order trace must
	// yield a ~5% reordering rate and leave the original untouched.
	tr := &trace.Trace{Protocol: "inorder"}
	for i := 0; i < 4000; i++ {
		send := sim.Time(i) * 2 * sim.Millisecond
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1500, SendTime: send, RecvTime: send + 30*sim.Millisecond,
		})
	}
	aug := AugmentReordering(tr, constPredictor(0.05), nil, 3)
	if err := aug.Validate(); err != nil {
		t.Fatal(err)
	}
	rate := aug.ReorderingRate()
	if math.Abs(rate-0.05) > 0.015 {
		t.Errorf("augmented reordering rate = %.3f, want ≈0.05", rate)
	}
	if tr.ReorderingRate() != 0 {
		t.Error("augmentation mutated the input trace")
	}
	// Negative inter-arrivals (SAX 'a') must appear.
	neg := 0
	for _, d := range aug.InterArrivalsBySeq() {
		if d < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("no negative inter-arrivals after augmentation")
	}
}

type constPredictor float64

func (c constPredictor) Name() string { return "const" }
func (c constPredictor) Probs(tr *trace.Trace, _ *trace.Series) []float64 {
	out := make([]float64, len(tr.Packets))
	for i := range out {
		out[i] = float64(c)
	}
	return out
}

func TestReorderTrainRejectsEmpty(t *testing.T) {
	if _, err := TrainLSTMReorder(nil, LSTMReorderConfig{}); err == nil {
		t.Error("empty LSTM reorder training accepted")
	}
	if _, err := TrainLinearReorder(nil, false, 0); err == nil {
		t.Error("empty linear reorder training accepted")
	}
}

func TestModelWithCTFeature(t *testing.T) {
	// Smoke test: training with UseCrossTraffic and nil CTs must widen
	// features with zeros and still train.
	m, err := Train(trainSamples(2, 4*sim.Second), Config{
		Hidden: 8, Layers: 1, Epochs: 3, UseCrossTraffic: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(70, 4*sim.Second)
	mu, _ := m.PredictWindows(test, nil)
	if len(mu) == 0 {
		t.Fatal("no predictions")
	}
	ct := trace.NewSeries(0, 100*sim.Millisecond, 40)
	mu2, _ := m.PredictWindows(test, ct)
	if len(mu2) != len(mu) {
		t.Error("CT changed prediction length")
	}
}
