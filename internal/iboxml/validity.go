package iboxml

import (
	"fmt"
	"strings"

	"ibox/internal/trace"
)

// This file implements §6's "Establishing the Limits of Model Validity":
// "if the sending rate in the training data never exceeded a certain level
// R, even over short periods, it would not be possible for iBoxML to
// accurately predict the output when the rate does exceed R." A trained
// model therefore records the envelope of its training features, and a
// ValidityReport measures how far a test workload strays outside it.

// featureNames labels the WindowFeatures columns for reporting.
var featureNames = []string{"send-rate", "spacing", "pkt-size", "prev-delay", "cross-traffic"}

// ValidityReport describes how much of a test input lies outside the
// model's training envelope.
type ValidityReport struct {
	// Windows is the number of feature windows examined.
	Windows int
	// OutOfRange[f] is the fraction of windows whose feature f falls more
	// than tolerance standard deviations outside the training min/max.
	OutOfRange map[string]float64
	// WorstFeature is the feature with the highest out-of-range fraction.
	WorstFeature string
	// WorstFraction is that fraction.
	WorstFraction float64
}

// Valid reports whether the input is inside the envelope everywhere (up
// to the given per-feature fraction budget).
func (v ValidityReport) Valid(budget float64) bool {
	return v.WorstFraction <= budget
}

// String summarizes the report.
func (v ValidityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "validity over %d windows:", v.Windows)
	for _, name := range featureNames {
		if frac, ok := v.OutOfRange[name]; ok {
			fmt.Fprintf(&b, " %s=%.1f%%", name, 100*frac)
		}
	}
	return b.String()
}

// envelope tracks per-feature training min/max.
type envelope struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

func fitEnvelope(rows [][]float64) envelope {
	if len(rows) == 0 {
		return envelope{}
	}
	d := len(rows[0])
	e := envelope{Min: make([]float64, d), Max: make([]float64, d)}
	copy(e.Min, rows[0])
	copy(e.Max, rows[0])
	for _, r := range rows[1:] {
		for j, v := range r {
			if v < e.Min[j] {
				e.Min[j] = v
			}
			if v > e.Max[j] {
				e.Max[j] = v
			}
		}
	}
	return e
}

// Validity evaluates a test input against the model's training envelope.
// A feature value counts as out of range when it exceeds the training
// min/max by more than 10% of the training span (or any amount, for a
// constant training feature). ct may be nil.
func (m *Model) Validity(tr *trace.Trace, ct *trace.Series) ValidityReport {
	if !m.trained {
		panic("iboxml: model not trained")
	}
	var ctArg *trace.Series
	if m.Cfg.UseCrossTraffic {
		ctArg = ct
	}
	xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
	if m.Cfg.UseCrossTraffic && ctArg == nil {
		for i := range xs {
			xs[i] = append(xs[i], 0)
		}
	}
	rep := ValidityReport{Windows: len(xs), OutOfRange: map[string]float64{}}
	if len(xs) == 0 || len(m.env.Min) == 0 {
		return rep
	}
	d := len(m.env.Min)
	counts := make([]int, d)
	for _, row := range xs {
		for j := 0; j < d && j < len(row); j++ {
			span := m.env.Max[j] - m.env.Min[j]
			slack := 0.1 * span
			if row[j] < m.env.Min[j]-slack || row[j] > m.env.Max[j]+slack {
				counts[j]++
			}
		}
	}
	for j := 0; j < d; j++ {
		name := featureNames[j]
		frac := float64(counts[j]) / float64(len(xs))
		rep.OutOfRange[name] = frac
		if frac > rep.WorstFraction {
			rep.WorstFraction = frac
			rep.WorstFeature = name
		}
	}
	return rep
}
