package iboxml

import (
	"fmt"

	"ibox/internal/nn"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Fig 6's output is "delay (or packet loss indicator)": the state-space
// formulation covers loss as well as delay (§2 treats loss as infinite
// delay). LossModel is the loss half — an LSTM with a Bernoulli head
// predicting each window's packet-loss probability from the same
// send-side features, trained with per-window loss fractions as soft
// labels. Combined with the delay Model via SimulateTraceWithLoss, the
// pair realizes the complete Fig 6 output.
type LossModel struct {
	Cfg     Config
	Net     *nn.SequenceModel
	xScale  scaler
	trained bool
}

// TrainLoss fits a loss model on the given traces.
func TrainLoss(samples []TrainingSample, cfg Config) (*LossModel, error) {
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("iboxml: no training samples")
	}
	dim := 4
	if cfg.UseCrossTraffic {
		dim = 5
	}
	type seq struct {
		xs [][]float64
		ys []float64
	}
	var seqs []seq
	var allX [][]float64
	for _, s := range samples {
		ct := s.CT
		if !cfg.UseCrossTraffic {
			ct = nil
		}
		xs, _, _ := WindowFeatures(s.Trace, ct, cfg.Window)
		if len(xs) == 0 {
			continue
		}
		if cfg.UseCrossTraffic && s.CT == nil {
			for i := range xs {
				xs[i] = append(xs[i], 0)
			}
		}
		ys := windowLossFractions(s.Trace, cfg.Window, len(xs))
		seqs = append(seqs, seq{xs, ys})
		allX = append(allX, xs...)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("iboxml: loss training data empty")
	}
	m := &LossModel{Cfg: cfg, xScale: fitScaler(allX)}
	m.Net = nn.NewSequenceModel(nn.BinaryHead, dim, cfg.Hidden, cfg.Layers, cfg.Seed+5000)
	opt := nn.NewAdam(cfg.LR, m.Net.Params())
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, s := range seqs {
			xs := make([][]float64, len(s.xs))
			for t := range s.xs {
				xs[t] = m.xScale.apply(s.xs[t])
			}
			m.Net.TrainSequence(xs, s.ys, nil)
			opt.Step()
		}
	}
	m.trained = true
	return m, nil
}

// windowLossFractions computes the per-window fraction of sent packets
// that were lost.
func windowLossFractions(tr *trace.Trace, window sim.Time, n int) []float64 {
	out := make([]float64, n)
	counts := make([]int, n)
	if len(tr.Packets) == 0 {
		return out
	}
	start := tr.Packets[0].SendTime
	for _, p := range tr.Packets {
		w := int((p.SendTime - start) / window)
		if w < 0 {
			w = 0
		}
		if w >= n {
			w = n - 1
		}
		counts[w]++
		if p.Lost {
			out[w]++
		}
	}
	for w := range out {
		if counts[w] > 0 {
			out[w] /= float64(counts[w])
		}
	}
	return out
}

// PredictWindows returns the per-window loss probability for a test
// trace. The trace must carry delay information in its receive timestamps
// — either observed (teacher-forced evaluation) or predicted by the delay
// model (closed-loop simulation, as SimulateTraceWithLoss arranges) —
// because the prev-delay input feature is read from it. ct may be nil.
func (m *LossModel) PredictWindows(tr *trace.Trace, ct *trace.Series) []float64 {
	if !m.trained {
		panic("iboxml: loss model not trained")
	}
	var ctArg *trace.Series
	if m.Cfg.UseCrossTraffic {
		ctArg = ct
	}
	xs, _, _ := WindowFeatures(tr, ctArg, m.Cfg.Window)
	if m.Cfg.UseCrossTraffic && ctArg == nil {
		for i := range xs {
			xs[i] = append(xs[i], 0)
		}
	}
	pred := m.Net.NewPredictor()
	out := make([]float64, len(xs))
	for t := range xs {
		out[t] = pred.StepProb(m.xScale.apply(xs[t]))
	}
	return out
}

// SimulateTraceWithLoss runs the delay model's trace simulation and then
// applies this loss model: each delivered packet is dropped with its
// window's predicted loss probability — the full "delay/loss" output of
// Fig 6.
func (m *LossModel) SimulateTraceWithLoss(delay *Model, tr *trace.Trace, ct *trace.Series, seed int64) *trace.Trace {
	out := delay.SimulateTrace(tr, ct, seed)
	// Loss is conditioned on the *predicted* delays (closed loop): the
	// delay-simulated trace keeps the prev-delay feature in-distribution
	// even when tr carries no real receive timestamps.
	probs := m.PredictWindows(out, ct)
	if len(out.Packets) == 0 || len(probs) == 0 {
		return out
	}
	rng := sim.NewRand(seed, 97)
	start := out.Packets[0].SendTime
	for i := range out.Packets {
		p := &out.Packets[i]
		if p.Lost {
			continue
		}
		w := int((p.SendTime - start) / m.Cfg.Window)
		if w < 0 {
			w = 0
		}
		if w >= len(probs) {
			w = len(probs) - 1
		}
		if rng.Float64() < probs[w] {
			p.Lost = true
			p.RecvTime = 0
		}
	}
	return out
}
