package iboxml

import (
	"math"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// lossyTrace builds a trace whose loss tracks the sending rate: when the
// rate exceeds a threshold, packets drop with probability 0.3.
func lossyTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 31)
	tr := &trace.Trace{Protocol: "lossy"}
	var now sim.Time
	seq := int64(0)
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase)) // bytes/s, 0.39–3.5 Mbps
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		p := trace.Packet{Seq: seq, Size: 1500, SendTime: now}
		if rate > 280_000 && rng.Float64() < 0.3 {
			p.Lost = true
		} else {
			p.RecvTime = now + 30*sim.Millisecond
		}
		tr.Packets = append(tr.Packets, p)
		seq++
	}
	return tr
}

func lossSamples(n int) []TrainingSample {
	var out []TrainingSample
	for i := 0; i < n; i++ {
		out = append(out, TrainingSample{Trace: lossyTrace(int64(i), 10*sim.Second)})
	}
	return out
}

func TestLossModelLearnsRateLossCoupling(t *testing.T) {
	m, err := TrainLoss(lossSamples(4), Config{Hidden: 12, Layers: 1, Epochs: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	test := lossyTrace(99, 10*sim.Second)
	probs := m.PredictWindows(test, nil)
	truth := windowLossFractions(test, m.Cfg.Window, len(probs))
	corr := stats.CrossCorrelation(probs, truth)
	if corr < 0.5 {
		t.Errorf("predicted/true window loss correlation = %.3f, want ≥ 0.5", corr)
	}
	// Mean predicted loss near the true rate.
	if math.Abs(stats.Mean(probs)-stats.Mean(truth)) > 0.1 {
		t.Errorf("mean predicted loss %.3f vs true %.3f", stats.Mean(probs), stats.Mean(truth))
	}
}

func TestSimulateTraceWithLoss(t *testing.T) {
	samples := lossSamples(3)
	delayM, err := Train(samples, Config{Hidden: 8, Layers: 1, Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lossM, err := TrainLoss(samples, Config{Hidden: 12, Layers: 1, Epochs: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the send-side only (recv info stripped) so nothing leaks.
	test := lossyTrace(55, 10*sim.Second)
	sendOnly := &trace.Trace{Protocol: test.Protocol}
	for _, p := range test.Packets {
		sendOnly.Packets = append(sendOnly.Packets, trace.Packet{
			Seq: p.Seq, Size: p.Size, SendTime: p.SendTime,
			RecvTime: p.SendTime, // placeholder; delays predicted, not copied
		})
	}
	out := lossM.SimulateTraceWithLoss(delayM, sendOnly, nil, 7)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	gotLoss := out.LossRate()
	wantLoss := test.LossRate()
	if math.Abs(gotLoss-wantLoss) > 0.6*wantLoss+0.02 {
		t.Errorf("simulated loss %.3f vs true %.3f", gotLoss, wantLoss)
	}
	// Determinism.
	out2 := lossM.SimulateTraceWithLoss(delayM, sendOnly, nil, 7)
	for i := range out.Packets {
		if out.Packets[i].Lost != out2.Packets[i].Lost {
			t.Fatal("loss simulation not deterministic")
		}
	}
}

func TestTrainLossRejectsEmpty(t *testing.T) {
	if _, err := TrainLoss(nil, Config{}); err == nil {
		t.Error("empty training accepted")
	}
	if _, err := TrainLoss([]TrainingSample{{Trace: &trace.Trace{}}}, Config{}); err == nil {
		t.Error("empty traces accepted")
	}
}

func TestLossPredictPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	(&LossModel{}).PredictWindows(&trace.Trace{}, nil)
}
