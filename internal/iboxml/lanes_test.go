package iboxml

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"ibox/internal/sim"
)

// laneModel trains a small model of the given architecture; distinct
// seeds give genuinely different weights for one shape.
func laneModel(t testing.TB, hidden, layers int, seed int64) *Model {
	t.Helper()
	m, err := Train(trainSamples(2, 3*sim.Second), Config{
		Hidden: hidden, Layers: layers, Epochs: 1, Seed: seed,
	})
	if err != nil {
		t.Fatalf("train h%d l%d: %v", hidden, layers, err)
	}
	return m
}

// TestSimulateTraceLanesMixedCheckpoints is the cross-checkpoint
// equivalence harness: three checkpoints with different weights but one
// shape replay different traces in a single lane batch, across odd
// hidden sizes and 1–4 layers, and every lane's output must serialize to
// exactly the bytes of its own unbatched SimulateTrace. (The int8 kernel
// is excluded by construction: Quantized is part of the Shape, so a
// quantized lane can never share a batch with these — see
// TestLanesShapeMismatchPanics.)
func TestSimulateTraceLanesMixedCheckpoints(t *testing.T) {
	shapes := []struct{ hidden, layers int }{
		{5, 1}, {7, 2}, {9, 3}, {11, 4},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("h%d_l%d", sh.hidden, sh.layers), func(t *testing.T) {
			lanes := []ReplayLane{
				{Model: laneModel(t, sh.hidden, sh.layers, 5), Input: synthTrace(61, 2*sim.Second), Seed: 301},
				{Model: laneModel(t, sh.hidden, sh.layers, 6), Input: synthTrace(62, 500*sim.Millisecond), Seed: 302},
				{Model: laneModel(t, sh.hidden, sh.layers, 7), Input: synthTrace(63, 3*sim.Second), Seed: 303},
			}
			outs := SimulateTraceLanes(lanes, 0)
			for i := range lanes {
				want := lanes[i].Model.SimulateTrace(lanes[i].Input, nil, lanes[i].Seed)
				var bw, bb bytes.Buffer
				if err := json.NewEncoder(&bw).Encode(want); err != nil {
					t.Fatal(err)
				}
				if err := json.NewEncoder(&bb).Encode(outs[i]); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bw.Bytes(), bb.Bytes()) {
					t.Fatalf("lane %d: cross-checkpoint batched simulation differs from unbatched", i)
				}
			}
		})
	}
}

// TestPredictWindowsLanesEmit pins the streaming contract: chunks arrive
// in order with contiguous t0 ranges, their concatenation is bitwise the
// full unbatched prediction, and a lane whose Emit returns false is
// abandoned (nil results) without perturbing any other lane.
func TestPredictWindowsLanesEmit(t *testing.T) {
	mA := laneModel(t, 5, 1, 5)
	mB := laneModel(t, 5, 1, 6)
	trA := synthTrace(71, 2*sim.Second)
	trB := synthTrace(72, 2*sim.Second)

	type chunk struct {
		t0        int
		mu, sigma []float64
	}
	var got []chunk
	collect := func(t0 int, mu, sigma []float64) bool {
		// The slices alias lane buffers and are only valid during the
		// call — the contract says copy to retain.
		got = append(got, chunk{t0, append([]float64(nil), mu...), append([]float64(nil), sigma...)})
		return true
	}
	abortAfterFirst := 0
	lanes := []ReplayLane{
		{Model: mA, Input: trA, Emit: collect},
		{Model: mB, Input: trB, Emit: func(t0 int, mu, sigma []float64) bool {
			abortAfterFirst++
			return abortAfterFirst == 1 // accept one chunk, then hang up
		}},
	}
	const chunkWin = 3
	mus, sigmas := PredictWindowsLanes(lanes, chunkWin)

	// Lane B was abandoned mid-unroll.
	if mus[1] != nil || sigmas[1] != nil {
		t.Fatalf("abandoned lane returned results: %v", mus[1])
	}
	if abortAfterFirst != 2 {
		t.Fatalf("abandoned lane's Emit called %d times, want 2", abortAfterFirst)
	}

	// Lane A's chunks: ordered, contiguous, chunk-sized except the tail,
	// and bitwise equal to the unbatched prediction.
	wantMu, wantSigma := mA.PredictWindows(trA, nil)
	next := 0
	var allMu, allSigma []float64
	for i, c := range got {
		if c.t0 != next {
			t.Fatalf("chunk %d starts at %d, want %d (monotonic, contiguous)", i, c.t0, next)
		}
		if i < len(got)-1 && len(c.mu) != chunkWin {
			t.Fatalf("chunk %d has %d windows, want %d", i, len(c.mu), chunkWin)
		}
		next += len(c.mu)
		allMu = append(allMu, c.mu...)
		allSigma = append(allSigma, c.sigma...)
	}
	if len(allMu) != len(wantMu) {
		t.Fatalf("streamed %d windows, want %d", len(allMu), len(wantMu))
	}
	for w := range wantMu {
		if math.Float64bits(allMu[w]) != math.Float64bits(wantMu[w]) ||
			math.Float64bits(allSigma[w]) != math.Float64bits(wantSigma[w]) {
			t.Fatalf("window %d: streamed (%v,%v) != unbatched (%v,%v)",
				w, allMu[w], allSigma[w], wantMu[w], wantSigma[w])
		}
	}
	// The surviving lane's returned slices must also match.
	for w := range wantMu {
		if math.Float64bits(mus[0][w]) != math.Float64bits(wantMu[w]) {
			t.Fatalf("returned window %d differs from unbatched", w)
		}
	}
}

// TestLanesShapeMismatchPanics: incompatible models — different
// architecture, different window, or float vs int8 kernel — must never
// co-batch; the lane entry point panics instead of corrupting state.
func TestLanesShapeMismatchPanics(t *testing.T) {
	base := laneModel(t, 5, 1, 5)
	tr := synthTrace(81, sim.Second)
	mustPanic := func(name string, other *Model) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: lanes over incompatible shapes did not panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), "shape") {
				t.Fatalf("%s: unexpected panic %v", name, r)
			}
		}()
		PredictWindowsLanes([]ReplayLane{
			{Model: base, Input: tr},
			{Model: other, Input: tr},
		}, 0)
	}
	mustPanic("hidden", laneModel(t, 7, 1, 5))
	mustPanic("layers", laneModel(t, 5, 2, 5))

	quant := laneModel(t, 5, 1, 9)
	quant.EnableInt8(true)
	mustPanic("int8", quant)
}

// TestShapeString pins the metric-label form of the co-batching key.
func TestShapeString(t *testing.T) {
	m := laneModel(t, 5, 1, 5)
	if got, want := m.Shape().String(), "in4_h5_l1_w100ms"; got != want {
		t.Fatalf("Shape.String() = %q, want %q", got, want)
	}
	m.EnableInt8(true)
	if got := m.Shape().String(); !strings.HasSuffix(got, "_int8") {
		t.Fatalf("quantized shape label %q lacks _int8 suffix", got)
	}
}
