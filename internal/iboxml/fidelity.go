package iboxml

import (
	"math"

	"ibox/internal/obs"
	"ibox/internal/trace"
)

// Post-training calibration of the Gaussian head (§4). Training minimizes
// the Gaussian NLL of per-window delays; nothing in that objective
// guarantees the *distribution* is honest — a head can fit the mean well
// while being wildly overconfident in sigma, and a closed-loop simulator
// built on it (SimulateTrace) inherits the miscalibration as unrealistic
// jitter. Calibrate measures this directly on held-out traces, open loop
// (teacher-forced d_{t−1}), so it scores the head itself rather than the
// compounding of §4.1's unrolling.

// pitBins is the PIT histogram resolution: coarse enough that quick-scale
// held-out sets (a few hundred windows) fill every bin, fine enough to
// show the U (overconfident) vs hump (underconfident) shapes.
const pitBins = 10

// coverageQuantiles are the predicted quantiles whose empirical coverage
// Calibrate reports, as (name, standard-normal z) pairs.
var coverageQuantiles = []struct {
	name string
	z    float64
}{
	{"p10", -1.2815515655446004},
	{"p25", -0.6744897501960817},
	{"p50", 0},
	{"p75", 0.6744897501960817},
	{"p90", 1.2815515655446004},
}

// Calibration is the held-out scorecard of a trained model's predictive
// distribution. See obs.Fidelity for field semantics; NLL is reported in
// the model's standardized units so it is directly comparable to the
// training loss (Model.Diag.FinalLoss).
type Calibration struct {
	Windows      int                `json:"windows"`
	NLL          float64            `json:"nll"`
	PIT          []float64          `json:"pit,omitempty"`
	PITDeviation float64            `json:"pit_deviation"`
	Coverage     map[string]float64 `json:"coverage,omitempty"`
}

// stdNormalCDF is Φ, the standard normal CDF.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SetBaseline embeds cal as the model's training-time calibration
// baseline; Write persists it in the artifact, and the serving tier
// judges streaming drift sketches against it.
func (m *Model) SetBaseline(cal Calibration) {
	c := cal
	m.baseline = &c
}

// Baseline returns the embedded training-time calibration, or nil for
// models that were never calibrated — including any artifact written
// before baselines existed (the serialization tolerates both
// directions).
func (m *Model) Baseline() *Calibration { return m.baseline }

// ScoreWindows scores the Gaussian head on one observed trace, open
// loop (teacher-forced d_{t−1}), invoking fn once per observed window
// with the PIT value u = Φ(z), the standardized residual z, and the
// standardized NLL (same units as the training loss). It returns the
// number of windows scored. Pure reads, like Calibrate — which is built
// on it — so the serving tier can score live replay requests against
// the model without perturbing results (see internal/serve's drift
// detection).
func (m *Model) ScoreWindows(tr *trace.Trace, ct *trace.Series, fn func(pit, z, nll float64)) int {
	mu, sigma := m.PredictWindowsOpenLoop(tr, ct)
	_, ys, mask := WindowFeatures(tr, nil, m.Cfg.Window)
	n := len(mu)
	if len(ys) < n {
		n = len(ys)
	}
	windows := 0
	for t := 0; t < n; t++ {
		if !mask[t] {
			continue
		}
		sig := sigma[t]
		if sig <= 0 {
			sig = 1e-9
		}
		z := (ys[t] - mu[t]) / sig
		u := stdNormalCDF(z)
		// Standardized NLL: same units as the training loss.
		nll := 0.5*math.Log(2*math.Pi) + math.Log(sig/m.yStd) + 0.5*z*z
		fn(u, z, nll)
		windows++
	}
	return windows
}

// ScoreDelay scores one live delay sample d (ms) against a predicted
// group distribution (mu, sigma, both ms — see
// HierarchicalPredictor.Group), returning the PIT value and the NLL in
// the same standardized units as ScoreWindows. This is the per-packet
// analogue of the per-window scorer, used by the serving tier to drift-
// score live emulation sessions; unlike ScoreWindows the samples are
// model-generated rather than observed, so its sketches are a display
// signal, not a quarantine input.
func (m *Model) ScoreDelay(mu, sigma, d float64) (pit, nll float64) {
	if sigma <= 0 {
		sigma = 1e-9
	}
	z := (d - mu) / sigma
	return stdNormalCDF(z), 0.5*math.Log(2*math.Pi) + math.Log(sigma/m.yStd) + 0.5*z*z
}

// Calibrate scores the model's Gaussian head on held-out traces: PIT
// histogram, per-quantile coverage and mean NLL over every observed
// window. Pure reads — it never mutates the model or any shared state, so
// callers may gate it on observability without perturbing results. A
// model trained with UseCrossTraffic uses each sample's CT series (nil
// CTs fall back to zeros, as in training).
func (m *Model) Calibrate(heldOut []TrainingSample) Calibration {
	cal := Calibration{
		PIT:      make([]float64, pitBins),
		Coverage: map[string]float64{},
	}
	covCounts := make([]int, len(coverageQuantiles))
	nllSum := 0.0
	for _, s := range heldOut {
		cal.Windows += m.ScoreWindows(s.Trace, s.CT, func(u, z, nll float64) {
			b := int(u * pitBins)
			if b >= pitBins {
				b = pitBins - 1
			}
			cal.PIT[b]++
			for i, q := range coverageQuantiles {
				if z <= q.z {
					covCounts[i]++
				}
			}
			nllSum += nll
		})
	}
	if cal.Windows == 0 {
		return cal
	}
	nw := float64(cal.Windows)
	cal.NLL = nllSum / nw
	for b := range cal.PIT {
		cal.PIT[b] /= nw
		if dev := math.Abs(cal.PIT[b] - 1.0/pitBins); dev > cal.PITDeviation {
			cal.PITDeviation = dev
		}
	}
	for i, q := range coverageQuantiles {
		cal.Coverage[q.name] = float64(covCounts[i]) / nw
	}
	return cal
}

// RecordFidelity computes held-out calibration and records it, together
// with the training-trajectory diagnostics, as one fidelity entry of the
// installed observability registry's run report. No-op (and no
// calibration work) when observability is disabled; when enabled it only
// reads, so results are byte-identical either way.
func (m *Model) RecordFidelity(label string, heldOut []TrainingSample) {
	r := obs.Get()
	if r == nil {
		return
	}
	cal := m.Calibrate(heldOut)
	r.RecordFidelity(obs.Fidelity{
		Label:          label,
		Epochs:         m.Diag.Epochs,
		FinalLoss:      m.Diag.FinalLoss,
		GradNormFirst:  m.Diag.GradNormFirst,
		GradNormLast:   m.Diag.GradNormLast,
		GradNormMax:    m.Diag.GradNormMax,
		NonFiniteSeqs:  m.Diag.NonFiniteSeqs,
		HeldOutWindows: cal.Windows,
		HeldOutNLL:     cal.NLL,
		PIT:            cal.PIT,
		PITDeviation:   cal.PITDeviation,
		Coverage:       cal.Coverage,
	})
	if l := obs.Logger(); l != nil {
		l.Info("iboxml fidelity",
			"label", label, "held_out_windows", cal.Windows,
			"nll", cal.NLL, "pit_deviation", cal.PITDeviation,
			"cov_p50", cal.Coverage["p50"], "cov_p90", cal.Coverage["p90"])
	}
}
