package iboxml

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/trace"
)

// batchTestModel trains one small model shared by the batch tests.
func batchTestModel(t testing.TB) *Model {
	t.Helper()
	m, err := Train(trainSamples(2, 4*sim.Second), Config{
		Hidden: 8, Layers: 1, Epochs: 2, Seed: 5,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m
}

// TestPredictWindowsBatchMatchesSingle asserts the lockstep batched
// closed-loop unroll is bitwise identical to per-trace PredictWindows,
// including when members span different window counts (shorter traces
// drop out of the active set mid-unroll).
func TestPredictWindowsBatchMatchesSingle(t *testing.T) {
	m := batchTestModel(t)
	trs := []*trace.Trace{
		synthTrace(11, 3*sim.Second),
		synthTrace(12, 1*sim.Second), // shorter: exits the active set early
		synthTrace(13, 2*sim.Second),
		synthTrace(14, 3*sim.Second),
		synthTrace(15, 500*sim.Millisecond),
	}
	mus, sigmas := m.PredictWindowsBatch(trs, nil)
	for i, tr := range trs {
		mu, sigma := m.PredictWindows(tr, nil)
		if len(mus[i]) != len(mu) {
			t.Fatalf("trace %d: batch %d windows, single %d", i, len(mus[i]), len(mu))
		}
		for w := range mu {
			if math.Float64bits(mus[i][w]) != math.Float64bits(mu[w]) ||
				math.Float64bits(sigmas[i][w]) != math.Float64bits(sigma[w]) {
				t.Fatalf("trace %d window %d: batch (%v,%v) != single (%v,%v)",
					i, w, mus[i][w], sigmas[i][w], mu[w], sigma[w])
			}
		}
	}
}

// TestSimulateTraceBatchMatchesSingle checks the full serving-path
// contract: batched simulation serializes to the same bytes as unbatched.
func TestSimulateTraceBatchMatchesSingle(t *testing.T) {
	m := batchTestModel(t)
	trs := []*trace.Trace{
		synthTrace(21, 2*sim.Second),
		synthTrace(22, 1*sim.Second),
		synthTrace(23, 2*sim.Second),
		synthTrace(24, 3*sim.Second),
	}
	seeds := []int64{101, 102, 103, 104}
	outs := m.SimulateTraceBatch(trs, nil, seeds)
	for i, tr := range trs {
		want := m.SimulateTrace(tr, nil, seeds[i])
		var bw, bb bytes.Buffer
		if err := json.NewEncoder(&bw).Encode(want); err != nil {
			t.Fatal(err)
		}
		if err := json.NewEncoder(&bb).Encode(outs[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bw.Bytes(), bb.Bytes()) {
			t.Fatalf("trace %d: batched simulation differs from unbatched", i)
		}
	}
}

// TestPredictWindowsBatchSingleton checks n=1 batches work (the serve
// batcher degenerates to this under light load).
func TestPredictWindowsBatchSingleton(t *testing.T) {
	m := batchTestModel(t)
	tr := synthTrace(31, 2*sim.Second)
	mus, sigmas := m.PredictWindowsBatch([]*trace.Trace{tr}, nil)
	mu, sigma := m.PredictWindows(tr, nil)
	for w := range mu {
		if math.Float64bits(mus[0][w]) != math.Float64bits(mu[w]) ||
			math.Float64bits(sigmas[0][w]) != math.Float64bits(sigma[w]) {
			t.Fatalf("window %d differs", w)
		}
	}
}

// BenchmarkSimulateTraceBatch compares one 8-member batched simulate
// against 8 sequential unbatched ones (the serve-path amortization).
func BenchmarkSimulateTraceBatch(b *testing.B) {
	m, err := Train(trainSamples(2, 4*sim.Second), Config{
		Hidden: 48, Layers: 2, Epochs: 1, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	const n = 8
	trs := make([]*trace.Trace, n)
	seeds := make([]int64, n)
	for i := range trs {
		trs[i] = synthTrace(int64(40+i), 2*sim.Second)
		seeds[i] = int64(200 + i)
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.SimulateTraceBatch(trs, nil, seeds)
		}
	})
	b.Run("unbatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range trs {
				m.SimulateTrace(trs[j], nil, seeds[j])
			}
		}
	})
}
