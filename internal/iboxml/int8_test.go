package iboxml

import (
	"math"
	"testing"

	"ibox/internal/sim"
)

// TestInt8CalibrationTolerance proves the opt-in int8 kernel with the
// model's own fidelity machinery: held-out calibration on the quantized
// kernel must stay within a small tolerance of the float kernel's — the
// quantization noise budget — while remaining finite and well-formed.
// This is the acceptance bar for the documented "NOT bitwise-identical"
// path: close in distribution, not in bits.
func TestInt8CalibrationTolerance(t *testing.T) {
	samples := trainSamples(4, 4*sim.Second)
	m, err := Train(samples, Config{Hidden: 12, Layers: 2, Epochs: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	heldOut := []TrainingSample{
		{Trace: synthTrace(300, 4*sim.Second)},
		{Trace: synthTrace(301, 4*sim.Second)},
	}
	ref := m.Calibrate(heldOut)

	if m.Int8Enabled() {
		t.Fatal("int8 must be off by default")
	}
	m.EnableInt8(true)
	defer m.EnableInt8(false)
	if !m.Int8Enabled() {
		t.Fatal("EnableInt8(true) did not stick")
	}
	q := m.Calibrate(heldOut)

	if q.Windows != ref.Windows {
		t.Fatalf("quantized calibration scored %d windows, float %d", q.Windows, ref.Windows)
	}
	if math.IsNaN(q.NLL) || math.IsInf(q.NLL, 0) {
		t.Fatalf("quantized NLL = %v", q.NLL)
	}
	// Per-row symmetric int8 keeps each weight within ~0.4% of its row
	// max; through the tanh-bounded recurrence that perturbs held-out NLL
	// by far less than a nat on in-distribution data.
	if d := math.Abs(q.NLL - ref.NLL); d > 0.5 {
		t.Fatalf("quantized NLL drifted %v nats from float (%v vs %v)", d, q.NLL, ref.NLL)
	}
	if d := math.Abs(q.PITDeviation - ref.PITDeviation); d > 0.2 {
		t.Fatalf("quantized PIT deviation drifted %v (%v vs %v)", d, q.PITDeviation, ref.PITDeviation)
	}
}

// TestInt8PredictionsCloseNotEqual pins both halves of the int8 contract
// on the prediction path: closed-loop window predictions stay within a
// tight relative tolerance of the float kernel, and they are NOT
// bitwise-identical (if they were, the quantized kernel would not
// actually be running).
func TestInt8PredictionsCloseNotEqual(t *testing.T) {
	m, err := Train(trainSamples(3, 4*sim.Second), Config{Hidden: 10, Layers: 1, Epochs: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := synthTrace(310, 4*sim.Second)
	mu, _ := m.PredictWindows(tr, nil)
	m.EnableInt8(true)
	qmu, _ := m.PredictWindows(tr, nil)
	if len(qmu) != len(mu) {
		t.Fatalf("window count %d != %d", len(qmu), len(mu))
	}
	identical := true
	for i := range mu {
		if math.Float64bits(qmu[i]) != math.Float64bits(mu[i]) {
			identical = false
		}
		denom := math.Abs(mu[i])
		if denom < 1 {
			denom = 1
		}
		if math.Abs(qmu[i]-mu[i])/denom > 0.25 {
			t.Fatalf("window %d: int8 mu %v too far from float mu %v", i, qmu[i], mu[i])
		}
	}
	if identical {
		t.Fatal("int8 predictions bitwise-identical to float — quantized kernel not in use")
	}
}

// TestPredictPacketDelayNoAllocs pins the zero-allocation contract of the
// per-packet serving path end to end (standardize, kernel step, head,
// de-standardize).
func TestPredictPacketDelayNoAllocs(t *testing.T) {
	m, err := Train(trainSamples(2, 3*sim.Second), Config{Hidden: 8, Layers: 2, Epochs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	step := m.PredictPacketDelay()
	feats := []float64{1200, 8, 1200, 30}
	step(feats) // warm the compiled-kernel cache before counting
	if n := testing.AllocsPerRun(100, func() { step(feats) }); n != 0 {
		t.Fatalf("PredictPacketDelay allocates %v times per packet, want 0", n)
	}
}
