package iboxml

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ibox/internal/sim"
)

// corpusModelBytes serializes one small trained model for corruption.
func corpusModelBytes(t testing.TB) []byte {
	t.Helper()
	m, err := Train(trainSamples(1, 2*sim.Second), Config{
		Hidden: 4, Layers: 1, Epochs: 1, Seed: 3,
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

// mutate decodes the model JSON to a generic map, applies fn, and
// re-encodes — the easiest way to corrupt a single field.
func mutate(t *testing.T, data []byte, fn func(map[string]any)) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal corpus model: %v", err)
	}
	fn(doc)
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal mutated model: %v", err)
	}
	return out
}

// FuzzRead checks the model deserializer never panics, and that any model
// it accepts is fully usable: Validate passes and closed-loop inference
// runs without panicking. This is the registry's warm-load guarantee — a
// checkpoint either loads into a working model or is rejected.
func FuzzRead(f *testing.F) {
	good := corpusModelBytes(f)
	f.Add(string(good))
	f.Add("")
	f.Add("{}")
	f.Add(`{"net":{}}`)
	f.Add(`{"net":{"kind":0,"in":4,"hidden":2,"layers":1,"params":[]}}`)
	f.Add(`{"config":{"Window":0},"net":null}`)
	f.Add("IBOX1\x00\x01\x02 not json at all")
	f.Add(string(good[:len(good)/2]))
	tr := synthTrace(9, 500*sim.Millisecond)
	f.Fuzz(func(t *testing.T, s string) {
		m, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Read accepted a model that fails Validate: %v", err)
		}
		mu, sigma := m.PredictWindows(tr, nil)
		if len(mu) != len(sigma) {
			t.Fatalf("inference on accepted model: %d mus, %d sigmas", len(mu), len(sigma))
		}
	})
}

// TestReadRejectsCorruptModels walks the corruption taxonomy the serving
// registry must survive: truncation, wrong format, missing network,
// impossible shapes, non-finite or nonsensical statistics.
func TestReadRejectsCorruptModels(t *testing.T) {
	good := corpusModelBytes(t)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not-json", []byte("IBOX1\x00binary junk")},
		{"truncated", good[:len(good)/2]},
		{"empty-object", []byte("{}")},
		{"null-net", mutate(t, good, func(d map[string]any) { d["net"] = nil })},
		{"empty-net", mutate(t, good, func(d map[string]any) { d["net"] = map[string]any{} })},
		{"zero-y-std", mutate(t, good, func(d map[string]any) { d["y_std"] = 0.0 })},
		{"nan-y-mean-as-string", mutate(t, good, func(d map[string]any) { d["y_mean"] = "NaN" })},
		{"wrong-x-std-len", mutate(t, good, func(d map[string]any) { d["x_std"] = []any{1.0} })},
		{"negative-feature-std", mutate(t, good, func(d map[string]any) {
			d["x_std"].([]any)[0] = -1.0
		})},
		{"outlier-rate-above-one", mutate(t, good, func(d map[string]any) { d["outlier_rate"] = 1.5 })},
		{"negative-min-delay", mutate(t, good, func(d map[string]any) { d["min_delay_ms"] = -3.0 })},
		{"zero-window", mutate(t, good, func(d map[string]any) {
			d["config"].(map[string]any)["Window"] = 0
		})},
		{"ct-flag-vs-4dim-net", mutate(t, good, func(d map[string]any) {
			d["config"].(map[string]any)["UseCrossTraffic"] = true
		})},
		{"wrong-tensor-count", mutate(t, good, func(d map[string]any) {
			net := d["net"].(map[string]any)
			net["params"] = net["params"].([]any)[:1]
		})},
		{"wrong-tensor-len", mutate(t, good, func(d map[string]any) {
			p := d["net"].(map[string]any)["params"].([]any)
			p[0] = p[0].([]any)[:1]
		})},
		{"huge-hidden", mutate(t, good, func(d map[string]any) {
			d["net"].(map[string]any)["hidden"] = 1 << 30
		})},
		{"binary-head-net", mutate(t, good, func(d map[string]any) {
			d["net"].(map[string]any)["kind"] = 1
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(tc.data)); err == nil {
				t.Fatal("Read accepted a corrupt model")
			}
		})
	}
	// Sanity: the uncorrupted bytes still load.
	if _, err := Read(bytes.NewReader(good)); err != nil {
		t.Fatalf("Read rejected the pristine model: %v", err)
	}
}
