package iboxml

import (
	"math"
	"testing"

	"ibox/internal/sim"
	"ibox/internal/stats"
)

func TestPacketXYFeatures(t *testing.T) {
	tr := synthTrace(1, 3*sim.Second)
	xs, ys, mask := packetXY(tr, nil)
	if len(xs) != len(tr.Packets) || len(ys) != len(xs) || len(mask) != len(xs) {
		t.Fatalf("shapes: %d/%d/%d vs %d packets", len(xs), len(ys), len(mask), len(tr.Packets))
	}
	if len(xs[0]) != 4 {
		t.Fatalf("dim %d, want 4", len(xs[0]))
	}
	// Teacher forcing: packet i's prev-delay feature equals packet i−1's
	// observed delay.
	for i := 1; i < 20; i++ {
		if xs[i][3] != ys[i-1] {
			t.Fatalf("packet %d prev-delay %v != %v", i, xs[i][3], ys[i-1])
		}
	}
}

func TestTrainPacketLearnsDelays(t *testing.T) {
	// Shorter traces than the window model needs: per-packet sequences are
	// dense.
	m, err := TrainPacket(trainSamples(3, 5*sim.Second), Config{
		Hidden: 12, Layers: 1, Epochs: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	test := synthTrace(88, 5*sim.Second)
	mu, sigma := m.PredictPackets(test, nil)
	if len(mu) != len(test.Packets) {
		t.Fatalf("prediction length %d", len(mu))
	}
	var truth []float64
	for _, p := range test.Packets {
		truth = append(truth, p.Delay().Millis())
	}
	corr := stats.CrossCorrelation(mu, truth)
	if corr < 0.6 {
		t.Errorf("per-packet prediction corr %.3f, want ≥ 0.6", corr)
	}
	if math.Abs(stats.Mean(mu)-stats.Mean(truth)) > 0.35*stats.Mean(truth) {
		t.Errorf("mean %.1f vs truth %.1f", stats.Mean(mu), stats.Mean(truth))
	}
	for _, s := range sigma {
		if s < 0 || math.IsNaN(s) {
			t.Fatal("bad sigma")
		}
	}
}

func TestPacketModelSimulateTrace(t *testing.T) {
	m, err := TrainPacket(trainSamples(2, 4*sim.Second), Config{
		Hidden: 8, Layers: 1, Epochs: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := synthTrace(51, 4*sim.Second)
	in.Packets[5].Lost = true
	out := m.SimulateTrace(in, nil, 3)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if !out.Packets[5].Lost {
		t.Error("lost packet not echoed")
	}
	// Determinism.
	out2 := m.SimulateTrace(in, nil, 3)
	for i := range out.Packets {
		if out.Packets[i].RecvTime != out2.Packets[i].RecvTime {
			t.Fatal("not deterministic")
		}
	}
}

func TestTrainPacketRejectsEmpty(t *testing.T) {
	if _, err := TrainPacket(nil, Config{}); err == nil {
		t.Error("empty accepted")
	}
}

func TestPacketPredictPanicsUntrained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	(&PacketModel{}).PredictPackets(synthTrace(1, sim.Second), nil)
}
