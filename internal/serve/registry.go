// Package serve is the online-serving subsystem: it exposes the trained
// path models (iBoxNet parameter profiles, iBoxML checkpoints) behind a
// long-running HTTP/JSON service, so a counterfactual query — "how would
// protocol B have fared on this path?" — is an API call rather than a
// batch experiment run. The pieces:
//
//   - Registry: a thread-safe warm model cache over a directory of
//     artifacts, with lazy single-flight loading and LRU eviction;
//   - batcher: request micro-batching for iBoxML replay, amortizing the
//     LSTM weight streaming across concurrent requests (see
//     iboxml.SimulateTraceBatch);
//   - Server: the HTTP front door with admission control — bounded
//     queue, load shedding, per-request deadlines, graceful drain.
//
// Serving is a faithful frontend to the offline code paths: a simulate
// response is byte-identical to the equivalent core/iboxml call with the
// same model, inputs and seed, whether or not the request was batched.
package serve

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
)

// Kind identifies what a registry entry can simulate.
type Kind string

const (
	// KindIBoxNet is a parameter profile driving the §3 emulator; requests
	// name a congestion-control protocol to run over it.
	KindIBoxNet Kind = "iboxnet"
	// KindIBoxML is a trained §4 LSTM checkpoint; requests supply a
	// send-side input trace to replay through it.
	KindIBoxML Kind = "iboxml"
)

// maxModelFileBytes bounds how much of a model file the registry will
// read; anything larger than this is not a model this codebase produces.
const maxModelFileBytes = 256 << 20

// Model is a loaded, immutable registry entry. Exactly one of Net/ML is
// set, per Kind. Handed-out entries stay valid after eviction — eviction
// only drops the registry's reference.
type Model struct {
	ID        string
	Kind      Kind
	Net       iboxnet.Params // when Kind == KindIBoxNet
	ML        *iboxml.Model  // when Kind == KindIBoxML
	SizeBytes int64
}

// entry is a cache slot. ready is closed when the load attempt finishes;
// concurrent Gets for the same id wait on it instead of loading twice
// (single-flight). A failed load is cached too (err set, model nil),
// pinned to the artifact's stat signature at load time: the error is
// served without touching the file until the signature changes.
type entry struct {
	ready chan struct{}
	model *Model
	err   error
	fail  failSig       // artifact signature when err != nil
	elem  *list.Element // position in the LRU (or negative) list; nil while loading
}

// failSig is an artifact's stat signature (existence, size, mtime) taken
// just before a load attempt. Two equal signatures mean the file almost
// certainly has the same content, so a load that failed against one
// would fail the same way again — the cached error stands in for the
// re-read and re-sniff. Any visible change (file appears, is replaced,
// grows) makes the signatures differ and triggers a fresh load, which
// preserves the old behaviour that a failure is never pinned forever.
type failSig struct {
	exists  bool
	size    int64
	modTime time.Time
}

func statSig(path string) failSig {
	fi, err := os.Stat(path)
	if err != nil {
		return failSig{}
	}
	return failSig{exists: true, size: fi.Size(), modTime: fi.ModTime()}
}

// Registry is the warm model cache: a directory of trained artifacts,
// loaded lazily on first request, kept warm up to a capacity, evicted
// least-recently-used beyond it.
type Registry struct {
	dir string
	max int

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // of loaded string ids; front = most recently used
	neg     *list.List // of failed string ids, same discipline, own capacity

	hits, misses, evictions, loadErrors *obs.Counter
	loaded                              *obs.Gauge
	loadHist                            *obs.Histogram
}

// NewRegistry returns a registry over dir holding at most max models
// warm (max <= 0 selects 16).
func NewRegistry(dir string, max int) *Registry {
	if max <= 0 {
		max = 16
	}
	r := &Registry{
		dir:     dir,
		max:     max,
		entries: make(map[string]*entry),
		lru:     list.New(),
		neg:     list.New(),
	}
	if reg := obs.Get(); reg != nil {
		r.hits = reg.Counter("serve.model_hits")
		r.misses = reg.Counter("serve.model_misses")
		r.evictions = reg.Counter("serve.model_evictions")
		r.loadErrors = reg.Counter("serve.model_load_errors")
		r.loaded = reg.Gauge("serve.models_loaded")
		r.loadHist = reg.Histogram("serve.model_load_ns")
	}
	return r
}

// ErrInvalidModelID marks ids rejected before touching the filesystem —
// a client error, not a load failure.
var ErrInvalidModelID = errors.New("serve: invalid model id")

// validID rejects ids that could escape the model directory or that name
// hidden files. Models are plain files directly inside the directory.
func validID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrInvalidModelID)
	}
	if strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") || strings.HasPrefix(id, ".") {
		return fmt.Errorf("%w: %q", ErrInvalidModelID, id)
	}
	return nil
}

// Get returns the model with the given id, loading it from disk on first
// use. Concurrent requests for the same cold model share one load, and
// the error path is single-flight too: a failed load is cached against
// the artifact's stat signature, so repeated Gets for a broken or
// missing model return the cached error with one stat call instead of
// re-reading and re-sniffing the file every time. The failure is not
// pinned — as soon as the file appears, is replaced or otherwise changes
// its signature, the next Get loads it fresh.
func (r *Registry) Get(id string) (*Model, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	path := filepath.Join(r.dir, id)
	for {
		r.mu.Lock()
		if e, ok := r.entries[id]; ok {
			r.mu.Unlock()
			<-e.ready
			if e.err == nil {
				r.touch(e)
				r.hits.Add(1)
				return e.model, nil
			}
			if statSig(path) == e.fail {
				// The artifact looks exactly as it did when the load failed;
				// serve the cached error.
				r.touch(e)
				r.hits.Add(1)
				return nil, e.err
			}
			// The file changed (or appeared): drop the stale negative entry
			// and retry. Only the first Get to notice replaces it; the
			// others find the fresh loading entry and wait on it.
			r.mu.Lock()
			if r.entries[id] == e {
				if e.elem != nil {
					r.neg.Remove(e.elem)
				}
				delete(r.entries, id)
			}
			r.mu.Unlock()
			continue
		}
		e := &entry{ready: make(chan struct{})}
		r.entries[id] = e
		r.mu.Unlock()
		r.misses.Add(1)

		// Signature before the read: if the file mutates mid-load, the next
		// Get sees a signature mismatch and retries rather than trusting an
		// error recorded against content that no longer exists.
		sig := statSig(path)
		var t0 time.Time
		if r.loadHist != nil {
			t0 = time.Now()
		}
		m, err := loadModel(path, id)
		if r.loadHist != nil {
			r.loadHist.ObserveSince(t0)
		}
		r.mu.Lock()
		e.model, e.err = m, err
		if err != nil {
			e.fail = sig
			e.elem = r.neg.PushFront(id)
			r.evictNeg()
			r.loadErrors.Add(1)
		} else {
			e.elem = r.lru.PushFront(id)
			r.loaded.Set(float64(r.lru.Len()))
			r.evict()
		}
		r.mu.Unlock()
		close(e.ready)
		return m, err
	}
}

// touch moves an entry to the front of its list (LRU for loaded models,
// the negative list for cached failures).
func (r *Registry) touch(e *entry) {
	r.mu.Lock()
	if e.elem != nil {
		if e.err != nil {
			r.neg.MoveToFront(e.elem)
		} else {
			r.lru.MoveToFront(e.elem)
		}
	}
	r.mu.Unlock()
}

// evict drops least-recently-used loaded entries beyond capacity. Caller
// holds r.mu. In-flight loads are not in the LRU list and never evict.
func (r *Registry) evict() {
	for r.lru.Len() > r.max {
		back := r.lru.Back()
		id := back.Value.(string)
		r.lru.Remove(back)
		delete(r.entries, id)
		r.evictions.Add(1)
	}
	r.loaded.Set(float64(r.lru.Len()))
}

// evictNeg bounds the negative cache the same way: at most max cached
// failures, oldest dropped first. Caller holds r.mu. Without the bound a
// client probing many bad ids would grow the entries map without limit —
// before negative caching that couldn't happen, because failures were
// never retained.
func (r *Registry) evictNeg() {
	for r.neg.Len() > r.max {
		back := r.neg.Back()
		r.neg.Remove(back)
		delete(r.entries, back.Value.(string))
		r.evictions.Add(1)
	}
}

// Loaded reports how many models are currently warm — the /statusz and
// LoadStats view of cache pressure.
func (r *Registry) Loaded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Warm preloads the given ids (e.g. from a -warm flag at startup),
// returning the first error.
func (r *Registry) Warm(ids []string) error {
	for _, id := range ids {
		if _, err := r.Get(id); err != nil {
			return fmt.Errorf("serve: warming %s: %w", id, err)
		}
	}
	return nil
}

// ModelInfo describes one model file for GET /v1/models.
type ModelInfo struct {
	ID        string `json:"id"`
	SizeBytes int64  `json:"size_bytes"`
	Loaded    bool   `json:"loaded"`
	Kind      Kind   `json:"kind,omitempty"` // known only once loaded
}

// List enumerates the model files in the directory (sorted by id) and
// whether each is currently warm.
func (r *Registry) List() ([]ModelInfo, error) {
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	r.mu.Lock()
	warm := make(map[string]Kind, len(r.entries))
	for id, e := range r.entries {
		if e.elem != nil && e.model != nil {
			warm[id] = e.model.Kind
		}
	}
	r.mu.Unlock()
	var out []ModelInfo
	for _, de := range des {
		if de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		info := ModelInfo{ID: de.Name()}
		if fi, err := de.Info(); err == nil {
			info.SizeBytes = fi.Size()
		}
		if k, ok := warm[de.Name()]; ok {
			info.Loaded = true
			info.Kind = k
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// loadModel reads one artifact from disk, sniffing its kind from the JSON
// top level: an iBoxML checkpoint has a "net" object, an iBoxNet profile
// a "Bandwidth" field. Both deserializers validate, so a corrupt file is
// rejected here and never enters the cache.
func loadModel(path, id string) (*Model, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.Size() > maxModelFileBytes {
		return nil, fmt.Errorf("serve: model %s is %d bytes, over the %d-byte limit", id, fi.Size(), int64(maxModelFileBytes))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("serve: model %s is not a JSON object: %w", id, err)
	}
	switch {
	case top["net"] != nil || top["config"] != nil:
		ml, err := iboxml.Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("serve: model %s: %w", id, err)
		}
		return &Model{ID: id, Kind: KindIBoxML, ML: ml, SizeBytes: fi.Size()}, nil
	case top["Bandwidth"] != nil:
		p, err := iboxnet.ReadParams(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("serve: model %s: %w", id, err)
		}
		return &Model{ID: id, Kind: KindIBoxNet, Net: p, SizeBytes: fi.Size()}, nil
	default:
		return nil, fmt.Errorf("serve: model %s is neither an iBoxML checkpoint (no \"net\") nor an iBoxNet profile (no \"Bandwidth\")", id)
	}
}
