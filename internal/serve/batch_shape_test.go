package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ibox/internal/core"
	"ibox/internal/iboxml"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// mlCache caches tiny trained checkpoints by (hidden, layers, seed):
// distinct seeds give genuinely different weights for one shape.
var mlCache = struct {
	sync.Mutex
	m map[[3]int64]*iboxml.Model
}{m: map[[3]int64]*iboxml.Model{}}

func trainedMLShape(t testing.TB, hidden, layers int, seed int64) *iboxml.Model {
	t.Helper()
	key := [3]int64{int64(hidden), int64(layers), seed}
	mlCache.Lock()
	defer mlCache.Unlock()
	if m := mlCache.m[key]; m != nil {
		return m
	}
	var samples []iboxml.TrainingSample
	for i := int64(0); i < 2; i++ {
		samples = append(samples, iboxml.TrainingSample{Trace: synthTrace(i, 3*sim.Second)})
	}
	m, err := iboxml.Train(samples, iboxml.Config{
		Hidden: hidden, Layers: layers, Epochs: 1, Seed: seed,
	})
	if err != nil {
		t.Fatalf("train h%d l%d seed %d: %v", hidden, layers, seed, err)
	}
	mlCache.m[key] = m
	return m
}

func saveModel(t testing.TB, m *iboxml.Model, dir, id string) {
	t.Helper()
	if err := m.Save(filepath.Join(dir, id)); err != nil {
		t.Fatalf("save %s: %v", id, err)
	}
}

// TestCrossCheckpointBatchEquivalence: two concurrent requests for two
// *different* checkpoints of one shape must share a single micro-batch
// (X-Ibox-Batch-Size: 2 on both) and still answer byte-for-byte what the
// offline unbatched simulation answers for each model.
func TestCrossCheckpointBatchEquivalence(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.BatchWindow = 250 * time.Millisecond
		c.BatchMax = 2 // flush as soon as both requests joined
	})
	mA := trainedMLShape(t, 8, 1, 5)
	mB := trainedMLShape(t, 8, 1, 6)
	saveModel(t, mA, dir, "a.json")
	saveModel(t, mB, dir, "b.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inputs := []*trace.Trace{synthTrace(41, 2*sim.Second), synthTrace(42, 2*sim.Second)}
	reqs := []SimulateRequest{
		{Model: "a.json", Input: inputs[0], Seed: 901},
		{Model: "b.json", Input: inputs[1], Seed: 902},
	}
	want := [][]byte{
		encodeResponse(t, SimulateResponse{
			Model: "a.json", Kind: KindIBoxML,
			Metrics: core.MetricsOf(mA.SimulateTrace(inputs[0], nil, 901)),
			Trace:   mA.SimulateTrace(inputs[0], nil, 901),
		}),
		encodeResponse(t, SimulateResponse{
			Model: "b.json", Kind: KindIBoxML,
			Metrics: core.MetricsOf(mB.SimulateTrace(inputs[1], nil, 902)),
			Trace:   mB.SimulateTrace(inputs[1], nil, 902),
		}),
	}

	var wg sync.WaitGroup
	sizes := make([]string, len(reqs))
	bodies := make([][]byte, len(reqs))
	codes := make([]int, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], sizes[i], bodies[i] = postSimulateSized(t, ts.URL, reqs[i])
		}(i)
	}
	wg.Wait()
	for i := range reqs {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if sizes[i] != "2" {
			t.Fatalf("request %d: %s = %q, want 2 (cross-checkpoint co-batch)", i, batchSizeHeader, sizes[i])
		}
		if !bytes.Equal(bodies[i], want[i]) {
			t.Fatalf("request %d: cross-checkpoint batched body differs from offline unbatched", i)
		}
	}
}

// postSimulateSized is postSimulate plus the batch-size header.
func postSimulateSized(t testing.TB, url string, req SimulateRequest) (int, string, []byte) {
	t.Helper()
	code, hdr, body := postSimulate(t, url, req)
	return code, hdr.Get(batchSizeHeader), body
}

// TestPerCheckpointModeSplitsGroups: with Config.BatchPerCheckpoint the
// same two-model burst must *not* co-batch — the legacy grouping the
// bench suite A/Bs against.
func TestPerCheckpointModeSplitsGroups(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.BatchWindow = 60 * time.Millisecond
		c.BatchMax = 2
		c.BatchPerCheckpoint = true
	})
	saveModel(t, trainedMLShape(t, 8, 1, 5), dir, "a.json")
	saveModel(t, trainedMLShape(t, 8, 1, 6), dir, "b.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(43, sim.Second)
	var wg sync.WaitGroup
	sizes := make([]string, 2)
	for i, id := range []string{"a.json", "b.json"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			code, size, body := postSimulateSized(t, ts.URL, SimulateRequest{Model: id, Input: in, Seed: 1})
			if code != 200 {
				t.Errorf("%s: status %d: %s", id, code, body)
			}
			sizes[i] = size
		}(i, id)
	}
	wg.Wait()
	for i, size := range sizes {
		if size != "1" {
			t.Fatalf("request %d: batch size %q, want 1 in per-checkpoint mode", i, size)
		}
	}
}

// TestShapeMismatchNeverCoBatches: concurrent requests for checkpoints
// of different shapes must land in separate batches even with room in
// the dispatch window.
func TestShapeMismatchNeverCoBatches(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.BatchWindow = 60 * time.Millisecond
		c.BatchMax = 2
	})
	saveModel(t, trainedMLShape(t, 8, 1, 5), dir, "h8.json")
	saveModel(t, trainedMLShape(t, 6, 1, 5), dir, "h6.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(44, sim.Second)
	var wg sync.WaitGroup
	sizes := make([]string, 2)
	for i, id := range []string{"h8.json", "h6.json"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			code, size, body := postSimulateSized(t, ts.URL, SimulateRequest{Model: id, Input: in, Seed: 1})
			if code != 200 {
				t.Errorf("%s: status %d: %s", id, code, body)
			}
			sizes[i] = size
		}(i, id)
	}
	wg.Wait()
	for i, size := range sizes {
		if size != "1" {
			t.Fatalf("request %d: batch size %q, want 1 (shapes differ)", i, size)
		}
	}
}

// TestBatchGroupSurvivesReload is the regression test for the
// pointer-keyed grouping bug: the batcher used to key pending groups by
// *iboxml.Model, so an LRU-evicted-then-reloaded checkpoint (same
// artifact, fresh pointer) silently split its group. Keys are artifact
// IDs now: two submissions under one ID through two distinct pointers
// must share a batch even in per-checkpoint mode.
func TestBatchGroupSurvivesReload(t *testing.T) {
	dir := t.TempDir()
	writeMLModel(t, dir, "m.json")
	m1, err := iboxml.Load(filepath.Join(dir, "m.json"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := iboxml.Load(filepath.Join(dir, "m.json")) // the "reloaded" pointer
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("expected two distinct model pointers")
	}

	pool := par.NewPool(1)
	defer pool.Close()
	b := newBatcher(pool, 200*time.Millisecond, 2, 0, true /* per-checkpoint */)
	in := synthTrace(45, sim.Second)
	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i, m := range []*iboxml.Model{m1, m2} {
		wg.Add(1)
		go func(i int, m *iboxml.Model) {
			defer wg.Done()
			_, size, err := b.submit(context.Background(), "m.json", m, in, int64(i))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			sizes[i] = size
		}(i, m)
	}
	wg.Wait()
	for i, size := range sizes {
		if size != 2 {
			t.Fatalf("submission %d: batch size %d, want 2 — evicted-then-reloaded checkpoint split its group", i, size)
		}
	}
}

// TestServeCrossCheckpointDeterminism races a mixed burst over two
// same-shape checkpoints through the batching front door and checks every
// response byte against the offline serial replay — the serial-vs-batched
// determinism half of the equivalence harness, run under -race in CI.
func TestServeCrossCheckpointDeterminism(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 2
		c.BatchWindow = 5 * time.Millisecond
		c.BatchMax = 8
	})
	models := map[string]*iboxml.Model{
		"a.json": trainedMLShape(t, 8, 1, 5),
		"b.json": trainedMLShape(t, 8, 1, 6),
	}
	for id, m := range models {
		saveModel(t, m, dir, id)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 12
	ids := []string{"a.json", "b.json"}
	type result struct {
		code int
		body []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i%len(ids)]
			code, _, body := postSimulate(t, ts.URL, SimulateRequest{
				Model: id, Input: synthTrace(int64(50+i%3), 2*sim.Second), Seed: int64(700 + i%3),
			})
			results[i] = result{code, body}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if results[i].code != 200 {
			t.Fatalf("request %d: status %d: %s", i, results[i].code, results[i].body)
		}
		id := ids[i%len(ids)]
		m := models[id]
		out := m.SimulateTrace(synthTrace(int64(50+i%3), 2*sim.Second), nil, int64(700+i%3))
		want := encodeResponse(t, SimulateResponse{
			Model: id, Kind: KindIBoxML, Metrics: core.MetricsOf(out), Trace: out,
		})
		if !bytes.Equal(results[i].body, want) {
			t.Fatalf("request %d (%s): batched response differs from serial offline replay", i, id)
		}
	}
}

// sentinelClone returns a same-shape copy of m whose weights are scaled
// into saturation — a sentinel: if lane batching leaked any state across
// lanes, a sentinel neighbor would visibly corrupt the victim's outputs.
func sentinelClone(t testing.TB, m *iboxml.Model, scale float64) *iboxml.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := iboxml.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb before any inference compiles the clone's kernel.
	for _, p := range clone.Net.Params() {
		for i := range p.W {
			p.W[i] *= scale
		}
	}
	return clone
}

// FuzzShapeGroup fuzzes the co-batching compatibility decision: whatever
// two checkpoint shapes arrive, incompatible models must never share a
// lane batch (the shape key separates them and the lane layer panics
// rather than corrupting state), and compatible ones must co-batch with
// outputs bitwise-identical to their own unbatched replays — even when
// the neighbor lane carries saturated sentinel weights.
func FuzzShapeGroup(f *testing.F) {
	f.Add(uint8(8), uint8(1), uint8(8), uint8(1), int64(5), int64(6))  // same shape
	f.Add(uint8(8), uint8(1), uint8(6), uint8(1), int64(5), int64(5))  // hidden mismatch
	f.Add(uint8(8), uint8(1), uint8(8), uint8(2), int64(5), int64(5))  // layer mismatch
	f.Add(uint8(3), uint8(3), uint8(3), uint8(3), int64(1), int64(2))  // deep + tiny
	f.Add(uint8(5), uint8(2), uint8(7), uint8(2), int64(9), int64(10)) // odd widths
	f.Fuzz(func(t *testing.T, h1, l1, h2, l2 uint8, seedA, seedB int64) {
		hiddenA, layersA := 1+int(h1)%8, 1+int(l1)%3
		hiddenB, layersB := 1+int(h2)%8, 1+int(l2)%3
		mA := trainedMLShape(t, hiddenA, layersA, seedA%4)
		mB := sentinelClone(t, trainedMLShape(t, hiddenB, layersB, seedB%4), 100)

		inA := synthTrace(46, sim.Second)
		inB := synthTrace(47, sim.Second)
		lanes := []iboxml.ReplayLane{
			{Model: mA, Input: inA, Seed: 11},
			{Model: mB, Input: inB, Seed: 12},
		}
		if mA.Shape() != mB.Shape() {
			// The batcher's keys differ, so these never share a group …
			if (groupKey{shape: mA.Shape()}) == (groupKey{shape: mB.Shape()}) {
				t.Fatalf("distinct shapes %s and %s collide as group keys", mA.Shape(), mB.Shape())
			}
			// … and forcing them into one batch fails loudly.
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("incompatible lanes did not panic")
				}
				if !strings.Contains(fmt.Sprint(r), "shape") {
					t.Fatalf("unexpected panic: %v", r)
				}
			}()
			iboxml.SimulateTraceLanes(lanes, 0)
			return
		}
		// Compatible: one batch, zero cross-talk — each lane bitwise equals
		// its own unbatched replay despite the sentinel neighbor.
		outs := iboxml.SimulateTraceLanes(lanes, 0)
		wantA := mA.SimulateTrace(inA, nil, 11)
		wantB := mB.SimulateTrace(inB, nil, 12)
		for i, pair := range []struct{ got, want *trace.Trace }{{outs[0], wantA}, {outs[1], wantB}} {
			var bg, bw bytes.Buffer
			if err := json.NewEncoder(&bg).Encode(pair.got); err != nil {
				t.Fatal(err)
			}
			if err := json.NewEncoder(&bw).Encode(pair.want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bg.Bytes(), bw.Bytes()) {
				t.Fatalf("lane %d: batched output differs from unbatched (cross-lane corruption)", i)
			}
		}
	})
}
