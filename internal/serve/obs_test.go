package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ibox/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes. The
// instrument middleware records metrics and access logs after the
// response body is flushed, so a client that just read a response may
// be momentarily ahead of the server's bookkeeping.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestIDHeader checks every /v1 response carries X-Request-Id:
// generated when the client sent none, echoed verbatim when it did, and
// replaced when the client's ID is abusively long.
func TestRequestIDHeader(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := func() *bytes.Reader {
		b, _ := json.Marshal(SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1})
		return bytes.NewReader(b)
	}

	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", body())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get(RequestIDHeader)
	if gen == "" {
		t.Fatal("response missing generated X-Request-Id")
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/simulate", body())
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "client-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-supplied-42" {
		t.Fatalf("supplied request id not echoed: got %q", got)
	}

	req, _ = http.NewRequest("POST", ts.URL+"/v1/simulate", body())
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, strings.Repeat("x", maxRequestIDLen+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "" || strings.HasPrefix(got, "xxx") {
		t.Fatalf("oversized request id not replaced: got %q", got)
	}
}

// TestMetricsEndpoint checks GET /metrics returns a valid Prometheus
// exposition including the labeled per-route/per-model latency
// histogram and the labeled status-class counters.
func TestMetricsEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, _ := postSimulate(t, ts.URL, SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	waitFor(t, "request metrics", func() bool { return s.httpRequests.With("simulate", "2xx").Value() >= 1 })

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, _, err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("/metrics failed exposition validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		`serve_http_requests_total{route="simulate",status="2xx"} 1`,
		`serve_request_ns_bucket{route="simulate",model="path-a.json",status="2xx",batched="false",le="+Inf"} 1`,
		`serve_request_ns_count{route="simulate",model="path-a.json",status="2xx",batched="false"} 1`,
		"serve_requests_total 1",
		"# TYPE serve_http_request_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// TestAccessLog checks the structured access-log line: one JSON record
// per request whose request_id matches the response header and whose
// fields report route, model, status, latency, queue wait and batch
// size.
func TestAccessLog(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	var buf syncBuffer
	obs.SetLogger(slog.New(obs.NewLogHandler(&buf, slog.LevelInfo)))
	defer obs.SetLogger(nil)

	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, hdr, _ := postSimulate(t, ts.URL, SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	waitFor(t, "access log line", func() bool { return strings.Contains(buf.String(), `"msg":"access"`) })

	var rec map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.Contains(line, `"msg":"access"`) {
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("access line is not JSON: %v\n%s", err, line)
			}
		}
	}
	if rec["request_id"] != hdr.Get(RequestIDHeader) {
		t.Fatalf("access log request_id %v != header %q", rec["request_id"], hdr.Get(RequestIDHeader))
	}
	if rec["route"] != "simulate" || rec["model"] != "path-a.json" {
		t.Fatalf("access log route/model = %v/%v", rec["route"], rec["model"])
	}
	if rec["status"] != float64(200) {
		t.Fatalf("access log status = %v", rec["status"])
	}
	for _, k := range []string{"latency_ms", "queue_wait_ms", "batch_size", "bytes_out"} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("access log missing %q: %v", k, rec)
		}
	}
	if rec["latency_ms"].(float64) <= 0 {
		t.Fatalf("latency_ms = %v, want > 0", rec["latency_ms"])
	}
}

// TestCountersReconcileUnderBurst floods a MaxConcurrent=1, MaxQueue=1
// server with concurrent requests and asserts the flat counters
// (serve.requests / serve.shed / serve.errors) and the labeled
// status-class counters reconcile exactly with the client-observed HTTP
// responses. Run under -race in CI.
func TestCountersReconcileUnderBurst(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
	})
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 24
	reqBody, _ := json.Marshal(SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1})
	var mu sync.Mutex
	byStatus := map[int]int64{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			resp.Body.Close()
			if resp.Header.Get(RequestIDHeader) == "" {
				t.Errorf("response %d missing X-Request-Id", resp.StatusCode)
			}
			mu.Lock()
			byStatus[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	ok, shed := byStatus[http.StatusOK], byStatus[http.StatusTooManyRequests]
	if ok+shed != n {
		t.Fatalf("unexpected status mix %v (want only 200 and 429)", byStatus)
	}
	if ok == 0 || shed == 0 {
		t.Skipf("burst did not contend (ok=%d shed=%d); nothing to reconcile", ok, shed)
	}
	// The middleware records after the response flushes; wait for the
	// bookkeeping to catch up, then every ledger must agree exactly.
	waitFor(t, "labeled counters", func() bool {
		return s.httpRequests.With("simulate", "2xx").Value()+s.httpRequests.With("simulate", "4xx").Value() >= n
	})
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"serve.requests (admitted)", s.requests.Value(), ok},
		{"serve.shed", s.shed.Value(), shed},
		{"serve.errors", s.errors.Value(), shed},
		{`http_requests{simulate,2xx}`, s.httpRequests.With("simulate", "2xx").Value(), ok},
		{`http_requests{simulate,4xx}`, s.httpRequests.With("simulate", "4xx").Value(), shed},
		{`shed_reason{queue_full}`, s.shedByReason.With("queue_full").Value(), shed},
		{"request_ns observations", s.httpLatency.Count(), int64(n)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d (client saw %v)", c.name, c.got, c.want, byStatus)
		}
	}
}

// TestTraceSampling checks TraceSample=1 records a span lane per
// request (request → queue → load → simulate) exportable as Chrome
// trace JSON, and that the span ring limit bounds retention.
func TestTraceSampling(t *testing.T) {
	reg := obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, func(c *Config) {
		c.TraceSample = 1
	})
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		code, _, _ := postSimulate(t, ts.URL, SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1})
		if code != http.StatusOK {
			t.Fatalf("simulate: %d", code)
		}
	}
	var out string
	waitFor(t, "sampled request spans", func() bool {
		var b bytes.Buffer
		if err := reg.TraceJSON(&b); err != nil {
			t.Fatal(err)
		}
		out = b.String()
		return strings.Count(out, `"request"`) >= 2
	})
	for _, stage := range []string{`"queue"`, `"load"`, `"simulate"`} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace missing %s span:\n%s", stage, out)
		}
	}
	var trace struct {
		Events []struct {
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &trace); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	found := false
	for _, ev := range trace.Events {
		if ev.Name == "request" && ev.Args["route"] == "simulate" && ev.Args["model"] == "path-a.json" && ev.Args["status"] == "2xx" {
			found = true
		}
	}
	if !found {
		t.Errorf("no request span carries route/model/status args:\n%s", out)
	}
}

// TestStatusz checks the human text page and the JSON load signal.
func TestStatusz(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.rollTick() // baseline before the request so the next tick sees a delta
	if code, _, _ := postSimulate(t, ts.URL, SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1}); code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	waitFor(t, "latency recorded", func() bool { return s.httpLatency.Count() >= 1 })
	s.rollTick()

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ibox-serve statusz", "window", "models loaded: 1", "serve.requests"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("/statusz missing %q:\n%s", want, b.String())
		}
	}

	resp, err = http.Get(ts.URL + "/statusz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var ls LoadStats
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatalf("statusz json: %v", err)
	}
	resp.Body.Close()
	if ls.ModelsLoaded != 1 {
		t.Fatalf("LoadStats.ModelsLoaded = %d, want 1", ls.ModelsLoaded)
	}
	if ls.UptimeS <= 0 || ls.Draining {
		t.Fatalf("LoadStats = %+v", ls)
	}
	if ls.Rate10s <= 0 {
		t.Fatalf("LoadStats.Rate10s = %v, want > 0 after manual ticks", ls.Rate10s)
	}
}

// TestRollingGauges checks the collector republishes serve.win.* gauges
// the regress gate skips by pattern.
func TestRollingGauges(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.rollTick() // baseline
	if code, _, _ := postSimulate(t, ts.URL, SimulateRequest{Model: "path-a.json", Protocol: "cubic", DurationS: 0.2, Seed: 1}); code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	waitFor(t, "latency recorded", func() bool { return s.httpLatency.Count() >= 1 })
	s.rollTick()

	snap := obs.Get().Snapshot()
	if got := snap.Gauges["serve.win.req_rate_1s"]; got <= 0 {
		t.Fatalf("serve.win.req_rate_1s = %v, want > 0 (gauges: %v)", got, snap.Gauges)
	}
	if got := snap.Gauges["serve.win.p99_ns_10s"]; got <= 0 {
		t.Fatalf("serve.win.p99_ns_10s = %v, want > 0", got)
	}
}

// TestDebugMuxRepeated checks two DebugMux calls in one process (two
// servers, or a server plus ibox-experiments) don't double-publish the
// expvar name, and that the exported snapshot carries histogram
// summaries with count, sum and quantiles.
func TestDebugMuxRepeated(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Get().Histogram("serve.simulate_ns").Observe(1500)

	m1 := DebugMux()
	m2 := DebugMux() // must not panic on expvar re-publish
	for _, m := range []*http.ServeMux{m1, m2} {
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/debug/vars: %d", rec.Code)
		}
		var vars map[string]json.RawMessage
		if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
			t.Fatalf("vars not JSON: %v", err)
		}
		var snap struct {
			Histograms map[string]struct {
				Count int64   `json:"count"`
				Sum   int64   `json:"sum_ns"`
				P99   float64 `json:"p99_ns"`
			} `json:"histograms"`
		}
		if err := json.Unmarshal(vars["ibox.obs"], &snap); err != nil {
			t.Fatalf("ibox.obs: %v", err)
		}
		h := snap.Histograms["serve.simulate_ns"]
		if h.Count != 1 || h.Sum != 1500 || h.P99 <= 0 {
			t.Fatalf("exported histogram summary = %+v, want count=1 sum=1500 p99>0", h)
		}
	}

	// The debug mux also exposes the Prometheus endpoint for the
	// -debug-addr deployment shape.
	rec := httptest.NewRecorder()
	m1.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "serve_simulate_ns_count 1") {
		t.Fatalf("debug-mux /metrics: %d\n%s", rec.Code, rec.Body.String())
	}
}
