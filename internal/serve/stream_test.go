package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ibox/internal/sim"
)

// postReplay fires one streaming replay request; sse selects the
// Server-Sent-Events framing via the Accept header.
func postReplay(t testing.TB, ctx context.Context, url string, req ReplayRequest, sse bool) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(req); err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/replay", &body)
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if sse {
		hr.Header.Set("Accept", "text/event-stream")
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /v1/replay: %v", err)
	}
	return resp
}

// parseSSE splits a complete SSE body into frames (reusing the
// sseFrame type from sessions_test.go).
func parseSSE(t testing.TB, body []byte) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, block := range strings.Split(string(body), "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				f.Event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.Data = []byte(strings.TrimPrefix(line, "data: "))
			default:
				t.Fatalf("malformed SSE line %q", line)
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// checkReplayChunks asserts the streaming conformance contract over a
// decoded frame sequence: monotonically ordered contiguous chunks of the
// configured size, exactly one terminal end frame, and window values
// bitwise equal to the offline unbatched prediction (JSON round-trips
// float64 exactly, so byte-level equality is checkable post-decode).
func checkReplayChunks(t *testing.T, types []string, chunks []replayWindows, end replayEnd, chunkWin int, wantMu, wantSigma []float64) {
	t.Helper()
	for i, typ := range types {
		if i == len(types)-1 {
			if typ != "end" {
				t.Fatalf("last frame is %q, want end", typ)
			}
		} else if typ != "windows" {
			t.Fatalf("frame %d is %q, want windows", i, typ)
		}
	}
	next := 0
	var mu, sigma []float64
	for i, c := range chunks {
		if c.T0 != next {
			t.Fatalf("chunk %d starts at t0=%d, want %d (monotonic, contiguous)", i, c.T0, next)
		}
		if i < len(chunks)-1 && len(c.Mu) != chunkWin {
			t.Fatalf("chunk %d carries %d windows, want %d", i, len(c.Mu), chunkWin)
		}
		if len(c.Mu) != len(c.Sigma) {
			t.Fatalf("chunk %d: %d mus vs %d sigmas", i, len(c.Mu), len(c.Sigma))
		}
		next += len(c.Mu)
		mu = append(mu, c.Mu...)
		sigma = append(sigma, c.Sigma...)
	}
	if len(mu) != len(wantMu) {
		t.Fatalf("streamed %d windows, want %d", len(mu), len(wantMu))
	}
	if end.Windows != len(wantMu) {
		t.Fatalf("end frame reports %d windows, want %d", end.Windows, len(wantMu))
	}
	if end.BatchSize < 1 {
		t.Fatalf("end frame reports batch size %d", end.BatchSize)
	}
	for w := range wantMu {
		if math.Float64bits(mu[w]) != math.Float64bits(wantMu[w]) ||
			math.Float64bits(sigma[w]) != math.Float64bits(wantSigma[w]) {
			t.Fatalf("window %d: streamed (%v,%v) != offline unbatched (%v,%v)",
				w, mu[w], sigma[w], wantMu[w], wantSigma[w])
		}
	}
}

func TestReplayStreamSSEConformance(t *testing.T) {
	const chunkWin = 4
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.StreamChunk = chunkWin
	})
	writeMLModel(t, dir, "m.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(51, 4*sim.Second)
	resp := postReplay(t, context.Background(), ts.URL, ReplayRequest{Model: "m.json", Input: in, Seed: 7}, true)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := parseSSE(t, body)
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want several chunks plus end", len(frames))
	}
	var types []string
	var chunks []replayWindows
	var end replayEnd
	for _, f := range frames {
		types = append(types, f.Event)
		switch f.Event {
		case "windows":
			var c replayWindows
			if err := json.Unmarshal(f.Data, &c); err != nil {
				t.Fatalf("chunk decode: %v", err)
			}
			chunks = append(chunks, c)
		case "end":
			if err := json.Unmarshal(f.Data, &end); err != nil {
				t.Fatalf("end decode: %v", err)
			}
		default:
			t.Fatalf("unexpected event %q", f.Event)
		}
	}
	wantMu, wantSigma := trainedML(t).PredictWindows(in, nil)
	checkReplayChunks(t, types, chunks, end, chunkWin, wantMu, wantSigma)
	if end.Model != "m.json" || end.Kind != KindIBoxML {
		t.Fatalf("end frame identifies %q/%q", end.Model, end.Kind)
	}
	if end.Trace != nil {
		t.Fatal("end frame carries a trace without include_trace")
	}
}

func TestReplayStreamNDJSONConformance(t *testing.T) {
	const chunkWin = 5
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.StreamChunk = chunkWin
	})
	writeMLModel(t, dir, "m.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(52, 3*sim.Second)
	resp := postReplay(t, context.Background(), ts.URL, ReplayRequest{
		Model: "m.json", Input: in, Seed: 9, IncludeTrace: true,
	}, false)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	var types []string
	var chunks []replayWindows
	var end replayEnd
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var typ struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &typ); err != nil {
			t.Fatalf("line decode: %v (%s)", err, line)
		}
		types = append(types, typ.Type)
		switch typ.Type {
		case "windows":
			var c replayWindows
			if err := json.Unmarshal(line, &c); err != nil {
				t.Fatal(err)
			}
			chunks = append(chunks, c)
		case "end":
			if err := json.Unmarshal(line, &end); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected type %q", typ.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	m := trainedML(t)
	wantMu, wantSigma := m.PredictWindows(in, nil)
	checkReplayChunks(t, types, chunks, end, chunkWin, wantMu, wantSigma)
	// include_trace: the end frame's trace must byte-match the offline
	// simulation (same contract as /v1/simulate).
	want := m.SimulateTrace(in, nil, 9)
	gb, _ := json.Marshal(end.Trace)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Fatal("end frame trace differs from offline simulation")
	}
}

// TestReplayStreamCancelFreesSlot: canceling a streaming replay
// mid-stream must release its admission slot promptly (the lane aborts
// at its next chunk boundary and nothing resumes after the disconnect —
// the package leak checker would catch a stuck goroutine).
func TestReplayStreamCancelFreesSlot(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.MaxConcurrent = 1 // a stuck stream would wedge the server
		c.MaxQueue = 4
		c.StreamChunk = 1 // abort opportunities every window
	})
	writeMLModel(t, dir, "m.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	resp := postReplay(t, ctx, ts.URL, ReplayRequest{
		Model: "m.json", Input: synthTrace(53, 30*sim.Second), Seed: 3,
	}, true)
	// Read until the first chunk arrives, then hang up mid-stream.
	sc := bufio.NewScanner(resp.Body)
	sawData := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			sawData = true
			break
		}
	}
	if !sawData {
		t.Fatal("stream ended before the first chunk")
	}
	cancel()
	resp.Body.Close()

	// The only admission slot must come back: an ordinary simulate
	// request goes through within the default deadline.
	code, _, body := postSimulate(t, ts.URL, SimulateRequest{
		Model: "m.json", Input: synthTrace(54, sim.Second), Seed: 4,
	})
	if code != 200 {
		t.Fatalf("request after canceled stream: status %d: %s", code, body)
	}
}

// TestReplayValidation covers the pre-stream error paths, which use the
// ordinary JSON error body + status code (no stream is started).
func TestReplayValidation(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeMLModel(t, dir, "m.json")
	writeNetModel(t, dir, "net.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  ReplayRequest
		code int
	}{
		{"unknown model", ReplayRequest{Model: "nope.json", Input: synthTrace(55, sim.Second)}, 404},
		{"iboxnet model", ReplayRequest{Model: "net.json", Input: synthTrace(55, sim.Second)}, 400},
		{"empty input", ReplayRequest{Model: "m.json"}, 400},
	}
	for _, tc := range cases {
		resp := postReplay(t, context.Background(), ts.URL, tc.req, true)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
		if !json.Valid(body) || !bytes.Contains(body, []byte(`"error"`)) {
			t.Fatalf("%s: not a JSON error body: %s", tc.name, body)
		}
	}

	// Deadline already expired: the stream must terminate without an end
	// event rather than hang (covers ctx.Done before completion).
	resp := postReplay(t, context.Background(), ts.URL, ReplayRequest{
		Model: "m.json", Input: synthTrace(56, 10*sim.Second), TimeoutMs: 1,
	}, true)
	done := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(resp.Body)
		done <- b
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("expired-deadline stream did not terminate")
	}
	resp.Body.Close()
}
