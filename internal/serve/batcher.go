package serve

import (
	"context"
	"sync"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/trace"
)

// batcher micro-batches iBoxML replay requests. Requests arriving within
// one dispatch window for the same model checkpoint are simulated in a
// single iboxml.SimulateTraceBatch call, which shares the per-window
// setup (feature build, standardization, input pre-projection) across
// the group and advances all members in allocation-free lockstep through
// the compiled inference kernel. Because the batched walk is
// bitwise-identical to the unbatched one, batching changes only latency
// and throughput — never a single response byte — so it can be toggled
// freely (Config.NoBatch).
type batcher struct {
	pool   *par.Pool
	window time.Duration
	max    int

	mu      sync.Mutex
	pending map[*iboxml.Model]*group

	sizeHist *obs.Histogram
	batches  *obs.Counter
}

// group is the accumulating batch for one model.
type group struct {
	jobs  []batchJob
	timer *time.Timer
}

type batchJob struct {
	input   *trace.Trace
	seed    int64
	sampled bool // a trace-sampled request is in this job
	res     chan batchResult
}

type batchResult struct {
	out  *trace.Trace
	size int // how many requests shared the batch
	err  error
}

func newBatcher(pool *par.Pool, window time.Duration, max int) *batcher {
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 16
	}
	b := &batcher{
		pool:    pool,
		window:  window,
		max:     max,
		pending: make(map[*iboxml.Model]*group),
	}
	if r := obs.Get(); r != nil {
		b.sizeHist = r.Histogram("serve.batch_size")
		b.batches = r.Counter("serve.batches")
	}
	return b
}

// submit enqueues one replay and waits for its result. The request joins
// the model's open dispatch window (opening one if none is open); the
// group flushes when the window elapses or it reaches max requests. If
// ctx expires first, submit returns early but the simulation still runs
// with its batch — results for abandoned requests are discarded.
func (b *batcher) submit(ctx context.Context, m *iboxml.Model, input *trace.Trace, seed int64) (*trace.Trace, int, error) {
	j := batchJob{input: input, seed: seed, sampled: metaFrom(ctx).sampled(), res: make(chan batchResult, 1)}
	b.mu.Lock()
	g := b.pending[m]
	if g == nil {
		g = &group{}
		b.pending[m] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(m, g) })
	}
	g.jobs = append(g.jobs, j)
	if len(g.jobs) >= b.max {
		g.timer.Stop()
		b.mu.Unlock()
		b.flush(m, g)
	} else {
		b.mu.Unlock()
	}
	select {
	case r := <-j.res:
		return r.out, r.size, r.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// flush closes the group's window and simulates it as one batch on the
// pool. Safe to race between the timer and the size trigger: whoever
// removes the group from pending runs it; the other call finds it gone.
func (b *batcher) flush(m *iboxml.Model, g *group) {
	b.mu.Lock()
	if b.pending[m] != g {
		b.mu.Unlock()
		return
	}
	delete(b.pending, m)
	jobs := g.jobs
	b.mu.Unlock()

	b.sizeHist.Observe(int64(len(jobs)))
	b.batches.Add(1)
	sampled := false
	for _, j := range jobs {
		sampled = sampled || j.sampled
	}
	go func() {
		// A batch serves several requests at once, so its span is a
		// top-level lane of its own rather than a child of any one
		// request; it is recorded when any member request is sampled.
		var sp *obs.Span
		if sampled {
			sp = obs.StartSpan("serve.batch")
			sp.SetItems(len(jobs))
		}
		defer sp.End()
		err := b.pool.Do(context.Background(), func() error {
			trs := make([]*trace.Trace, len(jobs))
			seeds := make([]int64, len(jobs))
			for i, j := range jobs {
				trs[i] = j.input
				seeds[i] = j.seed
			}
			outs := m.SimulateTraceBatch(trs, nil, seeds)
			for i, j := range jobs {
				j.res <- batchResult{out: outs[i], size: len(jobs)}
			}
			return nil
		})
		if err != nil {
			for _, j := range jobs {
				j.res <- batchResult{err: err}
			}
		}
	}()
}
