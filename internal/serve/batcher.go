package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/trace"
)

// batcher micro-batches iBoxML replay requests across checkpoints.
// Requests arriving within one dispatch window whose models share a
// shape — architecture (in, hidden, layers), window cadence, and kernel
// mode (see iboxml.Shape) — are simulated in a single
// iboxml.SimulateTraceLanes call, even when they hit distinct model
// artifacts: each lane steps through its own compiled weights
// (nn.StepBatchLanesInto), so a multi-tenant mix of many fitted
// same-architecture models coalesces instead of fragmenting into
// per-checkpoint singleton groups. The lockstep walk shares the
// per-window setup (feature build, standardization, input
// pre-projection) and gives every member incremental progress — the
// property streaming replay (stream.go) relies on for fair
// time-to-first-chunk. Because the lane-batched walk is
// bitwise-identical to the unbatched one per member, batching changes
// only latency and throughput — never a single response byte — so it can
// be toggled freely (Config.NoBatch) or restricted to same-checkpoint
// groups (Config.BatchPerCheckpoint, the A/B comparison mode).
type batcher struct {
	pool          *par.Pool
	window        time.Duration
	max           int
	chunk         int  // streaming emission granularity, in windows
	perCheckpoint bool // group by artifact ID instead of by shape

	mu      sync.Mutex
	pending map[groupKey]*group

	sizeHist     *obs.Histogram
	batches      *obs.Counter
	shapeOcc     *obs.HistogramVec // serve.batch_shape{shape}: group occupancy
	distinctHist *obs.Histogram    // serve.batch_models: distinct checkpoints per batch
	crossBatches *obs.Counter      // serve.batches_cross: batches spanning >1 checkpoint
}

// groupKey identifies one accumulating dispatch group. In the default
// cross-checkpoint mode requests group by model shape alone; in
// per-checkpoint mode the artifact ID joins the key. Note the ID, never
// the *iboxml.Model pointer: an LRU-evicted-then-reloaded checkpoint gets
// a fresh pointer but must land in the same open group (regression:
// TestBatchGroupSurvivesReload).
type groupKey struct {
	shape iboxml.Shape
	id    string
}

// group is the accumulating batch for one key.
type group struct {
	jobs  []batchJob
	timer *time.Timer
}

type batchJob struct {
	model   *iboxml.Model
	id      string // artifact ID (lane ordering + per-checkpoint keying)
	input   *trace.Trace
	seed    int64
	sampled bool        // a trace-sampled request is in this job
	sink    *streamSink // non-nil for streaming replay requests
	res     chan batchResult
}

type batchResult struct {
	out  *trace.Trace
	size int // how many requests shared the batch
	err  error
}

// errStreamClosed reports a lane abandoned because its stream consumer
// went away (client disconnect or cancel) mid-unroll.
var errStreamClosed = errors.New("serve: stream consumer gone")

func newBatcher(pool *par.Pool, window time.Duration, max, chunk int, perCheckpoint bool) *batcher {
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 16
	}
	if chunk <= 0 {
		chunk = 64
	}
	b := &batcher{
		pool:          pool,
		window:        window,
		max:           max,
		chunk:         chunk,
		perCheckpoint: perCheckpoint,
		pending:       make(map[groupKey]*group),
	}
	if r := obs.Get(); r != nil {
		b.sizeHist = r.Histogram("serve.batch_size")
		b.batches = r.Counter("serve.batches")
		b.shapeOcc = r.HistogramVec("serve.batch_shape", "shape")
		b.distinctHist = r.Histogram("serve.batch_models")
		b.crossBatches = r.Counter("serve.batches_cross")
	}
	return b
}

// enqueue adds one replay to its compatibility group and returns the
// job's result channel. The request joins the open dispatch window for
// its key (opening one if none is open); the group flushes when the
// window elapses or it reaches max requests. sink, when non-nil, streams
// the lane's window predictions incrementally as the batch runs.
func (b *batcher) enqueue(ctx context.Context, id string, m *iboxml.Model, input *trace.Trace, seed int64, sink *streamSink) chan batchResult {
	j := batchJob{
		model: m, id: id, input: input, seed: seed,
		sampled: metaFrom(ctx).sampled(), sink: sink,
		res: make(chan batchResult, 1),
	}
	key := groupKey{shape: m.Shape()}
	if b.perCheckpoint {
		key.id = id
	}
	b.mu.Lock()
	g := b.pending[key]
	if g == nil {
		g = &group{}
		b.pending[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(key, g) })
	}
	g.jobs = append(g.jobs, j)
	if len(g.jobs) >= b.max {
		g.timer.Stop()
		b.mu.Unlock()
		b.flush(key, g)
	} else {
		b.mu.Unlock()
	}
	return j.res
}

// submit enqueues one replay and waits for its result. If ctx expires
// first, submit returns early but the simulation still runs with its
// batch — results for abandoned requests are discarded.
func (b *batcher) submit(ctx context.Context, id string, m *iboxml.Model, input *trace.Trace, seed int64) (*trace.Trace, int, error) {
	res := b.enqueue(ctx, id, m, input, seed, nil)
	select {
	case r := <-res:
		return r.out, r.size, r.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// single dispatches one replay immediately as a lane batch of one — no
// dispatch window, no grouping. Streaming replay uses it when batching
// is disabled (Config.NoBatch).
func (b *batcher) single(ctx context.Context, id string, m *iboxml.Model, input *trace.Trace, seed int64, sink *streamSink) chan batchResult {
	j := batchJob{
		model: m, id: id, input: input, seed: seed,
		sampled: metaFrom(ctx).sampled(), sink: sink,
		res: make(chan batchResult, 1),
	}
	b.run([]batchJob{j})
	return j.res
}

// flush closes the group's window and simulates it as one batch on the
// pool. Safe to race between the timer and the size trigger: whoever
// removes the group from pending runs it; the other call finds it gone.
func (b *batcher) flush(key groupKey, g *group) {
	b.mu.Lock()
	if b.pending[key] != g {
		b.mu.Unlock()
		return
	}
	delete(b.pending, key)
	jobs := g.jobs
	b.mu.Unlock()

	// Same-checkpoint lanes step adjacently so each checkpoint's packed
	// weight stream stays cache-resident across its lanes.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].id < jobs[j].id })

	b.sizeHist.Observe(int64(len(jobs)))
	b.batches.Add(1)
	if b.shapeOcc != nil {
		b.shapeOcc.With(key.shape.String()).Observe(int64(len(jobs)))
	}
	distinct := 0
	for i, j := range jobs {
		if i == 0 || j.id != jobs[i-1].id {
			distinct++
		}
	}
	b.distinctHist.Observe(int64(distinct))
	if distinct > 1 {
		b.crossBatches.Add(1)
	}
	b.run(jobs)
}

// run simulates one closed group on the pool as a single lane batch and
// delivers per-job results. Streaming jobs get chunks pushed through
// their sinks as the lockstep unroll crosses chunk boundaries; a job
// whose stream consumer has gone away abandons only its own lane.
func (b *batcher) run(jobs []batchJob) {
	sampled := false
	for _, j := range jobs {
		sampled = sampled || j.sampled
	}
	go func() {
		// A batch serves several requests at once, so its span is a
		// top-level lane of its own rather than a child of any one
		// request; it is recorded when any member request is sampled.
		var sp *obs.Span
		if sampled {
			sp = obs.StartSpan("serve.batch")
			sp.SetItems(len(jobs))
		}
		defer sp.End()
		err := b.pool.Do(context.Background(), func() error {
			lanes := make([]iboxml.ReplayLane, len(jobs))
			for i, j := range jobs {
				lanes[i] = iboxml.ReplayLane{Model: j.model, Input: j.input, Seed: j.seed}
				if sk := j.sink; sk != nil {
					lanes[i].Emit = sk.push
				}
			}
			outs := iboxml.SimulateTraceLanes(lanes, b.chunk)
			for i, j := range jobs {
				if outs[i] == nil && j.sink != nil {
					j.res <- batchResult{size: len(jobs), err: errStreamClosed}
					continue
				}
				j.res <- batchResult{out: outs[i], size: len(jobs)}
			}
			return nil
		})
		if err != nil {
			for _, j := range jobs {
				j.res <- batchResult{err: err}
			}
		}
	}()
}
