package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"

	"ibox/internal/cc"
	"ibox/internal/obs"
	"ibox/internal/session"
	"ibox/internal/sim"
)

// The session control plane: live emulation sessions as HTTP resources.
//
//	POST   /v1/sessions              create from a registry checkpoint
//	GET    /v1/sessions              list live sessions
//	GET    /v1/sessions/{id}         one session's control-plane snapshot
//	DELETE /v1/sessions/{id}         close
//	GET    /v1/sessions/{id}/events  telemetry stream (SSE)
//	POST   /v1/sessions/{id}/path    mutate the live path (tc-style)
//	POST   /v1/sessions/{id}/pause   hold virtual time
//	POST   /v1/sessions/{id}/resume  continue
//	GET    /v1/protocols             cc senders + loaded model kinds
//
// Sessions are long-lived, so they do not pass through the request-path
// admission semaphore (which bounds one-shot simulate work); their
// admission control is the session.Manager's global and per-tenant caps
// plus the idle-TTL reaper. The SSE route additionally bypasses the
// instrument middleware: a stream lasting minutes would be recorded as
// one enormous "request latency" and poison the latency SLO.

// sessionEventsPath returns the SSE stream path for a session id.
func sessionEventsPath(id string) string { return "/v1/sessions/" + id + "/events" }

// tenantHeader attributes a session to a tenant for per-tenant caps.
const tenantHeader = "X-Ibox-Tenant"

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	// Model is the registry checkpoint the session emulates.
	Model string `json:"model"`
	// Protocol is the congestion-control sender, any cc.Protocols() name.
	Protocol string `json:"protocol"`
	// Seed drives all session randomness; same (model, protocol, seed)
	// ⇒ byte-identical telemetry.
	Seed int64 `json:"seed"`
	// Variant selects the iBoxNet emulation variant (parseVariant names).
	Variant string `json:"variant,omitempty"`
	// Speed is the virtual/wall ratio (1 = real time, 10 = 10× fast-
	// forward, negative = unpaced); default 1.
	Speed float64 `json:"speed,omitempty"`
	// DurationS bounds the session's virtual lifetime; default 3600.
	DurationS float64 `json:"duration_s,omitempty"`
	// PacketEvery emits a packet event per Nth ack (default 1; negative
	// disables per-packet telemetry, leaving summaries).
	PacketEvery int `json:"packet_every,omitempty"`
	// SummaryEveryMs is the rollup cadence in virtual ms; default 200.
	SummaryEveryMs float64 `json:"summary_every_ms,omitempty"`
}

// SessionResponse is the body of session CRUD responses.
type SessionResponse struct {
	Session session.Info `json:"session"`
	// EventsURL is where to attach for the telemetry stream.
	EventsURL string `json:"events_url,omitempty"`
}

// sessionsInit builds the session manager and mounts the control plane
// on the server mux. Called from NewServer.
func (s *Server) sessionsInit() {
	s.sessions = session.NewManager(session.Limits{
		MaxSessions:  s.cfg.MaxSessions,
		MaxPerTenant: s.cfg.MaxSessionsPerTenant,
		TTL:          s.cfg.SessionTTL,
	}, s.pool)
	s.sessDrifts = make(map[string]*obs.DriftSketch)
	if r := obs.Get(); r != nil {
		s.sessDriftNLL = r.GaugeVec("serve.session.drift.nll", "model")
		s.sessDriftPITDev = r.GaugeVec("serve.session.drift.pit_deviation", "model")
		s.sessDriftSamples = r.GaugeVec("serve.session.drift.samples", "model")
	}
	s.mux.HandleFunc("POST /v1/sessions", s.instrument("sessions_create", s.handleSessionCreate))
	s.mux.HandleFunc("GET /v1/sessions", s.instrument("sessions_list", s.handleSessionList))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.instrument("sessions_get", s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.instrument("sessions_close", s.handleSessionClose))
	s.mux.HandleFunc("POST /v1/sessions/{id}/path", s.instrument("sessions_path", s.handleSessionPath))
	s.mux.HandleFunc("POST /v1/sessions/{id}/pause", s.instrument("sessions_pause", s.handleSessionPause))
	s.mux.HandleFunc("POST /v1/sessions/{id}/resume", s.instrument("sessions_resume", s.handleSessionResume))
	// Not instrumented: see the package comment above.
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("GET /v1/protocols", s.instrument("protocols", s.handleProtocols))
}

// sessionError maps session-layer errors to HTTP statuses.
func (s *Server) sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound):
		s.writeError(w, http.StatusNotFound, err)
	case errors.Is(err, session.ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, session.ErrSessionLimit), errors.Is(err, session.ErrTenantLimit):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, session.ErrClosed):
		s.writeError(w, http.StatusConflict, err)
	default:
		s.writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	model, err := s.registry.Get(req.Model)
	if err != nil {
		code := http.StatusUnprocessableEntity
		switch {
		case os.IsNotExist(err):
			code = http.StatusNotFound
		case errors.Is(err, ErrInvalidModelID):
			code = http.StatusBadRequest
		}
		s.writeError(w, code, err)
		return
	}
	variant, err := parseVariant(req.Variant)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	cfg := session.Config{
		Tenant:      r.Header.Get(tenantHeader),
		Checkpoint:  model.ID,
		Kind:        string(model.Kind),
		Net:         model.Net,
		Variant:     variant,
		ML:          model.ML,
		Protocol:    req.Protocol,
		Seed:        req.Seed,
		Speed:       req.Speed,
		PacketEvery: req.PacketEvery,
	}
	if req.DurationS > 0 {
		cfg.Duration = sim.FromSeconds(req.DurationS)
	}
	if req.SummaryEveryMs > 0 {
		cfg.Summary = sim.Time(req.SummaryEveryMs * float64(sim.Millisecond))
	}
	// The session re-resolves the tap at every path rebuild, so drift
	// stays attributed to whichever model a checkpoint swap installs.
	cfg.Score = s.sessionScore
	sess, err := s.sessions.Create(cfg)
	if err != nil {
		s.sessionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(SessionResponse{
		Session:   sess.Info(),
		EventsURL: sessionEventsPath(sess.ID()),
	})
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Sessions []session.Info `json:"sessions"`
	}{Sessions: s.sessions.List()})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SessionResponse{
		Session:   sess.Info(),
		EventsURL: sessionEventsPath(sess.ID()),
	})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	if err := sess.Close("client"); err != nil {
		s.sessionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SessionResponse{Session: sess.Info()})
}

func (s *Server) handleSessionPause(w http.ResponseWriter, r *http.Request) {
	s.sessionLifecycle(w, r, (*session.Session).Pause)
}

func (s *Server) handleSessionResume(w http.ResponseWriter, r *http.Request) {
	s.sessionLifecycle(w, r, (*session.Session).Resume)
}

func (s *Server) sessionLifecycle(w http.ResponseWriter, r *http.Request, op func(*session.Session) error) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	if err := op(sess); err != nil {
		s.sessionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SessionResponse{Session: sess.Info()})
}

// PathRequest is the body of POST /v1/sessions/{id}/path: the mutation,
// plus the emulation variant a checkpoint swap should instantiate
// (default: the session keeps its current variant semantics — the
// swapped model's default, Full).
type PathRequest struct {
	session.Mutation
	Variant string `json:"variant,omitempty"`
}

func (s *Server) handleSessionPath(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req PathRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}
	mu := req.Mutation
	if mu.Checkpoint != "" {
		// Resolve the swap target through the registry so a bogus id is a
		// clean 404 and the session only ever sees loadable artifacts.
		model, err := s.registry.Get(mu.Checkpoint)
		if err != nil {
			code := http.StatusUnprocessableEntity
			switch {
			case os.IsNotExist(err):
				code = http.StatusNotFound
			case errors.Is(err, ErrInvalidModelID):
				code = http.StatusBadRequest
			}
			s.writeError(w, code, err)
			return
		}
		variant, err := parseVariant(req.Variant)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadRequest, err))
			return
		}
		mu.Swap = &session.ModelSwap{
			Checkpoint: model.ID,
			Kind:       string(model.Kind),
			Net:        model.Net,
			Variant:    variant,
			ML:         model.ML,
		}
	}
	if err := sess.Mutate(mu); err != nil {
		s.sessionError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SessionResponse{Session: sess.Info()})
}

// handleSessionEvents streams a session's telemetry as Server-Sent
// Events: one `id:`/`data:` frame per event, the id being the session-
// wide event seq (so `Last-Event-ID` — or `?after=N` — resumes exactly
// where a dropped connection left off, within the replay ring). A gap
// (slow consumer lapped by the ring) is reported as a comment frame.
// The stream ends with `event: end` once the session is terminal and
// fully drained.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		s.sessionError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: streaming unsupported"))
		return
	}
	after := int64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	if v := r.URL.Query().Get("after"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			after = n
		}
	}
	sub := sess.Subscribe(after)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		batch, gap, err := sub.Next(r.Context())
		if err != nil {
			if errors.Is(err, io.EOF) {
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				fl.Flush()
			}
			return // client gone or stream complete
		}
		if gap {
			fmt.Fprint(w, ": gap — events lost to ring overwrite\n\n")
		}
		// Ring entries are contiguous, so the batch's ids count back from
		// the cursor.
		first := sub.Cursor() - int64(len(batch)) + 1
		for i, b := range batch {
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", first+int64(i), b); err != nil {
				return
			}
		}
		fl.Flush()
	}
}

// ProtocolsResponse is the body of GET /v1/protocols: everything a
// client needs to fill a valid session- or simulate-request — the
// congestion-control senders this build offers and the model kinds
// currently warm in the registry.
type ProtocolsResponse struct {
	Protocols []string `json:"protocols"`
	// Kinds counts warm registry models by kind.
	Kinds        map[string]int `json:"kinds"`
	ModelsLoaded int            `json:"models_loaded"`
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	resp := ProtocolsResponse{
		Protocols:    cc.Protocols(),
		Kinds:        map[string]int{},
		ModelsLoaded: s.registry.Loaded(),
	}
	if infos, err := s.registry.List(); err == nil {
		for _, in := range infos {
			if in.Loaded {
				resp.Kinds[string(in.Kind)]++
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// Live-session drift. iBoxML sessions score every predicted packet
// delay against the model's own group distribution (PIT + NLL into a
// per-model sketch). Unlike the replay-request drift detector
// (drift.go), the samples here are model-generated, not observed — the
// sketch measures the sampler's self-consistency, so it is a display
// signal on /statusz and the serve.session.drift.* gauges, never an
// input to quarantine or the drift SLO.

// sessionScore is the session.Config.Score factory: it resolves the
// given model id to its live drift sketch and returns the per-packet
// observer. Sessions call it once per path (re)build — so a checkpoint
// swap rebinds scoring to the swapped-in model — and the returned
// observer runs in simulation context; Observe is lock-free.
func (s *Server) sessionScore(modelID string) func(pit, nll float64) {
	s.sessDriftMu.Lock()
	d, ok := s.sessDrifts[modelID]
	if !ok {
		d = &obs.DriftSketch{}
		s.sessDrifts[modelID] = d
	}
	s.sessDriftMu.Unlock()
	return func(pit, nll float64) { d.Observe(pit, nll) }
}

// SessionDriftStatus is one model's live-session drift scorecard.
type SessionDriftStatus struct {
	Model        string  `json:"model"`
	Samples      int64   `json:"samples"`
	NLL          float64 `json:"nll"`
	PITDeviation float64 `json:"pit_deviation"`
}

// SessionDriftStatuses snapshots the live-session drift sketches,
// sorted by model id.
func (s *Server) SessionDriftStatuses() []SessionDriftStatus {
	s.sessDriftMu.Lock()
	ids := make([]string, 0, len(s.sessDrifts))
	sketches := make(map[string]*obs.DriftSketch, len(s.sessDrifts))
	for id, d := range s.sessDrifts {
		ids = append(ids, id)
		sketches[id] = d
	}
	s.sessDriftMu.Unlock()
	sort.Strings(ids)
	out := make([]SessionDriftStatus, 0, len(ids))
	for _, id := range ids {
		snap := sketches[id].Snapshot()
		out = append(out, SessionDriftStatus{
			Model:        id,
			Samples:      snap.Windows,
			NLL:          snap.NLL,
			PITDeviation: snap.PITDeviation,
		})
	}
	return out
}

// publishSessionDrift republishes the live-session sketches as gauges;
// called by the rolling collector each tick.
func (s *Server) publishSessionDrift() {
	if s.sessDriftNLL == nil {
		return
	}
	for _, st := range s.SessionDriftStatuses() {
		s.sessDriftNLL.With(st.Model).Set(st.NLL)
		s.sessDriftPITDev.With(st.Model).Set(st.PITDeviation)
		s.sessDriftSamples.With(st.Model).Set(float64(st.Samples))
	}
}
