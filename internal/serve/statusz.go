package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"ibox/internal/obs"
)

// Rolling-window serving stats and the /statusz page.
//
// The obs registry's counters and histograms are cumulative; a human
// (or a router tier choosing the least-loaded worker) wants "requests
// per second over the last 10 s" and "p99 right now". A background
// collector ticks an obs.Roller once per second, snapshotting the flat
// request-latency histogram plus the shed and error counters, and
// republishes the windowed views as gauges under the serve.win.* prefix
// so they flow through /metrics and expvar like everything else. The
// serve.win.* family is machine-dependent by construction (it measures
// the recent past of this process), so internal/regress skips it when
// comparing run reports.
//
// The collector goroutine stops during Shutdown before the listener
// closes; tests run under leakcheck, so a leaked ticker fails the
// package.

// rollWindows are the windows /statusz renders and the gauges export.
var rollWindows = []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}

// winGauges are the republished rolling views (nil when obs disabled).
type winGauges struct {
	reqRate [3]*obs.Gauge // per rollWindows entry
	p50     *obs.Gauge    // 10 s window
	p99     *obs.Gauge    // 10 s window
	shed    *obs.Gauge    // 10 s window rate
	errs    *obs.Gauge    // 10 s window rate
}

// startRolling wires the roller and starts the 1 s collector goroutine.
// No-op when observability is disabled.
func (s *Server) startRolling() {
	r := obs.Get()
	if r == nil {
		return
	}
	s.roller = obs.NewRoller(time.Second, 60)
	s.roller.TrackHistogram("request_ns", s.httpLatency)
	s.roller.TrackCounter("shed", s.shed)
	s.roller.TrackCounter("errors", s.errors)
	for i, w := range rollWindows {
		s.win.reqRate[i] = r.Gauge("serve.win.req_rate_" + obs.WindowLabel(w))
	}
	s.win.p50 = r.Gauge("serve.win.p50_ns_10s")
	s.win.p99 = r.Gauge("serve.win.p99_ns_10s")
	s.win.shed = r.Gauge("serve.win.shed_rate_10s")
	s.win.errs = r.Gauge("serve.win.err_rate_10s")

	// SLO burn-rate engine over the same roller: p99 latency, error
	// ratio, and the worst model-drift verdict as a level objective.
	// Evaluated on every tick; /healthz degrades from its worst state.
	s.slo = obs.NewSLOEngine(s.roller, 10*time.Second, 60*time.Second)
	s.slo.Add(obs.SLOObjective{
		Name: "latency_p99", Hist: "request_ns",
		LatencyThreshold: s.cfg.SLOLatency, Target: s.cfg.SLOLatencyTarget,
	})
	s.slo.Add(obs.SLOObjective{
		Name: "error_ratio", BadCounter: "errors", TotalSource: "request_ns",
		Target: s.cfg.SLOErrorTarget,
	})
	s.slo.Add(obs.SLOObjective{
		Name:   "drift",
		Gauge:  func() float64 { return float64(s.worstDrift()) },
		WarnAt: float64(obs.DriftWarn), FailAt: float64(obs.DriftFailing),
	})

	s.rollStop = make(chan struct{})
	s.rollDone = make(chan struct{})
	go func() {
		defer close(s.rollDone)
		t := time.NewTicker(s.roller.Interval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.rollTick()
			case <-s.rollStop:
				return
			}
		}
	}()
}

// rollTick advances the roller and republishes the windowed gauges.
// Exercised directly by tests (the 1 s ticker is too slow for them).
func (s *Server) rollTick() {
	s.roller.Tick()
	for i, w := range rollWindows {
		s.win.reqRate[i].Set(s.roller.Rate("request_ns", w))
	}
	s.win.p50.Set(s.roller.Quantile("request_ns", 10*time.Second, 0.50))
	s.win.p99.Set(s.roller.Quantile("request_ns", 10*time.Second, 0.99))
	s.win.shed.Set(s.roller.Rate("shed", 10*time.Second))
	s.win.errs.Set(s.roller.Rate("errors", 10*time.Second))
	s.publishDrift()
	s.sessions.PublishStats()
	s.publishSessionDrift()
	s.slo.Eval()
}

// stopRolling stops the collector; safe to call multiple times (tests
// call Shutdown both explicitly and from Cleanup).
func (s *Server) stopRolling() {
	if s.rollStop == nil {
		return
	}
	s.rollOnce.Do(func() {
		close(s.rollStop)
		<-s.rollDone
	})
}

// LoadStats is the compact load signal a router tier reads per worker
// (also served as /statusz?format=json).
type LoadStats struct {
	Inflight     int     `json:"inflight"`
	QueueDepth   int     `json:"queue_depth"`
	ModelsLoaded int     `json:"models_loaded"`
	Draining     bool    `json:"draining"`
	UptimeS      float64 `json:"uptime_s"`
	Rate1s       float64 `json:"rate_1s"`
	Rate10s      float64 `json:"rate_10s"`
	P50Ms10s     float64 `json:"p50_ms_10s"`
	P99Ms10s     float64 `json:"p99_ms_10s"`
	ShedRate10s  float64 `json:"shed_rate_10s"`
	ErrRate10s   float64 `json:"err_rate_10s"`
	// Health is the judged health ("ok"/"warn"/"failing") and
	// ModelsDrifted the count of models at warn or worse — a router
	// steers traffic away from drifted backends on these.
	Health        string `json:"health"`
	ModelsDrifted int    `json:"models_drifted"`
	// SessionsActive counts live emulation sessions — long-lived load
	// the one-shot request stats don't see.
	SessionsActive int `json:"sessions_active"`
}

// LoadStats snapshots the server's current load signal.
func (s *Server) LoadStats() LoadStats {
	ls := LoadStats{
		Inflight:     len(s.sem),
		QueueDepth:   int(s.waiting.Load()),
		ModelsLoaded: s.registry.Loaded(),
		Draining:     s.draining.Load(),
		UptimeS:      time.Since(s.started).Seconds(),
	}
	if s.roller != nil {
		ls.Rate1s = s.roller.Rate("request_ns", time.Second)
		ls.Rate10s = s.roller.Rate("request_ns", 10*time.Second)
		ls.P50Ms10s = s.roller.Quantile("request_ns", 10*time.Second, 0.50) / 1e6
		ls.P99Ms10s = s.roller.Quantile("request_ns", 10*time.Second, 0.99) / 1e6
		ls.ShedRate10s = s.roller.Rate("shed", 10*time.Second)
		ls.ErrRate10s = s.roller.Rate("errors", 10*time.Second)
	}
	ls.Health = s.Health().String()
	ls.ModelsDrifted = s.driftedModels()
	ls.SessionsActive = s.sessions.Active()
	return ls
}

// handleStatusz renders the human load page (text) or the router-tier
// load signal (?format=json).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	ls := s.LoadStats()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ls)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "ibox-serve statusz\n")
	fmt.Fprintf(&b, "uptime: %.1fs  draining: %v  health: %s\n", ls.UptimeS, ls.Draining, ls.Health)
	fmt.Fprintf(&b, "inflight: %d/%d  queued: %d/%d  models loaded: %d  drifted: %d\n\n",
		ls.Inflight, s.cfg.MaxConcurrent, ls.QueueDepth, s.cfg.MaxQueue, ls.ModelsLoaded, ls.ModelsDrifted)

	if s.roller != nil {
		fmt.Fprintf(&b, "%-8s %12s %10s %12s %12s\n", "window", "req/s", "count", "p50", "p99")
		for _, st := range s.roller.Stats("request_ns") {
			fmt.Fprintf(&b, "%-8s %12.2f %10d %12s %12s\n",
				obs.WindowLabel(st.Window), st.Rate, st.Count,
				time.Duration(st.P50).Round(time.Microsecond),
				time.Duration(st.P99).Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "\nshed: %.2f/s (10s)  errors: %.2f/s (10s)\n", ls.ShedRate10s, ls.ErrRate10s)
	}

	if sts := s.slo.Statuses(); len(sts) > 0 {
		fmt.Fprintf(&b, "\nslo objectives:\n")
		fmt.Fprintf(&b, "  %-14s %-8s %10s %10s %10s\n", "objective", "state", "burn10s", "burn60s", "value")
		for _, st := range sts {
			fmt.Fprintf(&b, "  %-14s %-8s %10.2f %10.2f %10.4f\n",
				st.Name, st.State, st.BurnShort, st.BurnLong, st.Value)
		}
	}

	if ds := s.DriftStatuses(); len(ds) > 0 {
		fmt.Fprintf(&b, "\nmodel drift:\n")
		fmt.Fprintf(&b, "  %-24s %-8s %8s %10s %10s\n", "model", "verdict", "windows", "nll", "pit_dev")
		for _, d := range ds {
			fmt.Fprintf(&b, "  %-24s %-8s %8d %10.4f %10.4f\n",
				d.Model, d.Verdict, d.Windows, d.NLL, d.PITDeviation)
		}
	}

	lim := s.sessions.Limits()
	fmt.Fprintf(&b, "\nsessions: %d active (max %d, per-tenant %d, idle ttl %s)\n",
		ls.SessionsActive, lim.MaxSessions, lim.MaxPerTenant, lim.TTL)
	if infos := s.sessions.List(); len(infos) > 0 {
		fmt.Fprintf(&b, "  %-12s %-10s %-16s %-8s %-8s %8s %8s %5s %8s\n",
			"id", "tenant", "model", "proto", "state", "vt_s", "events", "subs", "idle_s")
		for _, in := range infos {
			fmt.Fprintf(&b, "  %-12s %-10s %-16s %-8s %-8s %8.1f %8d %5d %8.1f\n",
				in.ID, in.Tenant, in.Checkpoint, in.Protocol, in.State,
				in.VTSeconds, in.Events, in.Subscribers, in.IdleS)
		}
	}
	if sds := s.SessionDriftStatuses(); len(sds) > 0 {
		fmt.Fprintf(&b, "\nlive-session drift (display-only):\n")
		fmt.Fprintf(&b, "  %-24s %10s %10s %10s\n", "model", "samples", "nll", "pit_dev")
		for _, d := range sds {
			fmt.Fprintf(&b, "  %-24s %10d %10.4f %10.4f\n",
				d.Model, d.Samples, d.NLL, d.PITDeviation)
		}
	}

	if reg := obs.Get(); reg != nil {
		snap := reg.Snapshot()
		var names []string
		for name := range snap.Counters {
			if strings.HasPrefix(name, "serve.") {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(&b, "\ncumulative counters:\n")
			for _, name := range names {
				fmt.Fprintf(&b, "  %-60s %d\n", name, snap.Counters[name])
			}
		}
	}
	w.Write([]byte(b.String()))
}
