package serve

import (
	"context"
	"sort"
	"sync/atomic"

	"ibox/internal/obs"
	"ibox/internal/trace"
)

// Online drift detection. An iBoxML replay request carries the observed
// delays it asks the model to reproduce — exactly the data
// iboxml.Calibrate scores at training time. A sampled fraction of those
// requests is re-scored open loop against the live model into a
// per-model obs.DriftSketch (streaming PIT histogram + mean NLL, lock-
// free, bounded memory), and the sketch is judged against the
// calibration baseline embedded in the artifact. The verdict — cold /
// ok / warn / failing — flows four ways:
//
//   - serve.drift.* labeled gauges republished by the rolling collector;
//   - /statusz and LoadStats (the router-tier load signal), so a router
//     can steer traffic away from a drifted backend;
//   - the "drift" SLO objective, degrading /healthz ok → warn → failing;
//   - with Config.Quarantine, a 503 for the drifted model while healthy
//     models keep serving.
//
// Scoring runs on the shared pool inside the request's admission slot,
// so it can never oversubscribe the cores; the per-request hit-path cost
// when a request is *not* sampled is one atomic add and a trace scan.
// Verdicts update inline after each scored request (not only on collector
// ticks), so quarantine works even with observability disabled.

// modelDrift is one model's streaming drift state. Sketches live for
// the server's lifetime — LRU eviction of the model does not discard
// its history.
type modelDrift struct {
	sketch  obs.DriftSketch
	base    *obs.DriftBaseline // nil for artifacts without a baseline
	seen    atomic.Uint64      // eligible replay requests (drives sampling)
	verdict atomic.Int32       // obs.DriftVerdict
}

// DriftStatus is one model's drift scorecard as rendered by /statusz,
// /healthz?format=json and the -watch dashboard.
type DriftStatus struct {
	Model        string             `json:"model"`
	Verdict      string             `json:"verdict"`
	Windows      int64              `json:"windows"`
	NLL          float64            `json:"nll"`
	PITDeviation float64            `json:"pit_deviation"`
	Baseline     *obs.DriftBaseline `json:"baseline,omitempty"`
}

// driftFor returns (creating on first use) the drift state for an
// iBoxML model; nil for other kinds or when drift detection is off.
func (s *Server) driftFor(model *Model) *modelDrift {
	if s.driftEvery == 0 || model.Kind != KindIBoxML {
		return nil
	}
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	d, ok := s.drifts[model.ID]
	if !ok {
		d = &modelDrift{}
		if cal := model.ML.Baseline(); cal != nil {
			d.base = &obs.DriftBaseline{NLL: cal.NLL, PITDeviation: cal.PITDeviation}
		}
		s.drifts[model.ID] = d
	}
	return d
}

// traceObserved reports whether a replay input actually carries observed
// delays: at least one delivered packet, every delivered packet with a
// strictly positive delay. Send-only timelines (all zeros or all lost)
// give the scorer nothing to compare against.
func traceObserved(tr *trace.Trace) bool {
	delivered := 0
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if p.Lost {
			continue
		}
		if p.RecvTime <= p.SendTime {
			return false
		}
		delivered++
	}
	return delivered > 0
}

// maybeScoreDrift re-scores every driftEvery-th eligible replay of an
// iBoxML model into its drift sketch and refreshes the verdict. Called
// from simulateML after a successful simulation, still inside the
// request's admission slot.
func (s *Server) maybeScoreDrift(ctx context.Context, model *Model, in *trace.Trace) {
	d := s.driftFor(model)
	if d == nil || !traceObserved(in) {
		return
	}
	if d.seen.Add(1)%s.driftEvery != 0 {
		return
	}
	err := s.pool.Do(ctx, func() error {
		model.ML.ScoreWindows(in, nil, func(pit, _, nll float64) {
			d.sketch.Observe(pit, nll)
		})
		return nil
	})
	if err != nil {
		return // deadline expired before the scoring slot; skip quietly
	}
	s.driftScored.Add(1)
	s.refreshVerdict(model.ID, d)
}

// refreshVerdict re-judges a model's sketch and logs transitions.
func (s *Server) refreshVerdict(id string, d *modelDrift) {
	snap := d.sketch.Snapshot()
	v := s.driftPolicy.Judge(snap, d.base)
	old := obs.DriftVerdict(d.verdict.Swap(int32(v)))
	if v == old {
		return
	}
	if l := obs.Logger(); l != nil {
		log := l.Info
		if v == obs.DriftWarn {
			log = l.Warn
		} else if v == obs.DriftFailing {
			log = l.Error
		}
		log("drift verdict",
			"model", id,
			"verdict", v.String(),
			"prev", old.String(),
			"windows", snap.Windows,
			"nll", snap.NLL,
			"pit_deviation", snap.PITDeviation,
		)
	}
}

// driftVerdict returns a model's current verdict (DriftCold when the
// model has no drift state yet).
func (s *Server) driftVerdict(id string) obs.DriftVerdict {
	s.driftMu.Lock()
	d := s.drifts[id]
	s.driftMu.Unlock()
	if d == nil {
		return obs.DriftCold
	}
	return obs.DriftVerdict(d.verdict.Load())
}

// worstDrift returns the worst verdict across all tracked models — the
// level the "drift" SLO objective watches.
func (s *Server) worstDrift() obs.DriftVerdict {
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	worst := obs.DriftCold
	for _, d := range s.drifts {
		if v := obs.DriftVerdict(d.verdict.Load()); v > worst {
			worst = v
		}
	}
	return worst
}

// driftedModels counts models whose verdict is warn or worse (the
// LoadStats signal a router tier reads).
func (s *Server) driftedModels() int {
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	n := 0
	for _, d := range s.drifts {
		if obs.DriftVerdict(d.verdict.Load()) >= obs.DriftWarn {
			n++
		}
	}
	return n
}

// DriftStatuses snapshots every tracked model's drift scorecard, sorted
// by model ID. Empty when drift detection is disabled or no iBoxML
// replay has been served yet.
func (s *Server) DriftStatuses() []DriftStatus {
	s.driftMu.Lock()
	ids := make([]string, 0, len(s.drifts))
	states := make(map[string]*modelDrift, len(s.drifts))
	for id, d := range s.drifts {
		ids = append(ids, id)
		states[id] = d
	}
	s.driftMu.Unlock()
	sort.Strings(ids)
	out := make([]DriftStatus, 0, len(ids))
	for _, id := range ids {
		d := states[id]
		snap := d.sketch.Snapshot()
		out = append(out, DriftStatus{
			Model:        id,
			Verdict:      obs.DriftVerdict(d.verdict.Load()).String(),
			Windows:      snap.Windows,
			NLL:          snap.NLL,
			PITDeviation: snap.PITDeviation,
			Baseline:     d.base,
		})
	}
	return out
}

// publishDrift republishes every model's drift scorecard as
// serve.drift.* gauges; called by the rolling collector each tick.
// No-op when observability is disabled (nil vec handles).
func (s *Server) publishDrift() {
	if s.driftState == nil {
		return
	}
	for _, st := range s.DriftStatuses() {
		s.driftState.With(st.Model).Set(float64(driftVerdictValue(st.Verdict)))
		s.driftNLL.With(st.Model).Set(st.NLL)
		s.driftPITDev.With(st.Model).Set(st.PITDeviation)
		s.driftWindows.With(st.Model).Set(float64(st.Windows))
	}
}

// driftVerdictValue maps a verdict string back to its gauge level.
func driftVerdictValue(v string) obs.DriftVerdict {
	switch v {
	case "ok":
		return obs.DriftOK
	case "warn":
		return obs.DriftWarn
	case "failing":
		return obs.DriftFailing
	default:
		return obs.DriftCold
	}
}

// driftInit sizes the server's drift machinery from its config.
func (s *Server) driftInit() {
	s.drifts = make(map[string]*modelDrift)
	s.driftPolicy = s.cfg.DriftPolicy.WithDefaults()
	switch {
	case s.cfg.DriftEvery < 0:
		s.driftEvery = 0 // disabled
	case s.cfg.DriftEvery == 0:
		s.driftEvery = 8
	default:
		s.driftEvery = uint64(s.cfg.DriftEvery)
	}
}
