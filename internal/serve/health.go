package serve

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ibox/internal/obs"
)

// /healthz and /readyz. Both return real JSON bodies (uptime, Go
// version, VCS revision from the build info) instead of bare 200s.
// /healthz reports the server's judged health — the worst of the SLO
// engine's objectives and the worst model-drift verdict — and degrades
// ok → warn → failing; failing answers 503 so a naive probe that only
// reads the status code still reacts. ?format=json adds the per-
// objective SLO statuses and per-model drift scorecards. /readyz stays
// purely a load-balancer signal: 503 while draining, 200 otherwise.

// HealthStatus is the body of GET /healthz.
type HealthStatus struct {
	Status    obs.SLOState `json:"status"` // "ok" | "warn" | "failing"
	UptimeS   float64      `json:"uptime_s"`
	GoVersion string       `json:"go_version"`
	Revision  string       `json:"vcs_revision,omitempty"`
	Draining  bool         `json:"draining,omitempty"`

	// Detail (?format=json only).
	SLO   []obs.SLOStatus `json:"slo,omitempty"`
	Drift []DriftStatus   `json:"drift,omitempty"`
}

// ReadyStatus is the body of GET /readyz.
type ReadyStatus struct {
	Ready     bool    `json:"ready"`
	Draining  bool    `json:"draining"`
	UptimeS   float64 `json:"uptime_s"`
	GoVersion string  `json:"go_version"`
	Revision  string  `json:"vcs_revision,omitempty"`
}

// buildRevision reads the VCS revision stamped into the binary, once.
// Empty when built outside a repository (tests, go run of a dirty tree).
var buildRevision = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev != "" && modified {
		rev += "-dirty"
	}
	return rev
})

// Health judges the server's current health: the worst of the SLO
// engine's last evaluation and the worst model-drift verdict. The drift
// side works even with observability disabled (no engine), so a drifted
// model degrades /healthz regardless.
func (s *Server) Health() obs.SLOState {
	st := s.slo.Health()
	switch s.worstDrift() {
	case obs.DriftFailing:
		st = obs.WorseSLO(st, obs.SLOFailing)
	case obs.DriftWarn:
		st = obs.WorseSLO(st, obs.SLOWarn)
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hs := HealthStatus{
		Status:    s.Health(),
		UptimeS:   time.Since(s.started).Seconds(),
		GoVersion: runtime.Version(),
		Revision:  buildRevision(),
		Draining:  s.draining.Load(),
	}
	if r.URL.Query().Get("format") == "json" {
		hs.SLO = s.slo.Statuses()
		hs.Drift = s.DriftStatuses()
	}
	w.Header().Set("Content-Type", "application/json")
	if hs.Status == obs.SLOFailing {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(hs)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	draining := s.draining.Load()
	rs := ReadyStatus{
		Ready:     !draining,
		Draining:  draining,
		UptimeS:   time.Since(s.started).Seconds(),
		GoVersion: runtime.Version(),
		Revision:  buildRevision(),
	}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(rs)
}
