package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ibox/internal/iboxml"
	"ibox/internal/obs"
	"ibox/internal/sim"
)

// syncBuf is a mutex-guarded bytes.Buffer: the rolling collector's SLO
// evaluations can log concurrently with the test's reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeCalibratedML writes the shared trained checkpoint with an
// embedded held-out calibration baseline, without mutating the shared
// model (round-trips through serialization first). Returns the raw
// artifact bytes for further perturbation.
func writeCalibratedML(t testing.TB, dir, id string) []byte {
	t.Helper()
	m := trainedML(t)
	var raw bytes.Buffer
	if err := m.Write(&raw); err != nil {
		t.Fatal(err)
	}
	clone, err := iboxml.Read(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate on the exact trace the test replays: live traffic drawn
	// from the calibration distribution scores the healthy model at
	// precisely its baseline (zero excess), so the only thing that can
	// move the verdict is a perturbed checkpoint.
	held := []iboxml.TrainingSample{{Trace: synthTrace(9, 4*sim.Second)}}
	clone.SetBaseline(clone.Calibrate(held))
	if err := clone.Save(filepath.Join(dir, id)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// perturbSigma rewrites a serialized artifact with y_std scaled by
// factor — the checkpoint-corruption drill: the model's predictive
// distribution no longer matches the calibration baseline it carries.
// (factor 1/3 shrinks every predicted sigma 3× — an overconfident head
// whose standardized residuals explode.)
func perturbSigma(t testing.TB, artifact []byte, factor float64, path string) {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(artifact, &doc); err != nil {
		t.Fatal(err)
	}
	ystd, ok := doc["y_std"].(float64)
	if !ok {
		t.Fatalf("artifact has no numeric y_std")
	}
	doc["y_std"] = ystd * factor
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDriftLoopCloses is the end-to-end acceptance drill: a
// deliberately perturbed checkpoint (sigma scaled down 3× — an
// overconfident head) trips the drift verdict, flips /healthz to
// failing, emits an obs.slo alert event, and — with quarantine on —
// 503s the drifted model while the healthy model keeps serving.
func TestDriftLoopCloses(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	var buf syncBuf
	obs.SetLogger(slog.New(obs.NewLogHandler(&buf, slog.LevelInfo)))
	defer obs.SetLogger(nil)

	dir := t.TempDir()
	raw := writeCalibratedML(t, dir, "healthy.json")
	perturbSigma(t, raw, 1.0/3, filepath.Join(dir, "drifted.json"))

	s, err := NewServer(Config{
		ModelDir:    dir,
		DriftEvery:  1, // score every eligible replay
		Quarantine:  true,
		DriftPolicy: obs.DriftPolicy{MinWindows: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(9, 4*sim.Second)

	// Replay the same observed trace through both models. The healthy
	// model's sketch matches its baseline; the perturbed model's PIT
	// collapses and its NLL spikes, so its verdict goes failing after
	// the first scored request.
	code, _, body := postSimulate(t, ts.URL, SimulateRequest{Model: "healthy.json", Input: in, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("healthy replay: %d (%s)", code, body)
	}
	code, _, body = postSimulate(t, ts.URL, SimulateRequest{Model: "drifted.json", Input: in, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("first drifted replay should serve (cold verdict): %d (%s)", code, body)
	}

	if v := s.driftVerdict("drifted.json"); v != obs.DriftFailing {
		t.Fatalf("drifted verdict = %v, want failing; statuses: %+v", v, s.DriftStatuses())
	}
	if v := s.driftVerdict("healthy.json"); v != obs.DriftOK {
		t.Fatalf("healthy verdict = %v, want ok; statuses: %+v", v, s.DriftStatuses())
	}

	// Quarantine: the drifted model 503s, the healthy one keeps serving.
	code, _, body = postSimulate(t, ts.URL, SimulateRequest{Model: "drifted.json", Input: in, Seed: 1})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("quarantined replay: %d (%s), want 503", code, body)
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Fatalf("quarantine error body: %s", body)
	}
	code, _, body = postSimulate(t, ts.URL, SimulateRequest{Model: "healthy.json", Input: in, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("healthy replay after quarantine: %d (%s)", code, body)
	}

	// Tick the collector: SLO evaluation sees the drift level objective
	// failing, transitions, logs the alert and publishes the gauges.
	s.rollTick()
	s.rollTick()

	// /healthz degrades to failing (503) and carries the detail body.
	resp, err := http.Get(ts.URL + "/healthz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var hs HealthStatus
	if derr := json.NewDecoder(resp.Body).Decode(&hs); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status code = %d, want 503", resp.StatusCode)
	}
	if hs.Status != obs.SLOFailing {
		t.Fatalf("/healthz status = %v, want failing (%+v)", hs.Status, hs)
	}
	foundDrift := false
	for _, d := range hs.Drift {
		if d.Model == "drifted.json" {
			foundDrift = true
			if d.Verdict != "failing" || d.Windows == 0 || d.Baseline == nil {
				t.Fatalf("drift detail: %+v", d)
			}
		}
	}
	if !foundDrift {
		t.Fatalf("/healthz detail missing drifted.json: %+v", hs.Drift)
	}
	sloFailing := false
	for _, o := range hs.SLO {
		if o.Name == "drift" && o.State == obs.SLOFailing {
			sloFailing = true
		}
	}
	if !sloFailing {
		t.Fatalf("drift SLO objective not failing: %+v", hs.SLO)
	}

	// LoadStats — the router-tier load signal — carries the verdict.
	ls := s.LoadStats()
	if ls.Health != "failing" || ls.ModelsDrifted != 1 {
		t.Fatalf("LoadStats health=%q drifted=%d, want failing/1", ls.Health, ls.ModelsDrifted)
	}

	// The SLO engine emitted a structured alert event, and the drift
	// verdict transition was logged.
	logs := buf.String()
	if !strings.Contains(logs, `"msg":"slo alert"`) || !strings.Contains(logs, `"objective":"drift"`) {
		t.Fatalf("no slo alert event in logs:\n%s", logs)
	}
	if !strings.Contains(logs, `"msg":"drift verdict"`) {
		t.Fatalf("no drift verdict event in logs:\n%s", logs)
	}

	// The labeled serve.drift.* gauges flowed through the registry.
	snap := obs.Get().Snapshot()
	if v := snap.Gauges[`serve.drift.state{model="drifted.json"}`]; v != float64(obs.DriftFailing) {
		t.Fatalf("serve.drift.state gauge = %v, want %v", v, float64(obs.DriftFailing))
	}
	if c := snap.Counters[`serve.drift.quarantined{model="drifted.json"}`]; c == 0 {
		t.Fatalf("quarantine counter not incremented: %v", snap.Counters)
	}
}

// shutdownServer drains s with a bounded context (helper for tests that
// build servers without newTestServer).
func shutdownServer(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestDriftLegacyArtifactTolerated proves an artifact without an
// embedded baseline still serves and judges PIT-only (no NLL baseline).
func TestDriftLegacyArtifactTolerated(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) {
		c.DriftEvery = 1
		// PIT-only judging against the uniform ideal needs slack for a
		// tiny quick-trained model's honest miscalibration.
		c.DriftPolicy = obs.DriftPolicy{MinWindows: 20, PITSlack: 0.5}
	})
	writeMLModel(t, dir, "legacy.json") // no SetBaseline → no calibration field
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(9, 4*sim.Second)
	code, _, body := postSimulate(t, ts.URL, SimulateRequest{Model: "legacy.json", Input: in, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("legacy replay: %d (%s)", code, body)
	}
	sts := s.DriftStatuses()
	if len(sts) != 1 || sts[0].Baseline != nil {
		t.Fatalf("legacy drift status: %+v", sts)
	}
	if sts[0].Windows == 0 {
		t.Fatalf("legacy model was not scored: %+v", sts)
	}
	// A healthy legacy model must not be judged worse than its own PIT
	// shape allows — in particular it must never be quarantined for
	// lacking a baseline.
	if v := s.driftVerdict("legacy.json"); v == obs.DriftFailing {
		t.Fatalf("legacy verdict failing without a baseline: %+v", sts)
	}
}

// TestDriftDisabled proves DriftEvery < 0 turns the whole layer off:
// no sketches, no verdicts, health stays ok.
func TestDriftDisabled(t *testing.T) {
	s, dir := newTestServer(t, func(c *Config) { c.DriftEvery = -1 })
	writeMLModel(t, dir, "ml.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := synthTrace(9, 4*sim.Second)
	code, _, body := postSimulate(t, ts.URL, SimulateRequest{Model: "ml.json", Input: in, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("replay: %d (%s)", code, body)
	}
	if sts := s.DriftStatuses(); len(sts) != 0 {
		t.Fatalf("drift statuses with detection disabled: %+v", sts)
	}
	if h := s.Health(); h != obs.SLOOK {
		t.Fatalf("health = %v, want ok", h)
	}
}

// TestSanitizeRequestID covers the hostile-header table.
func TestSanitizeRequestID(t *testing.T) {
	long := strings.Repeat("a", maxRequestIDLen+1)
	for _, tc := range []struct {
		in, want string
	}{
		{"req-123", "req-123"},
		{"", ""},
		{long, ""},                                       // over-long → reject
		{"abc\r\ndef", "abcdef"},                         // CRLF injection stripped
		{"a\x1b[31mred\x1b[0m", "a[31mred[0m"},           // ANSI escapes stripped
		{"tab\tand space x", "tabandspacex"},             // whitespace stripped
		{"snowman☃id", "snowmanid"},                      // non-ASCII stripped
		{"\x00\x01\x02", ""},                             // nothing survives
		{"ok_~!@#$%^&*()[]{}<>", "ok_~!@#$%^&*()[]{}<>"}, // visible ASCII kept
	} {
		if got := sanitizeRequestID(tc.in); got != tc.want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestHealthRoutesJSON proves /healthz and /readyz return real JSON
// bodies with uptime and build info (the drain flip to 503 is covered
// by the graceful-drain test in serve_test.go).
func TestHealthRoutesJSON(t *testing.T) {
	s, _ := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs HealthStatus
	if derr := json.NewDecoder(resp.Body).Decode(&hs); derr != nil {
		t.Fatalf("healthz is not JSON: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hs.Status != obs.SLOOK {
		t.Fatalf("healthz: code %d status %v", resp.StatusCode, hs.Status)
	}
	if hs.GoVersion == "" || hs.UptimeS < 0 {
		t.Fatalf("healthz body incomplete: %+v", hs)
	}
	if len(hs.SLO) != 0 || len(hs.Drift) != 0 {
		t.Fatalf("healthz without format=json should omit detail: %+v", hs)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rs ReadyStatus
	if derr := json.NewDecoder(resp.Body).Decode(&rs); derr != nil {
		t.Fatalf("readyz is not JSON: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rs.Ready || rs.Draining {
		t.Fatalf("readyz: code %d body %+v", resp.StatusCode, rs)
	}
	if rs.GoVersion == "" {
		t.Fatalf("readyz body incomplete: %+v", rs)
	}
}
