package serve

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"

	"ibox/internal/obs"
)

// publishOnce guards the process-global expvar name: expvar.Publish
// panics on re-registration, and both ibox-serve and ibox-experiments
// (and tests) may build debug muxes in one process.
var publishOnce sync.Once

// DebugMux returns a mux serving expvar (including the live obs metric
// snapshot under "ibox.obs") and net/http/pprof in the standard
// /debug/... layout, on its own ServeMux so importing packages can't
// leak handlers into the debug server via http.DefaultServeMux. The
// snapshot reads obs.Get() at request time, so it follows whichever
// registry is active.
func DebugMux() *http.ServeMux {
	publishOnce.Do(func() {
		expvar.Publish("ibox.obs", expvar.Func(func() any {
			r := obs.Get()
			if r == nil {
				return nil
			}
			return r.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.PrometheusHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
