package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"ibox/internal/core"
	"ibox/internal/obs"
	"ibox/internal/trace"
)

// Streaming replay: POST /v1/replay runs the same closed-loop iBoxML
// replay as /v1/simulate, but emits the window-delay predictions
// incrementally while the simulation advances instead of buffering the
// whole reply. Responses are Server-Sent Events when the client sends
// Accept: text/event-stream (frames: `event: windows` chunks, then one
// terminal `event: end`), and newline-delimited JSON otherwise (objects
// with "type": "windows"/"end"). Chunks flush on the lane-batch chunk
// boundary (Config.StreamChunk windows), so a long trace's first
// predictions arrive after a small fraction of the total compute — and
// because cross-checkpoint lane batching advances every member in
// lockstep (batcher.go), concurrent streams make fair incremental
// progress instead of queueing behind each other's full replays.
//
// Cancellation: when the client disconnects or its deadline expires, the
// handler returns immediately — releasing its admission slot — and the
// sink is closed, which makes the lane's next Emit fail and abandons the
// rest of its unroll without touching the other members of the batch.

// ReplayRequest is the body of POST /v1/replay. Replay is iBoxML-only:
// input is the send-side trace whose delays the model predicts.
type ReplayRequest struct {
	Model string       `json:"model"`
	Seed  int64        `json:"seed"`
	Input *trace.Trace `json:"input,omitempty"`
	// IncludeTrace attaches the fully-sampled output trace to the end
	// event (the incremental chunks carry window predictions only).
	IncludeTrace bool `json:"include_trace,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// replayWindows is one incremental chunk: closed-loop mu/sigma delay
// predictions (milliseconds) for windows [t0, t0+len(mu)).
type replayWindows struct {
	Type  string    `json:"type"`
	T0    int       `json:"t0"`
	Mu    []float64 `json:"mu"`
	Sigma []float64 `json:"sigma"`
}

// replayEnd is the terminal frame of a successful stream.
type replayEnd struct {
	Type      string       `json:"type"`
	Model     string       `json:"model"`
	Kind      Kind         `json:"kind"`
	Windows   int          `json:"windows"`
	BatchSize int          `json:"batch_size"`
	Metrics   core.Metrics `json:"metrics"`
	Trace     *trace.Trace `json:"trace,omitempty"`
}

// replayError is the terminal frame of a stream that failed mid-flight
// (pre-stream failures use the ordinary JSON error body + status code).
type replayError struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// streamChunk is one emitted chunk queued between the batch lane and the
// HTTP handler.
type streamChunk struct {
	t0        int
	mu, sigma []float64
}

// streamSink carries chunks from a batch lane to its HTTP handler
// without ever blocking the lockstep batch: push copies the chunk into a
// queue under a mutex and nudges a 1-buffered notify channel. After
// close (consumer gone), push reports false and the lane abandons the
// rest of its unroll at the next chunk boundary.
type streamSink struct {
	mu     sync.Mutex
	chunks []streamChunk
	closed bool
	notify chan struct{}
}

func newStreamSink() *streamSink {
	return &streamSink{notify: make(chan struct{}, 1)}
}

// push is the lane's Emit callback; it copies mu/sigma (the lane owns
// the backing arrays and keeps writing past them).
func (sk *streamSink) push(t0 int, mu, sigma []float64) bool {
	sk.mu.Lock()
	if sk.closed {
		sk.mu.Unlock()
		return false
	}
	sk.chunks = append(sk.chunks, streamChunk{
		t0: t0,
		mu: append([]float64(nil), mu...), sigma: append([]float64(nil), sigma...),
	})
	sk.mu.Unlock()
	select {
	case sk.notify <- struct{}{}:
	default:
	}
	return true
}

// drain takes all queued chunks.
func (sk *streamSink) drain() []streamChunk {
	sk.mu.Lock()
	cs := sk.chunks
	sk.chunks = nil
	sk.mu.Unlock()
	return cs
}

// close marks the consumer gone: queued chunks drop, future pushes fail.
func (sk *streamSink) close() {
	sk.mu.Lock()
	sk.closed = true
	sk.chunks = nil
	sk.mu.Unlock()
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if s.simulateHist != nil {
		defer s.simulateHist.ObserveSince(time.Now())
	}
	s.requests.Add(1)

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req ReplayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	m := metaFrom(r.Context())
	lsp := m.childSpan("load")
	model, err := s.registry.Get(req.Model)
	lsp.End()
	if err != nil {
		code := http.StatusUnprocessableEntity
		switch {
		case os.IsNotExist(err):
			code = http.StatusNotFound
		case errors.Is(err, ErrInvalidModelID):
			code = http.StatusBadRequest
		}
		s.writeError(w, code, err)
		return
	}
	m.setModel(model.ID)
	if model.Kind != KindIBoxML {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: streaming replay requires an iboxml model, %s is %q", errBadRequest, model.ID, model.Kind))
		return
	}
	if req.Input == nil || len(req.Input.Packets) == 0 {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: iboxml model %s requires a non-empty \"input\" trace", errBadRequest, model.ID))
		return
	}
	if err := req.Input.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if s.cfg.Quarantine && s.driftVerdict(model.ID) == obs.DriftFailing {
		s.quarantined.With(model.ID).Add(1)
		m.setShed("quarantine")
		s.shedByReason.With("quarantine").Add(1)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: model %s quarantined: drift verdict failing", model.ID))
		return
	}

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	h := w.Header()
	if sse {
		h.Set("Content-Type", "text/event-stream")
	} else {
		h.Set("Content-Type", "application/x-ndjson")
	}
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	rc := http.NewResponseController(w)
	w.WriteHeader(http.StatusOK)
	if rc.Flush() != nil {
		return
	}

	sink := newStreamSink()
	// Closing the sink on every exit path makes the lane abandon its
	// remaining unroll at the next chunk boundary; nothing resumes after
	// the handler returns.
	defer sink.close()

	ssp := m.childSpan("simulate")
	defer ssp.End()
	var res chan batchResult
	if s.cfg.NoBatch {
		res = s.batch.single(ctx, model.ID, model.ML, req.Input, req.Seed, sink)
	} else {
		res = s.batch.enqueue(ctx, model.ID, model.ML, req.Input, req.Seed, sink)
	}

	windows := 0
	writeChunks := func() bool {
		for _, c := range sink.drain() {
			ok := writeStreamFrame(w, rc, sse, "windows", replayWindows{
				Type: "windows", T0: c.t0, Mu: c.mu, Sigma: c.sigma,
			})
			if !ok {
				return false
			}
			windows += len(c.mu)
		}
		return true
	}
	for {
		select {
		case <-sink.notify:
			if !writeChunks() {
				return
			}
		case r := <-res:
			if !writeChunks() {
				return
			}
			if r.err != nil {
				if !errors.Is(r.err, errStreamClosed) {
					writeStreamFrame(w, rc, sse, "error", replayError{Type: "error", Error: r.err.Error()})
				}
				return
			}
			m.setBatch(r.size)
			end := replayEnd{
				Type: "end", Model: model.ID, Kind: model.Kind,
				Windows: windows, BatchSize: r.size, Metrics: core.MetricsOf(r.out),
			}
			if req.IncludeTrace {
				end.Trace = r.out
			}
			writeStreamFrame(w, rc, sse, "end", end)
			// The replay input carries observed delays — score a sampled
			// fraction into the model's drift sketch, as /v1/simulate does.
			s.maybeScoreDrift(ctx, model, req.Input)
			return
		case <-ctx.Done():
			// Client gone or deadline hit: free the admission slot now;
			// the deferred sink.close() aborts the lane.
			return
		}
	}
}

// writeStreamFrame writes one frame in the negotiated framing and
// flushes it; false means the client is gone and the stream should stop.
func writeStreamFrame(w http.ResponseWriter, rc *http.ResponseController, sse bool, event string, v any) bool {
	data, err := json.Marshal(v)
	if err != nil {
		return false
	}
	if sse {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
	} else {
		if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
			return false
		}
	}
	return rc.Flush() == nil
}
