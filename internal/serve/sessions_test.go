package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"ibox/internal/obs"
	"ibox/internal/session"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	ID    int64
	Event string // "" for plain data frames
	Data  []byte
}

// sseReader incrementally parses an SSE stream.
type sseReader struct {
	sc *bufio.Scanner
}

func newSSEReader(r io.Reader) *sseReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return &sseReader{sc: sc}
}

// next returns the next frame, or an error at stream end.
func (r *sseReader) next() (sseFrame, error) {
	var f sseFrame
	seen := false
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, "id: "):
			f.ID, _ = strconv.ParseInt(line[4:], 10, 64)
			seen = true
		case strings.HasPrefix(line, "event: "):
			f.Event = line[7:]
			seen = true
		case strings.HasPrefix(line, "data: "):
			f.Data = []byte(line[6:])
			seen = true
		case strings.HasPrefix(line, ":"):
			// comment (gap report); ignore
		}
	}
	if err := r.sc.Err(); err != nil {
		return f, err
	}
	return f, io.EOF
}

// sessionEvent mirrors the session event stream's JSON for test
// assertions.
type sessionEvent struct {
	Seq    int64   `json:"seq"`
	Type   string  `json:"type"`
	VT     float64 `json:"vt"`
	Packet *struct {
		DelayMs float64 `json:"delay_ms"`
		Cwnd    int     `json:"cwnd"`
	} `json:"packet"`
	Summary *struct {
		Cwnd          int     `json:"cwnd"`
		ThroughputBps float64 `json:"throughput_bps"`
	} `json:"summary"`
	Mutation *struct {
		BandwidthScale float64 `json:"bandwidth_scale"`
		LossRate       float64 `json:"loss_rate"`
		Checkpoint     string  `json:"checkpoint"`
	} `json:"mutation"`
	State string `json:"state"`
}

// postJSON posts a JSON body and returns status + decoded body bytes.
func postJSON(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// createSession posts a session create and returns the decoded response.
func createSession(t testing.TB, baseURL, tenant string, req SessionRequest) (int, SessionResponse) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", baseURL+"/v1/sessions", &buf)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	defer resp.Body.Close()
	var sr SessionResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decode create response: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, sr
}

// getSession fetches one session's control-plane snapshot.
func getSession(t testing.TB, baseURL, id string) (int, session.Info) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SessionResponse
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decode session: %v (%s)", err, data)
		}
	}
	return resp.StatusCode, sr.Session
}

// TestSessionControlPlaneE2E is the acceptance path: create a session
// against a fitted checkpoint, stream ≥100 SSE events, mutate the path
// mid-session (bandwidth ×0.5 + loss burst) and watch cwnd respond,
// pause/resume, close — with the serve.session.* gauges, /statusz and
// the session list agreeing on counts throughout. Goroutine hygiene is
// enforced by the package's leakcheck TestMain.
func TestSessionControlPlaneE2E(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, created := createSession(t, ts.URL, "acme", SessionRequest{
		Model: "path-a.json", Protocol: "cubic", Seed: 9,
		Speed: 50, DurationS: 600,
	})
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	id := created.Session.ID
	if created.EventsURL != "/v1/sessions/"+id+"/events" {
		t.Fatalf("events_url = %q", created.EventsURL)
	}

	// Attach the SSE stream.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sreq, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+created.EventsURL, nil)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	rd := newSSEReader(sresp.Body)

	// Phase 1: ≥100 events including a healthy batch of summaries.
	var preCwnd []int
	events, lastID := 0, int64(0)
	for events < 100 || len(preCwnd) < 10 {
		f, err := rd.next()
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		if f.ID != 0 {
			if lastID != 0 && f.ID <= lastID {
				t.Fatalf("SSE ids not increasing: %d after %d", f.ID, lastID)
			}
			lastID = f.ID
		}
		events++
		var ev sessionEvent
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatalf("bad event %q: %v", f.Data, err)
		}
		if ev.Summary != nil {
			preCwnd = append(preCwnd, ev.Summary.Cwnd)
		}
	}

	// Mid-session mutation: halve the bottleneck, 20% loss for 10 s.
	loss := 0.2
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/path", PathRequest{
		Mutation: session.Mutation{BandwidthScale: 0.5, LossRate: &loss, LossBurstS: 10},
	})
	if code != http.StatusOK {
		t.Fatalf("mutate status %d: %s", code, body)
	}

	// Phase 2: past the mutate event, cwnd must respond to the harsher
	// path. The response lags the mutation by the old path's in-flight
	// tail and queue drain (~2 virtual s), so collect 20 summaries (4
	// virtual s) and judge the second half.
	var postCwnd []int
	sawMutate := false
	for len(postCwnd) < 20 {
		f, err := rd.next()
		if err != nil {
			t.Fatalf("stream ended early post-mutate: %v", err)
		}
		var ev sessionEvent
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatalf("bad event %q: %v", f.Data, err)
		}
		if ev.Type == session.EventMutate {
			if ev.Mutation == nil || ev.Mutation.BandwidthScale != 0.5 || ev.Mutation.LossRate != 0.2 {
				t.Fatalf("mutate event %s", f.Data)
			}
			sawMutate = true
			continue
		}
		if sawMutate && ev.Summary != nil {
			postCwnd = append(postCwnd, ev.Summary.Cwnd)
		}
	}
	mean := func(xs []int) float64 {
		sum := 0
		for _, x := range xs {
			sum += x
		}
		return float64(sum) / float64(len(xs))
	}
	pre, post := mean(preCwnd), mean(postCwnd[10:])
	if post >= pre {
		t.Fatalf("cwnd did not respond to mutation: pre %.1f, post %.1f", pre, post)
	}

	// Counts agree while the session lives: HTTP list, /statusz, gauges.
	if code, info := getSession(t, ts.URL, id); code != http.StatusOK || info.State != "running" {
		t.Fatalf("GET session: %d %+v", code, info)
	}
	if n := statuszSessions(t, ts.URL); n != 1 {
		t.Fatalf("statusz sessions_active = %d, want 1", n)
	}
	s.rollTick()
	snap := obs.Get().Snapshot()
	if got := snap.Gauges["serve.session.active"]; got != 1 {
		t.Fatalf("serve.session.active = %v, want 1", got)
	}
	if got := snap.Gauges[`serve.session.tenant{tenant="acme"}`]; got != 1 {
		t.Fatalf("tenant gauge = %v, want 1", got)
	}

	// Pause: state flips everywhere and virtual time freezes.
	if code, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/pause", nil); code != http.StatusOK {
		t.Fatalf("pause status %d: %s", code, body)
	}
	_, info := getSession(t, ts.URL, id)
	if info.State != "paused" {
		t.Fatalf("state after pause = %q", info.State)
	}
	vt1 := info.VTSeconds
	time.Sleep(100 * time.Millisecond)
	_, info = getSession(t, ts.URL, id)
	if info.VTSeconds != vt1 {
		t.Fatalf("virtual time advanced while paused: %v -> %v", vt1, info.VTSeconds)
	}
	s.rollTick()
	if got := obs.Get().Snapshot().Gauges[`serve.session.state{state="paused"}`]; got != 1 {
		t.Fatalf("paused state gauge = %v, want 1", got)
	}
	if code, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/resume", nil); code != http.StatusOK {
		t.Fatalf("resume status %d: %s", code, body)
	}

	// Close: the stream drains to its end marker, every count drops to
	// zero, and the session is gone from the control plane.
	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d", dresp.StatusCode)
	}
	sawEnd := false
	for {
		f, err := rd.next()
		if err != nil {
			break
		}
		if f.Event == "end" {
			sawEnd = true
			break
		}
	}
	if !sawEnd {
		t.Fatal("stream did not end with the end marker")
	}
	if code, _ := getSession(t, ts.URL, id); code != http.StatusNotFound {
		t.Fatalf("closed session GET status %d, want 404", code)
	}
	if n := statuszSessions(t, ts.URL); n != 0 {
		t.Fatalf("statusz sessions_active = %d after close", n)
	}
	s.rollTick()
	snap = obs.Get().Snapshot()
	if got := snap.Gauges["serve.session.active"]; got != 0 {
		t.Fatalf("serve.session.active = %v after close", got)
	}
	if got := snap.Counters["serve.session.created"]; got != 1 {
		t.Fatalf("serve.session.created = %d", got)
	}
	if got := snap.Counters["serve.session.closed"]; got != 1 {
		t.Fatalf("serve.session.closed = %d", got)
	}
	if got := snap.Counters["serve.session.mutations"]; got != 1 {
		t.Fatalf("serve.session.mutations = %d", got)
	}
	if got := snap.Counters["serve.session.events"]; got < 100 {
		t.Fatalf("serve.session.events = %d, want ≥100", got)
	}

	// The human statusz page carries the session block.
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(page, []byte("sessions: 0 active")) {
		t.Fatalf("statusz page missing session block:\n%s", page)
	}
}

// statuszSessions reads sessions_active from /statusz?format=json.
func statuszSessions(t testing.TB, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/statusz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ls LoadStats
	if err := json.NewDecoder(resp.Body).Decode(&ls); err != nil {
		t.Fatal(err)
	}
	return ls.SessionsActive
}

// TestSessionSSEResume drops the stream and reconnects with ?after=,
// resuming exactly where it left off.
func TestSessionSSEResume(t *testing.T) {
	s, dir := newTestServer(t, nil)
	_ = s
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Summaries only (no per-packet events): at Speed 50 that is ~250
	// events per wall second, so the 4096-slot ring holds ~16 s of
	// history and the reconnect below can never race past an evicted
	// tail, even under the race detector's slowdown.
	code, created := createSession(t, ts.URL, "", SessionRequest{
		Model: "path-a.json", Protocol: "reno", Seed: 4, Speed: 50, DurationS: 600,
		PacketEvery: -1,
	})
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	id := created.Session.ID
	defer func() {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	read := func(url string, n int) (first, last int64) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, "GET", url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		rd := newSSEReader(resp.Body)
		for i := 0; i < n; i++ {
			f, err := rd.next()
			if err != nil {
				t.Fatalf("stream: %v", err)
			}
			if first == 0 {
				first = f.ID
			}
			last = f.ID
		}
		return first, last
	}

	_, last := read(ts.URL+created.EventsURL, 25)
	first2, _ := read(fmt.Sprintf("%s%s?after=%d", ts.URL, created.EventsURL, last), 5)
	if first2 != last+1 {
		t.Fatalf("resume after %d started at %d, want %d", last, first2, last+1)
	}
}

// TestSessionCapsAndReaperE2E drives the per-tenant and global caps
// through the HTTP front door, then lets the real idle-TTL reaper
// expire the unwatched sessions and verifies every counter agrees.
func TestSessionCapsAndReaperE2E(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, dir := newTestServer(t, func(c *Config) {
		c.MaxSessions = 2
		c.MaxSessionsPerTenant = 1
		c.SessionTTL = 150 * time.Millisecond
	})
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mk := func(tenant string) int {
		code, _ := createSession(t, ts.URL, tenant, SessionRequest{
			Model: "path-a.json", Protocol: "cubic", Seed: 1, Speed: 1,
		})
		return code
	}
	if code := mk("a"); code != http.StatusCreated {
		t.Fatalf("tenant a create: %d", code)
	}
	if code := mk("a"); code != http.StatusTooManyRequests {
		t.Fatalf("tenant cap not enforced: %d", code)
	}
	if code := mk("b"); code != http.StatusCreated {
		t.Fatalf("tenant b create: %d", code)
	}
	if code := mk("c"); code != http.StatusTooManyRequests {
		t.Fatalf("global cap not enforced: %d", code)
	}

	// No subscribers attached: both sessions idle out and the reaper
	// expires them.
	deadline := time.Now().Add(10 * time.Second)
	for statuszSessions(t, ts.URL) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("reaper never expired the idle sessions")
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.rollTick()
	snap := obs.Get().Snapshot()
	if got := snap.Counters["serve.session.expired"]; got != 2 {
		t.Fatalf("serve.session.expired = %d, want 2", got)
	}
	if got := snap.Gauges["serve.session.active"]; got != 0 {
		t.Fatalf("serve.session.active = %v after reap", got)
	}
	if got := snap.Counters[`serve.session.shed{reason="tenant_sessions_full"}`]; got != 1 {
		t.Fatalf("tenant shed counter = %d", got)
	}
	if got := snap.Counters[`serve.session.shed{reason="sessions_full"}`]; got != 1 {
		t.Fatalf("global shed counter = %d", got)
	}

	// Slots freed: admission works again.
	if code := mk("a"); code != http.StatusCreated {
		t.Fatalf("create after reap: %d", code)
	}
}

// TestSessionDriftScoring runs an iBoxML session and checks the live
// drift sketch fills (display-only: never a quarantine input).
func TestSessionDriftScoring(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeMLModel(t, dir, "lstm.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, created := createSession(t, ts.URL, "", SessionRequest{
		Model: "lstm.json", Protocol: "cubic", Seed: 11, Speed: 100, DurationS: 600,
	})
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sts := s.SessionDriftStatuses()
		if len(sts) == 1 && sts[0].Samples > 0 {
			if sts[0].Model != "lstm.json" {
				t.Fatalf("drift model = %q", sts[0].Model)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("live-session drift sketch never filled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+created.Session.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// TestSessionDriftRebindsOnSwap: drift scoring follows the session's
// *current* checkpoint. A session created from an iboxnet artifact has
// no drift tap, but swapping an ML checkpoint in mid-session must start
// filling that model's sketch — not stay dark or credit the old id.
func TestSessionDriftRebindsOnSwap(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	writeMLModel(t, dir, "lstm.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, created := createSession(t, ts.URL, "", SessionRequest{
		Model: "path-a.json", Protocol: "cubic", Seed: 3, Speed: 100, DurationS: 600,
	})
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	id := created.Session.ID
	defer func() {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	if sts := s.SessionDriftStatuses(); len(sts) != 0 {
		t.Fatalf("iboxnet session opened a drift sketch: %+v", sts)
	}
	code, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/path", PathRequest{
		Mutation: session.Mutation{Checkpoint: "lstm.json"},
	})
	if code != http.StatusOK {
		t.Fatalf("swap status %d: %s", code, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		sts := s.SessionDriftStatuses()
		if len(sts) == 1 && sts[0].Model == "lstm.json" && sts[0].Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("swapped-in model never accrued drift samples: %+v", sts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionDrainCheckpoint shuts a server down with a live session
// and checks the drain checkpoint records it, and that a draining
// server refuses new sessions.
func TestSessionDrainCheckpoint(t *testing.T) {
	statePath := ""
	s, dir := newTestServer(t, func(c *Config) {
		statePath = c.ModelDir + "/drain.json"
		c.SessionStatePath = statePath
	})
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, created := createSession(t, ts.URL, "ops", SessionRequest{
		Model: "path-a.json", Protocol: "bbr", Seed: 2, Speed: 1,
	})
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatalf("drain checkpoint: %v", err)
	}
	var ckpt struct {
		Sessions []session.SessionState `json:"sessions"`
	}
	if err := json.Unmarshal(data, &ckpt); err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	if len(ckpt.Sessions) != 1 || ckpt.Sessions[0].ID != created.Session.ID ||
		ckpt.Sessions[0].Tenant != "ops" || ckpt.Sessions[0].Protocol != "bbr" {
		t.Fatalf("checkpoint contents: %s", data)
	}

	if code, _ := createSession(t, ts.URL, "", SessionRequest{
		Model: "path-a.json", Protocol: "cubic",
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining create status %d, want 503", code)
	}
}

// TestProtocolsEndpoint lists the cc senders and warm model kinds.
func TestProtocolsEndpoint(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the net model so kinds has something to count.
	if _, err := s.registry.Get("path-a.json"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr ProtocolsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cubic": false, "bbr": false, "reno": false, "vegas": false}
	for _, p := range pr.Protocols {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("protocol %q missing from /v1/protocols", p)
		}
	}
	if pr.ModelsLoaded != 1 || pr.Kinds["iboxnet"] != 1 {
		t.Fatalf("loaded/kinds = %d/%v", pr.ModelsLoaded, pr.Kinds)
	}
}
