package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ibox/internal/core"
	"ibox/internal/iboxml"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// synthTrace generates a deterministic synthetic input–output trace (the
// same construction the iboxml tests train on).
func synthTrace(seed int64, dur sim.Time) *trace.Trace {
	rng := sim.NewRand(seed, 5)
	tr := &trace.Trace{Protocol: "synth"}
	ema := 0.0
	var now sim.Time
	seq := int64(0)
	for now < dur {
		phase := 2 * math.Pi * now.Seconds() / 4
		rate := 156_250 * (1.25 + math.Sin(phase+float64(seed))) // bytes/s
		gap := sim.Time(1500 / rate * float64(sim.Second))
		now += gap
		ema = 0.98*ema + 0.02*rate
		delayMs := 20 + 60*(ema/312_500) + rng.NormFloat64()*1.0
		if delayMs < 1 {
			delayMs = 1
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: seq, Size: 1500, SendTime: now,
			RecvTime: now + sim.Time(delayMs*float64(sim.Millisecond)),
		})
		seq++
	}
	return tr
}

// writeNetModel saves a synthetic iBoxNet profile under dir/id.
func writeNetModel(t testing.TB, dir, id string) iboxnet.Params {
	t.Helper()
	ct := trace.NewSeries(0, 100*sim.Millisecond, 20)
	for i := range ct.Vals {
		ct.Vals[i] = float64(500 * i)
	}
	p := iboxnet.Params{
		Bandwidth:    1.25e6,
		PropDelay:    20 * sim.Millisecond,
		BufferBytes:  30000,
		CrossTraffic: ct,
		LossRate:     0.01,
	}
	if err := p.Save(filepath.Join(dir, id)); err != nil {
		t.Fatalf("save net model: %v", err)
	}
	return p
}

// trainMLOnce caches one tiny trained iBoxML model across tests.
var trainMLOnce = struct {
	sync.Once
	m   *iboxml.Model
	err error
}{}

func trainedML(t testing.TB) *iboxml.Model {
	t.Helper()
	trainMLOnce.Do(func() {
		var samples []iboxml.TrainingSample
		for i := int64(0); i < 2; i++ {
			samples = append(samples, iboxml.TrainingSample{Trace: synthTrace(i, 4*sim.Second)})
		}
		trainMLOnce.m, trainMLOnce.err = iboxml.Train(samples, iboxml.Config{
			Hidden: 8, Layers: 1, Epochs: 2, Seed: 5,
		})
	})
	if trainMLOnce.err != nil {
		t.Fatalf("train: %v", trainMLOnce.err)
	}
	return trainMLOnce.m
}

// writeMLModel saves the shared trained checkpoint under dir/id.
func writeMLModel(t testing.TB, dir, id string) {
	t.Helper()
	if err := trainedML(t).Save(filepath.Join(dir, id)); err != nil {
		t.Fatalf("save ml model: %v", err)
	}
}

// newTestServer builds a server over a fresh model dir.
func newTestServer(t testing.TB, mutate func(*Config)) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{ModelDir: dir}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, dir
}

// postSimulate sends one simulate request and returns status, headers and
// body.
func postSimulate(t testing.TB, url string, req SimulateRequest) (int, http.Header, []byte) {
	t.Helper()
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/simulate", "application/json", &body)
	if err != nil {
		t.Fatalf("POST /v1/simulate: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// encodeResponse renders the offline comparator exactly as the server
// encodes its response body.
func encodeResponse(t testing.TB, resp SimulateResponse) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeIBoxNetDeterminism proves POST /v1/simulate on an iBoxNet
// model is byte-identical to the offline core simulation with the same
// model, protocol and seed.
func TestServeIBoxNetDeterminism(t *testing.T) {
	s, dir := newTestServer(t, nil)
	p := writeNetModel(t, dir, "path-a.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const seed = 7
	offline, err := (&core.Model{Params: p, Variant: iboxnet.Full, TrainTrace: "path-a.json"}).
		Run("cubic", 2*sim.Second, seed)
	if err != nil {
		t.Fatalf("offline run: %v", err)
	}
	want := encodeResponse(t, SimulateResponse{
		Model: "path-a.json", Kind: KindIBoxNet,
		Metrics: core.MetricsOf(offline), Trace: offline,
	})

	code, _, got := postSimulate(t, ts.URL, SimulateRequest{
		Model: "path-a.json", Protocol: "cubic", DurationS: 2, Seed: seed,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served response differs from offline simulation\nserved:  %.200s\noffline: %.200s", got, want)
	}
}

// TestServeIBoxMLDeterminism proves iBoxML replay responses are
// byte-identical to offline iboxml.SimulateTrace, with batching enabled
// and disabled — including a concurrent burst that actually coalesces
// into one micro-batch.
func TestServeIBoxMLDeterminism(t *testing.T) {
	input := synthTrace(99, 2*sim.Second)
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"unbatched", true}} {
		t.Run(mode.name, func(t *testing.T) {
			s, dir := newTestServer(t, func(c *Config) {
				c.NoBatch = mode.noBatch
				c.BatchWindow = 250 * time.Millisecond
				c.BatchMax = 4
			})
			writeMLModel(t, dir, "ml-a.json")
			ml, err := iboxml.Load(filepath.Join(dir, "ml-a.json"))
			if err != nil {
				t.Fatalf("offline load: %v", err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			const burst = 4
			type result struct {
				seed      int64
				code      int
				batchSize string
				body      []byte
			}
			results := make([]result, burst)
			var wg sync.WaitGroup
			for i := 0; i < burst; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					seed := int64(300 + i)
					code, hdr, body := postSimulate(t, ts.URL, SimulateRequest{
						Model: "ml-a.json", Input: input, Seed: seed,
					})
					results[i] = result{seed, code, hdr.Get(batchSizeHeader), body}
				}(i)
			}
			wg.Wait()

			maxBatch := 0
			for _, r := range results {
				if r.code != http.StatusOK {
					t.Fatalf("status %d: %s", r.code, r.body)
				}
				offline := ml.SimulateTrace(input, nil, r.seed)
				want := encodeResponse(t, SimulateResponse{
					Model: "ml-a.json", Kind: KindIBoxML,
					Metrics: core.MetricsOf(offline), Trace: offline,
				})
				if !bytes.Equal(r.body, want) {
					t.Fatalf("seed %d: served response differs from offline simulation", r.seed)
				}
				if r.batchSize != "" {
					n, err := strconv.Atoi(r.batchSize)
					if err != nil {
						t.Fatalf("bad %s header %q", batchSizeHeader, r.batchSize)
					}
					if n > maxBatch {
						maxBatch = n
					}
				}
			}
			if mode.noBatch && maxBatch != 0 {
				t.Fatalf("NoBatch server reported batch size %d", maxBatch)
			}
			if !mode.noBatch && maxBatch < 2 {
				t.Fatalf("no request coalesced into a batch (max reported size %d)", maxBatch)
			}
		})
	}
}

// TestServeHierarchicalDeterminism covers the hybrid (§4.2 hierarchical)
// serving path against its offline equivalent.
func TestServeHierarchicalDeterminism(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeMLModel(t, dir, "ml-h.json")
	ml, err := iboxml.Load(filepath.Join(dir, "ml-h.json"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	input := synthTrace(55, 1*sim.Second)
	offline := ml.SimulateTraceHierarchical(input, 17)
	want := encodeResponse(t, SimulateResponse{
		Model: "ml-h.json", Kind: KindIBoxML,
		Metrics: core.MetricsOf(offline), Trace: offline,
	})
	code, _, got := postSimulate(t, ts.URL, SimulateRequest{
		Model: "ml-h.json", Input: input, Seed: 17, Hierarchical: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hierarchical served response differs from offline simulation")
	}
}

// TestAdmissionControl exercises the front door with max-concurrency 1
// and a single queue slot: the first excess request sheds with 429 +
// Retry-After immediately, a queued request whose deadline expires is
// released with 503, and the shed counter counts both.
func TestAdmissionControl(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	s, _ := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
	})

	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	handler := s.admit(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
		w.WriteHeader(http.StatusOK)
	})

	do := func(ctx context.Context) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/simulate", nil).WithContext(ctx)
		handler(rec, req)
		return rec
	}

	// Occupy the only execution slot.
	var wg sync.WaitGroup
	wg.Add(1)
	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		defer wg.Done()
		firstDone <- do(context.Background())
	}()
	<-entered

	// Fill the single queue slot.
	wg.Add(1)
	secondDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		defer wg.Done()
		secondDone <- do(context.Background())
	}()
	// Wait until the second request is counted as waiting.
	deadline := time.Now().Add(2 * time.Second)
	for s.waiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third request must shed immediately with 429.
	start := time.Now()
	rec := do(context.Background())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full request got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v, want immediate", elapsed)
	}
	if got := s.shed.Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// A queued request whose deadline expires is released with 503.
	// (The queue slot is still held by the second request, so this one
	// sheds at the door; drain it through the deadline path instead by
	// unblocking after checking.)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rec = do(ctx)
	if rec.Code != http.StatusTooManyRequests && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired queued request got %d, want 429 or 503", rec.Code)
	}
	if got := s.shed.Value(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}

	close(block)
	wg.Wait()
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("first request got %d, want 200", rec.Code)
	}
	if rec := <-secondDone; rec.Code != http.StatusOK {
		t.Fatalf("second request got %d, want 200", rec.Code)
	}
}

// TestGracefulDrain checks Shutdown: readiness flips to 503, in-flight
// requests finish, and Serve returns ErrServerClosed.
func TestGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t, nil)
	entered := make(chan struct{})
	s.mux.HandleFunc("POST /test/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		time.Sleep(200 * time.Millisecond)
		fmt.Fprint(w, "done")
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	// Ready before drain.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}

	slowBody := make(chan string, 1)
	go func() {
		resp, err := http.Post(base+"/test/slow", "text/plain", nil)
		if err != nil {
			slowBody <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		slowBody <- string(b)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := <-slowBody; got != "done" {
		t.Fatalf("in-flight request result %q, want \"done\"", got)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// Drained server refuses readiness (checked via the mux directly —
	// the listener is closed).
	rec := httptest.NewRecorder()
	s.mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d, want 503", rec.Code)
	}
}

// TestRegistryLRU checks lazy loading, eviction order, and reload after
// eviction.
func TestRegistryLRU(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"a.json", "b.json", "c.json"} {
		writeNetModel(t, dir, id)
	}
	r := NewRegistry(dir, 2)
	ma, err := r.Get("a.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("b.json"); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes least-recently-used.
	if _, err := r.Get("a.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("c.json"); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	_, aWarm := r.entries["a.json"]
	_, bWarm := r.entries["b.json"]
	_, cWarm := r.entries["c.json"]
	n := r.lru.Len()
	r.mu.Unlock()
	if n != 2 || !aWarm || bWarm || !cWarm {
		t.Fatalf("after eviction: warm a=%v b=%v c=%v len=%d; want a,c warm only", aWarm, bWarm, cWarm, n)
	}
	// Evicted model reloads on demand; previously handed-out entries stay
	// usable.
	mb, err := r.Get("b.json")
	if err != nil {
		t.Fatalf("reload after eviction: %v", err)
	}
	if mb.Kind != KindIBoxNet || ma.Kind != KindIBoxNet {
		t.Fatal("wrong kinds after reload")
	}
}

func TestRegistryRejectsBadIDs(t *testing.T) {
	r := NewRegistry(t.TempDir(), 2)
	for _, id := range []string{"", "../etc/passwd", "a/b", `a\b`, ".hidden"} {
		if _, err := r.Get(id); err == nil {
			t.Fatalf("Get(%q) succeeded, want error", id)
		}
	}
}

func TestRegistryRejectsCorruptModel(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"net": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(dir, 2)
	if _, err := r.Get("bad.json"); err == nil {
		t.Fatal("corrupt iboxml model loaded")
	}
	if _, err := r.Get("junk.json"); err == nil {
		t.Fatal("non-JSON model loaded")
	}
	if _, err := r.Get("missing.json"); err == nil {
		t.Fatal("missing model loaded")
	}
}

// TestModelsAndHealthRoutes smoke-tests the discovery and health
// endpoints, including error-code mapping for simulate.
func TestModelsAndHealthRoutes(t *testing.T) {
	s, dir := newTestServer(t, nil)
	writeNetModel(t, dir, "net.json")
	writeMLModel(t, dir, "ml.json")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm one model so /v1/models shows a loaded entry.
	if err := s.Registry().Warm([]string{"net.json"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 2 {
		t.Fatalf("listed %d models, want 2", len(list.Models))
	}
	byID := map[string]ModelInfo{}
	for _, m := range list.Models {
		byID[m.ID] = m
	}
	if !byID["net.json"].Loaded || byID["net.json"].Kind != KindIBoxNet {
		t.Fatalf("net.json not reported warm: %+v", byID["net.json"])
	}
	if byID["ml.json"].Loaded {
		t.Fatalf("ml.json reported warm before first use: %+v", byID["ml.json"])
	}

	for _, route := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", route, resp.StatusCode)
		}
	}

	// Error-code mapping.
	for _, tc := range []struct {
		name string
		req  SimulateRequest
		code int
	}{
		{"missing model", SimulateRequest{Model: "nope.json", Protocol: "cubic"}, http.StatusNotFound},
		{"bad id", SimulateRequest{Model: "../x", Protocol: "cubic"}, http.StatusBadRequest},
		{"missing protocol", SimulateRequest{Model: "net.json"}, http.StatusBadRequest},
		{"unknown protocol", SimulateRequest{Model: "net.json", Protocol: "warp"}, http.StatusBadRequest},
		{"bad variant", SimulateRequest{Model: "net.json", Protocol: "cubic", Variant: "x"}, http.StatusBadRequest},
		{"ml without input", SimulateRequest{Model: "ml.json"}, http.StatusBadRequest},
	} {
		code, _, body := postSimulate(t, ts.URL, tc.req)
		if code != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, code, tc.code, body)
		}
	}

	// Oversized body → 413. The payload must be well-formed JSON so the
	// decoder keeps reading until the byte cap trips.
	big := []byte(`{"model": "` + strings.Repeat("a", 1<<20) + `"}`)
	s2, dir2 := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 1024 })
	writeNetModel(t, dir2, "net.json")
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/v1/simulate", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp2.StatusCode)
	}
}

// TestRegistrySingleFlight checks concurrent first loads of one model
// share a single disk read.
func TestRegistrySingleFlight(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	dir := t.TempDir()
	writeNetModel(t, dir, "a.json")
	r := NewRegistry(dir, 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Get("a.json"); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	wg.Wait()
	if misses := r.misses.Value(); misses != 1 {
		t.Fatalf("%d loads for 16 concurrent gets, want 1", misses)
	}
}

// TestRegistryNegativeCache checks the failed-load path is single-flight
// like the success path: a broken or missing model is read and sniffed
// once, repeated Gets return the cached error (same error value — proof
// no reload happened), and fixing the file on disk clears the cached
// failure on the very next Get.
func TestRegistryNegativeCache(t *testing.T) {
	cases := []struct {
		name  string
		setup func(t *testing.T, path string)
	}{
		{"missing file", func(t *testing.T, path string) {}},
		{"non-JSON", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"unrecognized shape", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"neither": true}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt checkpoint", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"net": {}}`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs.Enable()
			defer obs.Disable()
			dir := t.TempDir()
			const id = "m.json"
			tc.setup(t, filepath.Join(dir, id))
			r := NewRegistry(dir, 2)
			var firstErr error
			for i := 0; i < 5; i++ {
				_, err := r.Get(id)
				if err == nil {
					t.Fatal("broken model loaded")
				}
				if i == 0 {
					firstErr = err
				} else if err != firstErr {
					t.Fatalf("Get %d returned a different error value: %v", i, err)
				}
			}
			if got := r.misses.Value(); got != 1 {
				t.Fatalf("%d load attempts for 5 Gets of a broken model, want 1", got)
			}
			if got := r.loadErrors.Value(); got != 1 {
				t.Fatalf("load_errors = %d, want 1", got)
			}
			if got := r.hits.Value(); got != 4 {
				t.Fatalf("hits = %d, want 4 (negative-cache hits)", got)
			}
			// Fixing the artifact changes its stat signature, so the next
			// Get loads fresh instead of serving the stale failure.
			writeNetModel(t, dir, id)
			m, err := r.Get(id)
			if err != nil {
				t.Fatalf("Get after fixing the file: %v", err)
			}
			if m.Kind != KindIBoxNet {
				t.Fatalf("Kind = %q after fix, want %q", m.Kind, KindIBoxNet)
			}
			if got := r.misses.Value(); got != 2 {
				t.Fatalf("misses = %d after fix, want 2 (exactly one reload)", got)
			}
		})
	}
}

// TestRegistryNegativeSingleFlight mirrors TestRegistrySingleFlight for
// the error path: 16 concurrent Gets of a missing model share one load
// attempt.
func TestRegistryNegativeSingleFlight(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	r := NewRegistry(t.TempDir(), 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Get("nope.json"); err == nil {
				t.Error("missing model loaded")
			}
		}()
	}
	wg.Wait()
	if misses := r.misses.Value(); misses != 1 {
		t.Fatalf("%d load attempts for 16 concurrent gets of a missing model, want 1", misses)
	}
}

// TestRegistryNegativeCacheBounded checks a client probing many bad ids
// cannot grow the entries map without limit.
func TestRegistryNegativeCacheBounded(t *testing.T) {
	r := NewRegistry(t.TempDir(), 2)
	for i := 0; i < 5; i++ {
		if _, err := r.Get(fmt.Sprintf("missing%d.json", i)); err == nil {
			t.Fatal("missing model loaded")
		}
	}
	r.mu.Lock()
	n, total := r.neg.Len(), len(r.entries)
	r.mu.Unlock()
	if n > 2 || total > 2 {
		t.Fatalf("negative cache grew to %d list / %d map entries, cap 2", n, total)
	}
}
