package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"ibox/internal/obs"
)

// Per-request observability: every /v1 request gets a request ID
// (accepted from X-Request-Id or generated), carried through admission,
// registry load, the micro-batcher and the kernel call via a request
// meta record in the context. At completion the middleware:
//
//   - echoes the ID in the X-Request-Id response header;
//   - records the labeled metric families (route / model / status
//     class / batched) and the flat totals they reconcile with;
//   - emits one structured access-log line through obs.Logger() with
//     latency, queue wait, batch size, model, status and shed reason;
//   - for a sampled fraction of requests (Config.TraceSample), records
//     an obs span lane (request → queue → load → simulate) exportable
//     as Chrome trace JSON.
//
// When nothing is observing — registry disabled, no logger installed,
// request not sampled — the middleware takes the fast path: assign the
// ID header, run the handler, and touch no clocks, no context values
// and no allocations beyond the ID itself.

// RequestIDHeader carries the request ID in both directions.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an accepted client-supplied request ID; longer
// values are replaced with a generated one so a hostile header can't
// bloat logs or spans.
const maxRequestIDLen = 128

// sanitizeRequestID vets a client-supplied request ID before it is
// echoed into the response header, the structured access log and trace
// span args: over-long values are rejected outright (no truncation — a
// partial hostile ID is still hostile), and bytes outside the visible
// ASCII range (controls, spaces, DEL, non-ASCII) are stripped so a
// crafted header cannot inject line breaks or escape sequences into a
// log lane. Returns "" when nothing usable survives; the caller then
// generates an ID. Clean IDs return as-is without allocating.
func sanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		return ""
	}
	clean := true
	for i := 0; i < len(id); i++ {
		if id[i] <= 0x20 || id[i] >= 0x7f {
			clean = false
			break
		}
	}
	if clean {
		return id
	}
	b := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		if id[i] > 0x20 && id[i] < 0x7f {
			b = append(b, id[i])
		}
	}
	return string(b)
}

// reqMeta accumulates one request's observability state as it flows
// through the serving path. All methods are nil-receiver-safe, so
// layers below the middleware never guard.
type reqMeta struct {
	id    string
	route string
	model string

	timed bool // clocks are running (metrics, logger or sampling active)
	start time.Time

	queueWaitNs int64
	batchSize   int
	shedReason  string

	span *obs.Span // non-nil only for sampled requests
}

// metaKey is the context key for the request meta.
type metaKey struct{}

// metaFrom returns the request's meta, or nil on the fast path.
func metaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(metaKey{}).(*reqMeta)
	return m
}

func (m *reqMeta) setModel(id string) {
	if m != nil {
		m.model = id
		m.span.SetArg("model", id)
	}
}

func (m *reqMeta) setBatch(size int) {
	if m != nil {
		m.batchSize = size
	}
}

func (m *reqMeta) setQueueWait(d time.Duration) {
	if m != nil {
		m.queueWaitNs = int64(d)
	}
}

func (m *reqMeta) setShed(reason string) {
	if m != nil {
		m.shedReason = reason
	}
}

// isTimed reports whether the middleware armed the clocks for this
// request.
func (m *reqMeta) isTimed() bool { return m != nil && m.timed }

// childSpan opens a child of the request's sampled span; nil (a no-op
// span) when the request isn't sampled.
func (m *reqMeta) childSpan(name string) *obs.Span {
	if m == nil {
		return nil
	}
	return m.span.Start(name)
}

// sampled reports whether this request records a trace span lane.
func (m *reqMeta) sampled() bool { return m != nil && m.span != nil }

// statusRecorder captures the response status and body size.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// Unwrap supports http.ResponseController pass-through.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// statusClass buckets an HTTP status into its class label ("2xx" …).
// The strings are constants, so labeling allocates nothing.
func statusClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// boolLabel renders the batched label without allocating.
func boolLabel(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// newRequestID returns the next generated request ID:
// "<8-hex-process-prefix>-<hex sequence>".
func (s *Server) newRequestID(seq uint64) string {
	buf := make([]byte, 0, len(s.idPrefix)+1+16)
	buf = append(buf, s.idPrefix...)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, seq, 16)
	return string(buf)
}

// newIDPrefix draws the per-process request-ID prefix.
func newIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a clock-derived prefix; uniqueness within the
		// process still comes from the sequence number.
		return strconv.FormatInt(time.Now().UnixNano()&0xffffffff, 16)
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps a /v1 handler with the per-request observability
// described at the top of the file. route is the stable route label
// ("simulate", "models").
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		seq := s.reqSeq.Add(1)
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = s.newRequestID(seq)
		}
		w.Header().Set(RequestIDHeader, id)

		logger := obs.Logger()
		sampleThis := s.sampleEvery > 0 && seq%s.sampleEvery == 0 && obs.Enabled()
		if s.httpRequests == nil && logger == nil && !sampleThis {
			// Fast path: nothing is observing; no clocks, no context.
			h(w, r)
			return
		}

		m := &reqMeta{id: id, route: route, model: "-", timed: true, start: time.Now()}
		if sampleThis {
			m.span = obs.StartSpan("request")
			m.span.SetArg("id", id)
			m.span.SetArg("route", route)
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(context.WithValue(r.Context(), metaKey{}, m)))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}

		latency := time.Since(m.start)
		class := statusClass(rec.status)
		batched := m.batchSize > 1
		s.httpRequests.With(route, class).Add(1)
		s.httpLatency.Observe(int64(latency))
		s.requestLatency.With(route, m.model, class, boolLabel(batched)).Observe(int64(latency))

		if m.span != nil {
			m.span.SetArg("status", class)
			if m.shedReason != "" {
				m.span.SetArg("shed", m.shedReason)
			}
			m.span.End()
		}

		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "access",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.String("model", m.model),
				slog.Int("status", rec.status),
				slog.Float64("latency_ms", float64(latency)/1e6),
				slog.Float64("queue_wait_ms", float64(m.queueWaitNs)/1e6),
				slog.Int("batch_size", m.batchSize),
				slog.String("shed", m.shedReason),
				slog.Int64("bytes_out", rec.bytes),
			)
		}
	}
}
