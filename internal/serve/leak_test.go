package serve

import (
	"os"
	"testing"

	"ibox/internal/leakcheck"
)

// TestMain fails the package if any serving goroutine outlives the
// tests — a batcher flush stuck on the pool, an admission-gated request
// never released, or a pool worker Shutdown failed to reap.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m, "ibox/internal/serve", "ibox/internal/session", "ibox/internal/par"))
}
