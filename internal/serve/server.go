package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/cc"
	"ibox/internal/core"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/par"
	"ibox/internal/session"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

// Config parameterizes a Server. Zero values select serving defaults.
type Config struct {
	// ModelDir is the directory of trained artifacts the registry serves.
	ModelDir string
	// MaxModels bounds how many models stay warm (LRU beyond); default 16.
	MaxModels int
	// Workers sizes the shared simulation pool; default GOMAXPROCS. Every
	// CPU-bound stage — batched or not — runs on this one pool, so
	// concurrent requests cannot oversubscribe the cores.
	Workers int
	// BatchWindow is the micro-batch dispatch window; default 2ms.
	BatchWindow time.Duration
	// BatchMax flushes a batch early once this many requests joined it;
	// default 16.
	BatchMax int
	// NoBatch disables micro-batching (each iBoxML replay simulates
	// alone). Responses are byte-identical either way.
	NoBatch bool
	// BatchPerCheckpoint restricts micro-batch groups to requests for the
	// same artifact, as before cross-checkpoint shape batching. By
	// default requests co-batch whenever their models share a shape
	// (architecture + window + kernel mode; see iboxml.Shape) even
	// across distinct checkpoints. Responses are byte-identical in every
	// mode; this is the A/B comparison knob (`ibox-bench -suite serve`).
	BatchPerCheckpoint bool
	// StreamChunk is the emission granularity of streaming replay
	// (/v1/replay), in closed-loop windows per chunk; default 64.
	StreamChunk int
	// MaxConcurrent bounds simultaneously-executing simulate requests;
	// default 2×Workers.
	MaxConcurrent int
	// MaxQueue bounds simulate requests waiting for an execution slot;
	// beyond it requests are shed with 429 + Retry-After. Default 64.
	MaxQueue int
	// MaxBodyBytes bounds a request body; default 8 MiB.
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline when the request doesn't
	// set timeout_ms; default 30s.
	DefaultTimeout time.Duration
	// Debug mounts /debug/vars and /debug/pprof on the server mux.
	Debug bool
	// TraceSample records an obs span lane (request → queue → load →
	// simulate) for roughly this fraction of requests, exportable as
	// Chrome trace JSON. 0 disables sampling; sampling is deterministic
	// (every round(1/TraceSample)-th request), not random.
	TraceSample float64
	// DriftEvery re-scores every Nth eligible iBoxML replay request
	// (one whose input carries observed delays) into the model's drift
	// sketch. 0 selects the default 8; negative disables drift
	// detection. See drift.go.
	DriftEvery int
	// DriftPolicy tolerances judge streaming sketches against the
	// artifact's embedded calibration baseline; zero fields select
	// obs.DriftPolicy defaults.
	DriftPolicy obs.DriftPolicy
	// Quarantine returns 503 for models whose drift verdict is failing
	// (healthy models keep serving). Off by default: drift then only
	// degrades /healthz, /statusz and the serve.drift.* metrics.
	Quarantine bool
	// SLOLatency is the latency bound of the "latency_p99" SLO
	// objective; default 1s.
	SLOLatency time.Duration
	// SLOLatencyTarget is the fraction of requests that must finish
	// under SLOLatency; default 0.99.
	SLOLatencyTarget float64
	// SLOErrorTarget is the fraction of requests that must not error;
	// default 0.99.
	SLOErrorTarget float64
	// MaxSessions caps live emulation sessions across all tenants;
	// default 256 (see sessions.go and internal/session).
	MaxSessions int
	// MaxSessionsPerTenant caps live sessions per tenant; default
	// MaxSessions.
	MaxSessionsPerTenant int
	// SessionTTL is the idle deadline for unwatched sessions (no
	// subscribers, no control-plane interaction); 0 selects 15 minutes,
	// negative disables reaping.
	SessionTTL time.Duration
	// SessionStatePath, when set, receives a JSON checkpoint of every
	// live session's descriptor at drain, before the sessions stop.
	SessionStatePath string
}

func (c Config) withDefaults() Config {
	if c.MaxModels <= 0 {
		c.MaxModels = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.StreamChunk <= 0 {
		c.StreamChunk = 64
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.SLOLatency <= 0 {
		c.SLOLatency = time.Second
	}
	if c.SLOLatencyTarget <= 0 || c.SLOLatencyTarget >= 1 {
		c.SLOLatencyTarget = 0.99
	}
	if c.SLOErrorTarget <= 0 || c.SLOErrorTarget >= 1 {
		c.SLOErrorTarget = 0.99
	}
	return c
}

// SimulateRequest is the body of POST /v1/simulate.
//
// For an iBoxNet model, set protocol (and optionally duration_s, variant)
// to run a congestion-control sender over the learnt path. For an iBoxML
// model, set input to the send-side trace to replay; hierarchical selects
// the amortized §4.2 predictor instead of the windowed closed-loop one.
type SimulateRequest struct {
	Model string `json:"model"`
	Seed  int64  `json:"seed"`

	Protocol  string  `json:"protocol,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	Variant   string  `json:"variant,omitempty"`

	Input        *trace.Trace `json:"input,omitempty"`
	Hierarchical bool         `json:"hierarchical,omitempty"`

	// TimeoutMs overrides the server's default per-request deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// SimulateResponse is the body of a successful POST /v1/simulate. Its
// JSON encoding is byte-identical to encoding the offline simulation
// result the same way — serving adds no fields that depend on timing,
// batching, or concurrency (such diagnostics travel in headers).
type SimulateResponse struct {
	Model   string       `json:"model"`
	Kind    Kind         `json:"kind"`
	Metrics core.Metrics `json:"metrics"`
	Trace   *trace.Trace `json:"trace"`
}

// errorResponse is the body of any non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// batchSizeHeader reports how many requests shared the micro-batch that
// produced this response (absent for non-batched paths).
const batchSizeHeader = "X-Ibox-Batch-Size"

// Server is the ibox-serve HTTP service.
type Server struct {
	cfg      Config
	registry *Registry
	pool     *par.Pool
	batch    *batcher
	mux      *http.ServeMux
	http     *http.Server

	sem      chan struct{}
	waiting  atomic.Int64
	draining atomic.Bool
	started  time.Time

	queueGauge    *obs.Gauge
	inflightGauge *obs.Gauge
	shed          *obs.Counter
	requests      *obs.Counter
	errors        *obs.Counter
	simulateHist  *obs.Histogram
	modelsHist    *obs.Histogram

	// Labeled families and flat aggregates recorded by the instrument
	// middleware (access.go); nil when observability is disabled.
	httpRequests   *obs.CounterVec   // {route, status class}
	requestLatency *obs.HistogramVec // {route, model, status class, batched}
	shedByReason   *obs.CounterVec   // {reason}
	httpLatency    *obs.Histogram    // all instrumented routes
	queueWait      *obs.Histogram    // time waiting for an execution slot

	// Request IDs and deterministic trace sampling (access.go).
	idPrefix    string
	reqSeq      atomic.Uint64
	sampleEvery uint64

	// Rolling-window collector (statusz.go) and SLO engine.
	roller   *obs.Roller
	win      winGauges
	slo      *obs.SLOEngine
	rollStop chan struct{}
	rollDone chan struct{}
	rollOnce sync.Once

	// Online drift detection (drift.go).
	driftMu     sync.Mutex
	drifts      map[string]*modelDrift
	driftPolicy obs.DriftPolicy
	driftEvery  uint64 // 0 = disabled

	driftState   *obs.GaugeVec   // serve.drift.state{model}
	driftNLL     *obs.GaugeVec   // serve.drift.nll{model}
	driftPITDev  *obs.GaugeVec   // serve.drift.pit_deviation{model}
	driftWindows *obs.GaugeVec   // serve.drift.windows{model}
	driftScored  *obs.Counter    // serve.drift.scored
	quarantined  *obs.CounterVec // serve.drift.quarantined{model}

	// Live emulation sessions (sessions.go, internal/session).
	sessions         *session.Manager
	sessDriftMu      sync.Mutex
	sessDrifts       map[string]*obs.DriftSketch // display-only live drift
	sessDriftNLL     *obs.GaugeVec               // serve.session.drift.nll{model}
	sessDriftPITDev  *obs.GaugeVec               // serve.session.drift.pit_deviation{model}
	sessDriftSamples *obs.GaugeVec               // serve.session.drift.samples{model}
}

// NewServer builds a server over cfg.ModelDir. The directory must exist.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.ModelDir == "" {
		return nil, fmt.Errorf("serve: Config.ModelDir is required")
	}
	if fi, err := os.Stat(cfg.ModelDir); err != nil {
		return nil, fmt.Errorf("serve: model dir: %w", err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("serve: model dir %s is not a directory", cfg.ModelDir)
	}
	pool := par.NewPool(cfg.Workers)
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.ModelDir, cfg.MaxModels),
		pool:     pool,
		batch:    newBatcher(pool, cfg.BatchWindow, cfg.BatchMax, cfg.StreamChunk, cfg.BatchPerCheckpoint),
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		idPrefix: newIDPrefix(),
		started:  time.Now(),
	}
	if cfg.TraceSample > 0 {
		every := int(math.Round(1 / math.Min(cfg.TraceSample, 1)))
		if every < 1 {
			every = 1
		}
		s.sampleEvery = uint64(every)
	}
	if r := obs.Get(); r != nil {
		s.queueGauge = r.Gauge("serve.queue_depth")
		s.inflightGauge = r.Gauge("serve.inflight")
		s.shed = r.Counter("serve.shed")
		s.requests = r.Counter("serve.requests")
		s.errors = r.Counter("serve.errors")
		s.simulateHist = r.Histogram("serve.simulate_ns")
		s.modelsHist = r.Histogram("serve.models_ns")
		s.httpRequests = r.CounterVec("serve.http_requests", "route", "status")
		s.requestLatency = r.HistogramVec("serve.request_ns", "route", "model", "status", "batched")
		s.shedByReason = r.CounterVec("serve.shed_reason", "reason")
		s.httpLatency = r.Histogram("serve.http_request_ns")
		s.queueWait = r.Histogram("serve.queue_wait_ns")
		s.driftState = r.GaugeVec("serve.drift.state", "model")
		s.driftNLL = r.GaugeVec("serve.drift.nll", "model")
		s.driftPITDev = r.GaugeVec("serve.drift.pit_deviation", "model")
		s.driftWindows = r.GaugeVec("serve.drift.windows", "model")
		s.driftScored = r.Counter("serve.drift.scored")
		s.quarantined = r.CounterVec("serve.drift.quarantined", "model")
	}
	s.driftInit()
	s.sessionsInit()
	s.startRolling()
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.admit(s.handleSimulate)))
	s.mux.HandleFunc("POST /v1/replay", s.instrument("replay", s.admit(s.handleReplay)))
	s.mux.HandleFunc("GET /v1/models", s.instrument("models", s.handleModels))
	s.mux.Handle("GET /metrics", obs.PrometheusHandler())
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.Debug {
		s.mux.Handle("/debug/", DebugMux())
	}
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler exposes the server's routes (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model cache (for warming at startup).
func (s *Server) Registry() *Registry { return s.registry }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.http.Addr = addr
	return s.http.ListenAndServe()
}

// Shutdown drains the server gracefully: readiness flips to 503 so load
// balancers stop sending traffic, new simulate requests are refused,
// live sessions are checkpointed (when configured) and closed with
// reason "drain", in-flight requests run to completion (bounded by
// ctx), then the shared pool stops. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.cfg.SessionStatePath != "" {
		if cerr := s.sessions.Checkpoint(s.cfg.SessionStatePath); cerr != nil {
			if l := obs.Logger(); l != nil {
				l.Error("session checkpoint failed", "path", s.cfg.SessionStatePath, "err", cerr)
			}
		}
	}
	// Sessions drain before the pool closes so their final ticks still
	// run on it (they fall back to inline stepping regardless).
	s.sessions.Shutdown()
	s.stopRolling()
	err := s.http.Shutdown(ctx)
	s.pool.Close()
	return err
}

// admit wraps a handler with the front-door admission control: requests
// beyond MaxConcurrent wait for a slot, requests beyond MaxQueue waiting
// are shed immediately with 429 + Retry-After, and a request whose
// deadline expires while queued is released with 503 without ever
// running. Draining servers refuse new work outright.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := metaFrom(r.Context())
		if s.draining.Load() {
			m.setShed("draining")
			s.shedByReason.With("draining").Add(1)
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: draining"))
			return
		}
		if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
			s.waiting.Add(-1)
			s.shed.Add(1)
			m.setShed("queue_full")
			s.shedByReason.With("queue_full").Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, fmt.Errorf("serve: queue full (%d waiting)", s.cfg.MaxQueue))
			return
		}
		s.queueGauge.Set(float64(s.waiting.Load()))
		var qt0 time.Time
		if m.isTimed() {
			qt0 = time.Now()
		}
		qsp := m.childSpan("queue")
		select {
		case s.sem <- struct{}{}:
			qsp.End()
			if m.isTimed() {
				wait := time.Since(qt0)
				m.setQueueWait(wait)
				s.queueWait.Observe(int64(wait))
			}
			s.waiting.Add(-1)
			s.queueGauge.Set(float64(s.waiting.Load()))
			s.inflightGauge.Add(1)
			defer func() {
				s.inflightGauge.Add(-1)
				<-s.sem
			}()
			h(w, r)
		case <-r.Context().Done():
			qsp.End()
			s.waiting.Add(-1)
			s.queueGauge.Set(float64(s.waiting.Load()))
			s.shed.Add(1)
			m.setShed("queue_deadline")
			s.shedByReason.With("queue_deadline").Add(1)
			s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("serve: deadline expired while queued"))
		}
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if s.modelsHist != nil {
		defer s.modelsHist.ObserveSince(time.Now())
	}
	infos, err := s.registry.List()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Models []ModelInfo `json:"models"`
	}{Models: infos})
}

// parseVariant maps a request's variant string to the iBoxNet variant.
func parseVariant(s string) (iboxnet.Variant, error) {
	switch s {
	case "", "full", "iboxnet":
		return iboxnet.Full, nil
	case "noct", "iboxnet-noct":
		return iboxnet.NoCT, nil
	case "statloss", "iboxnet-statloss":
		return iboxnet.StatLoss, nil
	case "adaptive", "iboxnet-adaptive":
		return iboxnet.Adaptive, nil
	}
	return 0, fmt.Errorf("serve: unknown variant %q", s)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.simulateHist != nil {
		defer s.simulateHist.ObserveSince(time.Now())
	}
	s.requests.Add(1)

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req SimulateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err))
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	m := metaFrom(r.Context())
	lsp := m.childSpan("load")
	model, err := s.registry.Get(req.Model)
	lsp.End()
	if err != nil {
		code := http.StatusUnprocessableEntity // corrupt / unloadable model
		switch {
		case os.IsNotExist(err):
			code = http.StatusNotFound
		case errors.Is(err, ErrInvalidModelID):
			code = http.StatusBadRequest
		}
		s.writeError(w, code, err)
		return
	}

	// The model label is set only from a successfully-loaded artifact, so
	// a hostile stream of bogus ids cannot mint label values (the series
	// cap in obs is the backstop for large-but-legitimate model dirs).
	m.setModel(model.ID)

	// Quarantine: a model judged drift-failing stops serving while the
	// rest keep going. Opt-in — see Config.Quarantine and drift.go.
	if s.cfg.Quarantine && s.driftVerdict(model.ID) == obs.DriftFailing {
		s.quarantined.With(model.ID).Add(1)
		m.setShed("quarantine")
		s.shedByReason.With("quarantine").Add(1)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: model %s quarantined: drift verdict failing", model.ID))
		return
	}

	var out *trace.Trace
	batchSize := 0
	ssp := m.childSpan("simulate")
	switch model.Kind {
	case KindIBoxNet:
		out, err = s.simulateNet(ctx, model, &req)
	case KindIBoxML:
		out, batchSize, err = s.simulateML(ctx, model, &req)
	default:
		err = fmt.Errorf("serve: model %s has unknown kind %q", model.ID, model.Kind)
	}
	ssp.End()
	m.setBatch(batchSize)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: request deadline exceeded"))
		case errors.Is(err, errBadRequest):
			s.writeError(w, http.StatusBadRequest, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}

	w.Header().Set("Content-Type", "application/json")
	if batchSize > 0 {
		w.Header().Set(batchSizeHeader, strconv.Itoa(batchSize))
	}
	json.NewEncoder(w).Encode(SimulateResponse{
		Model:   model.ID,
		Kind:    model.Kind,
		Metrics: core.MetricsOf(out),
		Trace:   out,
	})
}

// errBadRequest marks request-validation failures for the 400 mapping.
var errBadRequest = errors.New("serve: bad request")

// simulateNet runs a congestion-control protocol over an iBoxNet model —
// exactly core.Model.Run, on the shared pool.
func (s *Server) simulateNet(ctx context.Context, model *Model, req *SimulateRequest) (*trace.Trace, error) {
	if req.Protocol == "" {
		return nil, fmt.Errorf("%w: iboxnet model %s requires \"protocol\"", errBadRequest, model.ID)
	}
	if req.Input != nil {
		return nil, fmt.Errorf("%w: iboxnet model %s takes \"protocol\", not \"input\"", errBadRequest, model.ID)
	}
	// Reject unknown protocols before burning a pool slot.
	if _, err := cc.NewSender(req.Protocol, 1500); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	dur := 10 * sim.Second
	if req.DurationS > 0 {
		dur = sim.Time(req.DurationS * float64(sim.Second))
	}
	cm := &core.Model{Params: model.Net, Variant: variant, TrainTrace: model.ID}
	var out *trace.Trace
	err = s.pool.Do(ctx, func() error {
		var rerr error
		out, rerr = cm.Run(req.Protocol, dur, req.Seed)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// simulateML replays a send-side input trace through an iBoxML model —
// exactly iboxml.SimulateTrace (or SimulateTraceHierarchical), micro-
// batched with compatible concurrent requests unless disabled.
func (s *Server) simulateML(ctx context.Context, model *Model, req *SimulateRequest) (*trace.Trace, int, error) {
	if req.Input == nil || len(req.Input.Packets) == 0 {
		return nil, 0, fmt.Errorf("%w: iboxml model %s requires a non-empty \"input\" trace", errBadRequest, model.ID)
	}
	if req.Protocol != "" {
		return nil, 0, fmt.Errorf("%w: iboxml model %s takes \"input\", not \"protocol\"", errBadRequest, model.ID)
	}
	if err := req.Input.Validate(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	var out *trace.Trace
	var batchSize int
	var err error
	switch {
	case req.Hierarchical:
		err = s.pool.Do(ctx, func() error {
			out = model.ML.SimulateTraceHierarchical(req.Input, req.Seed)
			return nil
		})
	case s.cfg.NoBatch:
		err = s.pool.Do(ctx, func() error {
			out = model.ML.SimulateTrace(req.Input, nil, req.Seed)
			return nil
		})
	default:
		out, batchSize, err = s.batch.submit(ctx, model.ID, model.ML, req.Input, req.Seed)
	}
	if err == nil {
		// The replay input carries the observed delays the model should
		// reproduce — score a sampled fraction into the drift sketch.
		s.maybeScoreDrift(ctx, model, req.Input)
	}
	return out, batchSize, err
}
