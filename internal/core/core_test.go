package core

import (
	"math"
	"testing"

	"ibox/internal/iboxnet"
	"ibox/internal/pantheon"
	"ibox/internal/sim"
	"ibox/internal/trace"
)

func TestMetricsOf(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		send := sim.Time(i) * 10 * sim.Millisecond
		tr.Packets = append(tr.Packets, trace.Packet{
			Seq: int64(i), Size: 1250, SendTime: send, RecvTime: send + 40*sim.Millisecond,
		})
	}
	tr.Packets[3].Lost = true
	m := MetricsOf(tr)
	if m.LossPct != 1 {
		t.Errorf("LossPct = %v, want 1", m.LossPct)
	}
	if math.Abs(m.P95DelayMs-40) > 1e-9 {
		t.Errorf("P95DelayMs = %v, want 40", m.P95DelayMs)
	}
	if m.ThroughputMbps <= 0 {
		t.Error("non-positive throughput")
	}
}

func TestFitAndRun(t *testing.T) {
	inst := pantheon.Ethernet().Sample(3, 0)
	gt, err := inst.Run("cubic", 8*sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Fit(gt, iboxnet.Full)
	if err != nil {
		t.Fatal(err)
	}
	sim1, err := model.Run("cubic", 8*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim1.Validate(); err != nil {
		t.Fatal(err)
	}
	// The model must reproduce its own training protocol's throughput
	// within 25%.
	g, s := gt.Throughput(), sim1.Throughput()
	if math.Abs(g-s)/g > 0.25 {
		t.Errorf("throughput GT %.2f vs sim %.2f Mbps", g/1e6, s/1e6)
	}
	// Running an unknown protocol errors.
	if _, err := model.Run("nope", sim.Second, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := model.Run("cubic", 0, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestEnsembleTestShapes(t *testing.T) {
	corpus, err := pantheon.Generate(pantheon.Ethernet(), 4, "cubic", 6*sim.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EnsembleTest(corpus, "vegas", iboxnet.Full, 6*sim.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GTControl) != 4 || len(res.SimControl) != 4 ||
		len(res.GTTreatment) != 4 || len(res.SimTreatment) != 4 {
		t.Fatalf("result sizes: %d %d %d %d", len(res.GTControl), len(res.SimControl),
			len(res.GTTreatment), len(res.SimTreatment))
	}
	for _, key := range []string{"control/tput", "control/p95", "control/loss",
		"treatment/tput", "treatment/p95", "treatment/loss"} {
		ks, ok := res.KS[key]
		if !ok {
			t.Errorf("missing KS entry %q", key)
			continue
		}
		if math.IsNaN(ks.Statistic) {
			t.Errorf("KS %q is NaN", key)
		}
	}
	tput, p95, loss := res.MeanAbsError()
	if tput < 0 || p95 < 0 || loss < 0 {
		t.Error("negative mean abs error")
	}
}

func TestEnsembleTestEmptyCorpus(t *testing.T) {
	if _, err := EnsembleTest(&pantheon.Corpus{}, "vegas", iboxnet.Full, sim.Second, 0); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestRunFeatures(t *testing.T) {
	mk := func(phase float64) *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < 600; i++ {
			send := sim.Time(i) * 10 * sim.Millisecond
			d := 30 + 20*math.Sin(2*math.Pi*float64(i)/100+phase)
			tr.Packets = append(tr.Packets, trace.Packet{
				Seq: int64(i), Size: 1000, SendTime: send,
				RecvTime: send + sim.Time(d*float64(sim.Millisecond)),
			})
		}
		return tr
	}
	run := mk(0)
	refSame := mk(0.1)
	refDiff := mk(math.Pi)
	f := RunFeatures(run, []*trace.Trace{refSame, refDiff}, 100*sim.Millisecond)
	if len(f) != 4 {
		t.Fatalf("feature length %d, want 4", len(f))
	}
	// Delay correlation with the in-phase reference must exceed the
	// anti-phase one.
	if f[1] <= f[3] {
		t.Errorf("in-phase delay corr %.2f not above anti-phase %.2f", f[1], f[3])
	}
}
