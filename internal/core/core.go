// Package core is the top-level iBox API: it ties the learnt network
// models (internal/iboxnet, internal/iboxml) to the congestion-control
// suite (internal/cc) and exposes the paper's two evaluation procedures
// (§2) — the instance test (counterfactual: what would protocol B have
// seen on this particular path at this particular time?) and the ensemble
// test (recreating flighting-based A/B tests inside the simulator).
package core

import (
	"fmt"
	"time"

	"ibox/internal/cc"
	"ibox/internal/iboxnet"
	"ibox/internal/obs"
	"ibox/internal/pantheon"
	"ibox/internal/par"
	"ibox/internal/sim"
	"ibox/internal/stats"
	"ibox/internal/trace"
)

// Metrics are the per-flow summary statistics of Fig 2: throughput, tail
// delay and loss.
type Metrics struct {
	ThroughputMbps float64
	P95DelayMs     float64
	LossPct        float64
}

// MetricsOf summarizes one trace.
func MetricsOf(tr *trace.Trace) Metrics {
	return Metrics{
		ThroughputMbps: tr.Throughput() / 1e6,
		P95DelayMs:     tr.DelayPercentile(95),
		LossPct:        tr.LossRate() * 100,
	}
}

// Model is a fitted iBoxNet model ready to simulate counterfactuals.
type Model struct {
	Params  iboxnet.Params
	Variant iboxnet.Variant
	// TrainTrace identifies the trace the model was learnt from.
	TrainTrace string
}

// Fit learns an iBoxNet model from a single input–output trace (the
// per-instance learning of §3.1: "the parameters are estimated based on a
// particular trace of A").
func Fit(tr *trace.Trace, variant iboxnet.Variant) (*Model, error) {
	p, err := iboxnet.Estimate(tr, iboxnet.EstimatorConfig{})
	if err != nil {
		return nil, err
	}
	return &Model{Params: p, Variant: variant, TrainTrace: tr.PathID}, nil
}

// Run simulates the named protocol over the learnt model for the given
// duration. Distinct seeds give independent emulator runs.
func (m *Model) Run(protocol string, dur sim.Time, seed int64) (*trace.Trace, error) {
	sender, err := cc.NewSender(protocol, 1500)
	if err != nil {
		return nil, err
	}
	return m.RunSender(sender, dur, seed)
}

// RunSender is Run with a caller-constructed sender.
func (m *Model) RunSender(sender cc.Sender, dur sim.Time, seed int64) (*trace.Trace, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("core: non-positive duration %v", dur)
	}
	sched := sim.NewScheduler()
	path := m.Params.Emulate(sched, m.Variant, seed)
	flow := cc.NewFlow(sched, path.Port("main"), sender, cc.FlowConfig{
		Duration: dur,
		AckDelay: m.Params.PropDelay,
	})
	flow.Start()
	sched.RunUntil(dur + 3*sim.Second)
	tr := flow.Trace()
	tr.PathID = m.TrainTrace + "/" + m.Variant.String()
	return tr, nil
}

// EnsembleResult is the outcome of an ensemble A/B test (§3.1.1, Fig 2):
// the distribution of per-flow metrics for the control protocol A and the
// treatment protocol B, on the ground truth and on the learnt models, plus
// two-sample KS tests of each simulated distribution against its ground
// truth.
type EnsembleResult struct {
	Control, Treatment string
	Variant            iboxnet.Variant

	GTControl    []Metrics // A on the real (ground-truth) instances
	SimControl   []Metrics // A on the models learnt from A's traces
	GTTreatment  []Metrics // B on the real instances (only possible in simulation!)
	SimTreatment []Metrics // B on the learnt models — the paper's headline capability

	// KS holds two-sample KS tests comparing simulated vs ground-truth
	// metric distributions; keys are "control/tput", "control/p95",
	// "control/loss", and the same under "treatment/".
	KS map[string]stats.KSResult
}

// EnsembleTest runs the full §3.1.1 procedure over a corpus of control-
// protocol traces: fit one iBoxNet model per training trace, run both the
// control and the (never-seen-in-training) treatment protocol on every
// model, run both protocols on the true instances for reference, and
// compare the metric distributions. Per-trace work fans out over all
// CPUs; see EnsembleTestOpts for the execution knob.
func EnsembleTest(corpus *pantheon.Corpus, treatment string, variant iboxnet.Variant, dur sim.Time, seed int64) (*EnsembleResult, error) {
	return EnsembleTestOpts(corpus, treatment, variant, dur, seed, par.Options{})
}

// EnsembleTestOpts is EnsembleTest with explicit execution options. The
// per-trace fit+replay work is independent across traces — every RNG
// seed is derived from the trace index before dispatch — so serial and
// parallel runs produce byte-identical results.
func EnsembleTestOpts(corpus *pantheon.Corpus, treatment string, variant iboxnet.Variant, dur sim.Time, seed int64, opts par.Options) (*EnsembleResult, error) {
	if len(corpus.Traces) == 0 {
		return nil, fmt.Errorf("core: empty corpus")
	}
	res := &EnsembleResult{
		Control:   corpus.Protocol,
		Treatment: treatment,
		Variant:   variant,
		KS:        map[string]stats.KSResult{},
	}
	// Per-trace fit and replay latencies; nil no-op handles when
	// observability is disabled (hoisted out of the fan-out).
	reg := obs.Get()
	fitHist := reg.Histogram("core.fit_ns")
	replayHist := reg.Histogram("core.replay_ns")
	reg.Counter("core.ensemble_tests").Add(1)
	reg.Counter("core.ensemble_traces").Add(int64(len(corpus.Traces)))
	type perTrace struct {
		gtControl, gtTreatment, simControl, simTreatment Metrics
	}
	rows, err := par.Map(len(corpus.Traces), opts, func(i int) (perTrace, error) {
		tr := corpus.Traces[i]
		inst := corpus.Instances[i]
		var row perTrace
		row.gtControl = MetricsOf(tr)

		var t0 time.Time
		if replayHist != nil {
			t0 = time.Now()
		}
		gtB, err := inst.Run(treatment, dur, seed+int64(i))
		if err != nil {
			return row, fmt.Errorf("core: GT treatment on %s: %w", inst.ID, err)
		}
		replayHist.ObserveSince(t0)
		row.gtTreatment = MetricsOf(gtB)

		if fitHist != nil {
			t0 = time.Now()
		}
		model, err := Fit(tr, variant)
		if err != nil {
			return row, fmt.Errorf("core: fit on %s: %w", inst.ID, err)
		}
		fitHist.ObserveSince(t0)
		if replayHist != nil {
			t0 = time.Now()
		}
		simA, err := model.Run(corpus.Protocol, dur, seed+int64(i)*2+1)
		if err != nil {
			return row, err
		}
		row.simControl = MetricsOf(simA)
		simB, err := model.Run(treatment, dur, seed+int64(i)*2+2)
		if err != nil {
			return row, err
		}
		// One observation covers both model replays (control + treatment).
		replayHist.ObserveSince(t0)
		row.simTreatment = MetricsOf(simB)
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		res.GTControl = append(res.GTControl, row.gtControl)
		res.GTTreatment = append(res.GTTreatment, row.gtTreatment)
		res.SimControl = append(res.SimControl, row.simControl)
		res.SimTreatment = append(res.SimTreatment, row.simTreatment)
	}
	res.computeKS()
	return res, nil
}

func (r *EnsembleResult) computeKS() {
	extract := func(ms []Metrics) (tput, p95, loss []float64) {
		for _, m := range ms {
			tput = append(tput, m.ThroughputMbps)
			p95 = append(p95, m.P95DelayMs)
			loss = append(loss, m.LossPct)
		}
		return
	}
	gct, gcp, gcl := extract(r.GTControl)
	sct, scp, scl := extract(r.SimControl)
	gtt, gtp, gtl := extract(r.GTTreatment)
	stt, stp, stl := extract(r.SimTreatment)
	r.KS["control/tput"] = stats.KSTest(gct, sct)
	r.KS["control/p95"] = stats.KSTest(gcp, scp)
	r.KS["control/loss"] = stats.KSTest(gcl, scl)
	r.KS["treatment/tput"] = stats.KSTest(gtt, stt)
	r.KS["treatment/p95"] = stats.KSTest(gtp, stp)
	r.KS["treatment/loss"] = stats.KSTest(gtl, stl)
}

// MeanAbsError reports the mean absolute difference between simulated and
// ground-truth metrics for the treatment protocol — a scalar quality score
// used by the ablation comparisons of Fig 3.
func (r *EnsembleResult) MeanAbsError() (tput, p95, loss float64) {
	n := len(r.GTTreatment)
	if n == 0 || len(r.SimTreatment) != n {
		return 0, 0, 0
	}
	for i := range r.GTTreatment {
		tput += abs(r.GTTreatment[i].ThroughputMbps - r.SimTreatment[i].ThroughputMbps)
		p95 += abs(r.GTTreatment[i].P95DelayMs - r.SimTreatment[i].P95DelayMs)
		loss += abs(r.GTTreatment[i].LossPct - r.SimTreatment[i].LossPct)
	}
	return tput / float64(n), p95 / float64(n), loss / float64(n)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RunFeatures extracts the instance-test clustering features of §3.1.2:
// the cross-correlations of a run's rate and delay time series against a
// set of reference runs (one per cross-traffic pattern). The resulting
// vector has 2·len(refs) entries: [xcorr(rate, refRate_k),
// xcorr(delay, refDelay_k)]_k.
func RunFeatures(run *trace.Trace, refs []*trace.Trace, step sim.Time) []float64 {
	rRate := run.RecvRateSeries(step).Vals
	rDelay := run.DelaySeries(step).Vals
	var out []float64
	for _, ref := range refs {
		out = append(out, stats.CrossCorrelation(rRate, ref.RecvRateSeries(step).Vals))
		out = append(out, stats.CrossCorrelation(rDelay, ref.DelaySeries(step).Vals))
	}
	return out
}
