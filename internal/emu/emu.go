// Package emu turns a learnt iBoxNet model into a *live* network emulator
// — the literal "Internet in a Box" of Fig 1, where the learnt parameters
// are "set on the NetEm emulator". It forwards real UDP datagrams from a
// listen socket to a destination, imposing in wall-clock time the learnt
// path's bottleneck serialization, FIFO byte-limited queueing (with
// drop-tail overflow), propagation delay, replayed cross traffic, and —
// for the StatLoss variant — random loss. Point an actual application at
// it and it experiences the learnt network.
package emu

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ibox/internal/iboxnet"
)

// Config parameterizes a live emulator.
type Config struct {
	// Listen is the UDP address to accept traffic on, e.g. "127.0.0.1:0".
	Listen string
	// Forward is the UDP address delivered traffic is sent to.
	Forward string
	// Params is the learnt path model.
	Params iboxnet.Params
	// Variant selects which learnt components apply (Full replays cross
	// traffic; NoCT does not; StatLoss applies random loss instead).
	Variant iboxnet.Variant
	// QueueCap bounds the in-flight packet buffer; default 4096 packets.
	QueueCap int
	// Seed drives the variant's randomness.
	Seed int64
}

// Stats are the emulator's running counters. Safe to read concurrently
// with traffic: every field is published atomically, so Stats never
// contends with the datapath (and never tears — see TestStatsConcurrent
// under -race).
type Stats struct {
	Received  uint64
	Delivered uint64
	Dropped   uint64 // buffer overflow + random loss
	// QueuedBytes is the simulated bottleneck backlog as of the last
	// datapath event (admission or cross-traffic injection).
	QueuedBytes float64
}

// Emulator is a running instance.
type Emulator struct {
	cfg  Config
	conn *net.UDPConn
	out  *net.UDPConn

	mu        sync.Mutex
	queuedB   float64   // simulated bottleneck backlog, bytes
	lastDrain time.Time // when queuedB was last advanced
	ctIdx     int       // next cross-traffic window to inject
	started   time.Time
	rngState  uint64

	deliveries chan delivery
	received   atomic.Uint64
	delivered  atomic.Uint64
	dropped    atomic.Uint64
	queuedBits atomic.Uint64 // queuedB as float64 bits, for lock-free Stats
}

type delivery struct {
	due  time.Time
	data []byte
}

// New binds the sockets and prepares the emulator; call Run to serve.
func New(cfg Config) (*Emulator, error) {
	if cfg.Params.Bandwidth <= 0 || cfg.Params.BufferBytes <= 0 {
		return nil, fmt.Errorf("emu: invalid params %v", cfg.Params)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("emu: listen addr: %w", err)
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Forward)
	if err != nil {
		return nil, fmt.Errorf("emu: forward addr: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("emu: listen: %w", err)
	}
	out, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("emu: dial forward: %w", err)
	}
	seed := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	if seed == 0 {
		seed = 1
	}
	return &Emulator{
		cfg: cfg, conn: conn, out: out,
		deliveries: make(chan delivery, cfg.QueueCap),
		rngState:   seed,
	}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (e *Emulator) Addr() *net.UDPAddr { return e.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the counters. Lock-free: it never blocks
// the datapath, so it is safe to poll from a monitoring goroutine while
// traffic flows.
func (e *Emulator) Stats() Stats {
	return Stats{
		Received:    e.received.Load(),
		Delivered:   e.delivered.Load(),
		Dropped:     e.dropped.Load(),
		QueuedBytes: math.Float64frombits(e.queuedBits.Load()),
	}
}

// Run serves until the context is cancelled. It returns nil on clean
// shutdown.
func (e *Emulator) Run(ctx context.Context) error {
	e.mu.Lock()
	e.started = time.Now()
	e.lastDrain = e.started
	e.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.deliverLoop(ctx)
	}()

	stop := context.AfterFunc(ctx, func() {
		e.conn.SetReadDeadline(time.Now())
	})
	defer stop()

	buf := make([]byte, 65536)
	var err error
	for {
		var n int
		n, _, err = e.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				err = nil
			}
			break
		}
		e.received.Add(1)
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		e.admit(pkt)
	}
	close(e.deliveries)
	wg.Wait()
	e.conn.Close()
	e.out.Close()
	return err
}

// admit runs the packet through the simulated bottleneck and schedules
// delivery (or drops it).
func (e *Emulator) admit(pkt []byte) {
	now := time.Now()
	e.mu.Lock()
	e.advanceQueue(now)
	// Drop-tail admission.
	if e.queuedB+float64(len(pkt)) > float64(e.cfg.Params.BufferBytes) {
		e.mu.Unlock()
		e.dropped.Add(1)
		return
	}
	// Random loss (StatLoss variant).
	if e.cfg.Variant == iboxnet.StatLoss && e.cfg.Params.LossRate > 0 {
		if e.randFloat() < e.cfg.Params.LossRate {
			e.mu.Unlock()
			e.dropped.Add(1)
			return
		}
	}
	e.queuedB += float64(len(pkt))
	e.queuedBits.Store(math.Float64bits(e.queuedB))
	// FIFO delivery time: propagation + serialization of everything ahead
	// of (and including) this packet.
	delay := time.Duration(e.cfg.Params.PropDelay) +
		time.Duration(e.queuedB/e.cfg.Params.Bandwidth*float64(time.Second))
	e.mu.Unlock()

	select {
	case e.deliveries <- delivery{due: now.Add(delay), data: pkt}:
	default:
		e.dropped.Add(1) // scheduling buffer full
	}
}

// advanceQueue brings the virtual queue state up to wall-clock time `now`:
// it walks the timeline, interleaving continuous drain at the bottleneck
// rate with the cross-traffic windows' byte injections at their scheduled
// times (injecting pending windows all at once would overstate the backlog
// — bytes injected long ago have partly drained). Callers hold e.mu.
func (e *Emulator) advanceQueue(now time.Time) {
	drainTo := func(t time.Time) {
		elapsed := t.Sub(e.lastDrain).Seconds()
		if elapsed <= 0 {
			return
		}
		e.lastDrain = t
		e.queuedB -= elapsed * e.cfg.Params.Bandwidth
		if e.queuedB < 0 {
			e.queuedB = 0
		}
	}
	if e.cfg.Variant == iboxnet.Full && e.cfg.Params.CrossTraffic != nil {
		ct := e.cfg.Params.CrossTraffic
		for e.ctIdx < ct.Len() {
			wt := e.started.Add(time.Duration(ct.TimeAt(e.ctIdx) - ct.Start))
			if wt.After(now) {
				break
			}
			drainTo(wt)
			e.queuedB += ct.Vals[e.ctIdx]
			if e.queuedB > float64(e.cfg.Params.BufferBytes) {
				e.queuedB = float64(e.cfg.Params.BufferBytes)
			}
			e.ctIdx++
		}
	}
	drainTo(now)
	e.queuedBits.Store(math.Float64bits(e.queuedB))
}

// deliverLoop releases packets at their due times. Deliveries are FIFO by
// construction (the queue model's due times are monotone), so a single
// ordered sleep loop suffices and cannot reorder packets.
func (e *Emulator) deliverLoop(ctx context.Context) {
	for d := range e.deliveries {
		wait := time.Until(d.due)
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				// Flush remaining immediately on shutdown.
			}
		}
		if _, err := e.out.Write(d.data); err == nil {
			e.delivered.Add(1)
		} else if !errors.Is(err, net.ErrClosed) {
			e.dropped.Add(1)
		}
	}
}

// randFloat is a tiny xorshift uniform generator (the emulator must not
// share math/rand global state with the host application).
func (e *Emulator) randFloat() float64 {
	x := e.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	e.rngState = x
	return float64(x>>11) / float64(1<<53)
}
